// Reproduces the Section-2.3 motivating claim (after Agarwal et al. [1]):
// "the standard O(n²) algorithm for computing a matrix-vector product with
// an n×n matrix becomes O(n³) if data-movement is taken into account in a
// fashion similar to DISTANCE, while a neuromorphic implementation remains
// an O(n²) algorithm." Measured: the DISTANCE-machine movement cost of the
// textbook matvec (exponent 3 in n) vs the message count of the
// Definition-4 NGA matvec (exponent 2 in n).
#include <iostream>

#include "analysis/fit.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "distmodel/algos.h"
#include "graph/generators.h"
#include "nga/matvec.h"
#include "nga/model.h"

using namespace sga;

int main() {
  obs::BenchReport report("matvec_distance");
  std::cout << "=== Section 2.3: dense matrix-vector product, conventional "
               "vs neuromorphic ===\n\n";
  Table t({"n", "RAM ops (n^2)", "DISTANCE movement (measured)",
           "NGA synaptic events (n^2)"});
  std::vector<double> ns, moves, events;
  Rng rng(0x3A7);
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    const auto conv =
        distmodel::matvec_distance(n, 4, distmodel::RegisterPlacement::kCenter);

    // Neuromorphic counterpart: one NGA round over the complete graph
    // computes y = A m (Section 2.2's example); cost = one message per
    // synapse = n² deliveries, each over an O(1)-delay link.
    const Graph complete = make_complete_graph(n, {1, 7}, rng);
    std::vector<std::uint64_t> x(n, 1);
    std::vector<nga::Message> init(n);
    for (std::size_t v = 0; v < n; ++v) init[v] = nga::Message{x[v], true};
    const auto trace = nga::run_nga(
        complete, init, 1,
        [](const Edge& e, const nga::Message& m) {
          return nga::Message{m.value * static_cast<std::uint64_t>(e.length),
                              true};
        },
        [](VertexId, const std::vector<nga::Message>& in) {
          std::uint64_t s = 0;
          for (const auto& m : in) {
            if (m.valid) s += m.value;
          }
          return nga::Message{s, true};
        });

    ns.push_back(static_cast<double>(n));
    moves.push_back(static_cast<double>(conv.machine.movement_cost));
    events.push_back(static_cast<double>(trace.messages_sent));
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(conv.ops),
               Table::num(conv.machine.movement_cost),
               Table::num(trace.messages_sent)});
  }
  t.print(std::cout);
  report.add_table("t", t);

  std::cout << "\nConventional movement vs n: "
            << analysis::describe(analysis::check_power_law(ns, moves, 3.0, 0.2))
            << "\n";
  std::cout << "Neuromorphic events vs n:   "
            << analysis::describe(analysis::check_power_law(ns, events, 2.0, 0.05))
            << "\n";
  std::cout << "\nThe O(n²) RAM algorithm pays Θ(n³) movement on a 2-D "
               "lattice; the message-passing NGA touches each synapse once "
               "— Θ(n²) — because memory and compute are colocated.\n";
  return 0;
}
