// Region maps for Table 1's "neuromorphic is better when" column: sweep the
// parameter plane of each row and mark who wins under the paper's
// complexity expressions (constants = 1), then spot-check cells of the
// k-hop polynomial map with actual gate-level runs. The crossover CURVES —
// not just single predicates — are the content of the table's last column.
#include <functional>
#include <iostream>

#include "analysis/advantage.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/costs.h"
#include "nga/khop_poly.h"

using namespace sga;
using namespace sga::nga;

namespace {

void print_map(const char* title, const char* row_label, const char* col_label,
               const std::vector<std::uint64_t>& rows,
               const std::vector<std::uint64_t>& cols,
               const std::function<bool(std::uint64_t, std::uint64_t)>& nm_wins) {
  std::cout << title << "\n  rows: " << row_label << ", cols: " << col_label
            << "  (N = neuromorphic wins, c = conventional)\n";
  std::cout << "        ";
  for (const auto c : cols) std::cout << Table::num(c) << '\t';
  std::cout << '\n';
  for (const auto r : rows) {
    std::cout << "  " << Table::num(r) << '\t';
    for (const auto c : cols) std::cout << (nm_wins(r, c) ? 'N' : 'c') << '\t';
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  obs::BenchReport report("table1_regions");
  std::cout << "=== Table 1 crossover regions (complexity expressions, "
               "constants = 1) ===\n\n";

  // Row: k-hop polynomial, ignoring movement — wins iff log(nU) = o(k).
  {
    ProblemParams base;
    base.n = 1024;
    base.m = 8192;
    print_map("k-hop polynomial (ignoring movement): k vs U", "k", "U",
              {2, 4, 8, 16, 32, 64}, {1, 16, 256, 4096, 65536, 1 << 20},
              [&](std::uint64_t k, std::uint64_t U) {
                ProblemParams p = base;
                p.k = k;
                p.U = U;
                return analysis::better_khop_poly_nodm(p);
              });
  }

  // Row: SSSP pseudopolynomial, ignoring movement — L and m matter.
  {
    ProblemParams base;
    base.n = 4096;
    print_map("SSSP pseudopolynomial (ignoring movement): L vs m", "L", "m",
              {256, 1024, 4096, 16384, 65536, 1 << 18},
              {2048, 8192, 32768, 1 << 17, 1 << 19},
              [&](std::uint64_t L, std::uint64_t m) {
                ProblemParams p = base;
                p.L = L;
                p.m = m;
                return analysis::better_sssp_pseudo_nodm(p);
              });
  }

  // Row: k-hop pseudopolynomial with movement — L vs c.
  {
    ProblemParams base;
    base.n = 1024;
    base.m = 16384;
    base.k = 32;
    print_map("k-hop pseudopolynomial (with movement): L vs c", "L", "c",
              {1024, 8192, 65536, 1 << 19, 1 << 22},
              {1, 4, 16, 64, 256, 1024},
              [&](std::uint64_t L, std::uint64_t c) {
                ProblemParams p = base;
                p.L = L;
                p.c = c;
                return analysis::better_khop_pseudo_dm(p);
              });
  }

  // Spot-check the first map's crossover column with real gate-level runs.
  std::cout << "--- measured spot-checks (n = 48, m = 240): gate-level poly "
               "k-hop vs Bellman-Ford ops ---\n";
  Table t({"k", "U", "paper predicts", "measured spiking T", "measured BF ops",
           "measured winner"});
  Rng rng(0x4E6);
  for (const auto& [k, u] : std::vector<std::pair<std::uint32_t, Weight>>{
           {2, 4096}, {8, 256}, {16, 16}, {24, 2}}) {
    Rng gr(0x4E7);  // same topology per row
    const Graph g = make_random_graph(48, 240, {1, u}, gr);
    const auto bf = bellman_ford_khop(g, 0, k);
    KHopPolyOptions opt;
    opt.source = 0;
    opt.k = k;
    const auto nm = khop_sssp_poly(g, opt);
    ProblemParams p;
    p.n = 48;
    p.m = 240;
    p.k = k;
    p.U = static_cast<std::uint64_t>(u);
    const bool predicted = analysis::better_khop_poly_nodm(p);
    const bool measured =
        static_cast<double>(nm.execution_time) < static_cast<double>(bf.ops.total());
    t.add_row({Table::num(static_cast<std::uint64_t>(k)), Table::num(u),
               predicted ? "N" : "c", Table::num(nm.execution_time),
               Table::num(bf.ops.total()), measured ? "N" : "c"});
  }
  t.print(std::cout);
  report.add_table("t", t);
  std::cout << "\nThe measured winner flips along the same diagonal the "
               "asymptotic condition log(nU) = o(k) draws (constants shift "
               "the exact boundary in the SNN's favour at these sizes).\n";
  return 0;
}
