// Million-neuron streamed-build scale lane (ARCHITECTURE.md §1.8; ISSUE 7
// acceptance workload): a relay chain with n = 10^6 vertices and m ≥ 8·10^6
// edges is frozen straight from its generator — no Graph, no nested-vector
// Network — into both the narrow (kAuto) and wide (kWide) CSR layouts, then
// SSSP runs to completion on each.
//
// Emitted to BENCH_scale.json for the bench_compare trajectory. Semantic
// keys — n, m, csr_bytes, bytes_per_synapse, peak_resident_bytes, T,
// spikes, events — are machine-independent (the stream replays from a fixed
// seed and narrowing is value-preserving), so any change is DRIFT and
// blocks. Freeze/run wall time and the derived deliveries_per_sec use the
// *_ns / *_per_sec suffixes bench_compare treats as noise-tolerant.
//
// Hard gates (exit 1): the narrow freeze must be ≥ 30% smaller than the
// wide one, every relay must fire exactly once (SSSP completed), and the
// narrow and wide runs must agree event-for-event.
#include <cstdint>
#include <iostream>

#include "core/timer.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "obs/report.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

constexpr std::size_t kN = 1000000;
constexpr std::size_t kExtraPerVertex = 8;
constexpr std::size_t kMaxSkip = 1000;
constexpr std::uint64_t kSeed = 0x5CA1E;
constexpr WeightRange kWeights{1, 16};

void relay_edges(const EdgeStream& emit) {
  stream_relay_chain(kN, kExtraPerVertex, kMaxSkip, kWeights, kSeed, emit);
}

struct Frozen {
  snn::CompiledNetwork net;
  snn::StreamBuildStats build;
  std::uint64_t freeze_ns = 0;
};

Frozen freeze(snn::StoragePolicy policy) {
  WallTimer w;
  snn::StreamBuildStats bs;
  snn::CompiledNetwork net =
      nga::compile_sssp_streamed(kN, relay_edges, policy, &bs);
  return Frozen{std::move(net), bs,
                static_cast<std::uint64_t>(w.seconds() * 1e9)};
}

struct Solved {
  snn::SimStats stats;
  std::uint64_t run_ns = 0;
};

Solved solve(const snn::CompiledNetwork& net) {
  snn::Simulator sim(net);
  sim.inject_spike(0, 0);
  WallTimer w;
  Solved s;
  s.stats = sim.run();
  s.run_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  return s;
}

double rate_per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(count) * 1e9 / static_cast<double>(wall_ns);
}

void record_freeze(obs::BenchReport& report, const char* name,
                   const Frozen& f) {
  report.record(name)
      .set("n", static_cast<std::uint64_t>(f.build.num_neurons))
      .set("m", static_cast<std::uint64_t>(f.build.num_synapses))
      .set("csr_bytes", static_cast<std::uint64_t>(f.build.csr_bytes))
      .set("peak_resident_bytes",
           static_cast<std::uint64_t>(f.build.peak_resident_bytes))
      .set("bytes_per_synapse", f.net.bytes_per_synapse())
      .set("freeze_ns", f.freeze_ns);
}

void record_run(obs::BenchReport& report, const char* name, const Solved& s) {
  report.record(name)
      .T(s.stats.end_time)
      .spikes(s.stats.spikes)
      .events(s.stats.deliveries)
      .set("run_ns", s.run_ns)
      .set("deliveries_per_sec", rate_per_sec(s.stats.deliveries, s.run_ns));
}

}  // namespace

int main() {
  obs::BenchReport report("scale");
  report.context("workload",
                 "streamed relay chain n=1e6 extra_per_vertex=8 "
                 "max_skip=1000 lengths=[1,16] seed=0x5CA1E");
  report.context("paths", "generator -> compile_streamed; no Graph, no "
                          "nested-vector Network ever materialized");

  const Frozen narrow = freeze(snn::StoragePolicy::kAuto);
  const Frozen wide = freeze(snn::StoragePolicy::kWide);

  if (!narrow.net.storage_widths().narrow ||
      wide.net.storage_widths().narrow) {
    std::cerr << "bench_scale: policy dispatch broken (kAuto narrow="
              << narrow.net.storage_widths().narrow << ")\n";
    return 1;
  }
  if (narrow.build.num_synapses < 8000000 + kN) {
    std::cerr << "bench_scale: only " << narrow.build.num_synapses
              << " synapses — below the m >= 8e6 acceptance floor\n";
    return 1;
  }
  const auto nb = static_cast<double>(narrow.build.csr_bytes);
  const auto wb = static_cast<double>(wide.build.csr_bytes);
  if (nb > 0.7 * wb) {
    std::cerr << "bench_scale: narrow freeze " << narrow.build.csr_bytes
              << " B is not >= 30% smaller than wide "
              << wide.build.csr_bytes << " B\n";
    return 1;
  }
  record_freeze(report, "scale/freeze/narrow", narrow);
  record_freeze(report, "scale/freeze/wide", wide);

  const Solved sn = solve(narrow.net);
  const Solved sw = solve(wide.net);
  if (sn.stats.spikes != kN) {
    std::cerr << "bench_scale: " << sn.stats.spikes << " spikes, expected "
              << kN << " (SSSP did not complete)\n";
    return 1;
  }
  if (sn.stats.spikes != sw.stats.spikes ||
      sn.stats.deliveries != sw.stats.deliveries ||
      sn.stats.event_times != sw.stats.event_times ||
      sn.stats.end_time != sw.stats.end_time) {
    std::cerr << "bench_scale: narrow and wide runs disagree\n";
    return 1;
  }
  record_run(report, "scale/sssp/narrow", sn);
  record_run(report, "scale/sssp/wide", sw);

  std::cout << "scale: n=" << kN << " m=" << narrow.build.num_synapses
            << "\n  narrow " << narrow.build.csr_bytes << " B ("
            << narrow.net.bytes_per_synapse() << " B/syn), wide "
            << wide.build.csr_bytes << " B (" << wide.net.bytes_per_synapse()
            << " B/syn) — " << (100.0 - 100.0 * nb / wb) << "% smaller\n"
            << "  sssp T=" << sn.stats.end_time << " spikes="
            << sn.stats.spikes << " deliveries=" << sn.stats.deliveries
            << "\n  narrow " << rate_per_sec(sn.stats.deliveries, sn.run_ns)
            << " deliveries/sec, wide "
            << rate_per_sec(sw.stats.deliveries, sw.run_ns)
            << " deliveries/sec\n";
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
