// Million-neuron streamed-build scale lane (ARCHITECTURE.md §1.8, §1.11;
// ISSUE 7 + ISSUE 10 acceptance workloads): two n ≈ 10^6, m ≈ 10^7
// instances — a relay chain and an R-MAT (Graph500-style skewed) graph —
// are frozen straight from their generators into the narrow (kNarrow),
// wide (kWide), and delta-packed (kAuto, which selects packed at this
// scale) CSR layouts, then SSSP runs to completion on each.
//
// Emitted to BENCH_scale.json for the bench_compare trajectory. Semantic
// keys — n, m, csr_bytes, bytes_per_synapse, peak_resident_bytes,
// storage_encoding, decode_blocks, T, spikes, events — are
// machine-independent (the streams replay from fixed seeds, narrowing is
// value-preserving, and block decode counts are a function of the event
// sequence), so any change is DRIFT and blocks. Freeze/run wall time and
// the derived deliveries_per_sec use the *_ns / *_per_sec suffixes
// bench_compare treats as noise-tolerant.
//
// Hard gates (exit 1):
//   * kAuto must select the packed encoding at this scale; kNarrow / kWide
//     must stay what they claim (the oracles stay oracles);
//   * the narrow freeze must be ≥ 30% smaller than the wide one;
//   * the packed freeze must be ≥ 25% smaller than the NARROW one, on BOTH
//     instances (the ISSUE 10 compression floor);
//   * every relay vertex fires exactly once (SSSP completed);
//   * packed, narrow, and wide runs agree event-for-event on both
//     instances.
#include <cstdint>
#include <iostream>
#include <string>

#include "core/timer.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "obs/report.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

constexpr std::size_t kN = 1000000;
constexpr std::size_t kExtraPerVertex = 8;
constexpr std::size_t kMaxSkip = 1000;
constexpr std::uint64_t kSeed = 0x5CA1E;
constexpr WeightRange kWeights{1, 16};

constexpr std::size_t kRmatScale = 20;  // n = 2^20 = 1048576
constexpr std::size_t kRmatEdges = 10000000;
constexpr std::uint64_t kRmatSeed = 0x5CA1E2;

void relay_edges(const EdgeStream& emit) {
  stream_relay_chain(kN, kExtraPerVertex, kMaxSkip, kWeights, kSeed, emit);
}

void rmat_edges(const EdgeStream& emit) {
  stream_rmat(kRmatScale, kRmatEdges, 0.57, 0.19, 0.19, kWeights, kRmatSeed,
              emit);
}

struct Frozen {
  snn::CompiledNetwork net;
  snn::StreamBuildStats build;
  std::uint64_t freeze_ns = 0;
};

Frozen freeze(std::size_t n, void (*edges)(const EdgeStream&),
              snn::StoragePolicy policy) {
  WallTimer w;
  snn::StreamBuildStats bs;
  snn::CompiledNetwork net = nga::compile_sssp_streamed(n, edges, policy, &bs);
  return Frozen{std::move(net), bs,
                static_cast<std::uint64_t>(w.seconds() * 1e9)};
}

struct Solved {
  snn::SimStats stats;
  std::uint64_t run_ns = 0;
};

Solved solve(const snn::CompiledNetwork& net) {
  snn::Simulator sim(net);
  sim.inject_spike(0, 0);
  WallTimer w;
  Solved s;
  s.stats = sim.run();
  s.run_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  return s;
}

double rate_per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(count) * 1e9 / static_cast<double>(wall_ns);
}

void record_freeze(obs::BenchReport& report, const std::string& name,
                   const Frozen& f) {
  report.record(name)
      .set("n", static_cast<std::uint64_t>(f.build.num_neurons))
      .set("m", static_cast<std::uint64_t>(f.build.num_synapses))
      .set("csr_bytes", static_cast<std::uint64_t>(f.build.csr_bytes))
      .set("peak_resident_bytes",
           static_cast<std::uint64_t>(f.build.peak_resident_bytes))
      .set("bytes_per_synapse", f.net.bytes_per_synapse())
      .set("storage_encoding", static_cast<std::uint64_t>(snn::encoding_code(
                                   f.net.storage_widths())))
      .set("freeze_ns", f.freeze_ns);
}

void record_run(obs::BenchReport& report, const std::string& name,
                const Solved& s) {
  report.record(name)
      .T(s.stats.end_time)
      .spikes(s.stats.spikes)
      .events(s.stats.deliveries)
      .set("decode_blocks", s.stats.decode_blocks)
      .set("run_ns", s.run_ns)
      .set("deliveries_per_sec", rate_per_sec(s.stats.deliveries, s.run_ns));
}

/// True when encoding matches; complains and fails otherwise.
bool expect_encoding(const char* lane, const Frozen& f,
                     std::uint8_t want_code) {
  const std::uint8_t got = snn::encoding_code(f.net.storage_widths());
  if (got == want_code) return true;
  std::cerr << "bench_scale: " << lane << " froze as "
            << snn::encoding_name(f.net.storage_widths())
            << " (code " << static_cast<int>(got) << "), expected code "
            << static_cast<int>(want_code) << "\n";
  return false;
}

bool runs_agree(const char* what, const Solved& a, const Solved& b) {
  if (a.stats.spikes == b.stats.spikes &&
      a.stats.deliveries == b.stats.deliveries &&
      a.stats.event_times == b.stats.event_times &&
      a.stats.end_time == b.stats.end_time) {
    return true;
  }
  std::cerr << "bench_scale: " << what << " runs disagree\n";
  return false;
}

struct Instance {
  const char* tag;           ///< record-name segment ("" for relay)
  std::size_t n;
  void (*edges)(const EdgeStream&);
  Frozen narrow, wide, packed;
  Solved sn, sw, sp;
};

}  // namespace

int main() {
  obs::BenchReport report("scale");
  report.context("workload",
                 "streamed relay chain n=1e6 extra_per_vertex=8 "
                 "max_skip=1000 lengths=[1,16] seed=0x5CA1E; rmat scale=20 "
                 "m=1e7 (a,b,c)=(0.57,0.19,0.19) lengths=[1,16] "
                 "seed=0x5CA1E2");
  report.context("paths", "generator -> compile_streamed; no Graph, no "
                          "nested-vector Network ever materialized; packed "
                          "lane freezes under kAuto (selects delta-packed "
                          "blocks at this scale)");

  Instance relay{"", kN, relay_edges, {}, {}, {}, {}, {}, {}};
  Instance rmat{"rmat/", std::size_t{1} << kRmatScale, rmat_edges,
                {},       {}, {}, {}, {}, {}};

  bool ok = true;
  for (Instance* inst : {&relay, &rmat}) {
    inst->narrow = freeze(inst->n, inst->edges, snn::StoragePolicy::kNarrow);
    inst->wide = freeze(inst->n, inst->edges, snn::StoragePolicy::kWide);
    inst->packed = freeze(inst->n, inst->edges, snn::StoragePolicy::kAuto);
    ok = expect_encoding("kNarrow", inst->narrow, 1) && ok;
    ok = expect_encoding("kWide", inst->wide, 0) && ok;
    ok = expect_encoding("kAuto-at-scale", inst->packed, 2) && ok;
  }
  if (!ok) return 1;

  if (relay.narrow.build.num_synapses < 8000000 + kN) {
    std::cerr << "bench_scale: only " << relay.narrow.build.num_synapses
              << " synapses — below the m >= 8e6 acceptance floor\n";
    return 1;
  }
  const auto nb = static_cast<double>(relay.narrow.build.csr_bytes);
  const auto wb = static_cast<double>(relay.wide.build.csr_bytes);
  if (nb > 0.7 * wb) {
    std::cerr << "bench_scale: narrow freeze " << relay.narrow.build.csr_bytes
              << " B is not >= 30% smaller than wide "
              << relay.wide.build.csr_bytes << " B\n";
    return 1;
  }
  // ISSUE 10 compression floor: packed >= 25% under NARROW, per instance.
  for (const Instance* inst : {&relay, &rmat}) {
    const auto pn = static_cast<double>(inst->packed.build.csr_bytes);
    const auto nn = static_cast<double>(inst->narrow.build.csr_bytes);
    if (pn > 0.75 * nn) {
      std::cerr << "bench_scale: " << (inst->tag[0] ? inst->tag : "relay/")
                << "packed freeze " << inst->packed.build.csr_bytes
                << " B is not >= 25% smaller than narrow "
                << inst->narrow.build.csr_bytes << " B\n";
      return 1;
    }
  }

  for (Instance* inst : {&relay, &rmat}) {
    const std::string base = std::string("scale/") + inst->tag;
    record_freeze(report, base + "freeze/narrow", inst->narrow);
    record_freeze(report, base + "freeze/wide", inst->wide);
    record_freeze(report, base + "freeze/packed", inst->packed);

    inst->sn = solve(inst->narrow.net);
    inst->sw = solve(inst->wide.net);
    inst->sp = solve(inst->packed.net);
    if (!runs_agree((base + "narrow-vs-wide").c_str(), inst->sn, inst->sw) ||
        !runs_agree((base + "packed-vs-narrow").c_str(), inst->sp, inst->sn)) {
      return 1;
    }
    record_run(report, base + "sssp/narrow", inst->sn);
    record_run(report, base + "sssp/wide", inst->sw);
    record_run(report, base + "sssp/packed", inst->sp);
  }
  if (relay.sn.stats.spikes != kN) {
    std::cerr << "bench_scale: " << relay.sn.stats.spikes
              << " spikes, expected " << kN << " (SSSP did not complete)\n";
    return 1;
  }

  for (const Instance* inst : {&relay, &rmat}) {
    const char* tag = inst->tag[0] ? "rmat" : "relay";
    const auto nbi = static_cast<double>(inst->narrow.build.csr_bytes);
    const auto pbi = static_cast<double>(inst->packed.build.csr_bytes);
    std::cout << tag << ": n=" << inst->n
              << " m=" << inst->narrow.build.num_synapses << "\n  narrow "
              << inst->narrow.build.csr_bytes << " B ("
              << inst->narrow.net.bytes_per_synapse() << " B/syn), wide "
              << inst->wide.build.csr_bytes << " B, packed "
              << inst->packed.build.csr_bytes << " B ("
              << inst->packed.net.bytes_per_synapse() << " B/syn) — packed "
              << (100.0 - 100.0 * pbi / nbi) << "% under narrow\n"
              << "  sssp T=" << inst->sn.stats.end_time
              << " spikes=" << inst->sn.stats.spikes
              << " deliveries=" << inst->sn.stats.deliveries << "\n  narrow "
              << rate_per_sec(inst->sn.stats.deliveries, inst->sn.run_ns)
              << " deliveries/sec, packed "
              << rate_per_sec(inst->sp.stats.deliveries, inst->sp.run_ns)
              << " deliveries/sec (decode_blocks="
              << inst->sp.stats.decode_blocks << ")\n";
  }
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
