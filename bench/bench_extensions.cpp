// Measured profiles for the systems built beyond the paper's evaluation
// (DESIGN.md §2 extensions): the neuromorphic-assisted max flow (Section 8
// future work), the gate-level matrix-vector round (Section 2.2's
// generalisation), and the SNN→threshold-circuit unrolling (Section 1's TC
// simulation) — so each extension has a cost table, not just tests.
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "core/timer.h"
#include "graph/generators.h"
#include "nga/matvec.h"
#include "nga/matvec_gate.h"
#include "nga/maxflow.h"
#include "snn/network.h"
#include "snn/unroll.h"

using namespace sga;

int main() {
  obs::BenchReport report("extensions");
  std::cout << "=== Extension 1: spiking max flow (Section 8 direction) "
               "===\n\n";
  Table mf({"n", "m", "max flow", "phases", "spikes (all searches)",
            "SNN steps", "wall (ms)"});
  Rng rng(0xE57);
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    const Graph g = make_random_graph(n, 6 * n, {1, 12}, rng);
    nga::MaxFlowOptions opt;
    opt.source = 0;
    opt.sink = static_cast<VertexId>(n - 1);
    WallTimer t;
    const auto r = nga::spiking_max_flow(g, opt);
    SGA_CHECK(r.value == nga::reference_max_flow(g, 0, opt.sink),
              "max flow mismatch");
    mf.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::num(static_cast<std::uint64_t>(6 * n)),
                Table::num(r.value), Table::num(r.phases),
                Table::num(r.total_spikes), Table::num(r.total_snn_steps),
                Table::fixed(t.millis(), 1)});
  }
  mf.print(std::cout);
  report.add_table("mf", mf);
  std::cout << "Each search spikes every reached vertex once; SNN steps per "
               "phase equal the residual BFS depth — the search is the part "
               "the fabric parallelises.\n";

  std::cout << "\n=== Extension 2: gate-level y = A·x (Section 2.2) ===\n\n";
  Table mv({"n", "m", "in bits", "neurons", "synapses", "T (steps)",
            "spikes"});
  for (const std::size_t n : {6u, 10u, 16u, 24u}) {
    Rng r2(0xE58 + n);
    const Graph g = make_random_graph(n, 3 * n, {1, 7}, r2);
    std::vector<std::uint64_t> x(n);
    for (auto& v : x) v = static_cast<std::uint64_t>(r2.uniform_int(0, 15));
    const auto got = nga::matvec_gate_level(g, x, 4);
    const auto ref = nga::matvec_power(g, x, 1);
    for (VertexId v = 0; v < n; ++v) {
      SGA_CHECK(g.in_degree(v) == 0 || got.y[v] == ref[v], "matvec mismatch");
    }
    mv.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::num(static_cast<std::uint64_t>(3 * n)), "4",
                Table::num(static_cast<std::uint64_t>(got.neurons)),
                Table::num(static_cast<std::uint64_t>(got.synapses)),
                Table::num(got.execution_time), Table::num(got.sim.spikes)});
  }
  mv.print(std::cout);
  report.add_table("mv", mv);
  std::cout << "One constant multiplier per edge, one adder tree per node; "
               "constant execution time in n (the depth depends only on "
               "operand widths and max in-degree) — the Section 2.2 NGA made "
               "physical.\n";

  std::cout << "\n=== Extension 3: SNN -> threshold-circuit unrolling "
               "(Section 1) ===\n\n";
  Table ur({"neurons n", "horizon T", "unrolled gates", "gates = n*(T+1)?",
            "unroll (ms)"});
  for (const auto& [n, horizon] : std::vector<std::pair<std::size_t, Time>>{
           {16, 16}, {64, 32}, {256, 64}}) {
    Rng r3(0xE59 + n);
    snn::Network net;
    for (std::size_t i = 0; i < n; ++i) {
      net.add_neuron(snn::NeuronParams{
          0, static_cast<Voltage>(r3.uniform_int(1, 2)), 1.0});
    }
    for (std::size_t s = 0; s < 4 * n; ++s) {
      net.add_synapse(
          static_cast<NeuronId>(r3.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
          static_cast<NeuronId>(r3.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
          1, r3.uniform_int(1, 4));
    }
    WallTimer t;
    const auto uc = snn::unroll_to_threshold_circuit(net.compile(), horizon);
    const bool exact =
        uc.circuit.num_neurons() == n * (static_cast<std::size_t>(horizon) + 1);
    ur.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::num(horizon),
                Table::num(static_cast<std::uint64_t>(uc.circuit.num_neurons())),
                exact ? "yes" : "NO", Table::fixed(t.millis(), 2)});
  }
  ur.print(std::cout);
  report.add_table("ur", ur);
  std::cout << "Polynomial overhead, exactly n·(T+1) gates: the Section-1 "
               "claim that discretized SNNs live inside TC.\n";
  return 0;
}
