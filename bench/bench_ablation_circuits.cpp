// Ablation bench (DESIGN.md §4): which Section-5 max circuit should the
// k-hop algorithms instantiate at graph nodes? Wired-OR (O(dλ) neurons,
// O(λ) depth) vs brute force (O(d²) neurons, constant depth, 2^{λ-1}
// weights) — measured on both gate-level algorithms: neurons, node depth,
// resulting round period / edge scale, execution time, spikes, wall time.
// The trade is real: brute force shortens every round (smaller x, smaller
// edge scale) but pays quadratic neurons on high-degree nodes.
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "core/timer.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "obs/report.h"

using namespace sga;

namespace {

void run_family(obs::BenchReport& report, const char* name, const Graph& g,
                std::uint32_t k) {
  const auto ref = bellman_ford_khop(g, 0, k);
  std::cout << "--- " << name << ": " << g.summary() << ", k = " << k
            << " ---\n";
  Table t({"algorithm", "max circuit", "neurons", "node depth",
           "period/scale", "T (steps)", "spikes", "wall (ms)"});
  for (const auto kind :
       {circuits::MaxKind::kWiredOr, circuits::MaxKind::kBruteForce}) {
    const char* kname =
        kind == circuits::MaxKind::kWiredOr ? "wired-OR" : "brute force";
    {
      WallTimer w;
      nga::KHopTtlOptions opt;
      opt.source = 0;
      opt.k = k;
      opt.max_kind = kind;
      const auto r = nga::khop_sssp_ttl(g, opt);
      SGA_CHECK(r.dist == ref.dist, "TTL ablation result mismatch");
      report.record(std::string(name) + "/ttl/" + kname)
          .T(r.execution_time)
          .spikes(r.sim.spikes)
          .events(r.sim.event_times)
          .wall_ns(static_cast<std::uint64_t>(w.seconds() * 1e9))
          .set("neurons", static_cast<std::uint64_t>(r.neurons));
      t.add_row({"TTL (4.1)", kname,
                 Table::num(static_cast<std::uint64_t>(r.neurons)),
                 Table::num(static_cast<std::int64_t>(r.node_depth)),
                 Table::num(r.scale), Table::num(r.execution_time),
                 Table::num(r.sim.spikes), Table::fixed(w.millis(), 1)});
    }
    {
      WallTimer w;
      nga::KHopPolyOptions opt;
      opt.source = 0;
      opt.k = k;
      opt.max_kind = kind;
      const auto r = nga::khop_sssp_poly(g, opt);
      SGA_CHECK(r.dist == ref.dist, "poly ablation result mismatch");
      report.record(std::string(name) + "/poly/" + kname)
          .T(r.execution_time)
          .spikes(r.sim.spikes)
          .events(r.sim.event_times)
          .wall_ns(static_cast<std::uint64_t>(w.seconds() * 1e9))
          .set("neurons", static_cast<std::uint64_t>(r.neurons));
      t.add_row({"poly (4.2)", kname,
                 Table::num(static_cast<std::uint64_t>(r.neurons)), "-",
                 Table::num(r.round_period), Table::num(r.execution_time),
                 Table::num(r.sim.spikes), Table::fixed(w.millis(), 1)});
    }
  }
  report.add_table(name, t);
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  obs::BenchReport report("ablation_circuits");
  std::cout << "=== Ablation: Section-5 max-circuit choice inside the k-hop "
               "algorithms ===\n\n";
  Rng rng(0xAB1A);
  run_family(report, "sparse random", make_random_graph(24, 72, {1, 6}, rng),
             5);
  run_family(report, "dense random", make_random_graph(16, 160, {1, 6}, rng),
             5);
  run_family(report, "complete (max degree)",
             make_complete_graph(10, {1, 5}, rng), 4);
  run_family(report, "path (degree 1)", make_path_graph(16, {1, 6}, rng), 8);

  std::cout
      << "Reading: brute force wins execution time (constant-depth nodes → "
         "smaller round period and TTL edge scale) but loses neurons "
         "quadratically as in-degree grows — compare the complete-graph vs "
         "path rows. Wired-OR is the paper's neuron-saving default "
         "(Section 4.1: \"we assume we are using circuits of the second, "
         "neuron-saving type\").\n";
  return 0;
}
