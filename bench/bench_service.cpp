// Persistent query service bench (docs/SERVICE.md; ISSUE 6 acceptance
// workload): one QueryService, a deterministic mixed SSSP / k-hop /
// max-flow request stream, and the compile-once serve-many contract
// checked hard — after the warmup pass the cache miss counter must never
// move again (zero re-freezes; every request is a hit).
//
// Emitted to BENCH_service.json for the bench_compare trajectory. The
// semantic keys — query counts, served/rejected splits, cache hits and
// misses, refreezes_after_warmup, total spikes/deliveries/T — are
// machine-independent (per-request answers are deterministic regardless
// of worker interleaving, and the promise/shared_future memoization makes
// the hit/miss split deterministic under concurrency). Only wall time and
// the derived latency percentiles / throughput are noise, so they use the
// *_ns / *_per_sec key suffixes bench_compare treats as wall-tolerant.
#include <algorithm>
#include <cstdint>
#include <future>
#include <iostream>
#include <vector>

#include "core/random.h"
#include "core/timer.h"
#include "graph/generators.h"
#include "obs/report.h"
#include "svc/congestion.h"
#include "svc/service.h"

using namespace sga;
using namespace sga::svc;

namespace {

// Three graphs, one per workload. SSSP carries the bulk of the traffic on
// the largest instance; k-hop uses k ∈ {5, 8} which share one TTL fabric
// (λ = ⌈log 8⌉ = 3); max-flow stays small because Edmonds–Karp re-freezes
// residual networks per phase by design (algorithmic cost, not cache
// misses — see serve_maxflow).
Graph sssp_graph() {
  Rng rng(0x5E71CE);
  return make_random_graph(2000, 12000, {1, 16}, rng);
}
Graph khop_graph() {
  Rng rng(0x5E71CF);
  return make_random_graph(400, 2000, {1, 9}, rng);
}
Graph flow_graph() {
  Rng rng(0x5E71D0);
  return make_random_graph(24, 96, {1, 6}, rng);
}

struct Handles {
  std::uint64_t sssp, khop, flow;
};

// The deterministic mixed stream: 6 SSSP : 3 k-hop : 1 max-flow per block
// of ten, sources stridden over each graph. Pure function of the index —
// the latency and throughput phases replay the identical stream.
QueryRequest mixed_request(const Handles& h, std::size_t i) {
  QueryRequest req;
  const std::size_t slot = i % 10;
  if (slot < 6) {
    req.kind = QueryKind::kSssp;
    req.graph = h.sssp;
    req.source = static_cast<VertexId>((i * 37) % 2000);
  } else if (slot < 9) {
    req.kind = QueryKind::kKHop;
    req.graph = h.khop;
    req.source = static_cast<VertexId>((i * 13) % 400);
    req.k = (i % 2 == 0) ? 5 : 8;  // same λ=3 fabric either way
  } else {
    req.kind = QueryKind::kMaxFlow;
    req.graph = h.flow;
    req.source = 0;
    req.target = 23;
  }
  return req;
}

constexpr std::size_t kQueries = 80;

std::uint64_t percentile_ns(std::vector<std::uint64_t> v, int pct) {
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) * static_cast<std::size_t>(pct) / 100];
}

double rate_per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(count) * 1e9 / static_cast<double>(wall_ns);
}

}  // namespace

int main() {
  obs::BenchReport report("service");
  report.context("workload.sssp", "n=2000 m=12000 lengths=[1,16] 6/10 mix");
  report.context("workload.khop", "n=400 m=2000 k in {5,8} (one fabric) 3/10");
  report.context("workload.maxflow", "n=24 m=96 source=0 sink=23 1/10");
  report.context("pinning", "workers=2 slots=4 cache=8, never hardware-derived");

  ServiceOptions opt;
  opt.num_workers = 2;
  opt.slots_per_worker = 4;
  opt.cache_capacity = 8;
  // The throughput phase enqueues the whole stream at once; admit all of
  // it — shedding is measured separately in the service/admission record.
  opt.max_queue_depth = 2 * kQueries;
  QueryService service(opt);
  Handles h;
  h.sssp = service.add_graph(sssp_graph());
  h.khop = service.add_graph(khop_graph());
  h.flow = service.add_graph(flow_graph());

  // ---- warmup: pay every freeze here, once -----------------------------
  // One request per distinct artifact (SSSP fabric + the shared k-hop
  // fabric; max-flow warms its code path but owns no cached artifact).
  for (const std::size_t i : {std::size_t{0}, std::size_t{6}, std::size_t{9}}) {
    const QueryResult r = service.query(mixed_request(h, i));
    if (!r.ok()) {
      std::cerr << "bench_service: warmup query failed: " << r.error << "\n";
      return 1;
    }
  }
  const std::uint64_t misses_after_warmup = service.stats().cache.misses;
  report.record("service/warmup")
      .set("queries", std::uint64_t{3})
      .set("cache_misses", misses_after_warmup);

  // ---- latency phase: sequential, per-query wall clock -----------------
  std::vector<std::uint64_t> lat_ns;
  lat_ns.reserve(kQueries);
  std::uint64_t lat_spikes = 0, lat_deliveries = 0;
  std::int64_t lat_T = 0;
  std::uint64_t lat_wall = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    WallTimer w;
    const QueryResult r = service.query(mixed_request(h, i));
    const auto ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
    if (!r.ok()) {
      std::cerr << "bench_service: query " << i << " failed: " << r.error
                << "\n";
      return 1;
    }
    lat_ns.push_back(ns);
    lat_wall += ns;
    lat_spikes += r.total_spikes;
    lat_deliveries += r.sim.deliveries;
    lat_T += r.execution_time;
  }
  report.record("service/latency")
      .set("queries", std::uint64_t{kQueries})
      .T(lat_T)
      .spikes(lat_spikes)
      .events(lat_deliveries)
      .wall_ns(lat_wall)
      .set("p50_ns", percentile_ns(lat_ns, 50))
      .set("p99_ns", percentile_ns(lat_ns, 99))
      .set("queries_per_sec", rate_per_sec(kQueries, lat_wall));

  // ---- throughput phase: the same stream, submitted concurrently -------
  std::uint64_t tp_wall = 0;
  std::uint64_t tp_spikes = 0;
  {
    WallTimer w;
    std::vector<std::future<QueryResult>> futs;
    futs.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      futs.push_back(service.submit(mixed_request(h, i)));
    }
    for (std::size_t i = 0; i < kQueries; ++i) {
      const QueryResult r = futs[i].get();
      if (!r.ok()) {
        std::cerr << "bench_service: concurrent query " << i
                  << " failed: " << r.error << "\n";
        return 1;
      }
      tp_spikes += r.total_spikes;
    }
    tp_wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
  }

  // ---- the tentpole acceptance gate: zero re-freezes after warmup ------
  const QueryService::Stats st = service.stats();
  const std::uint64_t refreezes = st.cache.misses - misses_after_warmup;
  if (refreezes != 0) {
    std::cerr << "bench_service: " << refreezes
              << " cache misses AFTER warmup — compile-once is broken\n";
    return 1;
  }
  report.record("service/throughput")
      .set("queries", std::uint64_t{kQueries})
      .spikes(tp_spikes)
      .wall_ns(tp_wall)
      .set("queries_per_sec", rate_per_sec(kQueries, tp_wall))
      .set("cache_hits", st.cache.hits)
      .set("cache_misses", st.cache.misses)
      .set("refreezes_after_warmup", refreezes)
      .set("served", st.served)
      .set("failed", st.failed);

  // ---- admission: deterministic shed pattern, own service --------------
  // DutyCycleCongestor sheds by submission SEQUENCE (admit 2, shed 1), not
  // timing, so the rejected/served split is exact on every machine.
  {
    DutyCycleCongestor congestor(2, 1);
    ServiceOptions aopt;
    aopt.num_workers = 1;
    aopt.shedder = &congestor;
    QueryService admission(aopt);
    const std::uint64_t handle = admission.add_graph(flow_graph());
    std::vector<std::future<QueryResult>> futs;
    for (std::size_t i = 0; i < 30; ++i) {
      QueryRequest req;
      req.kind = QueryKind::kSssp;
      req.graph = handle;
      req.source = static_cast<VertexId>(i % 24);
      futs.push_back(admission.submit(std::move(req)));
    }
    std::uint64_t ok = 0, shed = 0;
    for (auto& f : futs) {
      (f.get().status == QueryStatus::kRejected) ? ++shed : ++ok;
    }
    const QueryService::Stats ast = admission.stats();
    report.record("service/admission")
        .set("submitted", ast.submitted)
        .set("served", ok)
        .set("rejected", shed)
        .set("congestor_admitted", congestor.admitted())
        .set("congestor_rejected", congestor.rejected());
  }

  report.metrics(service.metrics());

  std::cout << "service: " << kQueries << " mixed queries, "
            << st.cache.misses << " freezes (all in warmup), "
            << st.cache.hits << " cache hits\n"
            << "  latency p50 " << percentile_ns(lat_ns, 50) / 1000
            << " us, p99 " << percentile_ns(lat_ns, 99) / 1000 << " us\n"
            << "  throughput " << rate_per_sec(kQueries, tp_wall)
            << " queries/sec (2 workers)\n";
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
