// Verifies the running-time THEOREMS of Section 4 (4.1–4.4) against
// measured executions: the spiking time of each algorithm follows the
// claimed parameter dependence (L for the pseudopolynomial algorithms —
// with the log k scale factor for TTL — and k·log(nU) for the polynomial
// one), and the neuron counts follow O(m log k) / O(m log(nU)).
#include <iostream>

#include "analysis/fit.h"
#include "core/bitops.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/sssp_event.h"

using namespace sga;

int main() {
  obs::BenchReport report("theorems4");
  Rng rng(0x444);

  std::cout << "=== Theorem 4.1: pseudopolynomial SSSP runs in O(L + m) "
               "===\n\n";
  Table t1({"U", "L (deepest distance)", "measured T", "T == L?"});
  std::vector<double> l_vals, t_vals;
  for (const Weight u : {2, 8, 32, 128, 512}) {
    Rng r(0x441);
    const Graph g = make_random_graph(96, 480, {1, u}, r);
    nga::SpikingSsspOptions opt;
    opt.source = 0;
    opt.record_parents = false;
    const auto run = nga::spiking_sssp(g, opt);
    const auto ref = dijkstra(g, 0);
    Weight ecc = 0;
    for (VertexId v = 0; v < 96; ++v) {
      if (ref.reachable(v)) ecc = std::max(ecc, ref.dist[v]);
    }
    l_vals.push_back(static_cast<double>(ecc));
    t_vals.push_back(static_cast<double>(run.execution_time));
    t1.add_row({Table::num(u), Table::num(ecc), Table::num(run.execution_time),
                run.execution_time == ecc ? "yes" : "NO"});
  }
  t1.print(std::cout);
  report.add_table("t1", t1);
  std::cout << "T vs L: "
            << analysis::describe(analysis::check_power_law(l_vals, t_vals, 1.0, 0.02))
            << " — the spiking portion is exactly L.\n";

  std::cout << "\n=== Theorem 4.2: k-hop TTL runs in O((L + m) log k) ===\n\n";
  // Fixed graph, sweep k: the execution time scales like S(k)·L where the
  // edge-scale S grows with the node-circuit depth, which grows with
  // λ = ceil(log k).
  Rng r2(0x442);
  const Graph gk = make_random_graph(24, 96, {2, 6}, r2);
  Table t2({"k", "lambda", "scale S", "node depth", "measured T",
            "T / (S*L_k)"});
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    nga::KHopTtlOptions opt;
    opt.source = 0;
    opt.k = k;
    const auto run = nga::khop_sssp_ttl(gk, opt);
    Weight lk = 0;
    for (VertexId v = 0; v < 24; ++v) {
      if (run.reachable(v)) lk = std::max(lk, run.dist[v]);
    }
    t2.add_row({Table::num(static_cast<std::uint64_t>(k)),
                Table::num(static_cast<std::int64_t>(run.lambda)),
                Table::num(run.scale),
                Table::num(static_cast<std::int64_t>(run.node_depth)),
                Table::num(run.execution_time),
                Table::fixed(static_cast<double>(run.execution_time) /
                                 static_cast<double>(run.scale * lk),
                             3)});
  }
  t2.print(std::cout);
  report.add_table("t2", t2);
  std::cout << "T tracks S·L with S = Θ(node depth) = Θ(log k) — the log k "
               "factor of Theorem 4.2. (T/(S·L) < 1 because the last node "
               "circuit needn't finish for the readout relay to fire.)\n";

  std::cout << "\n=== Theorems 4.3 / 4.4: polynomial k-hop runs in "
               "k rounds of Θ(log(nU)) steps ===\n\n";
  Table t3({"n", "U", "k", "lambda", "round period x", "measured T",
            "T == k*x?"});
  std::vector<double> lambdas, periods;
  for (const Weight u : {2, 16, 256, 4096}) {
    Rng r3(0x443);
    const Graph gp = make_random_graph(20, 80, {1, u}, r3);
    nga::KHopPolyOptions opt;
    opt.source = 0;
    opt.k = 4;
    const auto run = nga::khop_sssp_poly(gp, opt);
    lambdas.push_back(static_cast<double>(run.lambda));
    periods.push_back(static_cast<double>(run.round_period));
    t3.add_row({"20", Table::num(u), "4",
                Table::num(static_cast<std::int64_t>(run.lambda)),
                Table::num(run.round_period), Table::num(run.execution_time),
                run.execution_time == 4 * run.round_period ? "yes" : "NO"});
  }
  t3.print(std::cout);
  report.add_table("t3", t3);
  std::cout << "Round period vs lambda: "
            << analysis::describe(
                   analysis::check_power_law(lambdas, periods, 1.0, 0.15))
            << " — x = Θ(λ) = Θ(log(kU)), Theorem 4.3's x = c·log(nU).\n";

  std::cout << "\n=== Neuron counts (Section 4.5 accounting) ===\n\n";
  Table t4({"algorithm", "m", "param", "neurons", "neurons / (m * width)"});
  {
    Rng r4(0x445);
    for (const std::size_t m : {60u, 120u, 240u}) {
      const Graph g = make_random_graph(20, m, {1, 6}, r4);
      nga::KHopTtlOptions to;
      to.source = 0;
      to.k = 8;
      const auto ttl = nga::khop_sssp_ttl(g, to);
      t4.add_row({"TTL O(m log k)", Table::num(static_cast<std::uint64_t>(m)),
                  "k=8",
                  Table::num(static_cast<std::uint64_t>(ttl.neurons)),
                  Table::fixed(static_cast<double>(ttl.neurons) /
                                   (static_cast<double>(m) * ttl.lambda),
                               1)});
      nga::KHopPolyOptions po;
      po.source = 0;
      po.k = 8;
      const auto poly = nga::khop_sssp_poly(g, po);
      t4.add_row({"poly O(m log(nU))",
                  Table::num(static_cast<std::uint64_t>(m)), "k=8",
                  Table::num(static_cast<std::uint64_t>(poly.neurons)),
                  Table::fixed(static_cast<double>(poly.neurons) /
                                   (static_cast<double>(m) * poly.lambda),
                               1)});
    }
  }
  t4.print(std::cout);
  report.add_table("t4", t4);
  std::cout << "The neurons-per-(edge × message-bit) column is flat: neuron "
               "counts are Θ(m·λ), matching Theorems 4.2 / 4.3.\n";
  return 0;
}
