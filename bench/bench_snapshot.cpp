// Snapshot / restore / checkpoint-overhead bench (docs/PERSISTENCE.md;
// EXPERIMENTS.md checkpoint lane). Emitted to BENCH_snapshot.json for the
// bench_compare trajectory.
//
// Three records on one deterministic SSSP-like workload:
//   snapshot/size     — serialized image and journal bytes (EXACT: the
//                       format is versioned and the workload is seeded, so
//                       a byte drift means the format or the simulator's
//                       event trajectory changed),
//   snapshot/ops      — snapshot + restore wall cost (wall-tolerant),
//   snapshot/overhead — the same run straight-through vs paused and
//                       checkpointed every N steps; checkpoint count,
//                       spikes, and T are exact and must MATCH the
//                       uninterrupted run (the bench aborts otherwise —
//                       it doubles as a cheap end-to-end differential).
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/random.h"
#include "core/timer.h"
#include "obs/report.h"
#include "snn/compiled_network.h"
#include "snn/network.h"
#include "snn/simulator.h"
#include "snn/snapshot.h"

using namespace sga;
using namespace sga::snn;

namespace {

// The workload: a seeded random integer-weight LIF network, large enough
// that a snapshot carries real queue + neuron state, small enough to keep
// the bench under a second. Mirrors the test harness generator.
CompiledNetwork build_net(Network& net) {
  Rng rng(0x5AAB5);
  const std::size_t n = 2000, m = 12000;
  for (std::size_t i = 0; i < n; ++i) {
    NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.tau = rng.bernoulli(0.3) ? 1.0 : 0.0;
    net.add_neuron(p);
  }
  const auto last = static_cast<std::int64_t>(n) - 1;
  for (std::size_t e = 0; e < m; ++e) {
    SynWeight w = static_cast<SynWeight>(rng.uniform_int(1, 3));
    if (rng.bernoulli(0.1)) w = -w;
    net.add_synapse(static_cast<NeuronId>(rng.uniform_int(0, last)),
                    static_cast<NeuronId>(rng.uniform_int(0, last)), w,
                    rng.uniform_int(1, 8));
  }
  return CompiledNetwork(net);
}

std::vector<std::pair<NeuronId, Time>> injections() {
  Rng rng(0x5AAB6);
  std::vector<std::pair<NeuronId, Time>> inj;
  for (int i = 0; i < 40; ++i) {
    inj.emplace_back(static_cast<NeuronId>(rng.uniform_int(0, 1999)),
                     rng.uniform_int(0, 4));
  }
  return inj;
}

SimConfig run_config() {
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.max_time = 200;
  return cfg;
}

}  // namespace

int main() {
  obs::BenchReport report("snapshot");
  report.context("workload", "n=2000 m=12000 delays=[1,8] seeded, T<=200");
  report.context("engine", "serial, calendar queue, segmented fan-out");
  report.context("checkpoint_interval", "20 steps");

  Network net_builder;
  const CompiledNetwork net = build_net(net_builder);
  const auto inj = injections();
  const SimConfig cfg = run_config();

  // ---- straight-through reference --------------------------------------
  Simulator ref(net);
  for (const auto& [id, t] : inj) ref.inject_spike(id, t);
  std::uint64_t run_plain_ns = 0;
  SimStats sref;
  {
    WallTimer w;
    sref = ref.run(cfg);
    run_plain_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  }

  // ---- snapshot size + op cost at the run's midpoint -------------------
  Simulator mid(net);
  SpikeJournal journal;
  for (const auto& [id, t] : inj) {
    mid.inject_spike(id, t);
    journal.record(id, t);
  }
  SimConfig pause_cfg = cfg;
  pause_cfg.pause_time = sref.end_time / 2;
  mid.run(pause_cfg);
  if (!mid.paused()) {
    std::cerr << "bench_snapshot: workload ended before the midpoint pause\n";
    return 1;
  }

  constexpr int kOps = 50;
  std::uint64_t snapshot_ns = 0, restore_ns = 0;
  std::vector<std::uint8_t> image;
  {
    WallTimer w;
    for (int i = 0; i < kOps; ++i) image = mid.snapshot();
    snapshot_ns = static_cast<std::uint64_t>(w.seconds() * 1e9) / kOps;
  }
  {
    WallTimer w;
    for (int i = 0; i < kOps; ++i) {
      Simulator back(net);
      back.restore(image);
    }
    restore_ns = static_cast<std::uint64_t>(w.seconds() * 1e9) / kOps;
  }
  const std::vector<std::uint8_t> journal_bytes = journal.serialize();
  const SnapshotImage parsed = parse_snapshot(image);
  std::uint64_t queued_deliveries = 0;
  for (const auto& b : parsed.queue) queued_deliveries += b.deliveries.size();
  report.record("snapshot/size")
      .set("snapshot_bytes", static_cast<std::uint64_t>(image.size()))
      .set("journal_bytes",
           static_cast<std::uint64_t>(journal_bytes.size()))
      .set("journal_entries", static_cast<std::uint64_t>(journal.size()))
      .set("queued_deliveries", queued_deliveries);
  report.record("snapshot/ops")
      .set("snapshot_ns", snapshot_ns)
      .set("restore_ns", restore_ns)
      .set("ops_averaged", std::uint64_t{kOps});

  // The restored run must finish exactly like the reference (cheap
  // end-to-end differential inside the bench itself).
  Simulator resumed(net);
  resumed.restore(image);
  const SimStats sres = resumed.run(cfg);
  if (sres.spikes != sref.spikes || sres.end_time != sref.end_time) {
    std::cerr << "bench_snapshot: restored run diverged from reference\n";
    return 1;
  }

  // ---- checkpoint-every-N overhead -------------------------------------
  constexpr Time kInterval = 20;
  Simulator ck(net);
  for (const auto& [id, t] : inj) ck.inject_spike(id, t);
  std::uint64_t run_ck_ns = 0;
  std::uint64_t checkpoints = 0, checkpoint_bytes = 0;
  SimStats sck;
  {
    WallTimer w;
    Time pause_at = kInterval;
    while (true) {
      SimConfig c = cfg;
      c.pause_time = pause_at;
      sck = ck.run(c);
      if (!ck.paused()) break;
      const std::vector<std::uint8_t> cp = ck.snapshot();
      ++checkpoints;
      checkpoint_bytes += cp.size();
      pause_at += kInterval;
    }
    run_ck_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  }
  if (sck.spikes != sref.spikes || sck.end_time != sref.end_time ||
      sck.deliveries != sref.deliveries) {
    std::cerr << "bench_snapshot: checkpointed run diverged from reference\n";
    return 1;
  }
  report.record("snapshot/overhead")
      .T(sref.end_time)
      .spikes(sref.spikes)
      .events(sref.deliveries)
      .set("checkpoints", checkpoints)
      .set("checkpoint_bytes_total", checkpoint_bytes)
      .set("run_no_checkpoint_ns", run_plain_ns)
      .set("run_checkpoint_ns", run_ck_ns);

  std::cout << "snapshot: " << image.size() << " bytes at T="
            << pause_cfg.pause_time << ", snapshot " << snapshot_ns / 1000
            << " us, restore " << restore_ns / 1000 << " us\n"
            << "  checkpoint every " << kInterval << " steps: " << checkpoints
            << " checkpoints, run " << run_plain_ns / 1000 << " us plain vs "
            << run_ck_ns / 1000 << " us checkpointed\n";
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
