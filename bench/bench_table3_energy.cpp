// Reproduces Table 3 (Appendix A) and the Figure 6/7 aggregation
// arithmetic: prints the platform survey, then converts measured spike
// counts of our three neuromorphic algorithms into per-platform energy and
// compares with the CPU baselines' operation counts.
#include <iostream>

#include "analysis/platforms.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/sssp_event.h"

using namespace sga;
using namespace sga::analysis;

int main() {
  obs::BenchReport report("table3_energy");
  std::cout << "=== Table 3: current scalable neuromorphic platforms ===\n\n";
  Table t({"platform", "org", "design", "process", "neurons/core",
           "cores/chip", "pJ/spike", "power (W)"});
  for (const auto& p : platforms()) {
    t.add_row({p.name, p.organization, p.design,
               Table::num(static_cast<std::int64_t>(p.process_nm)) + "nm",
               Table::opt(p.neurons_per_core), Table::opt(p.cores_per_chip),
               Table::opt(p.pj_per_spike), Table::fixed(p.watts, 2)});
  }
  t.print(std::cout);
  report.add_table("t", t);

  // Workload: one mid-size SSSP + one k-hop instance.
  Rng rng(0x7AB3);
  const Graph g = make_random_graph(512, 4096, {1, 16}, rng);
  nga::SpikingSsspOptions sopt;
  sopt.source = 0;
  sopt.record_parents = false;
  const auto sssp = nga::spiking_sssp(g, sopt);
  const auto dij = dijkstra(g, 0);

  const Graph gk = make_random_graph(32, 128, {1, 6}, rng);
  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = 6;
  const auto ttl = nga::khop_sssp_ttl(gk, topt);
  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = 6;
  const auto poly = nga::khop_sssp_poly(gk, popt);
  const auto bf = bellman_ford_khop(gk, 0, 6);

  std::cout << "\n=== Energy: measured spikes × Table-3 pJ/spike ===\n\n";
  Table e({"workload", "spikes / ops", "TrueNorth (J)", "Loihi (J)",
           "SpiNNaker 1 (J)", "CPU est. (J)"});
  auto row = [&](const std::string& name, std::uint64_t spikes,
                 std::uint64_t cpu_ops) {
    e.add_row({name, Table::num(spikes) + " / " + Table::num(cpu_ops),
               Table::sci(spike_energy_joules(platform_by_name("TrueNorth"),
                                              spikes),
                          2),
               Table::sci(spike_energy_joules(platform_by_name("Loihi"),
                                              spikes),
                          2),
               Table::sci(spike_energy_joules(platform_by_name("SpiNNaker 1"),
                                              spikes),
                          2),
               Table::sci(cpu_energy_joules(cpu_ops), 2)});
  };
  row("SSSP (n=512, m=4096)", sssp.sim.spikes, dij.ops.total());
  row("k-hop TTL (n=32, k=6)", ttl.sim.spikes, bf.ops.total());
  row("k-hop poly (n=32, k=6)", poly.sim.spikes, bf.ops.total());
  e.print(std::cout);
  report.add_table("e", e);

  std::cout << "\n=== Figures 6/7: aggregating chips into systems ===\n\n";
  Table c({"network size (neurons)", "TrueNorth chips", "Loihi chips",
           "Loihi Nahuku boards (32 chips)"});
  for (const std::uint64_t neurons :
       {100000ULL, 1000000ULL, 100000000ULL, 1000000000ULL}) {
    const auto loihi_chips =
        chips_required(platform_by_name("Loihi"), neurons);
    c.add_row({Table::num(neurons),
               Table::num(chips_required(platform_by_name("TrueNorth"),
                                         neurons)),
               Table::num(loihi_chips),
               Table::num((loihi_chips + 31) / 32)});
  }
  c.print(std::cout);
  report.add_table("c", c);
  std::cout << "\n(The paper: 128K neurons/Loihi chip, ~4M per fully "
               "populated Nahuku board, 100M-neuron systems available.)\n";

  // What fits on one chip? Invert the Section 4.5 neuron counts.
  std::cout << "\n=== Per-chip capacity: largest instance per algorithm "
               "===\n\n";
  Table cap({"platform", "SSSP pseudo (n = neurons)",
             "k-hop TTL edges (k=8)", "k-hop poly edges (k=8, U=16)"});
  for (const auto& p : platforms()) {
    const auto per_chip = p.neurons_per_chip();
    if (!per_chip) {
      continue;
    }
    // Measured constants from bench_theorems4: TTL ≈ 7·m·log k neurons,
    // poly ≈ 12·m·log(kU) neurons; pseudo SSSP = n neurons exactly.
    const double chip = *per_chip;
    const double ttl_edges = chip / (7.0 * 3.0);       // log2(8) = 3
    const double poly_edges = chip / (12.0 * 8.0);     // bits_for(9*16+1) = 8
    cap.add_row({p.name, Table::num(static_cast<std::uint64_t>(chip)),
                 Table::num(static_cast<std::uint64_t>(ttl_edges)),
                 Table::num(static_cast<std::uint64_t>(poly_edges))});
  }
  cap.print(std::cout);
  report.add_table("cap", cap);
  std::cout << "\n(Using the measured neurons-per-edge constants of "
               "bench_theorems4; e.g. one Loihi chip holds the full "
               "gate-level polynomial k-hop machinery for a ~1.4k-edge "
               "graph, or delay-coded SSSP for a 131k-vertex graph.)\n";
  return 0;
}
