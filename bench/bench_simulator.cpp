// google-benchmark microbenchmarks of the substrate itself: event-driven
// simulator throughput (deliveries/sec) across workload shapes, circuit
// evaluation latency, the spiking-SSSP end-to-end rate, and the
// event-queue ablation called out in DESIGN.md §4 (time-bucketed std::map
// — what the simulator uses — vs a flat std::priority_queue of single
// deliveries).
#include <benchmark/benchmark.h>

#include <map>
#include <queue>

#include "circuits/builder.h"
#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "core/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/sssp_event.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

void BM_SpikeChain(benchmark::State& state) {
  // A chain of relays: pure event-propagation throughput.
  const auto len = static_cast<std::size_t>(state.range(0));
  snn::Network net;
  for (std::size_t i = 0; i < len; ++i) net.add_threshold_neuron(1);
  for (std::size_t i = 0; i + 1 < len; ++i) {
    net.add_synapse(static_cast<NeuronId>(i), static_cast<NeuronId>(i + 1), 1,
                    1 + static_cast<Delay>(i % 7));
  }
  for (auto _ : state) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    const auto st = sim.run();
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_SpikeChain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_DenseFanout(benchmark::State& state) {
  // One source fanning out to many targets at staggered delays: stresses
  // bucket churn.
  const auto fan = static_cast<std::size_t>(state.range(0));
  snn::Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  for (std::size_t i = 0; i < fan; ++i) {
    const NeuronId t = net.add_threshold_neuron(1);
    net.add_synapse(src, t, 1, 1 + static_cast<Delay>(i % 97));
  }
  for (auto _ : state) {
    snn::Simulator sim(net);
    sim.inject_spike(src, 0);
    benchmark::DoNotOptimize(sim.run().deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fan));
}
BENCHMARK(BM_DenseFanout)->Arg(1 << 10)->Arg(1 << 15);

void BM_SpikingSssp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF01 + n);
  const Graph g = make_random_graph(n, 8 * n, {1, 32}, rng);
  for (auto _ : state) {
    nga::SpikingSsspOptions opt;
    opt.source = 0;
    opt.record_parents = false;
    benchmark::DoNotOptimize(nga::spiking_sssp(g, opt).execution_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * n));
}
BENCHMARK(BM_SpikingSssp)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DijkstraReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF02 + n);
  const Graph g = make_random_graph(n, 8 * n, {1, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0).dist.data());
  }
}
BENCHMARK(BM_DijkstraReference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MaxCircuitEval(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  snn::Network net;
  circuits::CircuitBuilder cb(net);
  const auto c = circuits::build_max_wired_or(cb, d, 8);
  Rng rng(0xBEEF03);
  std::vector<std::uint64_t> vals(static_cast<std::size_t>(d));
  for (auto& v : vals) v = static_cast<std::uint64_t>(rng.uniform_int(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::eval_max_circuit(net, c, vals));
  }
}
BENCHMARK(BM_MaxCircuitEval)->Arg(4)->Arg(16)->Arg(64);

void BM_KhopPolyGateLevel(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Rng rng(0xBEEF04);
  const Graph g = make_random_graph(16, 64, {1, 6}, rng);
  for (auto _ : state) {
    nga::KHopPolyOptions opt;
    opt.source = 0;
    opt.k = k;
    benchmark::DoNotOptimize(nga::khop_sssp_poly(g, opt).execution_time);
  }
}
BENCHMARK(BM_KhopPolyGateLevel)->Arg(2)->Arg(8);

// --- event-queue ablation (DESIGN.md §4) --------------------------------
// The same synthetic delivery stream pushed through (a) the simulator's
// structure — a std::map time bucket holding vectors — and (b) a flat
// std::priority_queue of individual deliveries.

struct FlatEvent {
  Time t;
  std::uint32_t target;
  bool operator>(const FlatEvent& o) const { return t > o.t; }
};

void BM_QueueBucketedMap(benchmark::State& state) {
  const int events = 1 << 16;
  Rng rng(0xBEEF05);
  for (auto _ : state) {
    std::map<Time, std::vector<std::uint32_t>> q;
    Rng r = rng;
    std::uint64_t processed = 0;
    // Seed, then pop-and-reschedule like a running simulation.
    for (int i = 0; i < 64; ++i) {
      q[r.uniform_int(1, 64)].push_back(static_cast<std::uint32_t>(i));
    }
    while (processed < events && !q.empty()) {
      auto it = q.begin();
      const Time t = it->first;
      auto bucket = std::move(it->second);
      q.erase(it);
      for (const auto tgt : bucket) {
        ++processed;
        if (processed + q.size() < events) {
          q[t + r.uniform_int(1, 64)].push_back(tgt);
        }
      }
    }
    benchmark::DoNotOptimize(processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          events);
}
BENCHMARK(BM_QueueBucketedMap);

void BM_QueueFlatPriority(benchmark::State& state) {
  const int events = 1 << 16;
  Rng rng(0xBEEF05);
  for (auto _ : state) {
    std::priority_queue<FlatEvent, std::vector<FlatEvent>, std::greater<>> q;
    Rng r = rng;
    std::uint64_t processed = 0;
    for (int i = 0; i < 64; ++i) {
      q.push({r.uniform_int(1, 64), static_cast<std::uint32_t>(i)});
    }
    while (processed < static_cast<std::uint64_t>(events) && !q.empty()) {
      const FlatEvent e = q.top();
      q.pop();
      ++processed;
      if (processed + q.size() < static_cast<std::uint64_t>(events)) {
        q.push({e.t + r.uniform_int(1, 64), e.target});
      }
    }
    benchmark::DoNotOptimize(processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          events);
}
BENCHMARK(BM_QueueFlatPriority);

}  // namespace

BENCHMARK_MAIN();
