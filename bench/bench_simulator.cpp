// google-benchmark microbenchmarks of the substrate itself: event-driven
// simulator throughput (deliveries/sec) across workload shapes, circuit
// evaluation latency, the spiking-SSSP end-to-end rate, and the
// event-queue ablation called out in DESIGN.md §4 — the REAL simulator run
// with QueueKind::kCalendar (ring-bucket calendar queue, the default hot
// path) vs QueueKind::kMap (the legacy std::map bucket queue), the
// fire-kernel ablation (FanoutKind::kSegmented delay-run bulk appends vs
// the legacy kPerSynapse loop, ARCHITECTURE.md §1.6), plus the batched
// multi-source SSSP driver vs 64 fresh single-source runs.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/timer.h"
#include "obs/report.h"
#include "circuits/builder.h"
#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "core/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/sssp_batch.h"
#include "nga/sssp_event.h"
#include "snn/reference_sim.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

void BM_SpikeChain(benchmark::State& state) {
  // A chain of relays: pure event-propagation throughput.
  const auto len = static_cast<std::size_t>(state.range(0));
  snn::Network net;
  for (std::size_t i = 0; i < len; ++i) net.add_threshold_neuron(1);
  for (std::size_t i = 0; i + 1 < len; ++i) {
    net.add_synapse(static_cast<NeuronId>(i), static_cast<NeuronId>(i + 1), 1,
                    1 + static_cast<Delay>(i % 7));
  }
  for (auto _ : state) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    const auto st = sim.run();
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_SpikeChain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_DenseFanout(benchmark::State& state) {
  // One source fanning out to many targets at staggered delays: stresses
  // bucket churn.
  const auto fan = static_cast<std::size_t>(state.range(0));
  snn::Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  for (std::size_t i = 0; i < fan; ++i) {
    const NeuronId t = net.add_threshold_neuron(1);
    net.add_synapse(src, t, 1, 1 + static_cast<Delay>(i % 97));
  }
  for (auto _ : state) {
    snn::Simulator sim(net);
    sim.inject_spike(src, 0);
    benchmark::DoNotOptimize(sim.run().deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fan));
}
BENCHMARK(BM_DenseFanout)->Arg(1 << 10)->Arg(1 << 15);

void BM_SpikingSssp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF01 + n);
  const Graph g = make_random_graph(n, 8 * n, {1, 32}, rng);
  for (auto _ : state) {
    nga::SpikingSsspOptions opt;
    opt.source = 0;
    opt.record_parents = false;
    benchmark::DoNotOptimize(nga::spiking_sssp(g, opt).execution_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * n));
}
BENCHMARK(BM_SpikingSssp)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DijkstraReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(0xBEEF02 + n);
  const Graph g = make_random_graph(n, 8 * n, {1, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0).dist.data());
  }
}
BENCHMARK(BM_DijkstraReference)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MaxCircuitEval(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  snn::Network net;
  circuits::CircuitBuilder cb(net);
  const auto c = circuits::build_max_wired_or(cb, d, 8);
  const snn::CompiledNetwork compiled = cb.freeze();  // pay validation once
  Rng rng(0xBEEF03);
  std::vector<std::uint64_t> vals(static_cast<std::size_t>(d));
  for (auto& v : vals) v = static_cast<std::uint64_t>(rng.uniform_int(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::eval_max_circuit(compiled, c, vals));
  }
}
BENCHMARK(BM_MaxCircuitEval)->Arg(4)->Arg(16)->Arg(64);

void BM_KhopPolyGateLevel(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Rng rng(0xBEEF04);
  const Graph g = make_random_graph(16, 64, {1, 6}, rng);
  for (auto _ : state) {
    nga::KHopPolyOptions opt;
    opt.source = 0;
    opt.k = k;
    benchmark::DoNotOptimize(nga::khop_sssp_poly(g, opt).execution_time);
  }
}
BENCHMARK(BM_KhopPolyGateLevel)->Arg(2)->Arg(8);

// --- event-queue ablation (DESIGN.md §4) --------------------------------
// The REAL simulator on a dense-delay recurrent workload, switched between
// the two QueueKind implementations. Arg = max synapse delay: larger spread
// means more distinct live time buckets, which is exactly where the
// std::map's per-event rebalancing loses to the calendar ring's O(1)
// slotting. items/sec = synaptic deliveries processed per second, so the
// reported per-item time is ns/event.

snn::Network make_dense_delay_net(std::size_t n, std::size_t fan,
                                  Delay max_delay) {
  Rng rng(0xBEEF06);
  snn::Network net;
  for (std::size_t i = 0; i < n; ++i) net.add_threshold_neuron(1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < fan; ++f) {
      net.add_synapse(static_cast<NeuronId>(i),
                      static_cast<NeuronId>(rng.uniform_int(
                          0, static_cast<std::int64_t>(n) - 1)),
                      1, rng.uniform_int(1, max_delay));
    }
  }
  return net;
}

void run_queue_ablation(benchmark::State& state, snn::QueueKind kind) {
  const auto max_delay = static_cast<Delay>(state.range(0));
  const snn::Network net = make_dense_delay_net(512, 8, max_delay);
  std::uint64_t deliveries = 0;
  snn::Simulator sim(net, kind);
  for (auto _ : state) {
    sim.reset();
    for (NeuronId i = 0; i < 8; ++i) sim.inject_spike(i, 0);
    snn::SimConfig cfg;
    cfg.max_time = 200 + 4 * max_delay;  // keep volume up at large spreads
    const auto st = sim.run(cfg);
    deliveries += st.deliveries;
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
}

void BM_SimQueueCalendar(benchmark::State& state) {
  run_queue_ablation(state, snn::QueueKind::kCalendar);
}
BENCHMARK(BM_SimQueueCalendar)->Arg(16)->Arg(64)->Arg(512);

void BM_SimQueueMap(benchmark::State& state) {
  run_queue_ablation(state, snn::QueueKind::kMap);
}
BENCHMARK(BM_SimQueueMap)->Arg(16)->Arg(64)->Arg(512);

// --- synapse-layout ablation (nested vectors vs CSR) --------------------
// The same dense-delay recurrent workload, three execution models, all
// constructing a fresh simulator per iteration so setup costs are charged
// equally:
//   NestedVector — ReferenceSimulator: per-neuron std::vector<Synapse>
//                  chased on every fired neuron, std::map bucket queue
//                  (the pre-compile() execution model);
//   CsrMap       — compiled CSR/SoA network, same std::map queue: isolates
//                  what the flat synapse layout alone buys;
//   CsrCalendar  — compiled network on the calendar queue: the production
//                  hot path end to end.
// items/sec = synaptic deliveries, so per-item time is ns/delivery.

void run_layout_ablation_reference(benchmark::State& state) {
  const auto max_delay = static_cast<Delay>(state.range(0));
  const snn::Network net = make_dense_delay_net(512, 8, max_delay);
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    snn::ReferenceSimulator sim(net);  // one-shot: rebuilt per iteration
    for (NeuronId i = 0; i < 8; ++i) sim.inject_spike(i, 0);
    snn::SimConfig cfg;
    cfg.max_time = 200 + 4 * max_delay;
    const auto st = sim.run(cfg);
    deliveries += st.deliveries;
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
}

void run_layout_ablation_csr(benchmark::State& state, snn::QueueKind kind) {
  const auto max_delay = static_cast<Delay>(state.range(0));
  const snn::CompiledNetwork net =
      make_dense_delay_net(512, 8, max_delay).compile();
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    snn::Simulator sim(net, kind);
    for (NeuronId i = 0; i < 8; ++i) sim.inject_spike(i, 0);
    snn::SimConfig cfg;
    cfg.max_time = 200 + 4 * max_delay;
    const auto st = sim.run(cfg);
    deliveries += st.deliveries;
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
}

void BM_SimLayoutNestedVector(benchmark::State& state) {
  run_layout_ablation_reference(state);
}
BENCHMARK(BM_SimLayoutNestedVector)->Arg(16)->Arg(64)->Arg(512);

void BM_SimLayoutCsrMap(benchmark::State& state) {
  run_layout_ablation_csr(state, snn::QueueKind::kMap);
}
BENCHMARK(BM_SimLayoutCsrMap)->Arg(16)->Arg(64)->Arg(512);

void BM_SimLayoutCsrCalendar(benchmark::State& state) {
  run_layout_ablation_csr(state, snn::QueueKind::kCalendar);
}
BENCHMARK(BM_SimLayoutCsrCalendar)->Arg(16)->Arg(64)->Arg(512);

// --- fire-kernel ablation (segmented vs per-synapse fan-out) ------------
// ARCHITECTURE.md §1.6: the segmented kernel does one bucket_for() + one
// bulk SoA append per delay RUN; the retained per-synapse kernel (the
// pre-segmentation fire loop) pays the full queue lookup per synapse. Arg
// = max synapse delay at fixed fan-out 64, so Arg is the expected number
// of runs per row and 64/Arg their length: small Arg = long runs (where
// segmentation collapses almost all queue traffic), Arg ≥ 512 degenerates
// toward one-synapse runs (the ablation's worst case). items/sec =
// deliveries, so per-item time is ns/delivery.

void run_fanout_ablation(benchmark::State& state, snn::FanoutKind fanout) {
  const auto max_delay = static_cast<Delay>(state.range(0));
  const snn::CompiledNetwork net =
      make_dense_delay_net(512, 64, max_delay).compile();
  std::uint64_t deliveries = 0;
  snn::Simulator sim(net, snn::QueueKind::kCalendar, fanout);
  for (auto _ : state) {
    sim.reset();
    for (NeuronId i = 0; i < 8; ++i) sim.inject_spike(i, 0);
    snn::SimConfig cfg;
    cfg.max_time = 50 + 4 * max_delay;
    const auto st = sim.run(cfg);
    deliveries += st.deliveries;
    benchmark::DoNotOptimize(st.spikes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
}

void BM_SimFanoutSegmented(benchmark::State& state) {
  run_fanout_ablation(state, snn::FanoutKind::kSegmented);
}
BENCHMARK(BM_SimFanoutSegmented)->Arg(8)->Arg(64)->Arg(512);

void BM_SimFanoutPerSynapse(benchmark::State& state) {
  run_fanout_ablation(state, snn::FanoutKind::kPerSynapse);
}
BENCHMARK(BM_SimFanoutPerSynapse)->Arg(8)->Arg(64)->Arg(512);

// --- batched multi-source SSSP vs 64 fresh runs -------------------------
// The batch driver builds the network once and reuses epoch-reset
// simulators; the fresh loop pays network construction + simulator
// allocation per source.

Graph batch_bench_graph() {
  Rng rng(0xBEEF07);
  return make_random_graph(256, 2048, {1, 32}, rng);
}

std::vector<VertexId> batch_bench_sources() {
  std::vector<VertexId> s(64);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<VertexId>(i);
  return s;
}

void BM_SsspBatch64Sources(benchmark::State& state) {
  const Graph g = batch_bench_graph();
  const auto sources = batch_bench_sources();
  for (auto _ : state) {
    nga::SsspBatchOptions opt;
    benchmark::DoNotOptimize(
        nga::spiking_sssp_batch(g, sources, opt).runs.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_SsspBatch64Sources);

void BM_SsspFresh64Sources(benchmark::State& state) {
  const Graph g = batch_bench_graph();
  const auto sources = batch_bench_sources();
  for (auto _ : state) {
    for (const VertexId s : sources) {
      nga::SpikingSsspOptions opt;
      opt.source = s;
      opt.record_parents = false;
      benchmark::DoNotOptimize(nga::spiking_sssp(g, opt).execution_time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sources.size()));
}
BENCHMARK(BM_SsspFresh64Sources);

// --- deterministic JSON summary (consumed by bench_compare) -------------
// google-benchmark's own numbers vary with iteration count and CPU load;
// the perf-trajectory gate instead wants a handful of FIXED workloads run
// once each, with the semantic observables (T, spikes, events) exactly
// reproducible across commits and only wall_ns subject to noise. That is
// what bench_compare's drift-vs-regression split keys on.

/// The derived throughput field: deliveries per wall-clock second.
/// bench_compare treats *_per_sec keys as noisy (wall-derived) with the
/// regression direction inverted.
double rate_per_sec(std::uint64_t events, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
}

void emit_summary(obs::BenchReport& report) {
  report.context("workload.dense_delay", "n=512 fan=8 seeds=8 horizon=456");
  report.context("workload.sssp", "n=256 m=2048 U=32 sources=64");
  report.context("workload.sssp_high_fanout", "n=512 m=32768 U=8 sources=64");

  // Queue ablation, one deterministic run per queue kind.
  const snn::CompiledNetwork dense = make_dense_delay_net(512, 8, 64).compile();
  for (const auto kind : {snn::QueueKind::kCalendar, snn::QueueKind::kMap}) {
    snn::Simulator sim(dense, kind);
    for (NeuronId i = 0; i < 8; ++i) sim.inject_spike(i, 0);
    snn::SimConfig cfg;
    cfg.max_time = 200 + 4 * 64;
    WallTimer w;
    const auto st = sim.run(cfg);
    const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
    report
        .record(std::string("dense_delay/") +
                (kind == snn::QueueKind::kCalendar ? "calendar" : "map"))
        .T(st.end_time)
        .spikes(st.spikes)
        .events(st.deliveries)
        .wall_ns(wall)
        .set("deliveries_per_sec", rate_per_sec(st.deliveries, wall))
        .set("event_times", st.event_times)
        .set("peak_queue_events", st.peak_queue_events);
  }

  // Single-source spiking SSSP: all four canonical observables.
  const Graph g = batch_bench_graph();
  {
    nga::SpikingSsspOptions opt;
    opt.source = 0;
    opt.record_parents = false;
    WallTimer w;
    const auto r = nga::spiking_sssp(g, opt);
    const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
    report.record("sssp/single")
        .T(r.execution_time)
        .spikes(r.sim.spikes)
        .events(r.sim.deliveries)
        .wall_ns(wall)
        .set("deliveries_per_sec", rate_per_sec(r.sim.deliveries, wall));
  }

  // High-fan-out SSSP with the fire-kernel ablation: 32 out-edges per
  // vertex over only 8 distinct lengths, so each relay's fan-out is a few
  // long delay runs — the workload the segmented kernel exists for. The
  // network is compiled OUTSIDE the timer and a 64-source sweep reuses one
  // simulator through reset(), so wall_ns measures the simulation hot path
  // (and the steady-state bucket pool), not graph loading. Both kernels run
  // the identical instance; the per_synapse record IS the pre-segmentation
  // fire loop, so segmented/per_synapse deliveries_per_sec is the kernel
  // speedup, tracked commit over commit.
  {
    Rng rng(0xBEEF08);
    const Graph hg = make_random_graph(512, 32768, {1, 8}, rng);
    const snn::CompiledNetwork hnet = nga::build_sssp_network(hg).compile();
    for (const auto fanout :
         {snn::FanoutKind::kSegmented, snn::FanoutKind::kPerSynapse}) {
      snn::Simulator sim(hnet, snn::QueueKind::kCalendar, fanout);
      std::uint64_t spikes = 0, deliveries = 0;
      Time t_sum = 0;
      snn::SimStats last;
      // One throwaway source outside the timer: fills the bucket pool so
      // the timed sweep runs allocation-free, like the batch driver.
      sim.inject_spike(0, 0);
      sim.run();
      WallTimer w;
      for (VertexId s = 0; s < 64; ++s) {
        sim.reset();
        sim.inject_spike(s, 0);
        last = sim.run();
        spikes += last.spikes;
        deliveries += last.deliveries;
        t_sum += last.end_time;
      }
      const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
      report
          .record(std::string("sssp/high_fanout/") +
                  (fanout == snn::FanoutKind::kSegmented ? "segmented"
                                                         : "per_synapse"))
          .T(t_sum)
          .spikes(spikes)
          .events(deliveries)
          .wall_ns(wall)
          .set("deliveries_per_sec", rate_per_sec(deliveries, wall))
          .set("fanout_segments", last.fanout_segments)
          .set("bulk_appends", last.bulk_appends)
          .set("pool_misses", last.pool_misses);
    }
  }

  // Batched 64-source sweep with the driver's merged metrics attached.
  // Thread count pinned: hardware_concurrency() would leak the runner's
  // core count into threads_used / batch.workers, and bench_compare now
  // fails on any semantic drift.
  {
    obs::MetricsRegistry reg;
    nga::SsspBatchOptions opt;
    opt.num_threads = 2;
    opt.metrics = &reg;
    WallTimer w;
    const auto r = nga::spiking_sssp_batch(g, batch_bench_sources(), opt);
    std::uint64_t spikes = 0, deliveries = 0;
    Time t_sum = 0;
    for (const auto& run : r.runs) {
      spikes += run.sim.spikes;
      deliveries += run.sim.deliveries;
      t_sum += run.execution_time;
    }
    const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
    report.record("sssp/batch64")
        .T(t_sum)  // summed Definition-3 times: deterministic per commit
        .spikes(spikes)
        .events(deliveries)
        .wall_ns(wall)
        .set("deliveries_per_sec", rate_per_sec(deliveries, wall))
        .set("threads_used", static_cast<std::uint64_t>(r.threads_used));
    report.metrics(reg);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::BenchReport report("simulator");
  emit_summary(report);
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
