// Reproduces Section 6 (Theorems 6.1, 6.2): measured DISTANCE-model
// movement costs for reading an input, for Dijkstra, and for the k-round
// Bellman–Ford, against the lower bounds m^{3/2}/(8√c) and k·m^{3/2}/(8√c);
// exponent fits confirming the 3/2 shape in m and the linear shape in k;
// and the register-placement ablation showing the bound is placement-
// independent.
#include <iostream>

#include "analysis/fit.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "distmodel/algos.h"
#include "distmodel/bounds.h"
#include "graph/generators.h"

using namespace sga;
using namespace sga::distmodel;

int main() {
  obs::BenchReport report("theorem6_lowerbounds");
  std::cout << "=== Theorem 6.1: movement cost of reading an m-word input "
               "===\n\n";
  Table t1({"m", "c", "measured movement", "bound m^1.5/(8*sqrt(c))",
            "exact floor", "ratio meas/bound"});
  std::vector<double> ms, costs;
  for (const std::size_t m : {1u << 8, 1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    for (const std::size_t c : {1u, 4u, 16u}) {
      const auto run = scan_input(m, c, RegisterPlacement::kCenter);
      const double bound = theorem61_bound(m, c);
      const Lattice lat(m, c, RegisterPlacement::kCenter);
      if (c == 4) {
        ms.push_back(static_cast<double>(m));
        costs.push_back(static_cast<double>(run.machine.movement_cost));
      }
      t1.add_row({Table::num(static_cast<std::uint64_t>(m)),
                  Table::num(static_cast<std::uint64_t>(c)),
                  Table::num(run.machine.movement_cost), Table::fixed(bound, 0),
                  Table::num(exact_scan_floor(lat)),
                  Table::fixed(static_cast<double>(run.machine.movement_cost) /
                                   bound,
                               2)});
    }
  }
  t1.print(std::cout);
  report.add_table("t1", t1);
  std::cout << "Shape in m (expect 3/2): "
            << analysis::describe(analysis::check_power_law(ms, costs, 1.5, 0.1))
            << "\n";

  std::cout << "\n--- register placement ablation (m = 4096, c = 4) ---\n";
  Table tp({"placement", "measured", "bound", "ratio"});
  const char* names[] = {"center", "corner", "scattered"};
  const RegisterPlacement placements[] = {RegisterPlacement::kCenter,
                                          RegisterPlacement::kCorner,
                                          RegisterPlacement::kScattered};
  for (int i = 0; i < 3; ++i) {
    const auto run = scan_input(4096, 4, placements[i]);
    const double bound = theorem61_bound(4096, 4);
    tp.add_row({names[i], Table::num(run.machine.movement_cost),
                Table::fixed(bound, 0),
                Table::fixed(static_cast<double>(run.machine.movement_cost) /
                                 bound,
                             2)});
  }
  tp.print(std::cout);
  report.add_table("tp", tp);
  std::cout << "The bound holds for every placement (the Theorem 6.1 "
               "counting argument never assumes where the registers sit).\n";

  std::cout << "\n=== Theorem 6.2: k-hop Bellman-Ford movement cost ===\n\n";
  Rng rng(0x62);
  Table t2({"k", "m", "measured movement", "bound k*m^1.5/(8*sqrt(c))",
            "ratio", "RAM ops (O(km))"});
  const Graph g = make_random_graph(64, 1024, {1, 9}, rng);
  std::vector<double> ks, kcosts;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const auto run =
        bellman_ford_khop_distance(g, 0, k, 4, RegisterPlacement::kCenter);
    const double bound = theorem62_bound(k, 1024, 4);
    ks.push_back(k);
    kcosts.push_back(static_cast<double>(run.machine.movement_cost));
    t2.add_row({Table::num(static_cast<std::uint64_t>(k)), "1024",
                Table::num(run.machine.movement_cost), Table::fixed(bound, 0),
                Table::fixed(static_cast<double>(run.machine.movement_cost) /
                                 bound,
                             2),
                Table::num(run.ops)});
  }
  t2.print(std::cout);
  report.add_table("t2", t2);
  // Marginal (per extra round) growth is linear in k.
  const double inc1 = kcosts[3] - kcosts[2];
  const double inc2 = kcosts[4] - kcosts[3];
  std::cout << "Marginal cost doubling check (k: 4->8 vs 8->16): "
            << Table::fixed(inc2 / inc1, 3) << " (expect ~2.0)\n";

  std::cout << "\n--- Dijkstra on the DISTANCE machine (for Table 1's SSSP "
               "rows) ---\n";
  Table t3({"m", "measured movement", "bound m^1.5/(8*sqrt(c))", "ratio"});
  std::vector<double> dm, dc;
  for (const std::size_t mm : {256u, 1024u, 4096u}) {
    Rng r2(0x63 + mm);
    const Graph gg = make_random_graph(mm / 8, mm, {1, 9}, r2);
    const auto run = dijkstra_distance(gg, 0, 4, RegisterPlacement::kCenter);
    const double bound = theorem61_bound(mm, 4);
    dm.push_back(static_cast<double>(mm));
    dc.push_back(static_cast<double>(run.machine.movement_cost));
    t3.add_row({Table::num(static_cast<std::uint64_t>(mm)),
                Table::num(run.machine.movement_cost), Table::fixed(bound, 0),
                Table::fixed(static_cast<double>(run.machine.movement_cost) /
                                 bound,
                             2)});
  }
  t3.print(std::cout);
  report.add_table("t3", t3);
  std::cout << "Dijkstra shape in m (expect >= 3/2): "
            << analysis::describe(analysis::check_power_law(dm, dc, 1.5, 0.35))
            << "\n";
  std::cout << "\n--- 3-D variant (the remark after Theorem 6.1) ---\n";
  Table t4({"m", "3-D exact floor", "3-D bound m^{4/3}/4c^{1/3}",
            "2-D exact floor"});
  std::vector<double> m3, f3;
  for (const std::size_t mm : {1u << 9, 1u << 12, 1u << 15, 1u << 18}) {
    const Lattice3 lat3(mm, 4);
    const Lattice lat2(mm, 4, RegisterPlacement::kCenter);
    m3.push_back(static_cast<double>(mm));
    f3.push_back(static_cast<double>(exact_scan_floor_3d(lat3)));
    t4.add_row({Table::num(static_cast<std::uint64_t>(mm)),
                Table::num(exact_scan_floor_3d(lat3)),
                Table::fixed(bound_3d(mm, 4) / 2.0, 0),
                Table::num(exact_scan_floor(lat2))});
  }
  t4.print(std::cout);
  report.add_table("t4", t4);
  std::cout << "3-D floor shape in m (expect 4/3): "
            << analysis::describe(
                   analysis::check_power_law(m3, f3, 4.0 / 3.0, 0.05))
            << " — moving to 3-D softens the data-movement wall from "
               "m^{3/2} to m^{4/3} but does not remove it.\n";
  return 0;
}
