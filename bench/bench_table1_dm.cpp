// Reproduces the TOP half of Table 1 ("complexities when taking
// data-movement costs into account"): measured DISTANCE-model movement
// costs of the conventional algorithms against (a) the conservative lower
// bounds of Section 6 and (b) the measured/predicted neuromorphic costs
// with the crossbar embedding. Prints the full eight-row Table 1 rendered
// from the analysis layer, then the measured m-sweep showing the
// polynomial-factor gap (the paper's Ω(m^{1/2}/log n) headline).
#include <iostream>

#include "analysis/advantage.h"
#include "analysis/fit.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "crossbar/embedding.h"
#include "distmodel/algos.h"
#include "distmodel/bounds.h"
#include "graph/generators.h"
#include "nga/costs.h"
#include "nga/sssp_event.h"

using namespace sga;

int main() {
  obs::BenchReport report("table1_dm");
  std::cout << "=== Table 1 (both halves), rendered from the closed-form "
               "expressions ===\n\n";
  nga::ProblemParams p;
  p.n = 1024;
  p.m = 8192;
  p.k = 64;
  p.U = 16;
  p.L = 200;
  p.alpha = 10;
  p.c = 4;
  Table t({"problem", "complexity", "data movement?", "conventional",
           "neuromorphic", "nm better?"});
  for (const auto& row : analysis::table1_rows(p)) {
    t.add_row({row.problem, row.complexity,
               row.with_data_movement ? "counted" : "ignored",
               Table::sci(row.conventional, 2), Table::sci(row.neuromorphic, 2),
               Table::yesno(row.nm_better)});
  }
  t.set_title("Instance: n=1024, m=8192, k=64, U=16, L=200, alpha=10, c=4");
  t.print(std::cout);
  report.add_table("t", t);
  std::cout << "Headline factors at this instance: ignoring movement "
            << Table::fixed(analysis::headline_advantage_nodm(p), 1)
            << "x (= k/log n); with movement "
            << Table::fixed(analysis::headline_advantage_dm(p), 1)
            << "x (= sqrt(m)/log n).\n";

  // --- measured: conventional movement vs neuromorphic-on-crossbar -------
  std::cout << "\n--- measured m-sweep (pseudopolynomial SSSP row) ---\n";
  Table ms({"n", "m", "Dijkstra movement (measured)",
            "lower bound m^1.5/(8sqrt(c))", "crossbar spiking T (measured)",
            "ratio conv/nm"});
  std::vector<double> sizes, ratios;
  Rng rng(0xD1);
  for (const std::size_t n : {12u, 16u, 24u, 32u, 48u}) {
    const std::size_t m = 6 * n;
    const Graph g = make_random_graph(n, m, {1, 4}, rng);
    const auto conv =
        distmodel::dijkstra_distance(g, 0, 4, distmodel::RegisterPlacement::kCenter);
    const auto nm = crossbar::spiking_sssp_on_crossbar(g, 0);
    const double ratio = static_cast<double>(conv.machine.movement_cost) /
                         static_cast<double>(nm.execution_time);
    sizes.push_back(static_cast<double>(m));
    ratios.push_back(ratio);
    ms.add_row({Table::num(static_cast<std::uint64_t>(n)),
                Table::num(static_cast<std::uint64_t>(m)),
                Table::num(conv.machine.movement_cost),
                Table::fixed(distmodel::theorem61_bound(m, 4), 0),
                Table::num(nm.execution_time), Table::fixed(ratio, 2)});
  }
  ms.print(std::cout);
  report.add_table("ms", ms);
  const auto shape = analysis::check_power_law(sizes, ratios, 0.5, 0.4);
  std::cout << "Advantage growth vs m: " << analysis::describe(shape)
            << " — a polynomial-factor gap that widens with m, the paper's "
               "claim. (Expected exponent depends on how L and n co-scale "
               "with m in this family; the point is a positive power.)\n";

  std::cout << "\n--- who wins where: the four top-half rows on the render "
               "instance ---\n";
  Table w({"row", "condition (constants = 1)", "holds?"});
  w.add_row({"SSSP poly",
             "logU<=logn, c<m/log^2 n, alpha<m^1.5/(n logn sqrt c)",
             Table::yesno(analysis::better_sssp_poly_dm(p))});
  w.add_row({"k-hop poly", "logU<=logn, c<m^3/(n^2log^2 n), c<k^2 m/log^2 n",
             Table::yesno(analysis::better_khop_poly_dm(p))});
  w.add_row({"SSSP pseudo", "L < m^1.5/(n sqrt c)",
             Table::yesno(analysis::better_sssp_pseudo_dm(p))});
  w.add_row({"k-hop pseudo", "L < k m^1.5/(n sqrt c log k)",
             Table::yesno(analysis::better_khop_pseudo_dm(p))});
  w.print(std::cout);
  report.add_table("w", w);
  std::cout << "\nNotes: the conventional columns are the Section-6 "
               "DISTANCE-model costs (measured above, lower-bounded by "
               "Theorems 6.1/6.2); the neuromorphic column pays the O(n) "
               "crossbar embedding cost (measured in bench_fig2_crossbar). "
               "The k-hop neuromorphic entries reuse the measured per-round "
               "constants of bench_table1_nodm with the embedding factor, "
               "per Section 4.5.\n";
  return 0;
}
