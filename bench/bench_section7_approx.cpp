// Reproduces Section 7 (Theorem 7.2): the spiking (1+o(1))-approximation
// for k-hop SSSP — approximation quality against the guarantee, the neuron
// advantage over the exact polynomial algorithm (n·#scales vs m·log(nU)),
// and the running-time shape O((k log n + m) log(kU log n)).
#include <cmath>
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/approx.h"
#include "nga/costs.h"

using namespace sga;

int main() {
  obs::BenchReport report("section7_approx");
  Rng rng(0x577);
  std::cout << "=== Theorem 7.2: approximate k-hop SSSP ===\n\n";

  Table t({"n", "m", "k", "U", "eps", "worst ratio", "guarantee 1+eps",
           "neurons approx", "neurons exact", "advantage"});
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const std::size_t m = 6 * n;
    const std::uint32_t k = static_cast<std::uint32_t>(n / 8);
    const Weight u_max = 24;
    const Graph g = make_random_graph(n, m, {1, u_max}, rng);
    const auto exact = bellman_ford_khop(g, 0, k);

    nga::ApproxKHopOptions opt;
    opt.source = 0;
    opt.k = k;
    const auto approx = nga::approx_khop_sssp(g, opt);

    double worst = 1.0;
    for (VertexId v = 1; v < n; ++v) {
      if (!exact.reachable(v) || !approx.reachable(v)) continue;
      worst = std::max(worst, approx.dist[v] /
                                  static_cast<double>(exact.dist[v]));
    }
    SGA_CHECK(worst <= 1.0 + approx.epsilon + 1e-9,
              "approximation guarantee violated: " << worst);
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(static_cast<std::uint64_t>(m)),
               Table::num(static_cast<std::uint64_t>(k)),
               Table::num(u_max), Table::fixed(approx.epsilon, 3),
               Table::fixed(worst, 4), Table::fixed(1 + approx.epsilon, 4),
               Table::num(static_cast<std::uint64_t>(approx.neurons_total)),
               Table::num(static_cast<std::uint64_t>(approx.neurons_exact)),
               Table::fixed(static_cast<double>(approx.neurons_exact) /
                                static_cast<double>(approx.neurons_total),
                            2)});
  }
  t.print(std::cout);
  report.add_table("t", t);

  std::cout << "\n--- epsilon sweep (n = 64, m = 384, k = 8) ---\n";
  const Graph g = make_random_graph(64, 384, {1, 32}, rng);
  const auto exact = bellman_ford_khop(g, 0, 8);
  Table te({"eps", "worst ratio", "scales", "total time", "spikes"});
  for (const double eps : {0.5, 0.25, 0.1, 0.05, 0.02}) {
    nga::ApproxKHopOptions opt;
    opt.source = 0;
    opt.k = 8;
    opt.epsilon = eps;
    const auto a = nga::approx_khop_sssp(g, opt);
    double worst = 1.0;
    for (VertexId v = 1; v < 64; ++v) {
      if (!exact.reachable(v) || !a.reachable(v)) continue;
      worst = std::max(worst, a.dist[v] / static_cast<double>(exact.dist[v]));
    }
    te.add_row({Table::fixed(eps, 2), Table::fixed(worst, 4),
                Table::num(static_cast<std::uint64_t>(a.num_scales)),
                Table::num(a.total_time), Table::num(a.total_spikes)});
  }
  te.print(std::cout);
  report.add_table("te", te);

  std::cout << "\nPredicted time (Thm 7.2, O(1) movement) for the last row "
               "family:\n";
  nga::ProblemParams p;
  p.n = 64;
  p.m = 384;
  p.k = 8;
  p.U = 32;
  std::cout << "  (k log n + m) log(kU log n) = "
            << Table::fixed(nga::nm_approx_khop(p), 0)
            << " vs exact polynomial m log(nU) = "
            << Table::fixed(nga::nm_khop_poly(p), 0)
            << " — within polylog factors, as the paper notes; the win is "
               "neurons, column 'advantage' above.\n";
  return 0;
}
