// Reproduces Figure 4 / the "Sum Circuits" paragraph of Section 5: the
// depth-2 Ramos–Bohórquez adder with exponentially-bounded weights vs the
// depth-3-style polynomial-weight carry-lookahead construction vs the
// O(λ)-depth ripple adder used inside the k-hop algorithms, across widths —
// size, depth, weight magnitude, spikes per addition, and throughput under
// pipelining.
#include <iostream>

#include "analysis/fit.h"
#include "circuits/adders.h"
#include "circuits/harness.h"
#include "core/bitops.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "core/timer.h"
#include "snn/probe.h"
#include "snn/simulator.h"

using namespace sga;
using namespace sga::circuits;

namespace {
const char* adder_name(AdderKind k) {
  switch (k) {
    case AdderKind::kRipple: return "ripple";
    case AdderKind::kRamosBohorquez: return "Ramos-Bohorquez";
    case AdderKind::kLookahead: return "carry-lookahead";
  }
  return "?";
}
}  // namespace

int main() {
  obs::BenchReport report("fig4_adders");
  Rng rng(0xF16);
  std::cout << "=== Figure 4: threshold-gate adders for two λ-bit numbers "
               "===\n\n";
  Table t({"adder", "lambda", "neurons", "depth", "max |weight|",
           "spikes/add"});
  for (const auto kind :
       {AdderKind::kRamosBohorquez, AdderKind::kLookahead, AdderKind::kRipple}) {
    for (const int lambda : {4, 8, 16, 32}) {
      snn::Network net;
      CircuitBuilder cb(net);
      const AdderCircuit c = build_adder(cb, lambda, kind);
      const auto top = static_cast<std::int64_t>(mask_bits(lambda));
      const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, top));
      const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, top));
      snn::Simulator sim(net);
      sim.inject_spike(c.enable, 0);
      snn::inject_binary(sim, c.a, a, 0);
      snn::inject_binary(sim, c.b, b, 0);
      snn::SimConfig cfg;
      cfg.max_time = c.depth;
      const auto st = sim.run(cfg);
      const auto sum = snn::decode_binary_at(sim, c.sum, c.depth);
      SGA_CHECK(sum == ((a + b) & mask_bits(lambda)), "adder wrong");
      t.add_row({adder_name(kind), Table::num(static_cast<std::int64_t>(lambda)),
                 Table::num(c.stats.neurons),
                 Table::num(static_cast<std::int64_t>(c.depth)),
                 Table::fixed(c.stats.max_abs_weight, 0),
                 Table::num(st.spikes)});
    }
  }
  t.print(std::cout);
  report.add_table("t", t);

  std::cout << "\n--- asymptotic shapes ---\n";
  auto shape = [](AdderKind kind, double expect) {
    std::vector<double> ls, sizes;
    for (const int l : {8, 16, 32}) {
      snn::Network net;
      CircuitBuilder cb(net);
      ls.push_back(l);
      sizes.push_back(static_cast<double>(build_adder(cb, l, kind).stats.neurons));
    }
    return analysis::check_power_law(ls, sizes, expect);
  };
  std::cout << "Ramos size vs λ     (expect O(λ)):  "
            << analysis::describe(shape(AdderKind::kRamosBohorquez, 1.0)) << "\n";
  std::cout << "ripple size vs λ    (expect O(λ)):  "
            << analysis::describe(shape(AdderKind::kRipple, 1.0)) << "\n";
  {
    // The O(λ) g/p/sum layers pollute a raw power-law fit at these widths,
    // so verify the exact closed form 2 + 6λ + λ(λ+1)/2 and the quadratic
    // dominance of the carry-survival layer.
    std::size_t mismatch = 0;
    for (const int l : {8, 16, 32, 60}) {
      snn::Network net;
      CircuitBuilder cb(net);
      const auto c = build_lookahead_adder(cb, l);
      const std::size_t ll = static_cast<std::size_t>(l);
      if (c.stats.neurons != 2 + 6 * ll + ll * (ll + 1) / 2) ++mismatch;
    }
    std::cout << "lookahead size vs λ (expect O(λ²)): exact count 2 + 6λ + "
                 "λ(λ+1)/2 "
              << (mismatch == 0 ? "[OK]" : "[MISMATCH]")
              << " — the λ(λ+1)/2 carry-survival layer dominates for large "
                 "λ\n";
  }

  std::cout << "\n--- pipelined throughput (1000 additions, λ = 12) ---\n";
  for (const auto kind :
       {AdderKind::kRamosBohorquez, AdderKind::kLookahead, AdderKind::kRipple}) {
    snn::Network net;
    CircuitBuilder cb(net);
    const AdderCircuit c = build_adder(cb, 12, kind);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> jobs;
    for (int i = 0; i < 1000; ++i) {
      jobs.emplace_back(
          static_cast<std::uint64_t>(rng.uniform_int(0, 4095)),
          static_cast<std::uint64_t>(rng.uniform_int(0, 4095)));
    }
    const snn::CompiledNetwork compiled = cb.freeze();
    WallTimer timer;  // time the evaluation only, not the freeze
    const auto sums = eval_adder_circuit_pipelined(compiled, c, jobs);
    const double ms = timer.millis();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SGA_CHECK(sums[i] == ((jobs[i].first + jobs[i].second) & 0xFFFu),
                "pipelined adder wrong at " << i);
    }
    std::cout << "  " << adder_name(kind) << ": 1000 adds in "
              << Table::fixed(ms, 1) << " ms wall; SNN latency " << c.depth
              << " steps, initiation interval 1 step\n";
  }
  std::cout << "\nTrade-off reproduced: depth 2 needs 2^λ weights; constant "
               "depth with small weights needs O(λ²) neurons; O(λ) neurons "
               "with small weights needs O(λ) depth.\n";
  return 0;
}
