// Reproduces Figure 1's primitives quantitatively: (A) the two-neuron
// delay-simulation circuit emulates any delay d with 3 neurons and exactly
// d spikes of overhead ("O(d) synaptic delay"); (B) the memory latch holds
// a bit indefinitely and recalls in one step. Prints overhead tables and
// verifies the emulation against native programmable delays.
#include <iostream>

#include "circuits/primitives.h"
#include "core/table.h"
#include "obs/report.h"
#include "snn/probe.h"
#include "snn/simulator.h"

using namespace sga;
using namespace sga::circuits;

int main() {
  obs::BenchReport report("fig1_primitives");
  std::cout << "=== Figure 1(A): simulating synaptic delays with neurons "
               "===\n\n";
  Table t({"target delay d", "neurons", "spikes used", "measured delay",
           "native-delay spikes"});
  for (const Delay d : {2, 4, 8, 16, 64, 256, 1024}) {
    snn::Network net;
    const DelaySimCircuit c = build_delay_simulation(net, d);
    snn::Simulator sim(net);
    sim.inject_spike(c.input, 0);
    snn::SimConfig cfg;
    cfg.max_time = d + 8;
    const auto st = sim.run(cfg);
    const Time measured = sim.first_spike(c.output);
    SGA_CHECK(measured == d, "delay simulation produced " << measured
                                                          << " instead of " << d);
    // A native-delay synapse would cost 2 spikes (source + target).
    t.add_row({Table::num(d), Table::num(static_cast<std::uint64_t>(c.neurons)),
               Table::num(st.spikes), Table::num(measured), "2"});
  }
  t.print(std::cout);
  report.add_table("t", t);
  std::cout << "\nThe emulation burns Θ(d) spikes — why Section 2.2 assumes "
               "native programmable delays and treats this circuit as the "
               "fallback for hardware without them.\n";

  std::cout << "\n=== Figure 1(B): neurons as memory ===\n\n";
  Table lt({"event", "time", "latch output"});
  snn::Network net;
  const LatchCircuit latch = build_latch(net);
  snn::Simulator sim(net);
  sim.inject_spike(latch.recall, 3);
  sim.inject_spike(latch.set, 10);
  sim.inject_spike(latch.recall, 50);
  sim.inject_spike(latch.recall, 500);
  sim.inject_spike(latch.reset, 600);
  sim.inject_spike(latch.recall, 700);
  snn::SimConfig cfg;
  cfg.max_time = 800;
  cfg.record_spike_log = true;
  cfg.watched_neurons = {latch.output};
  const auto st = sim.run(cfg);
  std::vector<Time> outputs;
  for (const auto& [time, id] : sim.spike_log()) {
    if (id == latch.output) outputs.push_back(time);
  }
  lt.add_row({"recall before set", "3", "silent"});
  lt.add_row({"set", "10", "-"});
  lt.add_row({"recall", "50", outputs.size() > 0 ? "fires @51" : "BUG"});
  lt.add_row({"recall (much later)", "500",
              outputs.size() > 1 ? "fires @501" : "BUG"});
  lt.add_row({"reset", "600", "-"});
  lt.add_row({"recall after reset", "700",
              outputs.size() == 2 ? "silent" : "BUG"});
  lt.print(std::cout);
  report.add_table("lt", lt);
  std::cout << "\nLatch: " << latch.neurons
            << " neurons; holds the bit for 490 steps via the self-loop "
               "(total spikes incl. the holding loop: "
            << st.spikes << ").\n";
  return 0;
}
