// Reproduces Table 2 (and exercises Figures 3 and 5): the size (neurons)
// and runtime (depth) of the two circuits computing the max of d λ-bit
// numbers, plus measured simulation cost and the asymptotic-shape checks
// (wired-OR: O(dλ) size / O(λ) depth; brute force: O(d²) size / depth 3-ish
// constant).
#include <algorithm>
#include <iostream>

#include "analysis/fit.h"
#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "core/bitops.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "core/timer.h"
#include "snn/simulator.h"

using namespace sga;
using namespace sga::circuits;

namespace {

struct Probe {
  std::size_t neurons;
  int depth;
  double max_weight;
  double eval_ms;
};

Probe probe(MaxKind kind, int d, int lambda, Rng& rng) {
  snn::Network net;
  CircuitBuilder cb(net);
  const MaxCircuit c = build_max(cb, d, lambda, kind);
  std::vector<std::uint64_t> vals(static_cast<std::size_t>(d));
  for (auto& v : vals) {
    v = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask_bits(lambda))));
  }
  const snn::CompiledNetwork compiled = cb.freeze();
  WallTimer t;  // time the evaluation only, not the freeze
  const auto result = eval_max_circuit(compiled, c, vals);
  const double ms = t.millis();
  SGA_CHECK(result == *std::max_element(vals.begin(), vals.end()),
            "max circuit disagreed with reference");
  return Probe{c.stats.neurons, c.depth, c.stats.max_abs_weight, ms};
}

}  // namespace

int main() {
  obs::BenchReport report("table2_maxcircuits");
  Rng rng(0x7AB2);
  std::cout << "=== Table 2: neuromorphic circuits for max of d λ-bit numbers "
               "===\n\n";

  Table t({"circuit", "d", "lambda", "neurons", "depth (steps)",
           "max |weight|", "eval (ms)"});
  for (const auto kind : {MaxKind::kBruteForce, MaxKind::kWiredOr}) {
    for (const int d : {4, 8, 16, 32}) {
      for (const int lambda : {4, 8, 16}) {
        const Probe p = probe(kind, d, lambda, rng);
        t.add_row({kind == MaxKind::kWiredOr ? "wired-OR" : "brute force",
                   Table::num(static_cast<std::int64_t>(d)),
                   Table::num(static_cast<std::int64_t>(lambda)),
                   Table::num(p.neurons),
                   Table::num(static_cast<std::int64_t>(p.depth)),
                   Table::fixed(p.max_weight, 0), Table::fixed(p.eval_ms, 3)});
      }
    }
  }
  t.print(std::cout);
  report.add_table("t", t);

  // Shape checks against the Table 2 bounds.
  std::cout << "\n--- asymptotic shapes ---\n";
  {
    std::vector<double> ds, sizes;
    for (const int d : {8, 16, 32, 64, 128}) {
      snn::Network net;
      CircuitBuilder cb(net);
      ds.push_back(d);
      sizes.push_back(static_cast<double>(
          build_max_wired_or(cb, d, 8).stats.neurons));
    }
    const auto c = analysis::check_power_law(ds, sizes, 1.0);
    std::cout << "wired-OR size vs d  (expect O(d)):   "
              << analysis::describe(c) << "\n";
  }
  {
    std::vector<double> ls, sizes, depths;
    for (const int l : {4, 8, 16, 32}) {
      snn::Network net;
      CircuitBuilder cb(net);
      const auto c = build_max_wired_or(cb, 8, l);
      ls.push_back(l);
      sizes.push_back(static_cast<double>(c.stats.neurons));
      depths.push_back(static_cast<double>(c.depth));
    }
    std::cout << "wired-OR size vs λ  (expect O(λ)):   "
              << analysis::describe(analysis::check_power_law(ls, sizes, 1.0))
              << "\n";
    std::cout << "wired-OR depth vs λ (expect O(λ)):   "
              << analysis::describe(analysis::check_power_law(ls, depths, 1.0))
              << "\n";
  }
  {
    // The O(dλ) input/filter layers pollute a raw power-law fit at small d,
    // so (a) verify the exact closed-form count and (b) fit at λ = 2 and
    // large d where the d(d-1) comparison layer dominates.
    std::vector<double> ds, sizes;
    for (const int d : {64, 128, 256, 512}) {
      snn::Network net;
      CircuitBuilder cb(net);
      const auto c = build_max_brute_force(cb, d, 2);
      const std::size_t expected = 1 + 2 * static_cast<std::size_t>(d) * 2 +
                                   static_cast<std::size_t>(d) *
                                       static_cast<std::size_t>(d - 1) +
                                   static_cast<std::size_t>(d) + 2;
      SGA_CHECK(c.stats.neurons == expected, "brute-force count mismatch");
      ds.push_back(d);
      sizes.push_back(static_cast<double>(c.stats.neurons));
    }
    const auto c = analysis::check_power_law(ds, sizes, 2.0, 0.1);
    std::cout << "brute-force size vs d (expect O(d^2)): "
              << analysis::describe(c)
              << "  [exact count = d(d-1) + (2λ+1)d + λ + 1 verified]\n";
  }
  {
    snn::Network n1, n2;
    CircuitBuilder c1(n1), c2(n2);
    const int depth_small = build_max_brute_force(c1, 4, 8).depth;
    const int depth_big = build_max_brute_force(c2, 128, 8).depth;
    std::cout << "brute-force depth: " << depth_small << " at d=4, "
              << depth_big
              << " at d=128 (constant; paper's 3 + 2 value-extraction "
                 "layers)\n";
  }
  std::cout << "\nPaper: brute force O(d^2) neurons / depth 3; wired-OR "
               "O(dλ) neurons / O(λ) depth. Both reproduced.\n";
  return 0;
}
