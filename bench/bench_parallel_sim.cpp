// Serial-vs-sharded simulator benchmark on a bench-scale SSSP instance
// (ISSUE 4 acceptance workload). Edge lengths are drawn from [8, 64], so
// every synapse delay — and therefore the conservative cross-shard
// lookahead δ — is at least 8 steps: shards run 8+ steps between barriers,
// which is the regime the windowed design targets.
//
// Two layers, as in bench_simulator:
//   * google-benchmark microbenchmarks (BM_*) for interactive tuning runs;
//   * a deterministic one-shot summary emitted to BENCH_parallel_sim.json
//     for the bench_compare trajectory. Shard AND thread counts are pinned
//     (never derived from std::thread::hardware_concurrency()), so the
//     semantic observables — T, spikes, events, windows, steals, the cut
//     statistics — are machine-independent; only wall_ns is noise. The
//     serial record and every parallel record must agree on T/spikes/
//     events, which makes the trajectory file itself a standing drift
//     check on the exactness contract.
//
// Timing discipline (ISSUE 9): every record times sim.run() ONLY — the
// network build, partitioning, shard split, and injections happen outside
// the timed region (the persistent-service design compiles once and runs
// many times, so steady-state run cost is the number that matters). The
// machine's hardware_concurrency is recorded in the context: wall numbers
// from different core counts are not comparable, and bench_compare
// downgrades *_ns/*_per_sec checks to informational when the counts
// differ. The s4 ablation trio (lpt / atomic / nosteal) isolates each
// ISSUE-9 knob at S = 4.
//
// Set SGA_REQUIRE_PARALLEL_WIN=1 (multi-core CI lane) to exit non-zero
// unless the default s4 configuration beats the serial engine's wall
// clock; on boxes with fewer than 4 cores the check is skipped.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/random.h"
#include "core/timer.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "snn/parallel_sim.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

// Bench-scale SSSP instance: 20k vertices, 160k edges, lengths in [8, 64]
// (δ_cross ≥ 8). Built once and compiled once; both engines share the
// frozen network.
constexpr std::size_t kVertices = 20'000;
constexpr std::size_t kEdges = 160'000;

const snn::CompiledNetwork& sssp_network() {
  static const snn::CompiledNetwork net = [] {
    Rng rng(0xBEEF08);
    const Graph g = make_random_graph(kVertices, kEdges, {8, 64}, rng);
    return nga::build_sssp_network(g).compile();
  }();
  return net;
}

struct TimedRun {
  snn::SimStats stats;
  std::uint64_t wall_ns = 0;
};

/// Steady-state serial run: construction and injection outside the timer.
TimedRun run_serial(snn::QueueKind kind) {
  snn::Simulator sim(sssp_network(), kind);
  sim.inject_spike(0, 0);
  WallTimer w;
  TimedRun r;
  r.stats = sim.run();
  r.wall_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  return r;
}

/// Steady-state parallel run: partitioning, the shard split, and the
/// injection happen before the timer starts; only run() is timed.
TimedRun run_parallel(const snn::ParallelConfig& pcfg,
                      obs::MetricsRegistry* metrics = nullptr) {
  snn::ParallelSimulator sim(sssp_network(), pcfg);
  sim.inject_spike(0, 0);
  const obs::ScopedThreadMetrics install(metrics);
  WallTimer w;
  TimedRun r;
  r.stats = sim.run();
  r.wall_ns = static_cast<std::uint64_t>(w.seconds() * 1e9);
  return r;
}

snn::ParallelConfig make_config(std::size_t shards) {
  snn::ParallelConfig pcfg;
  pcfg.num_shards = shards;
  pcfg.num_threads = static_cast<unsigned>(shards);
  return pcfg;
}

void BM_SsspSerialCalendar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_serial(snn::QueueKind::kCalendar).stats.spikes);
  }
}
BENCHMARK(BM_SsspSerialCalendar);

void BM_SsspParallelShards(benchmark::State& state) {
  // Arg = shard count; threads pinned equal to shards.
  const auto s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_parallel(make_config(s)).stats.spikes);
  }
}
BENCHMARK(BM_SsspParallelShards)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- deterministic JSON summary (consumed by bench_compare) -------------

/// Derived throughput: deliveries per wall second. bench_compare treats
/// *_per_sec keys as noisy with the regression direction inverted.
double rate_per_sec(std::uint64_t events, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
}

std::size_t count_cross_synapses(const snn::CompiledNetwork& net,
                                 const snn::Partition& p) {
  std::size_t cross = 0;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    for (std::size_t k = net.out_begin(id); k < net.out_end(id); ++k) {
      cross += p.shard_of[id] != p.shard_of[net.syn_target(k)] ? 1 : 0;
    }
  }
  return cross;
}

/// One parallel record: semantic observables (machine-independent) plus
/// the noisy wall/rate pair. `name` is the bench_compare join key.
void record_parallel(obs::BenchReport& report, const std::string& name,
                     const snn::ParallelConfig& pcfg,
                     std::uint64_t* wall_out = nullptr) {
  // Partition statistics come from an untimed probe simulator so the
  // record describes the exact layout the timed run used.
  snn::ParallelSimulator probe(sssp_network(), pcfg);
  const snn::Partition& part = probe.partition();

  obs::MetricsRegistry reg;
  const TimedRun r = run_parallel(pcfg, &reg);
  if (wall_out != nullptr) *wall_out = r.wall_ns;
  report.record(name)
      .T(r.stats.end_time)
      .spikes(r.stats.spikes)
      .events(r.stats.deliveries)
      .wall_ns(r.wall_ns)
      .set("deliveries_per_sec", rate_per_sec(r.stats.deliveries, r.wall_ns))
      .set("event_times", r.stats.event_times)
      .set("windows", reg.counter("psim.windows"))
      .set("steals", reg.counter("psim.steals"))
      .set("threads", static_cast<std::uint64_t>(pcfg.num_threads))
      .set("cross_synapses",
           static_cast<std::uint64_t>(count_cross_synapses(sssp_network(), part)))
      .set("min_cross_delay",
           static_cast<std::int64_t>(
               partition_min_cross_delay(sssp_network(), part)));
}

/// Returns {serial wall, default-s4 wall} for the SGA_REQUIRE_PARALLEL_WIN
/// gate.
std::pair<std::uint64_t, std::uint64_t> emit_summary(obs::BenchReport& report) {
  report.context("workload.sssp",
                 "n=20000 m=160000 lengths=[8,64] source=0 seed=0xBEEF08");
  report.context("pinning",
                 "threads = shards, pinned per record (never hardware)");
  report.context("timing", "sim.run() only; build/partition/inject untimed");
  report.context("hardware_concurrency",
                 static_cast<std::uint64_t>(
                     std::thread::hardware_concurrency()));

  // Warm-up: force the lazy network build + one full run outside every
  // timer, so the serial record does not pay construction and first-touch
  // page faults that the later records skip.
  (void)run_serial(snn::QueueKind::kCalendar);

  std::uint64_t serial_wall = 0;
  {
    const TimedRun r = run_serial(snn::QueueKind::kCalendar);
    serial_wall = r.wall_ns;
    report.record("sssp/serial")
        .T(r.stats.end_time)
        .spikes(r.stats.spikes)
        .events(r.stats.deliveries)
        .wall_ns(r.wall_ns)
        .set("deliveries_per_sec",
             rate_per_sec(r.stats.deliveries, r.wall_ns))
        .set("event_times", r.stats.event_times);
  }

  // Shard sweep under the ISSUE-9 defaults: kCutRefined partition,
  // mailbox engine, work stealing on.
  std::uint64_t s4_wall = 0;
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    record_parallel(report, "sssp/parallel/s" + std::to_string(s),
                    make_config(s), s == 4 ? &s4_wall : nullptr);
  }

  // s4 ablation trio: flip exactly one knob off the default at a time.
  {
    snn::ParallelConfig pcfg = make_config(4);
    pcfg.partition = snn::PartitionKind::kLpt;
    record_parallel(report, "sssp/parallel/s4/lpt", pcfg);
  }
  {
    snn::ParallelConfig pcfg = make_config(4);
    pcfg.engine = snn::EngineKind::kSharedAtomic;
    record_parallel(report, "sssp/parallel/s4/atomic", pcfg);
  }
  {
    snn::ParallelConfig pcfg = make_config(4);
    pcfg.work_stealing = false;
    record_parallel(report, "sssp/parallel/s4/nosteal", pcfg);
  }
  return {serial_wall, s4_wall};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::BenchReport report("parallel_sim");
  const auto [serial_wall, s4_wall] = emit_summary(report);
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";

  // Multi-core acceptance gate (ISSUE 9): on a ≥ 4-core runner the default
  // s4 configuration must beat the serial engine's steady-state wall clock.
  const char* require = std::getenv("SGA_REQUIRE_PARALLEL_WIN");
  if (require != nullptr && require[0] == '1') {
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4) {
      std::cout << "parallel-win gate: skipped (" << cores
                << " hardware threads < 4)\n";
    } else if (s4_wall >= serial_wall) {
      std::cerr << "parallel-win gate: FAILED — s4 " << s4_wall
                << " ns >= serial " << serial_wall << " ns on " << cores
                << " hardware threads\n";
      return 1;
    } else {
      std::cout << "parallel-win gate: ok — s4 " << s4_wall
                << " ns < serial " << serial_wall << " ns ("
                << static_cast<double>(serial_wall) /
                       static_cast<double>(s4_wall)
                << "x)\n";
    }
  }
  return 0;
}
