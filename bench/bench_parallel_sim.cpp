// Serial-vs-sharded simulator benchmark on a bench-scale SSSP instance
// (ISSUE 4 acceptance workload). Edge lengths are drawn from [8, 64], so
// every synapse delay — and therefore the conservative cross-shard
// lookahead δ — is at least 8 steps: shards run 8+ steps between barriers,
// which is the regime the windowed design targets.
//
// Two layers, as in bench_simulator:
//   * google-benchmark microbenchmarks (BM_*) for interactive tuning runs;
//   * a deterministic one-shot summary emitted to BENCH_parallel_sim.json
//     for the bench_compare trajectory. Shard AND thread counts are pinned
//     (never derived from std::thread::hardware_concurrency()), so the
//     semantic observables — T, spikes, events, and the per-config
//     lookahead/window counts — are machine-independent; only wall_ns is
//     noise. The serial record and every parallel record must agree on
//     T/spikes/events, which makes the trajectory file itself a standing
//     drift check on the exactness contract.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/random.h"
#include "core/timer.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "snn/parallel_sim.h"
#include "snn/simulator.h"

using namespace sga;

namespace {

// Bench-scale SSSP instance: 20k vertices, 160k edges, lengths in [8, 64]
// (δ_cross ≥ 8). Built once and compiled once; both engines share the
// frozen network.
constexpr std::size_t kVertices = 20'000;
constexpr std::size_t kEdges = 160'000;

const snn::CompiledNetwork& sssp_network() {
  static const snn::CompiledNetwork net = [] {
    Rng rng(0xBEEF08);
    const Graph g = make_random_graph(kVertices, kEdges, {8, 64}, rng);
    return nga::build_sssp_network(g).compile();
  }();
  return net;
}

snn::SimStats run_serial(snn::QueueKind kind) {
  snn::Simulator sim(sssp_network(), kind);
  sim.inject_spike(0, 0);
  return sim.run();
}

snn::SimStats run_parallel(std::size_t shards, unsigned threads,
                           obs::MetricsRegistry* metrics = nullptr) {
  snn::ParallelConfig pcfg;
  pcfg.num_shards = shards;
  pcfg.num_threads = threads;
  snn::ParallelSimulator sim(sssp_network(), pcfg);
  sim.inject_spike(0, 0);
  const obs::ScopedThreadMetrics install(metrics);
  return sim.run();
}

void BM_SsspSerialCalendar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_serial(snn::QueueKind::kCalendar).spikes);
  }
}
BENCHMARK(BM_SsspSerialCalendar);

void BM_SsspParallelShards(benchmark::State& state) {
  // Arg = shard count; threads pinned equal to shards.
  const auto s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_parallel(s, static_cast<unsigned>(s)).spikes);
  }
}
BENCHMARK(BM_SsspParallelShards)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- deterministic JSON summary (consumed by bench_compare) -------------

/// Derived throughput: deliveries per wall second. bench_compare treats
/// *_per_sec keys as noisy with the regression direction inverted.
double rate_per_sec(std::uint64_t events, std::uint64_t wall_ns) {
  return wall_ns == 0
             ? 0.0
             : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
}

void emit_summary(obs::BenchReport& report) {
  report.context("workload.sssp",
                 "n=20000 m=160000 lengths=[8,64] source=0 seed=0xBEEF08");
  report.context("pinning",
                 "threads = shards, pinned per record (never hardware)");

  // Warm-up: force the lazy network build + one full run outside every
  // timer, so the serial record does not pay construction and first-touch
  // page faults that the later records skip.
  (void)run_serial(snn::QueueKind::kCalendar);

  {
    WallTimer w;
    const snn::SimStats st = run_serial(snn::QueueKind::kCalendar);
    const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
    report.record("sssp/serial")
        .T(st.end_time)
        .spikes(st.spikes)
        .events(st.deliveries)
        .wall_ns(wall)
        .set("deliveries_per_sec", rate_per_sec(st.deliveries, wall))
        .set("event_times", st.event_times);
  }

  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    obs::MetricsRegistry reg;
    WallTimer w;
    const snn::SimStats st = run_parallel(s, static_cast<unsigned>(s), &reg);
    const auto wall = static_cast<std::uint64_t>(w.seconds() * 1e9);
    report.record("sssp/parallel/s" + std::to_string(s))
        .T(st.end_time)
        .spikes(st.spikes)
        .events(st.deliveries)
        .wall_ns(wall)
        .set("deliveries_per_sec", rate_per_sec(st.deliveries, wall))
        .set("event_times", st.event_times)
        .set("windows", reg.counter("psim.windows"))
        .set("threads", static_cast<std::uint64_t>(s));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::BenchReport report("parallel_sim");
  emit_summary(report);
  const std::string path = report.write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
