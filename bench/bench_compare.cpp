// Compare two BENCH_*.json trajectories (schema sga-bench-v1) and report
// regressions — the C++ replacement for the usual bench_diff.py so the
// perf gate needs nothing but the repo's own toolchain.
//
//   bench_compare --validate FILE.json
//       Schema-check one file (CI runs this on every emitted artifact).
//   bench_compare BASELINE.json CURRENT.json [--wall-tol PCT] [--fail]
//       Join records by name and compare:
//         * wall-clock keys (`wall_ns`, any `*_ns`): flagged as REGRESSION
//           when current > baseline * (1 + tol), where tol comes from
//           --wall-tol (percent; default 10 — wall time is noisy, tune per
//           CI runner; --threshold FRAC is the legacy spelling).
//         * throughput keys (any `*_per_sec`): wall-derived, so noisy with
//           the opposite sign — REGRESSION when current <
//           baseline * (1 - tol), "improved" above the band.
//         * semantic keys (T, spikes, events, everything else numeric):
//           these are deterministic observables, so ANY change is flagged
//           as DRIFT — a semantics change that must be explainable by the
//           commit under test.
//       Exit code: schema-validation failures, DRIFT, and records missing
//       from the current file always exit 1 — they are deterministic, so
//       there is no noise excuse. Wall-clock/throughput REGRESSIONs exit 0
//       by default (runners are noisy) and are promoted to exit 1 by
//       --fail.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/table.h"
#include "obs/json.h"
#include "obs/report.h"

namespace {

using sga::Table;
using sga::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw sga::InvalidArgument("bench_compare: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

bool ends_with(const std::string& key, const std::string& suffix) {
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_wall_clock_key(const std::string& key) {
  return ends_with(key, "_ns");
}

/// Throughput keys are derived from wall time (events / seconds), so they
/// carry the same run-to-run noise but regress DOWNWARD.
bool is_rate_key(const std::string& key) { return ends_with(key, "_per_sec"); }

/// context.hardware_concurrency when present and numeric, else -1.
/// Benches that run threaded code record it; wall numbers taken on
/// machines with different core counts are not comparable.
double context_cores(const Json& doc) {
  const Json* ctx = doc.find("context");
  if (ctx == nullptr) return -1.0;
  const Json* v = ctx->find("hardware_concurrency");
  return v != nullptr && v->is_number() ? v->as_double() : -1.0;
}

const Json* find_record(const Json& doc, const std::string& name) {
  for (const Json& r : doc.find("records")->elements()) {
    const Json* n = r.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &r;
  }
  return nullptr;
}

int usage() {
  std::cerr << "usage: bench_compare --validate FILE.json\n"
               "       bench_compare BASELINE.json CURRENT.json"
               " [--wall-tol PCT] [--fail]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  std::vector<std::string> files;
  double threshold = 0.10;
  bool fail_on_regress = false;
  bool validate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (std::strcmp(argv[i], "--fail") == 0) {
      fail_on_regress = true;
    } else if (std::strcmp(argv[i], "--wall-tol") == 0 && i + 1 < argc) {
      threshold = std::stod(argv[++i]) / 100.0;  // percent → fraction
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::stod(argv[++i]);  // legacy fractional spelling
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }

  if (validate_only) {
    if (files.empty()) return usage();
    bool ok = true;
    for (const std::string& f : files) {
      const std::string err = sga::obs::validate_bench_json(load(f));
      if (err.empty()) {
        std::cout << f << ": valid sga-bench-v1\n";
      } else {
        std::cout << f << ": INVALID — " << err << "\n";
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }

  if (files.size() != 2) return usage();
  const Json base = load(files[0]);
  const Json cur = load(files[1]);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::string err =
        sga::obs::validate_bench_json(i == 0 ? base : cur);
    if (!err.empty()) {
      std::cerr << files[i] << ": INVALID — " << err << "\n";
      return 1;
    }
  }

  std::cout << "baseline: " << files[0] << " (git "
            << base.find("git_sha")->as_string() << ", "
            << base.find("build_type")->as_string() << ")\n"
            << "current:  " << files[1] << " (git "
            << cur.find("git_sha")->as_string() << ", "
            << cur.find("build_type")->as_string() << ")\n";

  // When either file declares a hardware_concurrency and they disagree,
  // wall-clock and throughput comparisons are between different machines —
  // informational only, never REGRESSION. Semantic keys stay binding:
  // they are machine-independent by design.
  const double base_cores = context_cores(base);
  const double cur_cores = context_cores(cur);
  const bool cores_declared = base_cores > 0.0 || cur_cores > 0.0;
  const bool wall_comparable = !cores_declared || base_cores == cur_cores;
  if (!wall_comparable) {
    std::cout << "note: hardware_concurrency differs (baseline "
              << (base_cores > 0.0 ? Table::fixed(base_cores, 0) : "unknown")
              << ", current "
              << (cur_cores > 0.0 ? Table::fixed(cur_cores, 0) : "unknown")
              << ") — *_ns/*_per_sec checks are informational\n";
  }
  std::cout << "\n";

  Table t({"record", "key", "baseline", "current", "change", "verdict"});
  std::size_t regressions = 0, drifts = 0, compared = 0, missing = 0;
  for (const Json& rec : base.find("records")->elements()) {
    const std::string name = rec.find("name")->as_string();
    const Json* other = find_record(cur, name);
    if (other == nullptr) {
      t.add_row({name, "-", "-", "-", "-", "MISSING in current"});
      ++missing;
      continue;
    }
    for (const auto& [key, value] : rec.members()) {
      if (key == "name" || !value.is_number()) continue;
      const Json* cv = other->find(key);
      if (cv == nullptr || !cv->is_number()) {
        t.add_row({name, key, Table::fixed(value.as_double(), 0), "-", "-",
                   "MISSING in current"});
        ++missing;
        continue;
      }
      ++compared;
      const double b = value.as_double();
      const double c = cv->as_double();
      const double rel = b != 0.0 ? (c - b) / b : (c != 0.0 ? 1.0 : 0.0);
      std::string verdict = "ok";
      if (is_wall_clock_key(key)) {
        if (!wall_comparable) {
          verdict = "n/a (cores differ)";
        } else if (rel > threshold) {
          verdict = "REGRESSION";
          ++regressions;
        } else if (rel < -threshold) {
          verdict = "improved";
        }
      } else if (is_rate_key(key)) {
        if (!wall_comparable) {
          verdict = "n/a (cores differ)";
        } else if (rel < -threshold) {
          verdict = "REGRESSION";
          ++regressions;
        } else if (rel > threshold) {
          verdict = "improved";
        }
      } else if (b != c) {
        verdict = "DRIFT";
        ++drifts;
      }
      t.add_row({name, key, Table::fixed(b, 0), Table::fixed(c, 0),
                 Table::fixed(100.0 * rel, 1) + "%", verdict});
    }
  }
  t.set_title("bench_compare: wall tolerance " +
              Table::fixed(100.0 * threshold, 0) + "% on *_ns/*_per_sec keys");
  t.print(std::cout);
  std::cout << compared << " values compared: " << regressions
            << " wall-clock regression(s), " << drifts
            << " semantic drift(s), " << missing << " missing\n";
  if (drifts > 0 || missing > 0) return 1;
  if (fail_on_regress && regressions > 0) return 1;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_compare: " << e.what() << "\n";
  return 1;
}
