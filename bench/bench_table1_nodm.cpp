// Reproduces the BOTTOM half of Table 1 ("complexities when ignoring
// data-movement costs"): for each of the four rows, measured neuromorphic
// execution (SNN time steps of the actual gate-level/event-driven runs)
// against the measured conventional operation counts, the paper's
// asymptotic expressions, and the row's "neuromorphic is better when"
// condition — including the k-sweep that locates the k-hop crossover the
// paper predicts at log(nU) = o(k), and the L-sweep for the
// pseudopolynomial rows.
#include <iostream>

#include "analysis/advantage.h"
#include "core/bitops.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/costs.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/sssp_event.h"

using namespace sga;

int main() {
  obs::BenchReport report("table1_nodm");
  Rng rng(0x7AB1);
  std::cout
      << "=== Table 1 (bottom half): ignoring data-movement costs ===\n\n";

  // Reference instance family for the four headline rows.
  const std::size_t n = 64, m = 384;
  const Weight u_max = 8;
  const Graph g = make_random_graph(n, m, {1, u_max}, rng);
  const VertexId target = static_cast<VertexId>(n - 1);
  const std::uint32_t k = 16;

  const auto dij = dijkstra(g, 0);
  const auto bf = bellman_ford_khop(g, 0, k);

  nga::SpikingSsspOptions sopt;
  sopt.source = 0;
  const auto sssp_pseudo = nga::spiking_sssp(g, sopt);

  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = k;
  const auto khop_ttl = nga::khop_sssp_ttl(g, topt);

  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = k;
  const auto khop_poly = nga::khop_sssp_poly(g, popt);

  // SSSP via the polynomial algorithm: k = α (hops of the shortest path).
  // Run the full α rounds: the target's FIRST arrival can be a
  // fewer-hop-but-longer walk, so the answer is the min over rounds ≤ α.
  const std::uint32_t alpha = shortest_path_hops(dij, target);
  nga::KHopPolyOptions aopt;
  aopt.source = 0;
  aopt.k = std::max<std::uint32_t>(1, alpha);
  const auto sssp_poly = nga::khop_sssp_poly(g, aopt);
  SGA_CHECK(sssp_poly.dist[target] == dij.dist[target],
            "poly SSSP (k = alpha) disagreed with Dijkstra");

  nga::ProblemParams params;
  params.n = n;
  params.m = m;
  params.k = k;
  params.U = static_cast<std::uint64_t>(u_max);
  params.L = static_cast<std::uint64_t>(sssp_pseudo.execution_time);
  params.alpha = alpha;
  params.c = 1;

  Table t({"problem", "conventional (measured ops)", "paper conv.",
           "neuromorphic (measured T)", "paper nm.", "better when"});
  t.add_row({"SSSP poly", Table::num(dij.ops.total()), "O(m + n log n)",
             Table::num(sssp_poly.execution_time), "O(m log(nU))", "never"});
  t.add_row({"k-hop poly", Table::num(bf.ops.total()), "O(km)",
             Table::num(khop_poly.execution_time), "O(m log(nU))",
             "log(nU) = o(k)"});
  t.add_row({"SSSP pseudo", Table::num(dij.ops.total()), "O(m + n log n)",
             Table::num(sssp_pseudo.execution_time), "O(L + m)",
             "m, L = o(n log n) & L = o(m)"});
  t.add_row({"k-hop pseudo", Table::num(bf.ops.total()), "O(km)",
             Table::num(khop_ttl.execution_time), "O((m+L) log k)",
             "L = o(km/log k) & k = omega(1)"});
  t.set_title("Instance: n=64, m=384, U=8, k=16, target=63 (alpha=" +
              std::to_string(alpha) + ")");
  t.print(std::cout);
  report.add_table("t", t);
  std::cout << "(Neuromorphic T is the spiking portion; the paper's bounds "
               "add the O(m)-time network loading, identical for all rows.)\n";

  // --- the headline crossover: k-hop, spiking vs O(km) -------------------
  std::cout << "\n--- k-sweep: polynomial k-hop, T = k·x vs Bellman-Ford ops "
               "---\n";
  Table ks({"k", "BF ops (O(km))", "spiking T (k rounds)", "spiking wins?",
            "paper: k > log(nU) = " +
                Table::num(static_cast<std::int64_t>(
                    bits_for(static_cast<std::uint64_t>(n) *
                             static_cast<std::uint64_t>(u_max))))});
  for (const std::uint32_t kk : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto bfk = bellman_ford_khop(g, 0, kk);
    nga::KHopPolyOptions pk;
    pk.source = 0;
    pk.k = kk;
    const auto nk = nga::khop_sssp_poly(g, pk);
    const bool wins = static_cast<double>(nk.execution_time) <
                      static_cast<double>(bfk.ops.total());
    nga::ProblemParams pp = params;
    pp.k = kk;
    report.record("khop_poly/k=" + std::to_string(kk))
        .T(nk.execution_time)
        .spikes(nk.sim.spikes)
        .events(nk.sim.event_times)
        .set("bf_ops", bfk.ops.total());
    ks.add_row({Table::num(static_cast<std::uint64_t>(kk)),
                Table::num(bfk.ops.total()), Table::num(nk.execution_time),
                Table::yesno(wins),
                analysis::better_khop_poly_nodm(pp) ? "predicts yes"
                                                    : "predicts no"});
  }
  ks.print(std::cout);
  report.add_table("ks", ks);
  std::cout << "The spiking time grows as k·x (x = round period = Θ(log nU) "
               "steps) while the conventional cost grows as k·m — the "
               "Ω(k/log n)-style gap of the paper's headline.\n";

  // --- the pseudopolynomial story: L decides -----------------------------
  std::cout << "\n--- U-sweep: pseudopolynomial SSSP, T = L vs Dijkstra ops "
               "---\n";
  Table ls({"U", "L (= spiking T)", "Dijkstra ops", "spiking wins?",
            "paper condition holds?"});
  for (const Weight uu : {1, 4, 16, 64, 256}) {
    Rng r2(0x7AB1);  // same topology, rescaled weights
    const Graph gu = make_random_graph(n, m, {1, uu}, r2);
    const auto du = dijkstra(gu, 0);
    nga::SpikingSsspOptions su;
    su.source = 0;
    su.record_parents = false;
    const auto nu = nga::spiking_sssp(gu, su);
    nga::ProblemParams pu = params;
    pu.U = static_cast<std::uint64_t>(uu);
    pu.L = static_cast<std::uint64_t>(nu.execution_time);
    report.record("sssp_pseudo/U=" + std::to_string(uu))
        .T(nu.execution_time)
        .spikes(nu.sim.spikes)
        .events(nu.sim.event_times)
        .set("dijkstra_ops", du.ops.total());
    ls.add_row({Table::num(uu), Table::num(nu.execution_time),
                Table::num(du.ops.total()),
                Table::yesno(static_cast<double>(nu.execution_time) <
                             static_cast<double>(du.ops.total())),
                Table::yesno(analysis::better_sssp_pseudo_nodm(pu))});
  }
  ls.print(std::cout);
  report.add_table("ls", ls);
  std::cout << "Pseudopolynomial spiking time IS the path length L: cheap "
               "for small edge lengths, useless for huge ones — exactly the "
               "Table 1 condition L = o(n log n), L = o(m).\n";
  return 0;
}
