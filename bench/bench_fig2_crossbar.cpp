// Reproduces Figure 2 / Section 4.4–4.5: the stacked-grid crossbar H_n,
// the delay-programming embedding, and the embedding cost — the O(n)-factor
// slowdown of the spiking portion and the O(m) embed/unembed write cost,
// swept over graph size.
#include <iostream>

#include "analysis/fit.h"
#include "core/random.h"
#include "core/table.h"
#include "obs/report.h"
#include "crossbar/embedding.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"

using namespace sga;

int main() {
  obs::BenchReport report("fig2_crossbar");
  Rng rng(0xF162);
  std::cout << "=== Figure 2 / Section 4.4: SSSP on the crossbar H_n ===\n\n";

  Table t({"n", "m", "direct T", "crossbar T", "blowup", "scale (2n/l_min)",
           "host neurons", "delay writes"});
  std::vector<double> ns, blowups;
  for (const std::size_t n : {8u, 12u, 16u, 24u, 32u, 48u}) {
    const std::size_t m = 4 * n;
    const Graph g = make_random_graph(n, m, {1, 6}, rng);

    nga::SpikingSsspOptions direct_opt;
    direct_opt.source = 0;
    direct_opt.record_parents = false;
    const auto direct = nga::spiking_sssp(g, direct_opt);

    const auto onx = crossbar::spiking_sssp_on_crossbar(g, 0);
    const auto ref = dijkstra(g, 0);
    for (VertexId v = 0; v < n; ++v) {
      SGA_CHECK(onx.dist[v] == ref.dist[v], "crossbar distance mismatch");
    }

    const double blowup = static_cast<double>(onx.execution_time) /
                          static_cast<double>(direct.execution_time);
    ns.push_back(static_cast<double>(n));
    blowups.push_back(blowup);
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(static_cast<std::uint64_t>(m)),
               Table::num(direct.execution_time),
               Table::num(onx.execution_time), Table::fixed(blowup, 1),
               Table::num(onx.scale),
               Table::num(static_cast<std::uint64_t>(onx.neurons)),
               Table::num(static_cast<std::uint64_t>(m))});
  }
  t.print(std::cout);
  report.add_table("t", t);

  const auto shape = analysis::check_power_law(ns, blowups, 1.0);
  std::cout << "\nBlowup vs n (expect the O(n) embedding cost): "
            << analysis::describe(shape) << "\n";
  std::cout << "Host network is 2n^2 neurons; re-programming touches exactly "
               "m Type-2 delays (one per graph edge), as Section 4.4 "
               "argues.\n";
  return 0;
}
