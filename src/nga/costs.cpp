#include "nga/costs.h"

#include <algorithm>
#include <cmath>

namespace sga::nga {

double log2_clamped(double x) { return std::max(1.0, std::log2(x)); }

namespace {
double d(std::uint64_t v) { return static_cast<double>(v); }
}  // namespace

double nm_sssp_pseudo(const ProblemParams& p) { return d(p.L) + d(p.m); }

double nm_sssp_pseudo_embedded(const ProblemParams& p) {
  return d(p.n) * d(p.L) + d(p.m);
}

double nm_khop_pseudo(const ProblemParams& p) {
  return (d(p.L) + d(p.m)) * log2_clamped(d(p.k));
}

double nm_khop_pseudo_embedded(const ProblemParams& p) {
  return (d(p.n) * d(p.L) + d(p.m)) * log2_clamped(d(p.k));
}

double nm_khop_poly(const ProblemParams& p) {
  return d(p.m) * log2_clamped(d(p.n) * d(p.U));
}

double nm_khop_poly_spiking_only(const ProblemParams& p) {
  return d(p.k) * log2_clamped(d(p.n) * d(p.U));
}

double nm_khop_poly_embedded(const ProblemParams& p) {
  return (d(p.n) * d(p.k) + d(p.m)) * log2_clamped(d(p.n) * d(p.U));
}

double nm_sssp_poly(const ProblemParams& p) {
  return d(p.m) * log2_clamped(d(p.n) * d(p.U));
}

double nm_sssp_poly_embedded(const ProblemParams& p) {
  return (d(p.n) * d(p.alpha) + d(p.m)) * log2_clamped(d(p.n) * d(p.U));
}

double nm_approx_khop(const ProblemParams& p) {
  const double logn = log2_clamped(d(p.n));
  return (d(p.k) * logn + d(p.m)) *
         log2_clamped(d(p.k) * d(p.U) * logn);
}

double nm_approx_khop_embedded(const ProblemParams& p) {
  const double logn = log2_clamped(d(p.n));
  return (d(p.k) * d(p.n) * logn + d(p.m)) *
         log2_clamped(d(p.k) * d(p.U) * logn);
}

double conv_sssp(const ProblemParams& p) {
  return d(p.m) + d(p.n) * log2_clamped(d(p.n));
}

double conv_khop(const ProblemParams& p) { return d(p.k) * d(p.m); }

double lb_input_read(const ProblemParams& p) {
  return std::pow(d(p.m), 1.5) / std::sqrt(d(p.c));
}

double lb_khop_bellman_ford(const ProblemParams& p) {
  return d(p.k) * std::pow(d(p.m), 1.5) / std::sqrt(d(p.c));
}

}  // namespace sga::nga
