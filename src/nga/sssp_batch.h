// Batched multi-source spiking SSSP (the headline workload of large-scale
// neuromorphic graph search: one Section-3 network, many source sweeps).
//
// A naive multi-source sweep pays, per source, a full network rebuild
// (O(n + m) allocations) plus a fresh simulator (O(n) state vectors). This
// driver builds the network ONCE, fans the sources out over a small thread
// pool, and gives every worker one reusable Simulator whose reset() rewinds
// in O(events) — so source i + 1 costs only its own event traffic. The
// per-worker simulators share the immutable Network by const reference;
// there is no cross-thread mutable state beyond an atomic work index.
//
// This is also the substrate future sharding/scale PRs build on: a shard is
// "a batch of sources against one resident network".
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "snn/simulator.h"

namespace sga::nga {

struct SsspBatchOptions {
  /// Record shortest-path predecessors per source (doubles the per-run
  /// bookkeeping; off by default for sweeps that only need distances).
  bool record_parents = false;
  /// Safety horizon applied to every run; kNever = none.
  Time max_time = kNever;
  /// Worker threads; 0 = std::thread::hardware_concurrency() (≥ 1). The
  /// pool never exceeds the number of sources.
  unsigned num_threads = 0;
  /// Event-queue implementation for the per-worker simulators.
  snn::QueueKind queue = snn::QueueKind::kCalendar;
  /// Shard-parallelism mode (snn/parallel_sim.h): when > 0, the batch runs
  /// each source SEQUENTIALLY on one reusable sharded ParallelSimulator
  /// with this many shards and `num_threads` workers, instead of fanning
  /// sources out over per-worker serial simulators. Parallelism then comes
  /// from inside a single run — the right trade when sources are few but
  /// the network is large (per-source fan-out saturates at |sources|).
  /// `queue` is ignored in this mode (the sharded engine is calendar-only).
  std::size_t shards = 0;
  /// Optional metrics sink. Each worker thread accumulates into its OWN
  /// registry (installed as that thread's obs::thread_metrics(), so the
  /// per-worker simulator's `sim.*` counters land there too); the workers'
  /// registries are merged into this one after join — aggregation with no
  /// cross-thread contention. Untouched when nullptr.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One source's solution, same semantics as SpikingSsspResult in
/// all-destinations mode.
struct SsspSourceRun {
  VertexId source = kNoVertex;
  std::vector<Weight> dist;      ///< kInfiniteDistance where unreached
  std::vector<VertexId> parent;  ///< kNoVertex at source / unreached
  Time execution_time = 0;       ///< last first-spike time (Definition 3)
  snn::SimStats sim;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

struct SsspBatchResult {
  std::vector<SsspSourceRun> runs;  ///< one per source, in input order
  std::size_t neurons = 0;          ///< of the single shared network
  std::size_t synapses = 0;
  unsigned threads_used = 0;
};

/// Run spiking SSSP from every vertex in `sources` (duplicates allowed)
/// over one shared Section-3 network. Equivalent to |sources| independent
/// spiking_sssp calls in all-destinations mode, but amortizing the network
/// build and simulator state across runs.
SsspBatchResult spiking_sssp_batch(const Graph& g,
                                   const std::vector<VertexId>& sources,
                                   const SsspBatchOptions& opt = {});

}  // namespace sga::nga
