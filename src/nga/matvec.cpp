#include "nga/matvec.h"

#include <algorithm>

#include "core/error.h"

namespace sga::nga {

std::vector<std::uint64_t> matvec_power(const Graph& g,
                                        const std::vector<std::uint64_t>& x,
                                        std::uint64_t r) {
  SGA_REQUIRE(x.size() == g.num_vertices(), "matvec_power: size mismatch");
  std::vector<Message> init(g.num_vertices());
  for (std::size_t v = 0; v < x.size(); ++v) {
    init[v] = Message{x[v], true};
  }
  const EdgeFn edge = [](const Edge& e, const Message& in) {
    return Message{in.value * static_cast<std::uint64_t>(e.length), true};
  };
  const NodeFn node = [](VertexId, const std::vector<Message>& incoming) {
    std::uint64_t sum = 0;
    for (const Message& m : incoming) {
      if (m.valid) sum += m.value;
    }
    return Message{sum, true};
  };
  const NgaTrace trace = run_nga(g, init, r, edge, node);
  std::vector<std::uint64_t> out(g.num_vertices(), 0);
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = trace.per_round.back()[v].value;
  }
  return out;
}

namespace {

NgaTrace run_minplus(const Graph& g, VertexId source, std::uint64_t r) {
  SGA_REQUIRE(source < g.num_vertices(), "minplus: source out of range");
  std::vector<Message> init(g.num_vertices());
  init[source] = Message{0, true};
  const EdgeFn edge = [](const Edge& e, const Message& in) {
    return Message{in.value + static_cast<std::uint64_t>(e.length), true};
  };
  const NodeFn node = [](VertexId, const std::vector<Message>& incoming) {
    Message best;  // invalid: "no walk of this length reaches the node"
    for (const Message& m : incoming) {
      if (m.valid && (!best.valid || m.value < best.value)) best = m;
    }
    return best;
  };
  return run_nga(g, init, r, edge, node);
}

}  // namespace

std::vector<Weight> minplus_power(const Graph& g, VertexId source,
                                  std::uint64_t r) {
  const NgaTrace trace = run_minplus(g, source, r);
  std::vector<Weight> out(g.num_vertices(), kInfiniteDistance);
  for (std::size_t v = 0; v < out.size(); ++v) {
    const Message& m = trace.per_round.back()[v];
    if (m.valid) out[v] = static_cast<Weight>(m.value);
  }
  return out;
}

std::vector<std::vector<Weight>> minplus_rounds(const Graph& g,
                                                VertexId source,
                                                std::uint64_t r) {
  const NgaTrace trace = run_minplus(g, source, r);
  std::vector<std::vector<Weight>> out;
  out.reserve(trace.per_round.size());
  for (const auto& round : trace.per_round) {
    std::vector<Weight> row(g.num_vertices(), kInfiniteDistance);
    for (std::size_t v = 0; v < row.size(); ++v) {
      if (round[v].valid) row[v] = static_cast<Weight>(round[v].value);
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sga::nga
