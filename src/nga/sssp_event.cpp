#include "nga/sssp_event.h"

#include <algorithm>

#include "core/error.h"
#include "snn/parallel_sim.h"

namespace sga::nga {

snn::Network build_sssp_network(const Graph& g) {
  snn::Network net;
  // One relay per vertex: threshold 1, no decay (an arriving unit spike
  // fires it immediately; inhibition must persist, so τ = 0).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  }
  // Edge synapses: unit weight, delay = edge length.
  for (const auto& e : g.edges()) {
    net.add_synapse(e.from, e.to, 1, e.length);
  }
  // Fire-once: each relay inhibits itself with a weight exceeding the total
  // excitation it can ever receive afterwards (each in-neighbour fires at
  // most once, so in-degree bounds future input). Pure Definition-2 LIF —
  // no special refractory mechanism needed.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto guard = static_cast<SynWeight>(g.in_degree(v) + 1);
    net.add_synapse(v, v, -guard, 1);
  }
  return net;
}

snn::CompiledNetwork compile_sssp_streamed(
    std::size_t num_vertices,
    const std::function<void(const EdgeStream&)>& edges,
    snn::StoragePolicy policy, snn::StreamBuildStats* build_stats) {
  SGA_REQUIRE(num_vertices >= 1, "compile_sssp_streamed: need n >= 1");
  const std::size_t n = num_vertices;
  // In-degree prepass: the fire-once inhibition weight must exceed the
  // total excitation a relay can ever receive, which is its in-degree
  // (each in-neighbour fires at most once).
  std::vector<std::uint32_t> indeg(n, 0);
  edges([&](VertexId from, VertexId to, Weight length) {
    SGA_REQUIRE(from < n && to < n, "compile_sssp_streamed: edge ("
                                        << from << " -> " << to
                                        << ") endpoint out of range for n = "
                                        << n);
    SGA_REQUIRE(length >= kMinDelay, "compile_sssp_streamed: edge ("
                                         << from << " -> " << to
                                         << ") has length " << length
                                         << " below minimum δ = " << kMinDelay);
    ++indeg[to];
  });
  // Relay parameters and synapse order match build_sssp_network exactly
  // (edge synapses in stream order, then the per-vertex self-inhibition),
  // so the streamed freeze is event-for-event identical to the builder.
  return snn::CompiledNetwork::compile_streamed(
      n, [](NeuronId) { return snn::NeuronParams{0, 1, 0.0}; },
      [&](const snn::SynapseSink& sink) {
        edges([&](VertexId from, VertexId to, Weight length) {
          sink(from, to, 1, length);
        });
        for (NeuronId v = 0; v < n; ++v) {
          sink(v, v, -static_cast<SynWeight>(indeg[v] + 1), 1);
        }
      },
      policy, build_stats);
}

SpikingSsspResult spiking_sssp(const Graph& g, const SpikingSsspOptions& opt) {
  SGA_REQUIRE(opt.source < g.num_vertices(), "spiking_sssp: bad source");
  SGA_REQUIRE(!opt.target || *opt.target < g.num_vertices(),
              "spiking_sssp: bad target");
  SGA_REQUIRE(!opt.target || opt.targets.empty(),
              "spiking_sssp: use either target or targets, not both");
  for (const VertexId t : opt.targets) {
    SGA_REQUIRE(t < g.num_vertices(), "spiking_sssp: bad target " << t);
  }

  // build → freeze → simulate: mutation ends here.
  const snn::CompiledNetwork net = build_sssp_network(g).compile(opt.storage);
  snn::Simulator sim(net, opt.queue, opt.fanout);
  sim.inject_spike(opt.source, 0);

  snn::SimConfig cfg;
  cfg.max_time = opt.max_time;
  cfg.record_causes = opt.record_parents;
  if (opt.target) {
    cfg.terminal_neurons = {*opt.target};
  } else if (!opt.targets.empty()) {
    cfg.terminal_neurons = opt.targets;
    cfg.terminate_on_all = true;
  }

  SpikingSsspResult r;
  r.sim = sim.run(cfg);
  r.neurons = net.num_neurons();
  r.synapses = net.num_synapses();

  const Time last =
      read_sssp_solution(sim, g, opt.source, opt.record_parents, r.dist,
                         r.parent);
  const bool terminal_mode = opt.target.has_value() || !opt.targets.empty();
  r.execution_time =
      terminal_mode && r.sim.hit_terminal ? r.sim.execution_time : last;
  return r;
}

namespace {

// Shared read-out over any engine exposing first_spike / first_spike_cause
// (the serial Simulator and the sharded ParallelSimulator agree
// event-for-event, so so does this extraction).
template <typename Sim>
Time read_solution_impl(const Sim& sim, const Graph& g, VertexId source,
                        bool record_parents, std::vector<Weight>& dist,
                        std::vector<VertexId>& parent) {
  dist.assign(g.num_vertices(), kInfiniteDistance);
  parent.assign(g.num_vertices(), kNoVertex);
  Time last = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Time t = sim.first_spike(v);
    if (t == kNever) continue;
    dist[v] = static_cast<Weight>(t);  // first-spike time IS the distance
    last = std::max(last, t);
    if (record_parents && v != source) {
      parent[v] = static_cast<VertexId>(sim.first_spike_cause(v));
    }
  }
  return last;
}

}  // namespace

Time read_sssp_solution(const snn::Simulator& sim, const Graph& g,
                        VertexId source, bool record_parents,
                        std::vector<Weight>& dist,
                        std::vector<VertexId>& parent) {
  return read_solution_impl(sim, g, source, record_parents, dist, parent);
}

Time read_sssp_solution(const snn::ParallelSimulator& sim, const Graph& g,
                        VertexId source, bool record_parents,
                        std::vector<Weight>& dist,
                        std::vector<VertexId>& parent) {
  return read_solution_impl(sim, g, source, record_parents, dist, parent);
}

}  // namespace sga::nga
