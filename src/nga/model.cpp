#include "nga/model.h"

#include "core/error.h"

namespace sga::nga {

NgaTrace run_nga(const Graph& g, const std::vector<Message>& initial,
                 std::uint64_t rounds, const EdgeFn& edge_fn,
                 const NodeFn& node_fn) {
  SGA_REQUIRE(initial.size() == g.num_vertices(),
              "run_nga: initial message count " << initial.size()
                                                << " != vertex count "
                                                << g.num_vertices());
  NgaTrace trace;
  trace.per_round.push_back(initial);

  std::vector<Message> edge_msgs(g.num_edges());
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    const std::vector<Message>& prev = trace.per_round.back();

    // Broadcast + edge computation: m_{ij,r-1} = f_edge(e, m_{i,r-1}).
    for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
      const Edge& e = g.edge(eid);
      const Message& out = prev[e.from];
      if (out.valid) {
        edge_msgs[eid] = edge_fn(e, out);
        ++trace.messages_sent;
      } else {
        edge_msgs[eid] = Message{};  // silent edge
      }
    }

    // Node computation: m_{j,r} = f_node(j, incoming).
    std::vector<Message> next(g.num_vertices());
    std::vector<Message> incoming;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      incoming.clear();
      for (const EdgeId eid : g.in_edges(v)) {
        incoming.push_back(edge_msgs[eid]);
      }
      next[v] = node_fn(v, incoming);
    }
    trace.per_round.push_back(std::move(next));
  }
  return trace;
}

}  // namespace sga::nga
