#include "nga/matvec_gate.h"

#include <algorithm>

#include "circuits/builder.h"
#include "circuits/multiplier.h"
#include "core/bitops.h"
#include "core/error.h"
#include "snn/network.h"
#include "snn/probe.h"

namespace sga::nga {

GateMatvecResult matvec_gate_level(const Graph& g,
                                   const std::vector<std::uint64_t>& x,
                                   int in_bits, circuits::AdderKind adder) {
  SGA_REQUIRE(x.size() == g.num_vertices(), "matvec_gate_level: size mismatch");
  SGA_REQUIRE(in_bits >= 1 && in_bits <= 16, "matvec_gate_level: bad width");
  for (const auto v : x) {
    SGA_REQUIRE(v < (1ULL << in_bits),
                "matvec_gate_level: x entry " << v << " exceeds " << in_bits
                                              << " bits");
  }
  SGA_REQUIRE(g.num_edges() >= 1, "matvec_gate_level: graph has no edges");

  snn::Network net;
  circuits::CircuitBuilder cb(net);

  // Input layer: one bus per vertex.
  std::vector<std::vector<NeuronId>> xin;
  xin.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    xin.push_back(cb.make_input_bus(in_bits));
  }

  // Edge multipliers: product width uniform at in_bits + bits_for(U).
  const int prod_bits = in_bits + bits_for(static_cast<std::uint64_t>(
                                      g.max_edge_length()));
  std::vector<circuits::ConstMultiplier> mult(g.num_edges());
  int max_mult_depth = 0;
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    mult[eid] = circuits::build_const_multiplier(
        cb, in_bits, static_cast<std::uint64_t>(e.length), adder);
    // Drive the multiplier from the source vertex's input bus (delay 1).
    for (int b = 0; b < in_bits; ++b) {
      net.add_synapse(xin[e.from][static_cast<std::size_t>(b)],
                      mult[eid].x[static_cast<std::size_t>(b)], 1, 1);
    }
    max_mult_depth = std::max(max_mult_depth, mult[eid].depth);
  }

  // Node adder trees over the in-edges' products; all tree inputs must fire
  // simultaneously, so route each product with a compensating delay.
  const int tree_input_time = 1 + max_mult_depth + 1;
  std::vector<circuits::AdderTree> tree(g.num_vertices());
  Time out_time = 0;
  std::vector<char> has_tree(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto in_edges = g.in_edges(v);
    if (in_edges.empty()) continue;
    tree[v] = circuits::build_adder_tree(
        cb, static_cast<int>(in_edges.size()), prod_bits, adder);
    has_tree[v] = 1;
    for (std::size_t slot = 0; slot < in_edges.size(); ++slot) {
      const auto& m = mult[in_edges[slot]];
      const Delay d =
          static_cast<Delay>(tree_input_time) - (1 + m.depth);
      SGA_CHECK(d >= 1, "product arrives too late for the tree");
      for (std::size_t b = 0; b < m.product.size(); ++b) {
        // Products are at most prod_bits wide; tree relays cover them.
        net.add_synapse(m.product[b], tree[v].inputs[slot][b], 1, d);
      }
    }
    out_time = std::max<Time>(out_time, tree_input_time + tree[v].depth);
  }

  // Freeze, then run one presentation.
  const snn::CompiledNetwork compiled = net.compile();
  snn::Simulator sim(compiled);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    snn::inject_binary(sim, xin[v], x[v], 0);
  }
  snn::SimConfig cfg;
  cfg.max_time = out_time;
  GateMatvecResult r;
  r.sim = sim.run(cfg);
  r.neurons = net.num_neurons();
  r.synapses = net.num_synapses();
  r.execution_time = out_time;

  r.y.assign(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!has_tree[v]) continue;
    r.y[v] = snn::decode_binary_at(sim, tree[v].sum,
                                   tree_input_time + tree[v].depth);
  }
  return r;
}

}  // namespace sga::nga
