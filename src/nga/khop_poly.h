// Gate-level compilation of the polynomial-time k-hop SSSP algorithm
// (Section 4.2).
//
// Messages carry ⌈log(nU)⌉-ish-bit path lengths. Every synapse has the same
// delay, so the computation proceeds in synchronous rounds of period x
// ("we thus set x = c log(nU)"): at round r each node's circuit outputs the
// minimum length over all source→node walks with exactly r edges; the k-hop
// distance is the minimum over rounds 1..k (with per-round values recovered
// through the simulator's watched-spike log — the latched-bank alternative
// costs the O(k) neuron factor discussed in Section 4.3).
//
// Encoding (DESIGN.md §1): distances travel bitwise-complemented
// (c = 2^λ−1−d) so that MIN becomes MAX of complements and an absent
// (all-zero) message is neutral; the edge circuit then *adds the
// two's-complement of the edge length* to the complemented value, which is
// exactly "summing entries of A with message values on the edges"
// (Section 2.2) in the complement domain.
//
// Theorem 4.3: O(m log(nU)) time with O(1) data movement (dominated by
// loading), spiking portion O(k log(nU)); O((nk+m) log(nU)) on the crossbar.
#pragma once

#include <optional>
#include <vector>

#include "circuits/adders.h"
#include "circuits/max_circuits.h"
#include "core/types.h"
#include "graph/graph.h"
#include "snn/simulator.h"

namespace sga::nga {

struct KHopPolyOptions {
  VertexId source = 0;
  std::uint32_t k = 1;  ///< number of rounds (hop budget)
  /// If set, stop at the round where this vertex first receives a message
  /// ("the NGA terminates ... when the node corresponding to v_t receives a
  /// spike").
  std::optional<VertexId> target;
  /// Max-circuit construction for the per-node MIN (ablation knob).
  circuits::MaxKind max_kind = circuits::MaxKind::kWiredOr;
  /// Event-queue implementation for the simulator (DESIGN.md §4 knob).
  snn::QueueKind queue = snn::QueueKind::kCalendar;
  /// Build Section 4.3's IN-NETWORK path memory: per vertex, a one-hot→
  /// binary encoder over the MIN circuit's winner lines feeding k
  /// clock-strobed latch banks (circuits::RoundStore) — "the extra storage
  /// requires a multiplicative factor of O(k) additional neurons". The
  /// banks' contents are decoded into KHopPolyResult::memory_parent and
  /// must agree with the probe-decoded parent_per_round (ties caveat:
  /// simultaneous winners OR their slot indices in the banks; target-mode
  /// caveat: stopping at the target's arrival round leaves that round's
  /// banks unwritten — they strobe 3 steps after the round boundary).
  bool in_network_parent_memory = false;
};

struct KHopPolyResult {
  /// dist[v] = dist_k(v) = min over rounds r ≤ k.
  std::vector<Weight> dist;
  /// per_round[r][v] = length of the shortest source→v walk with exactly r
  /// edges (kInfiniteDistance if none) — matches nga::minplus_rounds.
  std::vector<std::vector<Weight>> per_round;
  /// parent_per_round[r][v]: the in-neighbour whose round-(r−1) message won
  /// v's MIN at round r (kNoVertex if no arrival) — decoded from the max
  /// circuits' winner neurons (Figure 3's a_{i,1} / Figure 5's M_x), the
  /// Section-4.3 path-construction information.
  std::vector<std::vector<VertexId>> parent_per_round;
  /// With in_network_parent_memory: memory_parent[r][v] as read from the
  /// vertex's round-r latch bank at the END of the run (kNoVertex where the
  /// bank was never written). Indexed like parent_per_round.
  std::vector<std::vector<VertexId>> memory_parent;
  Time execution_time = 0;  ///< SNN steps (k rounds → k·x)
  Time round_period = 0;    ///< x
  int lambda = 0;           ///< message width
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  snn::SimStats sim;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

KHopPolyResult khop_sssp_poly(const Graph& g, const KHopPolyOptions& opt);

/// Reconstruct a ≤k-hop shortest path source→target from the per-round
/// winner record: walk backwards from the best round, following each
/// round's winning in-edge. Requires target reachable within k hops.
std::vector<VertexId> extract_khop_path(const KHopPolyResult& r,
                                        VertexId source, VertexId target);

/// Theorem 4.4's SSSP instantiation ("just set k to α") without knowing α
/// in advance: run the polynomial algorithm with doubling hop budgets until
/// a round improves nothing (the Bellman–Ford early-exit criterion: with
/// positive weights, a no-change round proves convergence). The result's
/// `k` is the budget that converged — within 2× of the true max shortest-
/// path hop count — so the total spiking time is O(α·log(nU)).
struct SsspPolyResult {
  std::vector<Weight> dist;
  std::uint32_t k_used = 0;        ///< final (converged) hop budget
  std::uint32_t rounds_total = 0;  ///< rounds summed over all attempts
  Time total_time = 0;             ///< SNN steps summed over all attempts
  std::size_t neurons = 0;         ///< of the final network
};
SsspPolyResult sssp_poly_adaptive(const Graph& g, VertexId source,
                                  const KHopPolyOptions& base = {});

}  // namespace sga::nga
