// The Section 2.2 example NGA: computing A^r m_0 by message passing, for
// the ordinary (+, ×) semiring and the (min, +) tropical semiring — the
// latter is exactly the k-hop shortest-path recurrence, which is why the
// paper says its techniques "carry over to the more general matrix-vector
// multiplication problem".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "nga/model.h"

namespace sga::nga {

/// r rounds of m ← A m where A_ij = length of edge i→j (0 where absent)
/// and multiplication/addition are ordinary integer ops. Returns the final
/// message vector (invalid ⇒ the entry is 0). Values must stay below 2^63.
std::vector<std::uint64_t> matvec_power(const Graph& g,
                                        const std::vector<std::uint64_t>& x,
                                        std::uint64_t r);

/// r rounds of the (min, +) recurrence m_{j} ← min_i (m_i + A_ij): after r
/// rounds starting from m_source = 0 (others invalid/∞), entry v holds the
/// length of the shortest walk source→v with exactly r edges — the
/// building block of the polynomial k-hop algorithm. kInfiniteDistance
/// marks "no walk".
std::vector<Weight> minplus_power(const Graph& g, VertexId source,
                                  std::uint64_t r);

/// All rounds 0..r of the (min, +) recurrence, where round t's entry v is
/// the shortest walk with exactly t edges.
std::vector<std::vector<Weight>> minplus_rounds(const Graph& g,
                                                VertexId source,
                                                std::uint64_t r);

}  // namespace sga::nga
