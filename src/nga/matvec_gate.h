// Gate-level compilation of ONE round of the Section-2.2 matrix-vector NGA:
// y = A·x with A_ij = the length of edge i→j, computed by an actual spiking
// network — a shift-and-add constant multiplier on every edge and an adder
// tree at every node. This substantiates the paper's closing remark of
// Section 2.2: "our techniques carry over to the more general matrix-vector
// multiplication problem".
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/adders.h"
#include "core/types.h"
#include "graph/graph.h"
#include "snn/simulator.h"

namespace sga::nga {

struct GateMatvecResult {
  std::vector<std::uint64_t> y;  ///< y_j = Σ_i A_ij · x_i
  Time execution_time = 0;       ///< when the output buses fire
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  snn::SimStats sim;
};

/// Compute y = A·x gate-level. x values must fit in `in_bits` (≤ 16).
/// Entries of x may be zero (their bits simply stay silent).
GateMatvecResult matvec_gate_level(const Graph& g,
                                   const std::vector<std::uint64_t>& x,
                                   int in_bits,
                                   circuits::AdderKind adder =
                                       circuits::AdderKind::kRipple);

}  // namespace sga::nga
