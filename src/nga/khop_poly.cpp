#include "nga/khop_poly.h"

#include <algorithm>
#include <unordered_map>

#include "circuits/arith.h"
#include "circuits/builder.h"
#include "circuits/encoder.h"
#include "circuits/storage.h"
#include "core/bitops.h"
#include "core/error.h"
#include "snn/network.h"
#include "snn/probe.h"

namespace sga::nga {

namespace {

struct VertexNode {
  circuits::MaxCircuit max;        // complement-domain MAX == distance MIN
  NeuronId out_valid = kNoNeuron;  // fires with the outputs when a message
                                   // arrived this round
};

}  // namespace

KHopPolyResult khop_sssp_poly(const Graph& g, const KHopPolyOptions& opt) {
  SGA_REQUIRE(opt.source < g.num_vertices(), "khop_sssp_poly: bad source");
  SGA_REQUIRE(!opt.target || *opt.target < g.num_vertices(),
              "khop_sssp_poly: bad target");
  SGA_REQUIRE(opt.k >= 1, "khop_sssp_poly: k must be >= 1");
  SGA_REQUIRE(g.num_edges() >= 1, "khop_sssp_poly: graph has no edges");

  KHopPolyResult r;
  const Weight u_max = g.max_edge_length();
  // Width: messages reach (k+1)·U transiently (a round-k value plus one edge
  // in flight); +1 keeps the complement of every real message ≥ 1 so it is
  // never mistaken for "absent".
  const std::uint64_t cap =
      (static_cast<std::uint64_t>(opt.k) + 1) * static_cast<std::uint64_t>(u_max) +
      1;
  r.lambda = bits_for(cap);
  SGA_REQUIRE(r.lambda <= 40, "khop_sssp_poly: k·U too large (" << cap << ")");
  const std::uint64_t kComplementMask = mask_bits(r.lambda);

  snn::Network net;
  std::vector<VertexNode> nodes;
  nodes.reserve(g.num_vertices());
  int node_depth = -1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexNode vn;
    circuits::CircuitBuilder cb(net);
    const int d = std::max<int>(1, static_cast<int>(g.in_degree(v)));
    vn.max = circuits::build_max(cb, d, r.lambda, opt.max_kind);
    if (node_depth < 0) node_depth = vn.max.depth;
    SGA_CHECK(vn.max.depth == node_depth, "node depth must be uniform");
    // out_valid: the arrival indicator, aligned with the outputs.
    vn.out_valid = net.add_neuron(snn::NeuronParams{0, 1, 1.0});
    net.add_synapse(vn.max.enable, vn.out_valid, 1, node_depth);
    nodes.push_back(std::move(vn));
  }

  // One edge circuit per graph edge: add the two's complement of ℓ(e) to
  // the complemented distance. All edge circuits share one depth.
  int edge_depth = -1;
  std::vector<circuits::AddConstCircuit> edge_circuits;
  edge_circuits.reserve(g.num_edges());
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    circuits::CircuitBuilder cb(net);
    const std::uint64_t constant =
        (~static_cast<std::uint64_t>(e.length) + 1) & kComplementMask;
    edge_circuits.push_back(
        circuits::build_add_constant(cb, r.lambda, constant));
    if (edge_depth < 0) edge_depth = edge_circuits.back().depth;
    SGA_CHECK(edge_circuits.back().depth == edge_depth,
              "edge depth must be uniform");
  }

  // Round period x: node (Dn) -> 1 -> edge (De) -> 1 -> next node.
  const Time x = node_depth + 1 + edge_depth + 1;
  r.round_period = x;

  // Wire the fabric.
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    const auto& from = nodes[e.from];
    const auto& ec = edge_circuits[eid];
    // Node outputs (offset Dn in the round) feed the edge circuit.
    for (int j = 0; j < r.lambda; ++j) {
      net.add_synapse(from.max.outputs[static_cast<std::size_t>(j)],
                      ec.a[static_cast<std::size_t>(j)], 1, 1);
    }
    // The constant line fires only when the node actually broadcast — this
    // is what keeps silent edges silent.
    net.add_synapse(from.out_valid, ec.enable, 1, 1);

    // Edge outputs (offset Dn + 1 + De) feed the successor's bus slot.
    const auto in_list = g.in_edges(e.to);
    std::size_t slot = in_list.size();
    for (std::size_t i = 0; i < in_list.size(); ++i) {
      if (in_list[i] == eid) {
        slot = i;
        break;
      }
    }
    SGA_CHECK(slot < in_list.size(), "edge missing from in-list");
    const auto& to = nodes[e.to];
    for (int j = 0; j < r.lambda; ++j) {
      net.add_synapse(ec.sum[static_cast<std::size_t>(j)],
                      to.max.inputs[slot][static_cast<std::size_t>(j)], 1, 1);
    }
    // Arrival indicator: the sender's valid, after the edge latency.
    net.add_synapse(from.out_valid, to.max.enable, 1,
                    x - static_cast<Time>(node_depth));
  }

  // Section 4.3's in-network path memory: per vertex, encode the winner
  // slot each round and latch it into a clock-strobed bank (one bank per
  // round — the O(k) neuron factor). Winners fire 2 steps before the round
  // boundary r·x; the encoder adds 2 (inputs + index), the store bus 1, so
  // bank b (0-based) is strobed at (b+1)·x + 1.
  struct ParentMemory {
    circuits::EncoderCircuit encoder;
    circuits::RoundStore store;
    int slot_bits = 0;
  };
  std::vector<ParentMemory> memory;
  std::vector<int> memory_of_vertex(g.num_vertices(), -1);
  if (opt.in_network_parent_memory) {
    const Time winner_lead_build =
        static_cast<Time>(node_depth - nodes.front().max.winner_level);
    SGA_CHECK(winner_lead_build == 2, "memory wiring assumes winner lead 2");
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto in_list = g.in_edges(v);
      if (in_list.empty()) continue;
      circuits::CircuitBuilder cb(net);
      ParentMemory pm;
      pm.encoder = circuits::build_encoder(cb, static_cast<int>(in_list.size()));
      pm.slot_bits = static_cast<int>(pm.encoder.index.size());
      for (std::size_t slot = 0; slot < in_list.size(); ++slot) {
        net.add_synapse(nodes[v].max.winners[slot], pm.encoder.inputs[slot], 1,
                        1);
      }
      // Bus = slot index bits + a validity bit (slot 0 is all-zero bits).
      pm.store = circuits::build_round_store(net, pm.slot_bits + 1, x,
                                             static_cast<int>(opt.k));
      for (int b = 0; b < pm.slot_bits; ++b) {
        net.add_synapse(pm.encoder.index[static_cast<std::size_t>(b)],
                        pm.store.bus[static_cast<std::size_t>(b)], 1, 1);
      }
      net.add_synapse(pm.encoder.any,
                      pm.store.bus[static_cast<std::size_t>(pm.slot_bits)], 1,
                      1);
      memory_of_vertex[v] = static_cast<int>(memory.size());
      memory.push_back(std::move(pm));
    }
  }

  // Freeze the compiled fabric, then launch: the source broadcasts
  // distance 0 (complement = all ones).
  const snn::CompiledNetwork compiled = net.compile();
  snn::Simulator sim(compiled, opt.queue);
  snn::inject_binary(sim, nodes[opt.source].max.outputs, kComplementMask, 0);
  sim.inject_spike(nodes[opt.source].out_valid, 0);
  for (const auto& pm : memory) {
    sim.inject_spike(pm.store.clock_start, x + 1);
  }

  snn::SimConfig cfg;
  // Round k's node outputs land at exactly k·x; with the in-network memory
  // the last bank's latch write needs 3 more steps.
  cfg.max_time = static_cast<Time>(opt.k) * x + (memory.empty() ? 0 : 3);
  cfg.record_spike_log = true;
  for (const auto& vn : nodes) {
    for (const NeuronId bit : vn.max.outputs) {
      cfg.watched_neurons.push_back(bit);
    }
    cfg.watched_neurons.push_back(vn.out_valid);
    for (const NeuronId w : vn.max.winners) {
      cfg.watched_neurons.push_back(w);
    }
  }
  if (opt.target) {
    // Stop at the end of the round in which the target first receives a
    // message (out_valid fires at r·x, together with the round's outputs,
    // so the final round is still decodable).
    cfg.terminal_neurons = {nodes[*opt.target].out_valid};
  }
  r.sim = sim.run(cfg);
  r.neurons = net.num_neurons();
  r.synapses = net.num_synapses();

  // Decode rounds from the watched-spike log. Node outputs of round r fire
  // at time r·x (the injected round 0 fires at 0).
  std::unordered_map<NeuronId, std::pair<VertexId, int>> bit_index;
  std::unordered_map<NeuronId, VertexId> valid_index;
  // winner_index: winner neuron -> (vertex, source of the winning in-edge).
  std::unordered_map<NeuronId, std::pair<VertexId, VertexId>> winner_index;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int j = 0; j < r.lambda; ++j) {
      bit_index[nodes[v].max.outputs[static_cast<std::size_t>(j)]] = {v, j};
    }
    valid_index[nodes[v].out_valid] = v;
    const auto in_list = g.in_edges(v);
    for (std::size_t slot = 0; slot < in_list.size(); ++slot) {
      winner_index[nodes[v].max.winners[slot]] = {v, g.edge(in_list[slot]).from};
    }
  }
  // Winners fire `winner_lead` steps before the round's outputs.
  const Time winner_lead =
      static_cast<Time>(node_depth - nodes.front().max.winner_level);
  const std::uint64_t rounds_seen =
      static_cast<std::uint64_t>(r.sim.end_time / x);
  const std::uint64_t round_count = std::min<std::uint64_t>(opt.k, rounds_seen);
  r.per_round.assign(round_count + 1,
                     std::vector<Weight>(g.num_vertices(), kInfiniteDistance));
  std::vector<std::vector<std::uint64_t>> complements(
      round_count + 1, std::vector<std::uint64_t>(g.num_vertices(), 0));
  std::vector<std::vector<char>> valid(
      round_count + 1, std::vector<char>(g.num_vertices(), 0));
  r.parent_per_round.assign(round_count + 1,
                            std::vector<VertexId>(g.num_vertices(), kNoVertex));
  for (const auto& [t, id] : sim.spike_log()) {
    // Winner neurons fire winner_lead steps ahead of the round boundary.
    if ((t + winner_lead) % x == 0) {
      if (const auto wt = winner_index.find(id); wt != winner_index.end()) {
        const auto round = static_cast<std::uint64_t>((t + winner_lead) / x);
        if (round >= 1 && round <= round_count &&
            r.parent_per_round[round][wt->second.first] == kNoVertex) {
          // Ties: the wired-OR circuit marks every tied input; keep the
          // first (lowest neuron id ⇒ lowest bus slot seen in the log).
          r.parent_per_round[round][wt->second.first] = wt->second.second;
        }
      }
    }
    if (t % x != 0) continue;
    const auto round = static_cast<std::uint64_t>(t / x);
    if (round > round_count) continue;
    if (const auto it = bit_index.find(id); it != bit_index.end()) {
      complements[round][it->second.first] |= 1ULL << it->second.second;
    } else if (const auto vt = valid_index.find(id); vt != valid_index.end()) {
      valid[round][vt->second] = 1;
    }
  }
  for (std::uint64_t round = 0; round <= round_count; ++round) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (!valid[round][v]) continue;
      const std::uint64_t c = complements[round][v];
      SGA_CHECK(c >= 1, "complement-encoded message decoded as zero");
      r.per_round[round][v] =
          static_cast<Weight>(kComplementMask - c);
    }
  }

  // dist_k = min over rounds (round 0 covers the source's 0).
  r.dist.assign(g.num_vertices(), kInfiniteDistance);
  for (const auto& round : r.per_round) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      r.dist[v] = std::min(r.dist[v], round[v]);
    }
  }
  // Decode the in-network parent memory banks.
  if (!memory.empty()) {
    r.memory_parent.assign(
        round_count + 1, std::vector<VertexId>(g.num_vertices(), kNoVertex));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (memory_of_vertex[v] < 0) continue;
      const auto& pm = memory[static_cast<std::size_t>(memory_of_vertex[v])];
      const auto in_list = g.in_edges(v);
      for (std::uint64_t round = 1; round <= round_count; ++round) {
        const std::uint64_t raw = circuits::read_latched(
            sim, pm.store.latches[static_cast<std::size_t>(round - 1)]);
        if (!((raw >> pm.slot_bits) & 1ULL)) continue;  // validity bit unset
        const std::uint64_t slot = raw & mask_bits(pm.slot_bits);
        if (slot < in_list.size()) {
          r.memory_parent[round][v] =
              g.edge(in_list[static_cast<std::size_t>(slot)]).from;
        }
        // slot >= indeg can only happen when tied winners OR'd their
        // indices; leave kNoVertex (the probe-based parent still applies).
      }
    }
  }
  r.execution_time = r.sim.hit_terminal
                         ? r.sim.execution_time
                         : std::min<Time>(r.sim.end_time,
                                          static_cast<Time>(opt.k) * x);
  return r;
}

SsspPolyResult sssp_poly_adaptive(const Graph& g, VertexId source,
                                  const KHopPolyOptions& base) {
  SGA_REQUIRE(source < g.num_vertices(), "sssp_poly_adaptive: bad source");
  SsspPolyResult out;
  std::uint32_t k = 1;
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  while (true) {
    KHopPolyOptions opt = base;
    opt.source = source;
    opt.k = std::min<std::uint32_t>(k, n > 1 ? n - 1 : 1);
    opt.target.reset();
    const KHopPolyResult run = khop_sssp_poly(g, opt);
    out.rounds_total += opt.k;
    out.total_time += run.execution_time;
    out.neurons = run.neurons;
    out.dist = run.dist;
    out.k_used = opt.k;

    // Converged iff the final round improved nothing: the running min over
    // rounds < k already equals the min over rounds ≤ k. If the network
    // went silent before round k (per_round is short), the trailing rounds
    // carried no messages at all — also convergence.
    bool improved_last_round = false;
    if (run.per_round.size() == static_cast<std::size_t>(opt.k) + 1 &&
        run.per_round.size() >= 2) {
      const auto& last = run.per_round.back();
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        Weight before = kInfiniteDistance;
        for (std::size_t r = 0; r + 1 < run.per_round.size(); ++r) {
          before = std::min(before, run.per_round[r][v]);
        }
        if (last[v] < before) {
          improved_last_round = true;
          break;
        }
      }
    }
    if (!improved_last_round || opt.k >= n - 1) return out;
    k *= 2;
  }
}

std::vector<VertexId> extract_khop_path(const KHopPolyResult& r,
                                        VertexId source, VertexId target) {
  SGA_REQUIRE(target < r.dist.size(), "extract_khop_path: bad target");
  SGA_REQUIRE(r.dist[target] < kInfiniteDistance,
              "extract_khop_path: target unreachable within k hops");
  if (target == source) return {source};

  // Best round: the earliest round attaining dist_k(target).
  std::size_t best_round = 0;
  for (std::size_t round = 0; round < r.per_round.size(); ++round) {
    if (r.per_round[round][target] == r.dist[target]) {
      best_round = round;
      break;
    }
  }
  SGA_CHECK(best_round >= 1, "non-source target achieved its distance at round 0");

  std::vector<VertexId> path{target};
  VertexId v = target;
  for (std::size_t round = best_round; round >= 1; --round) {
    const VertexId u = r.parent_per_round[round][v];
    SGA_CHECK(u != kNoVertex, "missing winner for vertex "
                                  << v << " at round " << round);
    path.push_back(u);
    v = u;
  }
  SGA_CHECK(v == source, "winner backtrack ended at " << v
                                                      << ", not the source");
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace sga::nga
