#include "nga/khop_ttl.h"

#include <algorithm>

#include "circuits/arith.h"
#include "circuits/builder.h"
#include "core/bitops.h"
#include "core/error.h"
#include "snn/network.h"
#include "snn/probe.h"

namespace sga::nga {

namespace {

/// Everything we need to wire one vertex's node circuit into the graph
/// fabric. Absolute timing within a presentation: the max circuit's inputs
/// (and enable) fire at offset 0, out_bits / out_valid at offset D.
struct VertexCircuit {
  circuits::MaxCircuit max;         // TTL max over in-edges
  std::vector<NeuronId> out_bits;   // decremented TTL, gated by nonzero
  NeuronId out_valid = kNoNeuron;   // fires iff max TTL was ≥ 1
  std::vector<std::size_t> bus_of_in_edge;  // in-edge index -> max bus slot
};

VertexCircuit build_vertex_circuit(snn::Network& net, const Graph& g,
                                   VertexId v, int lambda,
                                   circuits::MaxKind kind, int* depth_out) {
  VertexCircuit vc;
  const auto in_edges = g.in_edges(v);
  const int d = std::max<int>(1, static_cast<int>(in_edges.size()));

  circuits::CircuitBuilder cb(net);
  vc.max = circuits::build_max(cb, d, lambda, kind);
  vc.bus_of_in_edge.resize(in_edges.size());
  for (std::size_t i = 0; i < in_edges.size(); ++i) vc.bus_of_in_edge[i] = i;

  const int d_max = vc.max.depth;

  // nonzero (fires iff max TTL ≥ 1), one level after the max outputs.
  const NeuronId nonzero = net.add_neuron(snn::NeuronParams{0, 1, 1.0});
  for (const NeuronId bit : vc.max.outputs) {
    net.add_synapse(bit, nonzero, 1, 1);
  }

  // Decrement circuit, fed from the max outputs (inputs fire at d_max + 1).
  const circuits::AddConstCircuit dec = circuits::build_decrement(cb, lambda);
  for (int j = 0; j < lambda; ++j) {
    net.add_synapse(vc.max.outputs[static_cast<std::size_t>(j)],
                    dec.a[static_cast<std::size_t>(j)], 1, 1);
  }
  // The decrement's constant line must fire with its inputs.
  net.add_synapse(vc.max.enable, dec.enable, 1, d_max + 1);

  // Output: decremented TTL gated by nonzero, plus the rebroadcast flag.
  // Both land at offset D = d_max + 1 + dec.depth + 1.
  const int out_level = d_max + 1 + dec.depth + 1;
  for (int j = 0; j < lambda; ++j) {
    const NeuronId bit = net.add_neuron(snn::NeuronParams{0, 2, 1.0});
    net.add_synapse(dec.sum[static_cast<std::size_t>(j)], bit, 1, 1);
    net.add_synapse(nonzero, bit, 1, out_level - (d_max + 1));
    vc.out_bits.push_back(bit);
  }
  vc.out_valid = net.add_neuron(snn::NeuronParams{0, 1, 1.0});
  net.add_synapse(nonzero, vc.out_valid, 1, out_level - (d_max + 1));

  *depth_out = out_level;
  return vc;
}

}  // namespace

bool KHopTtlCompiled::serves(std::uint32_t k) const {
  return k >= 1 && bits_for(k - 1) == lambda;
}

KHopTtlCompiled compile_khop_ttl(const Graph& g, std::uint32_t k,
                                 circuits::MaxKind max_kind) {
  SGA_REQUIRE(k >= 1, "compile_khop_ttl: k must be >= 1");
  SGA_REQUIRE(g.num_edges() >= 1, "compile_khop_ttl: graph has no edges");

  KHopTtlCompiled c;
  c.lambda = bits_for(k - 1);

  // Build one node circuit per vertex; they all share the same depth D
  // because the circuit shape depends only on (indegree, λ), and λ is
  // global — but indegree varies, so measure per vertex and take the max,
  // then pad every vertex's OUTPUT timing to that common D.
  //
  // Simpler and exact: depth only depends on λ for both max constructions
  // EXCEPT the wired-OR's elimination stages, which also depend only on λ.
  // (Fan-in d changes width, not depth.) So all vertices share D naturally;
  // we assert this below.
  snn::Network net;
  std::vector<VertexCircuit> circuits_by_vertex;
  circuits_by_vertex.reserve(g.num_vertices());
  int depth = -1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    int d = 0;
    circuits_by_vertex.push_back(
        build_vertex_circuit(net, g, v, c.lambda, max_kind, &d));
    if (depth < 0) depth = d;
    SGA_CHECK(d == depth, "node circuit depth must be uniform: vertex "
                              << v << " has depth " << d << " vs " << depth);
  }
  c.node_depth = depth;

  // Scale: shortest edge must cover the node depth plus one step of synapse.
  const Weight lmin = g.min_edge_length();
  c.scale = std::max<Weight>(
      1, (static_cast<Weight>(depth) + 1 + lmin - 1) / lmin);

  // Graph fabric: node outputs -> successor node inputs.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& from = circuits_by_vertex[v];
    for (const EdgeId eid : g.out_edges(v)) {
      const Edge& e = g.edge(eid);
      const auto& to = circuits_by_vertex[e.to];
      // Find this edge's bus slot at the target.
      const auto in_list = g.in_edges(e.to);
      std::size_t slot = in_list.size();
      for (std::size_t i = 0; i < in_list.size(); ++i) {
        if (in_list[i] == eid) {
          slot = to.bus_of_in_edge[i];
          break;
        }
      }
      SGA_CHECK(slot < in_list.size(), "edge " << eid << " missing from "
                                               << e.to << "'s in-list");
      const Delay d_e = c.scale * e.length - depth;
      SGA_CHECK(d_e >= 1, "edge delay underflow");
      for (int j = 0; j < c.lambda; ++j) {
        net.add_synapse(from.out_bits[static_cast<std::size_t>(j)],
                        to.max.inputs[slot][static_cast<std::size_t>(j)], 1,
                        d_e);
      }
      net.add_synapse(from.out_valid, to.max.enable, 1, d_e);
    }
  }

  // Freeze, and keep only the per-vertex port ids the serve path needs —
  // the full VertexCircuit (bus maps, internal gate ids) dies with the
  // builder.
  c.network = net.compile();
  c.max_edge_length = g.max_edge_length();
  c.ports.reserve(g.num_vertices());
  for (const VertexCircuit& vc : circuits_by_vertex) {
    KHopNodePorts p;
    p.enable = vc.max.enable;
    p.out_valid = vc.out_valid;
    p.out_bits = vc.out_bits;
    p.max_outputs = vc.max.outputs;
    p.max_depth = vc.max.depth;
    c.ports.push_back(std::move(p));
  }
  return c;
}

KHopTtlResult run_khop_ttl(const KHopTtlCompiled& c, snn::Simulator& sim,
                           const KHopTtlRunOptions& opt) {
  const std::size_t n = c.num_vertices();
  SGA_REQUIRE(&sim.network() == &c.network,
              "run_khop_ttl: simulator is not bound to this artifact");
  SGA_REQUIRE(opt.source < n, "run_khop_ttl: bad source");
  SGA_REQUIRE(!opt.target || *opt.target < n, "run_khop_ttl: bad target");
  SGA_REQUIRE(c.serves(opt.k), "run_khop_ttl: hop budget "
                                   << opt.k << " needs TTL width "
                                   << bits_for(opt.k == 0 ? 0 : opt.k - 1)
                                   << ", artifact was compiled for λ = "
                                   << c.lambda);

  KHopTtlResult r;
  r.lambda = c.lambda;
  r.scale = c.scale;
  r.node_depth = c.node_depth;

  // Launch: the source's node output emits TTL k-1 at time 0.
  snn::inject_binary(sim, c.ports[opt.source].out_bits, opt.k - 1, 0);
  sim.inject_spike(c.ports[opt.source].out_valid, 0);

  snn::SimConfig cfg;
  // Any ≤k-hop walk has scaled length ≤ S·k·U; allow the final node circuit
  // to finish.
  cfg.max_time = c.scale * static_cast<Time>(opt.k) *
                     std::max<Weight>(1, c.max_edge_length) +
                 c.node_depth + 1;
  if (opt.target) {
    cfg.terminal_neurons = {c.ports[*opt.target].enable};
  }
  // Watch the per-vertex MAX outputs: the first presentation's decoded
  // value is the max TTL of the first (shortest) arrival, giving hop counts.
  cfg.record_spike_log = true;
  for (const KHopNodePorts& p : c.ports) {
    for (const NeuronId bit : p.max_outputs) {
      cfg.watched_neurons.push_back(bit);
    }
  }
  r.sim = sim.run(cfg);
  r.neurons = c.network.num_neurons();
  r.synapses = c.network.num_synapses();

  // Readout: a vertex's enable relay fires at S·dist − D on first arrival;
  // its max outputs fire Dmax steps later carrying the arrival's max TTL.
  r.dist.assign(n, kInfiniteDistance);
  r.hops.assign(n, 0);
  r.dist[opt.source] = 0;
  Time last = 0;
  std::vector<Time> first_output_time(n, kNever);
  for (VertexId v = 0; v < n; ++v) {
    if (v == opt.source) continue;
    const Time t = sim.first_spike(c.ports[v].enable);
    if (t == kNever) continue;
    const Time scaled = t + c.node_depth;
    SGA_CHECK(scaled % c.scale == 0,
              "arrival time " << t << " at vertex " << v
                              << " is not aligned to scale " << c.scale);
    r.dist[v] = scaled / c.scale;
    last = std::max(last, t);
    first_output_time[v] = t + c.ports[v].max_depth;
  }
  // Decode the first presentation's TTL per vertex: the watched max-output
  // bits firing at exactly first_output_time[v]. decode_binary_window's
  // point window resolves multi-firing bits from the spike log (the bits
  // fire once per arrival, and vertices can receive many arrivals).
  for (VertexId v = 0; v < n; ++v) {
    if (v == opt.source || r.dist[v] >= kInfiniteDistance) continue;
    // Arrival TTL τ ⇒ the path used k − τ edges. In target mode the run
    // may stop before the target's max outputs appear; leave hops 0 then.
    if (first_output_time[v] <= r.sim.end_time) {
      const std::uint64_t ttl = snn::decode_binary_window(
          sim, c.ports[v].max_outputs, first_output_time[v],
          first_output_time[v]);
      r.hops[v] = opt.k - static_cast<std::uint32_t>(ttl);
    }
  }
  r.execution_time =
      opt.target && r.sim.hit_terminal ? r.sim.execution_time : last;
  return r;
}

KHopTtlResult khop_sssp_ttl(const Graph& g, const KHopTtlOptions& opt) {
  SGA_REQUIRE(opt.source < g.num_vertices(), "khop_sssp_ttl: bad source");
  SGA_REQUIRE(!opt.target || *opt.target < g.num_vertices(),
              "khop_sssp_ttl: bad target");
  SGA_REQUIRE(opt.k >= 1, "khop_sssp_ttl: k must be >= 1");
  SGA_REQUIRE(g.num_edges() >= 1, "khop_sssp_ttl: graph has no edges");

  const KHopTtlCompiled compiled = compile_khop_ttl(g, opt.k, opt.max_kind);
  snn::Simulator sim(compiled.network, opt.queue);
  KHopTtlRunOptions ropt;
  ropt.source = opt.source;
  ropt.k = opt.k;
  ropt.target = opt.target;
  return run_khop_ttl(compiled, sim, ropt);
}

}  // namespace sga::nga
