// Gate-level compilation of the pseudopolynomial k-hop SSSP algorithm
// (Section 4.1).
//
// Messages are ⌈log k⌉-bit time-to-live (TTL) values. The source emits
// TTL = k-1; every arrival of TTL k' at a node certifies a source→node walk
// of (scaled) length equal to the arrival time using k - k' edges. Each node
// circuit computes the MAX of the TTLs arriving simultaneously (Section 5
// circuits), subtracts one (two's-complement add of all-ones), and
// rebroadcasts iff the max was ≥ 1.
//
// Timing: all graph edge lengths are scaled by S so that the node circuit's
// depth D fits inside the shortest edge (the paper's "scale all graph edges
// so that the minimum edge length is at least ⌈log k⌉"); the synapse for
// edge e then gets delay S·ℓ(e) − D, making the node-output→node-output
// latency along e exactly S·ℓ(e). Because the node circuits are levelled
// feed-forward τ=1 networks they are fully pipelined, so messages arriving
// at different times are processed independently — which is exactly the
// "node can propagate multiple times" behaviour the algorithm needs.
//
// Theorem 4.2: O((L+m) log k) time with O(1) data movement; O((nL+m) log k)
// with the crossbar embedding.
#pragma once

#include <optional>
#include <vector>

#include "circuits/max_circuits.h"
#include "core/types.h"
#include "graph/graph.h"
#include "snn/simulator.h"

namespace sga::nga {

struct KHopTtlOptions {
  VertexId source = 0;
  std::uint32_t k = 1;  ///< hop budget, ≥ 1
  /// If set, stop as soon as this vertex receives any message.
  std::optional<VertexId> target;
  /// Which Section-5 max circuit to instantiate at nodes (ablation knob).
  circuits::MaxKind max_kind = circuits::MaxKind::kWiredOr;
  /// Event-queue implementation for the simulator (DESIGN.md §4 knob).
  snn::QueueKind queue = snn::QueueKind::kCalendar;
};

/// Per-vertex wiring of a compiled k-hop fabric: the neuron ids a serve
/// path needs to launch from (out_bits / out_valid at the source), stop at
/// (enable is the arrival relay, Definition 3's terminal), and read out of
/// (max_outputs carry the arrival TTL, max_depth steps after enable).
struct KHopNodePorts {
  NeuronId enable = kNoNeuron;
  NeuronId out_valid = kNoNeuron;
  std::vector<NeuronId> out_bits;
  std::vector<NeuronId> max_outputs;
  int max_depth = 0;
};

/// The compile-once artifact of the k-hop TTL pipeline: the frozen fabric
/// plus everything run_khop_ttl needs to serve queries against it. The
/// fabric depends on the graph, the TTL width λ = bits_for(k−1), and the
/// max-circuit kind — NOT on the source or the exact k — so one artifact
/// serves every source and every hop budget with the same λ (the
/// compile-once, serve-many contract of docs/SERVICE.md).
struct KHopTtlCompiled {
  snn::CompiledNetwork network;
  std::vector<KHopNodePorts> ports;  ///< one per input-graph vertex
  int lambda = 0;                    ///< TTL message width ⌈log k⌉
  Weight scale = 1;                  ///< edge-length scaling factor S
  int node_depth = 0;                ///< D: node input → node output steps
  Weight max_edge_length = 1;        ///< U of the source graph (horizon)

  std::size_t num_vertices() const { return ports.size(); }
  /// Whether this artifact can serve hop budget k (same TTL width).
  bool serves(std::uint32_t k) const;
};

/// Per-query parameters of a serve-many run over a KHopTtlCompiled.
struct KHopTtlRunOptions {
  VertexId source = 0;
  std::uint32_t k = 1;  ///< hop budget; must satisfy compiled.serves(k)
  std::optional<VertexId> target;
};

struct KHopTtlResult {
  /// dist[v] = dist_k(v), in ORIGINAL (unscaled) edge lengths.
  std::vector<Weight> dist;
  /// hops[v]: edges on the fewest-hop path achieving dist_k(v), decoded
  /// from the TTL of the first arrival (arrival TTL τ ⇒ k − τ edges used;
  /// simultaneous arrivals are MAXed, so this is the minimum hop count
  /// among shortest ≤k-hop paths). 0 at the source and unreached vertices.
  std::vector<std::uint32_t> hops;
  Time execution_time = 0;   ///< SNN steps until termination
  Weight scale = 1;          ///< S: the log-k-ish edge-length scaling factor
  int node_depth = 0;        ///< D: steps from node input to node output
  int lambda = 0;            ///< TTL message width ⌈log k⌉
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  snn::SimStats sim;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

/// Compile the k-hop TTL fabric for `g` once (node circuits, graph wiring,
/// freeze). Requires at least one edge and k ≥ 1. The artifact is immutable
/// and can back any number of concurrent simulators.
KHopTtlCompiled compile_khop_ttl(const Graph& g, std::uint32_t k,
                                 circuits::MaxKind max_kind);

/// Serve one query from a compiled fabric on a caller-provided simulator.
/// `sim` must be constructed over `compiled.network` and be in its
/// just-constructed (or freshly reset()) state — the service worker pool
/// epoch-resets one simulator per artifact across requests.
KHopTtlResult run_khop_ttl(const KHopTtlCompiled& compiled,
                           snn::Simulator& sim, const KHopTtlRunOptions& opt);

/// Run the gate-level k-hop TTL algorithm. Requires at least one edge and a
/// valid source; self-loops are permitted (a TTL message over a self-loop
/// just decrements and returns). One-shot convenience over
/// compile_khop_ttl + run_khop_ttl.
KHopTtlResult khop_sssp_ttl(const Graph& g, const KHopTtlOptions& opt);

}  // namespace sga::nga
