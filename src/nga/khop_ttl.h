// Gate-level compilation of the pseudopolynomial k-hop SSSP algorithm
// (Section 4.1).
//
// Messages are ⌈log k⌉-bit time-to-live (TTL) values. The source emits
// TTL = k-1; every arrival of TTL k' at a node certifies a source→node walk
// of (scaled) length equal to the arrival time using k - k' edges. Each node
// circuit computes the MAX of the TTLs arriving simultaneously (Section 5
// circuits), subtracts one (two's-complement add of all-ones), and
// rebroadcasts iff the max was ≥ 1.
//
// Timing: all graph edge lengths are scaled by S so that the node circuit's
// depth D fits inside the shortest edge (the paper's "scale all graph edges
// so that the minimum edge length is at least ⌈log k⌉"); the synapse for
// edge e then gets delay S·ℓ(e) − D, making the node-output→node-output
// latency along e exactly S·ℓ(e). Because the node circuits are levelled
// feed-forward τ=1 networks they are fully pipelined, so messages arriving
// at different times are processed independently — which is exactly the
// "node can propagate multiple times" behaviour the algorithm needs.
//
// Theorem 4.2: O((L+m) log k) time with O(1) data movement; O((nL+m) log k)
// with the crossbar embedding.
#pragma once

#include <optional>
#include <vector>

#include "circuits/max_circuits.h"
#include "core/types.h"
#include "graph/graph.h"
#include "snn/simulator.h"

namespace sga::nga {

struct KHopTtlOptions {
  VertexId source = 0;
  std::uint32_t k = 1;  ///< hop budget, ≥ 1
  /// If set, stop as soon as this vertex receives any message.
  std::optional<VertexId> target;
  /// Which Section-5 max circuit to instantiate at nodes (ablation knob).
  circuits::MaxKind max_kind = circuits::MaxKind::kWiredOr;
  /// Event-queue implementation for the simulator (DESIGN.md §4 knob).
  snn::QueueKind queue = snn::QueueKind::kCalendar;
};

struct KHopTtlResult {
  /// dist[v] = dist_k(v), in ORIGINAL (unscaled) edge lengths.
  std::vector<Weight> dist;
  /// hops[v]: edges on the fewest-hop path achieving dist_k(v), decoded
  /// from the TTL of the first arrival (arrival TTL τ ⇒ k − τ edges used;
  /// simultaneous arrivals are MAXed, so this is the minimum hop count
  /// among shortest ≤k-hop paths). 0 at the source and unreached vertices.
  std::vector<std::uint32_t> hops;
  Time execution_time = 0;   ///< SNN steps until termination
  Weight scale = 1;          ///< S: the log-k-ish edge-length scaling factor
  int node_depth = 0;        ///< D: steps from node input to node output
  int lambda = 0;            ///< TTL message width ⌈log k⌉
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  snn::SimStats sim;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

/// Run the gate-level k-hop TTL algorithm. Requires at least one edge and a
/// valid source; self-loops are permitted (a TTL message over a self-loop
/// just decrements and returns).
KHopTtlResult khop_sssp_ttl(const Graph& g, const KHopTtlOptions& opt);

}  // namespace sga::nga
