// Gate-level shortest-path CONSTRUCTION for the Section-3 spiking SSSP —
// the "infer shortest paths rather than just the length" machinery: each
// node remembers a neighbour that sent its first spike, in-network.
//
// Mechanism (all plain LIF, composed with the Section-3 relay network):
//  * capture flags: one τ=1 threshold-2 neuron per graph edge (u,v) that
//    fires iff u's spike arrived at v exactly when v first fired (the
//    capture strobe is v's own relay, delayed one step; since relays are
//    fire-once, the strobe is unique and no write-lock is needed);
//  * ID latch banks: ⌈log n⌉ self-loop latch neurons per vertex; a firing
//    capture flag writes the (hard-wired) binary ID of its edge's source
//    into the bank, which then holds it indefinitely — the paper's
//    "sends a binary encoding of its ID ... and latches the ID" (Sec. 3).
//
// Ties: if several in-edges deliver simultaneously at v's first-fire time,
// all their flags fire ("ties are fine" — each is a valid predecessor); the
// decoded parent takes the lowest-index flagged edge. The latch bank then
// holds the OR of the tied IDs — the known ambiguity of the broadcast-ID
// scheme, which is why the flags are the authoritative readout.
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/graph.h"
#include "snn/simulator.h"

namespace sga::nga {

struct SpikingSsspPathResult {
  std::vector<Weight> dist;
  /// Parent decoded from the per-edge capture flags (kNoVertex at the
  /// source / unreached vertices). Always a valid shortest-path
  /// predecessor: dist[parent[v]] + ℓ(parent[v]→v) == dist[v].
  std::vector<VertexId> parent;
  /// The ⌈log n⌉-bit value held by each vertex's ID latch bank at the end
  /// of the run (meaningful when the winning predecessor was unique).
  std::vector<std::uint64_t> latched_id;
  /// Whether each vertex's latch bank was written at all.
  std::vector<char> latched_valid;
  Time execution_time = 0;
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  snn::SimStats sim;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

struct SpikingSsspPathOptions {
  VertexId source = 0;
  /// Horizon. The latch banks spike every step once written, so the network
  /// never quiesces on its own; kNever picks the safe default (n−1)·U + 3.
  Time max_time = kNever;
  /// Build the ID latch banks (n·⌈log n⌉ extra neurons). The capture flags
  /// are always built.
  bool build_id_latches = true;
};

SpikingSsspPathResult spiking_sssp_with_paths(const Graph& g,
                                              const SpikingSsspPathOptions& opt);

}  // namespace sga::nga
