// Neuromorphic-assisted maximum flow — the Section-8 future-work direction
// ("developing more sophisticated neuromorphic algorithms for other graph
// problems", with network flow named explicitly, cf. Ali & Kwisthout [5]).
//
// Scheme: Edmonds–Karp, with each shortest augmenting path found by the
// paper's own spiking machinery — the Section-3 network with UNIT delays
// (so first-spike order is BFS order) over the current residual graph, and
// predecessors captured either by the gate-level Section-3 flag/latch
// circuits (path_readout) or by the simulator's cause probe. Augmentation
// (bottleneck computation and flow update) is local bookkeeping, the "some
// local computation" of the tidal-flow sketch.
//
// This is a hybrid: the search — the part the paper argues neuromorphic
// hardware accelerates — is spiking; the O(path length) update is
// conventional. Costs are reported per phase (spikes, SNN steps) so the
// trade is visible.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga::nga {

struct MaxFlowOptions {
  VertexId source = 0;
  VertexId sink = 0;
  /// Find predecessors with the gate-level capture-flag circuits of
  /// nga::spiking_sssp_with_paths (true) or the simulator's cause probe
  /// (false). Identical results; the gate-level variant costs extra neurons.
  bool gate_level_paths = false;
};

struct MaxFlowResult {
  std::int64_t value = 0;        ///< maximum flow
  std::uint64_t phases = 0;      ///< augmenting paths found
  std::uint64_t total_spikes = 0;    ///< across all spiking searches
  Time total_snn_steps = 0;          ///< Σ execution times of the searches
  std::vector<std::int64_t> flow;    ///< per input edge (same indexing as g)
};

/// Max flow from source to sink, capacities = edge lengths of g (≥ 1).
/// Throws InvalidArgument if source == sink.
MaxFlowResult spiking_max_flow(const Graph& g, const MaxFlowOptions& opt);

/// Conventional Edmonds–Karp reference (plain BFS), used to validate the
/// spiking variant.
std::int64_t reference_max_flow(const Graph& g, VertexId source, VertexId sink);

}  // namespace sga::nga
