#include "nga/path_readout.h"

#include <algorithm>

#include "core/bitops.h"
#include "core/error.h"
#include "nga/sssp_event.h"
#include "snn/network.h"

namespace sga::nga {

SpikingSsspPathResult spiking_sssp_with_paths(
    const Graph& g, const SpikingSsspPathOptions& opt) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(opt.source < n, "spiking_sssp_with_paths: bad source");

  // Base Section-3 relay network (neuron id == vertex id).
  snn::Network net = build_sssp_network(g);

  // Capture flags, one per edge: fires iff the edge's spike arrives exactly
  // one step after the target's (unique) first fire.
  std::vector<NeuronId> flag_of_edge(g.num_edges());
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    const NeuronId flag = net.add_neuron(snn::NeuronParams{0, 2, 1.0});
    net.add_synapse(e.from, flag, 1, e.length + 1);  // the data spike, echoed
    net.add_synapse(e.to, flag, 1, 1);               // the capture strobe
    flag_of_edge[eid] = flag;
  }

  // ID latch banks: flags write their source's hard-wired binary ID.
  const int id_bits = bits_for(n > 1 ? n - 1 : 1);
  std::vector<std::vector<NeuronId>> bank(n);
  if (opt.build_id_latches) {
    for (VertexId v = 0; v < n; ++v) {
      for (int b = 0; b < id_bits; ++b) {
        const NeuronId latch = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
        net.add_synapse(latch, latch, 1, 1);  // Figure 1(B) self-loop
        bank[v].push_back(latch);
      }
    }
    for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
      const Edge& e = g.edge(eid);
      for (int b = 0; b < id_bits; ++b) {
        if (bit_of(e.from, b)) {
          net.add_synapse(flag_of_edge[eid], bank[e.to][static_cast<std::size_t>(b)],
                          1, 1);
        }
      }
    }
  }

  // Wide freeze: this instrumented fabric is rebuilt per phase by the
  // max-flow driver (gate_level_paths mode), so skip the narrowing scan for
  // the same reason spiking_sssp's max-flow call path does — see DESIGN.md.
  const snn::CompiledNetwork compiled = net.compile(snn::StoragePolicy::kWide);
  snn::Simulator sim(compiled);
  sim.inject_spike(opt.source, 0);
  snn::SimConfig cfg;
  cfg.max_time = opt.max_time != kNever
                     ? opt.max_time
                     : static_cast<Time>(n > 0 ? n - 1 : 0) *
                               std::max<Weight>(1, g.max_edge_length()) +
                           3;

  SpikingSsspPathResult r;
  r.sim = sim.run(cfg);
  r.neurons = net.num_neurons();
  r.synapses = net.num_synapses();

  r.dist.assign(n, kInfiniteDistance);
  r.parent.assign(n, kNoVertex);
  r.latched_id.assign(n, 0);
  r.latched_valid.assign(n, 0);
  Time last = 0;
  for (VertexId v = 0; v < n; ++v) {
    const Time t = sim.first_spike(v);
    if (t == kNever) continue;
    r.dist[v] = static_cast<Weight>(t);
    last = std::max(last, t);
  }
  r.execution_time = last;

  // Decode parents from the flags (lowest flagged in-edge wins ties).
  for (VertexId v = 0; v < n; ++v) {
    if (v == opt.source || !r.reachable(v)) continue;
    for (const EdgeId eid : g.in_edges(v)) {
      if (sim.first_spike(flag_of_edge[eid]) != kNever) {
        r.parent[v] = g.edge(eid).from;
        break;
      }
    }
    SGA_CHECK(r.parent[v] != kNoVertex,
              "reachable vertex " << v << " captured no predecessor flag");
  }

  // Decode the latch banks.
  if (opt.build_id_latches) {
    for (VertexId v = 0; v < n; ++v) {
      std::uint64_t id = 0;
      bool any = false;
      for (int b = 0; b < id_bits; ++b) {
        if (sim.first_spike(bank[v][static_cast<std::size_t>(b)]) != kNever) {
          id |= 1ULL << b;
          any = true;
        }
      }
      r.latched_id[v] = id;
      // A bank is "written" iff the vertex captured some flag; an all-zero
      // ID (source as predecessor) writes no latch bits, so derive validity
      // from the decoded parent instead.
      r.latched_valid[v] = any || r.parent[v] != kNoVertex;
    }
  }
  return r;
}

}  // namespace sga::nga
