// Predicted running-time formulas from the paper's theorems, used by the
// benches to print "measured vs predicted" columns. Each returns the
// *asymptotic expression's value* (no hidden constant); the benches fit the
// constant and check the shape.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace sga::nga {

/// Parameters every bound is expressed in (Table 1's caption).
struct ProblemParams {
  std::uint64_t n = 0;  ///< vertices
  std::uint64_t m = 0;  ///< edges
  std::uint64_t k = 0;  ///< hop bound (n-1 for plain SSSP)
  std::uint64_t U = 1;  ///< max edge length
  std::uint64_t L = 0;  ///< shortest-path length of interest
  std::uint64_t alpha = 0;  ///< edges on the shortest path
  std::uint64_t c = 1;  ///< registers in the DISTANCE model
};

/// log2(x) clamped below at 1 (so O(log ·) factors never vanish).
double log2_clamped(double x);

// --- Neuromorphic running times (Theorems 4.1–4.4, 7.2) -----------------

/// Thm 4.1, O(1) data movement: O(L + m).
double nm_sssp_pseudo(const ProblemParams& p);
/// Thm 4.1, crossbar: O(nL + m).
double nm_sssp_pseudo_embedded(const ProblemParams& p);

/// Thm 4.2, O(1) data movement: O((L + m) log k).
double nm_khop_pseudo(const ProblemParams& p);
/// Thm 4.2, crossbar: O((nL + m) log k).
double nm_khop_pseudo_embedded(const ProblemParams& p);

/// Thm 4.3, O(1) data movement: O(m log(nU)) (loading dominates; the
/// spiking portion alone is O(k log(nU))).
double nm_khop_poly(const ProblemParams& p);
double nm_khop_poly_spiking_only(const ProblemParams& p);
/// Thm 4.3, crossbar: O((nk + m) log(nU)).
double nm_khop_poly_embedded(const ProblemParams& p);

/// Thm 4.4 (k = α): O(m log(nU)) / O((nα + m) log(nU)).
double nm_sssp_poly(const ProblemParams& p);
double nm_sssp_poly_embedded(const ProblemParams& p);

/// Thm 7.2: O((k log n + m) log(kU log n)) / crossbar variant.
double nm_approx_khop(const ProblemParams& p);
double nm_approx_khop_embedded(const ProblemParams& p);

// --- Conventional running times (Table 1) -------------------------------

/// Dijkstra: O(m + n log n).
double conv_sssp(const ProblemParams& p);
/// Bellman–Ford k-hop: O(km).
double conv_khop(const ProblemParams& p);

// --- DISTANCE-model lower bounds (Section 6) ----------------------------

/// Thm 6.1: Ω(m^{3/2}/√c) to read the input.
double lb_input_read(const ProblemParams& p);
/// Thm 6.2: Ω(k·m^{3/2}/√c) for the k-round relaxation algorithm.
double lb_khop_bellman_ford(const ProblemParams& p);

}  // namespace sga::nga
