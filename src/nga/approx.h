// The (1 + o(1))-approximate k-hop SSSP algorithm of Section 7, a spiking
// adaptation of Nanongkai's CONGEST algorithm.
//
// With ε = 1/log n, for each scale i ∈ {0, …, ⌈log(2kU/ε)⌉} the edge
// lengths are rounded up to ℓ_i(uv) = ⌈2k·ℓ(uv)/(ε·2^i)⌉ and the
// pseudopolynomial spiking SSSP of Section 3 is run on the rounded graph,
// terminated early at time ⌈(1+2/ε)·k⌉. The estimate is
//   d̃_k(v) = min_i { (ε·2^i/2k)·dist^{ℓ_i}(v) : dist^{ℓ_i}(v) ≤ (1+2/ε)k }.
// Theorem 7.1 gives dist_k(v) ≤ d̃_k(v) ≤ (1+ε)·dist_k(v).
//
// The payoff (Theorem 7.2) is the neuron count: n neurons per scale,
// O(n·log(kU·log n)) total, versus O(m·log(nU)) for the exact polynomial
// algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga::nga {

struct ApproxKHopOptions {
  VertexId source = 0;
  std::uint32_t k = 1;
  /// ε override for experiments; 0 means the paper's ε = 1/log₂ n.
  double epsilon = 0.0;
  /// Build all O(log(kU log n)) scale copies into ONE network (disjoint
  /// neuron populations, n neurons each — the Theorem 7.2 layout) and run
  /// them simultaneously in a single simulation, instead of one run per
  /// scale. Same results; total_time then equals max_scale_time.
  bool compose_scales = false;
};

struct ApproxKHopResult {
  /// d̃_k[v]: the approximation (+∞ where no scale produced a finite value,
  /// i.e. no ≤k-hop-ish path exists).
  std::vector<double> dist;
  double epsilon = 0.0;
  std::uint32_t num_scales = 0;
  /// Total SNN time steps across all scale runs (the scales can also run
  /// concurrently on disjoint neuron populations; we report the sum as the
  /// sequential cost and the max as the parallel cost).
  Time total_time = 0;
  Time max_scale_time = 0;
  std::size_t neurons_total = 0;   ///< n per scale, summed
  std::size_t neurons_exact = 0;   ///< what the exact poly algorithm needs
  std::uint64_t total_spikes = 0;

  bool reachable(VertexId v) const;
};

ApproxKHopResult approx_khop_sssp(const Graph& g, const ApproxKHopOptions& opt);

}  // namespace sga::nga
