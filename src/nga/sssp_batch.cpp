#include "nga/sssp_batch.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "core/error.h"
#include "nga/sssp_event.h"
#include "snn/parallel_sim.h"

namespace sga::nga {

SsspBatchResult spiking_sssp_batch(const Graph& g,
                                   const std::vector<VertexId>& sources,
                                   const SsspBatchOptions& opt) {
  for (const VertexId s : sources) {
    SGA_REQUIRE(s < g.num_vertices(), "spiking_sssp_batch: bad source " << s);
  }

  // Build and freeze ONCE; the immutable compiled form is then shared
  // read-only by every worker's simulator.
  const snn::CompiledNetwork net = build_sssp_network(g).compile();
  SsspBatchResult out;
  out.runs.resize(sources.size());
  out.neurons = net.num_neurons();
  out.synapses = net.num_synapses();
  if (sources.empty()) {
    out.threads_used = 0;
    return out;
  }

  // Shard-parallelism mode: one sharded engine, sources in sequence. The
  // differential harness (test_parallel_agreement / BatchShardedMode)
  // pins this path to the serial path result-for-result.
  if (opt.shards > 0) {
    snn::ParallelConfig pcfg;
    pcfg.num_shards = opt.shards;
    pcfg.num_threads = opt.num_threads;
    snn::ParallelSimulator sim(net, pcfg);
    out.threads_used = sim.num_threads();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (i > 0) sim.reset();
      const VertexId s = sources[i];
      sim.inject_spike(s, 0);
      snn::SimConfig cfg;
      cfg.max_time = opt.max_time;
      cfg.record_causes = opt.record_parents;
      SsspSourceRun& r = out.runs[i];
      r.source = s;
      const obs::ScopedThreadMetrics install_metrics(opt.metrics);
      r.sim = sim.run(cfg);
      r.execution_time = read_sssp_solution(sim, g, s, opt.record_parents,
                                            r.dist, r.parent);
      if (opt.metrics != nullptr) {
        opt.metrics->add("batch.sources_done");
        if (r.sim.hit_time_limit) opt.metrics->add("batch.horizon_hits");
      }
    }
    if (opt.metrics != nullptr) {
      opt.metrics->add("batch.sources", sources.size());
      opt.metrics->gauge("batch.workers",
                         static_cast<double>(out.threads_used));
    }
    return out;
  }

  // Pool size: requested (or hardware) thread count, never more than there
  // are sources — the index race below hands each worker at most one claim
  // past the end, so surplus workers would only burn a simulator build.
  // The clamp works in std::size_t and only then narrows: sources.size()
  // can exceed unsigned on LP64, the requested count cannot.
  std::size_t workers =
      opt.num_threads != 0
          ? static_cast<std::size_t>(opt.num_threads)
          : static_cast<std::size_t>(
                std::max(1u, std::thread::hardware_concurrency()));
  workers = std::min(workers, sources.size());
  SGA_CHECK(workers >= 1 && workers <= sources.size(),
            "spiking_sssp_batch: worker clamp failed");
  out.threads_used = static_cast<unsigned>(std::min<std::size_t>(
      workers, std::numeric_limits<unsigned>::max()));

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // One registry per worker slot, merged (single-threaded) after join.
  std::vector<obs::MetricsRegistry> worker_metrics(
      opt.metrics != nullptr ? workers : 0);

  const auto work = [&](std::size_t worker_index) {
    const obs::ScopedThreadMetrics install_metrics(
        opt.metrics != nullptr ? &worker_metrics[worker_index] : nullptr);
    // One simulator per worker, reset()-reused across sources: the O(n)
    // state vectors are paid once per worker, every subsequent source
    // costs O(its events). Construction is deferred to the first claimed
    // index so a worker that loses every claim (all sources taken before
    // it starts) allocates nothing.
    std::optional<snn::Simulator> sim;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sources.size()) break;
      try {
        if (!sim) {
          sim.emplace(net, opt.queue);
        } else {
          sim->reset();
        }
        const VertexId s = sources[i];
        sim->inject_spike(s, 0);
        snn::SimConfig cfg;
        cfg.max_time = opt.max_time;
        cfg.record_causes = opt.record_parents;
        SsspSourceRun& r = out.runs[i];
        r.source = s;
        r.sim = sim->run(cfg);
        r.execution_time = read_sssp_solution(*sim, g, s, opt.record_parents,
                                              r.dist, r.parent);
        if (obs::MetricsRegistry* m = obs::thread_metrics()) {
          m->add("batch.sources_done");
          if (r.sim.hit_time_limit) m->add("batch.horizon_hits");
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;  // a failed worker stops pulling work; others finish
      }
    }
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      pool.emplace_back(work, i);
    }
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  if (opt.metrics != nullptr) {
    for (const obs::MetricsRegistry& m : worker_metrics) {
      opt.metrics->merge(m);
    }
    opt.metrics->add("batch.sources", sources.size());
    opt.metrics->gauge("batch.workers", static_cast<double>(workers));
  }
  return out;
}

}  // namespace sga::nga
