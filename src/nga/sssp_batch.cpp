#include "nga/sssp_batch.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "core/error.h"
#include "nga/sssp_event.h"

namespace sga::nga {

SsspBatchResult spiking_sssp_batch(const Graph& g,
                                   const std::vector<VertexId>& sources,
                                   const SsspBatchOptions& opt) {
  for (const VertexId s : sources) {
    SGA_REQUIRE(s < g.num_vertices(), "spiking_sssp_batch: bad source " << s);
  }

  // Build and freeze ONCE; the immutable compiled form is then shared
  // read-only by every worker's simulator.
  const snn::CompiledNetwork net = build_sssp_network(g).compile();
  SsspBatchResult out;
  out.runs.resize(sources.size());
  out.neurons = net.num_neurons();
  out.synapses = net.num_synapses();
  if (sources.empty()) {
    out.threads_used = 0;
    return out;
  }

  unsigned workers = opt.num_threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(std::min<std::size_t>(
                   sources.size(), std::numeric_limits<unsigned>::max())));
  out.threads_used = workers;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto work = [&]() {
    // One simulator per worker, reset()-reused across sources: the network
    // build and the O(n) state vectors are paid once per worker, every
    // subsequent source costs O(its events).
    snn::Simulator sim(net, opt.queue);
    bool fresh = true;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sources.size()) break;
      try {
        if (!fresh) sim.reset();
        fresh = false;
        const VertexId s = sources[i];
        sim.inject_spike(s, 0);
        snn::SimConfig cfg;
        cfg.max_time = opt.max_time;
        cfg.record_causes = opt.record_parents;
        SsspSourceRun& r = out.runs[i];
        r.source = s;
        r.sim = sim.run(cfg);
        r.execution_time = read_sssp_solution(sim, g, s, opt.record_parents,
                                              r.dist, r.parent);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;  // a failed worker stops pulling work; others finish
      }
    }
  };

  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(work);
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace sga::nga
