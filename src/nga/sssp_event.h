// The pseudopolynomial spiking SSSP algorithm of Section 3 (Aibara et al.
// 1991 / Aimone et al. 2019): one relay neuron per graph vertex, synapse
// delay = edge length; the first spike to reach a vertex arrives exactly at
// its shortest-path distance, so spike timing plays the role of Dijkstra's
// priority queue. Each neuron propagates only its first incoming spike
// (a pure-LIF construction: after firing, a strong self-inhibitory synapse
// keeps the relay below threshold forever).
//
// Theorem 4.1: runs in O(L + m) time with O(1)-time data movement (L = the
// distance of interest, m = graph loading), and O(nL + m) on the crossbar.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::snn {
class ParallelSimulator;
}  // namespace sga::snn

namespace sga::nga {

struct SpikingSsspOptions {
  VertexId source = 0;
  /// If set, terminate when this vertex's neuron first spikes (Definition
  /// 3's terminal neuron); otherwise run until every reachable vertex has
  /// spiked (all-destinations mode).
  std::optional<VertexId> target;
  /// Multi-destination mode (Table 1's caption: "our algorithms can easily
  /// be generalized to multiple destinations"): terminate once EVERY listed
  /// vertex has spiked. Mutually exclusive with `target`.
  std::vector<VertexId> targets;
  /// Record shortest-path predecessors (Section 3's "remember a neighbor
  /// that sends the first spike"; we extract it from the simulator's
  /// first-spike-cause probe).
  bool record_parents = true;
  /// Safety horizon; kNever = none (the network quiesces on its own).
  Time max_time = kNever;
  /// Event-queue implementation (DESIGN.md §4 ablation knob).
  snn::QueueKind queue = snn::QueueKind::kCalendar;
  /// Fan-out kernel (DESIGN.md §4 ablation knob): delay-segmented bulk
  /// appends vs the legacy per-synapse loop.
  snn::FanoutKind fanout = snn::FanoutKind::kSegmented;
  /// Freeze-time storage policy (ARCHITECTURE.md §1.8): kAuto narrows the
  /// CSR to the observed ranges; kWide keeps the full-width oracle layout.
  /// Drivers that re-freeze per phase on small graphs (max-flow) pin kWide
  /// — see DESIGN.md.
  snn::StoragePolicy storage = snn::StoragePolicy::kAuto;
};

struct SpikingSsspResult {
  std::vector<Weight> dist;      ///< kInfiniteDistance where unreached
  std::vector<VertexId> parent;  ///< kNoVertex at source / unreached
  /// Execution time T (Definition 3): the first spike time of the terminal
  /// (target mode) or the last first-spike time (all-destinations mode).
  Time execution_time = 0;
  snn::SimStats sim;
  std::size_t neurons = 0;
  std::size_t synapses = 0;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

/// Build the Section-3 network for g (one relay per vertex, fire-once
/// inhibition, delay = edge length). Exposed for tests, the crossbar
/// embedding, and the approximation algorithm (which re-runs it with scaled
/// lengths and an early deadline). Neuron ids equal vertex ids.
snn::Network build_sssp_network(const Graph& g);

/// Streamed counterpart of build_sssp_network(g).compile(): freeze the
/// Section-3 SSSP fabric for an n-vertex graph delivered as an edge stream
/// (graph/generators.h stream_* emitters, or any deterministic callback),
/// without materializing either the Graph or the nested-vector Network.
/// `edges` is invoked three times — an in-degree prepass that sizes the
/// fire-once inhibition, then compile_streamed's two counting-sort passes —
/// and must replay the identical edge sequence each time. Synapse layout
/// matches the builder path exactly (edge synapses in stream order, then
/// one self-inhibition per vertex), so the frozen network is
/// event-for-event identical to build_sssp_network on the same edges.
snn::CompiledNetwork compile_sssp_streamed(
    std::size_t num_vertices,
    const std::function<void(const EdgeStream&)>& edges,
    snn::StoragePolicy policy = snn::StoragePolicy::kAuto,
    snn::StreamBuildStats* build_stats = nullptr);

/// Run the spiking SSSP algorithm.
SpikingSsspResult spiking_sssp(const Graph& g, const SpikingSsspOptions& opt);

/// Read distances (first-spike time IS the distance) and optionally
/// shortest-path parents out of a simulator that ran a build_sssp_network
/// instance. Shared by spiking_sssp and the batched multi-source driver
/// (sssp_batch.h). Returns the latest first-spike time among reached
/// vertices (the all-destinations execution time).
Time read_sssp_solution(const snn::Simulator& sim, const Graph& g,
                        VertexId source, bool record_parents,
                        std::vector<Weight>& dist,
                        std::vector<VertexId>& parent);

/// Same read-out against the sharded conservative-parallel engine
/// (snn/parallel_sim.h) — the batch driver's shard-parallelism mode.
Time read_sssp_solution(const snn::ParallelSimulator& sim, const Graph& g,
                        VertexId source, bool record_parents,
                        std::vector<Weight>& dist,
                        std::vector<VertexId>& parent);

}  // namespace sga::nga
