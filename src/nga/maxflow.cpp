#include "nga/maxflow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "core/error.h"
#include "nga/path_readout.h"
#include "nga/sssp_event.h"

namespace sga::nga {

namespace {

/// Residual-graph representation: paired forward/backward arcs.
struct Arc {
  VertexId to;
  std::int64_t residual;
  std::size_t rev;            // index of the reverse arc in arcs[to]
  EdgeId original = kNoEdge;  // input edge this forward arc represents
};

struct ResidualGraph {
  std::vector<std::vector<Arc>> arcs;

  explicit ResidualGraph(std::size_t n) : arcs(n) {}

  void add(VertexId u, VertexId v, std::int64_t cap, EdgeId original) {
    arcs[u].push_back(Arc{v, cap, arcs[v].size(), original});
    arcs[v].push_back(Arc{u, 0, arcs[u].size() - 1, kNoEdge});
  }

  /// Unit-length graph of arcs with positive residual, plus a map from its
  /// edges back to (vertex, arc index).
  Graph positive_graph(std::vector<std::pair<VertexId, std::size_t>>* index) const {
    Graph g(arcs.size());
    index->clear();
    for (VertexId u = 0; u < arcs.size(); ++u) {
      for (std::size_t i = 0; i < arcs[u].size(); ++i) {
        if (arcs[u][i].residual > 0) {
          g.add_edge(u, arcs[u][i].to, 1);
          index->emplace_back(u, i);
        }
      }
    }
    return g;
  }
};

}  // namespace

MaxFlowResult spiking_max_flow(const Graph& g, const MaxFlowOptions& opt) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(opt.source < n && opt.sink < n, "spiking_max_flow: bad endpoints");
  SGA_REQUIRE(opt.source != opt.sink, "spiking_max_flow: source == sink");

  ResidualGraph res(n);
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    res.add(e.from, e.to, e.length, eid);
  }

  MaxFlowResult out;
  out.flow.assign(g.num_edges(), 0);

  while (true) {
    // Spiking BFS over the residual graph (unit delays ⇒ first-spike time =
    // hop distance; Edmonds–Karp needs exactly the fewest-hop path).
    std::vector<std::pair<VertexId, std::size_t>> arc_of_edge;
    const Graph residual = res.positive_graph(&arc_of_edge);
    if (residual.num_edges() == 0) break;

    std::vector<VertexId> parent(n, kNoVertex);
    bool reached = false;
    if (opt.gate_level_paths) {
      SpikingSsspPathOptions popt;
      popt.source = opt.source;
      popt.max_time = static_cast<Time>(n) + 2;
      popt.build_id_latches = false;
      const auto run = spiking_sssp_with_paths(residual, popt);
      out.total_spikes += run.sim.spikes;
      out.total_snn_steps += run.execution_time;
      reached = run.reachable(opt.sink);
      parent = run.parent;
    } else {
      SpikingSsspOptions sopt;
      sopt.source = opt.source;
      sopt.target = opt.sink;
      sopt.record_parents = true;
      // Each augmenting phase re-freezes the (small) residual graph; pin
      // the wide oracle layout so no phase pays the narrowing scan — see
      // DESIGN.md (width narrowing earns its keep on freeze-once workloads,
      // not freeze-per-phase ones).
      sopt.storage = snn::StoragePolicy::kWide;
      const auto run = spiking_sssp(residual, sopt);
      out.total_spikes += run.sim.spikes;
      out.total_snn_steps += run.execution_time;
      reached = run.reachable(opt.sink);
      parent = run.parent;
    }
    if (!reached) break;

    // Extract the vertex path, then pick a positive-residual arc per hop.
    std::vector<VertexId> path{opt.sink};
    while (path.back() != opt.source) {
      const VertexId p = parent[path.back()];
      SGA_CHECK(p != kNoVertex, "broken parent chain in residual BFS");
      path.push_back(p);
      SGA_CHECK(path.size() <= n + 1, "parent cycle in residual BFS");
    }
    std::reverse(path.begin(), path.end());

    std::vector<std::pair<VertexId, std::size_t>> hops;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const VertexId u = path[i];
      std::size_t pick = res.arcs[u].size();
      for (std::size_t a = 0; a < res.arcs[u].size(); ++a) {
        if (res.arcs[u][a].to == path[i + 1] && res.arcs[u][a].residual > 0) {
          if (pick == res.arcs[u].size() ||
              res.arcs[u][a].residual > res.arcs[u][pick].residual) {
            pick = a;
          }
        }
      }
      SGA_CHECK(pick < res.arcs[u].size(), "no residual arc along BFS path");
      hops.emplace_back(u, pick);
      bottleneck = std::min(bottleneck, res.arcs[u][pick].residual);
    }
    SGA_CHECK(bottleneck > 0, "zero bottleneck");

    for (const auto& [u, a] : hops) {
      Arc& fwd = res.arcs[u][a];
      fwd.residual -= bottleneck;
      res.arcs[fwd.to][fwd.rev].residual += bottleneck;
      if (fwd.original != kNoEdge) {
        out.flow[fwd.original] += bottleneck;
      } else {
        // Pushing back over a reverse arc cancels flow on its original.
        const Arc& orig = res.arcs[fwd.to][fwd.rev];
        SGA_CHECK(orig.original != kNoEdge, "reverse of reverse arc");
        out.flow[orig.original] -= bottleneck;
      }
    }
    out.value += bottleneck;
    ++out.phases;
  }
  return out;
}

std::int64_t reference_max_flow(const Graph& g, VertexId source, VertexId sink) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(source < n && sink < n && source != sink,
              "reference_max_flow: bad endpoints");
  ResidualGraph res(n);
  for (EdgeId eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edge(eid);
    res.add(e.from, e.to, e.length, eid);
  }

  std::int64_t total = 0;
  while (true) {
    // Plain BFS on positive-residual arcs.
    std::vector<std::pair<VertexId, std::size_t>> how(n, {kNoVertex, 0});
    std::vector<char> seen(n, 0);
    std::deque<VertexId> q{source};
    seen[source] = 1;
    while (!q.empty() && !seen[sink]) {
      const VertexId u = q.front();
      q.pop_front();
      for (std::size_t a = 0; a < res.arcs[u].size(); ++a) {
        const Arc& arc = res.arcs[u][a];
        if (arc.residual > 0 && !seen[arc.to]) {
          seen[arc.to] = 1;
          how[arc.to] = {u, a};
          q.push_back(arc.to);
        }
      }
    }
    if (!seen[sink]) break;

    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (VertexId v = sink; v != source; v = how[v].first) {
      bottleneck = std::min(bottleneck,
                            res.arcs[how[v].first][how[v].second].residual);
    }
    for (VertexId v = sink; v != source; v = how[v].first) {
      Arc& fwd = res.arcs[how[v].first][how[v].second];
      fwd.residual -= bottleneck;
      res.arcs[fwd.to][fwd.rev].residual += bottleneck;
    }
    total += bottleneck;
  }
  return total;
}

}  // namespace sga::nga
