#include "nga/approx.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/bitops.h"
#include "core/error.h"
#include "nga/sssp_event.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::nga {

bool ApproxKHopResult::reachable(VertexId v) const {
  return dist[v] < std::numeric_limits<double>::infinity();
}

namespace {

/// ℓ_i(uv) = ⌈2k·ℓ(uv)/(ε·2^i)⌉, clamped to ≥ 1.
Graph round_lengths(const Graph& g, double k, double eps, double di) {
  Graph rounded(g.num_vertices());
  for (const auto& e : g.edges()) {
    const double scaled = 2.0 * k * static_cast<double>(e.length) / (eps * di);
    rounded.add_edge(e.from, e.to,
                     static_cast<Weight>(std::max(1.0, std::ceil(scaled))));
  }
  return rounded;
}

}  // namespace

ApproxKHopResult approx_khop_sssp(const Graph& g,
                                  const ApproxKHopOptions& opt) {
  SGA_REQUIRE(opt.source < g.num_vertices(), "approx_khop: bad source");
  SGA_REQUIRE(opt.k >= 1, "approx_khop: k must be >= 1");
  SGA_REQUIRE(g.num_vertices() >= 2, "approx_khop: need at least 2 vertices");

  ApproxKHopResult r;
  const double n = static_cast<double>(g.num_vertices());
  r.epsilon = opt.epsilon > 0 ? opt.epsilon : 1.0 / std::log2(n);
  const double eps = r.epsilon;
  const auto k = static_cast<double>(opt.k);
  const Weight u_max = std::max<Weight>(1, g.max_edge_length());

  // Scales i = 0 .. ⌈log₂(2kU/ε)⌉: beyond that every rounded length is 1.
  const auto max_i = static_cast<std::uint32_t>(std::max(
      0.0, std::ceil(std::log2(2.0 * k * static_cast<double>(u_max) / eps))));
  r.num_scales = max_i + 1;

  // Early-termination deadline: dist^{ℓ_i} values above (1+2/ε)k are
  // discarded, so the spiking run may stop at that time.
  const auto deadline = static_cast<Time>(std::ceil((1.0 + 2.0 / eps) * k));

  r.dist.assign(g.num_vertices(), std::numeric_limits<double>::infinity());

  auto fold_in = [&](std::uint32_t i, const std::vector<Weight>& dist_i) {
    const double di = std::pow(2.0, static_cast<double>(i));
    const double unscale = eps * di / (2.0 * k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (dist_i[v] >= kInfiniteDistance) continue;
      if (static_cast<double>(dist_i[v]) > (1.0 + 2.0 / eps) * k) continue;
      r.dist[v] =
          std::min(r.dist[v], unscale * static_cast<double>(dist_i[v]));
    }
  };

  if (!opt.compose_scales) {
    for (std::uint32_t i = 0; i <= max_i; ++i) {
      const double di = std::pow(2.0, static_cast<double>(i));
      SpikingSsspOptions sopt;
      sopt.source = opt.source;
      sopt.record_parents = false;
      sopt.max_time = deadline;  // "terminate the algorithm early"
      const SpikingSsspResult run =
          spiking_sssp(round_lengths(g, k, eps, di), sopt);
      r.total_time += run.sim.end_time;
      r.max_scale_time = std::max(r.max_scale_time, run.sim.end_time);
      r.neurons_total += run.neurons;
      r.total_spikes += run.sim.spikes;
      fold_in(i, run.dist);
    }
  } else {
    // One network holding all scale copies on disjoint neuron populations
    // (neuron id of graph vertex v in scale i = i·n + v): the layout of
    // Theorem 7.2, executed as a single simulation.
    snn::Network net;
    const auto nv = static_cast<NeuronId>(g.num_vertices());
    for (std::uint32_t i = 0; i <= max_i; ++i) {
      const double di = std::pow(2.0, static_cast<double>(i));
      const Graph rounded = round_lengths(g, k, eps, di);
      const NeuronId base = i * nv;
      for (VertexId v = 0; v < nv; ++v) {
        net.add_neuron(snn::NeuronParams{0, 1, 0.0});
        (void)v;
      }
      for (const auto& e : rounded.edges()) {
        net.add_synapse(base + e.from, base + e.to, 1, e.length);
      }
      for (VertexId v = 0; v < nv; ++v) {
        const auto guard = static_cast<SynWeight>(rounded.in_degree(v) + 1);
        net.add_synapse(base + v, base + v, -guard, 1);
      }
    }
    const snn::CompiledNetwork compiled = net.compile();
    snn::Simulator sim(compiled);
    for (std::uint32_t i = 0; i <= max_i; ++i) {
      sim.inject_spike(i * nv + opt.source, 0);
    }
    snn::SimConfig cfg;
    cfg.max_time = deadline;
    const auto st = sim.run(cfg);
    r.total_spikes = st.spikes;
    r.neurons_total = net.num_neurons();
    r.max_scale_time = st.end_time;
    r.total_time = st.end_time;  // the point of composing: one clock
    for (std::uint32_t i = 0; i <= max_i; ++i) {
      std::vector<Weight> dist_i(g.num_vertices(), kInfiniteDistance);
      for (VertexId v = 0; v < nv; ++v) {
        const Time t = sim.first_spike(i * nv + v);
        if (t != kNever) dist_i[v] = static_cast<Weight>(t);
      }
      fold_in(i, dist_i);
    }
  }

  // For the Theorem 7.2 comparison: the exact polynomial algorithm's neuron
  // count is O(m log(nU)).
  r.neurons_exact = g.num_edges() *
                    static_cast<std::size_t>(bits_for(
                        static_cast<std::uint64_t>(g.num_vertices()) *
                        static_cast<std::uint64_t>(u_max)));
  return r;
}

}  // namespace sga::nga
