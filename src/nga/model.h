// The Neuromorphic Graph Algorithm (NGA) model — Definition 4.
//
// An NGA executes on a directed graph in rounds: at the beginning of round r
// every node broadcasts a λ-bit message across its out-edges; each edge
// transforms the message in flight; each node combines the incoming
// messages into its next message. The framework here is the *reference
// semantics* for the paper's algorithms: the gate-level SNN compilations in
// khop_ttl / khop_poly are tested against it, and its cost model
// (R·(T_edge + T_node), Definition 4) is instantiated with the measured
// depths of the actual circuits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga::nga {

/// A λ-bit message. `valid == false` models "the all-zeros message /
/// none of the output neurons firing" (Definition 4): nodes that received
/// nothing broadcast nothing.
struct Message {
  std::uint64_t value = 0;
  bool valid = false;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Transforms the message traversing edge e (m_{ij,r-1} from m_{i,r-1}).
using EdgeFn = std::function<Message(const Edge& e, const Message& in)>;

/// Combines the incoming edge messages at node j into m_{j,r}. The span
/// covers one entry per in-edge of j (invalid entries for silent edges).
using NodeFn =
    std::function<Message(VertexId j, const std::vector<Message>& incoming)>;

/// Cost model of Definition 4: an R-round NGA with per-edge SNNs of depth
/// T_edge and per-node SNNs of depth T_node takes R·(T_edge + T_node) time.
struct NgaCost {
  std::uint64_t rounds = 0;
  Time t_edge = 0;  ///< time steps per edge computation
  Time t_node = 0;  ///< time steps per node computation
  std::size_t neurons = 0;

  Time total_time() const {
    return static_cast<Time>(rounds) * (t_edge + t_node);
  }
};

/// Result of executing an NGA at the reference (message) level.
struct NgaTrace {
  /// per_round[r][v] = m_{v,r}; per_round[0] is the input assignment.
  std::vector<std::vector<Message>> per_round;
  std::uint64_t messages_sent = 0;  ///< valid messages broadcast in total
};

/// Execute R rounds of an NGA over g. `initial[v]` supplies m_{v,0}.
NgaTrace run_nga(const Graph& g, const std::vector<Message>& initial,
                 std::uint64_t rounds, const EdgeFn& edge_fn,
                 const NodeFn& node_fn);

}  // namespace sga::nga
