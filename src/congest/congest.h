// The CONGEST model of distributed computing and its correspondences with
// our neuromorphic models (Section 2.2, "Comparison with distributed
// computing"):
//   * a synchronous round executor in which each node sends one B-bit
//     message per out-edge per round (the bandwidth bound is enforced);
//   * NGA → CONGEST: any Definition-4 NGA runs in CONGEST with one CONGEST
//     round per NGA round (edge functions evaluated at the receiver — the
//     paper's "replace each edge with a path of length two" remark);
//   * SNN → CONGEST: a discrete-time SNN runs with one neuron per node,
//     one time step per round, and single-BIT messages; synaptic delays are
//     handled by receiver-side buffering (the "challenge" the paper notes,
//     since CONGEST links deliver in exactly one round);
//   * a CONGEST-native k-round Bellman–Ford with O(log(kU))-bit messages,
//     the distributed baseline Section 7 builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"
#include "nga/model.h"
#include "snn/compiled_network.h"

namespace sga::congest {

/// One directed B-bit message in flight on an edge.
using Payload = std::optional<std::uint64_t>;

struct RoundStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;       ///< non-empty messages sent
  std::uint64_t max_bits_used = 0;  ///< widest payload observed
};

/// Synchronous executor. Each round: every node may place one payload on
/// each of its out-edges (send phase), then every node processes the
/// payloads on its in-edges (receive phase). Payloads wider than
/// `bits_per_message` throw InvalidArgument — the CONGEST bandwidth bound.
class CongestSim {
 public:
  /// send(v, round, out_edge_index_in_v) -> payload for that edge.
  using SendFn = std::function<Payload(VertexId v, std::uint64_t round,
                                       std::size_t out_index)>;
  /// receive(v, round, payload_per_in_edge).
  using ReceiveFn = std::function<void(VertexId v, std::uint64_t round,
                                       const std::vector<Payload>& incoming)>;

  CongestSim(const Graph& g, int bits_per_message);

  /// Run `rounds` rounds.
  RoundStats run(std::uint64_t rounds, const SendFn& send,
                 const ReceiveFn& receive);

  const Graph& graph() const { return g_; }
  int bits_per_message() const { return bits_; }

 private:
  const Graph& g_;
  int bits_;
};

/// Execute a Definition-4 NGA inside CONGEST: identical results to
/// nga::run_nga, one CONGEST round per NGA round, message width = the NGA's
/// λ. Edge functions are applied by the receiver.
nga::NgaTrace run_nga_in_congest(const Graph& g,
                                 const std::vector<nga::Message>& initial,
                                 std::uint64_t rounds, int lambda,
                                 const nga::EdgeFn& edge_fn,
                                 const nga::NodeFn& node_fn,
                                 RoundStats* stats = nullptr);

/// Simulate a discrete-time SNN in CONGEST: one node per neuron, one round
/// per time step, 1-bit messages ("Each message is simply a single bit,
/// indicating whether the neuron fired at time t"). Synapse delays > 1 are
/// buffered at the receiver. Takes the frozen network (freeze first:
/// net.compile()) so the synapse walk and the invariants match what the
/// event-driven simulator executes. Returns the (time, neuron) spike log,
/// which must equal that simulator's.
struct SnnCongestResult {
  std::vector<std::pair<Time, NeuronId>> spike_log;
  RoundStats stats;
};
SnnCongestResult simulate_snn_in_congest(
    const snn::CompiledNetwork& net,
    const std::vector<std::pair<NeuronId, Time>>& injections, Time horizon);

/// CONGEST-native k-hop Bellman–Ford: k rounds, messages of
/// bits_for(k·U + 1) bits carrying tentative distances. Returns dist_k.
struct CongestBellmanFordResult {
  std::vector<Weight> dist;
  RoundStats stats;
};
CongestBellmanFordResult congest_bellman_ford(const Graph& g, VertexId source,
                                              std::uint32_t k);

// ---- Delay-CONGEST: the paper's proposed future model ------------------
// Section 2.2: "This suggests a CONGEST-like model with a notion of
// programmable delays as a neuromorphic-inspired model for future study."
// Here it is: every edge has a programmable integer delay d ≥ 1; a message
// sent on it in round r is delivered in round r + d. Bandwidth is still
// B bits per edge per round.

class DelayedCongestSim {
 public:
  using SendFn = CongestSim::SendFn;
  using ReceiveFn = CongestSim::ReceiveFn;

  /// Edge delays default to the graph's edge lengths.
  DelayedCongestSim(const Graph& g, int bits_per_message);

  RoundStats run(std::uint64_t rounds, const SendFn& send,
                 const ReceiveFn& receive);

 private:
  const Graph& g_;
  int bits_;
};

/// SSSP in delay-CONGEST with 1-BIT messages: the Section-3 spiking
/// algorithm re-read as a distributed algorithm — each node broadcasts one
/// bit the round after it is first woken, and the wake-up round IS the
/// distance. Round complexity L, message complexity m. Demonstrates why
/// the paper proposes the model: plain CONGEST needs Ω(log nU)-bit messages
/// or length-many rounds per edge to do this.
struct DelayedCongestSsspResult {
  std::vector<Weight> dist;
  RoundStats stats;
};
DelayedCongestSsspResult delayed_congest_sssp(const Graph& g, VertexId source,
                                              Time horizon);

/// Nanongkai's approximation (Section 7) run in its native habitat: the
/// per-scale bounded searches execute as delay-CONGEST SSSP (1-bit
/// messages, deadline (1+2/ε)k rounds), exactly mirroring the spiking
/// version in nga::approx_khop_sssp. Returns the same d̃_k estimates.
struct CongestApproxResult {
  std::vector<double> dist;
  double epsilon = 0;
  std::uint32_t num_scales = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_messages = 0;
};
CongestApproxResult congest_approx_khop(const Graph& g, VertexId source,
                                        std::uint32_t k, double epsilon = 0);

}  // namespace sga::congest
