#include "congest/congest.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/bitops.h"
#include "core/error.h"

namespace sga::congest {

CongestSim::CongestSim(const Graph& g, int bits_per_message)
    : g_(g), bits_(bits_per_message) {
  SGA_REQUIRE(bits_per_message >= 1 && bits_per_message <= 63,
              "CongestSim: bad message width " << bits_per_message);
}

RoundStats CongestSim::run(std::uint64_t rounds, const SendFn& send,
                           const ReceiveFn& receive) {
  RoundStats stats;
  std::vector<Payload> on_edge(g_.num_edges());
  std::vector<Payload> incoming;
  for (std::uint64_t round = 1; round <= rounds; ++round) {
    ++stats.rounds;
    // Send phase: every node loads its out-edges.
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      const auto out = g_.out_edges(v);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const Payload p = send(v, round, i);
        if (p) {
          SGA_REQUIRE(bits_ == 63 || *p < (1ULL << bits_),
                      "CONGEST bandwidth violation: payload "
                          << *p << " exceeds " << bits_ << " bits");
          ++stats.messages;
          stats.max_bits_used = std::max(
              stats.max_bits_used,
              static_cast<std::uint64_t>(bits_for(*p)));
        }
        on_edge[out[i]] = p;
      }
    }
    // Receive phase: every node drains its in-edges.
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      incoming.clear();
      for (const EdgeId eid : g_.in_edges(v)) {
        incoming.push_back(on_edge[eid]);
      }
      receive(v, round, incoming);
    }
  }
  return stats;
}

nga::NgaTrace run_nga_in_congest(const Graph& g,
                                 const std::vector<nga::Message>& initial,
                                 std::uint64_t rounds, int lambda,
                                 const nga::EdgeFn& edge_fn,
                                 const nga::NodeFn& node_fn,
                                 RoundStats* stats_out) {
  SGA_REQUIRE(initial.size() == g.num_vertices(),
              "run_nga_in_congest: initial size mismatch");
  nga::NgaTrace trace;
  trace.per_round.push_back(initial);

  std::vector<nga::Message> current = initial;
  std::vector<nga::Message> next(g.num_vertices());
  CongestSim sim(g, lambda);

  const auto send = [&](VertexId v, std::uint64_t, std::size_t) -> Payload {
    // Broadcast m_{v,r-1} on every out-edge; silent if invalid (the paper:
    // "sending the all zeros message equates to none of the output neurons
    // firing" — CONGEST's empty slot).
    if (!current[v].valid) return std::nullopt;
    return current[v].value;
  };
  const auto receive = [&](VertexId v, std::uint64_t,
                           const std::vector<Payload>& incoming) {
    // Receiver applies the edge function (the "path of length two" folding)
    // and then the node function.
    const auto in_edges = g.in_edges(v);
    std::vector<nga::Message> msgs(in_edges.size());
    for (std::size_t i = 0; i < in_edges.size(); ++i) {
      if (incoming[i]) {
        msgs[i] = edge_fn(g.edge(in_edges[i]),
                          nga::Message{*incoming[i], true});
        ++trace.messages_sent;
      }
    }
    next[v] = node_fn(v, msgs);
  };

  RoundStats total;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    const RoundStats st = sim.run(1, send, receive);
    total.rounds += st.rounds;
    total.messages += st.messages;
    total.max_bits_used = std::max(total.max_bits_used, st.max_bits_used);
    current = next;
    trace.per_round.push_back(current);
  }
  if (stats_out) *stats_out = total;
  return trace;
}

SnnCongestResult simulate_snn_in_congest(
    const snn::CompiledNetwork& net,
    const std::vector<std::pair<NeuronId, Time>>& injections, Time horizon) {
  SGA_REQUIRE(horizon >= 0, "simulate_snn_in_congest: bad horizon");

  // The communication graph: one CONGEST edge per synapse.
  Graph g(net.num_neurons());
  struct SynRef {
    SynWeight weight;
    Delay delay;
  };
  std::vector<SynRef> syn_of_edge;
  for (NeuronId u = 0; u < net.num_neurons(); ++u) {
    for (std::size_t k = net.out_begin(u); k < net.out_end(u); ++k) {
      g.add_edge(u, net.syn_target(k), 1);
      syn_of_edge.push_back({net.syn_weight(k), net.syn_delay(k)});
    }
  }

  // Local state per node: membrane potential, last fire flag, and a
  // receiver-side delay buffer per in-edge (a bit sent at round t acts at
  // round t + d - 1 more rounds later).
  const std::size_t n = net.num_neurons();
  std::vector<Voltage> v(n);
  std::vector<char> fired_prev(n, 0);  // did the neuron fire last round?
  for (NeuronId i = 0; i < n; ++i) v[i] = net.params(i).v_reset;

  // pending[e] = deque of rounds-until-active for bits in flight on edge e.
  std::vector<std::deque<Time>> pending(g.num_edges());

  std::vector<std::vector<Time>> inject_at(n);
  for (const auto& [id, t] : injections) {
    SGA_REQUIRE(id < n, "bad injection neuron");
    inject_at[id].push_back(t);
  }

  SnnCongestResult result;
  CongestSim sim(g, 1);

  const auto send = [&](VertexId u, std::uint64_t, std::size_t) -> Payload {
    // One bit: whether u fired in the previous round.
    if (fired_prev[u]) return 1;
    return std::nullopt;
  };
  const auto receive = [&](VertexId node, std::uint64_t round,
                           const std::vector<Payload>& incoming) {
    const Time t = static_cast<Time>(round) - 1;  // round r simulates step t
    // Enqueue newly arrived bits and collect those whose delay elapsed.
    const auto in_edges = g.in_edges(node);
    SynWeight syn_input = 0;
    for (std::size_t i = 0; i < in_edges.size(); ++i) {
      auto& buf = pending[in_edges[i]];
      if (incoming[i]) {
        // Sent at step t-1 over delay d ⇒ acts at step t-1+d.
        buf.push_back(t - 1 + syn_of_edge[in_edges[i]].delay);
      }
      while (!buf.empty() && buf.front() == t) {
        syn_input += syn_of_edge[in_edges[i]].weight;
        buf.pop_front();
      }
    }
    // LIF update (identical to the event-driven simulator's step rule).
    const snn::NeuronParams& p = net.params(node);
    Voltage decayed = v[node];
    if (p.tau == 1.0) {
      decayed = p.v_reset;
    } else if (p.tau > 0.0) {
      decayed = p.v_reset + (v[node] - p.v_reset) * (1.0 - p.tau);
    }
    const Voltage v_hat = decayed + syn_input;
    bool fires = v_hat >= p.v_threshold;
    for (const Time it : inject_at[node]) {
      if (it == t) fires = true;
    }
    if (fires) {
      v[node] = p.v_reset;
      result.spike_log.emplace_back(t, node);
    } else {
      v[node] = v_hat;
    }
    fired_prev[node] = fires ? 1 : 0;
  };

  // Round r simulates time step t = r - 1; horizon+1 rounds cover t = 0..T.
  result.stats = sim.run(static_cast<std::uint64_t>(horizon) + 1, send, receive);
  std::stable_sort(result.spike_log.begin(), result.spike_log.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

CongestBellmanFordResult congest_bellman_ford(const Graph& g, VertexId source,
                                              std::uint32_t k) {
  SGA_REQUIRE(source < g.num_vertices(), "congest_bellman_ford: bad source");
  const std::uint64_t cap =
      static_cast<std::uint64_t>(k) *
          static_cast<std::uint64_t>(std::max<Weight>(1, g.max_edge_length())) +
      1;
  const int lambda = bits_for(cap);

  CongestBellmanFordResult r;
  r.dist.assign(g.num_vertices(), kInfiniteDistance);
  r.dist[source] = 0;

  CongestSim sim(g, lambda);
  const auto send = [&](VertexId u, std::uint64_t, std::size_t) -> Payload {
    if (r.dist[u] >= kInfiniteDistance) return std::nullopt;
    return static_cast<std::uint64_t>(r.dist[u]);
  };
  const auto receive = [&](VertexId node, std::uint64_t,
                           const std::vector<Payload>& incoming) {
    const auto in_edges = g.in_edges(node);
    for (std::size_t i = 0; i < in_edges.size(); ++i) {
      if (!incoming[i]) continue;
      const Weight cand = static_cast<Weight>(*incoming[i]) +
                          g.edge(in_edges[i]).length;
      r.dist[node] = std::min(r.dist[node], cand);
    }
  };
  r.stats = sim.run(k, send, receive);
  return r;
}

DelayedCongestSim::DelayedCongestSim(const Graph& g, int bits_per_message)
    : g_(g), bits_(bits_per_message) {
  SGA_REQUIRE(bits_per_message >= 1 && bits_per_message <= 63,
              "DelayedCongestSim: bad message width " << bits_per_message);
}

RoundStats DelayedCongestSim::run(std::uint64_t rounds, const SendFn& send,
                                  const ReceiveFn& receive) {
  RoundStats stats;
  // In-flight messages per edge: (delivery_round, payload) FIFO — delays
  // are fixed per edge, so delivery order is send order.
  //
  // Phase order within a round is RECEIVE then SEND: a node may react in
  // the same round to a message delivered to it, which makes a wake-up bit
  // over an edge of delay d cost exactly d rounds end to end — the spiking
  // semantics (a spike arriving at time t can be relayed with fire time t).
  std::vector<std::deque<std::pair<std::uint64_t, std::uint64_t>>> in_flight(
      g_.num_edges());
  std::vector<Payload> incoming;
  for (std::uint64_t round = 1; round <= rounds; ++round) {
    ++stats.rounds;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      incoming.clear();
      for (const EdgeId eid : g_.in_edges(v)) {
        auto& q = in_flight[eid];
        if (!q.empty() && q.front().first == round) {
          incoming.emplace_back(q.front().second);
          q.pop_front();
        } else {
          incoming.emplace_back(std::nullopt);
        }
      }
      receive(v, round, incoming);
    }
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      const auto out = g_.out_edges(v);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const Payload p = send(v, round, i);
        if (!p) continue;
        SGA_REQUIRE(bits_ == 63 || *p < (1ULL << bits_),
                    "delay-CONGEST bandwidth violation");
        ++stats.messages;
        stats.max_bits_used =
            std::max(stats.max_bits_used,
                     static_cast<std::uint64_t>(bits_for(*p)));
        const auto d = static_cast<std::uint64_t>(g_.edge(out[i]).length);
        in_flight[out[i]].emplace_back(round + d, *p);
      }
    }
  }
  return stats;
}

DelayedCongestSsspResult delayed_congest_sssp(const Graph& g, VertexId source,
                                              Time horizon) {
  SGA_REQUIRE(source < g.num_vertices(), "delayed_congest_sssp: bad source");
  DelayedCongestSsspResult r;
  r.dist.assign(g.num_vertices(), kInfiniteDistance);
  r.dist[source] = 0;

  // Node state: the round in which to broadcast the wake-up bit (the
  // Section-3 "propagate only the first incoming spike"). Fire time t maps
  // to round t + 1; receive-before-send lets a node relay in its own wake
  // round, so edge delay ℓ costs exactly ℓ rounds.
  std::vector<std::uint64_t> broadcast_round(g.num_vertices(), 0);
  broadcast_round[source] = 1;  // source spikes "at time 0" = round 1

  DelayedCongestSim sim(g, 1);
  const auto send = [&](VertexId v, std::uint64_t round, std::size_t) -> Payload {
    if (broadcast_round[v] == round) return 1;
    return std::nullopt;
  };
  const auto receive = [&](VertexId v, std::uint64_t round,
                           const std::vector<Payload>& incoming) {
    if (r.dist[v] < kInfiniteDistance) return;  // already woken
    for (const Payload& p : incoming) {
      if (p) {
        // Woken in round ρ ⇒ fired at time ρ − 1 ⇒ distance ρ − 1; relay
        // this same round.
        r.dist[v] = static_cast<Weight>(round - 1);
        broadcast_round[v] = round;
        return;
      }
    }
  };
  r.stats = sim.run(static_cast<std::uint64_t>(horizon) + 1, send, receive);
  return r;
}

CongestApproxResult congest_approx_khop(const Graph& g, VertexId source,
                                        std::uint32_t k, double epsilon) {
  SGA_REQUIRE(source < g.num_vertices(), "congest_approx_khop: bad source");
  SGA_REQUIRE(k >= 1, "congest_approx_khop: k must be >= 1");
  SGA_REQUIRE(g.num_vertices() >= 2, "congest_approx_khop: need >= 2 vertices");

  CongestApproxResult r;
  const double n = static_cast<double>(g.num_vertices());
  r.epsilon = epsilon > 0 ? epsilon : 1.0 / std::log2(n);
  const double kd = static_cast<double>(k);
  const Weight u_max = std::max<Weight>(1, g.max_edge_length());
  const auto max_i = static_cast<std::uint32_t>(std::max(
      0.0,
      std::ceil(std::log2(2.0 * kd * static_cast<double>(u_max) / r.epsilon))));
  r.num_scales = max_i + 1;
  const auto deadline =
      static_cast<Time>(std::ceil((1.0 + 2.0 / r.epsilon) * kd));

  r.dist.assign(g.num_vertices(), std::numeric_limits<double>::infinity());
  for (std::uint32_t i = 0; i <= max_i; ++i) {
    const double di = std::pow(2.0, static_cast<double>(i));
    Graph rounded(g.num_vertices());
    for (const auto& e : g.edges()) {
      const double scaled =
          2.0 * kd * static_cast<double>(e.length) / (r.epsilon * di);
      rounded.add_edge(e.from, e.to,
                       static_cast<Weight>(std::max(1.0, std::ceil(scaled))));
    }
    const auto run = delayed_congest_sssp(rounded, source, deadline);
    r.total_rounds += run.stats.rounds;
    r.total_messages += run.stats.messages;
    const double unscale = r.epsilon * di / (2.0 * kd);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (run.dist[v] >= kInfiniteDistance) continue;
      if (static_cast<double>(run.dist[v]) > (1.0 + 2.0 / r.epsilon) * kd) {
        continue;
      }
      r.dist[v] =
          std::min(r.dist[v], unscale * static_cast<double>(run.dist[v]));
    }
  }
  return r;
}

}  // namespace sga::congest
