#include "graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/error.h"

namespace sga {

void write_dimacs(std::ostream& os, const Graph& g, const std::string& comment) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    os << "a " << (e.from + 1) << ' ' << (e.to + 1) << ' ' << e.length << '\n';
  }
}

Graph read_dimacs(std::istream& is) {
  std::string line;
  Graph g;
  bool have_header = false;
  std::size_t declared_m = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string kind;
      std::size_t n = 0, m = 0;
      ls >> kind >> n >> m;
      SGA_REQUIRE(ls && kind == "sp", "read_dimacs: bad problem line: " << line);
      SGA_REQUIRE(!have_header, "read_dimacs: duplicate problem line");
      g = Graph(n);
      declared_m = m;
      have_header = true;
      continue;
    }
    if (tag == 'a') {
      SGA_REQUIRE(have_header, "read_dimacs: arc before problem line");
      std::size_t u = 0, v = 0;
      Weight w = 0;
      ls >> u >> v >> w;
      SGA_REQUIRE(ls, "read_dimacs: bad arc line: " << line);
      SGA_REQUIRE(u >= 1 && u <= g.num_vertices() && v >= 1 &&
                      v <= g.num_vertices(),
                  "read_dimacs: vertex out of range in: " << line);
      g.add_edge(static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1), w);
      continue;
    }
    SGA_REQUIRE(false, "read_dimacs: unrecognized line: " << line);
  }
  SGA_REQUIRE(have_header, "read_dimacs: missing problem line");
  SGA_REQUIRE(g.num_edges() == declared_m,
              "read_dimacs: header declared " << declared_m << " arcs, found "
                                              << g.num_edges());
  return g;
}

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    os << e.from << ' ' << e.to << ' ' << e.length << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  is >> n >> m;
  SGA_REQUIRE(static_cast<bool>(is), "read_edge_list: missing n m header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0, v = 0;
    Weight w = 0;
    is >> u >> v >> w;
    SGA_REQUIRE(static_cast<bool>(is), "read_edge_list: truncated at edge " << i);
    SGA_REQUIRE(u < n && v < n, "read_edge_list: vertex out of range at edge " << i);
    g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v), w);
  }
  return g;
}

}  // namespace sga
