#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace sga {

VertexId Graph::add_vertex() {
  csr_valid_ = false;
  return static_cast<VertexId>(n_++);
}

EdgeId Graph::add_edge(VertexId u, VertexId v, Weight length) {
  SGA_REQUIRE(u < n_, "add_edge: source " << u << " out of range (n=" << n_ << ")");
  SGA_REQUIRE(v < n_, "add_edge: target " << v << " out of range (n=" << n_ << ")");
  SGA_REQUIRE(length > 0, "add_edge: edge length must be positive, got " << length);
  csr_valid_ = false;
  edges_.push_back(Edge{u, v, length});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Graph::scale_lengths(Weight factor) {
  SGA_REQUIRE(factor > 0, "scale_lengths: factor must be positive");
  for (auto& e : edges_) {
    SGA_CHECK(e.length <= kInfiniteDistance / factor,
              "scale_lengths: overflow scaling length " << e.length << " by "
                                                        << factor);
    e.length *= factor;
  }
}

void Graph::ensure_csr() const {
  if (csr_valid_) return;
  out_offset_.assign(n_ + 1, 0);
  in_offset_.assign(n_ + 1, 0);
  for (const auto& e : edges_) {
    ++out_offset_[e.from + 1];
    ++in_offset_[e.to + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) {
    out_offset_[i] += out_offset_[i - 1];
    in_offset_[i] += in_offset_[i - 1];
  }
  out_list_.assign(edges_.size(), 0);
  in_list_.assign(edges_.size(), 0);
  std::vector<std::uint32_t> out_pos(out_offset_.begin(), out_offset_.end() - 1);
  std::vector<std::uint32_t> in_pos(in_offset_.begin(), in_offset_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const auto& e = edges_[id];
    out_list_[out_pos[e.from]++] = id;
    in_list_[in_pos[e.to]++] = id;
  }
  csr_valid_ = true;
}

std::span<const EdgeId> Graph::out_edges(VertexId u) const {
  SGA_REQUIRE(u < n_, "out_edges: vertex " << u << " out of range");
  ensure_csr();
  return {out_list_.data() + out_offset_[u],
          out_list_.data() + out_offset_[u + 1]};
}

std::span<const EdgeId> Graph::in_edges(VertexId v) const {
  SGA_REQUIRE(v < n_, "in_edges: vertex " << v << " out of range");
  ensure_csr();
  return {in_list_.data() + in_offset_[v], in_list_.data() + in_offset_[v + 1]};
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < n_; ++v) {
    best = std::max(best, out_degree(v) + in_degree(v));
  }
  return best;
}

Weight Graph::max_edge_length() const {
  Weight best = 0;
  for (const auto& e : edges_) best = std::max(best, e.length);
  return best;
}

Weight Graph::min_edge_length() const {
  if (edges_.empty()) return 0;
  Weight best = edges_.front().length;
  for (const auto& e : edges_) best = std::min(best, e.length);
  return best;
}

Graph Graph::reversed() const {
  Graph r(n_);
  for (const auto& e : edges_) r.add_edge(e.to, e.from, e.length);
  return r;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << edges_.size()
     << ", U=" << max_edge_length() << ")";
  return os.str();
}

}  // namespace sga
