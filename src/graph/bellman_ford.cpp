#include "graph/bellman_ford.h"

namespace sga {

KHopResult bellman_ford_khop(const Graph& g, VertexId source, std::uint32_t k) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(source < n, "bellman_ford_khop: source out of range");

  KHopResult r;
  r.dist.assign(n, kInfiniteDistance);
  r.parent.assign(n, kNoVertex);
  r.hops.assign(n, 0);
  r.dist[source] = 0;

  std::vector<Weight> prev = r.dist;
  for (std::uint32_t round = 1; round <= k; ++round) {
    prev = r.dist;
    for (const auto& e : g.edges()) {
      ++r.ops.edge_relaxations;
      ++r.ops.comparisons;
      if (prev[e.from] >= kInfiniteDistance) continue;
      const Weight nd = prev[e.from] + e.length;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = e.from;
        r.hops[e.to] = static_cast<std::uint32_t>(round);
      }
    }
  }
  return r;
}

std::vector<std::vector<Weight>> bellman_ford_khop_rounds(const Graph& g,
                                                          VertexId source,
                                                          std::uint32_t k) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(source < n, "bellman_ford_khop_rounds: source out of range");
  std::vector<std::vector<Weight>> rounds;
  rounds.reserve(k + 1);
  std::vector<Weight> dist(n, kInfiniteDistance);
  dist[source] = 0;
  rounds.push_back(dist);
  for (std::uint32_t round = 1; round <= k; ++round) {
    const std::vector<Weight>& prev = rounds.back();
    std::vector<Weight> cur = prev;
    for (const auto& e : g.edges()) {
      if (prev[e.from] >= kInfiniteDistance) continue;
      const Weight nd = prev[e.from] + e.length;
      if (nd < cur[e.to]) cur[e.to] = nd;
    }
    rounds.push_back(std::move(cur));
  }
  return rounds;
}

}  // namespace sga
