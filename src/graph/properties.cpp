#include "graph/properties.h"

#include <deque>
#include <limits>

namespace sga {

std::vector<char> reachable_set(const Graph& g, VertexId source) {
  SGA_REQUIRE(source < g.num_vertices(), "reachable_set: source out of range");
  std::vector<char> seen(g.num_vertices(), 0);
  std::deque<VertexId> frontier{source};
  seen[source] = 1;
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (const EdgeId eid : g.out_edges(u)) {
      const VertexId v = g.edge(eid).to;
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

bool all_reachable(const Graph& g, VertexId source) {
  const auto seen = reachable_set(g, source);
  for (const char s : seen) {
    if (!s) return false;
  }
  return true;
}

Weight path_length(const Graph& g, const std::vector<VertexId>& path) {
  SGA_REQUIRE(!path.empty(), "path_length: empty path");
  Weight total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool found = false;
    Weight best = std::numeric_limits<Weight>::max();
    for (const EdgeId eid : g.out_edges(path[i])) {
      const Edge& e = g.edge(eid);
      if (e.to == path[i + 1]) {
        found = true;
        best = std::min(best, e.length);  // parallel edges: use the shortest
      }
    }
    SGA_REQUIRE(found, "path_length: no edge " << path[i] << " -> "
                                               << path[i + 1]);
    total += best;
  }
  return total;
}

bool is_shortest_path_witness(const Graph& g, const std::vector<VertexId>& path,
                              VertexId from, VertexId to,
                              Weight expected_length) {
  if (path.empty() || path.front() != from || path.back() != to) return false;
  try {
    return path_length(g, path) == expected_length;
  } catch (const InvalidArgument&) {
    return false;
  }
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, VertexId source) {
  SGA_REQUIRE(source < g.num_vertices(), "bfs_hops: source out of range");
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> hops(g.num_vertices(), kUnreached);
  std::deque<VertexId> frontier{source};
  hops[source] = 0;
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (const EdgeId eid : g.out_edges(u)) {
      const VertexId v = g.edge(eid).to;
      if (hops[v] == kUnreached) {
        hops[v] = hops[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return hops;
}

}  // namespace sga
