// Graph property queries used by algorithm preconditions and bench reports:
// reachability, path validation, and the paper's parameters L, U, α.
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga {

/// Vertices reachable from `source` (BFS over out-edges).
std::vector<char> reachable_set(const Graph& g, VertexId source);

/// True if every vertex is reachable from `source`.
bool all_reachable(const Graph& g, VertexId source);

/// Validate a path: consecutive vertices joined by an edge; returns the total
/// length. Throws InvalidArgument if the sequence is not a path in g.
Weight path_length(const Graph& g, const std::vector<VertexId>& path);

/// True iff `path` starts at `from`, ends at `to`, is a valid path, and its
/// length equals `expected_length`.
bool is_shortest_path_witness(const Graph& g, const std::vector<VertexId>& path,
                              VertexId from, VertexId to,
                              Weight expected_length);

/// BFS hop distances (number of edges, ignoring lengths).
std::vector<std::uint32_t> bfs_hops(const Graph& g, VertexId source);

}  // namespace sga
