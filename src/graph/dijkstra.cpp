#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

namespace sga {

SsspResult dijkstra(const Graph& g, VertexId source) {
  const std::size_t n = g.num_vertices();
  SGA_REQUIRE(source < n, "dijkstra: source out of range");

  SsspResult r;
  r.dist.assign(n, kInfiniteDistance);
  r.parent.assign(n, kNoVertex);
  r.hops.assign(n, 0);

  using Item = std::pair<Weight, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[source] = 0;
  pq.emplace(0, source);
  ++r.ops.heap_ops;

  std::vector<char> settled(n, 0);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    ++r.ops.heap_ops;
    if (settled[u]) continue;
    settled[u] = 1;
    for (const EdgeId eid : g.out_edges(u)) {
      const Edge& e = g.edge(eid);
      ++r.ops.edge_relaxations;
      ++r.ops.comparisons;
      const Weight nd = d + e.length;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = u;
        r.hops[e.to] = r.hops[u] + 1;
        pq.emplace(nd, e.to);
        ++r.ops.heap_ops;
      }
    }
  }
  return r;
}

std::uint32_t shortest_path_hops(const SsspResult& r, VertexId target) {
  SGA_REQUIRE(target < r.dist.size(), "shortest_path_hops: target out of range");
  SGA_REQUIRE(r.reachable(target), "shortest_path_hops: target unreachable");
  return r.hops[target];
}

std::vector<VertexId> extract_path(const SsspResult& r, VertexId target) {
  SGA_REQUIRE(target < r.dist.size(), "extract_path: target out of range");
  SGA_REQUIRE(r.reachable(target), "extract_path: target unreachable");
  std::vector<VertexId> path;
  for (VertexId v = target; v != kNoVertex; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace sga
