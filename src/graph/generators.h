// Graph generators for tests, examples, and the benchmark workloads.
//
// The paper's bounds are parameterized by n, m, k, U, L and α; these
// generators let the benches sweep each parameter independently:
//  * Erdős–Rényi G(n, m) with uniform weights — the generic workload;
//  * grid graphs — short L relative to m (pseudopoly-friendly regime);
//  * path/cycle graphs — extremal α and L;
//  * complete graphs — densest case and the crossbar's worst case;
//  * layered DAGs — k-hop structure is explicit;
//  * Barabási–Albert — heavy-tailed degrees stressing per-node circuits.
#pragma once

#include <cstdint>
#include <functional>

#include "core/random.h"
#include "graph/graph.h"

namespace sga {

/// Weight distribution for generated edges: uniform in [min_length,
/// max_length].
struct WeightRange {
  Weight min_length = 1;
  Weight max_length = 1;
};

/// Erdős–Rényi style G(n, m): m distinct directed edges chosen uniformly
/// (no self-loops, no duplicate (u,v) pairs). If ensure_connected, a random
/// out-tree from vertex 0 is added first so that vertex 0 reaches everything;
/// those n-1 edges count toward m. Requires m <= n(n-1) and, when
/// ensure_connected, m >= n-1.
Graph make_random_graph(std::size_t n, std::size_t m, WeightRange w, Rng& rng,
                        bool ensure_connected = true);

/// Directed 2-D torus grid of rows x cols vertices; each vertex has edges to
/// its right and down neighbours (wrapping), so m = 2 n. Uniform weights.
Graph make_grid_graph(std::size_t rows, std::size_t cols, WeightRange w,
                      Rng& rng);

/// Simple directed path 0 -> 1 -> ... -> n-1.
Graph make_path_graph(std::size_t n, WeightRange w, Rng& rng);

/// Directed cycle over n vertices.
Graph make_cycle_graph(std::size_t n, WeightRange w, Rng& rng);

/// Complete directed graph K_n (all ordered pairs, no self-loops).
Graph make_complete_graph(std::size_t n, WeightRange w, Rng& rng);

/// Layered DAG: `layers` layers of `width` vertices; every vertex in layer i
/// has `fanout` random out-edges into layer i+1. Vertex 0 is a source wired
/// to all of layer 0. k-hop behaviour is explicit: reaching layer i requires
/// exactly i+1 hops.
Graph make_layered_dag(std::size_t layers, std::size_t width,
                       std::size_t fanout, WeightRange w, Rng& rng);

/// Barabási–Albert preferential attachment (directed: new vertex points to
/// `attach` existing vertices, plus reverse edges so the graph is strongly
/// reachable from 0).
Graph make_preferential_attachment(std::size_t n, std::size_t attach,
                                   WeightRange w, Rng& rng);

/// Random geometric graph on the unit square: n points, bidirectional edges
/// between pairs within `radius`, edge length = ⌈scale · euclidean⌉ — a
/// road-network-like workload where lengths correlate with topology (short
/// L, small α; the pseudopolynomial algorithms' favourite regime). A random
/// Hamiltonian-ish chain is added so the graph is connected.
Graph make_geometric_graph(std::size_t n, double radius, Weight scale,
                           Rng& rng);

// ---- Streaming generators (ARCHITECTURE.md §1.8) ------------------------
//
// The make_* builders above materialize a Graph (adjacency vectors) and top
// out around the available RAM well before the paper's asymptotic regime is
// visible. The stream_* variants below emit edges through a callback and
// hold O(1) state, so snn::CompiledNetwork::compile_streamed can freeze a
// million-vertex instance directly into its narrow CSR with the nested
// structures never existing.
//
// Contract: each call constructs its generator state (a fresh Rng) from the
// seed argument, so invoking the same stream twice replays the IDENTICAL
// edge sequence — which is exactly what compile_streamed's two-pass
// counting sort requires of its emitter.

/// Edge callback: (from, to, length).
using EdgeStream = std::function<void(VertexId, VertexId, Weight)>;

/// Relay chain: backbone v -> v+1 for all v, plus `extra_per_vertex`
/// forward skip edges v -> v + s with s uniform in [2, max_skip] (skips
/// landing past vertex n-1 are dropped). Every vertex is reachable from 0
/// via the backbone, so SSSP touches all n vertices; the skip edges give
/// rows real fan-out and distinct-delay segments. m ≈ n · (1 +
/// extra_per_vertex · E[in-range]).
void stream_relay_chain(std::size_t n, std::size_t extra_per_vertex,
                        std::size_t max_skip, WeightRange w,
                        std::uint64_t seed, const EdgeStream& emit);

/// Streaming counterpart of make_grid_graph: directed rows × cols torus,
/// right and down neighbours (wrapping), m = 2 · rows · cols for grids with
/// both dimensions > 1.
void stream_grid(std::size_t rows, std::size_t cols, WeightRange w,
                 std::uint64_t seed, const EdgeStream& emit);

/// R-MAT (recursive-matrix) generator over n = 2^scale vertices: each of
/// the m edges picks its endpoints one bit level at a time with quadrant
/// probabilities (a, b, c, 1-a-b-c), yielding the skewed degree
/// distribution of the Graph500 workloads. Parallel edges are kept (they
/// become parallel synapses); self-loops are deflected to the next vertex.
void stream_rmat(std::size_t scale, std::size_t m, double a, double b,
                 double c, WeightRange w, std::uint64_t seed,
                 const EdgeStream& emit);

}  // namespace sga
