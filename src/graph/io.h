// Graph serialization: DIMACS shortest-path format ("p sp n m" header,
// "a u v w" arc lines, 1-indexed) — the standard interchange format for
// shortest-path benchmarks — plus a trivial whitespace edge-list format.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sga {

/// Write g in DIMACS .gr format (1-indexed vertices).
void write_dimacs(std::ostream& os, const Graph& g,
                  const std::string& comment = "");

/// Parse DIMACS .gr format. Throws InvalidArgument on malformed input.
Graph read_dimacs(std::istream& is);

/// Write "u v w" lines (0-indexed), one per edge, preceded by "n m".
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse the edge-list format produced by write_edge_list.
Graph read_edge_list(std::istream& is);

}  // namespace sga
