// Reference conventional k-hop SSSP: the Bellman–Ford based O(km) algorithm
// of Section 6.2. dist_i(v) = length of the shortest path from the source to
// v using at most i edges; the algorithm performs k rounds of relaxing all
// edges.
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/dijkstra.h"  // OpCounts
#include "graph/graph.h"

namespace sga {

struct KHopResult {
  /// dist[v] = dist_k(v): shortest path length using at most k edges,
  /// kInfiniteDistance if no such path.
  std::vector<Weight> dist;
  /// parent[v] on the best <=k-hop path (kNoVertex if none/source).
  std::vector<VertexId> parent;
  /// hops[v]: number of edges on the found path.
  std::vector<std::uint32_t> hops;
  OpCounts ops;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

/// k-hop single-source shortest paths (exactly the Section 6.2 algorithm:
/// k rounds, each relaxing every edge).
KHopResult bellman_ford_khop(const Graph& g, VertexId source, std::uint32_t k);

/// All the per-round tables dist_0 .. dist_k (dist[i][v] = dist_i(v)).
/// Used by tests to validate the gate-level polynomial k-hop SNN round by
/// round.
std::vector<std::vector<Weight>> bellman_ford_khop_rounds(const Graph& g,
                                                          VertexId source,
                                                          std::uint32_t k);

}  // namespace sga
