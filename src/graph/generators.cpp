#include "graph/generators.h"

#include <cmath>
#include <unordered_set>
#include <vector>

namespace sga {

namespace {

Weight draw_weight(const WeightRange& w, Rng& rng) {
  SGA_REQUIRE(w.min_length >= 1, "weights must be positive");
  SGA_REQUIRE(w.min_length <= w.max_length, "invalid weight range");
  return rng.uniform_int(w.min_length, w.max_length);
}

std::uint64_t pair_key(VertexId u, VertexId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph make_random_graph(std::size_t n, std::size_t m, WeightRange w, Rng& rng,
                        bool ensure_connected) {
  SGA_REQUIRE(n >= 1, "make_random_graph: need n >= 1");
  SGA_REQUIRE(m <= n * (n - 1), "make_random_graph: m too large for simple graph");
  Graph g(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);

  if (ensure_connected && n > 1) {
    SGA_REQUIRE(m >= n - 1,
                "make_random_graph: need m >= n-1 to ensure connectivity");
    // Random out-tree rooted at 0: vertex i attaches under a random earlier
    // vertex. Guarantees every vertex is reachable from vertex 0.
    for (VertexId v = 1; v < n; ++v) {
      const auto parent =
          static_cast<VertexId>(rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
      g.add_edge(parent, v, draw_weight(w, rng));
      used.insert(pair_key(parent, v));
    }
  }

  while (g.num_edges() < m) {
    const auto u =
        static_cast<VertexId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v =
        static_cast<VertexId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) continue;
    if (!used.insert(pair_key(u, v)).second) continue;
    g.add_edge(u, v, draw_weight(w, rng));
  }
  return g;
}

Graph make_grid_graph(std::size_t rows, std::size_t cols, WeightRange w,
                      Rng& rng) {
  SGA_REQUIRE(rows >= 1 && cols >= 1, "make_grid_graph: empty grid");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (cols > 1) g.add_edge(id(r, c), id(r, (c + 1) % cols), draw_weight(w, rng));
      if (rows > 1) g.add_edge(id(r, c), id((r + 1) % rows, c), draw_weight(w, rng));
    }
  }
  return g;
}

Graph make_path_graph(std::size_t n, WeightRange w, Rng& rng) {
  SGA_REQUIRE(n >= 1, "make_path_graph: need n >= 1");
  Graph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, draw_weight(w, rng));
  return g;
}

Graph make_cycle_graph(std::size_t n, WeightRange w, Rng& rng) {
  SGA_REQUIRE(n >= 2, "make_cycle_graph: need n >= 2");
  Graph g(n);
  for (VertexId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<VertexId>((v + 1) % n), draw_weight(w, rng));
  }
  return g;
}

Graph make_complete_graph(std::size_t n, WeightRange w, Rng& rng) {
  SGA_REQUIRE(n >= 1, "make_complete_graph: need n >= 1");
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) g.add_edge(u, v, draw_weight(w, rng));
    }
  }
  return g;
}

Graph make_layered_dag(std::size_t layers, std::size_t width,
                       std::size_t fanout, WeightRange w, Rng& rng) {
  SGA_REQUIRE(layers >= 1 && width >= 1, "make_layered_dag: empty DAG");
  SGA_REQUIRE(fanout >= 1 && fanout <= width,
              "make_layered_dag: fanout must be in [1, width]");
  Graph g(1 + layers * width);
  auto id = [width](std::size_t layer, std::size_t i) {
    return static_cast<VertexId>(1 + layer * width + i);
  };
  for (std::size_t i = 0; i < width; ++i) {
    g.add_edge(0, id(0, i), draw_weight(w, rng));
  }
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      // Choose `fanout` distinct targets in the next layer.
      std::unordered_set<std::size_t> targets;
      while (targets.size() < fanout) {
        targets.insert(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1)));
      }
      for (const auto t : targets) {
        g.add_edge(id(layer, i), id(layer + 1, t), draw_weight(w, rng));
      }
    }
  }
  return g;
}

Graph make_preferential_attachment(std::size_t n, std::size_t attach,
                                   WeightRange w, Rng& rng) {
  SGA_REQUIRE(n >= 2, "make_preferential_attachment: need n >= 2");
  SGA_REQUIRE(attach >= 1, "make_preferential_attachment: attach >= 1");
  Graph g(n);
  // Repeated-endpoint list: classic linear-time preferential attachment.
  std::vector<VertexId> endpoints;
  endpoints.push_back(0);
  for (VertexId v = 1; v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    const std::size_t want = std::min<std::size_t>(attach, v);
    while (chosen.size() < want) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1));
      chosen.insert(endpoints[idx]);
    }
    for (const auto t : chosen) {
      g.add_edge(v, t, draw_weight(w, rng));
      g.add_edge(t, v, draw_weight(w, rng));  // reverse edge for reachability
      endpoints.push_back(t);
    }
    endpoints.push_back(v);
  }
  return g;
}

Graph make_geometric_graph(std::size_t n, double radius, Weight scale,
                           Rng& rng) {
  SGA_REQUIRE(n >= 2, "make_geometric_graph: need n >= 2");
  SGA_REQUIRE(radius > 0 && scale >= 1, "make_geometric_graph: bad params");
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.emplace_back(rng.uniform01(), rng.uniform01());
  }
  auto dist = [&](std::size_t i, std::size_t j) {
    const double dx = pts[i].first - pts[j].first;
    const double dy = pts[i].second - pts[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto length = [&](std::size_t i, std::size_t j) {
    return std::max<Weight>(
        1, static_cast<Weight>(std::ceil(static_cast<double>(scale) *
                                         dist(i, j))));
  };
  Graph g(n);
  std::unordered_set<std::uint64_t> used;
  auto add_pair = [&](std::size_t i, std::size_t j) {
    const auto u = static_cast<VertexId>(i);
    const auto v = static_cast<VertexId>(j);
    if (used.insert(pair_key(u, v)).second) g.add_edge(u, v, length(i, j));
    if (used.insert(pair_key(v, u)).second) g.add_edge(v, u, length(i, j));
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist(i, j) <= radius) add_pair(i, j);
    }
  }
  // Connectivity backbone: chain each vertex to its predecessor in a random
  // order (lengths still geometric).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) add_pair(order[i - 1], order[i]);
  return g;
}

void stream_relay_chain(std::size_t n, std::size_t extra_per_vertex,
                        std::size_t max_skip, WeightRange w,
                        std::uint64_t seed, const EdgeStream& emit) {
  SGA_REQUIRE(n >= 2, "stream_relay_chain: need n >= 2");
  SGA_REQUIRE(max_skip >= 2 || extra_per_vertex == 0,
              "stream_relay_chain: max_skip must be >= 2 for skip edges");
  Rng rng(seed);
  for (VertexId v = 0; v + 1 < n; ++v) {
    emit(v, v + 1, draw_weight(w, rng));
    for (std::size_t e = 0; e < extra_per_vertex; ++e) {
      // Draw unconditionally so the random sequence — and therefore the
      // replayed edge stream — does not depend on which skips were kept.
      const auto s = static_cast<std::size_t>(
          rng.uniform_int(2, static_cast<std::int64_t>(max_skip)));
      const Weight len = draw_weight(w, rng);
      if (v + s < n) emit(v, static_cast<VertexId>(v + s), len);
    }
  }
}

void stream_grid(std::size_t rows, std::size_t cols, WeightRange w,
                 std::uint64_t seed, const EdgeStream& emit) {
  SGA_REQUIRE(rows >= 1 && cols >= 1, "stream_grid: empty grid");
  Rng rng(seed);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (cols > 1) emit(id(r, c), id(r, (c + 1) % cols), draw_weight(w, rng));
      if (rows > 1) emit(id(r, c), id((r + 1) % rows, c), draw_weight(w, rng));
    }
  }
}

void stream_rmat(std::size_t scale, std::size_t m, double a, double b,
                 double c, WeightRange w, std::uint64_t seed,
                 const EdgeStream& emit) {
  SGA_REQUIRE(scale >= 1 && scale <= 31, "stream_rmat: scale must be in [1, 31]");
  SGA_REQUIRE(a > 0 && b >= 0 && c >= 0 && a + b + c < 1,
              "stream_rmat: quadrant probabilities must satisfy a > 0, "
              "b, c >= 0, a + b + c < 1");
  Rng rng(seed);
  const auto n = static_cast<VertexId>(1u << scale);
  for (std::size_t k = 0; k < m; ++k) {
    VertexId u = 0, v = 0;
    for (std::size_t level = 0; level < scale; ++level) {
      const double p = rng.uniform01();
      u <<= 1;
      v <<= 1;
      if (p < a) {
        // top-left: both bits 0
      } else if (p < a + b) {
        v |= 1;
      } else if (p < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    // Deflect self-loops deterministically instead of re-drawing, so the
    // number of random draws per edge is fixed.
    if (u == v) v = (v + 1) & (n - 1);
    emit(u, v, draw_weight(w, rng));
  }
}

}  // namespace sga
