// Directed weighted input graphs (the "G" the paper's algorithms solve).
//
// Edge lengths are positive integers, matching the paper's assumption of
// positive (integer, after scaling) edge lengths and integer synaptic delays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/types.h"

namespace sga {

/// A directed edge of the input graph.
struct Edge {
  VertexId from = kNoVertex;
  VertexId to = kNoVertex;
  Weight length = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Directed weighted graph with CSR adjacency (out-edges and in-edges).
///
/// The builder interface (add_vertex / add_edge) accumulates edges; CSR
/// indices are built lazily and invalidated by mutation. All reference
/// algorithms and all SNN constructions consume this type.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices) : n_(num_vertices) {}

  /// Append a new vertex; returns its id.
  VertexId add_vertex();

  /// Add a directed edge u -> v with positive length; returns its id.
  EdgeId add_edge(VertexId u, VertexId v, Weight length);

  std::size_t num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const {
    SGA_REQUIRE(e < edges_.size(), "edge id out of range: " << e);
    return edges_[e];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Multiply every edge length by `factor` (> 0). Used by the crossbar
  /// embedding (scale so min length >= 2n) and by circuit-depth scaling.
  void scale_lengths(Weight factor);

  /// Ids of edges leaving u (CSR; built on demand).
  std::span<const EdgeId> out_edges(VertexId u) const;
  /// Ids of edges entering v (CSR; built on demand).
  std::span<const EdgeId> in_edges(VertexId v) const;

  std::size_t out_degree(VertexId u) const { return out_edges(u).size(); }
  std::size_t in_degree(VertexId v) const { return in_edges(v).size(); }

  /// Maximum total degree (in + out) over all vertices; 0 for empty graph.
  std::size_t max_degree() const;

  /// Largest edge length U (Section 4.2); 0 for edgeless graphs.
  Weight max_edge_length() const;
  /// Smallest edge length; 0 for edgeless graphs.
  Weight min_edge_length() const;

  /// A graph with the direction of every edge reversed.
  Graph reversed() const;

  /// Human-readable one-line summary ("n=.., m=.., U=..").
  std::string summary() const;

 private:
  void ensure_csr() const;

  std::size_t n_ = 0;
  std::vector<Edge> edges_;

  // Lazily built CSR indices.
  mutable bool csr_valid_ = false;
  mutable std::vector<std::uint32_t> out_offset_, in_offset_;
  mutable std::vector<EdgeId> out_list_, in_list_;
};

}  // namespace sga
