// Reference conventional SSSP: Dijkstra's algorithm with a binary heap,
// O(m log n) (the paper quotes O(m + n log n) with a Fibonacci heap; the
// binary-heap variant is the standard practical baseline and has identical
// data-movement behaviour for the DISTANCE comparison).
//
// The result carries operation counts so benches can report the
// "ignoring data movement" conventional cost column of Table 1.
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga {

/// Counters for the conventional-cost columns of Table 1.
struct OpCounts {
  std::uint64_t edge_relaxations = 0;  ///< edges scanned / relax attempts
  std::uint64_t heap_ops = 0;          ///< pushes + pops + decrease-keys
  std::uint64_t comparisons = 0;       ///< weight comparisons
  std::uint64_t total() const {
    return edge_relaxations + heap_ops + comparisons;
  }
};

struct SsspResult {
  std::vector<Weight> dist;      ///< kInfiniteDistance if unreachable
  std::vector<VertexId> parent;  ///< kNoVertex at source / unreachable
  std::vector<std::uint32_t> hops;  ///< #edges on the found shortest path
  OpCounts ops;

  bool reachable(VertexId v) const { return dist[v] < kInfiniteDistance; }
};

/// Single-source shortest paths from `source`. Requires positive lengths.
SsspResult dijkstra(const Graph& g, VertexId source);

/// Number of edges α on the shortest source→target path found by Dijkstra
/// (Section 4.2 uses α to instantiate k-hop SSSP as plain SSSP). Returns 0
/// if target == source, and kNoVertex-like sentinel via SGA_REQUIRE if
/// unreachable.
std::uint32_t shortest_path_hops(const SsspResult& r, VertexId target);

/// Reconstruct the vertex sequence of the shortest path to `target`
/// (inclusive of both endpoints). Requires target reachable.
std::vector<VertexId> extract_path(const SsspResult& r, VertexId target);

}  // namespace sga
