#include "obs/metrics.h"

#include <algorithm>

#include "core/error.h"

namespace sga::obs {

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::record_time(const std::string& name, std::uint64_t ns) {
  TimerStat& t = timers_[name];
  ++t.count;
  t.total_ns += ns;
  t.max_ns = std::max(t.max_ns, ns);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_.emplace(name, v);
  for (const auto& [name, t] : other.timers_) {
    TimerStat& dst = timers_[name];
    dst.count += t.count;
    dst.total_ns += t.total_ns;
    dst.max_ns = std::max(dst.max_ns, t.max_ns);
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

Json MetricsRegistry::to_json() const {
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, v] : counters_) c.set(name, v);
    j.set("counters", std::move(c));
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, v] : gauges_) g.set(name, v);
    j.set("gauges", std::move(g));
  }
  if (!timers_.empty()) {
    Json t = Json::object();
    for (const auto& [name, stat] : timers_) {
      t.set(name, Json::object()
                      .set("count", stat.count)
                      .set("total_ns", stat.total_ns)
                      .set("max_ns", stat.max_ns));
    }
    j.set("timers", std::move(t));
  }
  return j;
}

namespace {
thread_local MetricsRegistry* g_thread_metrics = nullptr;
}  // namespace

MetricsRegistry* thread_metrics() { return g_thread_metrics; }

MetricsRegistry* set_thread_metrics(MetricsRegistry* reg) {
  MetricsRegistry* prev = g_thread_metrics;
  g_thread_metrics = reg;
  return prev;
}

}  // namespace sga::obs
