#include "obs/report.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>

#include "core/table.h"

#ifndef SGA_GIT_SHA
#define SGA_GIT_SHA "unknown"
#endif
#ifndef SGA_BUILD_TYPE
#define SGA_BUILD_TYPE "unknown"
#endif

namespace sga::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  doc_ = Json::object();
  doc_.set("schema", "sga-bench-v1");
  doc_.set("bench", name_);
  // Baked in at configure time; an env override lets CI stamp the exact
  // checkout when the build tree predates it.
  const char* sha = std::getenv("SGA_GIT_SHA");
  doc_.set("git_sha", sha != nullptr && *sha != '\0' ? sha : SGA_GIT_SHA);
  doc_.set("build_type", SGA_BUILD_TYPE);
}

void BenchReport::context(const std::string& key, Json value) {
  context_.set(key, std::move(value));
}

BenchRecord::BenchRecord(BenchReport& report, const std::string& name)
    : report_(report) {
  row_ = Json::object();
  row_.set("name", name);
}

BenchRecord::~BenchRecord() { report_.commit_record(std::move(row_)); }

void BenchReport::add_table(const std::string& id, const sga::Table& table) {
  Json t = Json::object();
  t.set("id", id);
  if (!table.title().empty()) t.set("title", table.title());
  Json cols = Json::array();
  for (const auto& h : table.header()) cols.push(h);
  t.set("columns", std::move(cols));
  Json rows = Json::array();
  for (const auto& row : table.cells()) {
    Json r = Json::object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.set(table.header()[c], row[c]);
    }
    rows.push(std::move(r));
  }
  t.set("rows", std::move(rows));
  tables_.push(std::move(t));
}

void BenchReport::metrics(const MetricsRegistry& registry) {
  doc_.set("metrics", registry.to_json());
}

std::string BenchReport::write() {
  written_ = true;
  const char* toggle = std::getenv("SGA_BENCH_JSON");
  if (toggle != nullptr && std::string(toggle) == "0") return "";

  if (!context_.members().empty()) doc_.set("context", context_);
  doc_.set("records", records_);
  if (!tables_.elements().empty()) doc_.set("tables", tables_);

  const char* dir = std::getenv("SGA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) : ".";
  if (path.back() != '/') path += '/';
  path += "BENCH_" + name_ + ".json";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] could not open " << path
              << " for writing; JSON report skipped\n";
    return "";
  }
  out << doc_.dump(2);
  if (!out) {
    std::cerr << "[obs] short write to " << path << "\n";
    return "";
  }
  return path;
}

BenchReport::~BenchReport() {
  if (!written_) write();
}

std::string validate_bench_json(const Json& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) return "missing key: schema";
  if (schema->as_string() != "sga-bench-v1") {
    return "unknown schema: " + schema->as_string();
  }
  for (const char* key : {"bench", "git_sha", "build_type"}) {
    const Json* v = doc.find(key);
    if (v == nullptr || !v->is_string()) {
      return std::string("missing key: ") + key;
    }
  }
  const Json* records = doc.find("records");
  if (records == nullptr || !records->is_array()) {
    return "missing key: records";
  }
  for (const Json& r : records->elements()) {
    if (!r.is_object()) return "record is not an object";
    const Json* name = r.find("name");
    if (name == nullptr || !name->is_string()) {
      return "record without a string name";
    }
    for (const char* key : {"T", "spikes", "wall_ns", "events"}) {
      const Json* v = r.find(key);
      if (v != nullptr && !v->is_number()) {
        return "record '" + name->as_string() + "': " + key +
               " is not numeric";
      }
    }
  }
  return "";
}

}  // namespace sga::obs
