// Minimal JSON value: enough to write (and read back) the repo's own
// machine-readable artifacts — BENCH_*.json bench trajectories and
// MetricsRegistry dumps — with zero external dependencies.
//
// Deliberately small: objects preserve insertion order (diffable output),
// numbers are stored as int64/uint64/double without automatic narrowing,
// and the parser accepts exactly the subset the writer produces (RFC 8259
// minus \uXXXX escapes, which the writer never emits for our ASCII keys).
// This is an observability format, not a general interchange layer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sga::obs {

/// A JSON document node. Construct with the static factories (or the
/// implicit conversions for leaves), compose with set()/push(), serialize
/// with dump().
class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,     // int64
    kUint,    // uint64 (kept separate so counters never round-trip lossy)
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                   // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}             // NOLINT
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}              // NOLINT
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}          // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                    // NOLINT

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  // ---- leaves ----------------------------------------------------------
  bool as_bool() const;
  /// Any numeric kind, widened to double.
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;

  // ---- composition -----------------------------------------------------
  /// Object: set `key` (inserting or overwriting), returns *this for
  /// chaining. Requires is_object().
  Json& set(const std::string& key, Json value);
  /// Array: append. Requires is_array().
  Json& push(Json value);

  // ---- lookup ----------------------------------------------------------
  /// Object member or nullptr (also nullptr when not an object).
  const Json* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  /// Ordered object members / array elements.
  const std::vector<std::pair<std::string, Json>>& members() const;
  const std::vector<Json>& elements() const;

  // ---- serialization ---------------------------------------------------
  /// Serialize; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

  /// Parse a document. Throws sga::InvalidArgument with position info on
  /// malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace sga::obs
