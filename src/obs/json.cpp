#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/error.h"

namespace sga::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  SGA_REQUIRE(std::isfinite(v), "Json: non-finite double " << v);
  char buf[32];
  // %.17g round-trips every double; trim to the shortest representation
  // that still parses back equal would be nicer but is not worth the code.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  // Keep doubles visually distinct from ints so the parser (and humans)
  // preserve the kind.
  if (out.find_first_of(".eE", out.size() - std::char_traits<char>::length(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

}  // namespace

bool Json::as_bool() const {
  SGA_REQUIRE(kind_ == Kind::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: SGA_REQUIRE(false, "Json: not a number"); return 0.0;
  }
}

std::int64_t Json::as_int() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint:
      SGA_REQUIRE(uint_ <= static_cast<std::uint64_t>(
                               std::numeric_limits<std::int64_t>::max()),
                  "Json: uint " << uint_ << " does not fit int64");
      return static_cast<std::int64_t>(uint_);
    default: SGA_REQUIRE(false, "Json: not an integer"); return 0;
  }
}

std::uint64_t Json::as_uint() const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      SGA_REQUIRE(int_ >= 0, "Json: negative int " << int_ << " as uint");
      return static_cast<std::uint64_t>(int_);
    default: SGA_REQUIRE(false, "Json: not an integer"); return 0;
  }
}

const std::string& Json::as_string() const {
  SGA_REQUIRE(kind_ == Kind::kString, "Json: not a string");
  return str_;
}

Json& Json::set(const std::string& key, Json value) {
  SGA_REQUIRE(kind_ == Kind::kObject, "Json::set on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  SGA_REQUIRE(kind_ == Kind::kArray, "Json::push on non-array");
  arr_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  SGA_REQUIRE(kind_ == Kind::kObject, "Json::members on non-object");
  return obj_;
}

const std::vector<Json>& Json::elements() const {
  SGA_REQUIRE(kind_ == Kind::kArray, "Json::elements on non-array");
  return arr_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---- parser -------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json j = parse_value();
    skip_ws();
    SGA_REQUIRE(pos_ == text_.size(),
                "Json::parse: trailing garbage at offset " << pos_);
    return j;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("Json::parse: " + what + " at offset " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json j = Json::object();
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      j.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return j;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json j = Json::array();
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    while (true) {
      j.push(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return j;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // Only the control-character escapes our writer emits (< 0x20).
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const char* b = text_.data() + start;
    const char* e = text_.data() + pos_;
    if (!is_double) {
      if (text_[start] == '-') {
        std::int64_t v = 0;
        const auto res = std::from_chars(b, e, v);
        if (res.ec == std::errc() && res.ptr == e) return Json(v);
      } else {
        std::uint64_t v = 0;
        const auto res = std::from_chars(b, e, v);
        if (res.ec == std::errc() && res.ptr == e) {
          if (v <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            return Json(static_cast<std::int64_t>(v));
          }
          return Json(v);
        }
      }
      // Out-of-range integer: fall through to double.
    }
    double v = 0.0;
    const auto res = std::from_chars(b, e, v);
    if (res.ec != std::errc() || res.ptr != e) fail("bad number");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace sga::obs
