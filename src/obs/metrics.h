// Structured runtime metrics: named counters, gauges, and monotonic-clock
// timers that instrumented components (snn::Simulator, the batch driver,
// the circuit harness) register into.
//
// Concurrency model (docs/OBSERVABILITY.md): a MetricsRegistry is NOT
// thread-safe and is never shared across threads. Instrumented code reports
// to the registry installed for the CURRENT thread via set_thread_metrics();
// multi-threaded drivers (nga::spiking_sssp_batch) give each worker its own
// registry and merge() them after join — aggregation without a single
// contended atomic or lock on any hot path. When no registry is installed
// (the default), every instrumentation site costs exactly one branch on the
// thread-local pointer.
//
// Naming scheme: dot-separated `component.metric[.unit]`, e.g. `sim.spikes`,
// `sim.run_ns`, `batch.sources`, `circuits.evals`. Units: `_ns` suffix for
// monotonic nanoseconds; unsuffixed counters are event counts.
#pragma once

#include <cstdint>
#include <chrono>
#include <map>
#include <string>

#include "obs/json.h"

namespace sga::obs {

/// Aggregate of one named timer: number of timed sections, total and max
/// duration in nanoseconds (steady_clock).
struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

class MetricsRegistry {
 public:
  /// counter += delta (creating it at 0).
  void add(const std::string& name, std::uint64_t delta = 1);
  /// gauge = value (last write wins; merge keeps the other's on conflict
  /// only if this registry lacks the key).
  void gauge(const std::string& name, double value);
  /// Record one timed section of `ns` nanoseconds (ScopedTimer calls this).
  void record_time(const std::string& name, std::uint64_t ns);

  std::uint64_t counter(const std::string& name) const;
  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, TimerStat>& timers() const { return timers_; }

  /// Fold another registry into this one: counters and timer counts/totals
  /// add, timer max takes the max, gauges keep the first-seen value.
  void merge(const MetricsRegistry& other);

  void clear();
  bool empty() const {
    return counters_.empty() && gauges_.empty() && timers_.empty();
  }

  /// {"counters": {...}, "gauges": {...}, "timers": {name: {count,
  /// total_ns, max_ns}}} — empty sections omitted.
  Json to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
};

/// The current thread's registry, or nullptr when instrumentation is off
/// (the default). Instrumented code MUST treat nullptr as "do nothing".
MetricsRegistry* thread_metrics();

/// Install `reg` (may be nullptr) as the current thread's registry and
/// return the previous one — restore it when done (ScopedThreadMetrics
/// does this automatically).
MetricsRegistry* set_thread_metrics(MetricsRegistry* reg);

/// RAII: install a registry for the current scope, restore on exit.
class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(MetricsRegistry* reg)
      : prev_(set_thread_metrics(reg)) {}
  ~ScopedThreadMetrics() { set_thread_metrics(prev_); }
  ScopedThreadMetrics(const ScopedThreadMetrics&) = delete;
  ScopedThreadMetrics& operator=(const ScopedThreadMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

/// RAII timer: measures its own lifetime on the steady clock and records
/// it into `reg` (no-op when reg is nullptr, cost = one branch + two clock
/// reads when enabled, one branch when not).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* reg, std::string name)
      : reg_(reg), name_(std::move(name)) {
    if (reg_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (reg_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    reg_->record_time(name_, static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* reg_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sga::obs
