#include "obs/probe.h"

#include <algorithm>
#include <utility>

#include "core/error.h"

namespace sga::obs {

Probe::Probe(ProbeOptions options) : opt_(std::move(options)) {}

void Probe::bind(std::size_t num_neurons) {
  tracing_ = opt_.trace_spikes;
  trace_all_ = opt_.trace_filter.empty();
  count_fires_ = opt_.count_fires;
  count_deliveries_ = opt_.count_deliveries;

  if (count_fires_) fires_.assign(num_neurons, 0);
  if (count_deliveries_) deliveries_.assign(num_neurons, 0);

  traced_.assign(tracing_ && !trace_all_ ? num_neurons : 0, 0);
  for (const NeuronId id : opt_.trace_filter) {
    SGA_REQUIRE(id < num_neurons, "Probe: trace filter neuron " << id
                                      << " out of range (n = " << num_neurons
                                      << ")");
    if (tracing_) traced_[id] = 1;
  }

  sampled_.assign(opt_.sample_potentials.empty() ? 0 : num_neurons, 0);
  sampled_ids_.clear();
  for (const NeuronId id : opt_.sample_potentials) {
    SGA_REQUIRE(id < num_neurons, "Probe: sampled neuron " << id
                                      << " out of range (n = " << num_neurons
                                      << ")");
    if (!sampled_[id]) {
      sampled_[id] = 1;
      sampled_ids_.push_back(id);
    }
  }
  clear();
  bound_ = true;
}

std::uint64_t Probe::fires(NeuronId id) const {
  SGA_REQUIRE(count_fires_, "Probe: count_fires not enabled");
  SGA_REQUIRE(id < fires_.size(), "Probe::fires: bad neuron " << id);
  return fires_[id];
}

std::uint64_t Probe::deliveries(NeuronId id) const {
  SGA_REQUIRE(count_deliveries_, "Probe: count_deliveries not enabled");
  SGA_REQUIRE(id < deliveries_.size(),
              "Probe::deliveries: bad neuron " << id);
  return deliveries_[id];
}

void Probe::absorb_shards(const std::vector<const Probe*>& shards) {
  SGA_REQUIRE(bound_, "Probe::absorb_shards: probe is not bound");
  const std::size_t trace_base = trace_.size();
  const std::size_t samples_base = samples_.size();
  for (const Probe* shard : shards) {
    if (shard == nullptr) continue;
    for (std::size_t i = 0; i < shard->fires_.size(); ++i) {
      fires_[i] += shard->fires_[i];
    }
    total_fires_ += shard->total_fires_;
    for (std::size_t i = 0; i < shard->deliveries_.size(); ++i) {
      deliveries_[i] += shard->deliveries_[i];
    }
    total_deliveries_ += shard->total_deliveries_;
    trace_.insert(trace_.end(), shard->trace_.begin(), shard->trace_.end());
    samples_.insert(samples_.end(), shard->samples_.begin(),
                    shard->samples_.end());
  }
  // Canonicalize only the newly absorbed run: a neuron fires (and is
  // sampled) at most once per time step, so (time, neuron) totally orders
  // each run's events.
  std::sort(trace_.begin() + static_cast<std::ptrdiff_t>(trace_base),
            trace_.end());
  std::sort(samples_.begin() + static_cast<std::ptrdiff_t>(samples_base),
            samples_.end(), [](const PotentialSample& a,
                               const PotentialSample& b) {
              return a.time != b.time ? a.time < b.time : a.neuron < b.neuron;
            });
}

void Probe::clear() {
  trace_.clear();
  samples_.clear();
  std::fill(fires_.begin(), fires_.end(), 0);
  std::fill(deliveries_.begin(), deliveries_.end(), 0);
  total_fires_ = 0;
  total_deliveries_ = 0;
}

}  // namespace sga::obs
