#include "obs/probe.h"

#include <algorithm>
#include <utility>

#include "core/error.h"

namespace sga::obs {

Probe::Probe(ProbeOptions options) : opt_(std::move(options)) {}

void Probe::bind(std::size_t num_neurons) {
  tracing_ = opt_.trace_spikes;
  trace_all_ = opt_.trace_filter.empty();
  count_fires_ = opt_.count_fires;
  count_deliveries_ = opt_.count_deliveries;

  if (count_fires_) fires_.assign(num_neurons, 0);
  if (count_deliveries_) deliveries_.assign(num_neurons, 0);

  traced_.assign(tracing_ && !trace_all_ ? num_neurons : 0, 0);
  for (const NeuronId id : opt_.trace_filter) {
    SGA_REQUIRE(id < num_neurons, "Probe: trace filter neuron " << id
                                      << " out of range (n = " << num_neurons
                                      << ")");
    if (tracing_) traced_[id] = 1;
  }

  sampled_.assign(opt_.sample_potentials.empty() ? 0 : num_neurons, 0);
  sampled_ids_.clear();
  for (const NeuronId id : opt_.sample_potentials) {
    SGA_REQUIRE(id < num_neurons, "Probe: sampled neuron " << id
                                      << " out of range (n = " << num_neurons
                                      << ")");
    if (!sampled_[id]) {
      sampled_[id] = 1;
      sampled_ids_.push_back(id);
    }
  }
  clear();
  bound_ = true;
}

std::uint64_t Probe::fires(NeuronId id) const {
  SGA_REQUIRE(count_fires_, "Probe: count_fires not enabled");
  SGA_REQUIRE(id < fires_.size(), "Probe::fires: bad neuron " << id);
  return fires_[id];
}

std::uint64_t Probe::deliveries(NeuronId id) const {
  SGA_REQUIRE(count_deliveries_, "Probe: count_deliveries not enabled");
  SGA_REQUIRE(id < deliveries_.size(),
              "Probe::deliveries: bad neuron " << id);
  return deliveries_[id];
}

void Probe::clear() {
  trace_.clear();
  samples_.clear();
  std::fill(fires_.begin(), fires_.end(), 0);
  std::fill(deliveries_.begin(), deliveries_.end(), 0);
  total_fires_ = 0;
  total_deliveries_ = 0;
}

}  // namespace sga::obs
