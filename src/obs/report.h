// Machine-readable bench output: every bench binary mirrors its printed
// tables into a `BENCH_<name>.json` file so performance and cost numbers
// form a trajectory across commits instead of scrollback.
//
// Schema "sga-bench-v1" (docs/OBSERVABILITY.md has the worked example):
//   {
//     "schema":     "sga-bench-v1",
//     "bench":      "<name>",
//     "git_sha":    "<short sha or 'unknown'>",
//     "build_type": "<CMAKE_BUILD_TYPE>",
//     "context":    { ... free-form run configuration (queue kind, ...) },
//     "records":    [ {"name": "...", "T": .., "spikes": .., "wall_ns": ..,
//                      "events": .., ...}, ... ],
//     "tables":     [ {"id": "...", "title": "...", "columns": [...],
//                      "rows": [{col: cell, ...}, ...]}, ... ],
//     "metrics":    { MetricsRegistry::to_json() }        (optional)
//   }
// `records` carry the four canonical observables — Definition-3 execution
// time `T` (SNN steps), `spikes` (the energy proxy), `wall_ns` (monotonic
// wall time), `events` (synaptic deliveries) — plus any extra keys; absent
// observables are simply omitted. `tables` are the printed ASCII tables,
// cells as strings, for lossless diffing. bench_compare consumes the
// records; CI validates the schema keys.
//
// Output location: $SGA_BENCH_JSON_DIR if set, else the working directory.
// Set SGA_BENCH_JSON=0 to suppress writing entirely (benches stay pure
// text, e.g. under the repo-wide smoke loop on a read-only mount).
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sga {
class Table;
}  // namespace sga

namespace sga::obs {

class BenchReport;

/// One bench run's record under construction. Returned by
/// BenchReport::record(); setters chain. The row is appended to the report
/// when the builder is destroyed (for the usual chained temporary, at the
/// end of the statement).
class BenchRecord {
 public:
  BenchRecord(BenchReport& report, const std::string& name);
  ~BenchRecord();
  BenchRecord(BenchRecord&&) = delete;
  BenchRecord(const BenchRecord&) = delete;

  /// Definition-3 execution time in SNN steps.
  BenchRecord& T(std::int64_t steps) { return set("T", Json(steps)); }
  /// Total spike count (the paper's energy proxy).
  BenchRecord& spikes(std::uint64_t n) { return set("spikes", Json(n)); }
  /// Monotonic wall time in nanoseconds.
  BenchRecord& wall_ns(std::uint64_t ns) { return set("wall_ns", Json(ns)); }
  /// Event count (synaptic deliveries processed).
  BenchRecord& events(std::uint64_t n) { return set("events", Json(n)); }
  /// Any additional key.
  BenchRecord& set(const std::string& key, Json value) {
    row_.set(key, std::move(value));
    return *this;
  }

 private:
  BenchReport& report_;
  Json row_;
};

class BenchReport {
 public:
  /// `name` is the bench id without the BENCH_ prefix or extension, e.g.
  /// "simulator" -> BENCH_simulator.json.
  explicit BenchReport(std::string name);

  /// Free-form run configuration recorded once per file (queue kind,
  /// workload sizes, thread counts...).
  void context(const std::string& key, Json value);

  /// Build a named record; fill it through the returned builder (appended
  /// when the builder dies). Names should be stable across commits —
  /// bench_compare joins on them.
  BenchRecord record(const std::string& name) {
    return BenchRecord(*this, name);
  }

  /// Mirror a printed ASCII table (columns/rows as strings).
  void add_table(const std::string& id, const sga::Table& table);

  /// Attach a metrics dump (e.g. the registry a batch run filled).
  void metrics(const MetricsRegistry& registry);

  /// The document built so far.
  const Json& json() const { return doc_; }

  /// Write BENCH_<name>.json (pretty-printed) into $SGA_BENCH_JSON_DIR or
  /// the working directory; returns the path, or "" when writing is
  /// suppressed (SGA_BENCH_JSON=0) or fails (reported on stderr — a bench
  /// must never die because a results file could not be written).
  /// Called automatically by the destructor unless already written.
  std::string write();

  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

 private:
  friend class BenchRecord;
  void commit_record(Json row) { records_.push(std::move(row)); }

  std::string name_;
  Json doc_;
  Json records_ = Json::array();
  Json tables_ = Json::array();
  Json context_ = Json::object();
  bool written_ = false;
};

/// Schema check used by bench_compare --validate and the CI smoke job:
/// returns an empty string when `doc` is a well-formed sga-bench-v1
/// document, else a description of the first problem.
std::string validate_bench_json(const Json& doc);

}  // namespace sga::obs
