// Spike probe: opt-in, per-run instrumentation attached to snn::Simulator.
//
// Overhead contract (docs/OBSERVABILITY.md): the simulator keeps ONE cached
// `obs::Probe*`; every hook site in the hot path is a single branch on that
// pointer, placed OUTSIDE the per-delivery accumulation loop (per drained
// bucket / per fired neuron), so a simulator with no probe attached runs
// the exact pre-instrumentation loop plus a handful of predicted-not-taken
// branches. Probes never change simulation semantics — an instrumented run
// is event-for-event identical to an uninstrumented one (fuzzed in
// test_fuzz_agreement.cpp).
//
// What a probe can record (each independently switchable):
//   * spike trace   — every (time, neuron) fire event, optionally filtered
//                     to a neuron-id subset (the simulator's own spike log
//                     serves algorithm read-out; the probe trace serves
//                     observability and can coexist with it);
//   * fire counters — per-neuron spike counts;
//   * delivery counters — per-neuron counts of synaptic deliveries
//                     RECEIVED (the energy-relevant fan-in traffic);
//   * membrane-potential samples — (time, neuron, v) whenever a REGISTERED
//                     neuron's potential is updated by a delivery step
//                     (post-leak, post-integration; the reset value when
//                     the update made it fire).
//
// A probe accumulates across Simulator::reset() cycles (reset rewinds the
// simulation, not the observer); call clear() between runs for per-run
// data. One probe serves one simulator at a time (bind() sizes the
// per-neuron arrays at attach).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sga::obs {

struct ProbeOptions {
  /// Record the (time, neuron) trace of every fire event.
  bool trace_spikes = false;
  /// If non-empty (and trace_spikes), only these neurons are traced.
  std::vector<NeuronId> trace_filter;
  /// Count spikes per neuron.
  bool count_fires = false;
  /// Count synaptic deliveries received per neuron.
  bool count_deliveries = false;
  /// Sample the membrane potential of these neurons at every update.
  std::vector<NeuronId> sample_potentials;

  /// Memberwise equality — the service worker pool reuses a pooled Probe
  /// only when the request asks for the exact same recording configuration.
  bool operator==(const ProbeOptions&) const = default;
};

class Probe {
 public:
  struct PotentialSample {
    Time time;
    NeuronId neuron;
    Voltage v;
    bool operator==(const PotentialSample&) const = default;
  };

  explicit Probe(ProbeOptions options = {});

  /// Size the per-neuron arrays for a network of n neurons. Called by
  /// Simulator::attach_probe; throws if a filter id is out of range.
  void bind(std::size_t num_neurons);
  bool bound() const { return bound_; }

  const ProbeOptions& options() const { return opt_; }

  // ---- recorded data ---------------------------------------------------
  const std::vector<std::pair<Time, NeuronId>>& spike_trace() const {
    return trace_;
  }
  std::uint64_t fires(NeuronId id) const;
  const std::vector<std::uint64_t>& fire_counts() const { return fires_; }
  std::uint64_t total_fires() const { return total_fires_; }
  std::uint64_t deliveries(NeuronId id) const;
  const std::vector<std::uint64_t>& delivery_counts() const {
    return deliveries_;
  }
  std::uint64_t total_deliveries() const { return total_deliveries_; }
  const std::vector<PotentialSample>& potential_samples() const {
    return samples_;
  }

  /// Drop recorded data (bind()ing and options are kept).
  void clear();

  /// Fold per-shard probes (same options, bound to the same network) into
  /// this one — the merge step of snn::ParallelSimulator's per-shard
  /// recording. Counters add; the shards' spike traces and potential
  /// samples are merged into canonical (time, neuron id) order and
  /// APPENDED to any data this probe already holds, so accumulation
  /// across reset() cycles keeps working.
  void absorb_shards(const std::vector<const Probe*>& shards);

  // ---- hot-path hooks (called by snn::Simulator; see overhead contract
  // above — the simulator guards every call with its cached pointer) -----
  void on_spike(Time t, NeuronId id) {
    if (count_fires_) {
      ++fires_[id];
      ++total_fires_;
    }
    if (tracing_ && (trace_all_ || traced_[id])) trace_.emplace_back(t, id);
  }
  void on_delivery(NeuronId target) {
    if (count_deliveries_) {
      ++deliveries_[target];
      ++total_deliveries_;
    }
  }
  bool counts_deliveries() const { return count_deliveries_; }
  /// Whether any neuron's potential is being sampled (the simulator skips
  /// its sampling pass entirely when false).
  bool samples_potentials() const { return !sampled_ids_.empty(); }
  void on_potential(Time t, NeuronId id, Voltage v) {
    if (sampled_[id]) samples_.push_back({t, id, v});
  }

 private:
  ProbeOptions opt_;
  bool bound_ = false;
  bool tracing_ = false;
  bool trace_all_ = false;
  bool count_fires_ = false;
  bool count_deliveries_ = false;

  std::vector<char> traced_;
  std::vector<char> sampled_;
  std::vector<NeuronId> sampled_ids_;
  std::vector<std::pair<Time, NeuronId>> trace_;
  std::vector<std::uint64_t> fires_;
  std::vector<std::uint64_t> deliveries_;
  std::uint64_t total_fires_ = 0;
  std::uint64_t total_deliveries_ = 0;
  std::vector<PotentialSample> samples_;
};

}  // namespace sga::obs
