// The Section-4.4 embedding: program an arbitrary n-vertex graph G into the
// crossbar H_n so that shortest paths are preserved exactly (up to the
// global length scaling), and run the spiking SSSP of Section 3 on the
// embedded network to measure the embedding cost (the O(n)-factor blowup
// discussed in Section 4.5 and Table 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "crossbar/crossbar.h"
#include "graph/graph.h"
#include "nga/sssp_event.h"

namespace sga::crossbar {

struct EmbeddingResult {
  /// Multiplicative length scaling applied so that every edge length is
  /// ≥ 2n (making every Type-2 delay ≥ 1). Distances in the host equal
  /// scale × distances in G.
  Weight scale = 1;
  /// Delay writes used (must be O(m): one per graph edge).
  std::uint64_t delay_writes = 0;
};

/// Program `machine` (of order ≥ g.num_vertices()) to represent g.
/// Pre-existing Type-2 programming must be cleared first (see unembed).
EmbeddingResult embed(CrossbarMachine& machine, const Graph& g);

/// Remove g's edges from the machine (the "unembed" step of the
/// multi-graph protocol; costs one delay write per edge of g).
void unembed(CrossbarMachine& machine, const Graph& g);

/// Distances in G recovered by running a conventional SSSP on the embedded
/// host graph: dist_G(s, v) = dist_H(v⁻_ss, v⁻_vv) / scale. Used as the
/// structural correctness check of the embedding.
std::vector<Weight> embedded_distances_conventional(
    const CrossbarMachine& machine, const EmbeddingResult& emb,
    std::size_t n_vertices, VertexId source);

struct EmbeddedSsspResult {
  std::vector<Weight> dist;  ///< distances in G's original lengths
  Time execution_time = 0;   ///< SNN steps on the crossbar (the O(nL) term)
  Weight scale = 1;
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  std::uint64_t spikes = 0;
};

/// Run the Section-3 spiking SSSP on the embedded crossbar network: the
/// physical realisation whose execution time carries the embedding cost.
EmbeddedSsspResult spiking_sssp_on_crossbar(const Graph& g, VertexId source,
                                            std::optional<VertexId> target =
                                                std::nullopt);

}  // namespace sga::crossbar
