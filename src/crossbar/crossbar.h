// The stacked grid ("crossbar") H_n of Section 4.4 (Figure 2) — the
// grid-like network topology the paper assumes every neuromorphic
// architecture reasonably contains — and the mutable machine that embeds
// input graphs into it by programming Type-2 delays.
//
// Vertices: v⁻_ij and v⁺_ij for i, j ∈ [n]. Intuition: the "+" row i routes
// from the diagonal v⁺_ii outward to any column; crossing edge (Type 2) at
// (i, j) drops into the "−" column j, which routes back to the diagonal
// v⁻_jj. Graph vertex i is represented by the diagonal pair
// (v⁻_ii, v⁺_ii); graph edge i→j corresponds to the Type-2 edge
// v⁺_ij → v⁻_ij.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"

namespace sga::crossbar {

/// The six edge types of the Section 4.4 definition.
enum class EdgeType : std::uint8_t {
  kDiagonal = 1,  ///< v⁻_ii → v⁺_ii
  kCross = 2,     ///< v⁺_ij → v⁻_ij (i ≠ j) — programmable (graph edges)
  kRowRight = 3,  ///< v⁺_ij → v⁺_i(j+1), i ≤ j
  kRowLeft = 4,   ///< v⁺_i(j+1) → v⁺_ij, i > j
  kColDown = 5,   ///< v⁻_ij → v⁻_(i+1)j, i < j
  kColUp = 6,     ///< v⁻_(i+1)j → v⁻_ij, i ≥ j
};

/// Static structure of H_n: vertex numbering and the fixed (Type 1,3,4,5,6)
/// edges, which always have delay δ = 1.
class Crossbar {
 public:
  /// Order n ≥ 1 (H_n has 2n² vertices).
  explicit Crossbar(std::size_t n);

  std::size_t order() const { return n_; }
  std::size_t num_vertices() const { return 2 * n_ * n_; }

  /// Vertex ids (i, j are 0-based here; the paper is 1-based).
  VertexId minus(std::size_t i, std::size_t j) const;
  VertexId plus(std::size_t i, std::size_t j) const;

  /// The diagonal vertex representing graph vertex v.
  VertexId graph_vertex(VertexId v) const { return minus(v, v); }

  /// All fixed edges (delay 1), as (from, to, type) triples.
  struct FixedEdge {
    VertexId from, to;
    EdgeType type;
  };
  const std::vector<FixedEdge>& fixed_edges() const { return fixed_; }

  /// Number of Type-2 (programmable) slots: n(n-1).
  std::size_t num_cross_slots() const { return n_ * (n_ - 1); }

 private:
  void check_ij(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::vector<FixedEdge> fixed_;
};

/// A crossbar with programmable Type-2 delays: the "SNA hardware" that
/// graphs are embedded into and unembedded from (Section 4.4's multi-graph
/// protocol). Only Type-2 edges are ever touched, so embedding G costs
/// O(m) delay writes — which the machine counts.
class CrossbarMachine {
 public:
  explicit CrossbarMachine(std::size_t n);

  const Crossbar& topology() const { return xbar_; }

  /// Program the Type-2 delay for slot (i, j), i ≠ j.
  void set_cross_delay(std::size_t i, std::size_t j, Delay d);
  /// Disable (infinite delay).
  void clear_cross_delay(std::size_t i, std::size_t j);
  std::optional<Delay> cross_delay(std::size_t i, std::size_t j) const;

  /// Delay writes performed so far (the O(m) embed/unembed cost).
  std::uint64_t delay_writes() const { return delay_writes_; }
  /// Currently programmed (finite) Type-2 edges.
  std::size_t active_cross_edges() const { return active_; }

  /// Materialize the current configuration as a weighted graph (edge length
  /// = delay) for simulation. Disabled Type-2 edges are omitted.
  Graph snapshot() const;

 private:
  Crossbar xbar_;
  std::vector<Delay> cross_;  // 0 = disabled
  std::uint64_t delay_writes_ = 0;
  std::size_t active_ = 0;
};

}  // namespace sga::crossbar
