#include "crossbar/embedding.h"

#include <algorithm>
#include <cstdlib>

#include "core/error.h"
#include "graph/dijkstra.h"

namespace sga::crossbar {

namespace {

Weight embedding_scale(const CrossbarMachine& machine, const Graph& g) {
  const auto n = static_cast<Weight>(machine.topology().order());
  const Weight lmin = g.min_edge_length();
  SGA_REQUIRE(lmin >= 1, "embed: graph must have at least one edge");
  // Scale so the smallest length is at least 2n (Section 4.4), which keeps
  // every Type-2 delay ℓ(ij) − 2|i−j| − 1 ≥ 2n − 2(n−1) − 1 = 1.
  return (2 * n + lmin - 1) / lmin;
}

}  // namespace

EmbeddingResult embed(CrossbarMachine& machine, const Graph& g) {
  SGA_REQUIRE(g.num_vertices() <= machine.topology().order(),
              "embed: graph order " << g.num_vertices()
                                    << " exceeds crossbar order "
                                    << machine.topology().order());
  SGA_REQUIRE(machine.active_cross_edges() == 0,
              "embed: machine still holds a previous embedding (unembed it)");
  EmbeddingResult r;
  r.scale = embedding_scale(machine, g);
  const std::uint64_t before = machine.delay_writes();
  for (const auto& e : g.edges()) {
    SGA_REQUIRE(e.from != e.to,
                "embed: self-loops have no Type-2 slot in H_n");
    const auto gap = static_cast<Delay>(
        2 * std::llabs(static_cast<long long>(e.from) -
                       static_cast<long long>(e.to)) +
        1);
    const Delay d = r.scale * e.length - gap;
    SGA_CHECK(d >= 1, "Type-2 delay underflow for edge " << e.from << "->"
                                                         << e.to);
    machine.set_cross_delay(e.from, e.to, d);
  }
  r.delay_writes = machine.delay_writes() - before;
  return r;
}

void unembed(CrossbarMachine& machine, const Graph& g) {
  for (const auto& e : g.edges()) {
    machine.clear_cross_delay(e.from, e.to);
  }
}

std::vector<Weight> embedded_distances_conventional(
    const CrossbarMachine& machine, const EmbeddingResult& emb,
    std::size_t n_vertices, VertexId source) {
  const Graph host = machine.snapshot();
  const auto& xb = machine.topology();
  const auto res = dijkstra(host, xb.graph_vertex(source));
  std::vector<Weight> dist(n_vertices, kInfiniteDistance);
  for (VertexId v = 0; v < n_vertices; ++v) {
    const Weight d = res.dist[xb.graph_vertex(v)];
    if (d >= kInfiniteDistance) continue;
    SGA_CHECK(d % emb.scale == 0, "host distance " << d
                                                   << " not divisible by scale "
                                                   << emb.scale);
    dist[v] = d / emb.scale;
  }
  return dist;
}

EmbeddedSsspResult spiking_sssp_on_crossbar(const Graph& g, VertexId source,
                                            std::optional<VertexId> target) {
  SGA_REQUIRE(source < g.num_vertices(), "bad source");
  CrossbarMachine machine(g.num_vertices());
  const EmbeddingResult emb = embed(machine, g);
  const Graph host = machine.snapshot();
  const auto& xb = machine.topology();

  nga::SpikingSsspOptions opt;
  opt.source = xb.graph_vertex(source);
  opt.record_parents = false;
  if (target) opt.target = xb.graph_vertex(*target);
  const nga::SpikingSsspResult run = nga::spiking_sssp(host, opt);

  EmbeddedSsspResult r;
  r.scale = emb.scale;
  r.neurons = run.neurons;
  r.synapses = run.synapses;
  r.spikes = run.sim.spikes;
  r.dist.assign(g.num_vertices(), kInfiniteDistance);
  // Execution time per the paper's termination rule: when every (reachable)
  // graph node — i.e. every diagonal vertex — has received its spike. Lane
  // vertices may keep spiking a little longer; that is routing residue, not
  // part of the answer.
  Time last_diagonal = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Weight d = run.dist[xb.graph_vertex(v)];
    if (d >= kInfiniteDistance) continue;
    SGA_CHECK(d % emb.scale == 0, "crossbar distance not scale-aligned");
    r.dist[v] = d / emb.scale;
    last_diagonal = std::max(last_diagonal, static_cast<Time>(d));
  }
  r.execution_time =
      target && run.sim.hit_terminal ? run.execution_time : last_diagonal;
  return r;
}

}  // namespace sga::crossbar
