#include "crossbar/crossbar.h"

#include "core/error.h"

namespace sga::crossbar {

Crossbar::Crossbar(std::size_t n) : n_(n) {
  SGA_REQUIRE(n >= 1, "Crossbar: order must be >= 1");
  // Enumerate the five fixed edge types (0-based translation of the
  // 1-based set definitions in Section 4.4).
  for (std::size_t i = 0; i < n; ++i) {
    fixed_.push_back({minus(i, i), plus(i, i), EdgeType::kDiagonal});  // (1)
  }
  // (3): v⁺_ij → v⁺_i(j+1) for i ≤ j (1-based) → 0-based i ≤ j, j+1 < n.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j + 1 < n; ++j) {
      fixed_.push_back({plus(i, j), plus(i, j + 1), EdgeType::kRowRight});
    }
  }
  // (4): v⁺_i(j+1) → v⁺_ij for i > j.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + 1 <= i && j + 1 < n; ++j) {
      fixed_.push_back({plus(i, j + 1), plus(i, j), EdgeType::kRowLeft});
    }
  }
  // (5): v⁻_ij → v⁻_(i+1)j for i < j.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i + 1 <= j && i + 1 < n; ++i) {
      fixed_.push_back({minus(i, j), minus(i + 1, j), EdgeType::kColDown});
    }
  }
  // (6): v⁻_(i+1)j → v⁻_ij for i ≥ j.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i + 1 < n; ++i) {
      fixed_.push_back({minus(i + 1, j), minus(i, j), EdgeType::kColUp});
    }
  }
}

void Crossbar::check_ij(std::size_t i, std::size_t j) const {
  SGA_REQUIRE(i < n_ && j < n_,
              "crossbar index (" << i << ", " << j << ") out of range for n="
                                 << n_);
}

VertexId Crossbar::minus(std::size_t i, std::size_t j) const {
  check_ij(i, j);
  return static_cast<VertexId>(i * n_ + j);
}

VertexId Crossbar::plus(std::size_t i, std::size_t j) const {
  check_ij(i, j);
  return static_cast<VertexId>(n_ * n_ + i * n_ + j);
}

CrossbarMachine::CrossbarMachine(std::size_t n)
    : xbar_(n), cross_(n * n, 0) {}

void CrossbarMachine::set_cross_delay(std::size_t i, std::size_t j, Delay d) {
  SGA_REQUIRE(i != j, "Type-2 edges require i != j");
  SGA_REQUIRE(d >= 1, "Type-2 delay must be >= δ = 1, got " << d);
  auto& slot = cross_[i * xbar_.order() + j];
  if (slot == 0) ++active_;
  slot = d;
  ++delay_writes_;
}

void CrossbarMachine::clear_cross_delay(std::size_t i, std::size_t j) {
  SGA_REQUIRE(i != j, "Type-2 edges require i != j");
  auto& slot = cross_[i * xbar_.order() + j];
  if (slot != 0) {
    --active_;
    ++delay_writes_;
  }
  slot = 0;
}

std::optional<Delay> CrossbarMachine::cross_delay(std::size_t i,
                                                  std::size_t j) const {
  SGA_REQUIRE(i < xbar_.order() && j < xbar_.order(), "slot out of range");
  const Delay d = cross_[i * xbar_.order() + j];
  if (d == 0) return std::nullopt;
  return d;
}

Graph CrossbarMachine::snapshot() const {
  Graph g(xbar_.num_vertices());
  for (const auto& e : xbar_.fixed_edges()) {
    g.add_edge(e.from, e.to, 1);
  }
  const std::size_t n = xbar_.order();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Delay d = cross_[i * n + j];
      if (d != 0) g.add_edge(xbar_.plus(i, j), xbar_.minus(i, j), d);
    }
  }
  return g;
}

}  // namespace sga::crossbar
