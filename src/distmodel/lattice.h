// The 2-D lattice memory geometry of the DISTANCE model (Definition 5):
// every word lives at a lattice point, c designated points are registers,
// and all movement costs are ℓ1 (Manhattan) distances — "data is stored in
// arrays of memory and is only accessible across rows or columns".
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/error.h"

namespace sga::distmodel {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline std::int64_t l1_distance(Point a, Point b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

/// Where the register block sits relative to the data (ablation knob; the
/// Ω(m^{3/2}/√c) bound of Theorem 6.1 is placement-independent, which the
/// bench demonstrates empirically).
enum class RegisterPlacement { kCenter, kCorner, kScattered };

/// Maps word addresses to lattice points. Data words occupy the points of a
/// near-square grid in row-major order; register points are disjoint from
/// data points (they displace no data — they sit on an adjacent row for
/// corner/center placements, or are interleaved for scattered).
class Lattice {
 public:
  Lattice(std::size_t num_words, std::size_t num_registers,
          RegisterPlacement placement);

  std::size_t num_words() const { return num_words_; }
  std::size_t num_registers() const { return registers_.size(); }

  /// Lattice point of word address a.
  Point word_point(std::size_t a) const;
  /// Lattice point of register r.
  Point register_point(std::size_t r) const {
    SGA_REQUIRE(r < registers_.size(), "register index out of range");
    return registers_[r];
  }

  /// ℓ1 distance from word a to its nearest register (the quantity the
  /// Theorem 6.1 argument sums).
  std::int64_t distance_to_nearest_register(std::size_t a) const;

  /// Side length of the data grid.
  std::size_t side() const { return side_; }

 private:
  std::size_t num_words_;
  std::size_t side_;
  std::vector<Point> registers_;
};

/// The three-dimensional variant mentioned after Theorem 6.1 ("we get
/// non-trivial lower bounds even if we only assume that the data reside in
/// three dimensions"): words on the points of a near-cubic grid, c register
/// points, ℓ1 distances.
class Lattice3 {
 public:
  Lattice3(std::size_t num_words, std::size_t num_registers);

  std::size_t num_words() const { return num_words_; }
  std::size_t side() const { return side_; }

  struct Point3 {
    std::int64_t x = 0, y = 0, z = 0;
  };
  Point3 word_point(std::size_t a) const;
  std::int64_t distance_to_nearest_register(std::size_t a) const;

 private:
  std::size_t num_words_;
  std::size_t side_;
  std::vector<Point3> registers_;
};

/// Σ_a d(a, nearest register) on the 3-D lattice — the exact floor any
/// full input scan must pay; Ω(m^{4/3}/c^{1/3}).
std::uint64_t exact_scan_floor_3d(const Lattice3& lattice);

}  // namespace sga::distmodel
