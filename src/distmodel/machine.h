// The DISTANCE-model machine: c registers over a 2-D lattice memory, with
// every operand movement charged its ℓ1 distance (Definition 5: the
// movement cost of an operation computing f(v1, v2) at register p_r and
// storing at p_3 is d(p1,pr) + d(p2,pr) + d(pr,p3)).
//
// The machine is an *upper-bound implementation* of the model: registers
// act as an LRU cache (a word already register-resident moves for free), so
// any algorithm's measured cost is a legitimate cost the model permits —
// and Theorem 6.1/6.2's Ω bounds must (and do) sit below it.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "distmodel/lattice.h"

namespace sga::distmodel {

using Word = std::int64_t;
using Addr = std::size_t;

struct MachineStats {
  std::uint64_t movement_cost = 0;  ///< total ℓ1 distance moved
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t register_hits = 0;  ///< operand already register-resident
  std::uint64_t operations = 0;     ///< ALU ops (for op-count comparisons)
};

class DistanceMachine {
 public:
  /// A machine with `c` registers and `num_words` of lattice memory.
  DistanceMachine(std::size_t c, std::size_t num_words,
                  RegisterPlacement placement = RegisterPlacement::kCenter);

  /// Allocate `size` consecutive words; returns the base address. Named for
  /// debuggability of the memory map.
  Addr allocate(const std::string& name, std::size_t size);

  /// Read memory[a] through a register (charges movement on miss).
  Word read(Addr a);
  /// Write v to memory[a] through a register (charges the write-back
  /// distance).
  void write(Addr a, Word v);
  /// Account one ALU operation on values already in registers.
  void op() { ++stats_.operations; }

  const MachineStats& stats() const { return stats_; }
  const Lattice& lattice() const { return lattice_; }
  std::size_t num_registers() const { return c_; }

  /// Raw (cost-free) access for test setup/verification only.
  Word peek(Addr a) const;
  void poke(Addr a, Word v);

 private:
  std::size_t nearest_register(Addr a) const;
  /// Make a register-resident (LRU eviction); charges the inbound move on a
  /// miss when charge_inbound is set (reads do, write-throughs don't).
  void touch(Addr a, bool charge_inbound);

  std::size_t c_;
  Lattice lattice_;
  std::vector<Word> mem_;
  std::size_t used_ = 0;
  MachineStats stats_;

  // LRU register file: set of resident addresses.
  std::list<Addr> lru_;  // front = most recent
  std::unordered_map<Addr, std::list<Addr>::iterator> resident_;
};

}  // namespace sga::distmodel
