// The Section-6 lower bounds, as concrete functions (with the proofs'
// explicit constants, not just Ω-shapes), plus the exact "sum of distances
// to the nearest register" quantity the proofs reason about.
#pragma once

#include <cstdint>

#include "distmodel/lattice.h"

namespace sga::distmodel {

/// Theorem 6.1 with the proof's constant: at least m/2 of the input words
/// are at distance ≥ √(m/c)/4 from every register, so any algorithm reading
/// the input moves data at least (m/2)·(√(m/c)/4) = m^{3/2}/(8√c).
double theorem61_bound(std::uint64_t m, std::uint64_t c);

/// Theorem 6.2: k rounds, each incurring the Theorem 6.1 cost.
double theorem62_bound(std::uint64_t k, std::uint64_t m, std::uint64_t c);

/// The 3-D analogue mentioned after Theorem 6.1: Ω(m^{4/3}) for c = O(1).
double bound_3d(std::uint64_t m, std::uint64_t c);

/// The exact optimum the proof's counting argument lower-bounds: the true
/// Σ_a d(a, nearest register) for this lattice. Any DISTANCE-model
/// execution that reads every word costs at least this much, and the
/// Theorem 6.1 formula must sit at or below it.
std::uint64_t exact_scan_floor(const Lattice& lattice);

}  // namespace sga::distmodel
