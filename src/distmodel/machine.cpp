#include "distmodel/machine.h"

namespace sga::distmodel {

DistanceMachine::DistanceMachine(std::size_t c, std::size_t num_words,
                                 RegisterPlacement placement)
    : c_(c), lattice_(num_words, c, placement), mem_(num_words, 0) {
  SGA_REQUIRE(c >= 1, "DistanceMachine: need at least one register");
}

Addr DistanceMachine::allocate(const std::string& name, std::size_t size) {
  SGA_REQUIRE(size >= 1, "allocate(" << name << "): empty allocation");
  SGA_REQUIRE(used_ + size <= mem_.size(),
              "allocate(" << name << "): out of lattice memory (" << used_
                          << " + " << size << " > " << mem_.size() << ")");
  const Addr base = used_;
  used_ += size;
  return base;
}

std::size_t DistanceMachine::nearest_register(Addr a) const {
  const Point p = lattice_.word_point(a);
  std::size_t best = 0;
  std::int64_t best_d = l1_distance(p, lattice_.register_point(0));
  for (std::size_t r = 1; r < c_; ++r) {
    const std::int64_t d = l1_distance(p, lattice_.register_point(r));
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

void DistanceMachine::touch(Addr a, bool charge_inbound) {
  if (const auto it = resident_.find(a); it != resident_.end()) {
    if (charge_inbound) ++stats_.register_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return;
  }
  if (charge_inbound) {
    // Miss: move the word from its home point to the nearest register.
    const std::size_t r = nearest_register(a);
    stats_.movement_cost += static_cast<std::uint64_t>(
        l1_distance(lattice_.word_point(a), lattice_.register_point(r)));
  }
  if (resident_.size() == c_) {
    const Addr victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
  }
  lru_.push_front(a);
  resident_[a] = lru_.begin();
}

Word DistanceMachine::read(Addr a) {
  SGA_REQUIRE(a < mem_.size(), "read: address " << a << " out of range");
  ++stats_.reads;
  touch(a, /*charge_inbound=*/true);
  return mem_[a];
}

void DistanceMachine::write(Addr a, Word v) {
  SGA_REQUIRE(a < mem_.size(), "write: address " << a << " out of range");
  ++stats_.writes;
  // The result travels from the register where it was computed back to its
  // home point (Definition 5's d(p_r, p_3) term).
  const std::size_t r = nearest_register(a);
  stats_.movement_cost += static_cast<std::uint64_t>(
      l1_distance(lattice_.register_point(r), lattice_.word_point(a)));
  mem_[a] = v;
  // The value is also still register-resident; no inbound charge.
  touch(a, /*charge_inbound=*/false);
}

Word DistanceMachine::peek(Addr a) const {
  SGA_REQUIRE(a < mem_.size(), "peek: address out of range");
  return mem_[a];
}

void DistanceMachine::poke(Addr a, Word v) {
  SGA_REQUIRE(a < mem_.size(), "poke: address out of range");
  mem_[a] = v;
}

}  // namespace sga::distmodel
