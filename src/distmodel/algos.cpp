#include "distmodel/algos.h"

#include <algorithm>

#include "core/error.h"

namespace sga::distmodel {

namespace {

/// Shared CSR layout in lattice memory.
struct CsrLayout {
  Addr offsets;  // n + 1 words
  Addr targets;  // m words
  Addr lengths;  // m words
  std::size_t n, m;
};

CsrLayout load_graph(DistanceMachine& mach, const Graph& g) {
  CsrLayout l;
  l.n = g.num_vertices();
  l.m = g.num_edges();
  l.offsets = mach.allocate("csr.offsets", l.n + 1);
  l.targets = mach.allocate("csr.targets", std::max<std::size_t>(1, l.m));
  l.lengths = mach.allocate("csr.lengths", std::max<std::size_t>(1, l.m));
  // Loading the graph is setup (the paper treats loading separately); use
  // cost-free pokes so the measured cost is the algorithm's own movement.
  std::size_t pos = 0;
  for (VertexId v = 0; v < l.n; ++v) {
    mach.poke(l.offsets + v, static_cast<Word>(pos));
    for (const EdgeId eid : g.out_edges(v)) {
      mach.poke(l.targets + pos, static_cast<Word>(g.edge(eid).to));
      mach.poke(l.lengths + pos, static_cast<Word>(g.edge(eid).length));
      ++pos;
    }
  }
  mach.poke(l.offsets + l.n, static_cast<Word>(pos));
  return l;
}

}  // namespace

DistanceRunResult scan_input(std::size_t m_words, std::size_t c,
                             RegisterPlacement placement) {
  SGA_REQUIRE(m_words >= 1, "scan_input: empty input");
  DistanceMachine mach(c, m_words, placement);
  const Addr base = mach.allocate("input", m_words);
  for (std::size_t i = 0; i < m_words; ++i) {
    mach.poke(base + i, static_cast<Word>(i * 2654435761ULL % 1000));
  }
  Word checksum = 0;
  for (std::size_t i = 0; i < m_words; ++i) {
    checksum += mach.read(base + i);
    mach.op();
  }
  DistanceRunResult r;
  r.dist = {checksum};
  r.machine = mach.stats();
  r.ops = mach.stats().operations;
  return r;
}

DistanceRunResult bellman_ford_khop_distance(const Graph& g, VertexId source,
                                             std::uint32_t k, std::size_t c,
                                             RegisterPlacement placement) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  SGA_REQUIRE(source < n, "bellman_ford_khop_distance: bad source");

  // Edge-list layout (the Section 6.2 algorithm relaxes all edges each
  // round): from[], to[], len[], plus dist_prev[] and dist_cur[].
  DistanceMachine mach(c, 3 * std::max<std::size_t>(1, m) + 2 * n + 4,
                       placement);
  const Addr from = mach.allocate("edges.from", std::max<std::size_t>(1, m));
  const Addr to = mach.allocate("edges.to", std::max<std::size_t>(1, m));
  const Addr len = mach.allocate("edges.len", std::max<std::size_t>(1, m));
  const Addr dprev = mach.allocate("dist.prev", n);
  const Addr dcur = mach.allocate("dist.cur", n);
  for (EdgeId e = 0; e < m; ++e) {
    mach.poke(from + e, static_cast<Word>(g.edge(e).from));
    mach.poke(to + e, static_cast<Word>(g.edge(e).to));
    mach.poke(len + e, static_cast<Word>(g.edge(e).length));
  }
  for (VertexId v = 0; v < n; ++v) {
    mach.poke(dprev + v, kInfiniteDistance);
    mach.poke(dcur + v, kInfiniteDistance);
  }
  mach.poke(dprev + source, 0);
  mach.poke(dcur + source, 0);

  for (std::uint32_t round = 1; round <= k; ++round) {
    // dist_prev <- dist_cur (charged: it is part of the per-round work).
    for (VertexId v = 0; v < n; ++v) {
      mach.write(dprev + v, mach.read(dcur + v));
    }
    for (EdgeId e = 0; e < m; ++e) {
      const auto u = static_cast<std::size_t>(mach.read(from + e));
      const Word du = mach.read(dprev + u);
      mach.op();
      if (du >= kInfiniteDistance) continue;
      const Word w = mach.read(len + e);
      const auto v = static_cast<std::size_t>(mach.read(to + e));
      const Word cand = du + w;
      mach.op();
      const Word dv = mach.read(dcur + v);
      mach.op();
      if (cand < dv) mach.write(dcur + v, cand);
    }
  }

  DistanceRunResult r;
  r.dist.resize(n);
  for (VertexId v = 0; v < n; ++v) r.dist[v] = mach.peek(dcur + v);
  r.machine = mach.stats();
  r.ops = mach.stats().operations;
  return r;
}

DistanceRunResult dijkstra_distance(const Graph& g, VertexId source,
                                    std::size_t c,
                                    RegisterPlacement placement) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  SGA_REQUIRE(source < n, "dijkstra_distance: bad source");

  // CSR + dist + settled + binary heap of (key, vertex) pairs.
  const std::size_t heap_cap = m + n + 1;
  DistanceMachine mach(
      c, (n + 1) + 2 * std::max<std::size_t>(1, m) + 2 * n + 2 * heap_cap + 8,
      placement);
  const CsrLayout csr = load_graph(mach, g);
  const Addr dist = mach.allocate("dist", n);
  const Addr settled = mach.allocate("settled", n);
  const Addr heap_key = mach.allocate("heap.key", heap_cap);
  const Addr heap_val = mach.allocate("heap.val", heap_cap);
  for (VertexId v = 0; v < n; ++v) {
    mach.poke(dist + v, kInfiniteDistance);
    mach.poke(settled + v, 0);
  }
  mach.poke(dist + source, 0);

  std::size_t heap_size = 0;
  auto heap_push = [&](Word key, Word val) {
    SGA_CHECK(heap_size < heap_cap, "heap overflow");
    std::size_t i = heap_size++;
    mach.write(heap_key + i, key);
    mach.write(heap_val + i, val);
    while (i > 0) {
      const std::size_t p = (i - 1) / 2;
      const Word ki = mach.read(heap_key + i);
      const Word kp = mach.read(heap_key + p);
      mach.op();
      if (kp <= ki) break;
      const Word vi = mach.read(heap_val + i);
      const Word vp = mach.read(heap_val + p);
      mach.write(heap_key + i, kp);
      mach.write(heap_val + i, vp);
      mach.write(heap_key + p, ki);
      mach.write(heap_val + p, vi);
      i = p;
    }
  };
  auto heap_pop = [&]() -> std::pair<Word, Word> {
    SGA_CHECK(heap_size > 0, "heap underflow");
    const Word top_key = mach.read(heap_key + 0);
    const Word top_val = mach.read(heap_val + 0);
    --heap_size;
    if (heap_size > 0) {
      mach.write(heap_key + 0, mach.read(heap_key + heap_size));
      mach.write(heap_val + 0, mach.read(heap_val + heap_size));
      std::size_t i = 0;
      while (true) {
        const std::size_t l = 2 * i + 1, rr = 2 * i + 2;
        std::size_t smallest = i;
        Word ks = mach.read(heap_key + smallest);
        if (l < heap_size) {
          const Word kl = mach.read(heap_key + l);
          mach.op();
          if (kl < ks) {
            smallest = l;
            ks = kl;
          }
        }
        if (rr < heap_size) {
          const Word kr = mach.read(heap_key + rr);
          mach.op();
          if (kr < ks) {
            smallest = rr;
            ks = kr;
          }
        }
        if (smallest == i) break;
        const Word ki = mach.read(heap_key + i);
        const Word vi = mach.read(heap_val + i);
        const Word vs = mach.read(heap_val + smallest);
        mach.write(heap_key + i, ks);
        mach.write(heap_val + i, vs);
        mach.write(heap_key + smallest, ki);
        mach.write(heap_val + smallest, vi);
        i = smallest;
      }
    }
    return {top_key, top_val};
  };

  heap_push(0, static_cast<Word>(source));
  while (heap_size > 0) {
    const auto [d, uw] = heap_pop();
    const auto u = static_cast<std::size_t>(uw);
    const Word s = mach.read(settled + u);
    mach.op();
    if (s != 0) continue;
    mach.write(settled + u, 1);
    const auto begin = static_cast<std::size_t>(mach.read(csr.offsets + u));
    const auto end = static_cast<std::size_t>(mach.read(csr.offsets + u + 1));
    for (std::size_t e = begin; e < end; ++e) {
      const auto v = static_cast<std::size_t>(mach.read(csr.targets + e));
      const Word w = mach.read(csr.lengths + e);
      const Word cand = d + w;
      mach.op();
      const Word dv = mach.read(dist + v);
      mach.op();
      if (cand < dv) {
        mach.write(dist + v, cand);
        heap_push(cand, static_cast<Word>(v));
      }
    }
  }

  DistanceRunResult r;
  r.dist.resize(n);
  for (VertexId v = 0; v < n; ++v) r.dist[v] = mach.peek(dist + v);
  r.machine = mach.stats();
  r.ops = mach.stats().operations;
  return r;
}

DistanceRunResult matvec_distance(std::size_t n, std::size_t c,
                                  RegisterPlacement placement,
                                  std::uint64_t seed) {
  SGA_REQUIRE(n >= 1, "matvec_distance: need n >= 1");
  DistanceMachine mach(c, n * n + 2 * n, placement);
  const Addr a = mach.allocate("A", n * n);
  const Addr x = mach.allocate("x", n);
  const Addr y = mach.allocate("y", n);
  std::uint64_t state = seed;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<Word>((state >> 33) % 7);
  };
  for (std::size_t i = 0; i < n * n; ++i) mach.poke(a + i, next());
  for (std::size_t i = 0; i < n; ++i) mach.poke(x + i, next());

  // Row-major inner products: the textbook loop nest.
  for (std::size_t i = 0; i < n; ++i) {
    Word acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += mach.read(a + i * n + j) * mach.read(x + j);
      mach.op();
    }
    mach.write(y + i, acc);
  }

  DistanceRunResult r;
  r.dist.resize(n);
  for (std::size_t i = 0; i < n; ++i) r.dist[i] = mach.peek(y + i);
  r.machine = mach.stats();
  r.ops = mach.stats().operations;
  return r;
}

}  // namespace sga::distmodel
