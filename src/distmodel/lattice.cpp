#include "distmodel/lattice.h"

#include <algorithm>
#include <cmath>

namespace sga::distmodel {

Lattice::Lattice(std::size_t num_words, std::size_t num_registers,
                 RegisterPlacement placement)
    : num_words_(num_words) {
  SGA_REQUIRE(num_words >= 1, "Lattice: need at least one word");
  SGA_REQUIRE(num_registers >= 1, "Lattice: need at least one register");
  side_ = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_words))));

  registers_.reserve(num_registers);
  const auto s = static_cast<std::int64_t>(side_);
  switch (placement) {
    case RegisterPlacement::kCenter: {
      // A compact block across the grid's middle. Register points may
      // coincide with data points ("some lattice points are registers",
      // Definition 5); a coincident word is simply at distance 0.
      const std::int64_t cx = s / 2;
      for (std::size_t r = 0; r < num_registers; ++r) {
        registers_.push_back(Point{
            cx + static_cast<std::int64_t>(r) - static_cast<std::int64_t>(num_registers) / 2,
            s / 2});
      }
      break;
    }
    case RegisterPlacement::kCorner: {
      for (std::size_t r = 0; r < num_registers; ++r) {
        registers_.push_back(Point{static_cast<std::int64_t>(r), -1});
      }
      break;
    }
    case RegisterPlacement::kScattered: {
      // Spread evenly along the grid's diagonal.
      for (std::size_t r = 0; r < num_registers; ++r) {
        const auto pos = static_cast<std::int64_t>(
            (r * side_) / std::max<std::size_t>(1, num_registers));
        registers_.push_back(Point{pos, pos});
      }
      break;
    }
  }
}

Point Lattice::word_point(std::size_t a) const {
  SGA_REQUIRE(a < num_words_, "word address " << a << " out of range");
  return Point{static_cast<std::int64_t>(a % side_),
               static_cast<std::int64_t>(a / side_)};
}

std::int64_t Lattice::distance_to_nearest_register(std::size_t a) const {
  const Point p = word_point(a);
  std::int64_t best = l1_distance(p, registers_.front());
  for (const Point& r : registers_) {
    best = std::min(best, l1_distance(p, r));
  }
  return best;
}

Lattice3::Lattice3(std::size_t num_words, std::size_t num_registers)
    : num_words_(num_words) {
  SGA_REQUIRE(num_words >= 1, "Lattice3: need at least one word");
  SGA_REQUIRE(num_registers >= 1, "Lattice3: need at least one register");
  side_ = 1;
  while (side_ * side_ * side_ < num_words) ++side_;
  // Registers: a compact block at the cube's centre.
  const auto c = static_cast<std::int64_t>(side_) / 2;
  for (std::size_t r = 0; r < num_registers; ++r) {
    registers_.push_back(Point3{
        c + static_cast<std::int64_t>(r) - static_cast<std::int64_t>(num_registers) / 2,
        c, c});
  }
}

Lattice3::Point3 Lattice3::word_point(std::size_t a) const {
  SGA_REQUIRE(a < num_words_, "Lattice3: word address out of range");
  return Point3{static_cast<std::int64_t>(a % side_),
                static_cast<std::int64_t>((a / side_) % side_),
                static_cast<std::int64_t>(a / (side_ * side_))};
}

std::int64_t Lattice3::distance_to_nearest_register(std::size_t a) const {
  const Point3 p = word_point(a);
  std::int64_t best = -1;
  for (const Point3& r : registers_) {
    const std::int64_t d = std::llabs(p.x - r.x) + std::llabs(p.y - r.y) +
                           std::llabs(p.z - r.z);
    if (best < 0 || d < best) best = d;
  }
  return best;
}

std::uint64_t exact_scan_floor_3d(const Lattice3& lattice) {
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < lattice.num_words(); ++a) {
    total += static_cast<std::uint64_t>(lattice.distance_to_nearest_register(a));
  }
  return total;
}

}  // namespace sga::distmodel
