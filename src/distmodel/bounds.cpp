#include "distmodel/bounds.h"

#include <cmath>

namespace sga::distmodel {

double theorem61_bound(std::uint64_t m, std::uint64_t c) {
  const double md = static_cast<double>(m);
  const double cd = static_cast<double>(c);
  return std::pow(md, 1.5) / (8.0 * std::sqrt(cd));
}

double theorem62_bound(std::uint64_t k, std::uint64_t m, std::uint64_t c) {
  return static_cast<double>(k) * theorem61_bound(m, c);
}

double bound_3d(std::uint64_t m, std::uint64_t c) {
  // Same counting argument with a cube of side (m/c)^{1/3}/2: at least m/2
  // words lie at distance ≥ (m/c)^{1/3}/4.
  const double md = static_cast<double>(m);
  const double cd = static_cast<double>(c);
  return (md / 2.0) * std::cbrt(md / cd) / 4.0;
}

std::uint64_t exact_scan_floor(const Lattice& lattice) {
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < lattice.num_words(); ++a) {
    total += static_cast<std::uint64_t>(lattice.distance_to_nearest_register(a));
  }
  return total;
}

}  // namespace sga::distmodel
