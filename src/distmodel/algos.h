// Conventional shortest-path algorithms executed on the DISTANCE machine,
// with every word access going through the register file — the measured
// counterparts of the Section-6 lower bounds.
//
// Memory layout (all in lattice memory): the graph in CSR form (offsets,
// targets, lengths), the dist/parent arrays, and (for Dijkstra) a binary
// heap. This is the layout a conventional implementation actually uses, so
// its measured movement cost is a fair "best conventional algorithm" stand-in.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "distmodel/machine.h"
#include "graph/graph.h"

namespace sga::distmodel {

struct DistanceRunResult {
  std::vector<Weight> dist;     ///< algorithm output (for validation)
  MachineStats machine;         ///< movement cost etc.
  std::uint64_t ops = 0;        ///< ALU operations (the RAM-model cost)
};

/// Theorem 6.1's workload: stream the m-word input through the registers
/// once (returns the checksum in dist[0] so the scan cannot be elided).
DistanceRunResult scan_input(std::size_t m_words, std::size_t c,
                             RegisterPlacement placement);

/// k rounds of relaxing every edge (the Section 6.2 algorithm), on the
/// machine. Movement cost is Θ(k·m^{3/2}/√c) — Theorem 6.2.
DistanceRunResult bellman_ford_khop_distance(const Graph& g, VertexId source,
                                             std::uint32_t k, std::size_t c,
                                             RegisterPlacement placement);

/// Dijkstra with a binary heap, on the machine (the conventional SSSP
/// baseline of Table 1's data-movement rows).
DistanceRunResult dijkstra_distance(const Graph& g, VertexId source,
                                    std::size_t c,
                                    RegisterPlacement placement);

/// The Section-2.3 motivating example: the standard O(n²)-operation dense
/// matrix-vector product y = A·x on the machine. Its movement cost is
/// Θ(n³/√c) (each of the n² matrix words must visit a register), while the
/// neuromorphic implementation stays Θ(n²) — "the standard O(n²) algorithm
/// ... becomes O(n³) if data-movement is taken into account, while a
/// neuromorphic implementation remains an O(n²) algorithm". dist holds y.
DistanceRunResult matvec_distance(std::size_t n, std::size_t c,
                                  RegisterPlacement placement,
                                  std::uint64_t seed = 1);

}  // namespace sga::distmodel
