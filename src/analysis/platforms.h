// Table 3 (Appendix A) as data: the surveyed neuromorphic platforms and the
// reference CPU, plus the energy model that converts our simulators' spike
// counts into per-platform energy estimates (the quantitative content
// behind the paper's "energy consumption orders of magnitude lower" claim)
// and the Figure-7 multi-chip aggregation arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sga::analysis {

struct Platform {
  std::string name;
  std::string organization;
  std::string design;            ///< ASIC / ARM / CPU
  int process_nm = 0;
  std::optional<double> neurons_per_core;
  std::optional<double> cores_per_chip;
  std::optional<double> pj_per_spike;  ///< energy per spike event
  double watts = 0;                    ///< approximate running power
  bool is_cpu = false;

  /// Neurons per chip (neurons/core × cores/chip, or the direct figure).
  std::optional<double> neurons_per_chip() const;
};

/// The five columns of Table 3: TrueNorth, Loihi, SpiNNaker 1, SpiNNaker 2,
/// Core i7-9700T.
const std::vector<Platform>& platforms();

const Platform& platform_by_name(const std::string& name);

/// Energy (joules) for `spikes` spike events on a platform with a
/// pJ/spike figure.
double spike_energy_joules(const Platform& p, std::uint64_t spikes);

/// Coarse CPU energy: ops / (ops-per-second) × watts, with a default
/// 1 op/cycle at the listed clock. Documented as an order-of-magnitude
/// estimate only.
double cpu_energy_joules(std::uint64_t ops, double clock_hz = 4.3e9,
                         double watts = 35.0);

/// Figure 7's aggregation: chips needed to host a network of
/// `neurons` neurons on the given platform.
std::uint64_t chips_required(const Platform& p, std::uint64_t neurons);

}  // namespace sga::analysis
