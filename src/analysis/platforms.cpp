#include "analysis/platforms.h"

#include <cmath>

#include "core/error.h"

namespace sga::analysis {

std::optional<double> Platform::neurons_per_chip() const {
  if (!neurons_per_core) return std::nullopt;
  if (!cores_per_chip) return neurons_per_core;  // per-chip figure directly
  return *neurons_per_core * *cores_per_chip;
}

const std::vector<Platform>& platforms() {
  // Values from Table 3 of the paper. SpiNNaker 1's pJ/spike is the
  // 6–8 nJ range's midpoint; power figures are the listed approximations.
  static const std::vector<Platform> kPlatforms = {
      {"TrueNorth", "IBM", "ASIC", 28, 256, 4096, 26.0, 0.11, false},
      {"Loihi", "Intel", "ASIC", 14, 1024, 128, 23.6, 0.45, false},
      {"SpiNNaker 1", "U. Manchester", "ARM", 130, 1000, 16, 7000.0, 1.0,
       false},
      // SpiNNaker 2 lists ~800k neurons per CHIP (no per-core split) and no
      // pJ/spike figure.
      {"SpiNNaker 2", "U. Manchester", "ARM", 22, 800000.0, std::nullopt,
       std::nullopt, 0.72, false},
      {"Core i7-9700T", "Intel", "CPU", 14, std::nullopt, std::nullopt,
       std::nullopt, 35.0, true},
  };
  return kPlatforms;
}

const Platform& platform_by_name(const std::string& name) {
  for (const auto& p : platforms()) {
    if (p.name == name) return p;
  }
  SGA_REQUIRE(false, "unknown platform: " << name);
  std::abort();  // unreachable
}

double spike_energy_joules(const Platform& p, std::uint64_t spikes) {
  SGA_REQUIRE(p.pj_per_spike.has_value(),
              "platform " << p.name << " has no pJ/spike figure");
  return static_cast<double>(spikes) * *p.pj_per_spike * 1e-12;
}

double cpu_energy_joules(std::uint64_t ops, double clock_hz, double watts) {
  SGA_REQUIRE(clock_hz > 0 && watts > 0, "bad CPU energy parameters");
  return static_cast<double>(ops) / clock_hz * watts;
}

std::uint64_t chips_required(const Platform& p, std::uint64_t neurons) {
  const auto per_chip = p.neurons_per_chip();
  SGA_REQUIRE(per_chip.has_value(),
              "platform " << p.name << " has no neuron capacity figure");
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(neurons) / *per_chip));
}

}  // namespace sga::analysis
