// Constant calibration: the theorems give cost = Θ(formula(params)); fit
// the hidden constant from measured small instances and predict larger
// ones. This is how the benches turn asymptotic claims into checkable
// numbers, and how a user can size hardware for instances they have not
// run ("will this graph's k-hop machinery fit on one chip?").
#pragma once

#include <functional>
#include <vector>

#include "nga/costs.h"

namespace sga::analysis {

using CostFormula = std::function<double(const nga::ProblemParams&)>;

struct CalibratedModel {
  double constant = 0;        ///< fitted C in cost ≈ C·formula(p)
  double max_rel_error = 0;   ///< worst |measured − C·f| / measured seen
  CostFormula formula;

  double predict(const nga::ProblemParams& p) const;
};

/// Fit C as the geometric mean of measured/formula ratios (scale-invariant;
/// right for Θ-claims where the ratio should be flat). Requires at least
/// one instance and positive costs/formula values.
CalibratedModel calibrate(const std::vector<nga::ProblemParams>& instances,
                          const std::vector<double>& measured,
                          CostFormula formula);

}  // namespace sga::analysis
