#include "analysis/calibrate.h"

#include <cmath>

#include "core/error.h"

namespace sga::analysis {

double CalibratedModel::predict(const nga::ProblemParams& p) const {
  SGA_REQUIRE(static_cast<bool>(formula), "predict: model not calibrated");
  return constant * formula(p);
}

CalibratedModel calibrate(const std::vector<nga::ProblemParams>& instances,
                          const std::vector<double>& measured,
                          CostFormula formula) {
  SGA_REQUIRE(!instances.empty(), "calibrate: no instances");
  SGA_REQUIRE(instances.size() == measured.size(),
              "calibrate: size mismatch");
  double log_sum = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const double f = formula(instances[i]);
    SGA_REQUIRE(f > 0 && measured[i] > 0,
                "calibrate: non-positive cost or formula value at " << i);
    log_sum += std::log(measured[i] / f);
  }
  CalibratedModel m;
  m.constant = std::exp(log_sum / static_cast<double>(instances.size()));
  m.formula = std::move(formula);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const double pred = m.predict(instances[i]);
    m.max_rel_error = std::max(
        m.max_rel_error, std::abs(measured[i] - pred) / measured[i]);
  }
  return m;
}

}  // namespace sga::analysis
