// Table 1 as code: the complexity expressions for every row of both halves
// of the table, and the "neuromorphic is better when" conditions evaluated
// on concrete problem instances (asymptotic conditions are checked as plain
// inequalities with all hidden constants set to 1 — benches report where
// the measured crossover actually falls).
#pragma once

#include <string>
#include <vector>

#include "nga/costs.h"

namespace sga::analysis {

using nga::ProblemParams;

struct Table1Row {
  std::string problem;      ///< "SSSP" / "k-hop SSSP"
  std::string complexity;   ///< "polynomial" / "pseudopolynomial"
  bool with_data_movement;  ///< which half of Table 1
  double conventional;      ///< lower bound (top half) or best-known (bottom)
  double neuromorphic;      ///< the paper's neuromorphic bound
  bool nm_better;           ///< the row's "better when" condition, evaluated
  std::string condition;    ///< the condition, as printed in the paper
};

/// All eight rows of Table 1 for a concrete instance.
std::vector<Table1Row> table1_rows(const ProblemParams& p);

// The "neuromorphic is better when" predicates, row by row (constants = 1).
bool better_sssp_poly_dm(const ProblemParams& p);
bool better_khop_poly_dm(const ProblemParams& p);
bool better_sssp_pseudo_dm(const ProblemParams& p);
bool better_khop_pseudo_dm(const ProblemParams& p);
bool better_sssp_poly_nodm(const ProblemParams& p);   // "never"
bool better_khop_poly_nodm(const ProblemParams& p);   // log(nU) = o(k)
bool better_sssp_pseudo_nodm(const ProblemParams& p);
bool better_khop_pseudo_nodm(const ProblemParams& p);

/// The paper's headline factors: Ω(k/log n) advantage ignoring data
/// movement and Ω(m^{1/2}/log n) with it (k-hop polynomial row, U = poly(n),
/// c = O(1)).
double headline_advantage_nodm(const ProblemParams& p);
double headline_advantage_dm(const ProblemParams& p);

}  // namespace sga::analysis
