// Asymptotic-shape checking for benches: collect (size, cost) samples,
// fit a power law, and compare the exponent against a theorem's prediction.
// "Reproducing a table" in this repo means: the measured exponent matches
// the bound's exponent (who wins and by what polynomial factor), not the
// authors' absolute constants.
#pragma once

#include <string>
#include <vector>

#include "core/stats.h"

namespace sga::analysis {

struct ScalingCheck {
  double fitted_exponent = 0;
  double expected_exponent = 0;
  double r2 = 0;
  double fitted_constant = 0;  ///< e^intercept
  bool ok = false;             ///< |fitted − expected| ≤ tolerance
};

/// Fit cost ≈ C·size^e and compare e against `expected` (± tolerance).
ScalingCheck check_power_law(const std::vector<double>& sizes,
                             const std::vector<double>& costs,
                             double expected, double tolerance = 0.25);

/// Geometric sweep helper: {start, start·factor, ...} with `count` points.
std::vector<std::size_t> geometric_sizes(std::size_t start, double factor,
                                         std::size_t count);

/// Render "e = 1.52 (expect 1.50, R² = 0.999) [OK]".
std::string describe(const ScalingCheck& check);

}  // namespace sga::analysis
