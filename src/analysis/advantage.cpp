#include "analysis/advantage.h"

#include <cmath>

namespace sga::analysis {

namespace {
using nga::log2_clamped;
double d(std::uint64_t v) { return static_cast<double>(v); }
}  // namespace

bool better_sssp_poly_dm(const ProblemParams& p) {
  // log U = O(log n), c = o(m/log²n), α = o(m^{3/2}/(n log n √c)).
  const double logn = log2_clamped(d(p.n));
  return log2_clamped(d(p.U)) <= logn &&
         d(p.c) < d(p.m) / (logn * logn) &&
         d(p.alpha) < std::pow(d(p.m), 1.5) / (d(p.n) * logn * std::sqrt(d(p.c)));
}

bool better_khop_poly_dm(const ProblemParams& p) {
  // log U = O(log n), c = o(m³/(n² log²n)), c = o(k²m/log²n).
  const double logn = log2_clamped(d(p.n));
  return log2_clamped(d(p.U)) <= logn &&
         d(p.c) < std::pow(d(p.m), 3.0) / (d(p.n) * d(p.n) * logn * logn) &&
         d(p.c) < d(p.k) * d(p.k) * d(p.m) / (logn * logn);
}

bool better_sssp_pseudo_dm(const ProblemParams& p) {
  // L = o(m^{3/2}/(n√c)).
  return d(p.L) < std::pow(d(p.m), 1.5) / (d(p.n) * std::sqrt(d(p.c)));
}

bool better_khop_pseudo_dm(const ProblemParams& p) {
  // L = o(k·m^{3/2}/(n√c·log k)).
  return d(p.L) < d(p.k) * std::pow(d(p.m), 1.5) /
                      (d(p.n) * std::sqrt(d(p.c)) * log2_clamped(d(p.k)));
}

bool better_sssp_poly_nodm(const ProblemParams&) { return false; }  // "never"

bool better_khop_poly_nodm(const ProblemParams& p) {
  // log(nU) = o(k).
  return log2_clamped(d(p.n) * d(p.U)) < d(p.k);
}

bool better_sssp_pseudo_nodm(const ProblemParams& p) {
  // m, L = o(n log n) and L = o(m).
  const double nlogn = d(p.n) * log2_clamped(d(p.n));
  return d(p.m) < nlogn && d(p.L) < nlogn && d(p.L) < d(p.m);
}

bool better_khop_pseudo_nodm(const ProblemParams& p) {
  // L = o(km/log k) and k = ω(1).
  return d(p.L) < d(p.k) * d(p.m) / log2_clamped(d(p.k)) && p.k > 1;
}

double headline_advantage_nodm(const ProblemParams& p) {
  return d(p.k) / log2_clamped(d(p.n));
}

double headline_advantage_dm(const ProblemParams& p) {
  return std::sqrt(d(p.m)) / log2_clamped(d(p.n));
}

std::vector<Table1Row> table1_rows(const ProblemParams& p) {
  using namespace nga;
  std::vector<Table1Row> rows;

  // ---- Top half: taking data movement into account --------------------
  rows.push_back({"SSSP", "polynomial", true, lb_input_read(p),
                  nm_sssp_poly_embedded(p), better_sssp_poly_dm(p),
                  "log U = O(log n), c = o(m/log^2 n), "
                  "alpha = o(m^{3/2}/(n log n sqrt(c)))"});
  rows.push_back({"k-hop SSSP", "polynomial", true, lb_khop_bellman_ford(p),
                  nm_khop_poly_embedded(p), better_khop_poly_dm(p),
                  "log U = O(log n), c = o(m^3/(n^2 log^2 n)), "
                  "c = o(k^2 m/log^2 n)"});
  rows.push_back({"SSSP", "pseudopolynomial", true, lb_input_read(p),
                  nm_sssp_pseudo_embedded(p), better_sssp_pseudo_dm(p),
                  "L = o(m^{3/2}/(n sqrt(c)))"});
  rows.push_back({"k-hop SSSP", "pseudopolynomial", true,
                  lb_khop_bellman_ford(p), nm_khop_pseudo_embedded(p),
                  better_khop_pseudo_dm(p),
                  "L = o(k m^{3/2}/(n sqrt(c) log k))"});

  // ---- Bottom half: ignoring data movement ----------------------------
  rows.push_back({"SSSP", "polynomial", false, conv_sssp(p), nm_sssp_poly(p),
                  better_sssp_poly_nodm(p), "never"});
  rows.push_back({"k-hop SSSP", "polynomial", false, conv_khop(p),
                  nm_khop_poly(p), better_khop_poly_nodm(p),
                  "log(nU) = o(k)"});
  rows.push_back({"SSSP", "pseudopolynomial", false, conv_sssp(p),
                  nm_sssp_pseudo(p), better_sssp_pseudo_nodm(p),
                  "m, L = o(n log n) and L = o(m)"});
  rows.push_back({"k-hop SSSP", "pseudopolynomial", false, conv_khop(p),
                  nm_khop_pseudo(p), better_khop_pseudo_nodm(p),
                  "L = o(km/log k) & k = omega(1)"});
  return rows;
}

}  // namespace sga::analysis
