#include "analysis/fit.h"

#include <cmath>
#include <sstream>

#include "core/error.h"

namespace sga::analysis {

ScalingCheck check_power_law(const std::vector<double>& sizes,
                             const std::vector<double>& costs,
                             double expected, double tolerance) {
  const LinearFit fit = fit_power_law(sizes, costs);
  ScalingCheck c;
  c.fitted_exponent = fit.slope;
  c.expected_exponent = expected;
  c.r2 = fit.r2;
  c.fitted_constant = std::exp(fit.intercept);
  c.ok = std::abs(fit.slope - expected) <= tolerance;
  return c;
}

std::vector<std::size_t> geometric_sizes(std::size_t start, double factor,
                                         std::size_t count) {
  SGA_REQUIRE(start >= 1 && factor > 1.0 && count >= 1,
              "geometric_sizes: bad parameters");
  std::vector<std::size_t> out;
  double x = static_cast<double>(start);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<std::size_t>(x));
    x *= factor;
  }
  return out;
}

std::string describe(const ScalingCheck& c) {
  std::ostringstream os;
  os.precision(3);
  os << "e = " << c.fitted_exponent << " (expect " << c.expected_exponent
     << ", R^2 = " << c.r2 << ") " << (c.ok ? "[OK]" : "[MISMATCH]");
  return os.str();
}

}  // namespace sga::analysis
