// Content hashing for the query service's compile-once cache (docs/
// SERVICE.md). A graph is identified by what it IS — vertex count plus the
// exact edge list — not by where it lives, so two structurally identical
// graphs registered separately share every compiled artifact.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace sga::svc {

/// 64-bit FNV-1a over (num_vertices, num_edges, then each edge's
/// from/to/length in id order). Edge ORDER is hashed deliberately: edge ids
/// are part of the service's contract (max-flow reports per-edge flow by
/// input index), so permuted edge lists are different graphs to the service
/// even when they are isomorphic.
std::uint64_t graph_content_hash(const Graph& g);

}  // namespace sga::svc
