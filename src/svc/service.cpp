#include "svc/service.h"

#include <utility>

#include "core/bitops.h"
#include "core/error.h"
#include "nga/maxflow.h"
#include "obs/metrics.h"
#include "nga/sssp_event.h"
#include "snn/snapshot.h"
#include "svc/hash.h"

namespace sga::svc {

QueryService::QueryService(ServiceOptions options)
    : opt_(options),
      default_shedder_(options.max_queue_depth),
      shedder_(options.shedder != nullptr ? options.shedder
                                          : &default_shedder_),
      cache_(options.cache_capacity) {
  SGA_REQUIRE(opt_.num_workers >= 1, "QueryService: need >= 1 worker");
  workers_.reserve(opt_.num_workers);
  for (unsigned i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

QueryService::~QueryService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::uint64_t QueryService::add_graph(Graph g) {
  const std::uint64_t h = graph_content_hash(g);
  const std::lock_guard<std::mutex> lock(graphs_mu_);
  // First registration wins: resident artifacts hold shared_ptrs into the
  // first copy, and an identical graph is, by content hash, the same graph.
  graphs_.try_emplace(h, std::make_shared<const Graph>(std::move(g)));
  return h;
}

std::shared_ptr<const Graph> QueryService::graph(std::uint64_t handle) const {
  const std::lock_guard<std::mutex> lock(graphs_mu_);
  const auto it = graphs_.find(handle);
  return it != graphs_.end() ? it->second : nullptr;
}

std::future<QueryResult> QueryService::submit(QueryRequest req) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> fut = promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    SGA_REQUIRE(!stop_, "QueryService::submit after shutdown began");
    ++submitted_;
    if (shedder_->shed(queue_.size())) {
      ++rejected_;
      QueryResult r;
      r.status = QueryStatus::kRejected;
      r.error = "shed by admission policy";
      promise.set_value(std::move(r));
      return fut;
    }
    Job job;
    job.request = std::move(req);
    job.promise = std::move(promise);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

QueryResult QueryService::query(QueryRequest req) {
  return submit(std::move(req)).get();
}

void QueryService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void QueryService::worker_main() {
  WorkerSlots slots(opt_.slots_per_worker, opt_.queue);
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    QueryResult res = serve(slots, job.request);
    job.promise.set_value(std::move(res));
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

QueryResult QueryService::serve(WorkerSlots& slots, const QueryRequest& req) {
  QueryResult res;
  obs::MetricsRegistry req_metrics;
  {
    // The reuse-lifecycle contract of pooled workers: the per-request
    // registry is installed as this thread's sink for EXACTLY the duration
    // of the serve — RAII restore runs before any result bookkeeping, so
    // two back-to-back requests on one worker can never bleed counters
    // into each other, and neither can the merge below.
    const obs::ScopedThreadMetrics install(&req_metrics);
    const obs::ScopedTimer timer(&req_metrics, "svc.request_ns");
    try {
      serve_impl(slots, req, res);
    } catch (const std::exception& e) {
      res.status = QueryStatus::kFailed;
      res.error = e.what();
    }
  }
  req_metrics.add("svc.requests");
  if (res.status == QueryStatus::kFailed) req_metrics.add("svc.failures");
  {
    const std::lock_guard<std::mutex> lock(done_mu_);
    metrics_.merge(req_metrics);
    if (res.status == QueryStatus::kOk) {
      ++served_;
    } else {
      ++failed_;
    }
  }
  res.metrics = std::move(req_metrics);
  return res;
}

void QueryService::serve_impl(WorkerSlots& slots, const QueryRequest& req,
                              QueryResult& res) {
  const std::shared_ptr<const Graph> g = graph(req.graph);
  SGA_REQUIRE(g != nullptr, "serve: unknown graph handle " << req.graph
                                                           << " (add_graph "
                                                              "first)");
  switch (req.kind) {
    case QueryKind::kSssp:
      serve_sssp(slots, req, g, res);
      return;
    case QueryKind::kKHop:
      serve_khop(slots, req, g, res);
      return;
    case QueryKind::kMaxFlow:
      serve_maxflow(req, g, res);
      return;
  }
  SGA_CHECK(false, "serve: unknown query kind "
                       << static_cast<int>(req.kind));
}

void QueryService::serve_sssp(WorkerSlots& slots, const QueryRequest& req,
                              const std::shared_ptr<const Graph>& g,
                              QueryResult& res) {
  SGA_REQUIRE(req.source < g->num_vertices(), "sssp: bad source");
  SGA_REQUIRE(!req.target || *req.target < g->num_vertices(),
              "sssp: bad target");
  const ArtifactKey key{req.graph, QueryKind::kSssp, 0, 0};
  const NetworkCache::ArtifactPtr artifact =
      cache_.get_or_build(key, [&key, &g] {
        auto a = std::make_shared<CompiledArtifact>();
        a->key = key;
        a->graph = g;
        a->network = nga::build_sssp_network(*g).compile();
        return a;
      });
  if (obs::MetricsRegistry* mr = obs::thread_metrics()) {
    // Resident footprint of the (possibly cached) frozen artifact this
    // request runs on — the service-side view of SimStats::csr_bytes.
    mr->gauge("svc.artifact_csr_bytes",
              static_cast<double>(artifact->network.csr_storage_bytes()));
    // Which encoding that footprint was measured under (0 = wide,
    // 1 = narrow, 2 = packed) — without it a csr_bytes shift between two
    // service runs is ambiguous between a graph change and a re-freeze
    // under a different StoragePolicy.
    mr->gauge("svc.artifact_storage_encoding",
              static_cast<double>(snn::encoding_code(
                  artifact->network.storage_widths())));
  }

  snn::Simulator& sim = slots.acquire(artifact);
  obs::Probe* probe =
      req.want_probe ? &slots.attach_probe(req.probe) : nullptr;
  snn::SimConfig cfg;
  cfg.record_causes = req.record_parents;
  if (req.target) cfg.terminal_neurons = {*req.target};

  // Periodic checkpointing + crash recovery (docs/PERSISTENCE.md). Opt-in
  // per request (ticket != 0) on an opted-in service; unticketed requests
  // take the plain single-run path below.
  const bool checkpointing = opt_.checkpoint_interval > 0 &&
                             opt_.checkpoints != nullptr && req.ticket != 0;
  snn::SpikeJournal journal;
  std::uint64_t seq = 0;
  Time pause_at = opt_.checkpoint_interval;
  if (checkpointing && req.resume) {
    // Resume: the snapshot carries the injected history (processed state +
    // pending queue), so the source spike is NOT re-injected; the journal
    // rides along for snapshot-free replay.
    const std::optional<Checkpoint> cp = opt_.checkpoints->get(req.ticket);
    SGA_REQUIRE(cp.has_value(), "sssp: resume requested but ticket "
                                    << req.ticket << " has no checkpoint");
    sim.restore(cp->snapshot);
    journal = snn::SpikeJournal::deserialize(cp->journal);
    seq = cp->sequence;
    pause_at = cp->next_pause;
    if (obs::MetricsRegistry* mr = obs::thread_metrics()) {
      mr->add("svc.recoveries");
    }
  } else {
    SGA_REQUIRE(!req.resume,
                "sssp: resume requires a ticketed request on a service "
                "built with a CheckpointStore and a checkpoint_interval");
    sim.inject_spike(req.source, 0);
    if (checkpointing) journal.record(req.source, 0);
  }

  if (checkpointing) {
    while (true) {
      cfg.pause_time = pause_at;
      res.sim = sim.run(cfg);
      if (!sim.paused()) break;
      pause_at += opt_.checkpoint_interval;
      Checkpoint cp;
      cp.snapshot = sim.snapshot();
      cp.journal = journal.serialize();
      cp.sequence = ++seq;
      cp.next_pause = pause_at;
      opt_.checkpoints->put(req.ticket, std::move(cp));
      if (obs::MetricsRegistry* mr = obs::thread_metrics()) {
        mr->add("svc.checkpoints");
      }
      if (opt_.checkpoints->on_checkpoint) {
        // May throw: the serve fails with the checkpoint already stored —
        // the crash-recovery tests kill the request exactly here.
        opt_.checkpoints->on_checkpoint(req.ticket, seq);
      }
    }
    // Completed: the recovery point is obsolete.
    opt_.checkpoints->erase(req.ticket);
  } else {
    res.sim = sim.run(cfg);
  }
  const Time last = nga::read_sssp_solution(sim, *g, req.source,
                                            req.record_parents, res.dist,
                                            res.parent);
  res.execution_time =
      req.target && res.sim.hit_terminal ? res.sim.execution_time : last;
  res.total_spikes = res.sim.spikes;
  if (probe != nullptr) res.probe_data = *probe;
}

void QueryService::serve_khop(WorkerSlots& slots, const QueryRequest& req,
                              const std::shared_ptr<const Graph>& g,
                              QueryResult& res) {
  SGA_REQUIRE(req.k >= 1, "khop: k must be >= 1");
  const ArtifactKey key{req.graph, QueryKind::kKHop,
                        static_cast<std::uint32_t>(bits_for(req.k - 1)),
                        static_cast<std::uint32_t>(req.max_kind)};
  const NetworkCache::ArtifactPtr artifact =
      cache_.get_or_build(key, [&key, &g, &req] {
        auto a = std::make_shared<CompiledArtifact>();
        a->key = key;
        a->graph = g;
        a->khop = nga::compile_khop_ttl(*g, req.k, req.max_kind);
        return a;
      });

  snn::Simulator& sim = slots.acquire(artifact);
  obs::Probe* probe =
      req.want_probe ? &slots.attach_probe(req.probe) : nullptr;
  nga::KHopTtlRunOptions ropt;
  ropt.source = req.source;
  ropt.k = req.k;
  ropt.target = req.target;
  nga::KHopTtlResult r = nga::run_khop_ttl(*artifact->khop, sim, ropt);
  res.dist = std::move(r.dist);
  res.hops = std::move(r.hops);
  res.execution_time = r.execution_time;
  res.sim = r.sim;
  res.total_spikes = r.sim.spikes;
  if (probe != nullptr) res.probe_data = *probe;
}

void QueryService::serve_maxflow(const QueryRequest& req,
                                 const std::shared_ptr<const Graph>& g,
                                 QueryResult& res) {
  SGA_REQUIRE(req.target.has_value(), "maxflow: target (the sink) required");
  // No cached fabric: Edmonds–Karp re-freezes the residual network per
  // phase INSIDE the algorithm — that is algorithmic cost, not a cache
  // miss, and the per-phase networks are residual-state-dependent so they
  // cannot be memoized. The request still gets service benefits (queueing,
  // admission, per-request metrics).
  nga::MaxFlowOptions mopt;
  mopt.source = req.source;
  mopt.sink = *req.target;
  nga::MaxFlowResult r = nga::spiking_max_flow(*g, mopt);
  res.flow_value = r.value;
  res.phases = r.phases;
  res.flow = std::move(r.flow);
  res.total_spikes = r.total_spikes;
  res.execution_time = r.total_snn_steps;
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
  }
  {
    const std::lock_guard<std::mutex> lock(done_mu_);
    s.served = served_;
    s.failed = failed_;
  }
  s.cache = cache_.stats();
  return s;
}

obs::MetricsRegistry QueryService::metrics() const {
  const std::lock_guard<std::mutex> lock(done_mu_);
  return metrics_;
}

}  // namespace sga::svc
