// Per-worker simulator slots: the serve-many half of the service's
// compile-once, serve-many contract (docs/SERVICE.md).
//
// A Simulator's construction cost is O(neurons) state vectors; its reset()
// rewinds in O(events processed). A service worker therefore keeps one
// simulator PER ARTIFACT it has recently served (a small LRU of slots) and
// epoch-resets it between requests, so a stream of requests against the
// same artifact costs only its own event traffic — the sssp_batch reuse
// idiom generalized from one network to a working set of them.
//
// Reuse-lifecycle contracts enforced here (the bugfix sweep of this layer):
//   * Borrow safety — each slot holds a shared_ptr to its artifact, so a
//     simulator can never outlive the network it borrows even after the
//     NetworkCache evicts the artifact mid-service.
//   * Probe hygiene — obs::Probe ACCUMULATES across Simulator::reset() by
//     design (reset rewinds the simulation, not the observer). A pooled
//     probe reused across requests must be clear()ed per request, and is
//     only reused at all when the request asks for the exact same
//     ProbeOptions; otherwise the slot's probe is rebuilt.
//   * Bounded footprint — slots are LRU-bounded, and the simulators they
//     hold trim their bucket pools to recent peak demand on reset(), so a
//     worker that once served a huge request does not retain its peak
//     memory forever.
//
// WorkerSlots is single-threaded by design: each service worker owns one
// instance; cross-worker state lives in NetworkCache and QueryService.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "obs/probe.h"
#include "svc/cache.h"

namespace sga::svc {

class WorkerSlots {
 public:
  /// `capacity` ≥ 1: simulators kept per worker. `queue` selects the event
  /// queue for every simulator this worker builds.
  explicit WorkerSlots(std::size_t capacity = 4,
                       snn::QueueKind queue = snn::QueueKind::kCalendar);

  /// A simulator over `artifact->net()`, ready to serve (freshly built or
  /// epoch-reset, no probe attached). The returned reference is valid until
  /// the next acquire() on this WorkerSlots.
  snn::Simulator& acquire(NetworkCache::ArtifactPtr artifact);

  /// A probe for the CURRENT slot (the last acquire()d one), configured
  /// with `opt` and guaranteed EMPTY, attached to the slot's simulator.
  /// Reuses the slot's pooled probe when the options match (clear()ed);
  /// rebuilds it otherwise.
  obs::Probe& attach_probe(const obs::ProbeOptions& opt);

  /// Slots currently resident (≤ capacity). Test hook.
  std::size_t resident() const { return slots_.size(); }
  /// Whether the last acquire() reused a pooled simulator (reset path)
  /// rather than constructing one. Test hook.
  bool last_acquire_reused() const { return last_reused_; }

 private:
  struct Slot {
    NetworkCache::ArtifactPtr artifact;  ///< keeps the borrowed net alive
    std::optional<snn::Simulator> sim;
    std::unique_ptr<obs::Probe> probe;  ///< pooled; cleared per request
    std::uint64_t last_used = 0;
  };

  const std::size_t capacity_;
  const snn::QueueKind queue_;
  std::vector<Slot> slots_;
  Slot* current_ = nullptr;
  std::uint64_t tick_ = 0;
  bool last_reused_ = false;
};

}  // namespace sga::svc
