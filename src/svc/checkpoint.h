// Checkpoint store for the query service's crash-recovery loop
// (docs/PERSISTENCE.md; docs/SERVICE.md).
//
// A checkpointed request periodically pauses its simulator (SimConfig::
// pause_time), snapshots the complete simulation state (snn/snapshot.h),
// and files the (snapshot, journal) pair here under the request's ticket.
// If the worker dies mid-query — process crash, serve exception, machine
// loss in a deployment that backs this store with durable storage — the
// request is resubmitted with `resume = true` and continues from the last
// checkpoint on ANY worker, answering event-for-event identically to an
// uninterrupted run (the snapshot differential tests pin this).
//
// The store is deliberately dumb: a mutexed map from ticket to the latest
// checkpoint. Durability is the embedder's concern — the Checkpoint's two
// byte vectors are self-contained versioned streams (magic + CRC), safe to
// write to disk or ship over the wire as-is. The on_checkpoint hook runs
// on the serving worker after each put; tests use it to inject crashes at
// an exact checkpoint boundary, operators can use it to fsync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace sga::svc {

/// One recovery point of a checkpointed query: everything needed to
/// re-serve the request from the pause it was taken at.
struct Checkpoint {
  /// Simulator state at the pause — snn::Simulator/ParallelSimulator::
  /// snapshot() bytes (engine-agnostic; restores into either).
  std::vector<std::uint8_t> snapshot;
  /// Serialized snn::SpikeJournal of every spike injected so far, so the
  /// run is ALSO replayable from scratch without the snapshot.
  std::vector<std::uint8_t> journal;
  /// Monotone per-ticket checkpoint counter (1 = first pause).
  std::uint64_t sequence = 0;
  /// The pause_time the resumed run should aim for next.
  Time next_pause = 0;
};

/// Latest-checkpoint-per-ticket store shared by the service's workers.
/// Thread-safe; BORROWED by the service (ServiceOptions::checkpoints).
class CheckpointStore {
 public:
  /// Replace the ticket's checkpoint (latest wins).
  void put(std::uint64_t ticket, Checkpoint cp) {
    const std::lock_guard<std::mutex> lock(mu_);
    map_[ticket] = std::move(cp);
  }

  /// Copy of the ticket's latest checkpoint, if any.
  std::optional<Checkpoint> get(std::uint64_t ticket) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(ticket);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Drop the ticket's checkpoint (a completed query no longer needs its
  /// recovery point). Returns whether one existed.
  bool erase(std::uint64_t ticket) {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.erase(ticket) > 0;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  /// Invoked on the serving worker after each put(ticket, …), OUTSIDE the
  /// store lock. A throw propagates out of the serve (the request fails
  /// kFailed with the checkpoint already durable) — which is exactly how
  /// the crash-recovery tests kill a worker at a checkpoint boundary.
  std::function<void(std::uint64_t ticket, std::uint64_t sequence)>
      on_checkpoint;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Checkpoint> map_;
};

}  // namespace sga::svc
