// NetworkCache: the compile-once half of the query service's compile-once,
// serve-many contract (docs/SERVICE.md).
//
// Freezing a network (Network::compile()) is the expensive step of every
// spiking graph query — O(n + m) circuit construction plus the CSR pack —
// while serving one query against the frozen form costs only its own event
// traffic. The cache keys each frozen artifact by WHAT it computes:
// (graph content hash, query kind, structural parameter, circuit variant).
// The k-hop TTL fabric, for example, depends on the graph, the TTL width
// λ = ⌈log k⌉, and the max-circuit kind — not on the source or the exact
// hop budget — so one cached artifact serves every (source, k) pair with
// the same λ.
//
// Concurrency: lookups memoize a shared_future per key. The first requester
// of a missing key builds OUTSIDE the cache lock (a multi-second compile
// never blocks unrelated lookups); concurrent requesters of the same key
// wait on the future instead of duplicating the freeze. A build that throws
// is erased, not cached, so a later request can retry. Artifacts are handed
// out as shared_ptr<const CompiledArtifact>: LRU eviction drops the cache's
// reference, while workers still serving against the artifact keep it alive
// (borrow-safety for the Simulator's non-owning constructor).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "graph/graph.h"
#include "nga/khop_ttl.h"
#include "snn/compiled_network.h"

namespace sga::svc {

/// The graph problems the service answers (src/nga algorithm families).
enum class QueryKind : std::uint8_t {
  kSssp,     ///< Section-3 spiking SSSP (delay = edge length)
  kKHop,     ///< Section-4.1 k-hop TTL SSSP (gate-level max/decrement nodes)
  kMaxFlow,  ///< Edmonds–Karp with spiking BFS searches (Section-8 hybrid)
};

/// What a compiled artifact computes. Two requests with equal keys are
/// served by the same frozen network.
struct ArtifactKey {
  std::uint64_t graph_hash = 0;
  QueryKind kind = QueryKind::kSssp;
  std::uint32_t param = 0;    ///< structural parameter (λ for k-hop)
  std::uint32_t variant = 0;  ///< circuit variant (MaxKind for k-hop)

  bool operator==(const ArtifactKey&) const = default;
};

struct ArtifactKeyHash {
  std::size_t operator()(const ArtifactKey& k) const {
    std::uint64_t h = k.graph_hash;
    h ^= (static_cast<std::uint64_t>(k.kind) << 48) ^
         (static_cast<std::uint64_t>(k.param) << 16) ^ k.variant;
    h *= 0x9e3779b97f4a7c15ULL;  // Fibonacci mix
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// One frozen compile-once artifact. Immutable after construction; any
/// number of simulators (across worker threads) borrow `net()` read-only.
struct CompiledArtifact {
  ArtifactKey key;
  std::shared_ptr<const Graph> graph;  ///< source graph, kept alive with us

  /// The frozen fabric for kind == kSssp (khop carries its own).
  snn::CompiledNetwork network;
  /// Set iff key.kind == kKHop: fabric plus per-vertex ports.
  std::optional<nga::KHopTtlCompiled> khop;

  const snn::CompiledNetwork& net() const {
    return khop ? khop->network : network;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;       ///< lookups answered by a resident artifact
  std::uint64_t misses = 0;     ///< lookups that triggered a freeze
  std::uint64_t evictions = 0;  ///< artifacts dropped by the LRU bound
  std::size_t resident = 0;     ///< artifacts currently cached
};

class NetworkCache {
 public:
  using ArtifactPtr = std::shared_ptr<const CompiledArtifact>;
  /// Produces the artifact for a missing key. Runs outside the cache lock,
  /// at most once per key at a time; exceptions propagate to every waiter
  /// and the key is forgotten (retryable).
  using Builder = std::function<ArtifactPtr()>;

  /// `capacity` ≥ 1 bounds the resident artifact count (LRU eviction).
  explicit NetworkCache(std::size_t capacity = 8);

  /// The serve path's single entry point: return the artifact for `key`,
  /// building it with `build` on a miss. A lookup that finds an in-flight
  /// build counts as a hit (the freeze is not duplicated) and waits.
  ArtifactPtr get_or_build(const ArtifactKey& key, const Builder& build);

  /// Whether `key` is resident (completed build), without touching LRU
  /// order or counters. Test/introspection hook.
  bool contains(const ArtifactKey& key) const;

  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_future<ArtifactPtr> future;
    std::list<ArtifactKey>::iterator lru;  ///< position in lru_ (back = hot)
  };

  void touch(Entry& e, const ArtifactKey& key);  // move to hot end; mu_ held
  void evict_excess();                           // mu_ held

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<ArtifactKey, Entry, ArtifactKeyHash> map_;
  std::list<ArtifactKey> lru_;  ///< front = coldest
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sga::svc
