#include "svc/congestion.h"

#include "core/error.h"

namespace sga::svc {

DutyCycleCongestor::DutyCycleCongestor(std::uint32_t admit_phase,
                                       std::uint32_t shed_phase)
    : admit_phase_(admit_phase), shed_phase_(shed_phase) {
  SGA_REQUIRE(admit_phase >= 1, "DutyCycleCongestor: admit phase must be >= 1");
}

bool DutyCycleCongestor::shed(std::size_t /*queue_depth*/) {
  const bool reject = pos_ >= admit_phase_;
  pos_ = (pos_ + 1) % (admit_phase_ + shed_phase_);
  if (reject) {
    ++rejected_;
  } else {
    ++admitted_;
  }
  return reject;
}

}  // namespace sga::svc
