#include "svc/hash.h"

namespace sga::svc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t graph_content_hash(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, g.num_vertices());
  mix(h, g.num_edges());
  for (const Edge& e : g.edges()) {
    mix(h, e.from);
    mix(h, e.to);
    mix(h, static_cast<std::uint64_t>(e.length));
  }
  return h;
}

}  // namespace sga::svc
