#include "svc/cache.h"

#include <chrono>

#include "core/error.h"

namespace sga::svc {

NetworkCache::NetworkCache(std::size_t capacity) : capacity_(capacity) {
  SGA_REQUIRE(capacity >= 1, "NetworkCache: capacity must be >= 1");
}

void NetworkCache::touch(Entry& e, const ArtifactKey& key) {
  lru_.erase(e.lru);
  e.lru = lru_.insert(lru_.end(), key);
}

void NetworkCache::evict_excess() {
  while (map_.size() > capacity_ && !lru_.empty()) {
    const ArtifactKey cold = lru_.front();
    const auto it = map_.find(cold);
    SGA_CHECK(it != map_.end(), "NetworkCache: LRU list out of sync");
    // Never evict an in-flight build: its waiters hold the future, and the
    // builder will complete it regardless. Rotate it to the hot end instead
    // (it is about to be the most recent completion anyway).
    if (it->second.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      touch(it->second, cold);
      if (lru_.front() == cold) break;  // everything resident is in flight
      continue;
    }
    lru_.pop_front();
    map_.erase(it);
    ++evictions_;
  }
}

NetworkCache::ArtifactPtr NetworkCache::get_or_build(const ArtifactKey& key,
                                                     const Builder& build) {
  std::shared_future<ArtifactPtr> fut;
  std::shared_ptr<std::promise<ArtifactPtr>> mine;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      touch(it->second, key);
      fut = it->second.future;
    } else {
      ++misses_;
      mine = std::make_shared<std::promise<ArtifactPtr>>();
      fut = mine->get_future().share();
      Entry e;
      e.future = fut;
      e.lru = lru_.insert(lru_.end(), key);
      map_.emplace(key, std::move(e));
      evict_excess();
    }
  }
  if (mine) {
    // We own the build. Outside the lock: a slow freeze must not block
    // lookups of other keys (or stats()).
    try {
      ArtifactPtr built = build();
      SGA_CHECK(built != nullptr, "NetworkCache: builder returned null");
      mine->set_value(std::move(built));
    } catch (...) {
      mine->set_exception(std::current_exception());
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      // Only erase OUR failed entry — a concurrent eviction + rebuild may
      // have replaced it with a healthy one.
      if (it != map_.end() && it->second.future.wait_for(
                                  std::chrono::seconds(0)) ==
                                  std::future_status::ready) {
        bool failed = false;
        try {
          it->second.future.get();
        } catch (...) {
          failed = true;
        }
        if (failed) {
          lru_.erase(it->second.lru);
          map_.erase(it);
        }
      }
    }
  }
  return fut.get();  // rethrows a failed build to every waiter
}

bool NetworkCache::contains(const ArtifactKey& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  return it != map_.end() &&
         it->second.future.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

CacheStats NetworkCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = map_.size();
  return s;
}

}  // namespace sga::svc
