// QueryService: the persistent compile-once, serve-many query layer
// (docs/SERVICE.md; ARCHITECTURE.md §1.7).
//
// The one-shot drivers in src/nga pay a full network build + freeze per
// call. A long-lived service amortizes that across every query that shares
// a fabric: graphs are registered once (content-hashed), compiled artifacts
// are memoized in a NetworkCache, and a pool of worker threads serves
// queries on reusable epoch-reset simulators (WorkerSlots). After warmup a
// steady query mix triggers ZERO re-freezes — every request is a cache hit
// served for the cost of its own event traffic.
//
// Request lifecycle:
//   submit() ──admission (LoadShedder)──► queue ──worker──► serve ──► future
//        └─► kRejected immediately when the shedder says so
// Each request is served under its own obs::MetricsRegistry (installed
// RAII-scoped as the worker thread's registry for exactly the duration of
// the request), returned in the QueryResult and merged into the service-
// level registry — per-request attribution and service-wide totals from the
// same counters. Optional per-request probes ride the worker's pooled
// probe, cleared per request.
//
// Thread safety: submit()/query()/stats()/drain() may be called from any
// thread. Results come back through std::future; the service never calls
// back into user code except the injected LoadShedder (under the queue
// lock) and the NetworkCache builders (on a worker, outside all locks).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuits/max_circuits.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "svc/cache.h"
#include "svc/checkpoint.h"
#include "svc/congestion.h"
#include "svc/worker_pool.h"

namespace sga::svc {

struct ServiceOptions {
  /// Worker threads serving queries (≥ 1).
  unsigned num_workers = 2;
  /// NetworkCache capacity: compiled artifacts kept resident.
  std::size_t cache_capacity = 8;
  /// Reusable simulators kept per worker (WorkerSlots capacity).
  std::size_t slots_per_worker = 4;
  /// Default admission policy: reject once this many requests are queued.
  /// Ignored when `shedder` is set.
  std::size_t max_queue_depth = 64;
  /// Injected admission policy (BORROWED; must outlive the service).
  /// nullptr = QueueDepthShedder(max_queue_depth).
  LoadShedder* shedder = nullptr;
  /// Event-queue implementation for every worker simulator.
  snn::QueueKind queue = snn::QueueKind::kCalendar;
  /// Periodic checkpointing for SSSP queries (docs/PERSISTENCE.md): when
  /// > 0 AND `checkpoints` is set AND the request carries a non-zero
  /// ticket, the worker pauses the run every this-many time steps and
  /// files a (snapshot, journal) checkpoint under the ticket.
  Time checkpoint_interval = 0;
  /// Checkpoint store (BORROWED; must outlive the service). nullptr
  /// disables checkpointing.
  CheckpointStore* checkpoints = nullptr;
};

/// One query. `graph` is a handle returned by add_graph(). Fields beyond
/// (kind, graph, source) are kind-specific — see the comments.
struct QueryRequest {
  QueryKind kind = QueryKind::kSssp;
  std::uint64_t graph = 0;
  VertexId source = 0;
  /// SSSP / k-hop: optional early-termination target. Max-flow: the SINK
  /// (required).
  std::optional<VertexId> target;
  /// k-hop only: hop budget (≥ 1). Requests whose ⌈log k⌉ matches share
  /// one compiled fabric.
  std::uint32_t k = 1;
  /// k-hop only: which Section-5 max circuit the fabric instantiates.
  circuits::MaxKind max_kind = circuits::MaxKind::kWiredOr;
  /// SSSP only: record shortest-path predecessors.
  bool record_parents = true;
  /// Attach a per-request probe with these options and return its recorded
  /// data (SSSP / k-hop; max-flow manages its own simulators internally
  /// and ignores probes).
  bool want_probe = false;
  obs::ProbeOptions probe;
  /// Crash-recovery identity (SSSP only): a non-zero ticket opts this
  /// request into periodic checkpointing when the service was built with a
  /// CheckpointStore and a checkpoint_interval. Tickets are caller-chosen;
  /// reusing one overwrites its checkpoints.
  std::uint64_t ticket = 0;
  /// Re-serve from the ticket's stored checkpoint instead of starting
  /// fresh (the answer is event-for-event identical to an uninterrupted
  /// run). Fails kFailed when the ticket has no checkpoint.
  bool resume = false;
};

enum class QueryStatus : std::uint8_t {
  kOk,
  kRejected,  ///< shed at admission; the request was never queued
  kFailed,    ///< serve raised; see QueryResult::error
};

struct QueryResult {
  QueryStatus status = QueryStatus::kOk;
  std::string error;  ///< set iff status == kFailed / kRejected

  // ---- SSSP / k-hop payload -------------------------------------------
  std::vector<Weight> dist;          ///< kInfiniteDistance where unreached
  std::vector<VertexId> parent;      ///< SSSP with record_parents
  std::vector<std::uint32_t> hops;   ///< k-hop: edges used per vertex

  // ---- Max-flow payload -----------------------------------------------
  std::int64_t flow_value = 0;
  std::uint64_t phases = 0;               ///< augmenting paths
  std::vector<std::int64_t> flow;         ///< per input edge

  // ---- Cost accounting -------------------------------------------------
  Time execution_time = 0;      ///< SNN steps (Σ over phases for max-flow)
  std::uint64_t total_spikes = 0;
  snn::SimStats sim;            ///< final run's stats (zero for max-flow)

  // ---- Per-request observability --------------------------------------
  /// Everything instrumented code recorded while serving THIS request
  /// (sim.* counters, sim.run_ns timer, svc.request_ns, ...).
  obs::MetricsRegistry metrics;
  /// Copy of the per-request probe's recordings (want_probe only).
  std::optional<obs::Probe> probe_data;

  bool ok() const { return status == QueryStatus::kOk; }
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  /// Graceful shutdown: queued requests are served, then workers exit.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Register a graph; returns its content hash — the handle QueryRequest
  /// refers to. Idempotent: re-adding an identical graph returns the same
  /// handle and keeps the first copy (so resident artifacts stay valid).
  std::uint64_t add_graph(Graph g);
  /// The registered graph behind a handle (nullptr if unknown).
  std::shared_ptr<const Graph> graph(std::uint64_t handle) const;

  /// Enqueue a query. Returns immediately: a ready kRejected future when
  /// the admission policy sheds it, a pending one otherwise.
  std::future<QueryResult> submit(QueryRequest req);
  /// submit() + wait. The calling thread blocks until a worker serves it.
  QueryResult query(QueryRequest req);

  /// Block until every queued request has been served.
  void drain();

  struct Stats {
    std::uint64_t submitted = 0;  ///< all submit() calls
    std::uint64_t served = 0;     ///< completed OK
    std::uint64_t rejected = 0;   ///< shed at admission
    std::uint64_t failed = 0;     ///< completed with an error
    CacheStats cache;
  };
  Stats stats() const;

  const NetworkCache& cache() const { return cache_; }
  /// Snapshot of the service-level registry (all requests' metrics merged).
  obs::MetricsRegistry metrics() const;

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResult> promise;
  };

  void worker_main();
  QueryResult serve(WorkerSlots& slots, const QueryRequest& req);
  void serve_impl(WorkerSlots& slots, const QueryRequest& req,
                  QueryResult& res);
  void serve_sssp(WorkerSlots& slots, const QueryRequest& req,
                  const std::shared_ptr<const Graph>& graph, QueryResult& res);
  void serve_khop(WorkerSlots& slots, const QueryRequest& req,
                  const std::shared_ptr<const Graph>& graph, QueryResult& res);
  void serve_maxflow(const QueryRequest& req,
                     const std::shared_ptr<const Graph>& graph,
                     QueryResult& res);

  const ServiceOptions opt_;
  QueueDepthShedder default_shedder_;
  LoadShedder* shedder_;  ///< opt_.shedder or &default_shedder_
  NetworkCache cache_;

  mutable std::mutex graphs_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Graph>> graphs_;

  mutable std::mutex mu_;  ///< queue + admission + submit-side counters
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  std::size_t active_ = 0;  ///< requests currently being served
  bool stop_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;

  mutable std::mutex done_mu_;  ///< serve-side counters + merged metrics
  std::uint64_t served_ = 0;
  std::uint64_t failed_ = 0;
  obs::MetricsRegistry metrics_;

  std::vector<std::thread> workers_;
};

}  // namespace sga::svc
