// Admission control for the query service (docs/SERVICE.md §admission).
//
// A long-lived service cannot let its request queue grow without bound: a
// burst that outruns the workers would stretch every later request's
// latency and pin delivery-buffer memory across the whole backlog. The
// service therefore consults a LoadShedder at submit() time — BEFORE the
// request is enqueued — and rejects (QueryStatus::kRejected) instead of
// queueing when the shedder says so. Rejection is cheap and explicit; the
// caller can retry, back off, or fail over.
//
// The policy is injectable so tests and benches can drive the admission
// path deterministically (the duty-cycle congestor below), and so
// deployments can plug in smarter policies without touching the service.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sga::svc {

/// Admission policy. The service calls shed() once per submitted request,
/// under its queue lock — implementations may keep unsynchronized state but
/// must not block.
class LoadShedder {
 public:
  virtual ~LoadShedder() = default;
  /// `queue_depth` = requests already waiting (not counting this one).
  /// Return true to REJECT the request, false to admit it.
  virtual bool shed(std::size_t queue_depth) = 0;
};

/// Default policy: admit until the queue holds `max_depth` requests.
class QueueDepthShedder final : public LoadShedder {
 public:
  explicit QueueDepthShedder(std::size_t max_depth) : max_depth_(max_depth) {}
  bool shed(std::size_t queue_depth) override {
    return queue_depth >= max_depth_;
  }

 private:
  std::size_t max_depth_;
};

/// Deterministic duty-cycle congestor for tests and benches: admits
/// `admit_phase` consecutive requests, sheds the next `shed_phase`, and
/// repeats — ignoring queue depth entirely. The decision depends only on
/// the submission SEQUENCE, so a bench that submits a fixed request list
/// rejects the exact same requests on every run regardless of worker
/// timing (the determinism contract of BENCH_service.json).
class DutyCycleCongestor final : public LoadShedder {
 public:
  DutyCycleCongestor(std::uint32_t admit_phase, std::uint32_t shed_phase);
  bool shed(std::size_t queue_depth) override;

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::uint32_t admit_phase_;
  std::uint32_t shed_phase_;
  std::uint32_t pos_ = 0;  ///< position within the current cycle
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace sga::svc
