#include "svc/worker_pool.h"

#include <algorithm>

#include "core/error.h"

namespace sga::svc {

WorkerSlots::WorkerSlots(std::size_t capacity, snn::QueueKind queue)
    : capacity_(capacity), queue_(queue) {
  SGA_REQUIRE(capacity >= 1, "WorkerSlots: capacity must be >= 1");
  slots_.reserve(capacity);
}

snn::Simulator& WorkerSlots::acquire(NetworkCache::ArtifactPtr artifact) {
  SGA_REQUIRE(artifact != nullptr, "WorkerSlots::acquire: null artifact");
  ++tick_;
  for (Slot& s : slots_) {
    if (s.artifact == artifact) {
      s.last_used = tick_;
      // Same artifact ⇒ same frozen network: rewind instead of rebuilding.
      // Detach the probe BEFORE the next request decides whether it wants
      // one — a stale attached probe would silently record into the pool.
      s.sim->detach_probe();
      s.sim->reset();
      current_ = &s;
      last_reused_ = true;
      return *s.sim;
    }
  }
  last_reused_ = false;
  Slot* slot = nullptr;
  if (slots_.size() < capacity_) {
    slot = &slots_.emplace_back();
  } else {
    // Evict the least-recently-used slot: its simulator, probe, and
    // artifact reference all go; the artifact itself survives while the
    // NetworkCache (or another worker) still holds it.
    slot = &*std::min_element(slots_.begin(), slots_.end(),
                              [](const Slot& a, const Slot& b) {
                                return a.last_used < b.last_used;
                              });
    slot->sim.reset();
    slot->probe.reset();
  }
  slot->artifact = std::move(artifact);
  slot->sim.emplace(slot->artifact->net(), queue_);
  slot->last_used = tick_;
  current_ = slot;
  return *slot->sim;
}

obs::Probe& WorkerSlots::attach_probe(const obs::ProbeOptions& opt) {
  SGA_CHECK(current_ != nullptr,
            "WorkerSlots::attach_probe before any acquire()");
  Slot& s = *current_;
  if (s.probe != nullptr && s.probe->options() == opt) {
    // Reuse-lifecycle fix: Probe accumulates across Simulator::reset() by
    // design, so a pooled probe MUST be emptied per request — otherwise a
    // back-to-back request would read the previous request's spikes folded
    // into its own counts.
    s.probe->clear();
  } else {
    s.probe = std::make_unique<obs::Probe>(opt);
  }
  s.sim->attach_probe(*s.probe);
  return *s.probe;
}

}  // namespace sga::svc
