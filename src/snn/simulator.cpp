#include "snn/simulator.h"

#include <algorithm>
#include <bit>
#include <variant>

#include "obs/metrics.h"
#include "obs/probe.h"
#include "snn/snapshot.h"

namespace sga::snn {

namespace {

/// Calendar ring size: a power of two covering the largest synapse delay,
/// clamped to [64, 2^16] slots. Below the clamp every fired event lands in
/// the ring; above it, oversized delays spill (counted in SimStats).
std::size_t ring_size_for(Delay max_delay) {
  const auto want = static_cast<std::uint64_t>(max_delay) + 1;
  return static_cast<std::size_t>(
      std::bit_ceil(std::clamp<std::uint64_t>(want, 64, 1u << 16)));
}

/// Append [b, e) to `dst`, widening element-wise when the storage type is
/// narrower than the bucket's. Matching types keep the memcpy-grade range
/// insert of the wide layout.
template <typename T, typename U>
void append_widened(std::vector<T>& dst, const U* b, const U* e) {
  if constexpr (std::is_same_v<T, U>) {
    dst.insert(dst.end(), b, e);
  } else {
    dst.reserve(dst.size() + static_cast<std::size_t>(e - b));
    for (const U* p = b; p != e; ++p) dst.push_back(static_cast<T>(*p));
  }
}

}  // namespace

Simulator::Simulator(const CompiledNetwork& net, QueueKind queue,
                     FanoutKind fanout)
    : net_(&net), queue_kind_(queue), fanout_kind_(fanout) {
  init_state();
}

Simulator::Simulator(const Network& net, QueueKind queue, FanoutKind fanout)
    : owned_(net.compile()),
      net_(&*owned_),
      queue_kind_(queue),
      fanout_kind_(fanout) {
  init_state();
}

void Simulator::init_state() {
  const std::size_t n = net_->num_neurons();
  v_.resize(n);
  last_update_.assign(n, 0);
  first_spike_.assign(n, kNever);
  last_spike_.assign(n, kNever);
  spike_count_.assign(n, 0);
  cause_.assign(n, kNoNeuron);
  state_stamp_.assign(n, 0);
  accum_.assign(n, 0);
  accum_cause_.assign(n, kNoNeuron);
  accum_cause_weight_.assign(n, 0);
  touched_.assign(n, 0);
  is_terminal_.assign(n, 0);
  is_watched_.assign(n, 0);
  for (NeuronId i = 0; i < n; ++i) v_[i] = net_->v_reset(i);
  if (queue_kind_ == QueueKind::kCalendar) {
    const std::size_t w = ring_size_for(net_->max_delay());
    ring_.resize(w);
    ring_occupied_.assign(w / 64, 0);
    ring_mask_ = static_cast<Time>(w - 1);
    stats_.ring_buckets = static_cast<std::uint32_t>(w);
  }
  stats_.csr_bytes = net_->csr_storage_bytes();
  stats_.storage_encoding = encoding_code(net_->storage_widths());
  // Resolve the storage layout ONCE: fire() calls through fanout_fn_, so
  // the inner loop is a fully-typed instantiation with no per-event
  // branching on either the width or the kernel kind.
  fanout_fn_ = std::visit(
      [this](const auto& st) -> FanoutFn {
        using Store = std::decay_t<decltype(st)>;
        return fanout_kind_ == FanoutKind::kSegmented
                   ? &Simulator::fanout_segmented<Store>
                   : &Simulator::fanout_per_synapse<Store>;
      },
      net_->synapse_store());
}

template <typename Store>
void Simulator::decode_row(const Store& st, std::size_t b, std::size_t e) {
  const std::size_t len = e - b;
  if (decode_scratch_.size() < len) decode_scratch_.resize(len);
  std::uint32_t tmp[kPackedBlockSize];
  std::size_t out = 0;
  for (std::size_t j = b / kPackedBlockSize; j * kPackedBlockSize < e; ++j) {
    const std::size_t blk_begin = j * kPackedBlockSize;
    const std::size_t count = st.decode_block(j, tmp);
    ++stats_.decode_blocks;
    const std::size_t lo = b > blk_begin ? b - blk_begin : 0;
    const std::size_t hi = std::min(e - blk_begin, count);
    for (std::size_t i = lo; i < hi; ++i) {
      decode_scratch_[out++] = static_cast<NeuronId>(tmp[i]);
    }
  }
}

template <typename Store>
void Simulator::fanout_segmented(NeuronId id, Time t) {
  // One queue lookup per delay run, then a bulk append of the run's
  // (target, weight) pairs; sources only when a cause is being recorded.
  const Store& st = *std::get_if<Store>(&net_->synapse_store());
  if constexpr (Store::kPackedLayout) {
    // Block-decode path (ARCHITECTURE.md §1.11): the whole row's targets
    // are decoded ONCE into the persistent scratch buffer — lazily, so a
    // row entirely past the horizon decodes nothing — then each delay run
    // bulk-appends its slice exactly like the flat branch below. Weights
    // stay a flat column; delays come from the segment CSR, which is their
    // run-length encoding.
    const std::size_t rb = net_->out_begin(id);
    const auto* wgt = st.weights.data();
    const std::size_t se = net_->seg_end(id);
    bool decoded = false;
    for (std::size_t s = net_->seg_begin(id); s < se; ++s) {
      ++stats_.fanout_segments;
      const auto d = static_cast<Delay>(st.seg_delays[s]);
      if (d > max_time_ - t) {
        // Segment delays increase along the row, so every remaining run
        // is past the horizon too.
        stats_.hit_time_limit = true;
        break;
      }
      if (!decoded) {
        decode_row(st, rb, net_->out_end(id));
        decoded = true;
      }
      const auto b = static_cast<std::size_t>(st.seg_syn_begin[s]);
      const auto e = static_cast<std::size_t>(st.seg_syn_begin[s + 1]);
      Bucket& bucket = bucket_for(t + d, e - b);
      if (e - b == 1) {
        bucket.targets.push_back(decode_scratch_[b - rb]);
        bucket.weights.push_back(static_cast<SynWeight>(wgt[b]));
        if (record_causes_) bucket.sources.push_back(id);
      } else {
        bucket.targets.insert(bucket.targets.end(),
                              decode_scratch_.data() + (b - rb),
                              decode_scratch_.data() + (e - rb));
        append_widened(bucket.weights, wgt + b, wgt + e);
        if (record_causes_) {
          bucket.sources.insert(bucket.sources.end(), e - b, id);
        }
      }
      ++stats_.bulk_appends;
    }
    return;
  } else {
    const auto* tgt = st.targets.data();
    const auto* wgt = st.weights.data();
    const std::size_t se = net_->seg_end(id);
    for (std::size_t s = net_->seg_begin(id); s < se; ++s) {
      ++stats_.fanout_segments;
      const auto d = static_cast<Delay>(st.seg_delays[s]);
      if (d > max_time_ - t) {
        // Segment delays increase along the row, so every remaining run is
        // past the horizon too.
        stats_.hit_time_limit = true;
        break;
      }
      const auto b = static_cast<std::size_t>(st.seg_syn_begin[s]);
      const auto e = static_cast<std::size_t>(st.seg_syn_end[s]);
      Bucket& bucket = bucket_for(t + d, e - b);
      if (e - b == 1) {
        // Singleton run (every delay in the row distinct): push_back beats
        // the range-insert machinery, and rows like this are common in
        // SSSP instances with wide length ranges.
        bucket.targets.push_back(static_cast<NeuronId>(tgt[b]));
        bucket.weights.push_back(static_cast<SynWeight>(wgt[b]));
        if (record_causes_) bucket.sources.push_back(id);
      } else {
        append_widened(bucket.targets, tgt + b, tgt + e);
        append_widened(bucket.weights, wgt + b, wgt + e);
        if (record_causes_) {
          bucket.sources.insert(bucket.sources.end(), e - b, id);
        }
      }
      ++stats_.bulk_appends;
    }
  }
}

template <typename Store>
void Simulator::fanout_per_synapse(NeuronId id, Time t) {
  // Legacy per-synapse kernel (bench ablation + fuzzing oracle).
  const Store& st = *std::get_if<Store>(&net_->synapse_store());
  if constexpr (Store::kPackedLayout) {
    // Per-synapse oracle over the packed layout: one whole-row decode,
    // then single-element appends in flat order with the delay taken from
    // the enclosing run — event-for-event identical to the flat oracle,
    // including its per-synapse horizon `continue`.
    const std::size_t rb = net_->out_begin(id);
    if (net_->out_end(id) == rb) return;
    decode_row(st, rb, net_->out_end(id));
    const auto* wgt = st.weights.data();
    const std::size_t se = net_->seg_end(id);
    for (std::size_t s = net_->seg_begin(id); s < se; ++s) {
      const auto d = static_cast<Delay>(st.seg_delays[s]);
      const auto e = static_cast<std::size_t>(st.seg_syn_begin[s + 1]);
      if (d > max_time_ - t) {
        stats_.hit_time_limit = true;
        continue;
      }
      for (auto k = static_cast<std::size_t>(st.seg_syn_begin[s]); k < e;
           ++k) {
        Bucket& bucket = bucket_for(t + d, 1);
        bucket.targets.push_back(decode_scratch_[k - rb]);
        bucket.weights.push_back(static_cast<SynWeight>(wgt[k]));
        if (record_causes_) bucket.sources.push_back(id);
      }
    }
    return;
  } else {
    const std::size_t ke = net_->out_end(id);
    for (std::size_t k = net_->out_begin(id); k < ke; ++k) {
      const auto d = static_cast<Delay>(st.delays[k]);
      if (d > max_time_ - t) {
        stats_.hit_time_limit = true;
        continue;
      }
      Bucket& bucket = bucket_for(t + d, 1);
      bucket.targets.push_back(static_cast<NeuronId>(st.targets[k]));
      bucket.weights.push_back(static_cast<SynWeight>(st.weights[k]));
      if (record_causes_) bucket.sources.push_back(id);
    }
  }
}

void Simulator::attach_probe(obs::Probe& probe) {
  probe.bind(net_->num_neurons());
  probe_ = &probe;
}

void Simulator::inject_spike(NeuronId id, Time t) {
  SGA_REQUIRE(id < net_->num_neurons(), "inject_spike: bad neuron " << id);
  SGA_REQUIRE(t >= 0, "inject_spike: negative time " << t);
  SGA_REQUIRE(t <= kNever, "inject_spike: time " << t << " beyond kNever");
  SGA_REQUIRE(!ran_ || paused_,
              "inject_spike after run() (call reset() first, or pause the "
              "run to inject mid-flight)");
  // Mid-run injection (paused only): everything below the resume floor has
  // already been processed — an earlier event would land behind the queue
  // cursor and silently never fire, so refuse it.
  SGA_REQUIRE(!paused_ || t >= pause_floor_,
              "inject_spike at t=" << t << " into a paused run whose resume "
                                   << "floor is " << pause_floor_);
  bucket_for(t, 1).forced.push_back(id);
}

Simulator::Bucket& Simulator::bucket_for(Time t, std::uint64_t count) {
  pending_events_ += count;
  if (pending_events_ > stats_.peak_queue_events) {
    stats_.peak_queue_events = pending_events_;
  }
  if (queue_kind_ == QueueKind::kCalendar) {
    // Strict upper bound: a slot equal to the one currently being drained
    // (t ≡ cursor_ mod W would need t = cursor_ + W) can never be hit, so
    // draining a bucket in place is safe.
    if (t - cursor_ < static_cast<Time>(ring_.size())) {
      const auto slot = static_cast<std::size_t>(t & ring_mask_);
      std::uint64_t& word = ring_occupied_[slot >> 6];
      const std::uint64_t bit = 1ULL << (slot & 63);
      if ((word & bit) == 0) {
        // First event in this slot since it was last drained: hand it
        // pooled storage (drained buckets donate theirs, so only a
        // cold-start activation allocates).
        word |= bit;
        activate(ring_[slot]);
      }
      ring_events_ += count;
      return ring_[slot];
    }
    stats_.overflow_spills += count;
  }
  const auto [it, inserted] = spill_.try_emplace(t);
  if (inserted) activate(it->second);
  return it->second;
}

void Simulator::migrate_spill() {
  const auto w = static_cast<Time>(ring_.size());
  while (!spill_.empty()) {
    const auto it = spill_.begin();
    if (it->first - cursor_ >= w) break;
    const auto slot = static_cast<std::size_t>(it->first & ring_mask_);
    Bucket& dst = ring_[slot];
    ring_occupied_[slot >> 6] |= 1ULL << (slot & 63);
    ring_events_ += it->second.size();
    if (dst.empty()) {
      // An unoccupied slot holds no storage (drains donate it to the pool),
      // so adopting the spill node's vectors wholesale loses nothing.
      dst = std::move(it->second);
    } else {
      // Same residue inside one window ⇒ same time: merge, then return the
      // spill node's storage to the pool instead of freeing it.
      Bucket& src = it->second;
      dst.targets.insert(dst.targets.end(), src.targets.begin(),
                         src.targets.end());
      dst.weights.insert(dst.weights.end(), src.weights.begin(),
                         src.weights.end());
      dst.sources.insert(dst.sources.end(), src.sources.begin(),
                         src.sources.end());
      dst.forced.insert(dst.forced.end(), src.forced.begin(),
                        src.forced.end());
      recycle(src);
    }
    spill_.erase(it);
  }
}

bool Simulator::next_pending_time(Time* t) {
  if (queue_kind_ == QueueKind::kMap) {
    if (spill_.empty()) return false;
    *t = spill_.begin()->first;
    return true;
  }
  migrate_spill();
  if (ring_events_ == 0) {
    if (spill_.empty()) return false;
    cursor_ = spill_.begin()->first - 1;  // slide the window to the next event
    migrate_spill();
  }
  // Circular occupancy-bitmap scan from cursor_ + 1; slot order equals time
  // order inside the window, so the first set bit is the earliest event.
  const auto start = static_cast<std::size_t>((cursor_ + 1) & ring_mask_);
  const std::size_t word_mask = ring_occupied_.size() - 1;  // W/64 is pow2
  std::size_t w = start >> 6;
  std::uint64_t word = ring_occupied_[w] & (~0ULL << (start & 63));
  while (word == 0) {
    w = (w + 1) & word_mask;
    word = ring_occupied_[w];
  }
  const std::size_t slot =
      (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
  const std::size_t offset = (slot - start) & static_cast<std::size_t>(ring_mask_);
  stats_.empty_bucket_scans += offset;
  *t = cursor_ + 1 + static_cast<Time>(offset);
  return true;
}

Voltage Simulator::decayed_potential(NeuronId id, Time t) const {
  const Time dt = t - last_update_[id];
  SGA_CHECK(dt >= 0, "time went backwards for neuron " << id);
  return decay_potential(v_[id], net_->v_reset(id), net_->tau(id), dt);
}

void Simulator::fire(NeuronId id, Time t) {
  const bool first_fire = first_spike_[id] == kNever;
  touch_state(id);
  v_[id] = net_->v_reset(id);  // Eq. (3)
  last_update_[id] = t;
  ++spike_count_[id];
  ++stats_.spikes;
  if (first_fire) first_spike_[id] = t;
  last_spike_[id] = t;
  if (probe_ != nullptr) probe_->on_spike(t, id);
  if (record_log_ && (watch_all_ || is_watched_[id])) {
    spike_log_.emplace_back(t, id);
  }
  if (is_terminal_[id] && !terminal_fired_ && first_fire) {
    --terminals_remaining_;
    if (terminals_remaining_ == 0) {
      terminal_fired_ = true;
      stats_.hit_terminal = true;
      stats_.execution_time = t;
    }
  }
  // CSR fan-out: the fired neuron's synapses are one contiguous, delay-
  // sorted slice of the flat delay/target/weight arrays. The horizon check
  // inside the kernels is in subtraction form: t ≤ max_time_ always holds
  // here, so max_time_ - t cannot overflow, while t + delay could (kNever
  // horizon × pseudopolynomial delay). Dropping work past the horizon
  // reports hit_time_limit, consistently with the pop-side check that
  // catches post-horizon injected spikes. fanout_fn_ was bound once in
  // init_state() to the kernel instantiated for the frozen storage widths.
  (this->*fanout_fn_)(id, t);
}

SimStats Simulator::run(const SimConfig& config) {
  SGA_REQUIRE(!ran_ || paused_,
              "Simulator::run is one-shot (call reset() to reuse, or pause "
              "via SimConfig::pause_time to resume later)");
  // Per-run metrics go to the CURRENT THREAD's registry (nullptr = off,
  // the default); multi-threaded drivers install one registry per worker
  // and merge after join, so this line never contends.
  obs::ScopedTimer run_timer(obs::thread_metrics(), "sim.run_ns");
  const bool resuming = ran_;
  // Metrics report per-call deltas: a paused-and-resumed run must not
  // double-count the pre-pause portion of the cumulative stats.
  const std::uint64_t spikes0 = stats_.spikes;
  const std::uint64_t deliveries0 = stats_.deliveries;
  const std::uint64_t event_times0 = stats_.event_times;
  const std::uint64_t spills0 = stats_.overflow_spills;
  ran_ = true;
  if (resuming) {
    // Resume continues the SAME logical run: the recording flags and the
    // horizon shape the event stream itself, so they cannot change
    // mid-flight (deliveries enqueued before the pause already reflect
    // them). The pause point may move; everything else must match.
    SGA_REQUIRE(config.record_causes == record_causes_ &&
                    config.record_spike_log == record_log_,
                "resume: record_causes/record_spike_log must match the "
                "paused run");
    SGA_REQUIRE(config.max_time == max_time_,
                "resume: max_time must match the paused run ("
                    << max_time_ << ")");
  } else {
    record_causes_ = config.record_causes;
    record_log_ = config.record_spike_log;
    max_time_ = config.max_time;
  }
  pause_time_ = config.pause_time;
  paused_ = false;
  stats_.paused = false;
  std::uint64_t distinct_terminals = 0;
  for (const NeuronId t : config.terminal_neurons) {
    SGA_REQUIRE(t < net_->num_neurons(), "bad terminal neuron " << t);
    if (!is_terminal_[t]) {
      is_terminal_[t] = 1;
      active_terminals_.push_back(t);
      ++distinct_terminals;
    }
  }
  if (!resuming) {
    terminals_remaining_ = config.terminate_on_all
                               ? distinct_terminals
                               : std::min<std::uint64_t>(1, distinct_terminals);
  } else if (distinct_terminals > 0) {
    // A resume may add terminals; ones already registered before the pause
    // were counted then (registration is idempotent, so only genuinely new
    // ids reach this adjustment).
    terminals_remaining_ +=
        config.terminate_on_all
            ? distinct_terminals
            : ((terminals_remaining_ == 0 && !terminal_fired_) ? 1 : 0);
  }
  if (!resuming) watch_all_ = config.watched_neurons.empty();
  for (const NeuronId w : config.watched_neurons) {
    SGA_REQUIRE(w < net_->num_neurons(), "bad watched neuron " << w);
    if (!is_watched_[w]) {
      is_watched_[w] = 1;
      active_watched_.push_back(w);
    }
  }

  std::vector<NeuronId>& targets = targets_scratch_;  // deduplicated, per step
  while (true) {
    Time t = 0;
    if (!next_pending_time(&t)) break;
    if (t > max_time_) {
      stats_.hit_time_limit = true;
      break;
    }
    if (t > pause_time_) {
      // Cooperative pause BETWEEN steps: unlike the horizon break above,
      // the bucket at t (and everything after it) stays queued — nothing
      // is dropped, so a later run() call or a restore-elsewhere continues
      // event-for-event exactly.
      paused_ = true;
      stats_.paused = true;
      pause_floor_ = t;
      break;
    }
    // Drain the bucket in place: with delay ≥ 1 and the ring's strict
    // window bound, nothing scheduled during fire() can land back in the
    // bucket being iterated (map nodes are reference-stable anyway).
    Bucket* bucket = nullptr;
    auto map_it = spill_.end();
    if (queue_kind_ == QueueKind::kCalendar) {
      cursor_ = t;
      bucket = &ring_[static_cast<std::size_t>(t & ring_mask_)];
      ring_events_ -= bucket->size();
    } else {
      map_it = spill_.begin();
      bucket = &map_it->second;
    }
    pending_events_ -= bucket->size();
    if (bucket->size() > stats_.max_bucket_occupancy) {
      stats_.max_bucket_occupancy = bucket->size();
    }
    ++stats_.event_times;
    stats_.end_time = t;

    // Probe hook, OUTSIDE the accumulation loop below: the per-delivery
    // iteration is duplicated only when a probe is counting, so the
    // uninstrumented hot loop stays untouched (overhead contract).
    if (probe_ != nullptr && probe_->counts_deliveries()) {
      for (const NeuronId target : bucket->targets) {
        probe_->on_delivery(target);
      }
    }

    targets.clear();
    const std::size_t nd = bucket->targets.size();
    stats_.deliveries += nd;
    for (std::size_t i = 0; i < nd; ++i) {
      const NeuronId target = bucket->targets[i];
      const SynWeight weight = bucket->weights[i];
      if (!touched_[target]) {
        touched_[target] = 1;
        targets.push_back(target);
        accum_[target] = 0;
        accum_cause_[target] = kNoNeuron;
        accum_cause_weight_[target] = 0;
      }
      accum_[target] += weight;
      if (record_causes_) {
        // Deterministic selection: largest weight, ties broken by smallest
        // source id. Independent of delivery order, so every engine
        // (serial, map-queue, sharded-parallel) reports the same cause.
        // sources is populated exactly when record_causes_ is set.
        const NeuronId source = bucket->sources[i];
        SynWeight& bw = accum_cause_weight_[target];
        NeuronId& bs = accum_cause_[target];
        if (weight > bw ||
            (bs != kNoNeuron && weight == bw && source < bs)) {
          bs = source;
          bw = weight;
        }
      }
    }

    // Forced (injected) spikes fire unconditionally; synaptic input arriving
    // at the same step is consumed by the fire (the neuron resets). A neuron
    // fires at most once per step (Definition 2), so duplicate injections at
    // the same time collapse.
    for (const NeuronId id : bucket->forced) {
      if (last_spike_[id] == t) continue;
      fire(id, t);
      if (touched_[id]) {
        // Mark as handled so the delivery pass below skips it.
        accum_[id] = 0;
        touched_[id] = 2;
      }
    }

    for (const NeuronId id : targets) {
      if (touched_[id] == 2) {  // already force-fired this step
        touched_[id] = 0;
        continue;
      }
      touched_[id] = 0;
      const Voltage v_hat = decayed_potential(id, t) + accum_[id];  // Eq. (1)
      if (v_hat >= net_->v_threshold(id)) {                         // Eq. (2)
        if (record_causes_ && first_spike_[id] == kNever) {
          cause_[id] = accum_cause_[id];
        }
        fire(id, t);
      } else {
        touch_state(id);
        v_[id] = v_hat;
        last_update_[id] = t;
      }
    }

    // Membrane sampling after the threshold pass: v_[id] now holds the
    // post-integration potential (or the reset value if the neuron fired).
    if (probe_ != nullptr && probe_->samples_potentials()) {
      for (const NeuronId id : targets) probe_->on_potential(t, id, v_[id]);
    }

    // Release the drained bucket: its storage (capacity intact) goes to the
    // pool for the next activation, keeping the steady state allocation-free.
    recycle(*bucket);
    if (queue_kind_ == QueueKind::kCalendar) {
      const auto slot = static_cast<std::size_t>(t & ring_mask_);
      ring_occupied_[slot >> 6] &= ~(1ULL << (slot & 63));
    } else {
      spill_.erase(map_it);
    }

    if (terminal_fired_) break;
  }
  if (obs::MetricsRegistry* m = obs::thread_metrics()) {
    m->add("sim.runs");
    m->add("sim.spikes", stats_.spikes - spikes0);
    m->add("sim.deliveries", stats_.deliveries - deliveries0);
    m->add("sim.event_times", stats_.event_times - event_times0);
    m->add("sim.overflow_spills", stats_.overflow_spills - spills0);
    m->gauge("sim.csr_bytes", static_cast<double>(stats_.csr_bytes));
    m->gauge("sim.storage_encoding",
             static_cast<double>(stats_.storage_encoding));
  }
  return stats_;
}

void Simulator::reset() {
  // Per-neuron state: restore only the entries the previous cycle dirtied.
  for (const NeuronId id : dirty_) {
    v_[id] = net_->v_reset(id);
    last_update_[id] = 0;
    first_spike_[id] = kNever;
    last_spike_[id] = kNever;
    spike_count_[id] = 0;
    cause_[id] = kNoNeuron;
  }
  dirty_.clear();
  ++epoch_;
  for (const NeuronId t : active_terminals_) is_terminal_[t] = 0;
  active_terminals_.clear();
  for (const NeuronId w : active_watched_) is_watched_[w] = 0;
  active_watched_.clear();
  watch_all_ = false;
  // Queue: drained buckets already donated their storage; sweep the
  // occupancy bitmap only when a terminal/horizon stop left events behind,
  // recycling the leftovers so the pool survives reset() intact.
  if (ring_events_ > 0) {
    for (std::size_t w = 0; w < ring_occupied_.size(); ++w) {
      std::uint64_t word = ring_occupied_[w];
      while (word != 0) {
        const auto slot = (w << 6) + static_cast<std::size_t>(
                                         std::countr_zero(word));
        word &= word - 1;
        recycle(ring_[slot]);
      }
      ring_occupied_[w] = 0;
    }
    ring_events_ = 0;
  }
  for (auto& [t, bucket] : spill_) recycle(bucket);
  spill_.clear();
  pending_events_ = 0;
  cursor_ = -1;
  // Pool high-watermark trim (reuse-lifecycle fix; docs/SERVICE.md): with
  // every bucket recycled, the pool holds the ALL-TIME peak concurrent
  // bucket demand — a pooled worker that once served a large request would
  // otherwise pin that footprint forever. Keep the larger of the last two
  // runs' peaks: enough for a same-shaped rerun to stay allocation-free
  // (pool_misses == 0) and for an alternating big/small workload not to
  // thrash, while bounding resident storage by recent rather than all-time
  // demand. Drop from the front — the LIFO back is the warmest storage.
  SGA_CHECK(live_buckets_ == 0,
            "reset: " << live_buckets_ << " buckets still hold storage");
  const std::size_t keep = std::max(peak_live_buckets_, prev_peak_live_);
  if (pool_.size() > keep) {
    pool_.erase(pool_.begin(),
                pool_.begin() +
                    static_cast<std::ptrdiff_t>(pool_.size() - keep));
  }
  prev_peak_live_ = peak_live_buckets_;
  peak_live_buckets_ = 0;
  spike_log_.clear();
  stats_ = SimStats{};
  stats_.ring_buckets = queue_kind_ == QueueKind::kCalendar
                            ? static_cast<std::uint32_t>(ring_.size())
                            : 0;
  stats_.csr_bytes = net_->csr_storage_bytes();
  stats_.storage_encoding = encoding_code(net_->storage_widths());
  record_causes_ = false;
  record_log_ = false;
  max_time_ = kNever;
  terminals_remaining_ = 0;
  terminal_fired_ = false;
  paused_ = false;
  pause_time_ = kNever;
  pause_floor_ = 0;
  ran_ = false;
}

std::vector<std::uint8_t> Simulator::snapshot() const {
  obs::ScopedTimer timer(obs::thread_metrics(), "snap.snapshot_ns");
  SnapshotImage img;
  build_image(&img);
  std::vector<std::uint8_t> bytes = serialize_snapshot(img);
  if (obs::MetricsRegistry* m = obs::thread_metrics()) {
    m->add("snap.snapshots");
    m->add("snap.bytes", bytes.size());
  }
  return bytes;
}

void Simulator::build_image(SnapshotImage* img) const {
  img->num_neurons = net_->num_neurons();
  img->num_synapses = net_->num_synapses();
  img->max_delay = net_->max_delay();
  img->widths = net_->storage_widths();
  img->mid_run = ran_;
  img->record_causes = record_causes_;
  img->record_log = record_log_;
  img->watch_all = watch_all_;
  img->terminal_fired = terminal_fired_;
  img->max_time = max_time_;
  img->resume_floor =
      paused_ ? pause_floor_ : (ran_ ? stats_.end_time + 1 : 0);
  img->terminals_remaining = terminals_remaining_;
  img->terminals = active_terminals_;
  std::sort(img->terminals.begin(), img->terminals.end());
  img->watched = active_watched_;
  std::sort(img->watched.begin(), img->watched.end());

  // Per-neuron state, sparse: exactly the entries reset() would rewind.
  std::vector<NeuronId> ids = dirty_;
  std::sort(ids.begin(), ids.end());
  img->neurons.reserve(ids.size());
  for (const NeuronId id : ids) {
    SnapshotNeuron e;
    e.id = id;
    e.v = v_[id];
    e.last_update = last_update_[id];
    e.first_spike = first_spike_[id];
    e.last_spike = last_spike_[id];
    e.spike_count = spike_count_[id];
    e.cause = cause_[id];
    img->neurons.push_back(e);
  }

  // Pending events, ascending by time, VERBATIM in-bucket order (delivery
  // order is observable through FP summation and serial log order, so a
  // same-engine restore must reproduce it exactly).
  std::map<Time, const Bucket*> pending;
  if (queue_kind_ == QueueKind::kCalendar) {
    for (std::size_t w = 0; w < ring_occupied_.size(); ++w) {
      std::uint64_t word = ring_occupied_[w];
      while (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        // Slot residue → absolute time: ring events live in
        // (cursor_, cursor_ + W), so the offset from the slot after the
        // cursor is unique.
        const std::size_t start =
            static_cast<std::size_t>((cursor_ + 1) & ring_mask_);
        const std::size_t offset =
            (slot - start) & static_cast<std::size_t>(ring_mask_);
        pending.emplace(cursor_ + 1 + static_cast<Time>(offset), &ring_[slot]);
      }
    }
  }
  for (const auto& [t, bucket] : spill_) pending.emplace(t, &bucket);
  img->queue.reserve(pending.size());
  for (const auto& [t, bucket] : pending) {
    SnapshotBucket b;
    b.time = t;
    b.forced = bucket->forced;
    b.deliveries.resize(bucket->targets.size());
    for (std::size_t i = 0; i < bucket->targets.size(); ++i) {
      b.deliveries[i].target = bucket->targets[i];
      b.deliveries[i].weight = bucket->weights[i];
      if (record_causes_) b.deliveries[i].source = bucket->sources[i];
    }
    img->queue.push_back(std::move(b));
  }

  img->log = spike_log_;
  img->stats = stats_;
}

void Simulator::restore(const std::uint8_t* data, std::size_t size) {
  obs::ScopedTimer timer(obs::thread_metrics(), "snap.restore_ns");
  // ALL-OR-NOTHING: parse (structure, CRC) then validate (fingerprint,
  // every id and time) BEFORE the first mutation — a SnapshotError from
  // either leaves this simulator exactly as it was.
  const SnapshotImage img = parse_snapshot(data, size);
  validate_snapshot_for(img, *net_);
  apply_image(img);
  if (obs::MetricsRegistry* m = obs::thread_metrics()) {
    m->add("snap.restores");
  }
}

void Simulator::apply_image(const SnapshotImage& img) {
  reset();
  record_causes_ = img.record_causes;
  record_log_ = img.record_log;
  watch_all_ = img.watch_all;
  max_time_ = img.max_time;
  for (const NeuronId t : img.terminals) {
    is_terminal_[t] = 1;
    active_terminals_.push_back(t);
  }
  for (const NeuronId w : img.watched) {
    is_watched_[w] = 1;
    active_watched_.push_back(w);
  }
  terminals_remaining_ = img.terminals_remaining;
  terminal_fired_ = img.terminal_fired;

  // Re-enqueue pending events through the normal queue path (so ring vs
  // spill placement follows THIS engine's geometry), then overwrite the
  // counters it perturbed with the image's cumulative values below.
  for (const SnapshotBucket& b : img.queue) {
    Bucket& bk = bucket_for(b.time, b.forced.size() + b.deliveries.size());
    bk.forced.insert(bk.forced.end(), b.forced.begin(), b.forced.end());
    for (const SnapshotDelivery& d : b.deliveries) {
      bk.targets.push_back(d.target);
      bk.weights.push_back(d.weight);
      if (record_causes_) bk.sources.push_back(d.source);
    }
  }

  for (const SnapshotNeuron& e : img.neurons) {
    touch_state(e.id);
    v_[e.id] = e.v;
    last_update_[e.id] = e.last_update;
    first_spike_[e.id] = e.first_spike;
    last_spike_[e.id] = e.last_spike;
    spike_count_[e.id] = e.spike_count;
    cause_[e.id] = e.cause;
  }

  spike_log_ = img.log;
  stats_ = img.stats;
  // Engine-specific fields reflect the LIVE engine, not the source's.
  stats_.ring_buckets = queue_kind_ == QueueKind::kCalendar
                            ? static_cast<std::uint32_t>(ring_.size())
                            : 0;
  stats_.csr_bytes = net_->csr_storage_bytes();
  stats_.storage_encoding = encoding_code(net_->storage_widths());
  ran_ = img.mid_run;
  paused_ = img.mid_run && img.stats.paused;
  pause_floor_ = img.resume_floor;
  pause_time_ = kNever;
}

Time Simulator::first_spike(NeuronId id) const {
  SGA_REQUIRE(id < first_spike_.size(), "first_spike: bad neuron " << id);
  return first_spike_[id];
}

Time Simulator::last_spike(NeuronId id) const {
  SGA_REQUIRE(id < last_spike_.size(), "last_spike: bad neuron " << id);
  return last_spike_[id];
}

bool Simulator::fired_in(NeuronId id, Time t0, Time t1) const {
  SGA_REQUIRE(id < first_spike_.size(), "fired_in: bad neuron " << id);
  SGA_REQUIRE(t0 <= t1, "fired_in: empty window [" << t0 << ", " << t1 << "]");
  const Time f = first_spike_[id];
  if (f == kNever || f > t1) return false;
  if (f >= t0) return true;
  const Time l = last_spike_[id];
  if (l < t0) return false;
  if (l <= t1) return true;
  // The neuron fired both before t0 and after t1; only the spike log can
  // tell whether it also fired inside the window.
  SGA_REQUIRE(logged(id),
              "fired_in: neuron " << id << " fired before t0=" << t0
                                  << " and after t1=" << t1
                                  << "; deciding the window needs "
                                     "record_spike_log with this neuron "
                                     "watched");
  // The log is time-ordered, so both window edges resolve by binary search;
  // only entries strictly inside [t0, t1] are scanned.
  const auto lo = std::lower_bound(
      spike_log_.begin(), spike_log_.end(), t0,
      [](const std::pair<Time, NeuronId>& e, Time t) { return e.first < t; });
  const auto hi = std::upper_bound(
      lo, spike_log_.end(), t1,
      [](Time t, const std::pair<Time, NeuronId>& e) { return t < e.first; });
  for (auto i = lo; i != hi; ++i) {
    if (i->second == id) return true;
  }
  return false;
}

std::uint32_t Simulator::spike_count(NeuronId id) const {
  SGA_REQUIRE(id < spike_count_.size(), "spike_count: bad neuron " << id);
  return spike_count_[id];
}

NeuronId Simulator::first_spike_cause(NeuronId id) const {
  SGA_REQUIRE(id < cause_.size(), "first_spike_cause: bad neuron " << id);
  return cause_[id];
}

Voltage Simulator::potential(NeuronId id) const {
  SGA_REQUIRE(id < v_.size(), "potential: bad neuron " << id);
  return v_[id];
}

}  // namespace sga::snn
