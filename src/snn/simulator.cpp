#include "snn/simulator.h"

#include <algorithm>
#include <cmath>

namespace sga::snn {

Simulator::Simulator(const Network& net) : net_(net) {
  const std::size_t n = net.num_neurons();
  v_.resize(n);
  last_update_.assign(n, 0);
  first_spike_.assign(n, kNever);
  last_spike_.assign(n, kNever);
  spike_count_.assign(n, 0);
  cause_.assign(n, kNoNeuron);
  accum_.assign(n, 0);
  accum_cause_.assign(n, kNoNeuron);
  accum_cause_weight_.assign(n, 0);
  touched_.assign(n, 0);
  is_terminal_.assign(n, 0);
  for (NeuronId i = 0; i < n; ++i) v_[i] = net.params(i).v_reset;
}

void Simulator::inject_spike(NeuronId id, Time t) {
  SGA_REQUIRE(id < net_.num_neurons(), "inject_spike: bad neuron " << id);
  SGA_REQUIRE(t >= 0, "inject_spike: negative time " << t);
  SGA_REQUIRE(!ran_, "inject_spike after run()");
  queue_[t].forced.push_back(id);
}

Voltage Simulator::decayed_potential(NeuronId id, Time t) const {
  const NeuronParams& p = net_.params(id);
  const Time dt = t - last_update_[id];
  SGA_CHECK(dt >= 0, "time went backwards for neuron " << id);
  if (dt == 0 || p.tau == 0.0) return v_[id];
  if (p.tau == 1.0) return p.v_reset;
  return p.v_reset + (v_[id] - p.v_reset) * std::pow(1.0 - p.tau,
                                                     static_cast<double>(dt));
}

void Simulator::fire(NeuronId id, Time t) {
  const NeuronParams& p = net_.params(id);
  const bool first_fire = first_spike_[id] == kNever;
  v_[id] = p.v_reset;  // Eq. (3)
  last_update_[id] = t;
  ++spike_count_[id];
  ++stats_.spikes;
  if (first_fire) first_spike_[id] = t;
  last_spike_[id] = t;
  if (record_log_ && (watch_all_ || is_watched_[id])) {
    spike_log_.emplace_back(t, id);
  }
  if (is_terminal_[id] && !terminal_fired_ && first_fire) {
    --terminals_remaining_;
    if (terminals_remaining_ == 0) {
      terminal_fired_ = true;
      stats_.hit_terminal = true;
      stats_.execution_time = t;
    }
  }
  for (const Synapse& s : net_.out_synapses(id)) {
    const Time arrival = t + s.delay;
    if (arrival > max_time_) continue;  // outside the horizon; drop
    queue_[arrival].deliveries.push_back(Delivery{s.target, id, s.weight});
  }
}

SimStats Simulator::run(const SimConfig& config) {
  SGA_REQUIRE(!ran_, "Simulator::run is one-shot");
  ran_ = true;
  record_causes_ = config.record_causes;
  record_log_ = config.record_spike_log;
  max_time_ = config.max_time;
  std::uint64_t distinct_terminals = 0;
  for (const NeuronId t : config.terminal_neurons) {
    SGA_REQUIRE(t < net_.num_neurons(), "bad terminal neuron " << t);
    if (!is_terminal_[t]) {
      is_terminal_[t] = 1;
      ++distinct_terminals;
    }
  }
  terminals_remaining_ =
      config.terminate_on_all ? distinct_terminals
                              : std::min<std::uint64_t>(1, distinct_terminals);
  is_watched_.assign(net_.num_neurons(), 0);
  watch_all_ = config.watched_neurons.empty();
  for (const NeuronId w : config.watched_neurons) {
    SGA_REQUIRE(w < net_.num_neurons(), "bad watched neuron " << w);
    is_watched_[w] = 1;
  }

  std::vector<NeuronId> targets;  // touched this bucket, deduplicated
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    const Time t = it->first;
    if (t > max_time_) {
      stats_.hit_time_limit = true;
      break;
    }
    // Move the bucket out so that same-time scheduling during fire() (delay
    // ≥ 1 makes that impossible, but keep the invariant explicit) cannot
    // invalidate our iteration.
    Bucket bucket = std::move(it->second);
    queue_.erase(it);
    ++stats_.event_times;
    stats_.end_time = t;

    targets.clear();
    for (const Delivery& d : bucket.deliveries) {
      ++stats_.deliveries;
      if (!touched_[d.target]) {
        touched_[d.target] = 1;
        targets.push_back(d.target);
        accum_[d.target] = 0;
        accum_cause_[d.target] = kNoNeuron;
        accum_cause_weight_[d.target] = 0;
      }
      accum_[d.target] += d.weight;
      if (record_causes_ && d.weight > accum_cause_weight_[d.target]) {
        accum_cause_[d.target] = d.source;
        accum_cause_weight_[d.target] = d.weight;
      }
    }

    // Forced (injected) spikes fire unconditionally; synaptic input arriving
    // at the same step is consumed by the fire (the neuron resets). A neuron
    // fires at most once per step (Definition 2), so duplicate injections at
    // the same time collapse.
    for (const NeuronId id : bucket.forced) {
      if (last_spike_[id] == t) continue;
      fire(id, t);
      if (touched_[id]) {
        // Mark as handled so the delivery pass below skips it.
        accum_[id] = 0;
        touched_[id] = 2;
      }
    }

    for (const NeuronId id : targets) {
      if (touched_[id] == 2) {  // already force-fired this step
        touched_[id] = 0;
        continue;
      }
      touched_[id] = 0;
      const Voltage v_hat = decayed_potential(id, t) + accum_[id];  // Eq. (1)
      if (v_hat >= net_.params(id).v_threshold) {                   // Eq. (2)
        if (record_causes_ && first_spike_[id] == kNever) {
          cause_[id] = accum_cause_[id];
        }
        fire(id, t);
      } else {
        v_[id] = v_hat;
        last_update_[id] = t;
      }
    }

    if (terminal_fired_) break;
  }
  return stats_;
}

Time Simulator::first_spike(NeuronId id) const {
  SGA_REQUIRE(id < first_spike_.size(), "first_spike: bad neuron " << id);
  return first_spike_[id];
}

Time Simulator::last_spike(NeuronId id) const {
  SGA_REQUIRE(id < last_spike_.size(), "last_spike: bad neuron " << id);
  return last_spike_[id];
}

std::uint32_t Simulator::spike_count(NeuronId id) const {
  SGA_REQUIRE(id < spike_count_.size(), "spike_count: bad neuron " << id);
  return spike_count_[id];
}

NeuronId Simulator::first_spike_cause(NeuronId id) const {
  SGA_REQUIRE(id < cause_.size(), "first_spike_cause: bad neuron " << id);
  return cause_[id];
}

Voltage Simulator::potential(NeuronId id) const {
  SGA_REQUIRE(id < v_.size(), "potential: bad neuron " << id);
  return v_[id];
}

}  // namespace sga::snn
