// Sharded conservative-parallel LIF simulator (ARCHITECTURE.md §1.5).
//
// The serial snn::Simulator runs one global event loop; this engine
// partitions a CompiledNetwork's neurons into S shards (snn/partition.h),
// gives each shard its own calendar queue and membrane state, and advances
// all shards in lock-stepped windows of δ time steps, where δ is the
// smallest CROSS-shard synapse delay. Definition 1 guarantees every
// synaptic delay is ≥ δ_min ≥ 1, which is exactly the conservative
// lookahead condition of parallel discrete-event simulation: a spike fired
// at time t cannot influence another shard before t + δ, so within a
// window shards run fully independently — no lock, no atomic, no shared
// mutable state on the per-delivery hot path. Cross-shard spikes are
// appended to double-buffered per-(source shard, destination shard)
// mailboxes and handed over at the window barrier; the destination shard
// folds them into its own queue at the start of the next window.
//
// Three knobs attack the parallel-vs-serial gap, each independently
// switchable for ablation (ARCHITECTURE.md §1.10):
//   * PartitionKind::kCutRefined (default) — cut-minimizing placement that
//     shrinks cross traffic without ever shrinking the δ window;
//   * ParallelConfig::work_stealing — deterministic per-window shard
//     re-dealing when the static round-robin map is load-skewed
//     (psim.steals / psim.skew metrics);
//   * EngineKind::kSharedAtomic — the shared-atomics delivery ring of
//     arXiv 2107.04092 as an alternative to mailboxes.
//
// Exactness contract (enforced by tests/test_parallel_agreement.cpp): a
// ParallelSimulator run is event-for-event identical to the serial
// Simulator on the same network and injections — same per-neuron spike
// times, counts, causes, final potentials, and the same semantic SimStats
// (spikes, deliveries, event_times, end_time, execution_time, hit_*).
// Two places need care to keep that true:
//   * spike-log order: within one time step the serial log order is an
//     artifact of global delivery order, which no parallel schedule can
//     reproduce; the parallel spike log is therefore defined to be in
//     canonical (time, neuron id) order. Sorting a serial log by
//     (time, id) — neurons fire at most once per step — yields the same
//     sequence.
//   * termination: a terminal spike must stop the run at the end of its
//     own time step, exactly as the serial loop does. When terminal
//     neurons are configured the window length is clamped to 1 step so
//     the barrier sees the terminal before any shard can run past it;
//     quiescence-driven workloads (batched SSSP) keep the full δ window.
//
// Queue-level SimStats counters are per-queue properties and differ by
// construction from the single-queue serial run: overflow_spills /
// empty_bucket_scans sum over shards, max_bucket_occupancy is the max,
// peak_queue_events sums the per-shard peaks (an upper bound on the true
// instantaneous global peak), ring_buckets is one shard's ring size.
//
// Observability: attach_probe() records through per-shard internal probes
// that are merged into the attached probe after the run (counts add,
// traces and potential samples merge into canonical (time, id) order);
// worker threads carry their own obs::MetricsRegistry, merged into the
// calling thread's registry after the run — the same contention-free
// pattern as nga::spiking_sssp_batch (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "snn/compiled_network.h"
#include "snn/partition.h"
#include "snn/simulator.h"  // SimConfig, SimStats, QueueKind

namespace sga::obs {
class Probe;
}  // namespace sga::obs

namespace sga::snn {

/// One (src shard, dst shard) mailbox: contiguous SoA slabs of cross-shard
/// deliveries, batched per (destination, delay) run. Defined in
/// parallel_sim.cpp.
struct MailBox;

/// Cross-shard delivery engine (ARCHITECTURE.md §1.10).
enum class EngineKind : std::uint8_t {
  /// Double-buffered per-(src shard, dst shard) SoA mailboxes exchanged at
  /// the window barrier (the PR-4 design). Supports every SimConfig.
  kMailbox,
  /// One shared ring of per-(time slot, neuron) atomic accumulation slots
  /// (weight sum + delivery count), written with relaxed fetch-ops by the
  /// firing shard and folded into the owner's queue at the next barrier —
  /// the shared-atomics delivery design of arXiv 2107.04092. Exact for
  /// integer-valued weights (sums are order-free there). record_causes
  /// needs per-delivery provenance that an accumulator cannot carry, so
  /// cause-recording runs transparently fall back to the mailbox channel.
  kSharedAtomic,
};

struct ParallelConfig {
  /// Number of shards S; 0 = the resolved thread count. S may exceed the
  /// thread count (shards are multiplexed round-robin onto workers) and
  /// may exceed the neuron count (surplus shards stay empty).
  std::size_t num_shards = 0;
  /// Worker threads; 0 = std::thread::hardware_concurrency() (≥ 1). Never
  /// more threads than shards. 1 runs the same windowed schedule inline.
  unsigned num_threads = 0;
  /// Upper bound on the lookahead window length in time steps. Caps
  /// per-window buffering when the cross-shard δ is huge (or infinite —
  /// no cross-shard synapses at all). Any window ≤ δ is safe, so the cap
  /// never affects results, only barrier frequency.
  Time max_window = 4096;
  /// Neuron→shard partitioner (snn/partition.h). kCutRefined (default)
  /// minimizes 1/delay-weighted cross edges without ever shrinking the δ
  /// window; kLpt is the edge-blind load-balancing oracle.
  PartitionKind partition = PartitionKind::kCutRefined;
  /// Cross-shard delivery engine; results are identical either way.
  EngineKind engine = EngineKind::kMailbox;
  /// Per-window deterministic work stealing: when the static round-robin
  /// shard→worker map would leave one worker with more than steal_skew ×
  /// the best achievable (LPT over per-shard queue-depth estimates) load,
  /// the coordinator re-deals the shards at the barrier. Pure function of
  /// the simulation state — steal counts and all results are reproducible.
  bool work_stealing = true;
  /// Stealing trigger threshold (≥ 1; higher = steal less eagerly).
  double steal_skew = 1.5;
};

class ParallelSimulator {
 public:
  /// Run against a frozen network (BORROWED — caller keeps it alive).
  /// Partitioning and the shard-aware CSR split are computed here, once;
  /// reset() rewinds for another run without re-partitioning.
  explicit ParallelSimulator(const CompiledNetwork& net,
                             ParallelConfig config = {});
  /// Convenience for one-shot runs: compiles and owns the frozen copy.
  explicit ParallelSimulator(const Network& net, ParallelConfig config = {});
  ~ParallelSimulator();

  const CompiledNetwork& network() const { return *net_; }
  const Partition& partition() const { return split_.partition; }
  std::size_t num_shards() const { return split_.partition.num_shards; }
  unsigned num_threads() const { return threads_; }
  /// The lock-step window length used outside terminal mode: the minimum
  /// cross-shard delay, clamped to [1, max_window] (max_window when no
  /// cross-shard synapse exists).
  Time lookahead() const { return lookahead_; }
  EngineKind engine() const { return engine_; }
  PartitionKind partition_kind() const { return split_.partition.kind; }
  bool work_stealing() const { return stealing_; }
  /// Shards executed by a worker other than their static round-robin owner,
  /// cumulative since construction/reset(). Deterministic (see
  /// ParallelConfig::work_stealing); also reported as `psim.steals`.
  std::uint64_t steals() const { return steals_; }
  /// Largest per-window load skew observed (max static worker load over
  /// the ideal total/workers share); also reported as `psim.skew`.
  double max_skew() const { return skew_max_; }

  /// Same contract as Simulator::inject_spike. Must precede run().
  void inject_spike(NeuronId id, Time t);

  /// Run to completion. One-shot per cycle; reset() rewinds.
  SimStats run(const SimConfig& config = {});

  /// Rewind to the just-constructed state; per-shard O(events processed),
  /// mirroring Simulator::reset(). The partition is kept.
  void reset();

  // ---- Snapshot / restore (snn/snapshot.h; docs/PERSISTENCE.md) --------
  /// Serialize the complete simulation state into the SAME engine-agnostic
  /// versioned format as Simulator::snapshot() (global neuron ids; shard
  /// structure is not part of the image). A parallel snapshot restores
  /// into a serial Simulator, either queue kind, or a ParallelSimulator
  /// with a DIFFERENT shard count — and vice versa.
  std::vector<std::uint8_t> snapshot() const;
  /// All-or-nothing restore; see Simulator::restore. Probe data is not
  /// part of the image (probes are observers, not simulation state).
  void restore(const std::uint8_t* data, std::size_t size);
  void restore(const std::vector<std::uint8_t>& bytes) {
    restore(bytes.data(), bytes.size());
  }
  /// True when the last run() stopped at config.pause_time (resumable).
  /// A paused run's probe data is merged into the attached probe only when
  /// the run finally COMPLETES (so a pause/resume cycle absorbs it once).
  bool paused() const { return paused_; }
  /// Earliest pending event time while paused; see Simulator::resume_floor.
  Time resume_floor() const { return pause_floor_; }

  /// Attach an observability probe (BORROWED; bind()s it to this network).
  /// Recording happens in per-shard probes merged into this one after
  /// each run — see the header comment for ordering guarantees.
  void attach_probe(obs::Probe& probe);
  void detach_probe() { probe_ = nullptr; }
  obs::Probe* probe() const { return probe_; }

  // ---- Post-run observability (same semantics as Simulator) ------------
  Time first_spike(NeuronId id) const;
  /// Materialized per-neuron first-spike table in global id order.
  std::vector<Time> first_spikes() const;
  Time last_spike(NeuronId id) const;
  std::uint32_t spike_count(NeuronId id) const;
  /// Presynaptic cause of the first spike (requires record_causes). The
  /// deterministic tie-break (largest weight, then smallest source id)
  /// matches the serial simulator exactly.
  NeuronId first_spike_cause(NeuronId id) const;
  Voltage potential(NeuronId id) const;
  /// Full spike log (requires record_spike_log) in canonical
  /// (time, neuron id) order.
  const std::vector<std::pair<Time, NeuronId>>& spike_log() const {
    return log_;
  }
  const SimStats& stats() const { return stats_; }

 private:
  struct Shard;

  /// Shared constructor tail: resolve threads/shards, partition, split,
  /// and build per-shard state.
  void configure(ParallelConfig config);
  void init();
  /// Coordinator step run at every barrier (and before the first window):
  /// folds the finished window's shard summaries into global stats,
  /// resolves terminals, and either publishes the next window or sets
  /// done_. Never throws (errors latch error_ and stop the run).
  void plan_next_window();
  /// Deterministic shard→worker map for the window just published: static
  /// round-robin unless work stealing triggers (see plan_next_window).
  void assign_shards();
  void advance_owned_shards(unsigned worker);
  /// Zero every occupied shared-atomic slot (reset/restore path).
  void clear_shared_slots();
  /// Fold shard counters/logs into stats_/log_. Idempotent: counters are
  /// ASSIGNED as base_ (restored/pre-pause cumulative) + per-shard sums, so
  /// it runs once per pause AND once at completion without double-counting.
  /// Shard probes merge into the attached probe only when absorb_probes is
  /// set (completion, not pause — absorbing is not idempotent).
  void finalize_run(bool absorb_probes);
  /// Snapshot plumbing (snn/snapshot.h): merge shard state into the
  /// engine-agnostic image / scatter a validated image across shards.
  void build_image(SnapshotImage* img) const;
  void apply_image(const SnapshotImage& img);

  const CompiledNetwork* net_;
  std::unique_ptr<CompiledNetwork> owned_;  ///< Network-ctor form only
  ShardSplit split_;
  unsigned threads_ = 1;
  Time lookahead_ = 1;   ///< quiescent-mode window length
  Time max_window_ = 1;  ///< config cap
  EngineKind engine_ = EngineKind::kMailbox;
  bool stealing_ = true;
  double steal_skew_ = 1.5;

  // ---- shared-atomic delivery ring (EngineKind::kSharedAtomic) ---------
  // Slot-major flat arrays over W = atom_slots_ time slots × n neurons
  // (grouped per destination shard inside a slot). Allocated once in
  // init() iff the engine is kSharedAtomic and cross synapses exist; the
  // ring is sized W ≥ window + max_delay + 1 so a slot being folded can
  // never receive a concurrent write (ARCHITECTURE.md §1.10).
  std::size_t atom_slots_ = 0;    ///< W (power of two); 0 = not allocated
  std::size_t slot_entries_ = 0;  ///< entries per slot (= n)
  std::size_t slot_words_ = 0;    ///< touched-bitmap words per slot
  std::size_t occ_words_ = 0;     ///< occupancy words per shard (W/64)
  std::vector<std::size_t> entry_base_;  ///< shard → entry offset in a slot
  std::vector<std::size_t> word_base_;   ///< shard → touched-word offset
  std::vector<std::atomic<SynWeight>> atom_weight_;
  std::vector<std::atomic<std::uint32_t>> atom_count_;
  std::vector<std::atomic<std::uint64_t>> atom_touched_;
  std::vector<std::atomic<std::uint64_t>> atom_occ_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Double-buffered mailboxes, flattened [parity][src * S + dst]. During
  /// a window with parity p, source shards append to mail_[p] and
  /// destination shards drain mail_[1 - p]; the barrier flips p, so no box
  /// is ever read and written concurrently. Each box carries contiguous
  /// SoA slabs — one per (fire, delay) run — so the barrier exchange moves
  /// bulk-appendable blocks, not per-synapse entries.
  std::vector<MailBox> mail_[2];

  obs::Probe* probe_ = nullptr;
  std::vector<std::unique_ptr<obs::Probe>> shard_probes_;

  bool ran_ = false;
  SimStats stats_;
  std::vector<std::pair<Time, NeuronId>> log_;

  // ---- run-scoped coordinator state (published at barriers) ------------
  Time window_len_ = 1;
  Time wstart_ = 0;
  Time wend_ = 0;   ///< exclusive
  int parity_ = 0;  ///< mailbox parity of the window being executed
  bool done_ = false;
  bool first_plan_ = true;
  bool use_atomic_cross_ = false;  ///< this run delivers cross via atomics
  unsigned workers_ = 1;           ///< resolved worker count of this run
  /// shard → executing worker for the current window (see assign_shards).
  std::vector<std::uint32_t> assign_;
  std::vector<std::uint64_t> est_scratch_;     ///< per-worker load scratch
  std::vector<std::uint32_t> order_scratch_;   ///< shard order scratch
  std::vector<std::uint32_t> deal_scratch_;    ///< candidate LPT deal
  std::uint64_t steals_ = 0;
  double skew_max_ = 0.0;
  Time max_time_ = kNever;
  std::uint64_t terminals_remaining_ = 0;
  bool terminal_fired_ = false;
  std::vector<Time> merge_scratch_;
  std::exception_ptr error_;

  // Pause/resume state (docs/PERSISTENCE.md), mirroring the serial engine.
  bool paused_ = false;
  Time pause_time_ = kNever;
  Time pause_floor_ = 0;
  /// Counter baseline for finalize_run()'s idempotent assignment: zero for
  /// a fresh run, the image's cumulative stats after a restore (shard
  /// counters restart from zero there, so the baseline carries the past).
  SimStats base_;
};

}  // namespace sga::snn
