// Streaming generator-to-CSR freeze (ARCHITECTURE.md §1.8).
//
// compile_streamed() builds a CompiledNetwork from an edge stream with a
// two-pass counting sort, never materializing the nested-vector builder:
//   pass 1  count per-source degrees; scan the ranges that choose the
//           storage widths (max delay, target range, whether every weight
//           round-trips through float32); validate each synapse with its
//           ordinal and value in the message;
//   freeze  exclusive-scan the degree counts into the CSR row pointers,
//           choose widths, allocate the narrow payload ONCE;
//   pass 2  re-run the emitter and scatter each synapse through a cursor
//           array (the degree counts, reused); cross-check every value
//           against pass 1's ranges so a non-deterministic emitter fails
//           loudly instead of corrupting the CSR;
//   finish  stable-sort each row by delay (permutation gather through
//           small scratch buffers), build the delay-segment CSR, and
//           tabulate positive in-weights.
// Peak resident memory is the final CSR plus O(n) scratch — the builder
// path would hold the nested vectors AND the packed copy simultaneously.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "snn/compiled_network.h"

namespace sga::snn {

namespace {

/// Ranges observed by pass 1, cross-checked in pass 2.
struct StreamScan {
  std::size_t count = 0;
  Delay max_delay = 0;
  bool weights_fit_f32 = true;
};

template <typename Store>
void fill_streamed(Store& st, const std::vector<std::size_t>& offsets,
                   std::vector<std::size_t>& cursor,
                   std::vector<std::size_t>& seg_offsets,
                   std::vector<SynWeight>& pos_in_weight,
                   const std::function<void(const SynapseSink&)>& emit,
                   const StreamScan& scan, std::size_t n) {
  using TgtT = typename Store::Target;
  using DlyT = typename Store::DelayT;
  using WgtT = typename Store::WeightT;
  using SegT = typename Store::SegIndex;

  const std::size_t m = offsets[n];
  st.targets.resize(m);
  st.weights.resize(m);
  st.delays.resize(m);

  // Pass 2: scatter through the cursor array. Values are re-validated
  // against pass 1's scan so an emitter that is not deterministic between
  // the two passes cannot overflow the chosen widths or mis-place a row.
  std::size_t k = 0;
  const SynapseSink sink = [&](NeuronId from, NeuronId to, SynWeight weight,
                               Delay delay) {
    SGA_REQUIRE(k < m, "compile_streamed: pass 2 emitted synapse "
                           << k << " beyond pass 1's count " << m
                           << " — the emitter must be deterministic");
    SGA_REQUIRE(from < n && to < n && delay <= scan.max_delay &&
                    delay >= kMinDelay && std::isfinite(weight) &&
                    (!scan.weights_fit_f32 || round_trips_f32(weight)),
                "compile_streamed: pass 2 synapse "
                    << k << " (" << from << " -> " << to << ", weight "
                    << weight << ", delay " << delay
                    << ") out of pass 1's observed ranges — the emitter "
                       "must be deterministic");
    const std::size_t slot = cursor[from]++;
    SGA_REQUIRE(slot < offsets[from + 1],
                "compile_streamed: pass 2 emitted more synapses from neuron "
                    << from << " than pass 1's degree "
                    << offsets[from + 1] - offsets[from]
                    << " — the emitter must be deterministic");
    st.targets[slot] = static_cast<TgtT>(to);
    st.weights[slot] = static_cast<WgtT>(weight);
    st.delays[slot] = static_cast<DlyT>(delay);
    ++k;
  };
  emit(sink);
  SGA_REQUIRE(k == m, "compile_streamed: pass 2 emitted "
                          << k << " synapses, pass 1 counted " << m
                          << " — the emitter must be deterministic");

  // Per-row stable delay sort: gather through the permutation into small
  // scratch buffers (row-sized, grown once to the max degree), then copy
  // back. Keeps equal-delay synapses in emission order, matching the
  // builder freeze bit-for-bit.
  std::vector<std::size_t> order;
  std::vector<TgtT> tgt_scratch;
  std::vector<WgtT> wgt_scratch;
  std::vector<DlyT> dly_scratch;
  for (NeuronId i = 0; i < n; ++i) {
    const std::size_t b = offsets[i];
    const std::size_t e = offsets[i + 1];
    const std::size_t deg = e - b;
    if (deg <= 1) continue;
    order.resize(deg);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const DlyT* dly = st.delays.data() + b;
    std::stable_sort(order.begin(), order.end(),
                     [dly](std::size_t a, std::size_t c) {
                       return dly[a] < dly[c];
                     });
    tgt_scratch.resize(deg);
    wgt_scratch.resize(deg);
    dly_scratch.resize(deg);
    for (std::size_t j = 0; j < deg; ++j) {
      tgt_scratch[j] = st.targets[b + order[j]];
      wgt_scratch[j] = st.weights[b + order[j]];
      dly_scratch[j] = st.delays[b + order[j]];
    }
    std::copy(tgt_scratch.begin(), tgt_scratch.end(), st.targets.begin() + b);
    std::copy(wgt_scratch.begin(), wgt_scratch.end(), st.weights.begin() + b);
    std::copy(dly_scratch.begin(), dly_scratch.end(), st.delays.begin() + b);
  }

  // Delay-segment CSR + the positive in-weight table, off the sorted rows.
  seg_offsets.resize(n + 1);
  seg_offsets[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    std::size_t j = offsets[i];
    const std::size_t row_end = offsets[i + 1];
    while (j < row_end) {
      const DlyT d = st.delays[j];
      const std::size_t run_begin = j;
      while (j < row_end && st.delays[j] == d) ++j;
      st.seg_delays.push_back(d);
      st.seg_syn_begin.push_back(static_cast<SegT>(run_begin));
      st.seg_syn_end.push_back(static_cast<SegT>(j));
    }
    seg_offsets[i + 1] = st.seg_delays.size();
  }
  for (std::size_t j = 0; j < m; ++j) {
    const SynWeight w = static_cast<SynWeight>(st.weights[j]);
    if (w > 0) pos_in_weight[st.targets[j]] += w;
  }
}

}  // namespace

CompiledNetwork CompiledNetwork::compile_streamed(
    std::size_t num_neurons,
    const std::function<NeuronParams(NeuronId)>& params,
    const std::function<void(const SynapseSink&)>& emit,
    StoragePolicy policy, StreamBuildStats* build_stats) {
  SGA_REQUIRE(num_neurons <= static_cast<std::size_t>(kNoNeuron),
              "compile_streamed: " << num_neurons
                                   << " neurons exceed the NeuronId range");
  CompiledNetwork net;
  const std::size_t n = num_neurons;
  net.v_reset_.resize(n);
  net.v_threshold_.resize(n);
  net.tau_.resize(n);
  for (NeuronId i = 0; i < n; ++i) {
    const NeuronParams p = params(i);
    SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
                "compile_streamed: neuron " << i << " has decay τ = " << p.tau
                                            << " outside [0, 1]");
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold),
                "compile_streamed: neuron "
                    << i << " has non-finite parameters (v_reset = "
                    << p.v_reset << ", v_threshold = " << p.v_threshold
                    << ")");
    net.v_reset_[i] = p.v_reset;
    net.v_threshold_[i] = p.v_threshold;
    net.tau_[i] = p.tau;
  }

  // Pass 1: per-source degree counts + the width-choosing range scan.
  std::vector<std::size_t> degree(n, 0);
  StreamScan scan;
  const SynapseSink counter = [&](NeuronId from, NeuronId to,
                                  SynWeight weight, Delay delay) {
    const std::size_t k = scan.count;
    SGA_REQUIRE(from < n, "compile_streamed: synapse "
                              << k << " emitted from out-of-range neuron "
                              << from);
    SGA_REQUIRE(to < n, "compile_streamed: synapse "
                            << k << " (from neuron " << from
                            << ") targets out-of-range neuron " << to);
    SGA_REQUIRE(delay >= kMinDelay,
                "compile_streamed: synapse "
                    << k << " (from neuron " << from << ") has delay "
                    << delay << " below minimum δ = " << kMinDelay);
    SGA_REQUIRE(std::isfinite(weight),
                "compile_streamed: synapse " << k << " (from neuron " << from
                                             << ") has non-finite weight "
                                             << weight);
    ++degree[from];
    scan.max_delay = std::max(scan.max_delay, delay);
    scan.weights_fit_f32 = scan.weights_fit_f32 && round_trips_f32(weight);
    ++scan.count;
  };
  emit(counter);

  // Exclusive scan into row pointers; the degree array becomes the pass-2
  // fill cursor (counting sort's standard trick — no second O(n) buffer).
  net.offsets_.resize(n + 1);
  net.offsets_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    net.offsets_[i + 1] = net.offsets_[i] + degree[i];
    degree[i] = net.offsets_[i];
  }
  std::vector<std::size_t>& cursor = degree;
  net.max_delay_ = scan.max_delay;
  net.pos_in_weight_.assign(n, 0);

  // Choose widths from pass 1's ranges and fill the narrow payload
  // directly — the point of the two passes: the wide intermediate arrays
  // of the builder freeze never exist.
  net.widths_ = choose_widths(policy, n, scan.count, scan.max_delay,
                              scan.weights_fit_f32);
  net.store_ = make_synapse_store(net.widths_);
  std::size_t transient_bytes = 0;
  std::visit(
      [&](auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          // Packed freeze: scatter into a FLAT transient at the packed
          // store's delay/weight widths (u32 targets — packed blocks decode
          // to full width anyway), then re-encode. The transient is narrow,
          // never wide, so packing at n=10⁶/m=10⁷ scale costs one narrow
          // CSR of headroom instead of the builder's wide copy.
          SynStore<std::uint32_t, typename Store::DelayT,
                   typename Store::WeightT, std::uint32_t>
              flat;
          fill_streamed(flat, net.offsets_, cursor, net.seg_offsets_,
                        net.pos_in_weight_, emit, scan, n);
          transient_bytes = flat.payload_bytes();
          st.pack_targets(flat.targets);
          flat.targets.clear();
          flat.targets.shrink_to_fit();
          flat.delays.clear();
          flat.delays.shrink_to_fit();
          st.weights = std::move(flat.weights);
          st.seg_delays = std::move(flat.seg_delays);
          st.seg_syn_begin = std::move(flat.seg_syn_begin);
          st.seg_syn_begin.push_back(static_cast<std::uint32_t>(scan.count));
        } else {
          fill_streamed(st, net.offsets_, cursor, net.seg_offsets_,
                        net.pos_in_weight_, emit, scan, n);
        }
      },
      net.store_);

  if (build_stats != nullptr) {
    build_stats->num_neurons = n;
    build_stats->num_synapses = scan.count;
    build_stats->csr_bytes = net.csr_storage_bytes();
    // High-water mark: the finished CSR coexists with the O(n) cursor
    // array and the positive in-weight table during pass 2 — plus, for a
    // packed freeze, the flat transient it re-encodes from.
    build_stats->peak_resident_bytes =
        build_stats->csr_bytes + transient_bytes +
        cursor.size() * sizeof(std::size_t) +
        net.pos_in_weight_.size() * sizeof(SynWeight) +
        3 * n * sizeof(Voltage);
  }
  if (obs::MetricsRegistry* mr = obs::thread_metrics()) {
    mr->add("snn.stream_freezes");
    mr->gauge("snn.stream_csr_bytes",
              static_cast<double>(net.csr_storage_bytes()));
    mr->gauge("snn.stream_bytes_per_synapse", net.bytes_per_synapse());
  }
  return net;
}

}  // namespace sga::snn
