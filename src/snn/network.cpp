#include "snn/network.h"

#include <algorithm>

#include "snn/compiled_network.h"

namespace sga::snn {

NeuronId Network::add_neuron(NeuronParams p) {
  SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
              "add_neuron: neuron " << params_.size() << " has decay τ = "
                                    << p.tau << " outside [0, 1]");
  params_.push_back(p);
  out_.emplace_back();
  pos_in_weight_.push_back(0);
  return static_cast<NeuronId>(params_.size() - 1);
}

void Network::add_synapse(NeuronId from, NeuronId to, SynWeight weight,
                          Delay delay) {
  SGA_REQUIRE(from < params_.size(), "add_synapse: bad source " << from);
  SGA_REQUIRE(to < params_.size(), "add_synapse: bad target " << to);
  SGA_REQUIRE(delay >= kMinDelay,
              "add_synapse: delay " << delay << " below minimum δ = "
                                    << kMinDelay);
  out_[from].push_back(Synapse{to, weight, delay});
  ++num_synapses_;
  max_delay_ = std::max(max_delay_, delay);
  if (weight > 0) pos_in_weight_[to] += weight;
}

CompiledNetwork Network::compile(StoragePolicy policy) const {
  return CompiledNetwork(*this, policy);
}

void Network::define_group(const std::string& name, std::vector<NeuronId> ids) {
  SGA_REQUIRE(!name.empty(), "define_group: empty name");
  for (const auto id : ids) {
    SGA_REQUIRE(id < params_.size(),
                "define_group(" << name << "): bad neuron id " << id);
  }
  groups_[name] = std::move(ids);
}

const std::vector<NeuronId>& Network::group(const std::string& name) const {
  const auto it = groups_.find(name);
  SGA_REQUIRE(it != groups_.end(), "unknown group: " << name);
  return it->second;
}

std::vector<std::string> Network::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, ids] : groups_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sga::snn
