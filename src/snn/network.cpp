#include "snn/network.h"

#include <algorithm>

namespace sga::snn {

NeuronId Network::add_neuron(NeuronParams p) {
  SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
              "decay τ must be in [0, 1], got " << p.tau);
  params_.push_back(p);
  out_.emplace_back();
  return static_cast<NeuronId>(params_.size() - 1);
}

void Network::add_synapse(NeuronId from, NeuronId to, SynWeight weight,
                          Delay delay) {
  SGA_REQUIRE(from < params_.size(), "add_synapse: bad source " << from);
  SGA_REQUIRE(to < params_.size(), "add_synapse: bad target " << to);
  SGA_REQUIRE(delay >= kMinDelay,
              "add_synapse: delay " << delay << " below minimum δ = "
                                    << kMinDelay);
  out_[from].push_back(Synapse{to, weight, delay});
  ++num_synapses_;
  max_delay_ = std::max(max_delay_, delay);
}

SynWeight Network::positive_in_weight(NeuronId id) const {
  SGA_REQUIRE(id < params_.size(), "positive_in_weight: bad id " << id);
  SynWeight total = 0;
  for (const auto& syns : out_) {
    for (const auto& s : syns) {
      if (s.target == id && s.weight > 0) total += s.weight;
    }
  }
  return total;
}

void Network::define_group(const std::string& name, std::vector<NeuronId> ids) {
  SGA_REQUIRE(!name.empty(), "define_group: empty name");
  for (const auto id : ids) {
    SGA_REQUIRE(id < params_.size(),
                "define_group(" << name << "): bad neuron id " << id);
  }
  groups_[name] = std::move(ids);
}

const std::vector<NeuronId>& Network::group(const std::string& name) const {
  const auto it = groups_.find(name);
  SGA_REQUIRE(it != groups_.end(), "unknown group: " << name);
  return it->second;
}

std::vector<std::string> Network::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, ids] : groups_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sga::snn
