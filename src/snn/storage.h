// Width-narrowed synapse storage for the frozen CSR (ARCHITECTURE.md §1.8).
//
// Network::compile() scans the observed ranges of the construction — neuron
// count, maximum delay, the weight domain — and freezes the synapse payload
// into the narrowest layout that represents it exactly:
//   * target ids    u16 when n ≤ 2^16, else u32 (NeuronId's full width),
//   * delays        u8 when max_delay ≤ 255, u16 when ≤ 65535,
//   * weights       float32 when EVERY weight round-trips double→float→double
//                   bit-exactly (delivery buckets accumulate in double, so a
//                   round-trip-exact narrowing preserves runs event-for-event
//                   and bit-for-bit), else float64,
//   * delay-segment synapse bounds u32 (requires m < 2^32).
// Anything outside those ranges — and StoragePolicy::kWide — falls back to
// the full-width layout, which is kept unconditionally as the oracle the
// fuzz harness diffs the narrow kernels against.
//
// The dispatch is a std::variant over SynStore instantiations: consumers off
// the hot path go through CompiledNetwork's generic accessors (one visit per
// call), while Simulator resolves the variant ONCE at construction into a
// member-function-pointer to a fully-typed kernel instantiation — no
// per-event branching in the inner loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <variant>
#include <vector>

#include "core/types.h"

namespace sga::snn {

/// Freeze-time storage selection (Network::compile's knob).
enum class StoragePolicy : std::uint8_t {
  kAuto,  ///< narrow to the observed ranges when they fit (the default)
  kWide,  ///< always the full-width oracle layout (fuzz oracle; transient
          ///< single-use freezes like max-flow's per-phase residuals)
};

/// The widths a freeze actually chose, for io tags / bench records / tests.
struct StorageWidths {
  bool narrow = false;  ///< false = the wide oracle layout
  std::uint8_t target_bytes = sizeof(NeuronId);
  std::uint8_t delay_bytes = sizeof(Delay);
  std::uint8_t weight_bytes = sizeof(SynWeight);
  std::uint8_t seg_index_bytes = sizeof(std::size_t);

  friend bool operator==(const StorageWidths&, const StorageWidths&) = default;
};

/// One width-combination of the flat synapse payload. The row pointer
/// arrays (offsets / seg_offsets) stay size_t and live outside the variant:
/// they are shared by every combination and indexed by neuron id, which the
/// callers already hold at full width.
template <typename TgtT, typename DlyT, typename WgtT, typename SegT>
struct SynStore {
  using Target = TgtT;
  using DelayT = DlyT;
  using WeightT = WgtT;
  using SegIndex = SegT;

  std::vector<TgtT> targets;
  std::vector<WgtT> weights;
  std::vector<DlyT> delays;

  std::vector<DlyT> seg_delays;  ///< one entry per delay run
  std::vector<SegT> seg_syn_begin;
  std::vector<SegT> seg_syn_end;

  /// Resident bytes of the six payload arrays (sizes, not capacities).
  std::size_t payload_bytes() const {
    return targets.size() * sizeof(TgtT) + weights.size() * sizeof(WgtT) +
           delays.size() * sizeof(DlyT) + seg_delays.size() * sizeof(DlyT) +
           (seg_syn_begin.size() + seg_syn_end.size()) * sizeof(SegT);
  }

  static constexpr StorageWidths widths() {
    return StorageWidths{!std::is_same_v<TgtT, NeuronId> ||
                             !std::is_same_v<DlyT, Delay> ||
                             !std::is_same_v<WgtT, SynWeight> ||
                             !std::is_same_v<SegT, std::size_t>,
                         sizeof(TgtT), sizeof(DlyT), sizeof(WgtT),
                         sizeof(SegT)};
  }
};

/// The full-width oracle layout (exactly the pre-§1.8 storage).
using WideSynStore = SynStore<NeuronId, Delay, SynWeight, std::size_t>;

/// Every layout a freeze can choose. Wide first: a default-constructed
/// variant is the wide empty store, so the empty CompiledNetwork stays a
/// valid placeholder.
using SynStoreVariant =
    std::variant<WideSynStore,
                 SynStore<std::uint16_t, std::uint8_t, float, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint8_t, double, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint16_t, float, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint16_t, double, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint8_t, float, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint8_t, double, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint16_t, float, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint16_t, double, std::uint32_t>>;

/// Pick the narrowest layout for the observed ranges (kWide always yields
/// the oracle). `weights_fit_f32` must hold iff every weight round-trips
/// double→float→double exactly.
inline StorageWidths choose_widths(StoragePolicy policy, std::size_t n,
                                   std::size_t m, Delay max_delay,
                                   bool weights_fit_f32) {
  StorageWidths w;
  if (policy == StoragePolicy::kWide) return w;
  // Narrow eligibility: delays beyond u16 or ≥ 2^32 synapses (the u32
  // segment bounds) keep the whole payload wide rather than growing the
  // variant with rarely-hit mixed-width combinations.
  if (max_delay > 65535 || m >= (1ULL << 32)) return w;
  w.narrow = true;
  w.target_bytes = n <= (1ULL << 16) ? 2 : 4;
  w.delay_bytes = max_delay <= 255 ? 1 : 2;
  w.weight_bytes = weights_fit_f32 ? 4 : 8;
  w.seg_index_bytes = 4;
  return w;
}

/// Instantiate the (empty) variant alternative matching `w`.
inline SynStoreVariant make_synapse_store(const StorageWidths& w) {
  if (!w.narrow) return WideSynStore{};
  const bool t16 = w.target_bytes == 2;
  const bool d8 = w.delay_bytes == 1;
  const bool f32 = w.weight_bytes == 4;
  if (t16 && d8 && f32)
    return SynStore<std::uint16_t, std::uint8_t, float, std::uint32_t>{};
  if (t16 && d8)
    return SynStore<std::uint16_t, std::uint8_t, double, std::uint32_t>{};
  if (t16 && f32)
    return SynStore<std::uint16_t, std::uint16_t, float, std::uint32_t>{};
  if (t16)
    return SynStore<std::uint16_t, std::uint16_t, double, std::uint32_t>{};
  if (d8 && f32)
    return SynStore<std::uint32_t, std::uint8_t, float, std::uint32_t>{};
  if (d8)
    return SynStore<std::uint32_t, std::uint8_t, double, std::uint32_t>{};
  if (f32)
    return SynStore<std::uint32_t, std::uint16_t, float, std::uint32_t>{};
  return SynStore<std::uint32_t, std::uint16_t, double, std::uint32_t>{};
}

/// Whether narrowing `w` to float32 and back reproduces it bit-exactly.
inline bool round_trips_f32(SynWeight w) {
  return static_cast<SynWeight>(static_cast<float>(w)) == w;
}

}  // namespace sga::snn
