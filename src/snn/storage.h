// Width-narrowed and delta-packed synapse storage for the frozen CSR
// (ARCHITECTURE.md §1.8, §1.11).
//
// Network::compile() scans the observed ranges of the construction — neuron
// count, maximum delay, the weight domain — and freezes the synapse payload
// into the narrowest layout that represents it exactly:
//   * target ids    u16 when n ≤ 2^16, else u32 (NeuronId's full width),
//   * delays        u8 when max_delay ≤ 255, u16 when ≤ 65535,
//   * weights       float32 when EVERY weight round-trips double→float→double
//                   bit-exactly (delivery buckets accumulate in double, so a
//                   round-trip-exact narrowing preserves runs event-for-event
//                   and bit-for-bit), else float64,
//   * delay-segment synapse bounds u32 (requires m < 2^32).
// Anything outside those ranges — and StoragePolicy::kWide — falls back to
// the full-width layout, which is kept unconditionally as the oracle the
// fuzz harness diffs the narrow kernels against.
//
// On top of the narrow widths sits a third encoding, PACKED (§1.11): the
// delay-sorted target column is re-encoded as base + bit-packed zigzag
// deltas in fixed 64-entry blocks (one u32 base + u8 bit-width + u32 word
// offset per block), the per-synapse delay column is dropped entirely (the
// delay-segment CSR of §1.6 is already a run-length encoding of it), and
// the segment end column is dropped too (segments tile each row, so a
// sentinel-terminated begin column carries both bounds). Weights stay a
// flat narrow column — they are the values the hot loop actually sums, so
// they are never entropy-coded. kAuto picks the packed encoding for any
// narrow-eligible freeze with at least kPackedAutoMinSynapses synapses;
// kNarrow and kWide keep the flat layouts available as oracles.
//
// The dispatch is a std::variant over SynStore/PackedSynStore
// instantiations: consumers off the hot path go through CompiledNetwork's
// generic accessors (one visit per call), while Simulator resolves the
// variant ONCE at construction into a member-function-pointer to a
// fully-typed kernel instantiation — no per-event branching in the inner
// loop.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <variant>
#include <vector>

#include "core/error.h"
#include "core/types.h"

namespace sga::snn {

/// Freeze-time storage selection (Network::compile's knob).
enum class StoragePolicy : std::uint8_t {
  kAuto,    ///< packed at scale, narrow below the auto threshold, wide when
            ///< the observed ranges do not fit the narrow widths (default)
  kWide,    ///< always the full-width oracle layout (fuzz oracle; transient
            ///< single-use freezes like max-flow's per-phase residuals)
  kNarrow,  ///< flat narrow columns, never packed (the packed ablation's
            ///< baseline; exactly kAuto's pre-§1.11 behavior)
  kPacked,  ///< delta-packed targets + RLE delays whenever the ranges are
            ///< narrow-eligible (falls back to wide when they are not)
};

/// The widths a freeze actually chose, for io tags / bench records / tests.
/// `packed` refines `narrow`: a packed freeze is narrow-eligible by
/// construction, so packed ⇒ narrow. The struct doubles as the snapshot
/// fingerprint's storage identity (snn/snapshot.h): two freezes of the same
/// network interoperate iff every field — including the encoding — matches.
struct StorageWidths {
  bool narrow = false;  ///< false = the wide oracle layout
  bool packed = false;  ///< delta-packed targets + RLE delays (§1.11)
  std::uint8_t target_bytes = sizeof(NeuronId);
  std::uint8_t delay_bytes = sizeof(Delay);
  std::uint8_t weight_bytes = sizeof(SynWeight);
  std::uint8_t seg_index_bytes = sizeof(std::size_t);

  friend bool operator==(const StorageWidths&, const StorageWidths&) = default;
};

/// Human-readable encoding tag ("wide" / "narrow" / "packed") for io
/// headers, bench context lines, and error messages.
inline const char* encoding_name(const StorageWidths& w) {
  return w.packed ? "packed" : w.narrow ? "narrow" : "wide";
}

/// Numeric encoding tag for stats / gauges / bench records (0 = wide,
/// 1 = narrow, 2 = packed) — SimStats::storage_encoding and the
/// svc.artifact_storage_encoding gauge use this.
inline std::uint8_t encoding_code(const StorageWidths& w) {
  return w.packed ? 2 : w.narrow ? 1 : 0;
}

/// One width-combination of the flat synapse payload. The row pointer
/// arrays (offsets / seg_offsets) stay size_t and live outside the variant:
/// they are shared by every combination and indexed by neuron id, which the
/// callers already hold at full width.
template <typename TgtT, typename DlyT, typename WgtT, typename SegT>
struct SynStore {
  using Target = TgtT;
  using DelayT = DlyT;
  using WeightT = WgtT;
  using SegIndex = SegT;

  /// Flat-column layout: the packed kernels and accessors are compiled out.
  static constexpr bool kPackedLayout = false;

  std::vector<TgtT> targets;
  std::vector<WgtT> weights;
  std::vector<DlyT> delays;

  std::vector<DlyT> seg_delays;  ///< one entry per delay run
  std::vector<SegT> seg_syn_begin;
  std::vector<SegT> seg_syn_end;

  // Uniform per-element accessors shared with PackedSynStore, so generic
  // consumers (CompiledNetwork's visit accessors, verify_invariants,
  // shard_split) are encoding-agnostic. Hot kernels bypass these.
  NeuronId target_at(std::size_t k) const {
    return static_cast<NeuronId>(targets[k]);
  }
  SynWeight weight_at(std::size_t k) const {
    return static_cast<SynWeight>(weights[k]);
  }
  Delay delay_at(std::size_t k) const { return static_cast<Delay>(delays[k]); }
  Delay seg_delay_at(std::size_t s) const {
    return static_cast<Delay>(seg_delays[s]);
  }
  std::size_t seg_syn_begin_at(std::size_t s) const {
    return static_cast<std::size_t>(seg_syn_begin[s]);
  }
  std::size_t seg_syn_end_at(std::size_t s) const {
    return static_cast<std::size_t>(seg_syn_end[s]);
  }

  /// Resident bytes of the six payload arrays (sizes, not capacities).
  std::size_t payload_bytes() const {
    return targets.size() * sizeof(TgtT) + weights.size() * sizeof(WgtT) +
           delays.size() * sizeof(DlyT) + seg_delays.size() * sizeof(DlyT) +
           (seg_syn_begin.size() + seg_syn_end.size()) * sizeof(SegT);
  }

  static constexpr StorageWidths widths() {
    return StorageWidths{!std::is_same_v<TgtT, NeuronId> ||
                             !std::is_same_v<DlyT, Delay> ||
                             !std::is_same_v<WgtT, SynWeight> ||
                             !std::is_same_v<SegT, std::size_t>,
                         false, sizeof(TgtT), sizeof(DlyT), sizeof(WgtT),
                         sizeof(SegT)};
  }
};

/// The full-width oracle layout (exactly the pre-§1.8 storage).
using WideSynStore = SynStore<NeuronId, Delay, SynWeight, std::size_t>;

// ---- Packed encoding primitives (ARCHITECTURE.md §1.11) ------------------

/// Targets per packed block. Fixed so k → block is a shift, and small
/// enough that a block decodes into a stack buffer.
inline constexpr std::size_t kPackedBlockSize = 64;

/// Auto-selection floor: kAuto freezes with fewer synapses stay flat
/// narrow. Below this the per-block headers and the decode scratch are not
/// worth the bytes saved, and the small-network test/bench corpus keeps its
/// established narrow layouts.
inline constexpr std::size_t kPackedAutoMinSynapses = 16384;

/// Zigzag of the WRAPPING u32 difference cur − prev. The wrap keeps every
/// delta representable in 32 bits (a plain signed difference of two u32s
/// needs 33), and the decoder's wrapping add inverts it exactly mod 2^32.
inline std::uint32_t packed_zigzag_delta(std::uint32_t prev,
                                         std::uint32_t cur) {
  const auto d = static_cast<std::int32_t>(cur - prev);
  return (static_cast<std::uint32_t>(d) << 1) ^
         static_cast<std::uint32_t>(d >> 31);
}

/// Words the deltas of one `count`-target block occupy at `bits` per delta
/// (the first target is the block base and stores no delta).
inline std::size_t packed_block_words(std::size_t count, unsigned bits) {
  return count <= 1 ? 0 : ((count - 1) * bits + 31) / 32;
}

/// The delta-packed target column + RLE delay layout (§1.11). Weights stay
/// a flat narrow column; per-synapse delays exist only as the delay-run
/// segments (begin column sentinel-terminated with m, so
/// seg_syn_end(s) == seg_syn_begin[s + 1] — segments tile each row, which
/// verify_invariants() re-checks on every untrusted load).
template <typename DlyT, typename WgtT>
struct PackedSynStore {
  using Target = NeuronId;  ///< decode width (bases are full NeuronId range)
  using DelayT = DlyT;
  using WeightT = WgtT;
  using SegIndex = std::uint32_t;

  static constexpr bool kPackedLayout = true;

  std::vector<WgtT> weights;  ///< flat, one entry per synapse

  // Target column, base + bit-packed zigzag deltas in kPackedBlockSize
  // blocks. block_word is the word *offset* of each block's deltas in
  // pack_words (blocks are word-aligned, so decode never straddles blocks).
  std::size_t num_targets = 0;
  std::vector<std::uint32_t> block_base;
  std::vector<std::uint8_t> block_bits;  ///< 0..32 bits per zigzag delta
  std::vector<std::uint32_t> block_word;
  std::vector<std::uint32_t> pack_words;

  // Delay runs (the RLE delay column): one delay per run plus the
  // sentinel-terminated begin column (seg_delays.size() + 1 entries, last
  // entry == num_targets).
  std::vector<DlyT> seg_delays;
  std::vector<std::uint32_t> seg_syn_begin;

  std::size_t num_blocks() const { return block_base.size(); }
  std::size_t num_segments() const { return seg_delays.size(); }

  /// Decode block `j` into out[0..count); returns count (≤ kPackedBlockSize;
  /// short only for the final block). Callers guarantee j < num_blocks()
  /// and a structurally valid table (verify_invariants' packed pre-checks).
  std::size_t decode_block(std::size_t j, std::uint32_t* out) const {
    const std::size_t begin = j * kPackedBlockSize;
    const std::size_t count = std::min(kPackedBlockSize, num_targets - begin);
    std::uint32_t prev = block_base[j];
    out[0] = prev;
    const unsigned bits = block_bits[j];
    if (bits == 0) {
      for (std::size_t i = 1; i < count; ++i) out[i] = prev;
      return count;
    }
    const std::uint32_t* words = pack_words.data() + block_word[j];
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::size_t bitpos = 0;
    for (std::size_t i = 1; i < count; ++i) {
      const std::size_t w = bitpos >> 5;
      const unsigned off = bitpos & 31;
      std::uint64_t chunk = words[w];
      if (off + bits > 32) chunk |= std::uint64_t{words[w + 1]} << 32;
      const auto z = static_cast<std::uint32_t>((chunk >> off) & mask);
      // Un-zigzag, then wrapping add (inverts packed_zigzag_delta mod 2^32).
      prev += (z >> 1) ^ (0u - (z & 1u));
      out[i] = prev;
      bitpos += bits;
    }
    return count;
  }

  /// Build the block tables from a flat (already delay-sorted) target
  /// column. The only encoder — compile(), compile_streamed(), and the io
  /// reader's re-pack all funnel through here.
  template <typename SrcT>
  void pack_targets(const std::vector<SrcT>& flat) {
    num_targets = flat.size();
    const std::size_t nb =
        (num_targets + kPackedBlockSize - 1) / kPackedBlockSize;
    block_base.resize(nb);
    block_bits.resize(nb);
    block_word.resize(nb);
    pack_words.clear();
    for (std::size_t j = 0; j < nb; ++j) {
      const std::size_t begin = j * kPackedBlockSize;
      const std::size_t count =
          std::min(kPackedBlockSize, num_targets - begin);
      const auto base = static_cast<std::uint32_t>(flat[begin]);
      std::uint32_t prev = base;
      std::uint32_t max_z = 0;
      for (std::size_t i = 1; i < count; ++i) {
        const auto cur = static_cast<std::uint32_t>(flat[begin + i]);
        max_z |= packed_zigzag_delta(prev, cur);
        prev = cur;
      }
      const unsigned bits = max_z == 0 ? 0u : std::bit_width(max_z);
      block_base[j] = base;
      block_bits[j] = static_cast<std::uint8_t>(bits);
      block_word[j] = static_cast<std::uint32_t>(pack_words.size());
      if (bits == 0) continue;
      pack_words.resize(pack_words.size() + packed_block_words(count, bits),
                        0);
      std::uint32_t* words = pack_words.data() + block_word[j];
      prev = base;
      std::size_t bitpos = 0;
      for (std::size_t i = 1; i < count; ++i) {
        const auto cur = static_cast<std::uint32_t>(flat[begin + i]);
        const std::uint64_t v =
            std::uint64_t{packed_zigzag_delta(prev, cur)} << (bitpos & 31);
        words[bitpos >> 5] |= static_cast<std::uint32_t>(v);
        if ((v >> 32) != 0) {
          words[(bitpos >> 5) + 1] |= static_cast<std::uint32_t>(v >> 32);
        }
        bitpos += bits;
        prev = cur;
      }
    }
  }

  // Uniform accessors (see SynStore). target_at/delay_at are O(block) /
  // O(log segments) — oracle and construction-side pricing; the simulator's
  // packed kernels decode whole rows instead.
  NeuronId target_at(std::size_t k) const {
    std::uint32_t tmp[kPackedBlockSize];
    decode_block(k / kPackedBlockSize, tmp);
    return static_cast<NeuronId>(tmp[k % kPackedBlockSize]);
  }
  SynWeight weight_at(std::size_t k) const {
    return static_cast<SynWeight>(weights[k]);
  }
  Delay delay_at(std::size_t k) const {
    // The run containing k: begins are globally strictly increasing (runs
    // tile rows, rows tile the column), so one binary search resolves it.
    const auto it = std::upper_bound(seg_syn_begin.begin(),
                                     seg_syn_begin.end(),
                                     static_cast<std::uint32_t>(k));
    return static_cast<Delay>(
        seg_delays[static_cast<std::size_t>(it - seg_syn_begin.begin()) - 1]);
  }
  Delay seg_delay_at(std::size_t s) const {
    return static_cast<Delay>(seg_delays[s]);
  }
  std::size_t seg_syn_begin_at(std::size_t s) const {
    return seg_syn_begin[s];
  }
  std::size_t seg_syn_end_at(std::size_t s) const {
    return seg_syn_begin[s + 1];
  }

  /// Resident bytes of the packed payload (sizes, not capacities).
  std::size_t payload_bytes() const {
    return weights.size() * sizeof(WgtT) +
           block_base.size() * sizeof(std::uint32_t) + block_bits.size() +
           block_word.size() * sizeof(std::uint32_t) +
           pack_words.size() * sizeof(std::uint32_t) +
           seg_delays.size() * sizeof(DlyT) +
           seg_syn_begin.size() * sizeof(std::uint32_t);
  }

  static constexpr StorageWidths widths() {
    return StorageWidths{true, true, sizeof(std::uint32_t), sizeof(DlyT),
                         sizeof(WgtT), sizeof(std::uint32_t)};
  }
};

/// Every layout a freeze can choose. Wide first: a default-constructed
/// variant is the wide empty store, so the empty CompiledNetwork stays a
/// valid placeholder. The packed alternatives close the list (targets
/// always decode to full NeuronId width, so only delay × weight vary).
using SynStoreVariant =
    std::variant<WideSynStore,
                 SynStore<std::uint16_t, std::uint8_t, float, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint8_t, double, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint16_t, float, std::uint32_t>,
                 SynStore<std::uint16_t, std::uint16_t, double, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint8_t, float, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint8_t, double, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint16_t, float, std::uint32_t>,
                 SynStore<std::uint32_t, std::uint16_t, double, std::uint32_t>,
                 PackedSynStore<std::uint8_t, float>,
                 PackedSynStore<std::uint8_t, double>,
                 PackedSynStore<std::uint16_t, float>,
                 PackedSynStore<std::uint16_t, double>>;

/// Pick the layout for the observed ranges (kWide always yields the
/// oracle). `weights_fit_f32` must hold iff every weight round-trips
/// double→float→double exactly. kAuto narrows when the ranges fit and
/// upgrades to the packed encoding at kPackedAutoMinSynapses; kPacked packs
/// any narrow-eligible freeze regardless of size. Ranges outside the narrow
/// envelope fall back to wide under every policy but kWide itself.
inline StorageWidths choose_widths(StoragePolicy policy, std::size_t n,
                                   std::size_t m, Delay max_delay,
                                   bool weights_fit_f32) {
  StorageWidths w;
  if (policy == StoragePolicy::kWide) return w;
  // Narrow eligibility: delays beyond u16 or ≥ 2^32 synapses (the u32
  // segment bounds) keep the whole payload wide rather than growing the
  // variant with rarely-hit mixed-width combinations.
  if (max_delay > 65535 || m >= (1ULL << 32)) return w;
  w.narrow = true;
  w.delay_bytes = max_delay <= 255 ? 1 : 2;
  w.weight_bytes = weights_fit_f32 ? 4 : 8;
  w.seg_index_bytes = 4;
  w.packed = policy == StoragePolicy::kPacked ||
             (policy == StoragePolicy::kAuto && m >= kPackedAutoMinSynapses);
  // Packed blocks always decode to full-width ids; the flat layouts narrow
  // the target column to u16 when the id range allows.
  w.target_bytes = !w.packed && n <= (1ULL << 16) ? 2 : 4;
  return w;
}

/// Instantiate the (empty) variant alternative matching `w`.
inline SynStoreVariant make_synapse_store(const StorageWidths& w) {
  if (!w.narrow) return WideSynStore{};
  const bool d8 = w.delay_bytes == 1;
  const bool f32 = w.weight_bytes == 4;
  if (w.packed) {
    if (d8 && f32) return PackedSynStore<std::uint8_t, float>{};
    if (d8) return PackedSynStore<std::uint8_t, double>{};
    if (f32) return PackedSynStore<std::uint16_t, float>{};
    return PackedSynStore<std::uint16_t, double>{};
  }
  const bool t16 = w.target_bytes == 2;
  if (t16 && d8 && f32)
    return SynStore<std::uint16_t, std::uint8_t, float, std::uint32_t>{};
  if (t16 && d8)
    return SynStore<std::uint16_t, std::uint8_t, double, std::uint32_t>{};
  if (t16 && f32)
    return SynStore<std::uint16_t, std::uint16_t, float, std::uint32_t>{};
  if (t16)
    return SynStore<std::uint16_t, std::uint16_t, double, std::uint32_t>{};
  if (d8 && f32)
    return SynStore<std::uint32_t, std::uint8_t, float, std::uint32_t>{};
  if (d8)
    return SynStore<std::uint32_t, std::uint8_t, double, std::uint32_t>{};
  if (f32)
    return SynStore<std::uint32_t, std::uint16_t, float, std::uint32_t>{};
  return SynStore<std::uint32_t, std::uint16_t, double, std::uint32_t>{};
}

/// Whether narrowing `w` to float32 and back reproduces it bit-exactly.
inline bool round_trips_f32(SynWeight w) {
  return static_cast<SynWeight>(static_cast<float>(w)) == w;
}

}  // namespace sga::snn
