// Discrete-time, event-driven LIF simulator.
//
// Executes the dynamics of Definition 2 exactly, but only touches time steps
// at which at least one spike is delivered (leak between events is applied in
// closed form: v - v_reset decays by (1-τ) per step). This is what makes the
// pseudopolynomial delay-encoded algorithms practical: a synapse with delay
// 10^6 costs one queue operation, not 10^6 idle steps. The paper's
// execution-time metric T (Definition 3: first spike of the terminal neuron)
// is reported exactly regardless of how many steps were skipped.
//
// Event queue (ARCHITECTURE.md §1): the hot path runs on a calendar queue —
// a dense ring of buckets over a sliding time window sized to the network's
// maximum synapse delay (clamped to [64, 2^16] slots, power of two). Any
// event landing inside the window is an O(1) array insert; the next event
// time is found with a per-slot occupancy bitmap (one countr_zero per 64
// slots). Events beyond the window — far-future injections, or synapse
// delays larger than the clamped ring — spill into a sorted std::map and
// migrate into the ring as the window slides past them. The legacy
// std::map<Time, Bucket> queue is retained behind QueueKind::kMap as the
// agreement oracle for tests and the bench ablation.
//
// Reuse: reset() rewinds the simulator for another run over the same
// network in O(processed events), not O(neurons) — per-neuron state is
// epoch-stamped into a dirty list as it is first touched and only those
// entries are restored. spiking_sssp_batch builds on this: one reusable
// Simulator per worker amortizes both the network build and the state
// (re)initialization across a multi-source sweep.
//
// Input (ARCHITECTURE.md §1.3): the simulator runs exclusively against a
// frozen snn::CompiledNetwork — flat CSR synapse arrays and SoA neuron
// parameters, validated once at Network::compile() time. The fan-out of a
// fired neuron is a contiguous slice of three flat arrays, delay-sorted at
// freeze time; fire() walks the per-neuron delay segments — one queue lookup
// per distinct delay, then a bulk append of the run's (target, weight) pairs
// into SoA bucket arrays (ARCHITECTURE.md §1.6). Drained bucket storage is
// pooled across ring slots and resets, so the steady state allocates
// nothing. An immutable CompiledNetwork can back many Simulators
// concurrently (one per worker in the batch driver).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/types.h"
#include "snn/compiled_network.h"
#include "snn/network.h"

namespace sga::obs {
class Probe;
}  // namespace sga::obs

namespace sga::snn {

struct SnapshotImage;  // snn/snapshot.h

/// Pending-event queue implementation (DESIGN.md §4 ablation knob).
enum class QueueKind : std::uint8_t {
  kCalendar,  ///< ring-bucket calendar queue + sorted overflow spill (default)
  kMap,       ///< legacy std::map<Time, Bucket>; kept as the agreement oracle
};

/// Fan-out kernel implementation (DESIGN.md §4 ablation knob). Both run on
/// the same delay-sorted CSR and produce event-for-event identical runs;
/// kPerSynapse is kept for the bench ablation and as a fuzzing oracle.
enum class FanoutKind : std::uint8_t {
  kSegmented,   ///< one queue lookup per delay run, bulk SoA append (default)
  kPerSynapse,  ///< legacy per-synapse queue lookup + single-element append
};

struct SimConfig {
  /// Inclusive time horizon; events scheduled after it are not processed.
  Time max_time = kNever;
  /// Computation terminates when any of these fires (Definition 3's u_t) —
  /// or, with terminate_on_all, when EVERY one of them has fired at least
  /// once (the multi-destination readout of Table 1's caption).
  std::vector<NeuronId> terminal_neurons;
  bool terminate_on_all = false;
  /// Record the full (time, neuron) spike log (memory ∝ total spikes).
  bool record_spike_log = false;
  /// If non-empty (and record_spike_log is set), only spikes of these
  /// neurons are logged — the cheap way to trace algorithm-level outputs
  /// without logging every internal gate.
  std::vector<NeuronId> watched_neurons;
  /// Record, for each neuron's FIRST spike, a presynaptic neuron whose spike
  /// arrived at that step (used for shortest-path predecessor extraction).
  bool record_causes = false;
  /// Cooperative pause point (docs/PERSISTENCE.md): run() returns with
  /// stats.paused set once the NEXT pending event time exceeds this,
  /// leaving every pending event queued. Unlike max_time — which
  /// permanently drops post-horizon work on the fan-out side — a paused
  /// run loses nothing: calling run() again (same recording flags and
  /// max_time, possibly a later pause_time) continues exactly where it
  /// stopped, and snapshot() captures the paused state for restore in
  /// another simulator. This is the service's checkpoint hook.
  Time pause_time = kNever;
};

struct SimStats {
  std::uint64_t spikes = 0;            ///< total spike events
  std::uint64_t deliveries = 0;        ///< synaptic deliveries processed
  std::uint64_t event_times = 0;       ///< distinct time steps touched
  Time end_time = 0;                   ///< last processed time step
  bool hit_terminal = false;           ///< stopped because a terminal fired
  bool hit_time_limit = false;         ///< work was left beyond max_time
  bool paused = false;                 ///< stopped at config.pause_time; the
                                       ///< run is resumable (nothing dropped)
  /// Execution time T per Definition 3 (first terminal spike), kNever if no
  /// terminal fired.
  Time execution_time = kNever;

  // ---- Queue-level counters (surfaced by bench_simulator) --------------
  /// Maximum number of pending events at any moment (identical across
  /// queue kinds: it is a property of the event stream, not the queue).
  std::uint64_t peak_queue_events = 0;
  /// Largest single-time-step bucket drained.
  std::uint64_t max_bucket_occupancy = 0;
  /// Events that missed the calendar ring's window and went to the sorted
  /// overflow spill (always 0 for QueueKind::kMap).
  std::uint64_t overflow_spills = 0;
  /// Empty ring slots skipped while seeking the next event time (calendar
  /// only; measures how sparse the workload is relative to the window).
  std::uint64_t empty_bucket_scans = 0;
  /// Calendar ring size in buckets (0 for QueueKind::kMap).
  std::uint32_t ring_buckets = 0;

  // ---- Fan-out kernel counters (ARCHITECTURE.md §1.6) ------------------
  /// Delay segments walked by the segmented fire() kernel (0 under
  /// FanoutKind::kPerSynapse). Engine-specific, like the queue counters:
  /// the sharded engine walks intra and cross runs separately.
  std::uint64_t fanout_segments = 0;
  /// Bulk delivery appends issued (fanout_segments minus horizon-dropped
  /// runs; 0 under FanoutKind::kPerSynapse).
  std::uint64_t bulk_appends = 0;
  /// Bucket activations whose delivery storage came from the drained-bucket
  /// pool (hit) vs. had to start from an empty vector (miss). After the
  /// first reset(), a steady-state rerun of the same workload reports
  /// pool_misses == 0 — the allocation-free contract. The packed kernels'
  /// row-decode scratch rides the same contract: it is a persistent
  /// per-simulator buffer, so packed steady-state reruns also report
  /// pool_misses == 0.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  /// Packed-target blocks decoded by the fan-out kernels (0 for the flat
  /// encodings) — the packed ablation's work counter (ARCHITECTURE.md
  /// §1.11).
  std::uint64_t decode_blocks = 0;

  // ---- Memory footprint (ARCHITECTURE.md §1.8, §1.11) ------------------
  /// Resident bytes of the frozen CSR backing this run (row pointers +
  /// segment CSR + the width-narrowed or delta-packed synapse payload —
  /// always the ENCODED footprint). A property of the CompiledNetwork,
  /// surfaced here so the bench trajectory tracks memory alongside wall
  /// clock.
  std::uint64_t csr_bytes = 0;
  /// Which encoding backs this run: 0 = wide, 1 = narrow, 2 = packed
  /// (snn::encoding_code). Lets the trajectory distinguish packed vs
  /// narrow vs wide artifacts without re-deriving it from the widths.
  std::uint8_t storage_encoding = 0;
};

class Simulator {
 public:
  /// Run against a frozen network. The simulator BORROWS `net`; the caller
  /// keeps it alive for the simulator's lifetime. This is the form the
  /// algorithm compilers and the batch driver use — one CompiledNetwork,
  /// many (possibly concurrent) simulators.
  explicit Simulator(const CompiledNetwork& net,
                     QueueKind queue = QueueKind::kCalendar,
                     FanoutKind fanout = FanoutKind::kSegmented);

  /// Convenience for one-shot runs (tests, examples): compiles `net` and
  /// owns the frozen copy. Equivalent to compiling first and keeping the
  /// CompiledNetwork next to the simulator.
  explicit Simulator(const Network& net,
                     QueueKind queue = QueueKind::kCalendar,
                     FanoutKind fanout = FanoutKind::kSegmented);

  /// The frozen network this simulator executes.
  const CompiledNetwork& network() const { return *net_; }

  /// Induce a spike in `id` at time t ≥ 0 (Definition 3: computation is
  /// initiated by inducing spikes in input neurons). The neuron fires
  /// unconditionally at t. Must be called before run().
  void inject_spike(NeuronId id, Time t);

  /// Run to completion (terminal spike, max_time, or quiescence). One-shot
  /// per cycle; call reset() to rewind and run again on the same network.
  SimStats run(const SimConfig& config = {});

  /// Rewind to the just-constructed state in O(events processed): only the
  /// per-neuron entries dirtied by the previous run are restored (epoch-
  /// stamped dirty list), queue buckets keep their capacity, and the spike
  /// log is cleared. After reset() the usual inject_spike()/run() cycle
  /// applies. Repeated runs over the same Network therefore cost
  /// O(events), not O(neurons) per run.
  void reset();

  // ---- Snapshot / restore (snn/snapshot.h; docs/PERSISTENCE.md) --------
  /// Serialize the complete simulation state — membrane potentials, every
  /// pending delivery bucket, the spike log, run configuration, cumulative
  /// counters — into the versioned binary snapshot format. Callable at any
  /// point outside run(): before a run, while paused (the checkpoint case),
  /// or after completion. The image uses global neuron ids and is engine-
  /// agnostic: it restores into either queue kind, either fan-out kind, or
  /// a ParallelSimulator over the same CompiledNetwork.
  std::vector<std::uint8_t> snapshot() const;

  /// Replace this simulator's state with a snapshot taken on the SAME
  /// frozen network (shape + storage widths are fingerprinted). ALL-OR-
  /// NOTHING: the stream is fully parsed and validated before any state is
  /// touched; on SnapshotError the simulator is exactly as it was. After
  /// restoring a paused snapshot, run() (with the original recording flags
  /// and max_time) resumes event-for-event identically to the run the
  /// snapshot was taken from.
  void restore(const std::uint8_t* data, std::size_t size);
  void restore(const std::vector<std::uint8_t>& bytes) {
    restore(bytes.data(), bytes.size());
  }

  /// True when the last run() stopped at config.pause_time (resumable).
  bool paused() const { return paused_; }
  /// While paused (or after restoring a paused snapshot): the earliest
  /// pending event time. Everything strictly below it has been processed;
  /// inject_spike() during a pause must target t ≥ resume_floor().
  Time resume_floor() const { return pause_floor_; }

  QueueKind queue_kind() const { return queue_kind_; }
  FanoutKind fanout_kind() const { return fanout_kind_; }

  /// Buckets currently resident in the drained-storage pool. Bounded across
  /// serve-many reuse: reset() trims the pool to the peak concurrent bucket
  /// demand of the last two runs, so one oversized request does not pin its
  /// peak footprint for the rest of a pooled worker's life (while the
  /// steady-state pool_misses == 0 contract still holds for a same-shaped
  /// rerun). Exposed for the reuse-lifecycle regression tests.
  std::size_t pool_resident_buckets() const { return pool_.size(); }

  // ---- Instrumentation (src/obs; see docs/OBSERVABILITY.md) -----------
  /// Attach an observability probe (spike trace / fire + delivery counters
  /// / potential sampling). The simulator BORROWS the probe; it must
  /// outlive the simulator or be detached first. Binds the probe to this
  /// network's size. Probes never alter simulation semantics; with no
  /// probe attached each hook site costs one branch on the cached pointer
  /// (the overhead contract of docs/OBSERVABILITY.md).
  void attach_probe(obs::Probe& probe);
  void detach_probe() { probe_ = nullptr; }
  obs::Probe* probe() const { return probe_; }

  // ---- Post-run observability ----------------------------------------
  /// First spike time of `id`, kNever if it never fired.
  Time first_spike(NeuronId id) const;
  const std::vector<Time>& first_spikes() const { return first_spike_; }
  /// Last spike time, kNever if never fired. fired_at(id, stats.end_time)
  /// implements Definition 3's read-out of output neurons at time T.
  Time last_spike(NeuronId id) const;
  bool fired_at(NeuronId id, Time t) const { return last_spike(id) == t; }
  /// Whether `id` fired anywhere in [t0, t1]. Resolved from first/last
  /// spike times when they are conclusive; when the neuron fired both
  /// before t0 and after t1, the recorded spike log is consulted (requires
  /// record_spike_log with `id` watched — throws otherwise, rather than
  /// silently guessing).
  bool fired_in(NeuronId id, Time t0, Time t1) const;
  std::uint32_t spike_count(NeuronId id) const;
  /// Presynaptic cause of the first spike (requires record_causes);
  /// kNoNeuron for injected/uncaused spikes.
  NeuronId first_spike_cause(NeuronId id) const;
  /// Full spike log (requires record_spike_log), ordered by time.
  const std::vector<std::pair<Time, NeuronId>>& spike_log() const {
    return spike_log_;
  }
  /// True when the previous run() recorded `id`'s spikes in the log.
  bool logged(NeuronId id) const {
    return record_log_ && (watch_all_ || is_watched_[id]);
  }
  /// Membrane potential of `id` as of the last time it was updated.
  Voltage potential(NeuronId id) const;

 private:
  /// One time step's pending work, deliveries in structure-of-arrays form:
  /// targets/weights always populated in lock-step; sources only when the
  /// run records causes (the only consumer), cutting delivery memory
  /// traffic by a third on the default path.
  struct Bucket {
    std::vector<NeuronId> targets;
    std::vector<SynWeight> weights;
    std::vector<NeuronId> sources;  ///< parallel to targets iff record_causes
    std::vector<NeuronId> forced;   ///< injected spikes

    bool empty() const { return targets.empty() && forced.empty(); }
    std::size_t size() const { return targets.size() + forced.size(); }
    void clear() {  // keeps capacity — cleared buckets are pooled
      targets.clear();
      weights.clear();
      sources.clear();
      forced.clear();
    }
  };

  void fire(NeuronId id, Time t);
  Voltage decayed_potential(NeuronId id, Time t) const;

  /// Fan-out kernels, one instantiation per storage layout (snn/storage.h):
  /// init_state() resolves the network's SynStoreVariant ONCE into
  /// fanout_fn_, so fire()'s inner loop runs fully typed — no per-event
  /// width or kind branching. Defined in simulator.cpp (the only TU that
  /// instantiates them).
  template <typename Store>
  void fanout_segmented(NeuronId id, Time t);
  template <typename Store>
  void fanout_per_synapse(NeuronId id, Time t);
  using FanoutFn = void (Simulator::*)(NeuronId, Time);

  /// Packed-layout helper: decode the target ids of flat range [b, e) (one
  /// neuron's row) into decode_scratch_, block by block. The scratch is a
  /// persistent per-simulator buffer grown once to the largest row — the
  /// steady state decodes allocation-free, matching the bucket pool's
  /// contract.
  template <typename Store>
  void decode_row(const Store& st, std::size_t b, std::size_t e);

  /// Mark `id`'s per-neuron state dirty for the O(events) reset().
  void touch_state(NeuronId id) {
    if (state_stamp_[id] != epoch_) {
      state_stamp_[id] = epoch_;
      dirty_.push_back(id);
    }
  }

  /// Queue ops — each branches once on queue_kind_. `count` is the number
  /// of events about to be appended to the returned bucket (bulk segment
  /// appends update the occupancy stats once per run, not per synapse).
  Bucket& bucket_for(Time t, std::uint64_t count);
  /// Earliest pending event time into *t; false when the queue is empty.
  bool next_pending_time(Time* t);
  /// Move far-future spill entries whose time now falls inside the ring
  /// window into the ring.
  void migrate_spill();

  /// Bucket-storage pool (ARCHITECTURE.md §1.6). `activate` hands a newly
  /// live bucket the vectors of a previously drained one; `recycle` returns
  /// a drained bucket's storage. Steady state is allocation-free: after one
  /// run + reset() the pool holds enough storage for every activation.
  void activate(Bucket& b) {
    if (!pool_.empty()) {
      ++stats_.pool_hits;
      b = std::move(pool_.back());
      pool_.pop_back();
    } else {
      ++stats_.pool_misses;
    }
    if (++live_buckets_ > peak_live_buckets_) {
      peak_live_buckets_ = live_buckets_;
    }
  }
  void recycle(Bucket& b) {
    b.clear();
    pool_.push_back(std::move(b));
    --live_buckets_;
  }

  void init_state();

  /// Snapshot plumbing (simulator.cpp + snn/snapshot.h): build the engine-
  /// agnostic image of the current state / adopt a validated image.
  void build_image(SnapshotImage* img) const;
  void apply_image(const SnapshotImage& img);

  std::optional<CompiledNetwork> owned_;  ///< set by the Network constructor
  const CompiledNetwork* net_;
  const QueueKind queue_kind_;
  const FanoutKind fanout_kind_;
  FanoutFn fanout_fn_ = nullptr;  ///< typed kernel, bound in init_state()
  obs::Probe* probe_ = nullptr;  ///< cached flag for the disabled fast path
  bool ran_ = false;

  // Calendar ring: ring_.size() is a power of two; slot = time & ring_mask_.
  // Invariant: every ring event's time lies in (cursor_, cursor_ + W), W =
  // ring size, so residues are collision-free and the slot being drained
  // can never receive new events mid-iteration (delay ≥ 1 plus the strict
  // upper bound). Events at or beyond cursor_ + W live in spill_.
  std::vector<Bucket> ring_;
  std::vector<std::uint64_t> ring_occupied_;  ///< 1 bit per slot
  Time ring_mask_ = 0;
  Time cursor_ = -1;                  ///< last processed (or jumped-to) time
  std::uint64_t ring_events_ = 0;     ///< events currently in the ring
  std::map<Time, Bucket> spill_;      ///< overflow; the whole queue for kMap
  std::uint64_t pending_events_ = 0;  ///< ring + spill, for the peak stat
  std::vector<Bucket> pool_;          ///< drained bucket storage, LIFO
  // Pool high-watermark trim support: buckets currently holding delivery
  // storage (activated, not yet recycled) and the per-run peak; reset()
  // keeps max(this run's peak, previous run's peak) pooled buckets.
  std::size_t live_buckets_ = 0;
  std::size_t peak_live_buckets_ = 0;
  std::size_t prev_peak_live_ = 0;

  // Per-neuron state.
  std::vector<Voltage> v_;
  std::vector<Time> last_update_;
  std::vector<Time> first_spike_;
  std::vector<Time> last_spike_;
  std::vector<std::uint32_t> spike_count_;
  std::vector<NeuronId> cause_;

  // O(events) reset support: neurons whose state diverged from the
  // just-constructed baseline this epoch.
  std::vector<NeuronId> dirty_;
  std::vector<std::uint64_t> state_stamp_;
  std::uint64_t epoch_ = 1;

  // Scratch for per-bucket aggregation (sparse-reset pattern).
  std::vector<SynWeight> accum_;
  std::vector<NeuronId> accum_cause_;
  std::vector<SynWeight> accum_cause_weight_;
  std::vector<char> touched_;
  std::vector<NeuronId> targets_scratch_;
  /// Packed-kernel row-decode buffer (see decode_row); unused (and empty)
  /// for flat encodings.
  std::vector<NeuronId> decode_scratch_;

  std::vector<char> is_terminal_;
  std::vector<char> is_watched_;
  std::vector<NeuronId> active_terminals_;  ///< set flags, for cheap reset
  std::vector<NeuronId> active_watched_;
  bool watch_all_ = false;
  std::vector<std::pair<Time, NeuronId>> spike_log_;
  SimStats stats_;
  bool record_causes_ = false;
  bool record_log_ = false;
  Time max_time_ = kNever;
  std::uint64_t terminals_remaining_ = 0;
  bool terminal_fired_ = false;

  // Pause/resume state (docs/PERSISTENCE.md). pause_floor_ is the next
  // pending event time at the moment of the pause: the boundary between
  // processed and pending work, carried into snapshots as the resume floor.
  bool paused_ = false;
  Time pause_time_ = kNever;
  Time pause_floor_ = 0;
};

}  // namespace sga::snn
