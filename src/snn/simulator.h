// Discrete-time, event-driven LIF simulator.
//
// Executes the dynamics of Definition 2 exactly, but only touches time steps
// at which at least one spike is delivered (leak between events is applied in
// closed form: v - v_reset decays by (1-τ) per step). This is what makes the
// pseudopolynomial delay-encoded algorithms practical: a synapse with delay
// 10^6 costs one queue operation, not 10^6 idle steps. The paper's
// execution-time metric T (Definition 3: first spike of the terminal neuron)
// is reported exactly regardless of how many steps were skipped.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/types.h"
#include "snn/network.h"

namespace sga::snn {

struct SimConfig {
  /// Inclusive time horizon; events scheduled after it are not processed.
  Time max_time = kNever;
  /// Computation terminates when any of these fires (Definition 3's u_t) —
  /// or, with terminate_on_all, when EVERY one of them has fired at least
  /// once (the multi-destination readout of Table 1's caption).
  std::vector<NeuronId> terminal_neurons;
  bool terminate_on_all = false;
  /// Record the full (time, neuron) spike log (memory ∝ total spikes).
  bool record_spike_log = false;
  /// If non-empty (and record_spike_log is set), only spikes of these
  /// neurons are logged — the cheap way to trace algorithm-level outputs
  /// without logging every internal gate.
  std::vector<NeuronId> watched_neurons;
  /// Record, for each neuron's FIRST spike, a presynaptic neuron whose spike
  /// arrived at that step (used for shortest-path predecessor extraction).
  bool record_causes = false;
};

struct SimStats {
  std::uint64_t spikes = 0;            ///< total spike events
  std::uint64_t deliveries = 0;        ///< synaptic deliveries processed
  std::uint64_t event_times = 0;       ///< distinct time steps touched
  Time end_time = 0;                   ///< last processed time step
  bool hit_terminal = false;           ///< stopped because a terminal fired
  bool hit_time_limit = false;         ///< stopped at max_time with work left
  /// Execution time T per Definition 3 (first terminal spike), kNever if no
  /// terminal fired.
  Time execution_time = kNever;
};

class Simulator {
 public:
  explicit Simulator(const Network& net);

  /// Induce a spike in `id` at time t ≥ 0 (Definition 3: computation is
  /// initiated by inducing spikes in input neurons). The neuron fires
  /// unconditionally at t. Must be called before run().
  void inject_spike(NeuronId id, Time t);

  /// Run to completion (terminal spike, max_time, or quiescence). One-shot.
  SimStats run(const SimConfig& config = {});

  // ---- Post-run observability ----------------------------------------
  /// First spike time of `id`, kNever if it never fired.
  Time first_spike(NeuronId id) const;
  const std::vector<Time>& first_spikes() const { return first_spike_; }
  /// Last spike time, kNever if never fired. fired_at(id, stats.end_time)
  /// implements Definition 3's read-out of output neurons at time T.
  Time last_spike(NeuronId id) const;
  bool fired_at(NeuronId id, Time t) const { return last_spike(id) == t; }
  std::uint32_t spike_count(NeuronId id) const;
  /// Presynaptic cause of the first spike (requires record_causes);
  /// kNoNeuron for injected/uncaused spikes.
  NeuronId first_spike_cause(NeuronId id) const;
  /// Full spike log (requires record_spike_log), ordered by time.
  const std::vector<std::pair<Time, NeuronId>>& spike_log() const {
    return spike_log_;
  }
  /// Membrane potential of `id` as of the last time it was updated.
  Voltage potential(NeuronId id) const;

 private:
  struct Delivery {
    NeuronId target;
    NeuronId source;
    SynWeight weight;
  };
  struct Bucket {
    std::vector<Delivery> deliveries;
    std::vector<NeuronId> forced;
  };

  void fire(NeuronId id, Time t);
  Voltage decayed_potential(NeuronId id, Time t) const;

  const Network& net_;
  std::map<Time, Bucket> queue_;
  bool ran_ = false;

  // Per-neuron state.
  std::vector<Voltage> v_;
  std::vector<Time> last_update_;
  std::vector<Time> first_spike_;
  std::vector<Time> last_spike_;
  std::vector<std::uint32_t> spike_count_;
  std::vector<NeuronId> cause_;

  // Scratch for per-bucket aggregation (sparse-reset pattern).
  std::vector<SynWeight> accum_;
  std::vector<NeuronId> accum_cause_;
  std::vector<SynWeight> accum_cause_weight_;
  std::vector<char> touched_;

  std::vector<char> is_terminal_;
  std::vector<char> is_watched_;
  bool watch_all_ = false;
  std::vector<std::pair<Time, NeuronId>> spike_log_;
  SimStats stats_;
  bool record_causes_ = false;
  bool record_log_ = false;
  Time max_time_ = kNever;
  std::uint64_t terminals_remaining_ = 0;
  bool terminal_fired_ = false;
};

}  // namespace sga::snn
