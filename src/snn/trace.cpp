#include "snn/trace.h"

#include <algorithm>
#include <ostream>
#include <set>

#include "core/error.h"

namespace sga::snn {

void write_spike_raster(std::ostream& os, const Simulator& sim,
                        const std::vector<NeuronId>& ids, Time t0, Time t1,
                        const std::vector<std::string>& labels) {
  SGA_REQUIRE(t0 <= t1, "write_spike_raster: empty window");
  SGA_REQUIRE(labels.empty() || labels.size() == ids.size(),
              "write_spike_raster: label count mismatch");

  // Collect the spikes of interest into per-neuron time sets.
  std::vector<std::set<Time>> times(ids.size());
  for (const auto& [t, id] : sim.spike_log()) {
    if (t < t0 || t > t1) continue;
    for (std::size_t row = 0; row < ids.size(); ++row) {
      if (ids[row] == id) times[row].insert(t);
    }
  }

  std::size_t label_width = 0;
  auto label_of = [&](std::size_t row) {
    return labels.empty() ? "n" + std::to_string(ids[row]) : labels[row];
  };
  for (std::size_t row = 0; row < ids.size(); ++row) {
    label_width = std::max(label_width, label_of(row).size());
  }

  os << std::string(label_width, ' ') << " t=" << t0 << '\n';
  for (std::size_t row = 0; row < ids.size(); ++row) {
    const std::string label = label_of(row);
    os << label << std::string(label_width - label.size(), ' ') << ' ';
    for (Time t = t0; t <= t1; ++t) {
      os << (times[row].count(t) ? '|' : '.');
    }
    os << '\n';
  }
}

void write_spike_csv(std::ostream& os, const Simulator& sim) {
  os << "time,neuron\n";
  for (const auto& [t, id] : sim.spike_log()) {
    os << t << ',' << id << '\n';
  }
}

}  // namespace sga::snn
