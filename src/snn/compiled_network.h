// Immutable, simulation-ready form of an snn::Network.
//
// The two-phase pipeline (ARCHITECTURE.md §1.3) separates construction from
// execution: builders (circuits::CircuitBuilder, the nga compilers, io)
// mutate a Network, then freeze it once with Network::compile(). The frozen
// CompiledNetwork stores
//   * neuron parameters as structure-of-arrays (v_reset / v_threshold / τ),
//   * out-synapses CSR-packed: one offsets array (n+1 entries) plus flat,
//     contiguous targets / weights / delays arrays in source-id order —
//     the fan-out of a fired neuron is one contiguous slice, no per-neuron
//     heap pointer to chase. Each row is stably sorted by delay at freeze
//     time, so equal-delay synapses form contiguous *delay runs* in builder
//     insertion order; a second CSR (seg_offsets_ + flat segment arrays)
//     records one (delay, begin, end) segment per run. The simulator's
//     fan-out kernel walks segments — one queue lookup per distinct delay,
//     then a bulk append of the run — instead of doing per-synapse lookups
//     (ARCHITECTURE.md §1.6),
//   * the flat synapse payload WIDTH-NARROWED to the observed ranges
//     (ARCHITECTURE.md §1.8): compile() scans n / max delay / the weight
//     domain and freezes u16 or u32 targets, u8/u16 delays, float32 weights
//     when exact — behind a SynStoreVariant dispatch, with the full-width
//     layout kept as the oracle (snn/storage.h). At scale kAuto upgrades
//     the narrow layout to the delta-PACKED encoding (ARCHITECTURE.md
//     §1.11): the delay-sorted target column becomes base + bit-packed
//     deltas in 64-entry blocks and the per-synapse delay column is dropped
//     in favor of the segment CSR's run-length form,
//   * per-neuron aggregates computed once at freeze time (the positive
//     in-weight table that previously cost a full-graph scan per query).
// compile() also runs the validation pass that used to be scattered across
// accessors or skipped entirely: every delay ≥ δ, every target in range,
// every weight finite, every τ ∈ [0, 1], every group member a real neuron,
// and the builder's max_delay / num_synapses counters consistent with the
// packed arrays.
//
// Million-edge generated families skip the nested-vector builder entirely:
// compile_streamed() freezes an edge STREAM via a two-pass counting sort —
// pass 1 counts per-source degrees and scans the ranges that pick the
// widths, pass 2 fills the (already narrow) CSR through a cursor array —
// so peak resident memory is the final CSR plus O(n) scratch, never a
// nested-vector copy of the graph.
//
// CompiledNetwork is deep-value (a handful of vectors): copy to snapshot,
// move for ownership transfer. It is immutable after construction, so one
// instance can back any number of Simulators across threads.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "core/error.h"
#include "core/types.h"
#include "snn/neuron.h"
#include "snn/storage.h"

namespace sga::snn {

class Network;
struct Partition;
struct ShardSplit;

/// Edge consumer handed to a compile_streamed() emitter: one call per
/// synapse (from, to, weight, delay).
using SynapseSink =
    std::function<void(NeuronId from, NeuronId to, SynWeight weight,
                       Delay delay)>;

/// Memory-footprint record of a streaming freeze (the obs counters of
/// ARCHITECTURE.md §1.8; surfaced by bench_scale and the scale tests).
struct StreamBuildStats {
  std::size_t num_neurons = 0;
  std::size_t num_synapses = 0;
  /// Resident bytes of the finished CSR (row pointers + segment CSR +
  /// narrow payload) — csr_storage_bytes() of the result.
  std::size_t csr_bytes = 0;
  /// High-water resident bytes during the freeze: the final CSR plus the
  /// O(n) counting-sort scratch (degree counts reused as the fill cursor).
  std::size_t peak_resident_bytes = 0;
};

/// Raw material of a packed freeze as an untrusted loader (io text v3)
/// hands it over: wide-typed columns plus the block tables, widths still
/// only CLAIMED. CompiledNetwork::from_packed_parts() validates the claim.
struct PackedNetworkParts {
  std::vector<NeuronParams> neurons;
  std::vector<std::size_t> offsets;  ///< n+1 CSR row pointers
  std::vector<std::size_t> seg_offsets;  ///< n+1 segment row pointers
  StorageWidths widths;  ///< must claim packed=true (delay/weight widths)
  std::vector<SynWeight> weights;  ///< one per synapse
  std::vector<Delay> seg_delays;   ///< one per delay run
  std::vector<std::uint32_t> seg_syn_begin;  ///< runs + 1 (sentinel = m)
  std::vector<std::uint32_t> block_base;
  std::vector<std::uint8_t> block_bits;
  std::vector<std::uint32_t> pack_words;
  std::vector<std::pair<std::string, std::vector<NeuronId>>> groups;
};

class CompiledNetwork {
 public:
  /// The empty network (0 neurons, 0 synapses) — a valid placeholder so
  /// compile-once artifacts (nga::KHopTtlCompiled, the service cache) can
  /// be built in stages before the real freeze is moved in.
  CompiledNetwork() : offsets_(1, 0), seg_offsets_(1, 0) {}

  /// Freeze `net`. Equivalent to net.compile(policy); see that method for
  /// the validation contract.
  explicit CompiledNetwork(const Network& net,
                           StoragePolicy policy = StoragePolicy::kAuto);

  /// Freeze an edge STREAM without materializing the nested-vector builder
  /// (ARCHITECTURE.md §1.8). `emit` is invoked EXACTLY TWICE with a sink —
  /// once to count per-source degrees and scan the width-choosing ranges,
  /// once to fill the narrow CSR — and must produce the identical synapse
  /// sequence both times (re-run a deterministic generator from its seed;
  /// a mismatch between the passes throws). `params` is consulted once per
  /// neuron. Validation matches the builder freeze: every target < n,
  /// delay ≥ δ, weight finite, τ ∈ [0, 1], with the offending index and
  /// value in each message. Groups are not representable in a stream;
  /// define them on a builder if you need ports.
  static CompiledNetwork compile_streamed(
      std::size_t num_neurons,
      const std::function<NeuronParams(NeuronId)>& params,
      const std::function<void(const SynapseSink&)>& emit,
      StoragePolicy policy = StoragePolicy::kAuto,
      StreamBuildStats* build_stats = nullptr);

  /// Reassemble a PACKED compiled form from untrusted parts (the io text v3
  /// reader). Performs the structural block-table checks that make decoding
  /// memory-safe (bits ≤ 32, word offsets exactly the running sum of
  /// per-block word counts, sentinel-terminated begin column) and bounds
  /// every decoded target BEFORE any table is indexed — then derives
  /// block_word / max_delay / pos_in_weight. Throws InvalidArgument on the
  /// first violation. Callers still run verify_invariants() for the full
  /// semantic contract (tiling, delay monotonicity, finiteness).
  static CompiledNetwork from_packed_parts(PackedNetworkParts&& parts);

  std::size_t num_neurons() const { return v_reset_.size(); }
  std::size_t num_synapses() const { return offsets_.back(); }

  /// Largest synapse delay (0 when there are no synapses); the simulator
  /// sizes its calendar-queue ring window from this.
  Delay max_delay() const { return max_delay_; }

  // ---- Neuron parameters (SoA; unchecked hot-path accessors) -----------
  Voltage v_reset(NeuronId id) const { return v_reset_[id]; }
  Voltage v_threshold(NeuronId id) const { return v_threshold_[id]; }
  double tau(NeuronId id) const { return tau_[id]; }

  /// Checked, reconstructing accessor for construction-side consumers.
  NeuronParams params(NeuronId id) const {
    SGA_REQUIRE(id < num_neurons(), "neuron id out of range: " << id);
    return NeuronParams{v_reset_[id], v_threshold_[id], tau_[id]};
  }

  // ---- CSR out-synapses ------------------------------------------------
  // The out-synapses of neuron `id` are the index range
  // [out_begin(id), out_end(id)) into the flat arrays, sorted by delay
  // (stably: insertion order within each delay run). The syn_* accessors
  // widen through the storage variant (one visit per call) — fine for
  // construction-side consumers (io, congest, shard_split, tests); the
  // simulator instead binds a kernel to the concrete store type once, via
  // synapse_store().
  std::size_t out_begin(NeuronId id) const { return offsets_[id]; }
  std::size_t out_end(NeuronId id) const { return offsets_[id + 1]; }
  std::size_t out_degree(NeuronId id) const {
    return offsets_[id + 1] - offsets_[id];
  }
  NeuronId syn_target(std::size_t k) const {
    return std::visit([k](const auto& st) { return st.target_at(k); },
                      store_);
  }
  SynWeight syn_weight(std::size_t k) const {
    return std::visit([k](const auto& st) { return st.weight_at(k); },
                      store_);
  }
  Delay syn_delay(std::size_t k) const {
    return std::visit([k](const auto& st) { return st.delay_at(k); }, store_);
  }

  /// The width-dispatched payload itself, for kernels that resolve the
  /// concrete store type once (Simulator's templated fan-out) instead of
  /// paying a visit per access.
  const SynStoreVariant& synapse_store() const { return store_; }

  /// The widths this freeze chose (io v2 tags, bench records, tests).
  const StorageWidths& storage_widths() const { return widths_; }

  /// Resident bytes of the CSR: row pointers, segment row pointers, and
  /// the six payload arrays at their frozen widths (SimStats::csr_bytes).
  std::size_t csr_storage_bytes() const {
    return (offsets_.size() + seg_offsets_.size()) * sizeof(std::size_t) +
           std::visit([](const auto& st) { return st.payload_bytes(); },
                      store_);
  }
  /// csr_storage_bytes() normalized per synapse — the scale lane's
  /// machine-independent memory metric (0 for edgeless networks).
  double bytes_per_synapse() const {
    const std::size_t m = num_synapses();
    return m == 0 ? 0.0
                  : static_cast<double>(csr_storage_bytes()) /
                        static_cast<double>(m);
  }

  // ---- Delay segments (CSR-of-segments over the rows above) ------------
  // The delay runs of neuron `id` are the segment-index range
  // [seg_begin(id), seg_end(id)). Segment s covers the synapse-index range
  // [seg_syn_begin(s), seg_syn_end(s)), all of whose synapses share delay
  // seg_delay(s); within a row, segment delays are strictly increasing and
  // the synapse ranges exactly partition [out_begin(id), out_end(id)).
  std::size_t seg_begin(NeuronId id) const { return seg_offsets_[id]; }
  std::size_t seg_end(NeuronId id) const { return seg_offsets_[id + 1]; }
  Delay seg_delay(std::size_t s) const {
    return std::visit([s](const auto& st) { return st.seg_delay_at(s); },
                      store_);
  }
  std::size_t seg_syn_begin(std::size_t s) const {
    return std::visit([s](const auto& st) { return st.seg_syn_begin_at(s); },
                      store_);
  }
  std::size_t seg_syn_end(std::size_t s) const {
    return std::visit([s](const auto& st) { return st.seg_syn_end_at(s); },
                      store_);
  }
  std::size_t num_delay_segments() const { return seg_offsets_.back(); }

  /// Range view over a neuron's out-synapses yielding Synapse values, for
  /// construction-side consumers (io, unroll, congest) that want the old
  /// nested-vector iteration idiom without the nested vectors.
  class OutSynapseIter {
   public:
    OutSynapseIter(const CompiledNetwork* net, std::size_t k)
        : net_(net), k_(k) {}
    Synapse operator*() const {
      return Synapse{net_->syn_target(k_), net_->syn_weight(k_),
                     net_->syn_delay(k_)};
    }
    OutSynapseIter& operator++() {
      ++k_;
      return *this;
    }
    bool operator!=(const OutSynapseIter& o) const { return k_ != o.k_; }
    bool operator==(const OutSynapseIter& o) const { return k_ == o.k_; }

   private:
    const CompiledNetwork* net_;
    std::size_t k_;
  };
  class OutSynapseRange {
   public:
    OutSynapseRange(const CompiledNetwork* net, std::size_t b, std::size_t e)
        : net_(net), begin_(b), end_(e) {}
    OutSynapseIter begin() const { return {net_, begin_}; }
    OutSynapseIter end() const { return {net_, end_}; }
    std::size_t size() const { return end_ - begin_; }
    Synapse operator[](std::size_t i) const {
      return *OutSynapseIter{net_, begin_ + i};
    }

   private:
    const CompiledNetwork* net_;
    std::size_t begin_;
    std::size_t end_;
  };
  OutSynapseRange out_synapses(NeuronId id) const {
    SGA_REQUIRE(id < num_neurons(), "neuron id out of range: " << id);
    return {this, offsets_[id], offsets_[id + 1]};
  }

  // ---- Freeze-time aggregates ------------------------------------------
  /// Total positive in-weight of `id` (Section 3's fire-once sizing bound).
  /// O(1): tabulated once at freeze time.
  SynWeight positive_in_weight(NeuronId id) const {
    SGA_REQUIRE(id < num_neurons(), "positive_in_weight: bad id " << id);
    return pos_in_weight_[id];
  }

  // ---- Untrusted-input defense (snn/io.cpp; docs/SERVICE.md) -----------
  /// Re-check every structural invariant of the compiled form: CSR row
  /// pointers monotone and consistent with the flat arrays, delay segments
  /// exactly partitioning each row with strictly increasing delays, every
  /// delay ≥ δ and every target in range, τ ∈ [0, 1] and all neuron
  /// parameters / weights finite, the positive-in-weight table and
  /// max_delay consistent with the synapse payload, the storage widths
  /// consistent with the ranges they must represent, and group members in
  /// range. compile() establishes all of this by construction; this method
  /// exists for consumers that receive a CompiledNetwork from an untrusted
  /// source (deserialized caches, future binary snapshot loaders) and must
  /// not hand the simulator's unchecked hot-path accessors corrupt indices.
  /// Throws InvalidArgument on the first violation.
  void verify_invariants() const;

  // ---- Incremental recompile (docs/PERSISTENCE.md) ---------------------
  // The ONE sanctioned exception to "immutable after construction": patch
  // the frozen payload in place instead of re-running the full freeze.
  // Both methods are all-or-nothing (every edit is validated against the
  // frozen widths BEFORE the first store mutation) and re-run
  // verify_invariants() on the patched artifact before returning, so a
  // patched network is exactly as trustworthy as a fresh freeze. They are
  // NOT thread-safe: no Simulator may be mid-run on this network while a
  // patch executes (between runs is fine — engines re-read the store each
  // run; a ring sized for the old max_delay stays correct via spill).
  /// Reassign weights by flat synapse index (see out_begin/out_end for the
  /// row ranges). Later duplicates win. Each weight must be finite and,
  /// when the freeze chose float32 storage, round-trip it bit-exactly —
  /// otherwise the patch throws untouched (re-freeze to widen). The
  /// positive-in-weight table is recomputed wholesale in synapse order, so
  /// it stays bit-identical to what a fresh freeze of the patched graph
  /// would tabulate.
  void patch_weights(
      const std::vector<std::pair<std::size_t, SynWeight>>& edits);
  /// Reassign delays by flat synapse index. Each delay must be ≥ δ and fit
  /// the frozen delay width (u8/u16 when narrow — re-freeze to widen).
  /// Touched rows are stably re-sorted by delay and re-segmented (untouched
  /// rows keep their segments verbatim); max_delay() is refreshed, which
  /// may grow or shrink it. Packed freezes reject delay patches outright:
  /// re-sorting a row re-orders the delta-packed target column, which is a
  /// re-encode, not a patch — re-freeze (kNarrow keeps patching available).
  void patch_delays(const std::vector<std::pair<std::size_t, Delay>>& edits);

  // ---- Sharding (snn/partition.h; ARCHITECTURE.md §1.5) ----------------
  /// Re-pack the CSR under `partition` into per-shard intra/cross synapse
  /// families for the conservative-parallel simulator. Pure derivation:
  /// the CompiledNetwork itself stays untouched (and shareable), the split
  /// owns its reordered copy of the synapse payload (at full width: shard
  /// CSRs are per-run transients, see DESIGN.md).
  ShardSplit shard_split(Partition partition) const;

  // ---- Named groups (ports), carried over from the builder -------------
  bool has_group(const std::string& name) const {
    return groups_.contains(name);
  }
  const std::vector<NeuronId>& group(const std::string& name) const;
  std::vector<std::string> group_names() const;

 private:
  /// Choose widths for the already-validated wide payload and move it into
  /// the variant (narrowing element-wise when a narrow layout was chosen).
  void adopt_payload(StoragePolicy policy, WideSynStore&& wide);
  /// Retabulate pos_in_weight_ from the payload in flat synapse order (the
  /// same accumulation order compile() and verify_invariants() use).
  void recompute_pos_in_weight();

  std::vector<Voltage> v_reset_;
  std::vector<Voltage> v_threshold_;
  std::vector<double> tau_;

  std::vector<std::size_t> offsets_;      ///< n+1 entries; CSR row pointers
  std::vector<std::size_t> seg_offsets_;  ///< n+1 entries; segment row ptrs
  SynStoreVariant store_;                 ///< width-dispatched flat payload
  StorageWidths widths_;

  std::vector<SynWeight> pos_in_weight_;
  Delay max_delay_ = 0;
  std::unordered_map<std::string, std::vector<NeuronId>> groups_;
};

}  // namespace sga::snn
