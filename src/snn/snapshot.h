// Versioned binary snapshot/restore + deterministic replay journal
// (docs/PERSISTENCE.md; ARCHITECTURE.md §1.9).
//
// A service that runs for days needs more than reset(): this module defines
// the ENGINE-AGNOSTIC image of a simulation in flight — membrane potentials,
// every pending delivery bucket, the spike log, the run configuration and
// cumulative counters — and a byte-exact serialization of it (magic +
// version + flags, framed sections, trailing CRC-32). Both snn::Simulator
// and snn::ParallelSimulator produce and consume the same image with GLOBAL
// neuron ids, so a snapshot taken from one engine (or queue kind, or shard
// count) restores into any other: fault tolerance, shard migration, and
// A/B-ing kernel variants mid-run all reduce to snapshot() + restore().
//
// Determinism contract: restore-from-snapshot + resume is event-for-event
// identical to the uninterrupted run (tests/test_snapshot.cpp proves it
// across both queue kinds, both fan-out kinds, narrow+wide storage, and the
// sharded engine). Combined with the SpikeJournal — an append-only record
// of every injected spike — any run replays exactly from (snapshot,
// journal tail): the snapshot pins all state up to its resume floor, the
// journal replays the inputs that arrived after it.
//
// Failure model: restore() is ALL-OR-NOTHING. The byte stream is parsed and
// validated in full (structure by parse_snapshot(), semantics against the
// live network by validate_snapshot_for()) before a single field of
// simulator state is touched; any violation throws SnapshotError naming the
// failing section and leaves the simulator exactly as it was.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/types.h"
#include "snn/simulator.h"  // SimStats
#include "snn/storage.h"    // StorageWidths

namespace sga::snn {

class CompiledNetwork;

// ---- On-disk constants (the single source of truth docs/PERSISTENCE.md
// declares and tests/test_snapshot.cpp pins) ------------------------------

/// Snapshot stream magic: bytes "SGAS" little-endian.
inline constexpr std::uint32_t kSnapshotMagic = 0x53414753u;
/// Snapshot format version. Bump on ANY layout change; readers reject
/// versions they do not know (no silent best-effort parsing).
inline constexpr std::uint16_t kSnapshotVersion = 1;
/// Journal stream magic: bytes "SGAJ" little-endian.
inline constexpr std::uint32_t kJournalMagic = 0x4a414753u;
inline constexpr std::uint16_t kJournalVersion = 1;

/// Section ids, in their required stream order (docs/PERSISTENCE.md).
inline constexpr std::uint16_t kSecFingerprint = 1;
inline constexpr std::uint16_t kSecConfig = 2;
inline constexpr std::uint16_t kSecNeuron = 3;
inline constexpr std::uint16_t kSecQueue = 4;
inline constexpr std::uint16_t kSecLog = 5;
inline constexpr std::uint16_t kSecStats = 6;

/// Header flag bits (docs/PERSISTENCE.md §header).
inline constexpr std::uint16_t kFlagMidRun = 1u << 0;
inline constexpr std::uint16_t kFlagRecordCauses = 1u << 1;
inline constexpr std::uint16_t kFlagRecordLog = 1u << 2;
inline constexpr std::uint16_t kFlagWatchAll = 1u << 3;
inline constexpr std::uint16_t kFlagTerminalFired = 1u << 4;

/// Thrown on any malformed, corrupt, or incompatible snapshot/journal
/// stream. `section()` names the part of the format that failed ("header",
/// "crc", "fingerprint", "config", "neuron", "queue", "log", "stats",
/// "journal") and `typed_section()` carries the same tag as an enum — so
/// callers can dispatch on e.g. SnapshotError::kFingerprint (a packed
/// snapshot refusing to restore into a narrow-frozen network) without
/// string-matching. The all-or-nothing restore contract guarantees the
/// target simulator is untouched when this escapes.
class SnapshotError : public Error {
 public:
  /// Section tags, in stream order (kJournal is the SpikeJournal's own
  /// stream). Unscoped on purpose: SnapshotError::kFingerprint reads as
  /// the error class it tags.
  enum Section : std::uint8_t {
    kHeader,
    kCrc,
    kFingerprint,
    kConfig,
    kNeuron,
    kQueue,
    kLog,
    kStats,
    kJournal,
  };

  static const char* section_name(Section s) {
    switch (s) {
      case kHeader: return "header";
      case kCrc: return "crc";
      case kFingerprint: return "fingerprint";
      case kConfig: return "config";
      case kNeuron: return "neuron";
      case kQueue: return "queue";
      case kLog: return "log";
      case kStats: return "stats";
      case kJournal: return "journal";
    }
    return "header";
  }

  SnapshotError(Section section, const std::string& what)
      : Error(std::string("snapshot [") + section_name(section) +
              "]: " + what),
        section_(section_name(section)),
        typed_(section) {}

  /// Legacy string spelling; known names map back onto the typed tag.
  SnapshotError(std::string section, const std::string& what)
      : Error("snapshot [" + section + "]: " + what),
        section_(std::move(section)),
        typed_(parse_section(section_)) {}

  const std::string& section() const { return section_; }
  Section typed_section() const { return typed_; }

 private:
  static Section parse_section(const std::string& name) {
    for (const Section s : {kHeader, kCrc, kFingerprint, kConfig, kNeuron,
                            kQueue, kLog, kStats, kJournal}) {
      if (name == section_name(s)) return s;
    }
    return kHeader;
  }

  std::string section_;
  Section typed_;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `size` bytes — the
/// integrity check trailing every snapshot/journal stream. Exposed so tests
/// can re-stamp deliberately corrupted streams.
std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size);

// ---- The in-memory image -------------------------------------------------

/// Per-neuron dynamic state, recorded SPARSELY: only neurons that diverged
/// from the just-constructed baseline (the engines' epoch-dirty lists)
/// appear, sorted by id.
struct SnapshotNeuron {
  NeuronId id = 0;
  Voltage v = 0;
  Time last_update = 0;
  Time first_spike = kNever;
  Time last_spike = kNever;
  std::uint32_t spike_count = 0;
  NeuronId cause = kNoNeuron;  ///< first-spike cause (record_causes runs)
};

/// One pending synaptic delivery. `source` is kNoNeuron unless the run
/// records causes (matching the engines' SoA buckets, which materialize
/// the sources array only then).
struct SnapshotDelivery {
  NeuronId target = 0;
  SynWeight weight = 0;
  NeuronId source = kNoNeuron;
};

/// All pending work at one future time step: injected (forced) spikes plus
/// synaptic deliveries, in the exact order the source engine would drain
/// them (delivery order is observable through FP summation and log order).
struct SnapshotBucket {
  Time time = 0;
  std::vector<NeuronId> forced;
  std::vector<SnapshotDelivery> deliveries;
};

/// The complete engine-agnostic simulation state. Global neuron ids
/// everywhere; nothing in here depends on queue kind, fan-out kind, storage
/// width, or shard count — which is what makes cross-engine restore work.
struct SnapshotImage {
  // -- network fingerprint: the frozen CompiledNetwork this state belongs
  //    to. restore() refuses a mismatch (wrong network, or same network
  //    frozen at different storage widths OR a different encoding — the
  //    packed flag rides in `widths`, so a packed-network snapshot cannot
  //    silently restore into a narrow/wide re-freeze).
  std::uint64_t num_neurons = 0;
  std::uint64_t num_synapses = 0;
  Delay max_delay = 0;
  StorageWidths widths;

  // -- run mode ----------------------------------------------------------
  bool mid_run = false;  ///< taken after run() started (paused or finished)
  bool record_causes = false;
  bool record_log = false;
  bool watch_all = false;
  bool terminal_fired = false;
  Time max_time = kNever;
  /// Resume floor: every time step strictly below it has been processed;
  /// every pending bucket lies at or above it. Post-restore injections must
  /// respect it.
  Time resume_floor = 0;
  std::uint64_t terminals_remaining = 0;
  std::vector<NeuronId> terminals;  ///< registered terminal neurons, sorted
  std::vector<NeuronId> watched;    ///< registered watched neurons, sorted

  // -- dynamic state -----------------------------------------------------
  std::vector<SnapshotNeuron> neurons;  ///< sparse, sorted by id
  std::vector<SnapshotBucket> queue;    ///< ascending time
  std::vector<std::pair<Time, NeuronId>> log;  ///< spike log, verbatim
  SimStats stats;  ///< cumulative counters (stats.paused marks a paused run)
};

/// Serialize `image` into the versioned byte stream (docs/PERSISTENCE.md).
/// Pure function of the image: identical images produce identical bytes.
/// Performs NO semantic validation — restore() validates on the way in, so
/// tests can serialize deliberately inconsistent images.
std::vector<std::uint8_t> serialize_snapshot(const SnapshotImage& image);

/// Parse and STRUCTURALLY validate a snapshot stream: magic, version, CRC,
/// section framing, bounds of every length field. Throws SnapshotError on
/// the first violation. Semantic validation against a live network is
/// validate_snapshot_for()'s job.
SnapshotImage parse_snapshot(const std::uint8_t* data, std::size_t size);
inline SnapshotImage parse_snapshot(const std::vector<std::uint8_t>& bytes) {
  return parse_snapshot(bytes.data(), bytes.size());
}

/// Semantic validation of a parsed image against the network a restore
/// would run on: fingerprint match, every id in range, times ordered and
/// inside [0, kNever], neurons/queue sorted. Throws SnapshotError naming
/// the failing section; touches no simulator state (the engines call this
/// BEFORE mutating anything — the all-or-nothing half of restore()).
void validate_snapshot_for(const SnapshotImage& image,
                           const CompiledNetwork& net);

// ---- Deterministic injected-spike journal --------------------------------

/// Append-only record of every inject_spike() a driver issued, with its own
/// versioned+CRC'd serialization. Replaying a journal into a fresh
/// simulator reproduces the original inputs exactly; replaying the TAIL
/// (entries recorded after a snapshot was taken) into a restored simulator
/// reproduces a run that received inputs mid-flight. The journal stores
/// entries in record order — replay preserves it, so duplicate/same-step
/// injections collapse exactly as they did originally.
class SpikeJournal {
 public:
  void record(NeuronId id, Time t) { entries_.emplace_back(id, t); }

  const std::vector<std::pair<NeuronId, Time>>& entries() const {
    return entries_;
  }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Inject entries [from_entry, size()) into `sim` (any type with
  /// inject_spike(NeuronId, Time)). Pass the journal size at snapshot time
  /// as `from_entry` to replay only the tail the snapshot has not seen.
  template <typename Sim>
  void replay_into(Sim& sim, std::size_t from_entry = 0) const {
    for (std::size_t i = from_entry; i < entries_.size(); ++i) {
      sim.inject_spike(entries_[i].first, entries_[i].second);
    }
  }

  /// Versioned bytes: magic "SGAJ" + version + count + entries + CRC-32.
  std::vector<std::uint8_t> serialize() const;
  /// Throws SnapshotError("journal", ...) on any malformed stream.
  static SpikeJournal deserialize(const std::uint8_t* data, std::size_t size);
  static SpikeJournal deserialize(const std::vector<std::uint8_t>& bytes) {
    return deserialize(bytes.data(), bytes.size());
  }

 private:
  std::vector<std::pair<NeuronId, Time>> entries_;
};

}  // namespace sga::snn
