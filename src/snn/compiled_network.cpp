#include "snn/compiled_network.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "snn/network.h"

namespace sga::snn {

CompiledNetwork::CompiledNetwork(const Network& net) {
  const std::size_t n = net.num_neurons();
  v_reset_.resize(n);
  v_threshold_.resize(n);
  tau_.resize(n);
  for (NeuronId i = 0; i < n; ++i) {
    const NeuronParams& p = net.params(i);
    SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
                "compile: neuron " << i << " has decay τ = " << p.tau
                                   << " outside [0, 1]");
    v_reset_[i] = p.v_reset;
    v_threshold_[i] = p.v_threshold;
    tau_[i] = p.tau;
  }

  // CSR pack in source-id order. Each row is stably sorted by delay so the
  // fan-out kernel can walk one contiguous delay run per queue lookup;
  // stability keeps equal-delay synapses in builder insertion order, which
  // the cause tie-break relies on being order-free anyway but which keeps
  // per-bucket delivery order (and hence FP summation order) bit-identical
  // to the unsorted layout.
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + net.out_synapses(i).size();
  }
  const std::size_t m = offsets_[n];
  targets_.resize(m);
  weights_.resize(m);
  delays_.resize(m);
  pos_in_weight_.assign(n, 0);

  Delay max_delay = 0;
  std::vector<std::size_t> order;  // per-row stable sort permutation
  for (NeuronId i = 0; i < n; ++i) {
    const std::span<const Synapse> row = net.out_synapses(i);
    order.resize(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&row](std::size_t a, std::size_t b) {
                       return row[a].delay < row[b].delay;
                     });
    std::size_t k = offsets_[i];
    for (const std::size_t j : order) {
      const Synapse& s = row[j];
      SGA_REQUIRE(s.target < n, "compile: synapse "
                                    << k << " (from neuron " << i
                                    << ") targets out-of-range neuron "
                                    << s.target);
      SGA_REQUIRE(s.delay >= kMinDelay,
                  "compile: synapse " << k << " (from neuron " << i
                                      << ") has delay " << s.delay
                                      << " below minimum δ = " << kMinDelay);
      targets_[k] = s.target;
      weights_[k] = s.weight;
      delays_[k] = s.delay;
      if (s.weight > 0) pos_in_weight_[s.target] += s.weight;
      max_delay = std::max(max_delay, s.delay);
      ++k;
    }
  }
  max_delay_ = max_delay;

  // Segment CSR: one (delay, begin, end) triple per delay run of each row.
  seg_offsets_.resize(n + 1);
  seg_offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    std::size_t k = offsets_[i];
    const std::size_t row_end = offsets_[i + 1];
    while (k < row_end) {
      const Delay d = delays_[k];
      const std::size_t run_begin = k;
      while (k < row_end && delays_[k] == d) ++k;
      seg_delays_.push_back(d);
      seg_syn_begin_.push_back(run_begin);
      seg_syn_end_.push_back(k);
    }
    seg_offsets_[i + 1] = seg_delays_.size();
  }

  // The builder maintains these incrementally; the packed arrays are the
  // ground truth. A mismatch means builder state was corrupted.
  SGA_CHECK(m == net.num_synapses(),
            "compile: packed " << m << " synapses but the builder counted "
                               << net.num_synapses());
  SGA_CHECK(max_delay_ == net.max_delay(),
            "compile: packed max delay " << max_delay_
                                         << " != builder max delay "
                                         << net.max_delay());

  for (const std::string& name : net.group_names()) {
    const std::vector<NeuronId>& ids = net.group(name);
    for (const NeuronId id : ids) {
      SGA_REQUIRE(id < n, "compile: group '" << name
                                             << "' contains out-of-range "
                                                "neuron id "
                                             << id);
    }
    groups_.emplace(name, ids);
  }
}

void CompiledNetwork::verify_invariants() const {
  const std::size_t n = num_neurons();
  const std::size_t m = targets_.size();
  SGA_REQUIRE(v_threshold_.size() == n && tau_.size() == n &&
                  pos_in_weight_.size() == n,
              "verify: neuron SoA arrays disagree on the neuron count");
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(std::isfinite(v_reset_[i]) && std::isfinite(v_threshold_[i]),
                "verify: neuron " << i << " has non-finite parameters");
    SGA_REQUIRE(tau_[i] >= 0.0 && tau_[i] <= 1.0,
                "verify: neuron " << i << " has decay τ = " << tau_[i]
                                  << " outside [0, 1]");
  }

  SGA_REQUIRE(offsets_.size() == n + 1 && offsets_[0] == 0,
              "verify: malformed CSR row pointers");
  SGA_REQUIRE(weights_.size() == m && delays_.size() == m,
              "verify: synapse SoA arrays disagree on the synapse count");
  SGA_REQUIRE(offsets_[n] == m,
              "verify: row pointers cover " << offsets_[n]
                                            << " synapses, arrays hold " << m);
  Delay max_delay = 0;
  std::vector<SynWeight> pos_in(n, 0);
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(offsets_[i] <= offsets_[i + 1],
                "verify: CSR row pointers not monotone at neuron " << i);
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
      SGA_REQUIRE(targets_[k] < n, "verify: synapse " << k
                                                      << " targets out-of-"
                                                         "range neuron "
                                                      << targets_[k]);
      SGA_REQUIRE(delays_[k] >= kMinDelay,
                  "verify: synapse " << k << " has delay " << delays_[k]
                                     << " below minimum δ = " << kMinDelay);
      SGA_REQUIRE(std::isfinite(weights_[k]),
                  "verify: synapse " << k << " has non-finite weight");
      if (weights_[k] > 0) pos_in[targets_[k]] += weights_[k];
      max_delay = std::max(max_delay, delays_[k]);
    }
  }
  SGA_REQUIRE(max_delay_ == max_delay,
              "verify: stored max delay " << max_delay_
                                          << " != payload max delay "
                                          << max_delay);
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(pos_in_weight_[i] == pos_in[i],
                "verify: positive in-weight table stale at neuron " << i);
  }

  // Segment CSR (ARCHITECTURE.md §1.6): the fan-out kernel indexes these
  // arrays unchecked, so every bound and the delay-run monotonicity the
  // horizon break relies on must hold.
  const std::size_t s_total = seg_delays_.size();
  SGA_REQUIRE(seg_offsets_.size() == n + 1 && seg_offsets_[0] == 0 &&
                  seg_offsets_[n] == s_total &&
                  seg_syn_begin_.size() == s_total &&
                  seg_syn_end_.size() == s_total,
              "verify: malformed segment CSR");
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(seg_offsets_[i] <= seg_offsets_[i + 1],
                "verify: segment row pointers not monotone at neuron " << i);
    std::size_t expect = offsets_[i];
    Delay prev = 0;  // below kMinDelay, so the strict check covers run 0
    for (std::size_t s = seg_offsets_[i]; s < seg_offsets_[i + 1]; ++s) {
      SGA_REQUIRE(seg_syn_begin_[s] == expect,
                  "verify: segment " << s << " does not tile neuron " << i
                                     << "'s row");
      SGA_REQUIRE(seg_syn_end_[s] > seg_syn_begin_[s] &&
                      seg_syn_end_[s] <= offsets_[i + 1],
                  "verify: segment " << s << " has bad synapse range");
      SGA_REQUIRE(seg_delays_[s] > prev,
                  "verify: delay runs not strictly increasing at segment "
                      << s << " of neuron " << i);
      for (std::size_t k = seg_syn_begin_[s]; k < seg_syn_end_[s]; ++k) {
        SGA_REQUIRE(delays_[k] == seg_delays_[s],
                    "verify: synapse " << k << " disagrees with its segment "
                                       << s << " on delay");
      }
      prev = seg_delays_[s];
      expect = seg_syn_end_[s];
    }
    SGA_REQUIRE(expect == offsets_[i + 1],
                "verify: segments leave a tail of neuron " << i
                                                           << "'s row "
                                                              "uncovered");
  }

  for (const auto& [name, ids] : groups_) {
    SGA_REQUIRE(!name.empty(), "verify: empty group name");
    for (const NeuronId id : ids) {
      SGA_REQUIRE(id < n, "verify: group '" << name
                                            << "' contains out-of-range "
                                               "neuron id "
                                            << id);
    }
  }
}

const std::vector<NeuronId>& CompiledNetwork::group(
    const std::string& name) const {
  const auto it = groups_.find(name);
  SGA_REQUIRE(it != groups_.end(), "unknown group: " << name);
  return it->second;
}

std::vector<std::string> CompiledNetwork::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, ids] : groups_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sga::snn
