#include "snn/compiled_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <tuple>
#include <utility>

#include "snn/network.h"

namespace sga::snn {

namespace {

/// Move `src` into `dst` when the element types match, otherwise narrow
/// element-wise. The caller has already validated every value against the
/// chosen width's range.
template <typename T, typename U>
void narrow_into(std::vector<T>& dst, std::vector<U>&& src) {
  if constexpr (std::is_same_v<T, U>) {
    dst = std::move(src);
  } else {
    dst.reserve(src.size());
    for (const U v : src) dst.push_back(static_cast<T>(v));
    src.clear();
    src.shrink_to_fit();  // the wide temporary dies here, not at scope end
  }
}

}  // namespace

void CompiledNetwork::adopt_payload(StoragePolicy policy, WideSynStore&& wide) {
  const std::size_t m = wide.targets.size();
  bool f32 = true;
  for (const SynWeight w : wide.weights) {
    if (!round_trips_f32(w)) {
      f32 = false;
      break;
    }
  }
  widths_ = choose_widths(policy, num_neurons(), m, max_delay_, f32);
  store_ = make_synapse_store(widths_);
  std::visit(
      [&wide, m](auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          st.pack_targets(wide.targets);
          wide.targets.clear();
          wide.targets.shrink_to_fit();
          // The per-synapse delay column is dropped: the segment CSR IS its
          // run-length encoding. The begin column gains the m sentinel so
          // seg_syn_end_at(s) reads seg_syn_begin[s + 1].
          wide.delays.clear();
          wide.delays.shrink_to_fit();
          narrow_into(st.weights, std::move(wide.weights));
          narrow_into(st.seg_delays, std::move(wide.seg_delays));
          st.seg_syn_begin.reserve(wide.seg_syn_begin.size() + 1);
          for (const std::size_t b : wide.seg_syn_begin) {
            st.seg_syn_begin.push_back(static_cast<std::uint32_t>(b));
          }
          st.seg_syn_begin.push_back(static_cast<std::uint32_t>(m));
        } else {
          narrow_into(st.targets, std::move(wide.targets));
          narrow_into(st.weights, std::move(wide.weights));
          narrow_into(st.delays, std::move(wide.delays));
          narrow_into(st.seg_delays, std::move(wide.seg_delays));
          narrow_into(st.seg_syn_begin, std::move(wide.seg_syn_begin));
          narrow_into(st.seg_syn_end, std::move(wide.seg_syn_end));
        }
      },
      store_);
}

CompiledNetwork::CompiledNetwork(const Network& net, StoragePolicy policy) {
  const std::size_t n = net.num_neurons();
  v_reset_.resize(n);
  v_threshold_.resize(n);
  tau_.resize(n);
  for (NeuronId i = 0; i < n; ++i) {
    const NeuronParams& p = net.params(i);
    SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
                "compile: neuron " << i << " has decay τ = " << p.tau
                                   << " outside [0, 1]");
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold),
                "compile: neuron " << i << " has non-finite parameters "
                                   << "(v_reset = " << p.v_reset
                                   << ", v_threshold = " << p.v_threshold
                                   << ")");
    v_reset_[i] = p.v_reset;
    v_threshold_[i] = p.v_threshold;
    tau_[i] = p.tau;
  }

  // CSR pack in source-id order. Each row is stably sorted by delay so the
  // fan-out kernel can walk one contiguous delay run per queue lookup;
  // stability keeps equal-delay synapses in builder insertion order, which
  // the cause tie-break relies on being order-free anyway but which keeps
  // per-bucket delivery order (and hence FP summation order) bit-identical
  // to the unsorted layout.
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + net.out_synapses(i).size();
  }
  const std::size_t m = offsets_[n];
  WideSynStore wide;
  wide.targets.resize(m);
  wide.weights.resize(m);
  wide.delays.resize(m);
  pos_in_weight_.assign(n, 0);

  Delay max_delay = 0;
  std::vector<std::size_t> order;  // per-row stable sort permutation
  for (NeuronId i = 0; i < n; ++i) {
    const std::span<const Synapse> row = net.out_synapses(i);
    order.resize(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&row](std::size_t a, std::size_t b) {
                       return row[a].delay < row[b].delay;
                     });
    std::size_t k = offsets_[i];
    for (const std::size_t j : order) {
      const Synapse& s = row[j];
      SGA_REQUIRE(s.target < n, "compile: synapse "
                                    << k << " (from neuron " << i
                                    << ") targets out-of-range neuron "
                                    << s.target);
      SGA_REQUIRE(s.delay >= kMinDelay,
                  "compile: synapse " << k << " (from neuron " << i
                                      << ") has delay " << s.delay
                                      << " below minimum δ = " << kMinDelay);
      SGA_REQUIRE(std::isfinite(s.weight),
                  "compile: synapse " << k << " (from neuron " << i
                                      << ") has non-finite weight "
                                      << s.weight);
      wide.targets[k] = s.target;
      wide.weights[k] = s.weight;
      wide.delays[k] = s.delay;
      if (s.weight > 0) pos_in_weight_[s.target] += s.weight;
      max_delay = std::max(max_delay, s.delay);
      ++k;
    }
  }
  max_delay_ = max_delay;

  // Segment CSR: one (delay, begin, end) triple per delay run of each row.
  seg_offsets_.resize(n + 1);
  seg_offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    std::size_t k = offsets_[i];
    const std::size_t row_end = offsets_[i + 1];
    while (k < row_end) {
      const Delay d = wide.delays[k];
      const std::size_t run_begin = k;
      while (k < row_end && wide.delays[k] == d) ++k;
      wide.seg_delays.push_back(d);
      wide.seg_syn_begin.push_back(run_begin);
      wide.seg_syn_end.push_back(k);
    }
    seg_offsets_[i + 1] = wide.seg_delays.size();
  }

  // The builder maintains these incrementally; the packed arrays are the
  // ground truth. A mismatch means builder state was corrupted.
  SGA_CHECK(m == net.num_synapses(),
            "compile: packed " << m << " synapses but the builder counted "
                               << net.num_synapses());
  SGA_CHECK(max_delay_ == net.max_delay(),
            "compile: packed max delay " << max_delay_
                                         << " != builder max delay "
                                         << net.max_delay());

  adopt_payload(policy, std::move(wide));

  for (const std::string& name : net.group_names()) {
    const std::vector<NeuronId>& ids = net.group(name);
    for (const NeuronId id : ids) {
      SGA_REQUIRE(id < n, "compile: group '" << name
                                             << "' contains out-of-range "
                                                "neuron id "
                                             << id);
    }
    groups_.emplace(name, ids);
  }
}

void CompiledNetwork::verify_invariants() const {
  const std::size_t n = num_neurons();
  SGA_REQUIRE(v_threshold_.size() == n && tau_.size() == n &&
                  pos_in_weight_.size() == n,
              "verify: neuron SoA arrays disagree on the neuron count ("
                  << n << " resets, " << v_threshold_.size()
                  << " thresholds, " << tau_.size() << " taus, "
                  << pos_in_weight_.size() << " in-weight entries)");
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(std::isfinite(v_reset_[i]) && std::isfinite(v_threshold_[i]),
                "verify: neuron " << i << " has non-finite parameters "
                                  << "(v_reset = " << v_reset_[i]
                                  << ", v_threshold = " << v_threshold_[i]
                                  << ")");
    SGA_REQUIRE(tau_[i] >= 0.0 && tau_[i] <= 1.0,
                "verify: neuron " << i << " has decay τ = " << tau_[i]
                                  << " outside [0, 1]");
  }

  SGA_REQUIRE(offsets_.size() == n + 1 && !offsets_.empty() &&
                  offsets_[0] == 0,
              "verify: malformed CSR row pointers (" << offsets_.size()
                                                     << " entries for " << n
                                                     << " neurons)");
  const std::size_t m = offsets_[n];
  const auto [tgt_n, wgt_n, dly_n] = std::visit(
      [](const auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          // The packed layout has no per-synapse delay column; the target
          // and (implied) delay counts are both num_targets.
          return std::make_tuple(st.num_targets, st.weights.size(),
                                 st.num_targets);
        } else {
          return std::make_tuple(st.targets.size(), st.weights.size(),
                                 st.delays.size());
        }
      },
      store_);
  SGA_REQUIRE(tgt_n == m && wgt_n == m && dly_n == m,
              "verify: synapse SoA arrays disagree on the synapse count ("
                  << m << " per row pointers vs " << tgt_n << " targets, "
                  << wgt_n << " weights, " << dly_n << " delays)");

  // The width tag and the live variant alternative must agree — a tag that
  // lies about the encoding would desynchronize snapshots, io headers, and
  // the stats the trajectory keys on.
  const StorageWidths store_w =
      std::visit([](const auto& st) { return st.widths(); }, store_);
  SGA_REQUIRE(store_w == widths_,
              "verify: storage width tag claims the "
                  << encoding_name(widths_) << " encoding but the payload is "
                  << encoding_name(store_w));

  // Packed structural pre-checks (ARCHITECTURE.md §1.11): every index the
  // block decoder and the segment accessors will follow must be proven
  // in-bounds BEFORE the generic per-synapse loops below decode anything.
  std::visit(
      [m](const auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          const std::size_t nb =
              (m + kPackedBlockSize - 1) / kPackedBlockSize;
          SGA_REQUIRE(st.block_base.size() == nb &&
                          st.block_bits.size() == nb &&
                          st.block_word.size() == nb,
                      "verify: packed block tables disagree on the block "
                      "count (" << nb << " blocks for " << m
                                << " synapses vs " << st.block_base.size()
                                << " bases, " << st.block_bits.size()
                                << " bit-widths, " << st.block_word.size()
                                << " word offsets)");
          std::size_t words = 0;
          for (std::size_t j = 0; j < nb; ++j) {
            const unsigned bits = st.block_bits[j];
            SGA_REQUIRE(bits <= 32, "verify: packed block "
                                        << j << " declares " << bits
                                        << "-bit deltas (max 32)");
            SGA_REQUIRE(st.block_word[j] == words,
                        "verify: packed block "
                            << j << " claims word offset " << st.block_word[j]
                            << " but the preceding blocks occupy " << words
                            << " words");
            const std::size_t count =
                std::min(kPackedBlockSize, m - j * kPackedBlockSize);
            words += packed_block_words(count, bits);
          }
          SGA_REQUIRE(st.pack_words.size() == words,
                      "verify: packed delta array has "
                          << st.pack_words.size()
                          << " words but the block headers account for "
                          << words);
          const std::size_t segs = st.seg_delays.size();
          SGA_REQUIRE(st.seg_syn_begin.size() == segs + 1 &&
                          st.seg_syn_begin.front() == 0 &&
                          st.seg_syn_begin.back() == m,
                      "verify: packed segment begin column must hold "
                          << segs + 1
                          << " entries from 0 to the synapse sentinel " << m);
          for (std::size_t s = 0; s < segs; ++s) {
            SGA_REQUIRE(st.seg_syn_begin[s] < st.seg_syn_begin[s + 1],
                        "verify: packed segment begin column not strictly "
                        "increasing at run " << s);
          }
        }
      },
      store_);

  // Storage-width consistency: a narrow payload must be able to represent
  // every value the structural checks below will read out of it (a width
  // tag that lies about its ranges would have silently truncated).
  if (widths_.narrow) {
    SGA_REQUIRE(widths_.target_bytes != 2 || n <= (1ULL << 16),
                "verify: u16 target storage cannot address " << n
                                                             << " neurons");
    const Delay delay_cap = widths_.delay_bytes == 1 ? 255 : 65535;
    SGA_REQUIRE(max_delay_ <= delay_cap,
                "verify: stored max delay " << max_delay_
                                            << " exceeds the "
                                            << int{widths_.delay_bytes}
                                            << "-byte delay storage cap "
                                            << delay_cap);
    SGA_REQUIRE(m < (1ULL << 32),
                "verify: u32 segment bounds cannot index " << m
                                                           << " synapses");
  }

  Delay max_delay = 0;
  std::vector<SynWeight> pos_in(n, 0);
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(offsets_[i] <= offsets_[i + 1],
                "verify: CSR row pointers not monotone at neuron "
                    << i << " (" << offsets_[i] << " > " << offsets_[i + 1]
                    << ")");
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
      SGA_REQUIRE(syn_target(k) < n, "verify: synapse "
                                         << k
                                         << " targets out-of-"
                                            "range neuron "
                                         << syn_target(k));
      SGA_REQUIRE(syn_delay(k) >= kMinDelay,
                  "verify: synapse " << k << " has delay " << syn_delay(k)
                                     << " below minimum δ = " << kMinDelay);
      SGA_REQUIRE(std::isfinite(syn_weight(k)),
                  "verify: synapse " << k << " has non-finite weight "
                                     << syn_weight(k));
      if (syn_weight(k) > 0) pos_in[syn_target(k)] += syn_weight(k);
      max_delay = std::max(max_delay, syn_delay(k));
    }
  }
  SGA_REQUIRE(max_delay_ == max_delay,
              "verify: stored max delay " << max_delay_
                                          << " != payload max delay "
                                          << max_delay);
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(pos_in_weight_[i] == pos_in[i],
                "verify: positive in-weight table stale at neuron "
                    << i << " (stored " << pos_in_weight_[i]
                    << ", payload sums to " << pos_in[i] << ")");
  }

  // Segment CSR (ARCHITECTURE.md §1.6): the fan-out kernel indexes these
  // arrays unchecked, so every bound and the delay-run monotonicity the
  // horizon break relies on must hold.
  const auto [sd_n, sb_n, se_n] = std::visit(
      [](const auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          // Sentinel-terminated begin column (size checked above) doubles
          // as the end column: both bounds count seg_delays entries.
          return std::make_tuple(st.seg_delays.size(), st.seg_delays.size(),
                                 st.seg_delays.size());
        } else {
          return std::make_tuple(st.seg_delays.size(),
                                 st.seg_syn_begin.size(),
                                 st.seg_syn_end.size());
        }
      },
      store_);
  SGA_REQUIRE(seg_offsets_.size() == n + 1 && seg_offsets_[0] == 0 &&
                  seg_offsets_[n] == sd_n && sb_n == sd_n && se_n == sd_n,
              "verify: malformed segment CSR ("
                  << seg_offsets_.size() << " row pointers covering "
                  << seg_offsets_[n] << " segments vs " << sd_n
                  << " delays, " << sb_n << " begins, " << se_n << " ends)");
  for (NeuronId i = 0; i < n; ++i) {
    SGA_REQUIRE(seg_offsets_[i] <= seg_offsets_[i + 1],
                "verify: segment row pointers not monotone at neuron "
                    << i << " (" << seg_offsets_[i] << " > "
                    << seg_offsets_[i + 1] << ")");
    std::size_t expect = offsets_[i];
    Delay prev = 0;  // below kMinDelay, so the strict check covers run 0
    for (std::size_t s = seg_offsets_[i]; s < seg_offsets_[i + 1]; ++s) {
      SGA_REQUIRE(seg_syn_begin(s) == expect,
                  "verify: segment " << s << " does not tile neuron " << i
                                     << "'s row (begins at "
                                     << seg_syn_begin(s) << ", expected "
                                     << expect << ")");
      SGA_REQUIRE(seg_syn_end(s) > seg_syn_begin(s) &&
                      seg_syn_end(s) <= offsets_[i + 1],
                  "verify: segment " << s << " has bad synapse range ["
                                     << seg_syn_begin(s) << ", "
                                     << seg_syn_end(s) << ") in a row ending "
                                     << "at " << offsets_[i + 1]);
      SGA_REQUIRE(seg_delay(s) > prev,
                  "verify: delay runs not strictly increasing at segment "
                      << s << " of neuron " << i << " (" << seg_delay(s)
                      << " after " << prev << ")");
      for (std::size_t k = seg_syn_begin(s); k < seg_syn_end(s); ++k) {
        SGA_REQUIRE(syn_delay(k) == seg_delay(s),
                    "verify: synapse " << k << " (delay " << syn_delay(k)
                                       << ") disagrees with its segment " << s
                                       << " on delay " << seg_delay(s));
      }
      prev = seg_delay(s);
      expect = seg_syn_end(s);
    }
    SGA_REQUIRE(expect == offsets_[i + 1],
                "verify: segments leave a tail of neuron "
                    << i << "'s row uncovered (tiled to " << expect
                    << " of " << offsets_[i + 1] << ")");
  }

  for (const auto& [name, ids] : groups_) {
    SGA_REQUIRE(!name.empty(), "verify: empty group name");
    for (const NeuronId id : ids) {
      SGA_REQUIRE(id < n, "verify: group '" << name
                                            << "' contains out-of-range "
                                               "neuron id "
                                            << id);
    }
  }
}

void CompiledNetwork::recompute_pos_in_weight() {
  pos_in_weight_.assign(num_neurons(), 0);
  std::visit(
      [this](const auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          // One sequential decode sweep — same flat-index accumulation
          // order as the non-packed branch, so the table stays bit-exact
          // across encodings.
          std::uint32_t tmp[kPackedBlockSize];
          std::size_t k = 0;
          for (std::size_t j = 0; j < st.num_blocks(); ++j) {
            const std::size_t count = st.decode_block(j, tmp);
            for (std::size_t i = 0; i < count; ++i, ++k) {
              const auto w = static_cast<SynWeight>(st.weights[k]);
              if (w > 0) pos_in_weight_[tmp[i]] += w;
            }
          }
        } else {
          for (std::size_t k = 0; k < st.targets.size(); ++k) {
            const auto w = static_cast<SynWeight>(st.weights[k]);
            if (w > 0) {
              pos_in_weight_[static_cast<NeuronId>(st.targets[k])] += w;
            }
          }
        }
      },
      store_);
}

void CompiledNetwork::patch_weights(
    const std::vector<std::pair<std::size_t, SynWeight>>& edits) {
  const std::size_t m = num_synapses();
  const bool f32 = widths_.narrow && widths_.weight_bytes == 4;
  // All-or-nothing: every edit validated before the first store write.
  for (const auto& [k, w] : edits) {
    SGA_REQUIRE(k < m, "patch_weights: synapse index "
                           << k << " out of range (" << m << " synapses)");
    SGA_REQUIRE(std::isfinite(w), "patch_weights: synapse "
                                      << k << " assigned non-finite weight "
                                      << w);
    SGA_REQUIRE(!f32 || round_trips_f32(w),
                "patch_weights: weight "
                    << w << " for synapse " << k
                    << " does not round-trip the frozen float32 storage; "
                       "re-freeze the network to widen");
  }
  std::visit(
      [&edits](auto& st) {
        using WgtT = typename std::decay_t<decltype(st)>::WeightT;
        for (const auto& [k, w] : edits) {
          st.weights[k] = static_cast<WgtT>(w);
        }
      },
      store_);
  recompute_pos_in_weight();
  verify_invariants();
}

void CompiledNetwork::patch_delays(
    const std::vector<std::pair<std::size_t, Delay>>& edits) {
  // A delay edit re-sorts its row, which permutes the delta-packed target
  // column — that is a re-encode, not an in-place patch. Refuse before
  // touching anything (kNarrow freezes keep delay patching available).
  SGA_REQUIRE(!widths_.packed,
              "patch_delays: the packed encoding cannot be patched in "
              "place; re-freeze the network to re-encode "
              "(StoragePolicy::kNarrow keeps delay patching available)");
  const std::size_t m = num_synapses();
  const std::size_t n = num_neurons();
  const Delay cap = !widths_.narrow
                        ? std::numeric_limits<Delay>::max()
                        : (widths_.delay_bytes == 1 ? 255 : 65535);
  for (const auto& [k, d] : edits) {
    SGA_REQUIRE(k < m, "patch_delays: synapse index "
                           << k << " out of range (" << m << " synapses)");
    SGA_REQUIRE(d >= kMinDelay, "patch_delays: synapse "
                                    << k << " assigned delay " << d
                                    << " below minimum δ = " << kMinDelay);
    SGA_REQUIRE(d <= cap, "patch_delays: delay "
                              << d << " for synapse " << k
                              << " exceeds the frozen "
                              << int{widths_.delay_bytes}
                              << "-byte delay storage cap " << cap
                              << "; re-freeze the network to widen");
  }

  // Rows whose delay order (and hence segments) the edits may disturb.
  std::vector<NeuronId> rows;
  rows.reserve(edits.size());
  for (const auto& [k, d] : edits) {
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), k);
    rows.push_back(static_cast<NeuronId>(it - offsets_.begin() - 1));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  std::visit(
      [&](auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          SGA_CHECK(false, "patch_delays: packed store behind a non-packed "
                           "width tag");
          return;
        } else {
        using TgtT = typename Store::Target;
        using DlyT = typename Store::DelayT;
        using WgtT = typename Store::WeightT;
        using SegT = typename Store::SegIndex;
        for (const auto& [k, d] : edits) {
          st.delays[k] = static_cast<DlyT>(d);
        }

        // Stably re-sort each touched row by its (new) delays, carrying
        // targets and weights along — the same per-row order a fresh
        // freeze of the patched graph would pack.
        std::vector<std::size_t> order;
        std::vector<TgtT> tgt_tmp;
        std::vector<WgtT> wgt_tmp;
        std::vector<DlyT> dly_tmp;
        for (const NeuronId i : rows) {
          const std::size_t b = offsets_[i];
          const std::size_t len = offsets_[i + 1] - b;
          if (len < 2) continue;  // a one-synapse row is trivially sorted
          order.resize(len);
          std::iota(order.begin(), order.end(), std::size_t{0});
          std::stable_sort(order.begin(), order.end(),
                           [&st, b](std::size_t a, std::size_t c) {
                             return st.delays[b + a] < st.delays[b + c];
                           });
          tgt_tmp.resize(len);
          wgt_tmp.resize(len);
          dly_tmp.resize(len);
          for (std::size_t j = 0; j < len; ++j) {
            tgt_tmp[j] = st.targets[b + order[j]];
            wgt_tmp[j] = st.weights[b + order[j]];
            dly_tmp[j] = st.delays[b + order[j]];
          }
          std::copy(tgt_tmp.begin(), tgt_tmp.end(), st.targets.begin() + b);
          std::copy(wgt_tmp.begin(), wgt_tmp.end(), st.weights.begin() + b);
          std::copy(dly_tmp.begin(), dly_tmp.end(), st.delays.begin() + b);
        }

        // Rebuild the segment CSR: touched rows are re-scanned for delay
        // runs, untouched rows keep their segment triples verbatim (run
        // counts can change, so the flat arrays are re-spliced).
        std::vector<char> touched(n, 0);
        for (const NeuronId i : rows) touched[i] = 1;
        std::vector<DlyT> nsd;
        std::vector<SegT> nsb;
        std::vector<SegT> nse;
        nsd.reserve(st.seg_delays.size());
        nsb.reserve(st.seg_syn_begin.size());
        nse.reserve(st.seg_syn_end.size());
        std::vector<std::size_t> nso(n + 1, 0);
        for (NeuronId i = 0; i < n; ++i) {
          if (!touched[i]) {
            for (std::size_t s = seg_offsets_[i]; s < seg_offsets_[i + 1];
                 ++s) {
              nsd.push_back(st.seg_delays[s]);
              nsb.push_back(st.seg_syn_begin[s]);
              nse.push_back(st.seg_syn_end[s]);
            }
          } else {
            std::size_t k = offsets_[i];
            const std::size_t row_end = offsets_[i + 1];
            while (k < row_end) {
              const DlyT d = st.delays[k];
              const std::size_t run_begin = k;
              while (k < row_end && st.delays[k] == d) ++k;
              nsd.push_back(d);
              nsb.push_back(static_cast<SegT>(run_begin));
              nse.push_back(static_cast<SegT>(k));
            }
          }
          nso[i + 1] = nsd.size();
        }
        st.seg_delays = std::move(nsd);
        st.seg_syn_begin = std::move(nsb);
        st.seg_syn_end = std::move(nse);
        seg_offsets_ = std::move(nso);
        }
      },
      store_);

  // max_delay may have grown or shrunk; each row's last segment is its
  // maximum (segment delays are strictly increasing within a row).
  Delay max_delay = 0;
  for (NeuronId i = 0; i < n; ++i) {
    if (seg_offsets_[i + 1] > seg_offsets_[i]) {
      max_delay = std::max(max_delay, seg_delay(seg_offsets_[i + 1] - 1));
    }
  }
  max_delay_ = max_delay;

  // The row permutation can reorder same-target additions within a row, so
  // the in-weight table is retabulated in the new synapse order.
  recompute_pos_in_weight();
  verify_invariants();
}

CompiledNetwork CompiledNetwork::from_packed_parts(
    PackedNetworkParts&& parts) {
  const std::size_t n = parts.neurons.size();
  SGA_REQUIRE(parts.widths.narrow && parts.widths.packed &&
                  parts.widths.target_bytes == 4 &&
                  parts.widths.seg_index_bytes == 4 &&
                  (parts.widths.delay_bytes == 1 ||
                   parts.widths.delay_bytes == 2) &&
                  (parts.widths.weight_bytes == 4 ||
                   parts.widths.weight_bytes == 8),
              "packed parts: width tag does not describe a packed encoding");
  SGA_REQUIRE(parts.offsets.size() == n + 1 && parts.offsets[0] == 0 &&
                  parts.seg_offsets.size() == n + 1 &&
                  parts.seg_offsets[0] == 0,
              "packed parts: malformed row pointers for " << n << " neurons");
  const std::size_t m = parts.offsets[n];
  const std::size_t segs = parts.seg_offsets[n];
  SGA_REQUIRE(m < (1ULL << 32),
              "packed parts: u32 segment bounds cannot index " << m
                                                               << " synapses");
  SGA_REQUIRE(parts.weights.size() == m,
              "packed parts: " << parts.weights.size() << " weights for "
                               << m << " synapses");
  SGA_REQUIRE(parts.seg_delays.size() == segs,
              "packed parts: " << parts.seg_delays.size() << " run delays for "
                               << segs << " segments");
  SGA_REQUIRE(parts.seg_syn_begin.size() == segs + 1 &&
                  parts.seg_syn_begin.front() == 0 &&
                  parts.seg_syn_begin.back() == m,
              "packed parts: segment begin column must hold "
                  << segs + 1 << " entries from 0 to the synapse sentinel "
                  << m);
  for (std::size_t s = 0; s < segs; ++s) {
    SGA_REQUIRE(parts.seg_syn_begin[s] < parts.seg_syn_begin[s + 1],
                "packed parts: segment begin column not strictly increasing "
                "at run " << s);
  }

  // Block-table structure: exactly the checks that make decode_block()
  // memory-safe. A truncated delta array, a bit-width edited to 0, or any
  // extra/missing word breaks the exact word sum.
  const std::size_t nb = (m + kPackedBlockSize - 1) / kPackedBlockSize;
  SGA_REQUIRE(parts.block_base.size() == nb && parts.block_bits.size() == nb,
              "packed parts: " << nb << " blocks expected for " << m
                               << " synapses, got " << parts.block_base.size()
                               << " bases and " << parts.block_bits.size()
                               << " bit-widths");
  std::vector<std::uint32_t> block_word(nb);
  std::size_t words = 0;
  for (std::size_t j = 0; j < nb; ++j) {
    const unsigned bits = parts.block_bits[j];
    SGA_REQUIRE(bits <= 32, "packed parts: block " << j << " declares "
                                                   << bits
                                                   << "-bit deltas (max 32)");
    block_word[j] = static_cast<std::uint32_t>(words);
    const std::size_t count = std::min(kPackedBlockSize,
                                       m - j * kPackedBlockSize);
    words += packed_block_words(count, bits);
  }
  SGA_REQUIRE(parts.pack_words.size() == words,
              "packed parts: delta array has " << parts.pack_words.size()
                                               << " words but the block "
                                                  "headers account for "
                                               << words);

  // Value-range checks the claimed widths imply (a lying tag would
  // silently truncate during the narrowing move below).
  const Delay delay_cap = parts.widths.delay_bytes == 1 ? 255 : 65535;
  Delay max_delay = 0;
  for (std::size_t s = 0; s < segs; ++s) {
    const Delay d = parts.seg_delays[s];
    SGA_REQUIRE(d >= 0 && d <= delay_cap,
                "packed parts: run " << s << " delay " << d
                                     << " does not fit the declared "
                                     << int{parts.widths.delay_bytes}
                                     << "-byte delay storage");
    max_delay = std::max(max_delay, d);
  }
  if (parts.widths.weight_bytes == 4) {
    for (std::size_t k = 0; k < m; ++k) {
      SGA_REQUIRE(round_trips_f32(parts.weights[k]),
                  "packed parts: weight " << parts.weights[k]
                                          << " at synapse " << k
                                          << " does not round-trip the "
                                             "declared float32 storage");
    }
  }

  CompiledNetwork net;
  net.v_reset_.resize(n);
  net.v_threshold_.resize(n);
  net.tau_.resize(n);
  for (NeuronId i = 0; i < n; ++i) {
    net.v_reset_[i] = parts.neurons[i].v_reset;
    net.v_threshold_[i] = parts.neurons[i].v_threshold;
    net.tau_[i] = parts.neurons[i].tau;
  }
  net.offsets_ = std::move(parts.offsets);
  net.seg_offsets_ = std::move(parts.seg_offsets);
  net.widths_ = parts.widths;
  net.max_delay_ = max_delay;
  net.store_ = make_synapse_store(net.widths_);
  std::visit(
      [&parts, &block_word, m, n](auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          st.num_targets = m;
          st.block_base = std::move(parts.block_base);
          st.block_bits = std::move(parts.block_bits);
          st.block_word = std::move(block_word);
          st.pack_words = std::move(parts.pack_words);
          narrow_into(st.weights, std::move(parts.weights));
          narrow_into(st.seg_delays, std::move(parts.seg_delays));
          st.seg_syn_begin = std::move(parts.seg_syn_begin);
          // Targets are untrusted until decoded: bound every one BEFORE
          // the in-weight tabulation (or any other consumer) indexes by
          // them. Structure is already proven, so the decode cannot read
          // out of bounds — only produce out-of-range ids.
          std::uint32_t tmp[kPackedBlockSize];
          std::size_t k = 0;
          for (std::size_t j = 0; j < st.num_blocks(); ++j) {
            const std::size_t count = st.decode_block(j, tmp);
            for (std::size_t i = 0; i < count; ++i, ++k) {
              SGA_REQUIRE(tmp[i] < n,
                          "packed parts: synapse " << k
                                                   << " decodes to out-of-"
                                                      "range neuron "
                                                   << tmp[i]);
            }
          }
        }
      },
      net.store_);
  net.recompute_pos_in_weight();
  for (auto& [name, ids] : parts.groups) {
    SGA_REQUIRE(net.groups_.emplace(name, std::move(ids)).second,
                "packed parts: duplicate group '" << name << "'");
  }
  return net;
}

const std::vector<NeuronId>& CompiledNetwork::group(
    const std::string& name) const {
  const auto it = groups_.find(name);
  SGA_REQUIRE(it != groups_.end(), "unknown group: " << name);
  return it->second;
}

std::vector<std::string> CompiledNetwork::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, ids] : groups_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sga::snn
