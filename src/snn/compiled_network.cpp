#include "snn/compiled_network.h"

#include <algorithm>
#include <span>

#include "snn/network.h"

namespace sga::snn {

CompiledNetwork::CompiledNetwork(const Network& net) {
  const std::size_t n = net.num_neurons();
  v_reset_.resize(n);
  v_threshold_.resize(n);
  tau_.resize(n);
  for (NeuronId i = 0; i < n; ++i) {
    const NeuronParams& p = net.params(i);
    SGA_REQUIRE(p.tau >= 0.0 && p.tau <= 1.0,
                "compile: neuron " << i << " has decay τ = " << p.tau
                                   << " outside [0, 1]");
    v_reset_[i] = p.v_reset;
    v_threshold_[i] = p.v_threshold;
    tau_[i] = p.tau;
  }

  // CSR pack in source-id order. Each row is stably sorted by delay so the
  // fan-out kernel can walk one contiguous delay run per queue lookup;
  // stability keeps equal-delay synapses in builder insertion order, which
  // the cause tie-break relies on being order-free anyway but which keeps
  // per-bucket delivery order (and hence FP summation order) bit-identical
  // to the unsorted layout.
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + net.out_synapses(i).size();
  }
  const std::size_t m = offsets_[n];
  targets_.resize(m);
  weights_.resize(m);
  delays_.resize(m);
  pos_in_weight_.assign(n, 0);

  Delay max_delay = 0;
  std::vector<std::size_t> order;  // per-row stable sort permutation
  for (NeuronId i = 0; i < n; ++i) {
    const std::span<const Synapse> row = net.out_synapses(i);
    order.resize(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&row](std::size_t a, std::size_t b) {
                       return row[a].delay < row[b].delay;
                     });
    std::size_t k = offsets_[i];
    for (const std::size_t j : order) {
      const Synapse& s = row[j];
      SGA_REQUIRE(s.target < n, "compile: synapse "
                                    << k << " (from neuron " << i
                                    << ") targets out-of-range neuron "
                                    << s.target);
      SGA_REQUIRE(s.delay >= kMinDelay,
                  "compile: synapse " << k << " (from neuron " << i
                                      << ") has delay " << s.delay
                                      << " below minimum δ = " << kMinDelay);
      targets_[k] = s.target;
      weights_[k] = s.weight;
      delays_[k] = s.delay;
      if (s.weight > 0) pos_in_weight_[s.target] += s.weight;
      max_delay = std::max(max_delay, s.delay);
      ++k;
    }
  }
  max_delay_ = max_delay;

  // Segment CSR: one (delay, begin, end) triple per delay run of each row.
  seg_offsets_.resize(n + 1);
  seg_offsets_[0] = 0;
  for (NeuronId i = 0; i < n; ++i) {
    std::size_t k = offsets_[i];
    const std::size_t row_end = offsets_[i + 1];
    while (k < row_end) {
      const Delay d = delays_[k];
      const std::size_t run_begin = k;
      while (k < row_end && delays_[k] == d) ++k;
      seg_delays_.push_back(d);
      seg_syn_begin_.push_back(run_begin);
      seg_syn_end_.push_back(k);
    }
    seg_offsets_[i + 1] = seg_delays_.size();
  }

  // The builder maintains these incrementally; the packed arrays are the
  // ground truth. A mismatch means builder state was corrupted.
  SGA_CHECK(m == net.num_synapses(),
            "compile: packed " << m << " synapses but the builder counted "
                               << net.num_synapses());
  SGA_CHECK(max_delay_ == net.max_delay(),
            "compile: packed max delay " << max_delay_
                                         << " != builder max delay "
                                         << net.max_delay());

  for (const std::string& name : net.group_names()) {
    const std::vector<NeuronId>& ids = net.group(name);
    for (const NeuronId id : ids) {
      SGA_REQUIRE(id < n, "compile: group '" << name
                                             << "' contains out-of-range "
                                                "neuron id "
                                             << id);
    }
    groups_.emplace(name, ids);
  }
}

const std::vector<NeuronId>& CompiledNetwork::group(
    const std::string& name) const {
  const auto it = groups_.find(name);
  SGA_REQUIRE(it != groups_.end(), "unknown group: " << name);
  return it->second;
}

std::vector<std::string> CompiledNetwork::group_names() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, ids] : groups_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sga::snn
