// Spike observability: ASCII raster plots and CSV dumps of spike logs —
// the debugging surface for circuit and algorithm development.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"
#include "snn/simulator.h"

namespace sga::snn {

/// ASCII raster: one row per listed neuron, one column per time step in
/// [t0, t1]; '|' marks a spike, '.' silence. Labels default to neuron ids.
/// Requires the simulation to have run with record_spike_log (optionally
/// restricted to watched neurons covering `ids`).
void write_spike_raster(std::ostream& os, const Simulator& sim,
                        const std::vector<NeuronId>& ids, Time t0, Time t1,
                        const std::vector<std::string>& labels = {});

/// CSV: "time,neuron" rows of the (filtered) spike log.
void write_spike_csv(std::ostream& os, const Simulator& sim);

}  // namespace sga::snn
