// Neuron partitioning for the sharded conservative-parallel simulator
// (ARCHITECTURE.md §1.5, §1.10).
//
// A Partition assigns every neuron of a CompiledNetwork to exactly one of S
// shards. Two partitioners are available (PartitionKind):
//
//   * kLpt — degree-balanced greedy: neurons are taken in order of
//     decreasing work weight (1 + out-degree, the per-fire cost model) and
//     each is placed on the currently lightest shard, ties broken by lowest
//     shard index. Balances load but is blind to edges, so it maximizes
//     cross-shard traffic on anything with locality. Kept as the oracle.
//
//   * kCutRefined — the LPT result refined by deterministic greedy label
//     propagation (KL-style single-neuron moves, bounded passes in neuron
//     id order). The objective is lexicographic: never decrease the
//     partition's minimum cross-shard delay (that delay IS the conservative
//     lookahead window δ, so shrinking it would slow every shard), and
//     subject to that, minimize the cut weight Σ 1/delay over cross-shard
//     synapses — small-delay cross edges are the δ killers and mailbox hot
//     spots, so they are weighed heaviest. Moves must also respect the LPT
//     balance cap (below), so the refined partition keeps the same balance
//     bound. A move is accepted only with strictly positive cut gain, so
//     refinement terminates and the refined cut never exceeds the seed's.
//
// Every tie anywhere is broken by neuron id / shard index, so both kinds
// are pure functions of (network, S) — two processes that compile the same
// network partition it identically, which is what makes the parallel
// engine's event order reproducible.
//
// Balance bound (property-tested in tests/test_partition.cpp): when a
// neuron is placed by LPT, the lightest shard carries at most total/S, so
// every shard load is ≤ total/S + w_max where w_max is the largest single
// neuron weight. kCutRefined moves are capped by the same bound, so it
// holds for both kinds. Partition over S = 1 is the identity assignment.
//
// ShardSplit is the shard-aware CSR split the parallel simulator runs on:
// for each shard, every member neuron's out-synapses are re-packed into two
// contiguous CSR families —
//   * intra-shard: target expressed as a LOCAL index into the same shard
//     (delivered through the shard's own calendar queue, no communication),
//   * cross-shard: target expressed as (destination shard, local index)
//     (delivered through the window-barrier mailboxes).
// The split also computes min_cross_delay, the conservative lookahead δ:
// no spike fired at time t can arrive at another shard before t + δ, so
// all shards may advance δ time steps between barriers without ever
// receiving a message from the past (Definition 1 guarantees δ ≥ 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sga::snn {

class CompiledNetwork;

enum class PartitionKind : std::uint8_t {
  kLpt,         ///< degree-balanced greedy, edge-blind (the oracle)
  kCutRefined,  ///< LPT seed + deterministic cut-minimizing refinement
};

struct Partition {
  std::size_t num_shards = 0;
  PartitionKind kind = PartitionKind::kLpt;
  /// neuron id -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// neuron id -> index within its shard's local arrays.
  std::vector<NeuronId> local_index;
  /// shard -> member neuron ids, ascending (local_index order).
  std::vector<std::vector<NeuronId>> shard_neurons;
  /// shard -> Σ (1 + out_degree) over members (the balance metric).
  std::vector<std::uint64_t> shard_load;

  /// Refinement telemetry (kCutRefined only; empty for kLpt): entry 0
  /// describes the LPT seed, entry i the partition after refinement pass i.
  /// min-cross-delay uses 0 for "no cross synapses" (infinite lookahead).
  /// Property-tested: pass_cut_weight is non-increasing and
  /// pass_min_cross_delay non-decreasing (0 ordered above every delay).
  std::vector<Delay> pass_min_cross_delay;
  std::vector<double> pass_cut_weight;

  std::size_t num_neurons() const { return shard_of.size(); }
};

/// Deterministic partition of `net` into `num_shards` ≥ 1 shards (shards
/// may be empty when S > n). See the file comment for the two kinds.
Partition make_partition(const CompiledNetwork& net, std::size_t num_shards,
                         PartitionKind kind = PartitionKind::kLpt);

/// The refinement objective: Σ 1/delay over cross-shard synapses of `p`
/// (self-loops can never be cross). Lower is better; 0 when none exist.
double partition_cut_weight(const CompiledNetwork& net, const Partition& p);

/// Smallest delay on any cross-shard synapse of `p` — the conservative
/// lookahead δ the parallel engine gets. 0 when no cross synapse exists.
Delay partition_min_cross_delay(const CompiledNetwork& net,
                                const Partition& p);

/// One shard's re-packed out-synapses (see file comment). All arrays are
/// indexed per-shard: neuron k of the shard is global id `global_ids[k]`,
/// its intra-shard synapses are intra_* [intra_offsets[k], intra_offsets[k+1])
/// and its cross-shard synapses cross_* [cross_offsets[k], cross_offsets[k+1]).
///
/// Segmented layout (ARCHITECTURE.md §1.6): both families inherit the
/// CompiledNetwork's delay-sorted row order, the cross family additionally
/// stably re-sorted by destination shard — so a neuron's intra row is one
/// ascending sequence of delay runs and its cross row one sequence of
/// (shard, delay) runs. The *_seg_* arrays record those runs CSR-style
/// (offsets indexed by local neuron), letting the shard's fire() do one
/// queue lookup — or one mailbox-slab append — per run instead of per
/// synapse.
struct ShardCsr {
  std::vector<NeuronId> global_ids;

  std::vector<std::size_t> intra_offsets;  ///< local_n + 1 entries
  std::vector<NeuronId> intra_target;      ///< LOCAL index in this shard
  std::vector<SynWeight> intra_weight;
  std::vector<Delay> intra_delay;

  std::vector<std::size_t> cross_offsets;  ///< local_n + 1 entries
  std::vector<std::uint32_t> cross_shard;  ///< destination shard
  std::vector<NeuronId> cross_local;       ///< local index in that shard
  std::vector<SynWeight> cross_weight;
  std::vector<Delay> cross_delay;

  // Intra delay runs: segment s covers intra synapses
  // [intra_seg_begin[s], intra_seg_end[s]), all with delay
  // intra_seg_delay[s]; per neuron the delays are strictly increasing.
  std::vector<std::size_t> intra_seg_offsets;  ///< local_n + 1 entries
  std::vector<Delay> intra_seg_delay;
  std::vector<std::size_t> intra_seg_begin;
  std::vector<std::size_t> intra_seg_end;

  // Cross (shard, delay) runs: segment s covers cross synapses
  // [cross_seg_begin[s], cross_seg_end[s]), all bound for shard
  // cross_seg_shard[s] with delay cross_seg_delay[s]; per neuron the
  // (shard, delay) pairs are strictly increasing lexicographically.
  std::vector<std::size_t> cross_seg_offsets;  ///< local_n + 1 entries
  std::vector<std::uint32_t> cross_seg_shard;
  std::vector<Delay> cross_seg_delay;
  std::vector<std::size_t> cross_seg_begin;
  std::vector<std::size_t> cross_seg_end;

  std::size_t num_neurons() const { return global_ids.size(); }
};

/// The full shard-aware CSR split of one CompiledNetwork under one
/// Partition. Produced by CompiledNetwork::shard_split().
struct ShardSplit {
  Partition partition;
  std::vector<ShardCsr> shards;
  /// Smallest delay of any cross-shard synapse — the conservative
  /// lookahead window δ. 0 when there are no cross-shard synapses
  /// (shards are then fully independent).
  Delay min_cross_delay = 0;
  std::size_t num_cross_synapses = 0;
};

}  // namespace sga::snn
