// Neuron partitioning for the sharded conservative-parallel simulator
// (ARCHITECTURE.md §1.5).
//
// A Partition assigns every neuron of a CompiledNetwork to exactly one of S
// shards. The partitioner is a degree-balanced greedy (LPT): neurons are
// taken in order of decreasing work weight (1 + out-degree, the per-fire
// cost model) and each is placed on the currently lightest shard, ties
// broken by lowest shard index. Every tie in the ordering is broken by
// neuron id, so the result is a pure function of (network, S) — two
// processes that compile the same network partition it identically, which
// is what makes the parallel engine's event order reproducible.
//
// Balance bound (property-tested in tests/test_partition.cpp): when a
// neuron is placed, the lightest shard carries at most total/S, so every
// shard load is ≤ total/S + w_max where w_max is the largest single neuron
// weight. partition over S = 1 is the identity assignment.
//
// ShardSplit is the shard-aware CSR split the parallel simulator runs on:
// for each shard, every member neuron's out-synapses are re-packed into two
// contiguous CSR families —
//   * intra-shard: target expressed as a LOCAL index into the same shard
//     (delivered through the shard's own calendar queue, no communication),
//   * cross-shard: target expressed as (destination shard, local index)
//     (delivered through the window-barrier mailboxes).
// The split also computes min_cross_delay, the conservative lookahead δ:
// no spike fired at time t can arrive at another shard before t + δ, so
// all shards may advance δ time steps between barriers without ever
// receiving a message from the past (Definition 1 guarantees δ ≥ 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sga::snn {

class CompiledNetwork;

struct Partition {
  std::size_t num_shards = 0;
  /// neuron id -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// neuron id -> index within its shard's local arrays.
  std::vector<NeuronId> local_index;
  /// shard -> member neuron ids, ascending (local_index order).
  std::vector<std::vector<NeuronId>> shard_neurons;
  /// shard -> Σ (1 + out_degree) over members (the balance metric).
  std::vector<std::uint64_t> shard_load;

  std::size_t num_neurons() const { return shard_of.size(); }
};

/// Deterministic degree-balanced greedy partition of `net` into
/// `num_shards` ≥ 1 shards (shards may be empty when S > n).
Partition make_partition(const CompiledNetwork& net, std::size_t num_shards);

/// One shard's re-packed out-synapses (see file comment). All arrays are
/// indexed per-shard: neuron k of the shard is global id `global_ids[k]`,
/// its intra-shard synapses are intra_* [intra_offsets[k], intra_offsets[k+1])
/// and its cross-shard synapses cross_* [cross_offsets[k], cross_offsets[k+1]).
///
/// Segmented layout (ARCHITECTURE.md §1.6): both families inherit the
/// CompiledNetwork's delay-sorted row order, the cross family additionally
/// stably re-sorted by destination shard — so a neuron's intra row is one
/// ascending sequence of delay runs and its cross row one sequence of
/// (shard, delay) runs. The *_seg_* arrays record those runs CSR-style
/// (offsets indexed by local neuron), letting the shard's fire() do one
/// queue lookup — or one mailbox-slab append — per run instead of per
/// synapse.
struct ShardCsr {
  std::vector<NeuronId> global_ids;

  std::vector<std::size_t> intra_offsets;  ///< local_n + 1 entries
  std::vector<NeuronId> intra_target;      ///< LOCAL index in this shard
  std::vector<SynWeight> intra_weight;
  std::vector<Delay> intra_delay;

  std::vector<std::size_t> cross_offsets;  ///< local_n + 1 entries
  std::vector<std::uint32_t> cross_shard;  ///< destination shard
  std::vector<NeuronId> cross_local;       ///< local index in that shard
  std::vector<SynWeight> cross_weight;
  std::vector<Delay> cross_delay;

  // Intra delay runs: segment s covers intra synapses
  // [intra_seg_begin[s], intra_seg_end[s]), all with delay
  // intra_seg_delay[s]; per neuron the delays are strictly increasing.
  std::vector<std::size_t> intra_seg_offsets;  ///< local_n + 1 entries
  std::vector<Delay> intra_seg_delay;
  std::vector<std::size_t> intra_seg_begin;
  std::vector<std::size_t> intra_seg_end;

  // Cross (shard, delay) runs: segment s covers cross synapses
  // [cross_seg_begin[s], cross_seg_end[s]), all bound for shard
  // cross_seg_shard[s] with delay cross_seg_delay[s]; per neuron the
  // (shard, delay) pairs are strictly increasing lexicographically.
  std::vector<std::size_t> cross_seg_offsets;  ///< local_n + 1 entries
  std::vector<std::uint32_t> cross_seg_shard;
  std::vector<Delay> cross_seg_delay;
  std::vector<std::size_t> cross_seg_begin;
  std::vector<std::size_t> cross_seg_end;

  std::size_t num_neurons() const { return global_ids.size(); }
};

/// The full shard-aware CSR split of one CompiledNetwork under one
/// Partition. Produced by CompiledNetwork::shard_split().
struct ShardSplit {
  Partition partition;
  std::vector<ShardCsr> shards;
  /// Smallest delay of any cross-shard synapse — the conservative
  /// lookahead window δ. 0 when there are no cross-shard synapses
  /// (shards are then fully independent).
  Delay min_cross_delay = 0;
  std::size_t num_cross_synapses = 0;
};

}  // namespace sga::snn
