#include "snn/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>

#include "snn/compiled_network.h"

namespace sga::snn {
namespace {

// The stream is little-endian by definition (docs/PERSISTENCE.md). We
// compose/decompose bytes explicitly so the format is identical on any
// host endianness.

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Open a framed section: writes the section header with a length
  /// placeholder, returns the patch position.
  std::size_t begin_section(std::uint16_t id) {
    u16(id);
    u16(0);  // reserved
    const std::size_t at = bytes_.size();
    u64(0);  // payload length, patched by end_section
    return at;
  }
  void end_section(std::size_t at) {
    const std::uint64_t len = bytes_.size() - (at + 8);
    for (int i = 0; i < 8; ++i) {
      bytes_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
  }

  std::vector<std::uint8_t> finish() {
    const std::uint32_t crc = snapshot_crc32(bytes_.data(), bytes_.size());
    u32(crc);
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size, std::string section)
      : data_(data), size_(size), section_(std::move(section)) {}

  void set_section(std::string s) { section_ = std::move(s); }
  const std::string& section() const { return section_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Guard a count field before allocating: each counted element occupies
  /// at least `elem_bytes` in the remaining payload, so a hostile count
  /// cannot force a huge allocation.
  std::uint64_t count(std::uint64_t elem_bytes) {
    const std::uint64_t c = u64();
    if (elem_bytes > 0 && c > remaining() / elem_bytes) {
      throw SnapshotError(section_, "count " + std::to_string(c) +
                                        " exceeds remaining payload");
    }
    return c;
  }

  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw SnapshotError(section_, "truncated stream (need " +
                                        std::to_string(n) + " bytes at offset " +
                                        std::to_string(pos_) + ")");
    }
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string section_;
};

const char* section_name(std::uint16_t id) {
  switch (id) {
    case kSecFingerprint:
      return "fingerprint";
    case kSecConfig:
      return "config";
    case kSecNeuron:
      return "neuron";
    case kSecQueue:
      return "queue";
    case kSecLog:
      return "log";
    case kSecStats:
      return "stats";
    default:
      return "unknown";
  }
}

void write_stats(Writer& w, const SimStats& s) {
  w.u64(s.spikes);
  w.u64(s.deliveries);
  w.u64(s.event_times);
  w.i64(s.end_time);
  w.i64(s.execution_time);
  w.u8(s.hit_terminal ? 1 : 0);
  w.u8(s.hit_time_limit ? 1 : 0);
  w.u8(s.paused ? 1 : 0);
  w.u8(0);  // pad
  w.u64(s.peak_queue_events);
  w.u64(s.max_bucket_occupancy);
  w.u64(s.overflow_spills);
  w.u64(s.empty_bucket_scans);
  w.u32(s.ring_buckets);
  w.u64(s.fanout_segments);
  w.u64(s.bulk_appends);
  w.u64(s.pool_hits);
  w.u64(s.pool_misses);
  w.u64(s.csr_bytes);
}

SimStats read_stats(Reader& r) {
  SimStats s;
  s.spikes = r.u64();
  s.deliveries = r.u64();
  s.event_times = r.u64();
  s.end_time = r.i64();
  s.execution_time = r.i64();
  s.hit_terminal = r.u8() != 0;
  s.hit_time_limit = r.u8() != 0;
  s.paused = r.u8() != 0;
  r.u8();  // pad
  s.peak_queue_events = r.u64();
  s.max_bucket_occupancy = r.u64();
  s.overflow_spills = r.u64();
  s.empty_bucket_scans = r.u64();
  s.ring_buckets = r.u32();
  s.fanout_segments = r.u64();
  s.bulk_appends = r.u64();
  s.pool_hits = r.u64();
  s.pool_misses = r.u64();
  s.csr_bytes = r.u64();
  return s;
}

}  // namespace

std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize_snapshot(const SnapshotImage& img) {
  Writer w;
  // Header.
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  std::uint16_t flags = 0;
  if (img.mid_run) flags |= kFlagMidRun;
  if (img.record_causes) flags |= kFlagRecordCauses;
  if (img.record_log) flags |= kFlagRecordLog;
  if (img.watch_all) flags |= kFlagWatchAll;
  if (img.terminal_fired) flags |= kFlagTerminalFired;
  w.u16(flags);

  // FINGERPRINT.
  std::size_t at = w.begin_section(kSecFingerprint);
  w.u64(img.num_neurons);
  w.u64(img.num_synapses);
  w.i64(img.max_delay);
  w.u8(img.widths.narrow ? 1 : 0);
  w.u8(img.widths.target_bytes);
  w.u8(img.widths.delay_bytes);
  w.u8(img.widths.weight_bytes);
  w.u8(img.widths.seg_index_bytes);
  // Storage encoding flag (0 = flat, 1 = packed). Occupies the first of
  // the three pad bytes version 1 always carried, so pre-packed streams —
  // which wrote 0 here — parse as flat with no version bump.
  w.u8(img.widths.packed ? 1 : 0);
  w.u8(0);
  w.u8(0);  // pad to 32 bytes
  w.end_section(at);

  // CONFIG.
  at = w.begin_section(kSecConfig);
  w.i64(img.max_time);
  w.i64(img.resume_floor);
  w.u64(img.terminals_remaining);
  w.u64(img.terminals.size());
  w.u64(img.watched.size());
  for (const NeuronId id : img.terminals) w.u32(id);
  for (const NeuronId id : img.watched) w.u32(id);
  w.end_section(at);

  // NEURON.
  at = w.begin_section(kSecNeuron);
  w.u64(img.neurons.size());
  for (const SnapshotNeuron& n : img.neurons) {
    w.u32(n.id);
    w.f64(n.v);
    w.i64(n.last_update);
    w.i64(n.first_spike);
    w.i64(n.last_spike);
    w.u32(n.spike_count);
    w.u32(n.cause);
  }
  w.end_section(at);

  // QUEUE.
  at = w.begin_section(kSecQueue);
  w.u64(img.queue.size());
  for (const SnapshotBucket& b : img.queue) {
    w.i64(b.time);
    w.u64(b.forced.size());
    w.u64(b.deliveries.size());
    for (const NeuronId id : b.forced) w.u32(id);
    for (const SnapshotDelivery& d : b.deliveries) {
      w.u32(d.target);
      w.f64(d.weight);
    }
    if (img.record_causes) {
      for (const SnapshotDelivery& d : b.deliveries) w.u32(d.source);
    }
  }
  w.end_section(at);

  // LOG.
  at = w.begin_section(kSecLog);
  w.u64(img.log.size());
  for (const auto& [t, id] : img.log) {
    w.i64(t);
    w.u32(id);
  }
  w.end_section(at);

  // STATS.
  at = w.begin_section(kSecStats);
  write_stats(w, img.stats);
  w.end_section(at);

  return w.finish();
}

SnapshotImage parse_snapshot(const std::uint8_t* data, std::size_t size) {
  if (size < 12) {
    throw SnapshotError("header", "stream too short (" + std::to_string(size) +
                                      " bytes)");
  }
  Reader r(data, size, "header");
  const std::uint32_t magic = r.u32();
  if (magic != kSnapshotMagic) {
    throw SnapshotError("header", "bad magic (not an SGAS snapshot stream)");
  }
  const std::uint16_t version = r.u16();
  if (version != kSnapshotVersion) {
    throw SnapshotError("header",
                        "unsupported snapshot version " +
                            std::to_string(version) + " (reader supports " +
                            std::to_string(kSnapshotVersion) + ")");
  }
  // Integrity before structure: the trailing CRC-32 covers everything
  // before it, so corruption anywhere surfaces as one typed error.
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[size - 4]) |
      (static_cast<std::uint32_t>(data[size - 3]) << 8) |
      (static_cast<std::uint32_t>(data[size - 2]) << 16) |
      (static_cast<std::uint32_t>(data[size - 1]) << 24);
  if (snapshot_crc32(data, size - 4) != stored_crc) {
    throw SnapshotError("crc", "CRC-32 mismatch (corrupt or truncated stream)");
  }

  const std::uint16_t flags = r.u16();
  SnapshotImage img;
  img.mid_run = (flags & kFlagMidRun) != 0;
  img.record_causes = (flags & kFlagRecordCauses) != 0;
  img.record_log = (flags & kFlagRecordLog) != 0;
  img.watch_all = (flags & kFlagWatchAll) != 0;
  img.terminal_fired = (flags & kFlagTerminalFired) != 0;

  // Sections: all six required, in order, each once.
  const std::uint16_t expected[] = {kSecFingerprint, kSecConfig, kSecNeuron,
                                    kSecQueue,       kSecLog,    kSecStats};
  Reader body(data, size - 4, "section");
  // Skip the header we already consumed.
  for (std::size_t i = 0; i < 8; ++i) body.u8();
  for (const std::uint16_t want : expected) {
    body.set_section("section");
    const std::uint16_t id = body.u16();
    if (id != want) {
      throw SnapshotError(section_name(want),
                          std::string("expected section '") +
                              section_name(want) + "' but found id " +
                              std::to_string(id));
    }
    body.u16();  // reserved
    const std::uint64_t len = body.u64();
    body.set_section(section_name(id));
    if (len > body.remaining()) {
      throw SnapshotError(body.section(),
                          "section length " + std::to_string(len) +
                              " exceeds stream (" +
                              std::to_string(body.remaining()) + " left)");
    }
    const std::size_t payload_end = body.pos() + static_cast<std::size_t>(len);

    switch (id) {
      case kSecFingerprint: {
        img.num_neurons = body.u64();
        img.num_synapses = body.u64();
        img.max_delay = body.i64();
        img.widths.narrow = body.u8() != 0;
        img.widths.target_bytes = body.u8();
        img.widths.delay_bytes = body.u8();
        img.widths.weight_bytes = body.u8();
        img.widths.seg_index_bytes = body.u8();
        img.widths.packed = body.u8() != 0;  // pad byte pre-§1.11, so 0
        body.u8();
        body.u8();
        break;
      }
      case kSecConfig: {
        img.max_time = body.i64();
        img.resume_floor = body.i64();
        img.terminals_remaining = body.u64();
        const std::uint64_t nterm = body.count(4);
        const std::uint64_t nwatch = body.count(4);
        img.terminals.reserve(nterm);
        for (std::uint64_t i = 0; i < nterm; ++i)
          img.terminals.push_back(body.u32());
        img.watched.reserve(nwatch);
        for (std::uint64_t i = 0; i < nwatch; ++i)
          img.watched.push_back(body.u32());
        break;
      }
      case kSecNeuron: {
        const std::uint64_t n = body.count(40);
        img.neurons.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          SnapshotNeuron e;
          e.id = body.u32();
          e.v = body.f64();
          e.last_update = body.i64();
          e.first_spike = body.i64();
          e.last_spike = body.i64();
          e.spike_count = body.u32();
          e.cause = body.u32();
          img.neurons.push_back(e);
        }
        break;
      }
      case kSecQueue: {
        const std::uint64_t nb = body.count(24);
        img.queue.reserve(nb);
        for (std::uint64_t i = 0; i < nb; ++i) {
          SnapshotBucket b;
          b.time = body.i64();
          const std::uint64_t nforced = body.count(4);
          const std::uint64_t ndeliv = body.count(12);
          b.forced.reserve(nforced);
          for (std::uint64_t k = 0; k < nforced; ++k)
            b.forced.push_back(body.u32());
          b.deliveries.resize(ndeliv);
          for (std::uint64_t k = 0; k < ndeliv; ++k) {
            b.deliveries[k].target = body.u32();
            b.deliveries[k].weight = body.f64();
          }
          if (img.record_causes) {
            for (std::uint64_t k = 0; k < ndeliv; ++k)
              b.deliveries[k].source = body.u32();
          }
          img.queue.push_back(std::move(b));
        }
        break;
      }
      case kSecLog: {
        const std::uint64_t n = body.count(12);
        img.log.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          const Time t = body.i64();
          const NeuronId id2 = body.u32();
          img.log.emplace_back(t, id2);
        }
        break;
      }
      case kSecStats: {
        img.stats = read_stats(body);
        break;
      }
      default:
        break;  // unreachable: id == want
    }

    if (body.pos() != payload_end) {
      throw SnapshotError(body.section(),
                          "section payload length mismatch (declared " +
                              std::to_string(len) + ", consumed " +
                              std::to_string(body.pos() +
                                             static_cast<std::size_t>(len) -
                                             payload_end) +
                              ")");
    }
  }
  if (!body.done()) {
    throw SnapshotError("header", "trailing bytes after last section");
  }
  return img;
}

void validate_snapshot_for(const SnapshotImage& img,
                           const CompiledNetwork& net) {
  // Fingerprint: the image must have been taken on THIS frozen artifact —
  // same shape, same storage widths, and same storage encoding (a kWide vs
  // kAuto freeze of the same network is a different artifact; so is a
  // packed vs narrow one — its simulators observe different counter
  // baselines, so we refuse rather than half-match). Typed ctor so callers
  // can catch SnapshotError::kFingerprint without string-matching.
  if (img.num_neurons != net.num_neurons() ||
      img.num_synapses != net.num_synapses() ||
      img.max_delay != net.max_delay() ||
      !(img.widths == net.storage_widths())) {
    throw SnapshotError(
        SnapshotError::kFingerprint,
        "snapshot was taken on a different network (snapshot: n=" +
            std::to_string(img.num_neurons) + " m=" +
            std::to_string(img.num_synapses) + " max_delay=" +
            std::to_string(img.max_delay) + " encoding=" +
            std::string(encoding_name(img.widths)) + ", live: n=" +
            std::to_string(net.num_neurons()) + " m=" +
            std::to_string(net.num_synapses()) + " max_delay=" +
            std::to_string(net.max_delay()) + " encoding=" +
            std::string(encoding_name(net.storage_widths())) +
            "; storage widths and encoding must match)");
  }
  const std::uint64_t n = img.num_neurons;

  if (img.max_time < 0) {
    throw SnapshotError("config", "negative max_time");
  }
  if (img.resume_floor < 0) {
    throw SnapshotError("config", "negative resume floor");
  }
  for (const NeuronId id : img.terminals) {
    if (id >= n)
      throw SnapshotError("config", "terminal id " + std::to_string(id) +
                                        " out of range (n=" +
                                        std::to_string(n) + ")");
  }
  for (const NeuronId id : img.watched) {
    if (id >= n)
      throw SnapshotError("config", "watched id " + std::to_string(id) +
                                        " out of range (n=" +
                                        std::to_string(n) + ")");
  }

  NeuronId prev_id = 0;
  bool first = true;
  for (const SnapshotNeuron& e : img.neurons) {
    if (e.id >= n)
      throw SnapshotError("neuron", "neuron id " + std::to_string(e.id) +
                                        " out of range (n=" +
                                        std::to_string(n) + ")");
    if (!first && e.id <= prev_id)
      throw SnapshotError("neuron", "neuron entries not sorted by id");
    prev_id = e.id;
    first = false;
    if (e.last_update < 0)
      throw SnapshotError("neuron", "negative last_update for neuron " +
                                        std::to_string(e.id));
    if (e.first_spike != kNever &&
        (e.first_spike < 0 || e.first_spike > kNever))
      throw SnapshotError("neuron", "first_spike out of range for neuron " +
                                        std::to_string(e.id));
    if (e.cause != kNoNeuron && e.cause >= n)
      throw SnapshotError("neuron", "cause id " + std::to_string(e.cause) +
                                        " out of range for neuron " +
                                        std::to_string(e.id));
  }

  Time prev_t = -1;
  for (const SnapshotBucket& b : img.queue) {
    if (b.time < 0 || b.time > kNever)
      throw SnapshotError("queue",
                          "bucket time " + std::to_string(b.time) +
                              " outside [0, kNever]");
    if (b.time <= prev_t)
      throw SnapshotError("queue", "bucket times not strictly ascending");
    prev_t = b.time;
    if (b.time < img.resume_floor)
      throw SnapshotError("queue",
                          "bucket at t=" + std::to_string(b.time) +
                              " below the resume floor " +
                              std::to_string(img.resume_floor));
    for (const NeuronId id : b.forced) {
      if (id >= n)
        throw SnapshotError("queue", "forced spike id " + std::to_string(id) +
                                         " out of range");
    }
    for (const SnapshotDelivery& d : b.deliveries) {
      if (d.target >= n)
        throw SnapshotError("queue", "delivery target " +
                                         std::to_string(d.target) +
                                         " out of range");
      if (d.source != kNoNeuron && d.source >= n)
        throw SnapshotError("queue", "delivery source " +
                                         std::to_string(d.source) +
                                         " out of range");
    }
  }

  prev_t = std::numeric_limits<Time>::min();
  for (const auto& [t, id] : img.log) {
    if (id >= n)
      throw SnapshotError("log",
                          "spike-log id " + std::to_string(id) +
                              " out of range (n=" + std::to_string(n) + ")");
    if (t < 0 || t > kNever)
      throw SnapshotError("log", "spike-log time " + std::to_string(t) +
                                     " outside [0, kNever]");
  }
}

std::vector<std::uint8_t> SpikeJournal::serialize() const {
  Writer w;
  w.u32(kJournalMagic);
  w.u16(kJournalVersion);
  w.u16(0);  // reserved
  w.u64(entries_.size());
  for (const auto& [id, t] : entries_) {
    w.u32(id);
    w.i64(t);
  }
  return w.finish();
}

SpikeJournal SpikeJournal::deserialize(const std::uint8_t* data,
                                       std::size_t size) {
  if (size < 20) {
    throw SnapshotError("journal", "stream too short (" +
                                       std::to_string(size) + " bytes)");
  }
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[size - 4]) |
      (static_cast<std::uint32_t>(data[size - 3]) << 8) |
      (static_cast<std::uint32_t>(data[size - 2]) << 16) |
      (static_cast<std::uint32_t>(data[size - 1]) << 24);
  Reader r(data, size - 4, "journal");
  const std::uint32_t magic = r.u32();
  if (magic != kJournalMagic) {
    throw SnapshotError("journal", "bad magic (not an SGAJ journal stream)");
  }
  const std::uint16_t version = r.u16();
  if (version != kJournalVersion) {
    throw SnapshotError("journal",
                        "unsupported journal version " +
                            std::to_string(version) + " (reader supports " +
                            std::to_string(kJournalVersion) + ")");
  }
  if (snapshot_crc32(data, size - 4) != stored_crc) {
    throw SnapshotError("journal", "CRC-32 mismatch (corrupt stream)");
  }
  r.u16();  // reserved
  const std::uint64_t count = r.count(12);
  SpikeJournal j;
  j.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const NeuronId id = r.u32();
    const Time t = r.i64();
    j.entries_.emplace_back(id, t);
  }
  if (!r.done()) {
    throw SnapshotError("journal", "trailing bytes after last entry");
  }
  return j;
}

}  // namespace sga::snn
