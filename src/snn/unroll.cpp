#include "snn/unroll.h"

#include <algorithm>

#include "core/error.h"

namespace sga::snn {

UnrolledCircuit unroll_to_threshold_circuit(const CompiledNetwork& net,
                                            Time horizon) {
  SGA_REQUIRE(horizon >= 1, "unroll: horizon must be >= 1");
  const std::size_t n = net.num_neurons();
  for (NeuronId i = 0; i < n; ++i) {
    const NeuronParams p = net.params(i);
    SGA_REQUIRE(p.tau == 1.0 && p.v_reset == 0,
                "unroll: neuron " << i
                                  << " is not a pure threshold gate (τ=1, "
                                     "reset 0); general LIF unrolling is "
                                     "not supported");
  }

  UnrolledCircuit uc;
  uc.horizon = horizon;

  // Layer 0: free inputs (no incoming synapses; fired only by injection).
  for (NeuronId j = 0; j < n; ++j) {
    uc.layer0.push_back(uc.circuit.add_neuron(NeuronParams{0, 1, 1.0}));
  }
  // Layers 1..T: copies with the original thresholds.
  uc.layers.assign(static_cast<std::size_t>(horizon) + 1, {});
  for (Time t = 1; t <= horizon; ++t) {
    auto& layer = uc.layers[static_cast<std::size_t>(t)];
    for (NeuronId j = 0; j < n; ++j) {
      layer.push_back(
          uc.circuit.add_neuron(NeuronParams{0, net.params(j).v_threshold, 1.0}));
    }
  }

  auto gate_at = [&](NeuronId j, Time t) -> NeuronId {
    return t == 0 ? uc.layer0[j] : uc.layers[static_cast<std::size_t>(t)][j];
  };

  // Wiring: spike of i at time s drives j's decision at s + d.
  for (NeuronId i = 0; i < n; ++i) {
    for (const Synapse& s : net.out_synapses(i)) {
      for (Time src = 0; src + s.delay <= horizon; ++src) {
        uc.circuit.add_synapse(gate_at(i, src),
                               gate_at(s.target, src + s.delay), s.weight,
                               s.delay);
      }
    }
  }
  return uc;
}

std::vector<std::pair<Time, NeuronId>> run_unrolled(
    const UnrolledCircuit& uc,
    const std::vector<std::pair<NeuronId, Time>>& injections) {
  const CompiledNetwork compiled = uc.circuit.compile();
  Simulator sim(compiled);
  for (const auto& [id, t] : injections) {
    SGA_REQUIRE(id < uc.layer0.size(), "run_unrolled: bad injection neuron");
    SGA_REQUIRE(t >= 0 && t <= uc.horizon, "run_unrolled: bad injection time");
    if (t == 0) {
      sim.inject_spike(uc.layer0[id], 0);
    } else {
      sim.inject_spike(uc.layers[static_cast<std::size_t>(t)][id], t);
    }
  }
  SimConfig cfg;
  cfg.max_time = uc.horizon;
  sim.run(cfg);

  std::vector<std::pair<Time, NeuronId>> spikes;
  for (NeuronId j = 0; j < uc.layer0.size(); ++j) {
    if (sim.first_spike(uc.layer0[j]) == 0) spikes.emplace_back(0, j);
  }
  for (Time t = 1; t <= uc.horizon; ++t) {
    const auto& layer = uc.layers[static_cast<std::size_t>(t)];
    for (NeuronId j = 0; j < layer.size(); ++j) {
      // A layer-t gate can only fire at time t (its inputs all arrive
      // exactly then); check that time explicitly.
      if (sim.fired_at(layer[j], t)) spikes.emplace_back(t, j);
    }
  }
  std::sort(spikes.begin(), spikes.end());
  return spikes;
}

}  // namespace sga::snn
