#include "snn/parallel_sim.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <bit>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "core/error.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "snn/network.h"
#include "snn/snapshot.h"

namespace sga::snn {

namespace {

/// "no pending event" sentinel — strictly above every representable event
/// time (events are clamped to ≤ kNever = max/4 on the fire side).
constexpr Time kNoTime = std::numeric_limits<Time>::max();

/// Calendar ring sizing, identical to the serial simulator's policy.
std::size_t ring_size_for(Delay max_delay) {
  const auto want = static_cast<std::uint64_t>(max_delay) + 1;
  return static_cast<std::size_t>(
      std::bit_ceil(std::clamp<std::uint64_t>(want, 64, 1u << 16)));
}

}  // namespace

struct MailBox {
  /// One contiguous run of deliveries sharing an arrival time: indices
  /// [begin, end) into the SoA arrays below. Written by one fire() call
  /// (a (dst-shard, delay) segment run), drained with one bulk append.
  struct Slab {
    Time t;  ///< delivery time
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Slab> slabs;
  std::vector<NeuronId> targets;   ///< local index in the destination shard
  std::vector<SynWeight> weights;
  std::vector<NeuronId> sources;   ///< GLOBAL firing ids; iff record_causes

  bool empty() const { return slabs.empty(); }
  void clear() {  // keeps capacity — boxes are reused every window
    slabs.clear();
    targets.clear();
    weights.clear();
    sources.clear();
  }
};

// One shard: a self-contained mini-simulator over LOCAL neuron indices,
// with the serial engine's exact per-step semantics (delivery aggregation,
// forced-spike handling, closed-form leak, horizon rules) but bounded by
// the coordinator's window. All cross-shard traffic goes through the
// outbox pointers installed for the current window.
struct ParallelSimulator::Shard {
  const CompiledNetwork* net = nullptr;
  const ShardCsr* csr = nullptr;
  std::uint32_t index = 0;

  /// SoA delivery bucket, mirroring the serial Simulator::Bucket: targets
  /// (local indices) and weights in lock-step, sources (global ids) only
  /// when the run records causes.
  struct Bucket {
    std::vector<NeuronId> targets;
    std::vector<SynWeight> weights;
    std::vector<NeuronId> sources;
    std::vector<NeuronId> forced;  ///< local indices

    bool empty() const { return targets.empty() && forced.empty(); }
    std::size_t size() const { return targets.size() + forced.size(); }
    void clear() {
      targets.clear();
      weights.clear();
      sources.clear();
      forced.clear();
    }
  };

  // Calendar ring + sorted spill, mirroring the serial kCalendar queue
  // (same invariants: ring events in (cursor_, cursor_ + W), spill beyond).
  std::vector<Bucket> ring_;
  std::vector<std::uint64_t> ring_occupied_;
  Time ring_mask_ = 0;
  Time cursor_ = -1;
  std::uint64_t ring_events_ = 0;
  std::map<Time, Bucket> spill_;
  std::uint64_t pending_events_ = 0;
  std::vector<Bucket> pool_;  ///< drained bucket storage, LIFO

  // Per-neuron state, LOCAL indices.
  std::vector<Voltage> v_;
  std::vector<Time> last_update_;
  std::vector<Time> first_spike_;
  std::vector<Time> last_spike_;
  std::vector<std::uint32_t> spike_count_;
  std::vector<NeuronId> cause_;  ///< GLOBAL id of the first-spike cause

  // O(events) reset support (epoch-stamped dirty list, as in Simulator).
  std::vector<NeuronId> dirty_;
  std::vector<std::uint64_t> state_stamp_;
  std::uint64_t epoch_ = 1;

  // Per-step aggregation scratch.
  std::vector<SynWeight> accum_;
  std::vector<NeuronId> accum_cause_;
  std::vector<SynWeight> accum_cause_weight_;
  std::vector<char> touched_;
  std::vector<NeuronId> targets_scratch_;

  std::vector<char> is_terminal_;
  std::vector<char> is_watched_;
  std::vector<NeuronId> active_terminals_;
  std::vector<NeuronId> active_watched_;
  bool watch_all_ = false;
  bool record_causes_ = false;
  bool record_log_ = false;
  Time max_time_ = kNever;

  /// Spike log with GLOBAL ids, in local time order.
  std::vector<std::pair<Time, NeuronId>> spike_log_;

  // ---- per-window summary, read by the coordinator at the barrier ------
  std::vector<Time> touched_times_;    ///< distinct times processed
  Time out_min_time_ = kNoTime;        ///< earliest mailbox arrival written
  Time next_time_ = kNoTime;           ///< earliest pending local event
  Time terminal_time_ = kNoTime;       ///< earliest terminal FIRST fire
  std::uint64_t terminals_newly_fired_ = 0;
  bool hit_time_limit_ = false;        ///< fire-side horizon drops

  // ---- cumulative queue/engine counters --------------------------------
  std::uint64_t spikes_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t peak_queue_events_ = 0;
  std::uint64_t max_bucket_occupancy_ = 0;
  std::uint64_t overflow_spills_ = 0;
  std::uint64_t empty_bucket_scans_ = 0;
  std::uint64_t fanout_segments_ = 0;
  std::uint64_t bulk_appends_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;

  obs::Probe* probe_ = nullptr;  ///< per-shard probe (owned by parent)
  MailBox* out_ = nullptr;       ///< S outboxes, current parity

  // ---- shared-atomic cross channel (EngineKind::kSharedAtomic) ---------
  // Views into the parent's slot-major ring (parallel_sim.h). All writes
  // are relaxed atomic RMWs; inter-thread ordering comes solely from the
  // window barrier, and the ring sizing guarantees a slot being folded
  // never has a concurrent writer (ARCHITECTURE.md §1.10).
  std::atomic<SynWeight>* aw_ = nullptr;
  std::atomic<std::uint32_t>* ac_ = nullptr;
  std::atomic<std::uint64_t>* atouch_ = nullptr;
  std::atomic<std::uint64_t>* aocc_ = nullptr;
  const std::size_t* entry_base_ = nullptr;  ///< parent-owned, per shard
  const std::size_t* word_base_ = nullptr;
  std::size_t slot_entries_ = 0;
  std::size_t slot_words_ = 0;
  std::size_t occ_words_ = 0;
  Time atom_mask_ = 0;
  bool atomic_cross_ = false;  ///< set per run (off when recording causes)
  /// Earliest arrival still parked in the shared ring (≥ the window end at
  /// the last fold); read by the coordinator at the barrier.
  Time shared_next_ = kNoTime;

  void init(const CompiledNetwork& network, const ShardCsr& shard_csr,
            std::uint32_t shard_index) {
    net = &network;
    csr = &shard_csr;
    index = shard_index;
    const std::size_t n = csr->num_neurons();
    v_.resize(n);
    last_update_.assign(n, 0);
    first_spike_.assign(n, kNever);
    last_spike_.assign(n, kNever);
    spike_count_.assign(n, 0);
    cause_.assign(n, kNoNeuron);
    state_stamp_.assign(n, 0);
    accum_.assign(n, 0);
    accum_cause_.assign(n, kNoNeuron);
    accum_cause_weight_.assign(n, 0);
    touched_.assign(n, 0);
    is_terminal_.assign(n, 0);
    is_watched_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      v_[i] = net->v_reset(csr->global_ids[i]);
    }
    const std::size_t w = ring_size_for(net->max_delay());
    ring_.resize(w);
    ring_occupied_.assign(w / 64, 0);
    ring_mask_ = static_cast<Time>(w - 1);
  }

  void touch_state(NeuronId lid) {
    if (state_stamp_[lid] != epoch_) {
      state_stamp_[lid] = epoch_;
      dirty_.push_back(lid);
    }
  }

  /// Bucket-storage pool, as in the serial engine (ARCHITECTURE.md §1.6):
  /// drained buckets donate their vectors; activations take them back.
  void activate(Bucket& b) {
    if (!pool_.empty()) {
      ++pool_hits_;
      b = std::move(pool_.back());
      pool_.pop_back();
    } else {
      ++pool_misses_;
    }
  }
  void recycle(Bucket& b) {
    b.clear();
    pool_.push_back(std::move(b));
  }

  Bucket& bucket_for(Time t, std::uint64_t count) {
    pending_events_ += count;
    if (pending_events_ > peak_queue_events_) {
      peak_queue_events_ = pending_events_;
    }
    if (t - cursor_ < static_cast<Time>(ring_.size())) {
      const auto slot = static_cast<std::size_t>(t & ring_mask_);
      std::uint64_t& word = ring_occupied_[slot >> 6];
      const std::uint64_t bit = 1ULL << (slot & 63);
      if ((word & bit) == 0) {
        word |= bit;
        activate(ring_[slot]);
      }
      ring_events_ += count;
      return ring_[slot];
    }
    overflow_spills_ += count;
    const auto [it, inserted] = spill_.try_emplace(t);
    if (inserted) activate(it->second);
    return it->second;
  }

  void migrate_spill() {
    const auto w = static_cast<Time>(ring_.size());
    while (!spill_.empty()) {
      const auto it = spill_.begin();
      if (it->first - cursor_ >= w) break;
      const auto slot = static_cast<std::size_t>(it->first & ring_mask_);
      Bucket& dst = ring_[slot];
      ring_occupied_[slot >> 6] |= 1ULL << (slot & 63);
      ring_events_ += it->second.size();
      if (dst.empty()) {
        // Unoccupied slots hold no storage (drains donate it to the pool).
        dst = std::move(it->second);
      } else {
        Bucket& src = it->second;
        dst.targets.insert(dst.targets.end(), src.targets.begin(),
                           src.targets.end());
        dst.weights.insert(dst.weights.end(), src.weights.begin(),
                           src.weights.end());
        dst.sources.insert(dst.sources.end(), src.sources.begin(),
                           src.sources.end());
        dst.forced.insert(dst.forced.end(), src.forced.begin(),
                          src.forced.end());
        recycle(src);
      }
      spill_.erase(it);
    }
  }

  /// Earliest pending local event, bounded by the coordinator's window.
  ///
  /// Unlike the serial queue, a shard's queue can RECEIVE events after it
  /// drains — mailbox deliveries land at every barrier, always at times
  /// >= the window end `wend` (that is the δ-lookahead guarantee). So the
  /// serial cursor jump to `spill head - 1` is unsafe here: jumping past
  /// `wend` would strand later-drained mail BEHIND the cursor, where
  /// `bucket_for`'s ring test files it into a stale slot and the scan
  /// silently loses it. The rule: never move cursor_ to or beyond wend.
  /// When the ring is empty and the spill head lies at or past wend,
  /// report that time WITHOUT jumping — the window cannot use it anyway,
  /// and the next window re-asks with a larger wend.
  bool next_pending_time(Time* t, Time wend) {
    migrate_spill();
    if (ring_events_ == 0) {
      if (spill_.empty()) return false;
      const Time spill_head = spill_.begin()->first;
      if (spill_head >= wend) {
        *t = spill_head;
        return true;
      }
      cursor_ = spill_head - 1;
      migrate_spill();
    }
    const auto start = static_cast<std::size_t>((cursor_ + 1) & ring_mask_);
    const std::size_t word_mask = ring_occupied_.size() - 1;
    std::size_t w = start >> 6;
    std::uint64_t word = ring_occupied_[w] & (~0ULL << (start & 63));
    while (word == 0) {
      w = (w + 1) & word_mask;
      word = ring_occupied_[w];
    }
    const std::size_t slot =
        (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    const std::size_t offset =
        (slot - start) & static_cast<std::size_t>(ring_mask_);
    empty_bucket_scans_ += offset;
    *t = cursor_ + 1 + static_cast<Time>(offset);
    return true;
  }

  Voltage decayed_potential(NeuronId lid, Time t) const {
    const NeuronId gid = csr->global_ids[lid];
    const Time dt = t - last_update_[lid];
    SGA_CHECK(dt >= 0, "parallel: time went backwards for neuron " << gid);
    return decay_potential(v_[lid], net->v_reset(gid), net->tau(gid), dt);
  }

  void fire(NeuronId lid, Time t) {
    const NeuronId gid = csr->global_ids[lid];
    const bool first_fire = first_spike_[lid] == kNever;
    touch_state(lid);
    v_[lid] = net->v_reset(gid);
    last_update_[lid] = t;
    ++spike_count_[lid];
    ++spikes_;
    if (first_fire) first_spike_[lid] = t;
    last_spike_[lid] = t;
    if (probe_ != nullptr) probe_->on_spike(t, gid);
    if (record_log_ && (watch_all_ || is_watched_[lid])) {
      spike_log_.emplace_back(t, gid);
    }
    if (is_terminal_[lid] && first_fire) {
      ++terminals_newly_fired_;
      if (t < terminal_time_) terminal_time_ = t;
    }
    // Intra-shard fan-out, segmented: the intra family inherits the
    // delay-sorted row order, so each delay run is one queue lookup plus a
    // bulk append. Same horizon rule as the serial engine (subtraction
    // form avoids t + d overflow; dropped work reports hit_time_limit);
    // ascending run delays let a horizon hit stop the whole row.
    const NeuronId* itgt = csr->intra_target.data();
    const SynWeight* iwgt = csr->intra_weight.data();
    const std::size_t ise = csr->intra_seg_offsets[lid + 1];
    for (std::size_t s = csr->intra_seg_offsets[lid]; s < ise; ++s) {
      ++fanout_segments_;
      const Delay d = csr->intra_seg_delay[s];
      if (d > max_time_ - t) {
        hit_time_limit_ = true;
        break;
      }
      const std::size_t b = csr->intra_seg_begin[s];
      const std::size_t e = csr->intra_seg_end[s];
      Bucket& bucket = bucket_for(t + d, e - b);
      bucket.targets.insert(bucket.targets.end(), itgt + b, itgt + e);
      bucket.weights.insert(bucket.weights.end(), iwgt + b, iwgt + e);
      if (record_causes_) {
        bucket.sources.insert(bucket.sources.end(), e - b, gid);
      }
      ++bulk_appends_;
    }
    // Cross-shard fan-out, segmented: one run per (dst-shard, delay) pair.
    // Runs are (shard, delay)-ordered, NOT globally delay-ascending, so a
    // horizon hit skips the run but keeps scanning.
    //
    // kMailbox: one SoA slab appended to the destination's outbox — only
    // this shard's worker writes those boxes during the window; the
    // barrier hands them over. kSharedAtomic: relaxed fetch-ops into the
    // destination's accumulation slots of the shared ring (weight sum +
    // delivery count per target, plus touched/occupancy bitmaps); the
    // destination folds them at its next window start.
    const NeuronId* clocal = csr->cross_local.data();
    const SynWeight* cwgt = csr->cross_weight.data();
    const std::size_t cse = csr->cross_seg_offsets[lid + 1];
    for (std::size_t s = csr->cross_seg_offsets[lid]; s < cse; ++s) {
      ++fanout_segments_;
      const Delay d = csr->cross_seg_delay[s];
      if (d > max_time_ - t) {
        hit_time_limit_ = true;
        continue;
      }
      const Time at = t + d;
      const std::size_t b = csr->cross_seg_begin[s];
      const std::size_t e = csr->cross_seg_end[s];
      if (atomic_cross_) {
        const std::uint32_t ds = csr->cross_seg_shard[s];
        const std::size_t slot = static_cast<std::size_t>(at & atom_mask_);
        std::atomic<SynWeight>* w =
            aw_ + slot * slot_entries_ + entry_base_[ds];
        std::atomic<std::uint32_t>* c =
            ac_ + slot * slot_entries_ + entry_base_[ds];
        std::atomic<std::uint64_t>* tw =
            atouch_ + slot * slot_words_ + word_base_[ds];
        for (std::size_t j = b; j < e; ++j) {
          const NeuronId local = clocal[j];
          w[local].fetch_add(cwgt[j], std::memory_order_relaxed);
          c[local].fetch_add(1, std::memory_order_relaxed);
          tw[local >> 6].fetch_or(1ULL << (local & 63),
                                  std::memory_order_relaxed);
        }
        aocc_[static_cast<std::size_t>(ds) * occ_words_ + (slot >> 6)]
            .fetch_or(1ULL << (slot & 63), std::memory_order_relaxed);
      } else {
        MailBox& box = out_[csr->cross_seg_shard[s]];
        const std::size_t base = box.targets.size();
        box.targets.insert(box.targets.end(), clocal + b, clocal + e);
        box.weights.insert(box.weights.end(), cwgt + b, cwgt + e);
        if (record_causes_) {
          box.sources.insert(box.sources.end(), e - b, gid);
        }
        box.slabs.push_back(MailBox::Slab{at, base, base + (e - b)});
      }
      ++bulk_appends_;
      if (at < out_min_time_) out_min_time_ = at;
    }
  }

  /// Fold the mail delivered at the previous barrier into the local queue.
  /// Inboxes are drained in source-shard order, which fixes the bucket
  /// order deterministically (the serial bucket order differs, but bucket
  /// order is only observable through FP summation order — exact for the
  /// integer weights of every paper construction — and cause tie-breaks,
  /// which use the order-free (weight, source id) rule).
  void drain_inboxes(MailBox* in_boxes, std::size_t stride,
                     std::size_t num_shards) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      MailBox& box = in_boxes[s * stride];
      for (const MailBox::Slab& slab : box.slabs) {
        Bucket& bucket = bucket_for(slab.t, slab.end - slab.begin);
        bucket.targets.insert(bucket.targets.end(),
                              box.targets.begin() + slab.begin,
                              box.targets.begin() + slab.end);
        bucket.weights.insert(bucket.weights.end(),
                              box.weights.begin() + slab.begin,
                              box.weights.begin() + slab.end);
        if (record_causes_) {
          bucket.sources.insert(bucket.sources.end(),
                                box.sources.begin() + slab.begin,
                                box.sources.begin() + slab.end);
        }
      }
      box.clear();
    }
  }

  /// Fold this shard's fully-published shared-atomic slots into the
  /// private queue (kSharedAtomic counterpart of drain_inboxes).
  ///
  /// `base` is a known lower bound on every parked arrival (the window
  /// start, or the global next-event floor at a pause), so a slot's time is
  /// reconstructed uniquely as base + ((slot - base) mod W): the ring
  /// sizing keeps all live arrivals inside [base, base + W). Slots at or
  /// past `bound` (the window end) may still be receiving concurrent
  /// writes from shards already executing the new window — they are left
  /// in place and only contribute to shared_next_. Concurrently-added
  /// occupancy bits this scan misses are covered by the writing shard's
  /// out_min_time_ at the barrier, so the coordinator never loses an
  /// arrival.
  ///
  /// Each folded slot entry becomes one delivery carrying the accumulated
  /// weight sum plus count-1 zero-weight paddings to the same target:
  /// potentials are exact for integer weights (sums are order-free), and
  /// delivery counts, bucket occupancies, touched sets, and probe delivery
  /// counts all match the mailbox engine entry-for-entry.
  void drain_shared(Time base, Time bound) {
    shared_next_ = kNoTime;
    if (aw_ == nullptr) return;
    const std::size_t nloc = csr->num_neurons();
    const std::size_t my_words = (nloc + 63) >> 6;
    const std::size_t occ_base =
        static_cast<std::size_t>(index) * occ_words_;
    for (std::size_t w = 0; w < occ_words_; ++w) {
      std::uint64_t word = aocc_[occ_base + w].load(std::memory_order_relaxed);
      while (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        const Time t = base + ((static_cast<Time>(slot) - base) & atom_mask_);
        if (t >= bound) {
          if (t < shared_next_) shared_next_ = t;
          continue;
        }
        aocc_[occ_base + w].fetch_and(~(1ULL << (slot & 63)),
                                      std::memory_order_relaxed);
        std::atomic<std::uint64_t>* tw =
            atouch_ + slot * slot_words_ + word_base_[index];
        std::atomic<SynWeight>* sw =
            aw_ + slot * slot_entries_ + entry_base_[index];
        std::atomic<std::uint32_t>* sc =
            ac_ + slot * slot_entries_ + entry_base_[index];
        for (std::size_t wi = 0; wi < my_words; ++wi) {
          std::uint64_t tword = tw[wi].load(std::memory_order_relaxed);
          if (tword == 0) continue;
          tw[wi].store(0, std::memory_order_relaxed);
          while (tword != 0) {
            const NeuronId local = static_cast<NeuronId>(
                (wi << 6) + static_cast<std::size_t>(std::countr_zero(tword)));
            tword &= tword - 1;
            const SynWeight sum = sw[local].exchange(0, std::memory_order_relaxed);
            const std::uint32_t cnt =
                sc[local].exchange(0, std::memory_order_relaxed);
            Bucket& bucket = bucket_for(t, cnt);
            bucket.targets.push_back(local);
            bucket.weights.push_back(sum);
            for (std::uint32_t k = 1; k < cnt; ++k) {
              bucket.targets.push_back(local);
              bucket.weights.push_back(0);
            }
          }
        }
      }
    }
  }

  /// Process every pending event with time < wend (exclusive), in time
  /// order — the serial run() loop restricted to one window.
  void advance_window(Time wend) {
    touched_times_.clear();
    out_min_time_ = kNoTime;
    terminal_time_ = kNoTime;
    terminals_newly_fired_ = 0;

    std::vector<NeuronId>& targets = targets_scratch_;
    while (true) {
      Time t = 0;
      if (!next_pending_time(&t, wend)) break;
      if (t >= wend) break;
      cursor_ = t;
      Bucket* bucket = &ring_[static_cast<std::size_t>(t & ring_mask_)];
      ring_events_ -= bucket->size();
      pending_events_ -= bucket->size();
      if (bucket->size() > max_bucket_occupancy_) {
        max_bucket_occupancy_ = bucket->size();
      }
      touched_times_.push_back(t);

      if (probe_ != nullptr && probe_->counts_deliveries()) {
        for (const NeuronId target : bucket->targets) {
          probe_->on_delivery(csr->global_ids[target]);
        }
      }

      targets.clear();
      const std::size_t nd = bucket->targets.size();
      deliveries_ += nd;
      for (std::size_t i = 0; i < nd; ++i) {
        const NeuronId target = bucket->targets[i];
        const SynWeight weight = bucket->weights[i];
        if (!touched_[target]) {
          touched_[target] = 1;
          targets.push_back(target);
          accum_[target] = 0;
          accum_cause_[target] = kNoNeuron;
          accum_cause_weight_[target] = 0;
        }
        accum_[target] += weight;
        if (record_causes_) {
          // Deterministic cause selection (matches the serial engine):
          // largest weight, ties to the smallest source id — independent
          // of delivery order, hence of the parallel schedule. sources is
          // populated exactly when record_causes_ is set.
          const NeuronId source = bucket->sources[i];
          SynWeight& bw = accum_cause_weight_[target];
          NeuronId& bs = accum_cause_[target];
          if (weight > bw ||
              (bs != kNoNeuron && weight == bw && source < bs)) {
            bs = source;
            bw = weight;
          }
        }
      }

      for (const NeuronId lid : bucket->forced) {
        if (last_spike_[lid] == t) continue;
        fire(lid, t);
        if (touched_[lid]) {
          accum_[lid] = 0;
          touched_[lid] = 2;
        }
      }

      for (const NeuronId lid : targets) {
        if (touched_[lid] == 2) {
          touched_[lid] = 0;
          continue;
        }
        touched_[lid] = 0;
        const Voltage v_hat = decayed_potential(lid, t) + accum_[lid];
        const NeuronId gid = csr->global_ids[lid];
        if (v_hat >= net->v_threshold(gid)) {
          if (record_causes_ && first_spike_[lid] == kNever) {
            cause_[lid] = accum_cause_[lid];
          }
          fire(lid, t);
        } else {
          touch_state(lid);
          v_[lid] = v_hat;
          last_update_[lid] = t;
        }
      }

      if (probe_ != nullptr && probe_->samples_potentials()) {
        for (const NeuronId lid : targets) {
          probe_->on_potential(t, csr->global_ids[lid], v_[lid]);
        }
      }

      recycle(*bucket);  // storage (capacity intact) goes to the pool
      const auto slot = static_cast<std::size_t>(t & ring_mask_);
      ring_occupied_[slot >> 6] &= ~(1ULL << (slot & 63));
    }

    Time t = 0;
    next_time_ = next_pending_time(&t, wend) ? t : kNoTime;
  }

  void reset() {
    for (const NeuronId lid : dirty_) {
      v_[lid] = net->v_reset(csr->global_ids[lid]);
      last_update_[lid] = 0;
      first_spike_[lid] = kNever;
      last_spike_[lid] = kNever;
      spike_count_[lid] = 0;
      cause_[lid] = kNoNeuron;
    }
    dirty_.clear();
    ++epoch_;
    for (const NeuronId t : active_terminals_) is_terminal_[t] = 0;
    active_terminals_.clear();
    for (const NeuronId w : active_watched_) is_watched_[w] = 0;
    active_watched_.clear();
    watch_all_ = false;
    if (ring_events_ > 0) {
      for (std::size_t w = 0; w < ring_occupied_.size(); ++w) {
        std::uint64_t word = ring_occupied_[w];
        while (word != 0) {
          const auto slot =
              (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          recycle(ring_[slot]);
        }
        ring_occupied_[w] = 0;
      }
      ring_events_ = 0;
    }
    for (auto& [t, bucket] : spill_) recycle(bucket);
    spill_.clear();
    pending_events_ = 0;
    cursor_ = -1;
    spike_log_.clear();
    touched_times_.clear();
    out_min_time_ = kNoTime;
    shared_next_ = kNoTime;
    atomic_cross_ = false;
    next_time_ = kNoTime;
    terminal_time_ = kNoTime;
    terminals_newly_fired_ = 0;
    hit_time_limit_ = false;
    spikes_ = 0;
    deliveries_ = 0;
    peak_queue_events_ = 0;
    max_bucket_occupancy_ = 0;
    overflow_spills_ = 0;
    empty_bucket_scans_ = 0;
    fanout_segments_ = 0;
    bulk_appends_ = 0;
    pool_hits_ = 0;
    pool_misses_ = 0;
    record_causes_ = false;
    record_log_ = false;
    max_time_ = kNever;
    probe_ = nullptr;
  }
};

ParallelSimulator::ParallelSimulator(const CompiledNetwork& net,
                                     ParallelConfig config)
    : net_(&net) {
  configure(config);
}

ParallelSimulator::ParallelSimulator(const Network& net, ParallelConfig config)
    : net_(nullptr), owned_(std::make_unique<CompiledNetwork>(net)) {
  net_ = owned_.get();
  configure(config);
}

ParallelSimulator::~ParallelSimulator() = default;

void ParallelSimulator::configure(ParallelConfig config) {
  SGA_REQUIRE(config.max_window >= 1,
              "ParallelSimulator: max_window must be >= 1");
  SGA_REQUIRE(config.steal_skew >= 1.0,
              "ParallelSimulator: steal_skew must be >= 1");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned requested = config.num_threads != 0 ? config.num_threads : hw;
  const std::size_t shards = config.num_shards != 0
                                 ? config.num_shards
                                 : static_cast<std::size_t>(requested);
  threads_ = static_cast<unsigned>(std::min<std::size_t>(requested, shards));
  max_window_ = config.max_window;
  engine_ = config.engine;
  stealing_ = config.work_stealing;
  steal_skew_ = config.steal_skew;
  split_ = net_->shard_split(make_partition(*net_, shards, config.partition));
  lookahead_ = split_.min_cross_delay == 0
                   ? max_window_
                   : std::min<Time>(split_.min_cross_delay, max_window_);
  // Keep wstart_ + window_len_ overflow-free for any config: event times
  // never exceed kNever (= max/4), so this clamp cannot change results.
  lookahead_ = std::min(lookahead_, kNever);
  init();
}

void ParallelSimulator::init() {
  const std::size_t s = split_.partition.num_shards;
  shards_.clear();
  for (std::size_t i = 0; i < s; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->init(*net_, split_.shards[i],
                         static_cast<std::uint32_t>(i));
  }
  mail_[0].assign(s * s, {});
  mail_[1].assign(s * s, {});

  // Shared-atomic delivery ring. W ≥ window + max_delay + 1 gives the two
  // invariants §1.10 relies on: (a) every live arrival lies within W slots
  // of the window start, so slot→time reconstruction is unique, and (b) a
  // slot folded this window (time < wend) can never alias a concurrent
  // write (times ≥ wend, all < wend + max_delay ≤ fold time + W).
  atom_slots_ = 0;
  if (engine_ == EngineKind::kSharedAtomic && split_.num_cross_synapses > 0) {
    const auto want = static_cast<std::uint64_t>(lookahead_) +
                      static_cast<std::uint64_t>(net_->max_delay()) + 1;
    const std::uint64_t w = std::bit_ceil(std::max<std::uint64_t>(want, 64));
    const std::size_t n = net_->num_neurons();
    SGA_REQUIRE(w * n <= (1ull << 28),
                "kSharedAtomic: shared ring would need "
                    << w * n << " accumulation slots (" << w
                    << " time slots x " << n
                    << " neurons); use kMailbox for this delay range");
    atom_slots_ = static_cast<std::size_t>(w);
    slot_entries_ = n;
    occ_words_ = atom_slots_ / 64;
    entry_base_.assign(s + 1, 0);
    word_base_.assign(s + 1, 0);
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t local_n = split_.shards[i].num_neurons();
      entry_base_[i + 1] = entry_base_[i] + local_n;
      word_base_[i + 1] = word_base_[i] + ((local_n + 63) >> 6);
    }
    slot_words_ = word_base_[s];
    atom_weight_ = std::vector<std::atomic<SynWeight>>(atom_slots_ * n);
    atom_count_ =
        std::vector<std::atomic<std::uint32_t>>(atom_slots_ * n);
    atom_touched_ =
        std::vector<std::atomic<std::uint64_t>>(atom_slots_ * slot_words_);
    atom_occ_ = std::vector<std::atomic<std::uint64_t>>(s * occ_words_);
    for (std::size_t i = 0; i < s; ++i) {
      Shard& sh = *shards_[i];
      sh.aw_ = atom_weight_.data();
      sh.ac_ = atom_count_.data();
      sh.atouch_ = atom_touched_.data();
      sh.aocc_ = atom_occ_.data();
      sh.entry_base_ = entry_base_.data();
      sh.word_base_ = word_base_.data();
      sh.slot_entries_ = slot_entries_;
      sh.slot_words_ = slot_words_;
      sh.occ_words_ = occ_words_;
      sh.atom_mask_ = static_cast<Time>(atom_slots_ - 1);
    }
  }
}

void ParallelSimulator::inject_spike(NeuronId id, Time t) {
  SGA_REQUIRE(id < net_->num_neurons(),
              "inject_spike: bad neuron " << id);
  SGA_REQUIRE(t >= 0, "inject_spike: negative time " << t);
  SGA_REQUIRE(t <= kNever, "inject_spike: time " << t << " beyond kNever");
  SGA_REQUIRE(!ran_ || paused_,
              "inject_spike after run() (call reset() first, or pause the "
              "run to inject mid-flight)");
  SGA_REQUIRE(!paused_ || t >= pause_floor_,
              "inject_spike at t=" << t << " into a paused run whose resume "
                                   << "floor is " << pause_floor_);
  Shard& sh = *shards_[split_.partition.shard_of[id]];
  sh.bucket_for(t, 1).forced.push_back(split_.partition.local_index[id]);
}

void ParallelSimulator::attach_probe(obs::Probe& probe) {
  probe.bind(net_->num_neurons());
  probe_ = &probe;
}

void ParallelSimulator::plan_next_window() try {
  const std::size_t s = shards_.size();

  if (!first_plan_) {
    // Fold the finished window: distinct global event times and the last
    // processed step. Shards report sorted per-window time lists; their
    // merged distinct count is what the serial loop counts one bucket at
    // a time.
    merge_scratch_.clear();
    for (const auto& sh : shards_) {
      merge_scratch_.insert(merge_scratch_.end(), sh->touched_times_.begin(),
                            sh->touched_times_.end());
    }
    if (!merge_scratch_.empty()) {
      std::sort(merge_scratch_.begin(), merge_scratch_.end());
      stats_.event_times += static_cast<std::uint64_t>(
          std::unique(merge_scratch_.begin(), merge_scratch_.end()) -
          merge_scratch_.begin());
      stats_.end_time = merge_scratch_.back();
    }
    // Terminal resolution at the barrier. Window length is 1 whenever
    // terminals are configured, so every terminal fire folded here
    // happened at the single just-executed step wstart_ — the barrier
    // decision is therefore exactly the serial loop's end-of-bucket
    // decision.
    if (terminals_remaining_ > 0 && !terminal_fired_) {
      std::uint64_t newly = 0;
      for (const auto& sh : shards_) newly += sh->terminals_newly_fired_;
      if (newly >= terminals_remaining_) {
        terminal_fired_ = true;
        stats_.hit_terminal = true;
        stats_.execution_time = wstart_;
        terminals_remaining_ = 0;
      } else {
        terminals_remaining_ -= newly;
      }
    }
  }
  first_plan_ = false;

  if (error_) {
    done_ = true;
    return;
  }
  if (terminal_fired_) {
    done_ = true;
    return;
  }

  // Global earliest pending event: shard queues, mail written in the
  // window just finished (it is not in any queue until drained), and
  // arrivals still parked in the shared-atomic ring.
  Time next = kNoTime;
  for (const auto& sh : shards_) {
    next = std::min(next, sh->next_time_);
    next = std::min(next, sh->out_min_time_);
    next = std::min(next, sh->shared_next_);
  }
  if (next == kNoTime) {
    done_ = true;  // quiescence
    return;
  }
  if (next > max_time_) {
    stats_.hit_time_limit = true;  // pending work beyond the horizon
    done_ = true;
    return;
  }
  if (next > pause_time_) {
    // Cooperative pause at the barrier. The window just finished wrote its
    // cross-shard mail into mail_[parity_] (undrained — destinations fold
    // at the START of the next window, which will not run): fold it into
    // the destination shards' queues now, single-threaded, so the COMPLETE
    // pending-event set lives in shard queues — that is the state
    // snapshot() enumerates and run() resumes from. Nothing is dropped.
    // The shared-atomic ring folds the same way: `next` lower-bounds every
    // parked arrival, and with all workers at the barrier there are no
    // concurrent writers, so an unbounded drain empties the ring.
    const std::size_t nshards = shards_.size();
    for (std::size_t i = 0; i < nshards; ++i) {
      shards_[i]->drain_inboxes(mail_[parity_].data() + i, nshards, nshards);
      if (use_atomic_cross_) shards_[i]->drain_shared(next, kNoTime);
      shards_[i]->out_min_time_ = kNoTime;
    }
    paused_ = true;
    stats_.paused = true;
    pause_floor_ = next;
    done_ = true;
    return;
  }
  wstart_ = next;
  wend_ = std::min(wstart_ + window_len_, max_time_ + 1);
  parity_ ^= 1;
  const int p = parity_;
  for (std::size_t i = 0; i < s; ++i) {
    shards_[i]->out_ = mail_[p].data() + i * s;
  }
  assign_shards();
} catch (...) {
  if (!error_) error_ = std::current_exception();
  done_ = true;
}

void ParallelSimulator::assign_shards() {
  const std::size_t s = shards_.size();
  const unsigned workers = workers_;
  assign_.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    assign_[i] = static_cast<std::uint32_t>(i % workers);
  }
  // Deterministic per-window work stealing: estimate each shard's coming
  // work as its private queue depth (cheap, and a pure function of the
  // simulation state — mail/shared arrivals not yet folded are invisible,
  // identically so on every run). If the static round-robin deal leaves
  // one worker with more than steal_skew × the best achievable (LPT)
  // maximum, adopt the LPT deal; a shard executing away from its static
  // owner counts as one steal. Shard state is self-contained, so WHICH
  // worker runs a shard can never change results — only the metric needs
  // determinism, and it gets it by construction.
  if (!stealing_ || workers < 2 || s <= workers) return;
  est_scratch_.assign(workers, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::uint64_t e = shards_[i]->pending_events_;
    est_scratch_[i % workers] += e;
    total += e;
  }
  const std::uint64_t max_static =
      *std::max_element(est_scratch_.begin(), est_scratch_.end());
  if (max_static == 0) return;
  order_scratch_.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    order_scratch_[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return shards_[a]->pending_events_ >
                            shards_[b]->pending_events_;
                   });
  est_scratch_.assign(workers, 0);
  deal_scratch_.assign(s, 0);
  for (const std::uint32_t shard : order_scratch_) {
    unsigned best = 0;
    for (unsigned w = 1; w < workers; ++w) {
      if (est_scratch_[w] < est_scratch_[best]) best = w;
    }
    deal_scratch_[shard] = best;
    est_scratch_[best] += shards_[shard]->pending_events_;
  }
  const std::uint64_t max_lpt =
      *std::max_element(est_scratch_.begin(), est_scratch_.end());
  const double skew = static_cast<double>(max_static) /
                      std::max(1.0, static_cast<double>(total) / workers);
  skew_max_ = std::max(skew_max_, skew);
  if (static_cast<double>(max_static) <=
      steal_skew_ * static_cast<double>(max_lpt)) {
    return;
  }
  for (std::size_t i = 0; i < s; ++i) {
    if (deal_scratch_[i] != assign_[i]) ++steals_;
    assign_[i] = deal_scratch_[i];
  }
}

void ParallelSimulator::advance_owned_shards(unsigned worker) {
  const std::size_t s = shards_.size();
  for (std::size_t i = 0; i < s; ++i) {
    if (assign_[i] != worker) continue;
    // Inboxes for shard i under read parity: mail_[1 - parity_][src*s + i].
    shards_[i]->drain_inboxes(mail_[1 - parity_].data() + i, s, s);
    if (use_atomic_cross_) shards_[i]->drain_shared(wstart_, wend_);
    shards_[i]->advance_window(wend_);
  }
}

SimStats ParallelSimulator::run(const SimConfig& config) {
  SGA_REQUIRE(!ran_ || paused_,
              "ParallelSimulator::run is one-shot (call reset() to reuse, "
              "or pause via SimConfig::pause_time to resume later)");
  obs::MetricsRegistry* caller_metrics = obs::thread_metrics();
  obs::ScopedTimer run_timer(caller_metrics, "psim.run_ns");
  const bool resuming = ran_;
  // Metrics report per-call deltas, so a pause/resume cycle does not
  // double-count the pre-pause portion of the cumulative stats.
  const std::uint64_t spikes0 = stats_.spikes;
  const std::uint64_t deliveries0 = stats_.deliveries;
  const std::uint64_t event_times0 = stats_.event_times;
  ran_ = true;
  if (resuming) {
    // Same resume contract as the serial engine: the recording flags and
    // horizon shaped the pre-pause event stream and cannot change.
    SGA_REQUIRE(shards_.empty() ||
                    (config.record_causes == shards_[0]->record_causes_ &&
                     config.record_spike_log == shards_[0]->record_log_),
                "resume: record_causes/record_spike_log must match the "
                "paused run");
    SGA_REQUIRE(std::min(config.max_time, kNever) == max_time_,
                "resume: max_time must match the paused run ("
                    << max_time_ << ")");
  } else {
    // Clamped so max_time_ + 1 cannot overflow; events never pass kNever
    // (injections are checked, and the fire-side horizon test drops the
    // rest), so the clamp is unobservable.
    max_time_ = std::min(config.max_time, kNever);
  }
  pause_time_ = config.pause_time;
  paused_ = false;
  stats_.paused = false;

  const Partition& part = split_.partition;
  std::uint64_t distinct_terminals = 0;
  for (const NeuronId t : config.terminal_neurons) {
    SGA_REQUIRE(t < net_->num_neurons(), "bad terminal neuron " << t);
    Shard& sh = *shards_[part.shard_of[t]];
    const NeuronId lid = part.local_index[t];
    if (!sh.is_terminal_[lid]) {
      sh.is_terminal_[lid] = 1;
      sh.active_terminals_.push_back(lid);
      ++distinct_terminals;
    }
  }
  if (!resuming) {
    terminals_remaining_ = config.terminate_on_all
                               ? distinct_terminals
                               : std::min<std::uint64_t>(1, distinct_terminals);
    terminal_fired_ = false;
  } else if (distinct_terminals > 0) {
    // Terminals registered before the pause were counted then (the loop
    // above is idempotent); only genuinely new ids adjust the count.
    terminals_remaining_ +=
        config.terminate_on_all
            ? distinct_terminals
            : ((terminals_remaining_ == 0 && !terminal_fired_) ? 1 : 0);
  }
  const bool watch_all = resuming && !shards_.empty()
                             ? shards_[0]->watch_all_
                             : config.watched_neurons.empty();
  for (const NeuronId w : config.watched_neurons) {
    SGA_REQUIRE(w < net_->num_neurons(), "bad watched neuron " << w);
    Shard& sh = *shards_[part.shard_of[w]];
    const NeuronId lid = part.local_index[w];
    if (!sh.is_watched_[lid]) {
      sh.is_watched_[lid] = 1;
      sh.active_watched_.push_back(lid);
    }
  }

  // Per-shard probes: same options as the attached probe, bound to the
  // full network (hooks use global ids). Merged into the user's probe in
  // finalize_run() — only at COMPLETION, so a resume keeps accumulating
  // into the same shard probes rather than recreating (and losing) them.
  if (!resuming) shard_probes_.clear();
  if (probe_ != nullptr && shard_probes_.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shard_probes_.push_back(std::make_unique<obs::Probe>(probe_->options()));
      shard_probes_.back()->bind(net_->num_neurons());
    }
  }

  // The shared-atomic ring cannot carry per-delivery provenance, so a
  // cause-recording run transparently uses the mailbox channel instead
  // (EngineKind::kSharedAtomic doc). The ring is empty at every run entry:
  // fresh/reset()/restored simulators never touched it, and a pause folds
  // it into the shard queues.
  use_atomic_cross_ = atom_slots_ != 0 && !config.record_causes;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    sh.record_causes_ = config.record_causes;
    sh.record_log_ = config.record_spike_log;
    sh.watch_all_ = watch_all;
    sh.max_time_ = max_time_;
    sh.probe_ = probe_ != nullptr ? shard_probes_[i].get() : nullptr;
    sh.atomic_cross_ = use_atomic_cross_;
    sh.shared_next_ = kNoTime;
    sh.next_time_ = kNoTime;
    Time t = 0;
    // wend = 0: the pre-run peek must never move the cursor — the first
    // window has not been planned, so every jump would be speculative.
    if (sh.next_pending_time(&t, 0)) sh.next_time_ = t;
    sh.out_min_time_ = kNoTime;
  }

  // Terminal detection must stop the run at the end of the terminal's own
  // time step, exactly like the serial loop — so terminal mode degrades
  // the lookahead window to a single step (see header comment).
  window_len_ = terminals_remaining_ > 0 ? 1 : lookahead_;
  done_ = false;
  first_plan_ = true;
  parity_ = 0;
  error_ = nullptr;

  const unsigned workers = std::max(
      1u, std::min<unsigned>(threads_,
                             static_cast<unsigned>(shards_.size())));
  workers_ = workers;
  const std::uint64_t steals0 = steals_;
  if (workers == 1) {
    while (true) {
      plan_next_window();
      if (done_) break;
      try {
        advance_owned_shards(0);
        if (caller_metrics != nullptr) caller_metrics->add("psim.windows");
      } catch (...) {
        if (!error_) error_ = std::current_exception();
        break;
      }
    }
  } else {
    std::vector<obs::MetricsRegistry> worker_metrics(
        caller_metrics != nullptr ? workers : 0);
    std::atomic<bool> error_flag{false};
    std::mutex error_mutex;
    std::barrier bar(static_cast<std::ptrdiff_t>(workers),
                     [this]() noexcept { plan_next_window(); });
    auto work = [&](unsigned tid) {
      const obs::ScopedThreadMetrics install(
          caller_metrics != nullptr ? &worker_metrics[tid] : nullptr);
      obs::ScopedTimer t(obs::thread_metrics(), "psim.worker_ns");
      while (true) {
        bar.arrive_and_wait();  // completion == plan_next_window
        if (done_) break;
        if (error_flag.load(std::memory_order_relaxed)) continue;
        try {
          advance_owned_shards(tid);
          if (obs::MetricsRegistry* m = obs::thread_metrics()) {
            m->add("psim.windows");
          }
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error_) error_ = std::current_exception();
          }
          error_flag.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(work, i);
    for (std::thread& th : pool) th.join();
    if (caller_metrics != nullptr) {
      for (const obs::MetricsRegistry& m : worker_metrics) {
        caller_metrics->merge(m);
      }
    }
  }
  if (error_) std::rethrow_exception(error_);

  finalize_run(/*absorb_probes=*/!paused_);
  if (caller_metrics != nullptr) {
    caller_metrics->add("psim.runs");
    caller_metrics->add("sim.spikes", stats_.spikes - spikes0);
    caller_metrics->add("sim.deliveries", stats_.deliveries - deliveries0);
    caller_metrics->add("sim.event_times", stats_.event_times - event_times0);
    caller_metrics->add("psim.steals", steals_ - steals0);
    caller_metrics->gauge("psim.skew", skew_max_);
    caller_metrics->gauge("psim.shards", static_cast<double>(shards_.size()));
    caller_metrics->gauge("psim.threads", static_cast<double>(workers));
  }
  return stats_;
}

void ParallelSimulator::finalize_run(bool absorb_probes) {
  // Engine totals: semantic counters sum exactly; queue counters combine
  // as documented in the header (they are per-queue properties). Counters
  // are ASSIGNED (base_ + per-shard sums), never accumulated into stats_,
  // so finalizing at a pause and again at completion is safe: shard
  // counters persist across the pause, and base_ carries what a restore
  // brought in (shard counters restart from zero there).
  stats_.spikes = base_.spikes;
  stats_.deliveries = base_.deliveries;
  stats_.peak_queue_events = base_.peak_queue_events;
  stats_.max_bucket_occupancy = base_.max_bucket_occupancy;
  stats_.overflow_spills = base_.overflow_spills;
  stats_.empty_bucket_scans = base_.empty_bucket_scans;
  stats_.fanout_segments = base_.fanout_segments;
  stats_.bulk_appends = base_.bulk_appends;
  stats_.pool_hits = base_.pool_hits;
  stats_.pool_misses = base_.pool_misses;
  for (const auto& sh : shards_) {
    stats_.spikes += sh->spikes_;
    stats_.deliveries += sh->deliveries_;
    stats_.hit_time_limit = stats_.hit_time_limit || sh->hit_time_limit_;
    stats_.peak_queue_events += sh->peak_queue_events_;
    stats_.max_bucket_occupancy =
        std::max(stats_.max_bucket_occupancy, sh->max_bucket_occupancy_);
    stats_.overflow_spills += sh->overflow_spills_;
    stats_.empty_bucket_scans += sh->empty_bucket_scans_;
    stats_.fanout_segments += sh->fanout_segments_;
    stats_.bulk_appends += sh->bulk_appends_;
    stats_.pool_hits += sh->pool_hits_;
    stats_.pool_misses += sh->pool_misses_;
  }
  if (!shards_.empty()) {
    stats_.ring_buckets =
        static_cast<std::uint32_t>(shards_[0]->ring_.size());
  }
  // The shard CSRs are full-width transients (DESIGN.md), so csr_bytes
  // stays unreported here — but the encoding of the SOURCE artifact is
  // still what the trajectory keys on.
  stats_.storage_encoding = encoding_code(net_->storage_widths());

  // Canonical (time, id) spike log: shard logs are time-ordered already;
  // one global sort yields the canonical order (a neuron fires at most
  // once per step, so (time, id) is a total order on log entries). A
  // restore scattered the image's log back into the shard logs, so the
  // rebuild covers pre-restore history too.
  log_.clear();
  for (const auto& sh : shards_) {
    log_.insert(log_.end(), sh->spike_log_.begin(), sh->spike_log_.end());
  }
  std::sort(log_.begin(), log_.end());

  if (absorb_probes && probe_ != nullptr) {
    std::vector<const obs::Probe*> parts;
    parts.reserve(shard_probes_.size());
    for (const auto& p : shard_probes_) parts.push_back(p.get());
    probe_->absorb_shards(parts);
  }
}

void ParallelSimulator::clear_shared_slots() {
  // A run that stopped at a terminal or the horizon can leave undelivered
  // arrivals parked in the shared ring (exactly as the mailbox engine
  // leaves undrained mail); reset() discards both the same way. O(occupied
  // slots) — single-threaded, plain loads/stores through the atomics.
  if (atom_slots_ == 0) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t local_n = split_.shards[s].num_neurons();
    const std::size_t my_words = (local_n + 63) >> 6;
    for (std::size_t w = 0; w < occ_words_; ++w) {
      std::uint64_t word =
          atom_occ_[s * occ_words_ + w].load(std::memory_order_relaxed);
      if (word == 0) continue;
      atom_occ_[s * occ_words_ + w].store(0, std::memory_order_relaxed);
      while (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (std::size_t wi = 0; wi < my_words; ++wi) {
          std::atomic<std::uint64_t>& tw =
              atom_touched_[slot * slot_words_ + word_base_[s] + wi];
          std::uint64_t tword = tw.load(std::memory_order_relaxed);
          if (tword == 0) continue;
          tw.store(0, std::memory_order_relaxed);
          while (tword != 0) {
            const std::size_t local =
                (wi << 6) + static_cast<std::size_t>(std::countr_zero(tword));
            tword &= tword - 1;
            const std::size_t e = slot * slot_entries_ + entry_base_[s] + local;
            atom_weight_[e].store(0, std::memory_order_relaxed);
            atom_count_[e].store(0, std::memory_order_relaxed);
          }
        }
      }
    }
  }
}

void ParallelSimulator::reset() {
  for (const auto& sh : shards_) sh->reset();
  for (int p = 0; p < 2; ++p) {
    for (auto& box : mail_[p]) box.clear();
  }
  clear_shared_slots();
  steals_ = 0;
  skew_max_ = 0.0;
  use_atomic_cross_ = false;
  shard_probes_.clear();
  log_.clear();
  stats_ = SimStats{};
  base_ = SimStats{};
  terminals_remaining_ = 0;
  terminal_fired_ = false;
  done_ = false;
  first_plan_ = true;
  parity_ = 0;
  max_time_ = kNever;
  error_ = nullptr;
  ran_ = false;
  paused_ = false;
  pause_time_ = kNever;
  pause_floor_ = 0;
}

std::vector<std::uint8_t> ParallelSimulator::snapshot() const {
  obs::ScopedTimer timer(obs::thread_metrics(), "snap.snapshot_ns");
  SnapshotImage img;
  build_image(&img);
  std::vector<std::uint8_t> bytes = serialize_snapshot(img);
  if (obs::MetricsRegistry* m = obs::thread_metrics()) {
    m->add("snap.snapshots");
    m->add("snap.bytes", bytes.size());
  }
  return bytes;
}

void ParallelSimulator::build_image(SnapshotImage* img) const {
  img->num_neurons = net_->num_neurons();
  img->num_synapses = net_->num_synapses();
  img->max_delay = net_->max_delay();
  img->widths = net_->storage_widths();
  img->mid_run = ran_;
  // Recording flags live in the shards (uniform across them by
  // construction); a never-run simulator has the defaults, exactly like a
  // fresh serial engine.
  const Shard* s0 = shards_.empty() ? nullptr : shards_[0].get();
  img->record_causes = s0 != nullptr && s0->record_causes_;
  img->record_log = s0 != nullptr && s0->record_log_;
  img->watch_all = s0 != nullptr && s0->watch_all_;
  img->terminal_fired = terminal_fired_;
  img->max_time = max_time_;
  img->resume_floor =
      paused_ ? pause_floor_ : (ran_ ? stats_.end_time + 1 : 0);
  img->terminals_remaining = terminals_remaining_;
  for (const auto& sh : shards_) {
    for (const NeuronId lid : sh->active_terminals_) {
      img->terminals.push_back(sh->csr->global_ids[lid]);
    }
    for (const NeuronId lid : sh->active_watched_) {
      img->watched.push_back(sh->csr->global_ids[lid]);
    }
  }
  std::sort(img->terminals.begin(), img->terminals.end());
  std::sort(img->watched.begin(), img->watched.end());

  // Per-neuron state: each shard's dirty list, mapped to global ids and
  // merged into the id-sorted order the format requires.
  for (const auto& sh : shards_) {
    for (const NeuronId lid : sh->dirty_) {
      SnapshotNeuron e;
      e.id = sh->csr->global_ids[lid];
      e.v = sh->v_[lid];
      e.last_update = sh->last_update_[lid];
      e.first_spike = sh->first_spike_[lid];
      e.last_spike = sh->last_spike_[lid];
      e.spike_count = sh->spike_count_[lid];
      e.cause = sh->cause_[lid];
      img->neurons.push_back(e);
    }
  }
  std::sort(img->neurons.begin(), img->neurons.end(),
            [](const SnapshotNeuron& a, const SnapshotNeuron& b) {
              return a.id < b.id;
            });

  // Pending events: merge every shard's ring + spill into one global
  // time-ascending sequence. At a pause the mailboxes are already folded
  // into the shard queues (plan_next_window's pause path), so this IS the
  // complete pending set. In-bucket order is shard-index order, which is
  // deterministic for a given partition; delivery order inside a bucket is
  // semantically order-free (docs/PERSISTENCE.md).
  std::map<Time, SnapshotBucket> pending;
  const bool causes = img->record_causes;
  for (const auto& sh : shards_) {
    const auto add_bucket = [&](Time t, const Shard::Bucket& bucket) {
      SnapshotBucket& b = pending[t];
      b.time = t;
      for (const NeuronId lid : bucket.forced) {
        b.forced.push_back(sh->csr->global_ids[lid]);
      }
      for (std::size_t i = 0; i < bucket.targets.size(); ++i) {
        SnapshotDelivery d;
        d.target = sh->csr->global_ids[bucket.targets[i]];
        d.weight = bucket.weights[i];
        if (causes) d.source = bucket.sources[i];  // already global
        b.deliveries.push_back(d);
      }
    };
    for (std::size_t w = 0; w < sh->ring_occupied_.size(); ++w) {
      std::uint64_t word = sh->ring_occupied_[w];
      while (word != 0) {
        const std::size_t slot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        const std::size_t start =
            static_cast<std::size_t>((sh->cursor_ + 1) & sh->ring_mask_);
        const std::size_t offset =
            (slot - start) & static_cast<std::size_t>(sh->ring_mask_);
        add_bucket(sh->cursor_ + 1 + static_cast<Time>(offset),
                   sh->ring_[slot]);
      }
    }
    for (const auto& [t, bucket] : sh->spill_) add_bucket(t, bucket);
  }
  img->queue.reserve(pending.size());
  for (auto& [t, bucket] : pending) img->queue.push_back(std::move(bucket));

  img->log = log_;
  img->stats = stats_;
}

void ParallelSimulator::restore(const std::uint8_t* data, std::size_t size) {
  obs::ScopedTimer timer(obs::thread_metrics(), "snap.restore_ns");
  // ALL-OR-NOTHING, as in Simulator::restore: parse + validate throw
  // before the first mutation.
  const SnapshotImage img = parse_snapshot(data, size);
  validate_snapshot_for(img, *net_);
  apply_image(img);
  if (obs::MetricsRegistry* m = obs::thread_metrics()) {
    m->add("snap.restores");
  }
}

void ParallelSimulator::apply_image(const SnapshotImage& img) {
  reset();
  const Partition& part = split_.partition;
  for (const auto& sh : shards_) {
    sh->record_causes_ = img.record_causes;
    sh->record_log_ = img.record_log;
    sh->watch_all_ = img.watch_all;
  }
  max_time_ = img.max_time;
  for (const NeuronId t : img.terminals) {
    Shard& sh = *shards_[part.shard_of[t]];
    const NeuronId lid = part.local_index[t];
    sh.is_terminal_[lid] = 1;
    sh.active_terminals_.push_back(lid);
  }
  for (const NeuronId w : img.watched) {
    Shard& sh = *shards_[part.shard_of[w]];
    const NeuronId lid = part.local_index[w];
    sh.is_watched_[lid] = 1;
    sh.active_watched_.push_back(lid);
  }
  terminals_remaining_ = img.terminals_remaining;
  terminal_fired_ = img.terminal_fired;

  // Scatter pending events to their owning shards through the normal
  // queue path (ring vs spill follows each shard's own geometry).
  for (const SnapshotBucket& b : img.queue) {
    for (const NeuronId f : b.forced) {
      Shard& sh = *shards_[part.shard_of[f]];
      sh.bucket_for(b.time, 1).forced.push_back(part.local_index[f]);
    }
    for (const SnapshotDelivery& d : b.deliveries) {
      Shard& sh = *shards_[part.shard_of[d.target]];
      Shard::Bucket& bk = sh.bucket_for(b.time, 1);
      bk.targets.push_back(part.local_index[d.target]);
      bk.weights.push_back(d.weight);
      if (img.record_causes) bk.sources.push_back(d.source);
    }
  }
  // The re-enqueue above ran through bucket_for/activate, which bump
  // per-shard artifact counters; zero them so the post-restore deltas the
  // shards accumulate start clean (base_ carries the image's cumulative
  // totals — see finalize_run).
  for (const auto& sh : shards_) {
    sh->peak_queue_events_ = 0;
    sh->overflow_spills_ = 0;
    sh->pool_hits_ = 0;
    sh->pool_misses_ = 0;
  }

  for (const SnapshotNeuron& e : img.neurons) {
    Shard& sh = *shards_[part.shard_of[e.id]];
    const NeuronId lid = part.local_index[e.id];
    sh.touch_state(lid);
    sh.v_[lid] = e.v;
    sh.last_update_[lid] = e.last_update;
    sh.first_spike_[lid] = e.first_spike;
    sh.last_spike_[lid] = e.last_spike;
    sh.spike_count_[lid] = e.spike_count;
    sh.cause_[lid] = e.cause;  // global id, stored as-is
  }

  // The merged log lives here; shard logs stay empty (finalize_run
  // concatenates shard logs onto an empty log_, so seed the restored
  // history into ONE shard to keep the rebuild correct).
  log_ = img.log;
  if (!shards_.empty()) shards_[0]->spike_log_ = img.log;

  base_ = img.stats;
  stats_ = img.stats;
  // Engine-specific fields reflect the LIVE engine, not the source's.
  stats_.ring_buckets =
      shards_.empty() ? 0
                      : static_cast<std::uint32_t>(shards_[0]->ring_.size());
  stats_.csr_bytes = 0;  // the parallel engine does not report CSR bytes
  stats_.storage_encoding = encoding_code(net_->storage_widths());
  base_.ring_buckets = stats_.ring_buckets;
  base_.csr_bytes = 0;
  base_.storage_encoding = stats_.storage_encoding;
  ran_ = img.mid_run;
  paused_ = img.mid_run && img.stats.paused;
  pause_floor_ = img.resume_floor;
  pause_time_ = kNever;
}

Time ParallelSimulator::first_spike(NeuronId id) const {
  SGA_REQUIRE(id < net_->num_neurons(), "first_spike: bad neuron " << id);
  const Partition& p = split_.partition;
  return shards_[p.shard_of[id]]->first_spike_[p.local_index[id]];
}

std::vector<Time> ParallelSimulator::first_spikes() const {
  std::vector<Time> out(net_->num_neurons(), kNever);
  for (NeuronId id = 0; id < out.size(); ++id) out[id] = first_spike(id);
  return out;
}

Time ParallelSimulator::last_spike(NeuronId id) const {
  SGA_REQUIRE(id < net_->num_neurons(), "last_spike: bad neuron " << id);
  const Partition& p = split_.partition;
  return shards_[p.shard_of[id]]->last_spike_[p.local_index[id]];
}

std::uint32_t ParallelSimulator::spike_count(NeuronId id) const {
  SGA_REQUIRE(id < net_->num_neurons(), "spike_count: bad neuron " << id);
  const Partition& p = split_.partition;
  return shards_[p.shard_of[id]]->spike_count_[p.local_index[id]];
}

NeuronId ParallelSimulator::first_spike_cause(NeuronId id) const {
  SGA_REQUIRE(id < net_->num_neurons(),
              "first_spike_cause: bad neuron " << id);
  const Partition& p = split_.partition;
  return shards_[p.shard_of[id]]->cause_[p.local_index[id]];
}

Voltage ParallelSimulator::potential(NeuronId id) const {
  SGA_REQUIRE(id < net_->num_neurons(), "potential: bad neuron " << id);
  const Partition& p = split_.partition;
  return shards_[p.shard_of[id]]->v_[p.local_index[id]];
}

}  // namespace sga::snn
