#include "snn/reference_sim.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace sga::snn {

ReferenceSimulator::ReferenceSimulator(const Network& net) : net_(net) {
  const std::size_t n = net.num_neurons();
  v_.resize(n);
  last_update_.assign(n, 0);
  first_spike_.assign(n, kNever);
  last_spike_.assign(n, kNever);
  accum_.assign(n, 0);
  touched_.assign(n, 0);
  is_terminal_.assign(n, 0);
  is_watched_.assign(n, 0);
  for (NeuronId i = 0; i < n; ++i) v_[i] = net.params(i).v_reset;
}

void ReferenceSimulator::inject_spike(NeuronId id, Time t) {
  SGA_REQUIRE(id < net_.num_neurons(), "inject_spike: bad neuron " << id);
  SGA_REQUIRE(t >= 0, "inject_spike: negative time " << t);
  SGA_REQUIRE(!ran_, "ReferenceSimulator is one-shot");
  queue_[t].forced.push_back(id);
}

Voltage ReferenceSimulator::decayed_potential(NeuronId id, Time t) const {
  const NeuronParams& p = net_.params(id);
  const Time dt = t - last_update_[id];
  SGA_CHECK(dt >= 0, "time went backwards for neuron " << id);
  if (dt == 0 || p.tau == 0.0) return v_[id];
  if (p.tau == 1.0) return p.v_reset;
  return p.v_reset + (v_[id] - p.v_reset) * std::pow(1.0 - p.tau,
                                                     static_cast<double>(dt));
}

void ReferenceSimulator::fire(NeuronId id, Time t) {
  const bool first_fire = first_spike_[id] == kNever;
  v_[id] = net_.params(id).v_reset;
  last_update_[id] = t;
  ++stats_.spikes;
  if (first_fire) first_spike_[id] = t;
  last_spike_[id] = t;
  if (record_log_ && (watch_all_ || is_watched_[id])) {
    spike_log_.emplace_back(t, id);
  }
  if (is_terminal_[id] && !terminal_fired_ && first_fire) {
    --terminals_remaining_;
    if (terminals_remaining_ == 0) {
      terminal_fired_ = true;
      stats_.hit_terminal = true;
      stats_.execution_time = t;
    }
  }
  // Nested-vector fan-out: one heap-allocated vector per neuron.
  for (const Synapse& s : net_.out_synapses(id)) {
    if (s.delay > max_time_ - t) {
      stats_.hit_time_limit = true;
      continue;
    }
    queue_[t + s.delay].deliveries.push_back(Delivery{s.target, s.weight});
  }
}

SimStats ReferenceSimulator::run(const SimConfig& config) {
  SGA_REQUIRE(!ran_, "ReferenceSimulator::run is one-shot");
  SGA_REQUIRE(!config.record_causes,
              "ReferenceSimulator does not implement cause recording");
  ran_ = true;
  record_log_ = config.record_spike_log;
  max_time_ = config.max_time;
  std::uint64_t distinct_terminals = 0;
  for (const NeuronId t : config.terminal_neurons) {
    SGA_REQUIRE(t < net_.num_neurons(), "bad terminal neuron " << t);
    if (!is_terminal_[t]) {
      is_terminal_[t] = 1;
      ++distinct_terminals;
    }
  }
  terminals_remaining_ =
      config.terminate_on_all ? distinct_terminals
                              : std::min<std::uint64_t>(1, distinct_terminals);
  watch_all_ = config.watched_neurons.empty();
  for (const NeuronId w : config.watched_neurons) {
    SGA_REQUIRE(w < net_.num_neurons(), "bad watched neuron " << w);
    is_watched_[w] = 1;
  }

  std::vector<NeuronId>& targets = targets_scratch_;
  while (!queue_.empty()) {
    const auto it = queue_.begin();
    const Time t = it->first;
    if (t > max_time_) {
      stats_.hit_time_limit = true;
      break;
    }
    // Map nodes are reference-stable, and every delay is ≥ 1, so draining
    // this bucket in place is safe.
    Bucket& bucket = it->second;
    ++stats_.event_times;
    stats_.end_time = t;

    targets.clear();
    for (const Delivery& d : bucket.deliveries) {
      ++stats_.deliveries;
      if (!touched_[d.target]) {
        touched_[d.target] = 1;
        targets.push_back(d.target);
        accum_[d.target] = 0;
      }
      accum_[d.target] += d.weight;
    }

    for (const NeuronId id : bucket.forced) {
      if (last_spike_[id] == t) continue;
      fire(id, t);
      if (touched_[id]) {
        accum_[id] = 0;
        touched_[id] = 2;
      }
    }

    for (const NeuronId id : targets) {
      if (touched_[id] == 2) {
        touched_[id] = 0;
        continue;
      }
      touched_[id] = 0;
      const Voltage v_hat = decayed_potential(id, t) + accum_[id];
      if (v_hat >= net_.params(id).v_threshold) {
        fire(id, t);
      } else {
        v_[id] = v_hat;
        last_update_[id] = t;
      }
    }

    queue_.erase(it);
    if (terminal_fired_) break;
  }
  return stats_;
}

Time ReferenceSimulator::first_spike(NeuronId id) const {
  SGA_REQUIRE(id < first_spike_.size(), "first_spike: bad neuron " << id);
  return first_spike_[id];
}

}  // namespace sga::snn
