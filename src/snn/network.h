// Spiking neural network structure (Definition 3): a directed, possibly
// cyclic multigraph of LIF neurons with weighted, delayed synapses, plus
// named neuron groups used as input/output ports by circuits and algorithms.
//
// Network is the MUTABLE BUILDER half of the two-phase pipeline
// (ARCHITECTURE.md §1.3): circuits and algorithm compilers grow it with
// add_neuron / add_synapse / define_group, then freeze it once with
// compile(), which validates the construction and packs it into the
// immutable, CSR-laid-out snn::CompiledNetwork the simulator runs on.
// Mutation ends at that freeze point.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.h"
#include "core/types.h"
#include "snn/neuron.h"
#include "snn/storage.h"

namespace sga::snn {

class CompiledNetwork;

class Network {
 public:
  /// Add a neuron; returns its id. Threshold test is v̂ ≥ v_threshold.
  NeuronId add_neuron(NeuronParams p = {});

  /// Convenience: neuron with given threshold, reset 0, no decay — the
  /// default configuration of every circuit in Section 5.
  NeuronId add_threshold_neuron(Voltage threshold) {
    return add_neuron(NeuronParams{0, threshold, 0.0});
  }

  /// Add a synapse from -> to. Delay must be ≥ kMinDelay (δ); zero-delay
  /// synapses are prohibited (Section 2.2).
  void add_synapse(NeuronId from, NeuronId to, SynWeight weight,
                   Delay delay = kMinDelay);

  std::size_t num_neurons() const { return params_.size(); }
  std::size_t num_synapses() const { return num_synapses_; }

  /// Largest synapse delay in the network (0 when there are no synapses).
  /// The simulator sizes its calendar-queue ring window from this.
  Delay max_delay() const { return max_delay_; }

  const NeuronParams& params(NeuronId id) const {
    SGA_REQUIRE(id < params_.size(), "neuron id out of range: " << id);
    return params_[id];
  }

  /// Builder-side introspection of a neuron's out-synapses (insertion
  /// order). Construction-time only: the simulator runs on the flat CSR
  /// arrays of a CompiledNetwork, never on these nested vectors.
  std::span<const Synapse> out_synapses(NeuronId id) const {
    SGA_REQUIRE(id < out_.size(), "neuron id out of range: " << id);
    return out_[id];
  }

  /// Total in-weight a neuron can receive in one step if every presynaptic
  /// neuron fires once; used to size inhibitory "fire-once" weights.
  /// O(1): maintained incrementally by add_synapse.
  SynWeight positive_in_weight(NeuronId id) const {
    SGA_REQUIRE(id < pos_in_weight_.size(),
                "positive_in_weight: bad id " << id);
    return pos_in_weight_[id];
  }

  /// Freeze: validate the construction (delay ≥ δ, in-range targets, finite
  /// weights, τ ∈ [0, 1], group ids valid, counter consistency) and pack it
  /// into the immutable CSR form the simulator consumes — width-narrowed to
  /// the observed ranges under the default StoragePolicy::kAuto, or at full
  /// width under kWide (snn/storage.h; ARCHITECTURE.md §1.8). The Network
  /// remains usable afterwards — compile again after further mutation for a
  /// new snapshot.
  CompiledNetwork compile(StoragePolicy policy = StoragePolicy::kAuto) const;

  // ---- Named groups (ports) -------------------------------------------
  // Circuits and algorithm builders register the neuron vectors that encode
  // λ-bit messages (Definition 4) under stable names, so tests and probes
  // can find them.

  void define_group(const std::string& name, std::vector<NeuronId> ids);
  bool has_group(const std::string& name) const {
    return groups_.contains(name);
  }
  const std::vector<NeuronId>& group(const std::string& name) const;
  std::vector<std::string> group_names() const;

 private:
  std::vector<NeuronParams> params_;
  std::vector<std::vector<Synapse>> out_;
  std::vector<SynWeight> pos_in_weight_;  ///< incremental Σ positive in-weight
  std::size_t num_synapses_ = 0;
  Delay max_delay_ = 0;
  std::unordered_map<std::string, std::vector<NeuronId>> groups_;
};

}  // namespace sga::snn
