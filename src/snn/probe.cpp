#include "snn/probe.h"

#include "core/error.h"

namespace sga::snn {

std::uint64_t decode_binary_at(const Simulator& sim,
                               const std::vector<NeuronId>& bits, Time t) {
  SGA_REQUIRE(bits.size() <= 63, "decode_binary_at: too many bits");
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < bits.size(); ++j) {
    if (sim.fired_at(bits[j], t)) value |= 1ULL << j;
  }
  return value;
}

std::uint64_t decode_binary_window(const Simulator& sim,
                                   const std::vector<NeuronId>& bits, Time t0,
                                   Time t1) {
  SGA_REQUIRE(bits.size() <= 63, "decode_binary_window: too many bits");
  SGA_REQUIRE(t0 <= t1, "decode_binary_window: empty window");
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < bits.size(); ++j) {
    // fired_in falls back to the spike log when first/last spike times are
    // inconclusive (first before t0 AND last after t1 — a bit that fired
    // around the window may still have fired inside it).
    if (sim.fired_in(bits[j], t0, t1)) value |= 1ULL << j;
  }
  return value;
}

void inject_binary(Simulator& sim, const std::vector<NeuronId>& bits,
                   std::uint64_t value, Time t) {
  SGA_REQUIRE(bits.size() <= 63, "inject_binary: too many bits");
  // Shift-safe range check: bits.size() ≤ 63 keeps the shift defined, and
  // the quotient form covers the full 63-bit boundary (1ULL << 63 would
  // have been accepted — and bit 63 silently dropped — by the old
  // `size == 63 || value < (1ULL << size)` test).
  SGA_REQUIRE(bits.size() >= 64 || (value >> bits.size()) == 0,
              "inject_binary: value " << value << " does not fit in "
                                      << bits.size() << " bits");
  for (std::size_t j = 0; j < bits.size(); ++j) {
    if ((value >> j) & 1ULL) sim.inject_spike(bits[j], t);
  }
}

std::vector<Time> first_spike_times(const Simulator& sim,
                                    const std::vector<NeuronId>& ids) {
  std::vector<Time> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(sim.first_spike(id));
  return out;
}

std::uint64_t total_spikes(const Simulator& sim,
                           const std::vector<NeuronId>& ids) {
  std::uint64_t total = 0;
  for (const auto id : ids) total += sim.spike_count(id);
  return total;
}

}  // namespace sga::snn
