#include "snn/probe.h"

#include "core/error.h"

namespace sga::snn {

std::uint64_t decode_binary_at(const Simulator& sim,
                               const std::vector<NeuronId>& bits, Time t) {
  SGA_REQUIRE(bits.size() <= 63, "decode_binary_at: too many bits");
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < bits.size(); ++j) {
    if (sim.fired_at(bits[j], t)) value |= 1ULL << j;
  }
  return value;
}

std::uint64_t decode_binary_window(const Simulator& sim,
                                   const std::vector<NeuronId>& bits, Time t0,
                                   Time t1) {
  SGA_REQUIRE(bits.size() <= 63, "decode_binary_window: too many bits");
  SGA_REQUIRE(t0 <= t1, "decode_binary_window: empty window");
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < bits.size(); ++j) {
    const Time f = sim.first_spike(bits[j]);
    const Time l = sim.last_spike(bits[j]);
    const bool fired_in_window =
        (f != kNever && f >= t0 && f <= t1) || (l != kNever && l >= t0 && l <= t1);
    if (fired_in_window) value |= 1ULL << j;
  }
  return value;
}

void inject_binary(Simulator& sim, const std::vector<NeuronId>& bits,
                   std::uint64_t value, Time t) {
  SGA_REQUIRE(bits.size() <= 63, "inject_binary: too many bits");
  SGA_REQUIRE(bits.size() == 63 || value < (1ULL << bits.size()),
              "inject_binary: value " << value << " does not fit in "
                                      << bits.size() << " bits");
  for (std::size_t j = 0; j < bits.size(); ++j) {
    if ((value >> j) & 1ULL) sim.inject_spike(bits[j], t);
  }
}

std::vector<Time> first_spike_times(const Simulator& sim,
                                    const std::vector<NeuronId>& ids) {
  std::vector<Time> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(sim.first_spike(id));
  return out;
}

std::uint64_t total_spikes(const Simulator& sim,
                           const std::vector<NeuronId>& ids) {
  std::uint64_t total = 0;
  for (const auto id : ids) total += sim.spike_count(id);
  return total;
}

}  // namespace sga::snn
