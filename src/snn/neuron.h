// LIF neuron parameters (Definitions 1–2 of the paper).
//
// Dynamics implemented by snn::Simulator, with the two documented
// conventions from DESIGN.md §1:
//   v̂(t) = v(t-1) - (v(t-1) - v_reset)·τ + Σ_i f_i(t - d_ij)·w_ij
//   f(t) = 1  iff  v̂(t) ≥ v_threshold        (fires)
//   v(t) = v_reset if f(t) else v̂(t)
// i.e. a spike fired at time s over a synapse with delay d participates in
// the target's firing decision at time s + d, and the threshold test is ≥.
#pragma once

#include <cmath>
#include <string>

#include "core/types.h"

namespace sga::snn {

struct NeuronParams {
  Voltage v_reset = 0;      ///< r_u in Definition 3
  Voltage v_threshold = 1;  ///< t_u in Definition 3
  double tau = 0.0;         ///< decay τ ∈ [0, 1]; 0 = perfect integrator,
                            ///< 1 = memoryless threshold gate
};

/// Potential of a neuron that last had value `v`, `dt` steps ago, after
/// applying the per-step leak v ← v − (v − v_reset)·τ closed-form. The two
/// boundary settings dominate the circuit library, so they bypass `pow`:
/// τ = 0 is the perfect integrator (no leak at all) and τ = 1 the memoryless
/// gate (everything leaks to v_reset after one step). Exactly equal to
/// `decay_potential_general` for all τ ∈ [0, 1] — pinned by the
/// DecayFastPathsMatchGeneralFormula property test.
inline Voltage decay_potential(Voltage v, Voltage v_reset, double tau,
                               Time dt) {
  if (dt == 0 || tau == 0.0) return v;
  if (tau == 1.0) return v_reset;
  return v_reset + (v - v_reset) * std::pow(1.0 - tau, static_cast<double>(dt));
}

/// The unconditional closed form, kept as the property-test oracle for the
/// fast paths above (pow(1,dt) = 1 and pow(0,dt) = 0 for dt ≥ 1 make the
/// special cases exact, not approximate).
inline Voltage decay_potential_general(Voltage v, Voltage v_reset, double tau,
                                       Time dt) {
  return v_reset + (v - v_reset) * std::pow(1.0 - tau, static_cast<double>(dt));
}

/// A directed synaptic connection out of some neuron (Definition 1).
struct Synapse {
  NeuronId target = kNoNeuron;
  SynWeight weight = 1;
  Delay delay = kMinDelay;  ///< integer multiple of δ = 1; must be ≥ 1
};

}  // namespace sga::snn
