// LIF neuron parameters (Definitions 1–2 of the paper).
//
// Dynamics implemented by snn::Simulator, with the two documented
// conventions from DESIGN.md §1:
//   v̂(t) = v(t-1) - (v(t-1) - v_reset)·τ + Σ_i f_i(t - d_ij)·w_ij
//   f(t) = 1  iff  v̂(t) ≥ v_threshold        (fires)
//   v(t) = v_reset if f(t) else v̂(t)
// i.e. a spike fired at time s over a synapse with delay d participates in
// the target's firing decision at time s + d, and the threshold test is ≥.
#pragma once

#include <string>

#include "core/types.h"

namespace sga::snn {

struct NeuronParams {
  Voltage v_reset = 0;      ///< r_u in Definition 3
  Voltage v_threshold = 1;  ///< t_u in Definition 3
  double tau = 0.0;         ///< decay τ ∈ [0, 1]; 0 = perfect integrator,
                            ///< 1 = memoryless threshold gate
};

/// A directed synaptic connection out of some neuron (Definition 1).
struct Synapse {
  NeuronId target = kNoNeuron;
  SynWeight weight = 1;
  Delay delay = kMinDelay;  ///< integer multiple of δ = 1; must be ≥ 1
};

}  // namespace sga::snn
