// SNN → threshold-circuit unrolling (the Section-1 observation: "SNNs where
// spike times are discretized may be simulated, with polynomial overhead,
// in TC by using layers of a threshold gate circuit to simulate discrete
// time steps").
//
// For a network of memoryless (τ = 1) neurons — i.e. genuine threshold
// gates — the unrolling is exact and direct: one gate per (neuron, time
// step), with gate (j, t) receiving weight w_ij from gate (i, t − d_ij).
// That is n·T gates for horizon T: the polynomial overhead. The "care"
// the paper mentions for general LIF (τ < 1: membrane state and resets
// couple a gate's output to its whole firing history) is out of scope
// here, and the builder rejects such networks.
#pragma once

#include <vector>

#include "core/types.h"
#include "snn/compiled_network.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::snn {

struct UnrolledCircuit {
  /// The feed-forward network of (neuron, step) gates.
  Network circuit;
  /// gate(j, t) for t in [1, horizon]; layer(t)[j] is the gate's id.
  /// Layer t fires (when the unrolled circuit is run with the inputs
  /// injected at time 0 … see below) iff neuron j fires at step t in the
  /// recurrent network.
  std::vector<std::vector<NeuronId>> layers;
  /// Input gates: injection (j, t) is realised by forcing input_of(j, t).
  /// Same indexing as layers (t from 1; injections at t=0 map to the
  /// dedicated layer-0 inputs below).
  std::vector<NeuronId> layer0;  ///< inputs representing spikes at t = 0
  Time horizon = 0;
};

/// Unroll a frozen `net` (all neurons must have τ = 1 and v_reset = 0) to
/// horizon T. In the unrolled circuit, the gate for (j, t) sits at
/// simulation time t (synapse delays are preserved), so running the circuit
/// and the original network produce identical (time, neuron) spike sets.
/// The produced `circuit` is itself a builder; run_unrolled freezes it.
UnrolledCircuit unroll_to_threshold_circuit(const CompiledNetwork& net,
                                            Time horizon);

/// Run the unrolled circuit on a set of injections (neuron, time) and
/// return the recovered spike set of the ORIGINAL network's neurons, as
/// (time, neuron) pairs sorted ascending.
std::vector<std::pair<Time, NeuronId>> run_unrolled(
    const UnrolledCircuit& uc,
    const std::vector<std::pair<NeuronId, Time>>& injections);

}  // namespace sga::snn
