// SNN serialization: a stable, human-readable text format for compiled
// networks (neurons, synapses, named groups), so networks built by the
// algorithm compilers can be exported to hardware toolchains or re-loaded
// without re-compiling the graph.
//
// Format (whitespace-separated, '#' comments):
//   snn 2                      header + version
//   storage <narrow|wide> target <u16|u32> delay <u8|u16|i64> weight <f32|f64>
//   neurons N
//   n <reset> <threshold> <tau>          × N, in id order
//   synapses M
//   s <from> <to> <weight> <delay>       × M
//   groups G
//   g <name> <k> <id...>                 × G
//
// The storage line (new in version 2) records the frozen widths of the
// source network (ARCHITECTURE.md §1.8). Readers use it two ways: the
// declared target width bounds the plausible neuron/synapse counts of an
// untrusted file (a "target u16" file claiming 10^6 neurons is rejected as
// a CountLimitError before any parse loop runs), and read_compiled_network
// re-freezes under the declared policy, so a wide artifact stays wide.
// Version-1 files (no storage line) remain readable under the legacy 2^30
// count ceiling and freeze under the default kAuto policy.
//
// Version 3 (new with the packed encoding, ARCHITECTURE.md §1.11) is
// emitted ONLY for packed artifacts and carries the encoded columns as
// encoded — no per-synapse lines, so a scale network round trips without
// a wide intermediate:
//   snn 3
//   storage packed target u32 delay <u8|u16> weight <f32|f64>
//   neurons N  /  n <reset> <threshold> <tau>  × N
//   synapses M
//   segments S
//   rows  /  r <degree> <segment-count>        × N
//   t <delay> <syn-begin>                      × S   (delay runs, flat order)
//   blocks B  /  b <base> <bits>               × B   (B = ceil(M / 64))
//   words W  /  <u32>                          × W   (packed delta words)
//   weights  /  <weight>                       × M
//   groups G  /  g <name> <k> <id...>          × G
// Readers reassemble through CompiledNetwork::from_packed_parts, which
// validates every claimed table (bit widths <= 32, exact per-block word
// sums, sentinel begin column, every decoded target < N) before anything
// is indexed; read_compiled_network then re-runs verify_invariants on the
// result like it does for every other version. Non-packed networks keep
// writing version 2 byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>

#include "core/error.h"
#include "snn/compiled_network.h"
#include "snn/network.h"

namespace sga::snn {

/// Thrown when a count field of a serialized network exceeds the ceiling
/// implied by its declared storage widths (version 2) or the legacy
/// plausibility ceiling (version 1). A subtype of InvalidArgument, so
/// callers that already reject malformed files keep working; carries the
/// offending field, the parsed value, and the ceiling it broke for callers
/// that want to report or log the specific count.
class CountLimitError : public InvalidArgument {
 public:
  CountLimitError(const std::string& field, long long value, long long limit);
  const std::string& field() const { return field_; }
  long long value() const { return value_; }
  long long limit() const { return limit_; }

 private:
  std::string field_;
  long long value_;
  long long limit_;
};

/// Serialize a frozen network. The compiled form is the canonical source:
/// it has already passed the freeze validator, so what is written is a
/// checked network, in CSR (source-id) order.
void write_network(std::ostream& os, const CompiledNetwork& net);

/// Convenience: freeze (validating) and write in one step.
void write_network(std::ostream& os, const Network& net);

/// Parse the write_network format into a mutable builder (callers may wire
/// further structure before freezing). Throws InvalidArgument on malformed
/// or version-mismatched input — neuron parameters, synapse endpoints,
/// delays, and group members are validated as they are added, so a bad or
/// truncated file never yields a half-built network.
Network read_network(std::istream& is);

/// Parse and freeze: the full round-trip counterpart of
/// write_network(os, compiled).
CompiledNetwork read_compiled_network(std::istream& is);

}  // namespace sga::snn
