// SNN serialization: a stable, human-readable text format for compiled
// networks (neurons, synapses, named groups), so networks built by the
// algorithm compilers can be exported to hardware toolchains or re-loaded
// without re-compiling the graph.
//
// Format (whitespace-separated, '#' comments):
//   snn 1                      header + version
//   neurons N
//   n <reset> <threshold> <tau>          × N, in id order
//   synapses M
//   s <from> <to> <weight> <delay>       × M
//   groups G
//   g <name> <k> <id...>                 × G
#pragma once

#include <iosfwd>

#include "snn/compiled_network.h"
#include "snn/network.h"

namespace sga::snn {

/// Serialize a frozen network. The compiled form is the canonical source:
/// it has already passed the freeze validator, so what is written is a
/// checked network, in CSR (source-id) order.
void write_network(std::ostream& os, const CompiledNetwork& net);

/// Convenience: freeze (validating) and write in one step.
void write_network(std::ostream& os, const Network& net);

/// Parse the write_network format into a mutable builder (callers may wire
/// further structure before freezing). Throws InvalidArgument on malformed
/// or version-mismatched input — neuron parameters, synapse endpoints,
/// delays, and group members are validated as they are added, so a bad or
/// truncated file never yields a half-built network.
Network read_network(std::istream& is);

/// Parse and freeze: the full round-trip counterpart of
/// write_network(os, compiled).
CompiledNetwork read_compiled_network(std::istream& is);

}  // namespace sga::snn
