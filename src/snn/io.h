// SNN serialization: a stable, human-readable text format for compiled
// networks (neurons, synapses, named groups), so networks built by the
// algorithm compilers can be exported to hardware toolchains or re-loaded
// without re-compiling the graph.
//
// Format (whitespace-separated, '#' comments):
//   snn 1                      header + version
//   neurons N
//   n <reset> <threshold> <tau>          × N, in id order
//   synapses M
//   s <from> <to> <weight> <delay>       × M
//   groups G
//   g <name> <k> <id...>                 × G
#pragma once

#include <iosfwd>

#include "snn/network.h"

namespace sga::snn {

void write_network(std::ostream& os, const Network& net);

/// Parse the write_network format. Throws InvalidArgument on malformed or
/// version-mismatched input.
Network read_network(std::istream& is);

}  // namespace sga::snn
