// Read-out helpers: decode the firing state of neuron groups into integers.
//
// Definition 3 reads output neurons at the termination time T; circuits
// encode λ-bit binary numbers across λ output neurons (index 0 = least
// significant bit). These helpers centralize that decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "snn/simulator.h"

namespace sga::snn {

/// Value encoded by `bits` (LSB first) at exactly time t: bit j contributes
/// 2^j iff neuron bits[j] fired at t.
std::uint64_t decode_binary_at(const Simulator& sim,
                               const std::vector<NeuronId>& bits, Time t);

/// Value encoded by the bits' firing anywhere in [t0, t1]. First/last spike
/// times decide most bits; a bit that fired both before t0 and after t1 is
/// resolved from the spike log (requires record_spike_log with the bit
/// watched — Simulator::fired_in throws otherwise instead of guessing).
std::uint64_t decode_binary_window(const Simulator& sim,
                                   const std::vector<NeuronId>& bits, Time t0,
                                   Time t1);

/// Encode `value` by injecting spikes into `bits` (LSB first) at time t.
/// Requires value < 2^bits.size().
void inject_binary(Simulator& sim, const std::vector<NeuronId>& bits,
                   std::uint64_t value, Time t);

/// First-spike times of a group (kNever where silent).
std::vector<Time> first_spike_times(const Simulator& sim,
                                    const std::vector<NeuronId>& ids);

/// Total spikes across a group.
std::uint64_t total_spikes(const Simulator& sim,
                           const std::vector<NeuronId>& ids);

}  // namespace sga::snn
