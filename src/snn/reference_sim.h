// Nested-vector reference simulator: the pre-CSR execution model, kept as
// a living artifact for two jobs.
//
//   1. Agreement oracle. It runs directly on the MUTABLE snn::Network —
//      chasing the per-neuron std::vector<Synapse> on every fired neuron,
//      std::map bucket queue — with step semantics identical to
//      snn::Simulator (same per-step delivery aggregation, forced-spike
//      handling, closed-form leak, horizon rules). test_fuzz_agreement
//      asserts spike-trace equality of this interpreter, the CSR simulator
//      with the map queue, and the CSR simulator with the calendar queue,
//      which is what certifies the compile()/CSR rewrite preserved
//      semantics.
//   2. Ablation baseline. bench_simulator measures it against the CSR
//      simulator on the same workload, so the flat-layout win is a number,
//      not an assertion.
//
// It is intentionally NOT an entry point for algorithms: everything
// production-facing consumes a CompiledNetwork.
#pragma once

#include <map>
#include <vector>

#include "core/types.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::snn {

/// Minimal event-driven LIF interpreter over a Network's nested synapse
/// vectors. One-shot: construct, inject, run once.
class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(const Network& net);

  void inject_spike(NeuronId id, Time t);

  /// Same contract as Simulator::run for the fields it fills: spikes,
  /// deliveries, event_times, end_time, execution_time, hit_terminal,
  /// hit_time_limit (queue-level counters stay 0 — they are a property of
  /// the production queues).
  SimStats run(const SimConfig& config = {});

  Time first_spike(NeuronId id) const;
  const std::vector<Time>& first_spikes() const { return first_spike_; }
  const std::vector<std::pair<Time, NeuronId>>& spike_log() const {
    return spike_log_;
  }

 private:
  struct Delivery {
    NeuronId target;
    SynWeight weight;
  };
  struct Bucket {
    std::vector<Delivery> deliveries;
    std::vector<NeuronId> forced;
  };

  void fire(NeuronId id, Time t);
  Voltage decayed_potential(NeuronId id, Time t) const;

  const Network& net_;
  bool ran_ = false;
  std::map<Time, Bucket> queue_;

  std::vector<Voltage> v_;
  std::vector<Time> last_update_;
  std::vector<Time> first_spike_;
  std::vector<Time> last_spike_;

  // Per-bucket aggregation scratch, mirroring the production simulator so
  // the bench comparison isolates synapse layout, not loop structure.
  std::vector<SynWeight> accum_;
  std::vector<char> touched_;
  std::vector<NeuronId> targets_scratch_;

  std::vector<char> is_terminal_;
  std::vector<char> is_watched_;
  bool watch_all_ = false;
  bool record_log_ = false;
  std::vector<std::pair<Time, NeuronId>> spike_log_;
  SimStats stats_;
  Time max_time_ = kNever;
  std::uint64_t terminals_remaining_ = 0;
  bool terminal_fired_ = false;
};

}  // namespace sga::snn
