#include "snn/io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "core/error.h"

namespace sga::snn {

void write_network(std::ostream& os, const CompiledNetwork& net) {
  // max_digits10 keeps doubles bit-exact across a round trip.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "snn 1\n";
  os << "neurons " << net.num_neurons() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    os << "n " << net.v_reset(i) << ' ' << net.v_threshold(i) << ' '
       << net.tau(i) << '\n';
  }
  os << "synapses " << net.num_synapses() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    for (const Synapse& s : net.out_synapses(i)) {
      os << "s " << i << ' ' << s.target << ' ' << s.weight << ' ' << s.delay
         << '\n';
    }
  }
  const auto names = net.group_names();
  os << "groups " << names.size() << '\n';
  for (const auto& name : names) {
    const auto& ids = net.group(name);
    os << "g " << name << ' ' << ids.size();
    for (const NeuronId id : ids) os << ' ' << id;
    os << '\n';
  }
}

void write_network(std::ostream& os, const Network& net) {
  write_network(os, net.compile());
}

namespace {

void expect_token(std::istream& is, const char* want) {
  std::string tok;
  is >> tok;
  SGA_REQUIRE(static_cast<bool>(is) && tok == want,
              "read_network: expected '" << want << "', got '" << tok << "'");
}

}  // namespace

Network read_network(std::istream& is) {
  expect_token(is, "snn");
  int version = 0;
  is >> version;
  SGA_REQUIRE(static_cast<bool>(is) && version == 1,
              "read_network: unsupported version " << version);

  Network net;
  expect_token(is, "neurons");
  std::size_t n = 0;
  is >> n;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing neuron count");
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "n");
    NeuronParams p;
    is >> p.v_reset >> p.v_threshold >> p.tau;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad neuron " << i);
    net.add_neuron(p);
  }

  expect_token(is, "synapses");
  std::size_t m = 0;
  is >> m;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing synapse count");
  for (std::size_t i = 0; i < m; ++i) {
    expect_token(is, "s");
    NeuronId from = 0, to = 0;
    SynWeight w = 0;
    Delay d = 0;
    is >> from >> to >> w >> d;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad synapse " << i);
    SGA_REQUIRE(from < n && to < n,
                "read_network: synapse " << i << " endpoint out of range");
    net.add_synapse(from, to, w, d);
  }

  expect_token(is, "groups");
  std::size_t g = 0;
  is >> g;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing group count");
  for (std::size_t i = 0; i < g; ++i) {
    expect_token(is, "g");
    std::string name;
    std::size_t k = 0;
    is >> name >> k;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group header " << i);
    std::vector<NeuronId> ids(k);
    for (auto& id : ids) {
      is >> id;
      SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group member");
    }
    net.define_group(name, std::move(ids));
  }
  return net;
}

CompiledNetwork read_compiled_network(std::istream& is) {
  return read_network(is).compile();
}

}  // namespace sga::snn
