#include "snn/io.h"

#include <cmath>
#include <initializer_list>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "core/error.h"

namespace sga::snn {

CountLimitError::CountLimitError(const std::string& field, long long value,
                                 long long limit)
    : InvalidArgument("read_network: " + field + " " + std::to_string(value) +
                      " exceeds the count ceiling " + std::to_string(limit) +
                      " implied by the declared storage width"),
      field_(field),
      value_(value),
      limit_(limit) {}

namespace {

const char* target_tag(const StorageWidths& w) {
  return w.target_bytes == 2 ? "u16" : "u32";
}
const char* delay_tag(const StorageWidths& w) {
  return w.delay_bytes == 1 ? "u8" : w.delay_bytes == 2 ? "u16" : "i64";
}
const char* weight_tag(const StorageWidths& w) {
  return w.weight_bytes == 4 ? "f32" : "f64";
}

void write_neurons(std::ostream& os, const CompiledNetwork& net) {
  os << "neurons " << net.num_neurons() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    os << "n " << net.v_reset(i) << ' ' << net.v_threshold(i) << ' '
       << net.tau(i) << '\n';
  }
}

void write_groups(std::ostream& os, const CompiledNetwork& net) {
  const auto names = net.group_names();
  os << "groups " << names.size() << '\n';
  for (const auto& name : names) {
    const auto& ids = net.group(name);
    os << "g " << name << ' ' << ids.size();
    for (const NeuronId id : ids) os << ' ' << id;
    os << '\n';
  }
}

/// Version-3 body for a packed artifact: the encoded columns are written
/// AS ENCODED (block table + pack words), never expanded to per-synapse
/// (from, to, weight, delay) lines — a 10^7-synapse packed network round
/// trips without a wide intermediate on either side.
void write_packed_network(std::ostream& os, const CompiledNetwork& net) {
  const StorageWidths& w = net.storage_widths();
  os << "snn 3\n";
  os << "storage packed target " << target_tag(w) << " delay " << delay_tag(w)
     << " weight " << weight_tag(w) << '\n';
  write_neurons(os, net);
  const std::size_t n = net.num_neurons();
  const std::size_t m = net.num_synapses();
  const std::size_t segs = net.num_delay_segments();
  os << "synapses " << m << '\n';
  os << "segments " << segs << '\n';
  os << "rows\n";
  for (NeuronId i = 0; i < n; ++i) {
    os << "r " << net.out_degree(i) << ' '
       << (net.seg_end(i) - net.seg_begin(i)) << '\n';
  }
  for (std::size_t s = 0; s < segs; ++s) {
    os << "t " << net.seg_delay(s) << ' ' << net.seg_syn_begin(s) << '\n';
  }
  std::visit(
      [&os](const auto& st) {
        using Store = std::decay_t<decltype(st)>;
        if constexpr (Store::kPackedLayout) {
          os << "blocks " << st.block_base.size() << '\n';
          for (std::size_t j = 0; j < st.block_base.size(); ++j) {
            os << "b " << st.block_base[j] << ' '
               << static_cast<unsigned>(st.block_bits[j]) << '\n';
          }
          os << "words " << st.pack_words.size() << '\n';
          for (std::size_t i = 0; i < st.pack_words.size(); ++i) {
            os << st.pack_words[i]
               << (i % 8 == 7 || i + 1 == st.pack_words.size() ? '\n' : ' ');
          }
          os << "weights\n";
          for (std::size_t k = 0; k < st.weights.size(); ++k) {
            os << st.weights[k]
               << (k % 8 == 7 || k + 1 == st.weights.size() ? '\n' : ' ');
          }
        } else {
          SGA_CHECK(false, "write_packed_network: store is not packed");
        }
      },
      net.synapse_store());
  write_groups(os, net);
}

}  // namespace

void write_network(std::ostream& os, const CompiledNetwork& net) {
  // max_digits10 keeps doubles bit-exact across a round trip.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  const StorageWidths& w = net.storage_widths();
  if (w.packed) {
    // Packed artifacts need the version-3 body; everything else keeps
    // emitting version 2 byte-for-byte (existing files and the pins in
    // tests/test_snn_io.cpp are unaffected).
    write_packed_network(os, net);
    return;
  }
  os << "snn 2\n";
  os << "storage " << (w.narrow ? "narrow" : "wide") << " target "
     << target_tag(w) << " delay " << delay_tag(w) << " weight "
     << weight_tag(w) << '\n';
  write_neurons(os, net);
  os << "synapses " << net.num_synapses() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    for (const Synapse& s : net.out_synapses(i)) {
      os << "s " << i << ' ' << s.target << ' ' << s.weight << ' ' << s.delay
         << '\n';
    }
  }
  write_groups(os, net);
}

void write_network(std::ostream& os, const Network& net) {
  write_network(os, net.compile());
}

namespace {

void expect_token(std::istream& is, const char* want) {
  std::string tok;
  is >> tok;
  SGA_REQUIRE(static_cast<bool>(is) && tok == want,
              "read_network: expected '" << want << "', got '" << tok << "'");
}

/// Legacy (version 1) ceiling on any count field of an untrusted file. A
/// hostile header like "neurons 9999999999999999999" (or "-1", which
/// operator>> into an unsigned silently wraps to 2^64−1) must be rejected
/// BEFORE the parse loop turns it into a multi-gigabyte allocation. 2^30 is
/// far above any network this library builds while still bounding a single
/// vector below the container limits. Version-2 files replace this with the
/// tighter ceilings their own storage line declares.
constexpr long long kMaxCountV1 = 1LL << 30;

/// Count ceilings a file's header implies. Version 1 has no storage line,
/// so both fall back to the legacy plausibility bound; version 2 derives
/// them from the declared target width (u16 targets cannot address more
/// than 2^16 neurons; u32 segment bounds cannot index 2^32 synapses).
struct CountCeilings {
  long long neurons = kMaxCountV1;
  long long synapses = kMaxCountV1;
};

/// Read a count field defensively: parse as SIGNED so "-1" fails the range
/// check instead of wrapping, then bound it by the header-derived ceiling.
std::size_t read_count(std::istream& is, const char* what,
                       long long limit = kMaxCountV1) {
  long long v = 0;
  is >> v;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing " << what);
  SGA_REQUIRE(v >= 0, "read_network: implausible " << what << " " << v);
  if (v > limit) throw CountLimitError(what, v, limit);
  return static_cast<std::size_t>(v);
}

std::string read_tag(std::istream& is, const char* field,
                     std::initializer_list<const char*> allowed) {
  expect_token(is, field);
  std::string tag;
  is >> tag;
  bool ok = static_cast<bool>(is);
  if (ok) {
    ok = false;
    for (const char* a : allowed) ok = ok || tag == a;
  }
  SGA_REQUIRE(ok, "read_network: bad storage " << field << " tag '" << tag
                                               << "'");
  return tag;
}

/// Version-3 carrier: when a file declares the packed encoding, the parser
/// fills `parts` instead of a builder, and the callers route it through
/// CompiledNetwork::from_packed_parts (which validates every claimed table
/// before anything decodes).
struct PackedFilePayload {
  bool present = false;
  PackedNetworkParts parts;
};

/// Parse the version-3 packed body (everything after the storage line).
/// Structure only: counts are bounded before their loops run and nothing
/// here allocates proportionally to an unparsed header count (each column
/// grows by push_back as lines are consumed, so a hostile count fails at
/// EOF, not at a multi-gigabyte resize). Semantic validation — block word
/// sums, decoded target ranges, delay caps — is from_packed_parts()'s job.
void read_packed_body(std::istream& is, const CountCeilings& ceilings,
                      PackedNetworkParts* parts) {
  expect_token(is, "neurons");
  const std::size_t n = read_count(is, "neuron count", ceilings.neurons);
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "n");
    NeuronParams p;
    is >> p.v_reset >> p.v_threshold >> p.tau;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad neuron " << i);
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold) &&
                    std::isfinite(p.tau),
                "read_network: neuron " << i << " has non-finite parameters");
    parts->neurons.push_back(p);
  }

  expect_token(is, "synapses");
  const std::size_t m = read_count(is, "synapse count", ceilings.synapses);
  expect_token(is, "segments");
  // Every delay run covers >= 1 synapse, so a segment count above the
  // synapse count is structurally impossible.
  const std::size_t segs =
      read_count(is, "segment count", static_cast<long long>(m));

  expect_token(is, "rows");
  parts->offsets.push_back(0);
  parts->seg_offsets.push_back(0);
  std::size_t syn_sum = 0, seg_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "r");
    const std::size_t deg =
        read_count(is, "row degree", static_cast<long long>(m));
    const std::size_t sc =
        read_count(is, "row segment count", static_cast<long long>(segs));
    syn_sum += deg;
    seg_sum += sc;
    SGA_REQUIRE(syn_sum <= m && seg_sum <= segs,
                "read_network: row " << i
                                     << " overruns the declared totals");
    parts->offsets.push_back(syn_sum);
    parts->seg_offsets.push_back(seg_sum);
  }
  SGA_REQUIRE(syn_sum == m, "read_network: row degrees sum to "
                                << syn_sum << ", header declares " << m);
  SGA_REQUIRE(seg_sum == segs, "read_network: row segment counts sum to "
                                   << seg_sum << ", header declares " << segs);

  for (std::size_t s = 0; s < segs; ++s) {
    expect_token(is, "t");
    Delay d = 0;
    long long begin = 0;
    is >> d >> begin;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad segment " << s);
    SGA_REQUIRE(begin >= 0 && begin <= static_cast<long long>(m),
                "read_network: segment " << s << " begin " << begin
                                         << " out of range (m=" << m << ")");
    parts->seg_delays.push_back(d);
    parts->seg_syn_begin.push_back(static_cast<std::uint32_t>(begin));
  }
  // The store keeps the begin column sentinel-terminated (one binary search
  // serves both bounds); the file does not repeat the redundant value.
  parts->seg_syn_begin.push_back(static_cast<std::uint32_t>(m));

  expect_token(is, "blocks");
  const long long want_blocks = static_cast<long long>(
      (m + kPackedBlockSize - 1) / kPackedBlockSize);
  const std::size_t blocks = read_count(is, "block count", want_blocks);
  SGA_REQUIRE(static_cast<long long>(blocks) == want_blocks,
              "read_network: block count " << blocks << " does not match "
                                           << want_blocks << " for m=" << m);
  for (std::size_t j = 0; j < blocks; ++j) {
    expect_token(is, "b");
    long long base = 0, bits = 0;
    is >> base >> bits;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad block " << j);
    SGA_REQUIRE(base >= 0 && base < (1LL << 32),
                "read_network: block " << j << " base out of range");
    SGA_REQUIRE(bits >= 0 && bits <= 32,
                "read_network: block " << j << " bit width " << bits
                                       << " out of range (0..32)");
    parts->block_base.push_back(static_cast<std::uint32_t>(base));
    parts->block_bits.push_back(static_cast<std::uint8_t>(bits));
  }

  expect_token(is, "words");
  // Plausibility bound before the loop: a full 64-entry block at 32 bits
  // packs 63 deltas into 63 words. The EXACT per-block word sum is checked
  // by from_packed_parts.
  const std::size_t words = read_count(
      is, "word count",
      static_cast<long long>(blocks) * (kPackedBlockSize - 1));
  for (std::size_t i = 0; i < words; ++i) {
    long long v = 0;
    is >> v;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad pack word " << i);
    SGA_REQUIRE(v >= 0 && v < (1LL << 32),
                "read_network: pack word " << i << " out of range");
    parts->pack_words.push_back(static_cast<std::uint32_t>(v));
  }

  expect_token(is, "weights");
  for (std::size_t k = 0; k < m; ++k) {
    SynWeight w = 0;
    is >> w;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad weight " << k);
    SGA_REQUIRE(std::isfinite(w),
                "read_network: synapse " << k << " has non-finite weight");
    parts->weights.push_back(w);
  }

  expect_token(is, "groups");
  const std::size_t g = read_count(is, "group count");
  std::unordered_set<std::string> seen_groups;
  for (std::size_t i = 0; i < g; ++i) {
    expect_token(is, "g");
    std::string name;
    is >> name;
    SGA_REQUIRE(static_cast<bool>(is) && !name.empty(),
                "read_network: bad group header " << i);
    SGA_REQUIRE(seen_groups.insert(name).second,
                "read_network: duplicate group '" << name << "'");
    const std::size_t k = read_count(is, "group member count");
    SGA_REQUIRE(k <= n, "read_network: group '"
                            << name << "' claims " << k << " members in a "
                            << n << "-neuron network");
    std::vector<NeuronId> ids(k);
    for (auto& id : ids) {
      is >> id;
      SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group member");
      SGA_REQUIRE(id < n,
                  "read_network: group '" << name << "' member out of range");
    }
    parts->groups.emplace_back(std::move(name), std::move(ids));
  }
}

/// Shared parser. Returns the builder plus the storage policy the file
/// declares, so read_compiled_network can re-freeze a wide artifact wide.
/// A version-3 (packed) file fills `packed` instead and returns an empty
/// builder — the callers reassemble via from_packed_parts.
Network read_network_impl(std::istream& is, StoragePolicy* policy,
                          PackedFilePayload* packed) {
  expect_token(is, "snn");
  int version = 0;
  is >> version;
  SGA_REQUIRE(
      static_cast<bool>(is) && (version == 1 || version == 2 || version == 3),
      "read_network: unsupported version " << version);

  CountCeilings ceilings;
  *policy = StoragePolicy::kAuto;
  if (version == 3) {
    expect_token(is, "storage");
    std::string kind;
    is >> kind;
    SGA_REQUIRE(static_cast<bool>(is) && kind == "packed",
                "read_network: bad version-3 storage kind '" << kind << "'");
    read_tag(is, "target", {"u32"});
    const std::string dly = read_tag(is, "delay", {"u8", "u16"});
    const std::string wgt = read_tag(is, "weight", {"f32", "f64"});
    ceilings.neurons = 1LL << 32;
    ceilings.synapses = (1LL << 32) - 1;  // u32 begin column
    packed->present = true;
    StorageWidths& w = packed->parts.widths;
    w.narrow = true;
    w.packed = true;
    w.target_bytes = 4;
    w.seg_index_bytes = 4;
    w.delay_bytes = dly == "u8" ? 1 : 2;
    w.weight_bytes = wgt == "f32" ? 4 : 8;
    *policy = StoragePolicy::kPacked;
    read_packed_body(is, ceilings, &packed->parts);
    return Network{};
  }
  if (version == 2) {
    expect_token(is, "storage");
    std::string kind;
    is >> kind;
    SGA_REQUIRE(static_cast<bool>(is) && (kind == "narrow" || kind == "wide"),
                "read_network: bad storage kind '" << kind << "'");
    if (kind == "wide") *policy = StoragePolicy::kWide;
    const std::string tgt = read_tag(is, "target", {"u16", "u32"});
    read_tag(is, "delay", {"u8", "u16", "i64"});
    read_tag(is, "weight", {"f32", "f64"});
    // The declared target width bounds what the rest of the header may
    // claim: counts above these are rejected as CountLimitError before the
    // parse loops run.
    ceilings.neurons = tgt == "u16" ? (1LL << 16) : (1LL << 32);
    ceilings.synapses = (1LL << 32) - 1;  // u32 segment bounds
  }

  Network net;
  expect_token(is, "neurons");
  const std::size_t n = read_count(is, "neuron count", ceilings.neurons);
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "n");
    NeuronParams p;
    is >> p.v_reset >> p.v_threshold >> p.tau;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad neuron " << i);
    // operator>> accepts "nan" and "inf" since C++11; a NaN threshold would
    // make every threshold comparison silently false, so reject them here
    // (τ's domain is checked by add_neuron).
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold) &&
                    std::isfinite(p.tau),
                "read_network: neuron " << i << " has non-finite parameters");
    net.add_neuron(p);
  }

  expect_token(is, "synapses");
  const std::size_t m = read_count(is, "synapse count", ceilings.synapses);
  for (std::size_t i = 0; i < m; ++i) {
    expect_token(is, "s");
    NeuronId from = 0, to = 0;
    SynWeight w = 0;
    Delay d = 0;
    is >> from >> to >> w >> d;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad synapse " << i);
    SGA_REQUIRE(from < n && to < n,
                "read_network: synapse " << i << " endpoint out of range");
    SGA_REQUIRE(std::isfinite(w),
                "read_network: synapse " << i << " has non-finite weight");
    // add_synapse rejects delay < δ (which covers negative delays).
    net.add_synapse(from, to, w, d);
  }

  expect_token(is, "groups");
  const std::size_t g = read_count(is, "group count");
  std::unordered_set<std::string> seen_groups;
  for (std::size_t i = 0; i < g; ++i) {
    expect_token(is, "g");
    std::string name;
    is >> name;
    SGA_REQUIRE(static_cast<bool>(is) && !name.empty(),
                "read_network: bad group header " << i);
    // define_group would silently overwrite; in a file a repeated name is
    // always corruption (or an attempt to smuggle a second definition past
    // a reader that validated the first), so reject it.
    SGA_REQUIRE(seen_groups.insert(name).second,
                "read_network: duplicate group '" << name << "'");
    const std::size_t k = read_count(is, "group member count");
    SGA_REQUIRE(k <= n, "read_network: group '"
                            << name << "' claims " << k << " members in a "
                            << n << "-neuron network");
    std::vector<NeuronId> ids(k);
    for (auto& id : ids) {
      is >> id;
      SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group member");
      SGA_REQUIRE(id < n,
                  "read_network: group '" << name << "' member out of range");
    }
    net.define_group(name, std::move(ids));
  }
  return net;
}

}  // namespace

Network read_network(std::istream& is) {
  StoragePolicy policy = StoragePolicy::kAuto;
  PackedFilePayload packed;
  Network net = read_network_impl(is, &policy, &packed);
  if (!packed.present) return net;
  // A packed file has no per-synapse lines to rebuild a builder from, so
  // validate + reassemble the compiled form first (the same path as
  // read_compiled_network) and only then expand it back into a mutable
  // builder through the block-decoding accessors.
  CompiledNetwork cn =
      CompiledNetwork::from_packed_parts(std::move(packed.parts));
  cn.verify_invariants();
  Network out;
  for (NeuronId i = 0; i < cn.num_neurons(); ++i) out.add_neuron(cn.params(i));
  for (NeuronId i = 0; i < cn.num_neurons(); ++i) {
    for (const Synapse& s : cn.out_synapses(i)) {
      out.add_synapse(i, s.target, s.weight, s.delay);
    }
  }
  for (const auto& name : cn.group_names()) {
    out.define_group(name, std::vector<NeuronId>(cn.group(name)));
  }
  return out;
}

CompiledNetwork read_compiled_network(std::istream& is) {
  StoragePolicy policy = StoragePolicy::kAuto;
  PackedFilePayload packed;
  Network builder = read_network_impl(is, &policy, &packed);
  // Defense in depth for untrusted cache inputs (docs/SERVICE.md): the
  // assembly paths validate what they pack, but the simulator's hot path
  // trusts every derived index (segment CSR bounds, delay-run monotonicity,
  // block word offsets, aggregate tables) unchecked — re-verify the frozen
  // form before handing it out. For a version-3 file from_packed_parts has
  // already made decoding memory-safe; verify_invariants adds the full
  // semantic contract (tiling, per-row delay order, finiteness).
  CompiledNetwork net =
      packed.present
          ? CompiledNetwork::from_packed_parts(std::move(packed.parts))
          : builder.compile(policy);
  net.verify_invariants();
  return net;
}

}  // namespace sga::snn
