#include "snn/io.h"

#include <cmath>
#include <initializer_list>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_set>

#include "core/error.h"

namespace sga::snn {

CountLimitError::CountLimitError(const std::string& field, long long value,
                                 long long limit)
    : InvalidArgument("read_network: " + field + " " + std::to_string(value) +
                      " exceeds the count ceiling " + std::to_string(limit) +
                      " implied by the declared storage width"),
      field_(field),
      value_(value),
      limit_(limit) {}

namespace {

const char* target_tag(const StorageWidths& w) {
  return w.target_bytes == 2 ? "u16" : "u32";
}
const char* delay_tag(const StorageWidths& w) {
  return w.delay_bytes == 1 ? "u8" : w.delay_bytes == 2 ? "u16" : "i64";
}
const char* weight_tag(const StorageWidths& w) {
  return w.weight_bytes == 4 ? "f32" : "f64";
}

}  // namespace

void write_network(std::ostream& os, const CompiledNetwork& net) {
  // max_digits10 keeps doubles bit-exact across a round trip.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "snn 2\n";
  const StorageWidths& w = net.storage_widths();
  os << "storage " << (w.narrow ? "narrow" : "wide") << " target "
     << target_tag(w) << " delay " << delay_tag(w) << " weight "
     << weight_tag(w) << '\n';
  os << "neurons " << net.num_neurons() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    os << "n " << net.v_reset(i) << ' ' << net.v_threshold(i) << ' '
       << net.tau(i) << '\n';
  }
  os << "synapses " << net.num_synapses() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    for (const Synapse& s : net.out_synapses(i)) {
      os << "s " << i << ' ' << s.target << ' ' << s.weight << ' ' << s.delay
         << '\n';
    }
  }
  const auto names = net.group_names();
  os << "groups " << names.size() << '\n';
  for (const auto& name : names) {
    const auto& ids = net.group(name);
    os << "g " << name << ' ' << ids.size();
    for (const NeuronId id : ids) os << ' ' << id;
    os << '\n';
  }
}

void write_network(std::ostream& os, const Network& net) {
  write_network(os, net.compile());
}

namespace {

void expect_token(std::istream& is, const char* want) {
  std::string tok;
  is >> tok;
  SGA_REQUIRE(static_cast<bool>(is) && tok == want,
              "read_network: expected '" << want << "', got '" << tok << "'");
}

/// Legacy (version 1) ceiling on any count field of an untrusted file. A
/// hostile header like "neurons 9999999999999999999" (or "-1", which
/// operator>> into an unsigned silently wraps to 2^64−1) must be rejected
/// BEFORE the parse loop turns it into a multi-gigabyte allocation. 2^30 is
/// far above any network this library builds while still bounding a single
/// vector below the container limits. Version-2 files replace this with the
/// tighter ceilings their own storage line declares.
constexpr long long kMaxCountV1 = 1LL << 30;

/// Count ceilings a file's header implies. Version 1 has no storage line,
/// so both fall back to the legacy plausibility bound; version 2 derives
/// them from the declared target width (u16 targets cannot address more
/// than 2^16 neurons; u32 segment bounds cannot index 2^32 synapses).
struct CountCeilings {
  long long neurons = kMaxCountV1;
  long long synapses = kMaxCountV1;
};

/// Read a count field defensively: parse as SIGNED so "-1" fails the range
/// check instead of wrapping, then bound it by the header-derived ceiling.
std::size_t read_count(std::istream& is, const char* what,
                       long long limit = kMaxCountV1) {
  long long v = 0;
  is >> v;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing " << what);
  SGA_REQUIRE(v >= 0, "read_network: implausible " << what << " " << v);
  if (v > limit) throw CountLimitError(what, v, limit);
  return static_cast<std::size_t>(v);
}

std::string read_tag(std::istream& is, const char* field,
                     std::initializer_list<const char*> allowed) {
  expect_token(is, field);
  std::string tag;
  is >> tag;
  bool ok = static_cast<bool>(is);
  if (ok) {
    ok = false;
    for (const char* a : allowed) ok = ok || tag == a;
  }
  SGA_REQUIRE(ok, "read_network: bad storage " << field << " tag '" << tag
                                               << "'");
  return tag;
}

/// Shared parser. Returns the builder plus the storage policy the file
/// declares, so read_compiled_network can re-freeze a wide artifact wide.
Network read_network_impl(std::istream& is, StoragePolicy* policy) {
  expect_token(is, "snn");
  int version = 0;
  is >> version;
  SGA_REQUIRE(static_cast<bool>(is) && (version == 1 || version == 2),
              "read_network: unsupported version " << version);

  CountCeilings ceilings;
  *policy = StoragePolicy::kAuto;
  if (version == 2) {
    expect_token(is, "storage");
    std::string kind;
    is >> kind;
    SGA_REQUIRE(static_cast<bool>(is) && (kind == "narrow" || kind == "wide"),
                "read_network: bad storage kind '" << kind << "'");
    if (kind == "wide") *policy = StoragePolicy::kWide;
    const std::string tgt = read_tag(is, "target", {"u16", "u32"});
    read_tag(is, "delay", {"u8", "u16", "i64"});
    read_tag(is, "weight", {"f32", "f64"});
    // The declared target width bounds what the rest of the header may
    // claim: counts above these are rejected as CountLimitError before the
    // parse loops run.
    ceilings.neurons = tgt == "u16" ? (1LL << 16) : (1LL << 32);
    ceilings.synapses = (1LL << 32) - 1;  // u32 segment bounds
  }

  Network net;
  expect_token(is, "neurons");
  const std::size_t n = read_count(is, "neuron count", ceilings.neurons);
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "n");
    NeuronParams p;
    is >> p.v_reset >> p.v_threshold >> p.tau;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad neuron " << i);
    // operator>> accepts "nan" and "inf" since C++11; a NaN threshold would
    // make every threshold comparison silently false, so reject them here
    // (τ's domain is checked by add_neuron).
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold) &&
                    std::isfinite(p.tau),
                "read_network: neuron " << i << " has non-finite parameters");
    net.add_neuron(p);
  }

  expect_token(is, "synapses");
  const std::size_t m = read_count(is, "synapse count", ceilings.synapses);
  for (std::size_t i = 0; i < m; ++i) {
    expect_token(is, "s");
    NeuronId from = 0, to = 0;
    SynWeight w = 0;
    Delay d = 0;
    is >> from >> to >> w >> d;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad synapse " << i);
    SGA_REQUIRE(from < n && to < n,
                "read_network: synapse " << i << " endpoint out of range");
    SGA_REQUIRE(std::isfinite(w),
                "read_network: synapse " << i << " has non-finite weight");
    // add_synapse rejects delay < δ (which covers negative delays).
    net.add_synapse(from, to, w, d);
  }

  expect_token(is, "groups");
  const std::size_t g = read_count(is, "group count");
  std::unordered_set<std::string> seen_groups;
  for (std::size_t i = 0; i < g; ++i) {
    expect_token(is, "g");
    std::string name;
    is >> name;
    SGA_REQUIRE(static_cast<bool>(is) && !name.empty(),
                "read_network: bad group header " << i);
    // define_group would silently overwrite; in a file a repeated name is
    // always corruption (or an attempt to smuggle a second definition past
    // a reader that validated the first), so reject it.
    SGA_REQUIRE(seen_groups.insert(name).second,
                "read_network: duplicate group '" << name << "'");
    const std::size_t k = read_count(is, "group member count");
    SGA_REQUIRE(k <= n, "read_network: group '"
                            << name << "' claims " << k << " members in a "
                            << n << "-neuron network");
    std::vector<NeuronId> ids(k);
    for (auto& id : ids) {
      is >> id;
      SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group member");
      SGA_REQUIRE(id < n,
                  "read_network: group '" << name << "' member out of range");
    }
    net.define_group(name, std::move(ids));
  }
  return net;
}

}  // namespace

Network read_network(std::istream& is) {
  StoragePolicy policy = StoragePolicy::kAuto;
  return read_network_impl(is, &policy);
}

CompiledNetwork read_compiled_network(std::istream& is) {
  StoragePolicy policy = StoragePolicy::kAuto;
  CompiledNetwork net = read_network_impl(is, &policy).compile(policy);
  // Defense in depth for untrusted cache inputs (docs/SERVICE.md): compile()
  // validates what it packs, but the simulator's hot path trusts every
  // derived index (segment CSR bounds, delay-run monotonicity, aggregate
  // tables) unchecked — re-verify the frozen form before handing it out.
  net.verify_invariants();
  return net;
}

}  // namespace sga::snn
