#include "snn/io.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_set>

#include "core/error.h"

namespace sga::snn {

void write_network(std::ostream& os, const CompiledNetwork& net) {
  // max_digits10 keeps doubles bit-exact across a round trip.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "snn 1\n";
  os << "neurons " << net.num_neurons() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    os << "n " << net.v_reset(i) << ' ' << net.v_threshold(i) << ' '
       << net.tau(i) << '\n';
  }
  os << "synapses " << net.num_synapses() << '\n';
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    for (const Synapse& s : net.out_synapses(i)) {
      os << "s " << i << ' ' << s.target << ' ' << s.weight << ' ' << s.delay
         << '\n';
    }
  }
  const auto names = net.group_names();
  os << "groups " << names.size() << '\n';
  for (const auto& name : names) {
    const auto& ids = net.group(name);
    os << "g " << name << ' ' << ids.size();
    for (const NeuronId id : ids) os << ' ' << id;
    os << '\n';
  }
}

void write_network(std::ostream& os, const Network& net) {
  write_network(os, net.compile());
}

namespace {

void expect_token(std::istream& is, const char* want) {
  std::string tok;
  is >> tok;
  SGA_REQUIRE(static_cast<bool>(is) && tok == want,
              "read_network: expected '" << want << "', got '" << tok << "'");
}

/// Hard ceiling on any count field of an untrusted file. A hostile header
/// like "neurons 9999999999999999999" (or "-1", which operator>> into an
/// unsigned silently wraps to 2^64−1) must be rejected BEFORE the parse
/// loop turns it into a multi-gigabyte allocation. 2^30 is far above any
/// network this library builds while still bounding a single vector below
/// the container limits.
constexpr long long kMaxCount = 1LL << 30;

/// Read a count field defensively: parse as SIGNED so "-1" fails the range
/// check instead of wrapping, then bound it.
std::size_t read_count(std::istream& is, const char* what) {
  long long v = 0;
  is >> v;
  SGA_REQUIRE(static_cast<bool>(is), "read_network: missing " << what);
  SGA_REQUIRE(v >= 0 && v <= kMaxCount,
              "read_network: implausible " << what << " " << v);
  return static_cast<std::size_t>(v);
}

}  // namespace

Network read_network(std::istream& is) {
  expect_token(is, "snn");
  int version = 0;
  is >> version;
  SGA_REQUIRE(static_cast<bool>(is) && version == 1,
              "read_network: unsupported version " << version);

  Network net;
  expect_token(is, "neurons");
  const std::size_t n = read_count(is, "neuron count");
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "n");
    NeuronParams p;
    is >> p.v_reset >> p.v_threshold >> p.tau;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad neuron " << i);
    // operator>> accepts "nan" and "inf" since C++11; a NaN threshold would
    // make every threshold comparison silently false, so reject them here
    // (τ's domain is checked by add_neuron).
    SGA_REQUIRE(std::isfinite(p.v_reset) && std::isfinite(p.v_threshold) &&
                    std::isfinite(p.tau),
                "read_network: neuron " << i << " has non-finite parameters");
    net.add_neuron(p);
  }

  expect_token(is, "synapses");
  const std::size_t m = read_count(is, "synapse count");
  for (std::size_t i = 0; i < m; ++i) {
    expect_token(is, "s");
    NeuronId from = 0, to = 0;
    SynWeight w = 0;
    Delay d = 0;
    is >> from >> to >> w >> d;
    SGA_REQUIRE(static_cast<bool>(is), "read_network: bad synapse " << i);
    SGA_REQUIRE(from < n && to < n,
                "read_network: synapse " << i << " endpoint out of range");
    SGA_REQUIRE(std::isfinite(w),
                "read_network: synapse " << i << " has non-finite weight");
    // add_synapse rejects delay < δ (which covers negative delays).
    net.add_synapse(from, to, w, d);
  }

  expect_token(is, "groups");
  const std::size_t g = read_count(is, "group count");
  std::unordered_set<std::string> seen_groups;
  for (std::size_t i = 0; i < g; ++i) {
    expect_token(is, "g");
    std::string name;
    is >> name;
    SGA_REQUIRE(static_cast<bool>(is) && !name.empty(),
                "read_network: bad group header " << i);
    // define_group would silently overwrite; in a file a repeated name is
    // always corruption (or an attempt to smuggle a second definition past
    // a reader that validated the first), so reject it.
    SGA_REQUIRE(seen_groups.insert(name).second,
                "read_network: duplicate group '" << name << "'");
    const std::size_t k = read_count(is, "group member count");
    SGA_REQUIRE(k <= n, "read_network: group '"
                            << name << "' claims " << k << " members in a "
                            << n << "-neuron network");
    std::vector<NeuronId> ids(k);
    for (auto& id : ids) {
      is >> id;
      SGA_REQUIRE(static_cast<bool>(is), "read_network: bad group member");
      SGA_REQUIRE(id < n,
                  "read_network: group '" << name << "' member out of range");
    }
    net.define_group(name, std::move(ids));
  }
  return net;
}

CompiledNetwork read_compiled_network(std::istream& is) {
  CompiledNetwork net = read_network(is).compile();
  // Defense in depth for untrusted cache inputs (docs/SERVICE.md): compile()
  // validates what it packs, but the simulator's hot path trusts every
  // derived index (segment CSR bounds, delay-run monotonicity, aggregate
  // tables) unchecked — re-verify the frozen form before handing it out.
  net.verify_invariants();
  return net;
}

}  // namespace sga::snn
