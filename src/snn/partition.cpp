#include "snn/partition.h"

#include <algorithm>
#include <numeric>

#include "core/error.h"
#include "snn/compiled_network.h"

namespace sga::snn {

Partition make_partition(const CompiledNetwork& net, std::size_t num_shards) {
  SGA_REQUIRE(num_shards >= 1, "make_partition: need at least one shard");
  const std::size_t n = net.num_neurons();

  Partition p;
  p.num_shards = num_shards;
  p.shard_of.assign(n, 0);
  p.local_index.assign(n, 0);
  p.shard_neurons.resize(num_shards);
  p.shard_load.assign(num_shards, 0);

  // LPT greedy: heaviest neuron first onto the lightest shard. Weight is
  // 1 + out_degree (state update + fan-out per fire). All ties are broken
  // by id (ordering) and by shard index (placement), so the result is a
  // pure function of (network, num_shards).
  std::vector<NeuronId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NeuronId a, NeuronId b) {
    return net.out_degree(a) > net.out_degree(b);
  });
  for (const NeuronId id : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (p.shard_load[s] < p.shard_load[best]) best = s;
    }
    p.shard_of[id] = static_cast<std::uint32_t>(best);
    p.shard_load[best] += 1 + net.out_degree(id);
  }

  // Local indices follow ascending neuron id within a shard: partitioning
  // over S = 1 is then exactly the identity layout.
  for (NeuronId id = 0; id < n; ++id) {
    auto& members = p.shard_neurons[p.shard_of[id]];
    p.local_index[id] = static_cast<NeuronId>(members.size());
    members.push_back(id);
  }
  return p;
}

ShardSplit CompiledNetwork::shard_split(Partition partition) const {
  const std::size_t n = num_neurons();
  SGA_REQUIRE(partition.shard_of.size() == n,
              "shard_split: partition covers " << partition.shard_of.size()
                                               << " neurons, network has "
                                               << n);

  ShardSplit split;
  split.shards.resize(partition.num_shards);
  Delay min_cross = 0;

  for (std::size_t s = 0; s < partition.num_shards; ++s) {
    const std::vector<NeuronId>& members = partition.shard_neurons[s];
    ShardCsr& shard = split.shards[s];
    shard.global_ids = members;
    shard.intra_offsets.resize(members.size() + 1);
    shard.cross_offsets.resize(members.size() + 1);
    shard.intra_offsets[0] = 0;
    shard.cross_offsets[0] = 0;

    // Two passes: count, then fill — keeps each family contiguous while
    // preserving the delay-sorted per-source synapse order inside it (the
    // cross family is then stably re-sorted by destination shard below).
    for (std::size_t k = 0; k < members.size(); ++k) {
      const NeuronId id = members[k];
      std::size_t intra = 0;
      for (std::size_t j = out_begin(id); j < out_end(id); ++j) {
        if (partition.shard_of[syn_target(j)] == s) ++intra;
      }
      shard.intra_offsets[k + 1] = shard.intra_offsets[k] + intra;
      shard.cross_offsets[k + 1] =
          shard.cross_offsets[k] + (out_degree(id) - intra);
    }
    shard.intra_target.resize(shard.intra_offsets[members.size()]);
    shard.intra_weight.resize(shard.intra_offsets[members.size()]);
    shard.intra_delay.resize(shard.intra_offsets[members.size()]);
    shard.cross_shard.resize(shard.cross_offsets[members.size()]);
    shard.cross_local.resize(shard.cross_offsets[members.size()]);
    shard.cross_weight.resize(shard.cross_offsets[members.size()]);
    shard.cross_delay.resize(shard.cross_offsets[members.size()]);

    for (std::size_t k = 0; k < members.size(); ++k) {
      const NeuronId id = members[k];
      std::size_t wi = shard.intra_offsets[k];
      std::size_t wc = shard.cross_offsets[k];
      for (std::size_t j = out_begin(id); j < out_end(id); ++j) {
        const NeuronId tgt = syn_target(j);
        const std::uint32_t ts = partition.shard_of[tgt];
        if (ts == s) {
          shard.intra_target[wi] = partition.local_index[tgt];
          shard.intra_weight[wi] = syn_weight(j);
          shard.intra_delay[wi] = syn_delay(j);
          ++wi;
        } else {
          shard.cross_shard[wc] = ts;
          shard.cross_local[wc] = partition.local_index[tgt];
          shard.cross_weight[wc] = syn_weight(j);
          shard.cross_delay[wc] = syn_delay(j);
          const Delay d = syn_delay(j);
          min_cross = min_cross == 0 ? d : std::min(min_cross, d);
          ++wc;
          ++split.num_cross_synapses;
        }
      }
    }

    // Cross family: stably re-sort each neuron's slice by destination
    // shard. The slice is already delay-ascending (inherited from the
    // delay-sorted CSR row), so stability leaves it sorted by
    // (shard, delay) with builder insertion order within each run.
    struct CrossEntry {
      std::uint32_t shard;
      NeuronId local;
      SynWeight weight;
      Delay delay;
    };
    std::vector<CrossEntry> entries;
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t cb = shard.cross_offsets[k];
      const std::size_t ce = shard.cross_offsets[k + 1];
      entries.clear();
      for (std::size_t j = cb; j < ce; ++j) {
        entries.push_back(CrossEntry{shard.cross_shard[j],
                                     shard.cross_local[j],
                                     shard.cross_weight[j],
                                     shard.cross_delay[j]});
      }
      std::stable_sort(entries.begin(), entries.end(),
                       [](const CrossEntry& a, const CrossEntry& b) {
                         return a.shard < b.shard;
                       });
      for (std::size_t j = cb; j < ce; ++j) {
        const CrossEntry& e = entries[j - cb];
        shard.cross_shard[j] = e.shard;
        shard.cross_local[j] = e.local;
        shard.cross_weight[j] = e.weight;
        shard.cross_delay[j] = e.delay;
      }
    }

    // Segment CSRs over both families: intra runs share a delay, cross
    // runs share a (shard, delay) pair.
    shard.intra_seg_offsets.resize(members.size() + 1);
    shard.cross_seg_offsets.resize(members.size() + 1);
    shard.intra_seg_offsets[0] = 0;
    shard.cross_seg_offsets[0] = 0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      std::size_t j = shard.intra_offsets[k];
      const std::size_t ie = shard.intra_offsets[k + 1];
      while (j < ie) {
        const Delay d = shard.intra_delay[j];
        const std::size_t run_begin = j;
        while (j < ie && shard.intra_delay[j] == d) ++j;
        shard.intra_seg_delay.push_back(d);
        shard.intra_seg_begin.push_back(run_begin);
        shard.intra_seg_end.push_back(j);
      }
      shard.intra_seg_offsets[k + 1] = shard.intra_seg_delay.size();

      j = shard.cross_offsets[k];
      const std::size_t ce = shard.cross_offsets[k + 1];
      while (j < ce) {
        const std::uint32_t ds = shard.cross_shard[j];
        const Delay d = shard.cross_delay[j];
        const std::size_t run_begin = j;
        while (j < ce && shard.cross_shard[j] == ds &&
               shard.cross_delay[j] == d) {
          ++j;
        }
        shard.cross_seg_shard.push_back(ds);
        shard.cross_seg_delay.push_back(d);
        shard.cross_seg_begin.push_back(run_begin);
        shard.cross_seg_end.push_back(j);
      }
      shard.cross_seg_offsets[k + 1] = shard.cross_seg_delay.size();
    }
  }
  split.min_cross_delay = min_cross;
  split.partition = std::move(partition);
  return split;
}

}  // namespace sga::snn
