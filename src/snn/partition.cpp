#include "snn/partition.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/error.h"
#include "snn/compiled_network.h"

namespace sga::snn {

namespace {

/// Refinement passes are bounded: greedy label propagation converges fast
/// and each pass is O(m + n·S), so a hard cap keeps partitioning cheap on
/// the million-neuron instances while letting small graphs converge fully.
constexpr std::size_t kMaxRefinePasses = 8;

/// Order min-cross-delay with 0 ("no cross synapses") as +infinity: a
/// partition with no cross edges has an unbounded lookahead window and
/// must never be degraded.
std::int64_t encode_min_cross(Delay d) {
  return d == 0 ? std::numeric_limits<std::int64_t>::max() : d;
}

/// Cut-minimizing refinement over an LPT seed (see partition.h file
/// comment). Deterministic: neurons are visited in id order, candidate
/// shards in (affinity desc, index asc) order, and the first candidate
/// passing the balance cap and the min-cross-delay filter wins.
void refine_partition(const CompiledNetwork& net, Partition& p) {
  const std::size_t n = net.num_neurons();
  const std::size_t S = p.num_shards;
  const Delay max_delay = net.max_delay();

  // Cross-delay histogram + cut weight of the seed. The histogram is what
  // makes the lexicographic filter cheap: a move's delta touches only the
  // delays of edges incident to the moved neuron, and the partition's
  // min-cross-delay is the smallest delay with a nonzero count.
  std::vector<std::int64_t> hist(static_cast<std::size_t>(max_delay) + 1, 0);
  double cut = 0.0;
  for (NeuronId id = 0; id < n; ++id) {
    for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
      const NeuronId tgt = net.syn_target(j);
      if (p.shard_of[tgt] != p.shard_of[id]) {
        const Delay d = net.syn_delay(j);
        ++hist[static_cast<std::size_t>(d)];
        cut += 1.0 / static_cast<double>(d);
      }
    }
  }
  Delay cur_min = 0;
  for (std::size_t d = 1; d < hist.size(); ++d) {
    if (hist[d] > 0) {
      cur_min = static_cast<Delay>(d);
      break;
    }
  }
  p.pass_min_cross_delay.push_back(cur_min);
  p.pass_cut_weight.push_back(cut);
  if (S < 2 || n == 0) return;

  // Transpose adjacency (counting sort): refinement needs a neuron's IN
  // edges too — moving `id` changes the cut status of both edge
  // directions, and the CompiledNetwork CSR only stores out-rows.
  std::vector<std::size_t> in_off(n + 1, 0);
  for (NeuronId id = 0; id < n; ++id) {
    for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
      ++in_off[net.syn_target(j) + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) in_off[i] += in_off[i - 1];
  std::vector<NeuronId> in_src(net.num_synapses());
  std::vector<Delay> in_delay(net.num_synapses());
  {
    std::vector<std::size_t> cursor(in_off.begin(), in_off.end() - 1);
    for (NeuronId id = 0; id < n; ++id) {
      for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
        const std::size_t w = cursor[net.syn_target(j)]++;
        in_src[w] = id;
        in_delay[w] = net.syn_delay(j);
      }
    }
  }

  // Same balance cap the LPT bound guarantees (integer arithmetic matches
  // the property test), so refinement preserves the documented bound.
  std::uint64_t total = 0;
  std::uint64_t w_max = 0;
  for (NeuronId id = 0; id < n; ++id) {
    const std::uint64_t w = 1 + net.out_degree(id);
    total += w;
    w_max = std::max(w_max, w);
  }
  const std::uint64_t cap = total / S + w_max;

  std::vector<double> affinity(S, 0.0);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> candidates;
  // (delay, delta) pairs of the move under evaluation, for revert.
  std::vector<std::pair<std::size_t, std::int64_t>> deltas;

  for (std::size_t pass = 0; pass < kMaxRefinePasses; ++pass) {
    std::size_t moved = 0;
    for (NeuronId id = 0; id < n; ++id) {
      const std::uint32_t s0 = p.shard_of[id];
      // Affinity of `id` to each neighboring shard: Σ 1/delay over both
      // edge directions. Self-loops move with the neuron and never change
      // cut status, so they are excluded.
      touched.clear();
      for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
        const NeuronId tgt = net.syn_target(j);
        if (tgt == id) continue;
        const std::uint32_t ts = p.shard_of[tgt];
        if (affinity[ts] == 0.0) touched.push_back(ts);
        affinity[ts] += 1.0 / static_cast<double>(net.syn_delay(j));
      }
      for (std::size_t j = in_off[id]; j < in_off[id + 1]; ++j) {
        const NeuronId src = in_src[j];
        if (src == id) continue;
        const std::uint32_t ss = p.shard_of[src];
        if (affinity[ss] == 0.0) touched.push_back(ss);
        affinity[ss] += 1.0 / static_cast<double>(in_delay[j]);
      }

      // Candidates: shards with strictly more affinity than home (the cut
      // gain of moving there), best-first, ties to the lowest index.
      candidates.clear();
      for (const std::uint32_t s : touched) {
        if (s != s0 && affinity[s] > affinity[s0]) candidates.push_back(s);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (affinity[a] != affinity[b]) {
                    return affinity[a] > affinity[b];
                  }
                  return a < b;
                });

      const std::uint64_t w_id = 1 + net.out_degree(id);
      for (const std::uint32_t s1 : candidates) {
        if (p.shard_load[s1] + w_id > cap) continue;
        // Lexicographic filter: apply the move's cross-delay histogram
        // delta and reject (revert) if the minimum cross delay shrinks.
        deltas.clear();
        const auto add_delta = [&](std::uint32_t other_shard, Delay d) {
          if (other_shard == s0) {
            deltas.emplace_back(static_cast<std::size_t>(d), +1);
          } else if (other_shard == s1) {
            deltas.emplace_back(static_cast<std::size_t>(d), -1);
          }
        };
        for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
          const NeuronId tgt = net.syn_target(j);
          if (tgt != id) add_delta(p.shard_of[tgt], net.syn_delay(j));
        }
        for (std::size_t j = in_off[id]; j < in_off[id + 1]; ++j) {
          if (in_src[j] != id) add_delta(p.shard_of[in_src[j]], in_delay[j]);
        }
        for (const auto& [d, delta] : deltas) hist[d] += delta;
        Delay new_min = 0;
        for (std::size_t d = 1; d < hist.size(); ++d) {
          if (hist[d] > 0) {
            new_min = static_cast<Delay>(d);
            break;
          }
        }
        if (encode_min_cross(new_min) < encode_min_cross(cur_min)) {
          for (const auto& [d, delta] : deltas) hist[d] -= delta;
          continue;
        }
        // Accept. The cut decreases by the (strictly positive) gain, so
        // pass_cut_weight is non-increasing even under FP rounding.
        cut += affinity[s0] - affinity[s1];
        cur_min = new_min;
        p.shard_of[id] = s1;
        p.shard_load[s0] -= w_id;
        p.shard_load[s1] += w_id;
        ++moved;
        break;
      }
      for (const std::uint32_t s : touched) affinity[s] = 0.0;
    }
    p.pass_min_cross_delay.push_back(cur_min);
    p.pass_cut_weight.push_back(cut);
    if (moved == 0) break;
  }
}

}  // namespace

Partition make_partition(const CompiledNetwork& net, std::size_t num_shards,
                         PartitionKind kind) {
  SGA_REQUIRE(num_shards >= 1, "make_partition: need at least one shard");
  const std::size_t n = net.num_neurons();

  Partition p;
  p.num_shards = num_shards;
  p.kind = kind;
  p.shard_of.assign(n, 0);
  p.local_index.assign(n, 0);
  p.shard_neurons.resize(num_shards);
  p.shard_load.assign(num_shards, 0);

  // LPT greedy: heaviest neuron first onto the lightest shard. Weight is
  // 1 + out_degree (state update + fan-out per fire). All ties are broken
  // by id (ordering) and by shard index (placement), so the result is a
  // pure function of (network, num_shards).
  std::vector<NeuronId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NeuronId a, NeuronId b) {
    return net.out_degree(a) > net.out_degree(b);
  });
  for (const NeuronId id : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (p.shard_load[s] < p.shard_load[best]) best = s;
    }
    p.shard_of[id] = static_cast<std::uint32_t>(best);
    p.shard_load[best] += 1 + net.out_degree(id);
  }

  if (kind == PartitionKind::kCutRefined) refine_partition(net, p);

  // Local indices follow ascending neuron id within a shard: partitioning
  // over S = 1 is then exactly the identity layout.
  for (NeuronId id = 0; id < n; ++id) {
    auto& members = p.shard_neurons[p.shard_of[id]];
    p.local_index[id] = static_cast<NeuronId>(members.size());
    members.push_back(id);
  }
  return p;
}

double partition_cut_weight(const CompiledNetwork& net, const Partition& p) {
  double cut = 0.0;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
      if (p.shard_of[net.syn_target(j)] != p.shard_of[id]) {
        cut += 1.0 / static_cast<double>(net.syn_delay(j));
      }
    }
  }
  return cut;
}

Delay partition_min_cross_delay(const CompiledNetwork& net,
                                const Partition& p) {
  Delay min_cross = 0;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    for (std::size_t j = net.out_begin(id); j < net.out_end(id); ++j) {
      if (p.shard_of[net.syn_target(j)] != p.shard_of[id]) {
        const Delay d = net.syn_delay(j);
        min_cross = min_cross == 0 ? d : std::min(min_cross, d);
      }
    }
  }
  return min_cross;
}

ShardSplit CompiledNetwork::shard_split(Partition partition) const {
  const std::size_t n = num_neurons();
  SGA_REQUIRE(partition.shard_of.size() == n,
              "shard_split: partition covers " << partition.shard_of.size()
                                               << " neurons, network has "
                                               << n);

  ShardSplit split;
  split.shards.resize(partition.num_shards);
  Delay min_cross = 0;

  for (std::size_t s = 0; s < partition.num_shards; ++s) {
    const std::vector<NeuronId>& members = partition.shard_neurons[s];
    ShardCsr& shard = split.shards[s];
    shard.global_ids = members;
    shard.intra_offsets.resize(members.size() + 1);
    shard.cross_offsets.resize(members.size() + 1);
    shard.intra_offsets[0] = 0;
    shard.cross_offsets[0] = 0;

    // Two passes: count, then fill — keeps each family contiguous while
    // preserving the delay-sorted per-source synapse order inside it (the
    // cross family is then stably re-sorted by destination shard below).
    for (std::size_t k = 0; k < members.size(); ++k) {
      const NeuronId id = members[k];
      std::size_t intra = 0;
      for (std::size_t j = out_begin(id); j < out_end(id); ++j) {
        if (partition.shard_of[syn_target(j)] == s) ++intra;
      }
      shard.intra_offsets[k + 1] = shard.intra_offsets[k] + intra;
      shard.cross_offsets[k + 1] =
          shard.cross_offsets[k] + (out_degree(id) - intra);
    }
    shard.intra_target.resize(shard.intra_offsets[members.size()]);
    shard.intra_weight.resize(shard.intra_offsets[members.size()]);
    shard.intra_delay.resize(shard.intra_offsets[members.size()]);
    shard.cross_shard.resize(shard.cross_offsets[members.size()]);
    shard.cross_local.resize(shard.cross_offsets[members.size()]);
    shard.cross_weight.resize(shard.cross_offsets[members.size()]);
    shard.cross_delay.resize(shard.cross_offsets[members.size()]);

    for (std::size_t k = 0; k < members.size(); ++k) {
      const NeuronId id = members[k];
      std::size_t wi = shard.intra_offsets[k];
      std::size_t wc = shard.cross_offsets[k];
      for (std::size_t j = out_begin(id); j < out_end(id); ++j) {
        const NeuronId tgt = syn_target(j);
        const std::uint32_t ts = partition.shard_of[tgt];
        if (ts == s) {
          shard.intra_target[wi] = partition.local_index[tgt];
          shard.intra_weight[wi] = syn_weight(j);
          shard.intra_delay[wi] = syn_delay(j);
          ++wi;
        } else {
          shard.cross_shard[wc] = ts;
          shard.cross_local[wc] = partition.local_index[tgt];
          shard.cross_weight[wc] = syn_weight(j);
          shard.cross_delay[wc] = syn_delay(j);
          const Delay d = syn_delay(j);
          min_cross = min_cross == 0 ? d : std::min(min_cross, d);
          ++wc;
          ++split.num_cross_synapses;
        }
      }
    }

    // Cross family: stably re-sort each neuron's slice by destination
    // shard. The slice is already delay-ascending (inherited from the
    // delay-sorted CSR row), so stability leaves it sorted by
    // (shard, delay) with builder insertion order within each run.
    struct CrossEntry {
      std::uint32_t shard;
      NeuronId local;
      SynWeight weight;
      Delay delay;
    };
    std::vector<CrossEntry> entries;
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t cb = shard.cross_offsets[k];
      const std::size_t ce = shard.cross_offsets[k + 1];
      entries.clear();
      for (std::size_t j = cb; j < ce; ++j) {
        entries.push_back(CrossEntry{shard.cross_shard[j],
                                     shard.cross_local[j],
                                     shard.cross_weight[j],
                                     shard.cross_delay[j]});
      }
      std::stable_sort(entries.begin(), entries.end(),
                       [](const CrossEntry& a, const CrossEntry& b) {
                         return a.shard < b.shard;
                       });
      for (std::size_t j = cb; j < ce; ++j) {
        const CrossEntry& e = entries[j - cb];
        shard.cross_shard[j] = e.shard;
        shard.cross_local[j] = e.local;
        shard.cross_weight[j] = e.weight;
        shard.cross_delay[j] = e.delay;
      }
    }

    // Segment CSRs over both families: intra runs share a delay, cross
    // runs share a (shard, delay) pair.
    shard.intra_seg_offsets.resize(members.size() + 1);
    shard.cross_seg_offsets.resize(members.size() + 1);
    shard.intra_seg_offsets[0] = 0;
    shard.cross_seg_offsets[0] = 0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      std::size_t j = shard.intra_offsets[k];
      const std::size_t ie = shard.intra_offsets[k + 1];
      while (j < ie) {
        const Delay d = shard.intra_delay[j];
        const std::size_t run_begin = j;
        while (j < ie && shard.intra_delay[j] == d) ++j;
        shard.intra_seg_delay.push_back(d);
        shard.intra_seg_begin.push_back(run_begin);
        shard.intra_seg_end.push_back(j);
      }
      shard.intra_seg_offsets[k + 1] = shard.intra_seg_delay.size();

      j = shard.cross_offsets[k];
      const std::size_t ce = shard.cross_offsets[k + 1];
      while (j < ce) {
        const std::uint32_t ds = shard.cross_shard[j];
        const Delay d = shard.cross_delay[j];
        const std::size_t run_begin = j;
        while (j < ce && shard.cross_shard[j] == ds &&
               shard.cross_delay[j] == d) {
          ++j;
        }
        shard.cross_seg_shard.push_back(ds);
        shard.cross_seg_delay.push_back(d);
        shard.cross_seg_begin.push_back(run_begin);
        shard.cross_seg_end.push_back(j);
      }
      shard.cross_seg_offsets[k + 1] = shard.cross_seg_delay.size();
    }
  }
  split.min_cross_delay = min_cross;
  split.partition = std::move(partition);
  return split;
}

}  // namespace sga::snn
