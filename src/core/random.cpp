#include "core/random.h"

namespace sga {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the (astronomically unlikely) all-zero state, which is a fixed
  // point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SGA_REQUIRE(lo <= hi, "uniform_int: empty range [" << lo << ", " << hi << "]");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace sga
