// Wall-clock timer for coarse bench reporting (google-benchmark handles the
// fine-grained timing; this is for one-shot table rows).
#pragma once

#include <chrono>

namespace sga {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sga
