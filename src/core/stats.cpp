#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace sga {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::min() const {
  SGA_REQUIRE(n_ > 0, "Summary::min on empty summary");
  return min_;
}

double Summary::max() const {
  SGA_REQUIRE(n_ > 0, "Summary::max on empty summary");
  return max_;
}

double Summary::mean() const {
  SGA_REQUIRE(n_ > 0, "Summary::mean on empty summary");
  return mean_;
}

double Summary::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  SGA_REQUIRE(xs.size() == ys.size(), "fit_linear: size mismatch");
  SGA_REQUIRE(xs.size() >= 2, "fit_linear: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  SGA_REQUIRE(denom != 0, "fit_linear: degenerate x values");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LinearFit fit_power_law(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  SGA_REQUIRE(xs.size() == ys.size(), "fit_power_law: size mismatch");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SGA_REQUIRE(xs[i] > 0 && ys[i] > 0,
                "fit_power_law: inputs must be positive (got x=" << xs[i]
                                                                 << ", y="
                                                                 << ys[i] << ")");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double median(std::vector<double> v) {
  SGA_REQUIRE(!v.empty(), "median of empty vector");
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace sga
