// Small bit-manipulation helpers shared by the circuit library and the
// neuromorphic algorithms (message widths λ = ceil(log2 ·) everywhere).
#pragma once

#include <bit>
#include <cstdint>

#include "core/error.h"

namespace sga {

/// Number of bits needed to represent values 0..v, i.e. ceil(log2(v+1)),
/// with bits_for(0) == 1 (a message always has at least one bit).
inline int bits_for(std::uint64_t v) {
  if (v == 0) return 1;
  return 64 - std::countl_zero(v);
}

/// ceil(log2(v)) for v >= 1; ceil_log2(1) == 0.
inline int ceil_log2(std::uint64_t v) {
  SGA_REQUIRE(v >= 1, "ceil_log2 requires v >= 1");
  if (v == 1) return 0;
  return 64 - std::countl_zero(v - 1);
}

/// Extract bit j (0 = least significant) of v.
inline int bit_of(std::uint64_t v, int j) {
  return static_cast<int>((v >> j) & 1ULL);
}

/// All-ones mask of the low `bits` bits (bits in [1, 63]).
inline std::uint64_t mask_bits(int bits) {
  SGA_REQUIRE(bits >= 1 && bits <= 63, "mask_bits: bits out of range");
  return (1ULL << bits) - 1ULL;
}

}  // namespace sga
