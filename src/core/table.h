// ASCII table printer. The paper's "evaluation" is a set of tables; every
// bench binary regenerates its table through this printer so output is
// uniform and diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace sga {

/// Right-aligned ASCII table with a header row and optional title.
///
/// Usage:
///   Table t({"n", "m", "T (steps)", "Dijkstra ops"});
///   t.add_row({"64", "512", "1021", "3489"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Add a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Print with column widths computed from contents.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Structured access — obs::BenchReport::add_table mirrors printed tables
  // into BENCH_*.json through these.
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& cells() const { return rows_; }

  // Formatting helpers for cells.
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits = 2);
  static std::string sci(double v, int digits = 2);
  /// "yes" / "no" — the benches' predicate-column convention.
  static std::string yesno(bool v);
  /// fixed(v) or "-" for absent optionals (sparse survey columns).
  static std::string opt(const std::optional<double>& v, int digits = 0);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sga
