// Deterministic, fast pseudo-random number generation.
//
// Benchmarks and property tests must be reproducible run to run, so every
// randomized component takes an explicit seed. The generator is
// xoshiro256**, seeded via splitmix64 — the standard recipe, self-contained
// so results are identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error.h"

namespace sga {

/// xoshiro256** PRNG with splitmix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Uniformly shuffle a vector in place (Fisher–Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace sga
