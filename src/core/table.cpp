#include "core/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace sga {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SGA_REQUIRE(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SGA_REQUIRE(row.size() == header_.size(),
              "Table row arity " << row.size() << " != header arity "
                                 << header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    os << '+';
    for (const auto w : width) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::sci(double v, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::yesno(bool v) { return v ? "yes" : "no"; }

std::string Table::opt(const std::optional<double>& v, int digits) {
  return v ? fixed(*v, digits) : std::string("-");
}

}  // namespace sga
