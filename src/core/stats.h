// Summary statistics and least-squares helpers used by benches and the
// analysis layer (log-log exponent fits for asymptotic-shape checks).
#pragma once

#include <cstddef>
#include <vector>

namespace sga {

/// Running summary (count / min / max / mean / variance) via Welford's
/// algorithm; numerically stable for long benchmark streams.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Simple linear least squares fit y ≈ slope * x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Fit y = a + b x by ordinary least squares. Requires xs.size() == ys.size()
/// and at least two distinct x values.
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fit y ≈ C * x^e by regressing log y on log x; returns (e, log C) as
/// (slope, intercept). All inputs must be strictly positive.
LinearFit fit_power_law(const std::vector<double>& xs,
                        const std::vector<double>& ys);

/// Median of a vector (copies and sorts). Requires non-empty input.
double median(std::vector<double> v);

}  // namespace sga
