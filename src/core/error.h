// Error handling: a library exception type and always-on assertion macros.
//
// Following the C++ Core Guidelines (E.2, I.10) we throw on precondition
// violations rather than returning error codes; graph/SNN construction errors
// are programming errors the caller should hear about loudly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sga {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument or configuration violates a documented
/// precondition (bad neuron id, non-positive delay, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a simulation or algorithm reaches an inconsistent state that
/// indicates an internal bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind,
                                             const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "SGA_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace sga

/// Precondition check: throws sga::InvalidArgument. Always on.
#define SGA_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream sga_os_;                                           \
      sga_os_ << msg; /* NOLINT */                                          \
      ::sga::detail::throw_check_failure("SGA_REQUIRE", #expr, __FILE__,    \
                                         __LINE__, sga_os_.str());          \
    }                                                                       \
  } while (false)

/// Internal invariant check: throws sga::InternalError. Always on.
#define SGA_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream sga_os_;                                           \
      sga_os_ << msg; /* NOLINT */                                          \
      ::sga::detail::throw_check_failure("SGA_CHECK", #expr, __FILE__,      \
                                         __LINE__, sga_os_.str());          \
    }                                                                       \
  } while (false)
