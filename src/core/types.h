// Fundamental type aliases and small strong types shared across the library.
//
// The paper works with three distinct "graphs": the input graph G being
// solved, the SNN connectivity graph (Definition 3), and the crossbar H_n.
// Keeping separate index types for graph vertices and SNN neurons prevents an
// entire class of mixups when one is embedded into the other.
#pragma once

#include <cstdint>
#include <limits>

namespace sga {

/// Discrete simulation time (Definition 1: t ∈ N_+). Signed so that
/// "before the start of time" sentinels are representable.
using Time = std::int64_t;

/// Synaptic / graph-edge delay or length. Delays are integers ≥ δ (= 1).
using Delay = std::int64_t;

/// Edge length in the input graph (positive integer).
using Weight = std::int64_t;

/// Synaptic weight (Definition 1: w_ij ∈ R).
using SynWeight = double;

/// Voltage (Definition 1: v ∈ R). Every circuit in the paper uses integer
/// weights and thresholds and decay τ ∈ {0, 1}; integer-valued doubles are
/// exact below 2^53, so the simulator is bit-exact for all of them while
/// still supporting the general τ ∈ [0, 1] of Definition 1.
using Voltage = double;

/// Index of a neuron inside an snn::Network.
using NeuronId = std::uint32_t;

/// Index of a vertex in an input graph.
using VertexId = std::uint32_t;

/// Index of an edge in an input graph.
using EdgeId = std::uint32_t;

inline constexpr NeuronId kNoNeuron = std::numeric_limits<NeuronId>::max();
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// "Infinite" distance sentinel for shortest-path outputs.
inline constexpr Weight kInfiniteDistance =
    std::numeric_limits<Weight>::max() / 4;

/// Time sentinel meaning "never happened".
inline constexpr Time kNever = std::numeric_limits<Time>::max() / 4;

/// Minimum programmable synaptic delay δ (Section 2.2). Hardware-specific
/// constant; the paper (and we) take δ = 1 throughout.
inline constexpr Delay kMinDelay = 1;

}  // namespace sga
