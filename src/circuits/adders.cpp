#include "circuits/adders.h"

#include "core/error.h"

namespace sga::circuits {

namespace {

void check_lambda(int lambda, int max_bits) {
  SGA_REQUIRE(lambda >= 1 && lambda <= max_bits,
              "adder: lambda " << lambda << " out of range [1, " << max_bits
                               << "]");
}

}  // namespace

AdderCircuit build_ripple_adder(CircuitBuilder& cb, int lambda) {
  check_lambda(lambda, 62);
  AdderCircuit c;
  c.enable = cb.make_input();
  c.a = cb.make_input_bus(lambda);
  c.b = cb.make_input_bus(lambda);

  // Stage j: carry-in at level 2j (level 0 = "no carry" for j = 0 — no
  // neuron needed), threshold gates ge1/ge2/ge3 over {a_j, b_j, carry} at
  // level 2j+1, sum_j = ge1 - ge2 + ge3 at level 2j+2. ge2 doubles as the
  // carry into stage j+1.
  NeuronId carry = kNoNeuron;
  std::vector<NeuronId> sums;
  for (int j = 0; j < lambda; ++j) {
    const int gate_level = 2 * j + 1;
    const NeuronId ge1 = cb.make_gate(1, gate_level);
    const NeuronId ge2 = cb.make_gate(2, gate_level);
    const NeuronId ge3 = cb.make_gate(3, gate_level);
    for (const NeuronId g : {ge1, ge2, ge3}) {
      cb.connect(c.a[static_cast<std::size_t>(j)], g, 1);
      cb.connect(c.b[static_cast<std::size_t>(j)], g, 1);
      if (carry != kNoNeuron) cb.connect(carry, g, 1);
    }
    const NeuronId s = cb.make_gate(1, gate_level + 1);
    cb.connect(ge1, s, 1);
    cb.connect(ge2, s, -1);
    cb.connect(ge3, s, 1);
    sums.push_back(s);
    carry = ge2;
  }

  // Align every sum bit (level 2j+2) and the carry-out (level 2λ-1) to a
  // common output level via buffers, so one presentation's output is a
  // single time step.
  c.depth = 2 * lambda + 2;
  for (int j = 0; j < lambda; ++j) {
    c.sum.push_back(cb.buffer(sums[static_cast<std::size_t>(j)], c.depth));
  }
  c.carry_out = cb.buffer(carry, c.depth);
  c.stats = cb.stats();
  return c;
}

AdderCircuit build_ramos_adder(CircuitBuilder& cb, int lambda) {
  check_lambda(lambda, 50);  // weights reach 2^λ
  AdderCircuit c;
  c.enable = cb.make_input();
  c.a = cb.make_input_bus(lambda);
  c.b = cb.make_input_bus(lambda);

  // Level 1: carry into bit j (j = 1..λ) fires iff
  //   Σ_{i<j} 2^i (a_i + b_i) ≥ 2^j.
  // carries[j] = carry INTO bit j; carries[λ] is the carry-out.
  std::vector<NeuronId> carries(static_cast<std::size_t>(lambda) + 1, kNoNeuron);
  for (int j = 1; j <= lambda; ++j) {
    const NeuronId cj =
        cb.make_gate(static_cast<Voltage>(static_cast<double>(1ULL << j)), 1);
    for (int i = 0; i < j; ++i) {
      const double w = static_cast<double>(1ULL << i);
      cb.connect(c.a[static_cast<std::size_t>(i)], cj, w);
      cb.connect(c.b[static_cast<std::size_t>(i)], cj, w);
    }
    carries[static_cast<std::size_t>(j)] = cj;
  }

  // Level 2: s_j = a_j + b_j + carry_j - 2·carry_{j+1} ∈ {0, 1}.
  for (int j = 0; j < lambda; ++j) {
    const NeuronId s = cb.make_gate(1, 2);
    cb.connect(c.a[static_cast<std::size_t>(j)], s, 1);
    cb.connect(c.b[static_cast<std::size_t>(j)], s, 1);
    if (j >= 1) cb.connect(carries[static_cast<std::size_t>(j)], s, 1);
    cb.connect(carries[static_cast<std::size_t>(j) + 1], s, -2);
    c.sum.push_back(s);
  }
  c.carry_out = cb.buffer(carries[static_cast<std::size_t>(lambda)], 2);
  c.depth = 2;
  c.stats = cb.stats();
  return c;
}

AdderCircuit build_lookahead_adder(CircuitBuilder& cb, int lambda) {
  check_lambda(lambda, 62);
  AdderCircuit c;
  c.enable = cb.make_input();
  c.a = cb.make_input_bus(lambda);
  c.b = cb.make_input_bus(lambda);

  // Level 1: generate g_i = a_i ∧ b_i and propagate p_i = a_i ∨ b_i.
  std::vector<NeuronId> g, p;
  for (int i = 0; i < lambda; ++i) {
    const NeuronId gi = cb.make_gate(2, 1);
    cb.connect(c.a[static_cast<std::size_t>(i)], gi, 1);
    cb.connect(c.b[static_cast<std::size_t>(i)], gi, 1);
    g.push_back(gi);
    const NeuronId pi = cb.make_gate(1, 1);
    cb.connect(c.a[static_cast<std::size_t>(i)], pi, 1);
    cb.connect(c.b[static_cast<std::size_t>(i)], pi, 1);
    p.push_back(pi);
  }

  // Level 2: t_{i,j} = g_i ∧ p_{i+1} ∧ ... ∧ p_{j-1} (carry generated at i
  // survives to j). O(λ²) neurons — the size of this construction.
  // Level 3: carry_j = ∨_{i<j} t_{i,j}.
  std::vector<NeuronId> carries(static_cast<std::size_t>(lambda) + 1, kNoNeuron);
  for (int j = 1; j <= lambda; ++j) {
    std::vector<NeuronId> terms;
    for (int i = 0; i < j; ++i) {
      const NeuronId t = cb.make_gate(static_cast<Voltage>(j - i), 2);
      cb.connect(g[static_cast<std::size_t>(i)], t, 1);
      for (int r = i + 1; r < j; ++r) {
        cb.connect(p[static_cast<std::size_t>(r)], t, 1);
      }
      terms.push_back(t);
    }
    carries[static_cast<std::size_t>(j)] = cb.or_gate(terms, 3);
  }

  // Level 4: s_j = a_j + b_j + carry_j - 2·carry_{j+1}.
  for (int j = 0; j < lambda; ++j) {
    const NeuronId s = cb.make_gate(1, 4);
    cb.connect(c.a[static_cast<std::size_t>(j)], s, 1);
    cb.connect(c.b[static_cast<std::size_t>(j)], s, 1);
    if (j >= 1) cb.connect(carries[static_cast<std::size_t>(j)], s, 1);
    cb.connect(carries[static_cast<std::size_t>(j) + 1], s, -2);
    c.sum.push_back(s);
  }
  c.carry_out = cb.buffer(carries[static_cast<std::size_t>(lambda)], 4);
  c.depth = 4;
  c.stats = cb.stats();
  return c;
}

AdderCircuit build_adder(CircuitBuilder& cb, int lambda, AdderKind kind) {
  switch (kind) {
    case AdderKind::kRipple:
      return build_ripple_adder(cb, lambda);
    case AdderKind::kRamosBohorquez:
      return build_ramos_adder(cb, lambda);
    case AdderKind::kLookahead:
      return build_lookahead_adder(cb, lambda);
  }
  SGA_CHECK(false, "unreachable adder kind");
}

}  // namespace sga::circuits
