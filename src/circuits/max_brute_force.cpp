// Brute-force max/min (Theorem 5.2, Figure 5).
//
// Level 1: for every pair x < y, neuron C_xy with weights +2^j on the bits
// of b_x, -2^j on the bits of b_y and +1 from the constant Eq line fires iff
// b_x - b_y + 1 ≥ 1, i.e. b_x ≥ b_y.
// Level 2: C_xy for x > y is the NOT of C_yx (constant S line), firing iff
// b_x > b_y — the strictness implements smallest-index tie-breaking.
// Level 3: M_x = AND of its d-1 comparisons (threshold d-1) — exactly one
// M_x fires. Levels 4–5 extract the winning value (same filter/merge scheme
// as Theorem 5.1's circuit). Depth is constant (5); the paper's "depth 3"
// counts only the index-computing layers. Size O(d² + dλ), weights up to
// 2^{λ-1} — the Table 2 trade-off.
#include "circuits/max_circuits.h"

#include "core/error.h"

namespace sga::circuits {

namespace {

MaxCircuit build_brute_force_impl(CircuitBuilder& cb, int d, int lambda,
                                  bool compute_min) {
  SGA_REQUIRE(d >= 1, "brute-force max: need d >= 1 inputs");
  SGA_REQUIRE(lambda >= 1 && lambda <= 50,
              "brute-force max: lambda " << lambda
                                         << " too large for 2^λ weights");

  MaxCircuit c;
  c.enable = cb.make_input();
  for (int i = 0; i < d; ++i) c.inputs.push_back(cb.make_input_bus(lambda));

  // ge[x][y] for x < y: fires iff b_x ≥ b_y (≤ for min).
  std::vector<std::vector<NeuronId>> ge(
      static_cast<std::size_t>(d),
      std::vector<NeuronId>(static_cast<std::size_t>(d), kNoNeuron));
  const double sign = compute_min ? -1.0 : 1.0;
  for (int x = 0; x < d; ++x) {
    for (int y = x + 1; y < d; ++y) {
      const NeuronId cmp = cb.make_gate(1, 1);
      for (int j = 0; j < lambda; ++j) {
        const double w = sign * static_cast<double>(1ULL << j);
        cb.connect(c.inputs[static_cast<std::size_t>(x)][static_cast<std::size_t>(j)],
                   cmp, w);
        cb.connect(c.inputs[static_cast<std::size_t>(y)][static_cast<std::size_t>(j)],
                   cmp, -w);
      }
      cb.connect(c.enable, cmp, 1);  // the Eq input: ties favour x < y
      ge[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = cmp;
    }
  }
  // Strict comparisons for x > y as NOTs of the x < y neurons.
  for (int x = 0; x < d; ++x) {
    for (int y = 0; y < x; ++y) {
      ge[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = cb.not_gate(
          ge[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)], c.enable, 2);
    }
  }

  // M_x: wins all its d-1 comparisons. For d = 1 the single input wins by
  // definition (gated on enable so the pipeline timing stays uniform).
  for (int x = 0; x < d; ++x) {
    if (d == 1) {
      c.winners.push_back(cb.buffer(c.enable, 3));
      continue;
    }
    std::vector<NeuronId> row;
    row.reserve(static_cast<std::size_t>(d - 1));
    for (int y = 0; y < d; ++y) {
      if (y != x) {
        row.push_back(ge[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]);
      }
    }
    c.winners.push_back(cb.and_gate(row, 3));
  }
  c.winner_level = 3;

  // Filter + merge (as in Theorem 5.1's proof: "compute the maximum value
  // using M_i the same way we used the a_{i1} neurons").
  std::vector<std::vector<NeuronId>> filtered(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < lambda; ++j) {
      const NeuronId f = cb.make_gate(2, 4);
      cb.connect(c.winners[static_cast<std::size_t>(i)], f, 1);
      cb.connect(c.inputs[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                 f, 1);
      filtered[static_cast<std::size_t>(i)].push_back(f);
    }
  }
  for (int j = 0; j < lambda; ++j) {
    std::vector<NeuronId> column;
    for (int i = 0; i < d; ++i) {
      column.push_back(filtered[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    c.outputs.push_back(cb.or_gate(column, 5));
  }
  c.depth = 5;
  c.stats = cb.stats();
  return c;
}

}  // namespace

MaxCircuit build_max_brute_force(CircuitBuilder& cb, int d, int lambda) {
  return build_brute_force_impl(cb, d, lambda, /*compute_min=*/false);
}

MaxCircuit build_min_brute_force(CircuitBuilder& cb, int d, int lambda) {
  return build_brute_force_impl(cb, d, lambda, /*compute_min=*/true);
}

}  // namespace sga::circuits
