// In-network storage (Section 4.3): the paper's k-hop algorithms "store
// additional information at each graph node" at an O(k)-factor neuron cost.
// These circuits are that memory: a strobed store captures the value on a
// λ-bit bus at the instant a strobe fires (into Figure-1(B) latches), and a
// round store replicates it k times, strobed by a clock chain with the
// round period — one latch bank per round, exactly the "multiplicative
// factor of O(k) additional neurons".
#pragma once

#include <vector>

#include "core/types.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::circuits {

/// Captures the bus value present at strobe time. Contract: the bus bits of
/// one value and the strobe must fire on the SAME time step; the latches
/// hold the captured bits (firing every step) until externally reset.
struct StrobedStore {
  std::vector<NeuronId> bus;      ///< λ input relays (drive externally)
  NeuronId strobe = kNoNeuron;    ///< capture trigger (input relay)
  std::vector<NeuronId> capture;  ///< AND gates (fire once per capture)
  std::vector<NeuronId> latches;  ///< persistent storage (Figure 1(B))
  std::size_t neurons = 0;
};

StrobedStore build_strobed_store(snn::Network& net, int bits);

/// k latch banks strobed by an internal clock chain: injecting a spike into
/// `clock_start` at time t0 makes bank r (0-based) capture the bus value
/// present at time t0 + r·period.
struct RoundStore {
  std::vector<NeuronId> bus;
  NeuronId clock_start = kNoNeuron;
  std::vector<NeuronId> ticks;                  ///< tick r fires at t0 + r·period
  std::vector<std::vector<NeuronId>> latches;   ///< [round][bit]
  std::size_t neurons = 0;
};

RoundStore build_round_store(snn::Network& net, int bits, Delay period,
                             int rounds);

/// Read a bank after the run: bit b set iff the latch ever fired.
std::uint64_t read_latched(const snn::Simulator& sim,
                           const std::vector<NeuronId>& latches);

}  // namespace sga::circuits
