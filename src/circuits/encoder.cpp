#include "circuits/encoder.h"

#include "core/bitops.h"
#include "core/error.h"

namespace sga::circuits {

EncoderCircuit build_encoder(CircuitBuilder& cb, int d) {
  SGA_REQUIRE(d >= 1, "encoder: need at least one line");
  EncoderCircuit e;
  e.inputs = cb.make_input_bus(d);
  const int bits = bits_for(static_cast<std::uint64_t>(d - 1));
  e.depth = 1;
  for (int b = 0; b < bits; ++b) {
    std::vector<NeuronId> lines;
    for (int i = 0; i < d; ++i) {
      if (bit_of(static_cast<std::uint64_t>(i), b)) {
        lines.push_back(e.inputs[static_cast<std::size_t>(i)]);
      }
    }
    if (lines.empty()) {
      // Bit never set among indices (only for d == 1): a silent gate keeps
      // the bus width uniform.
      e.index.push_back(cb.make_gate(1, 1));
    } else {
      e.index.push_back(cb.or_gate(lines, 1));
    }
  }
  e.any = cb.or_gate(e.inputs, 1);
  e.stats = cb.stats();
  return e;
}

}  // namespace sga::circuits
