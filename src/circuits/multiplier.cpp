#include "circuits/multiplier.h"

#include <algorithm>

#include "core/bitops.h"
#include "core/error.h"

namespace sga::circuits {

namespace {

/// An operand mid-composition: neuron per bit (kNoNeuron = constant 0),
/// all firing at the same absolute time offset.
struct Operand {
  std::vector<NeuronId> bits;
  int offset = 0;
};

/// Feed `op` into an adder's input relay bus (level 0 of the adder's own
/// frame), making the relays fire at `arrival`.
void wire_operand(snn::Network& net, const Operand& op,
                  const std::vector<NeuronId>& relays, int arrival) {
  SGA_CHECK(arrival > op.offset, "operand arrives before it is produced");
  for (std::size_t b = 0; b < relays.size(); ++b) {
    if (b < op.bits.size() && op.bits[b] != kNoNeuron) {
      net.add_synapse(op.bits[b], relays[b], 1, arrival - op.offset);
    }
  }
}

/// Sum two operands with a fresh W-bit adder; returns the result operand.
Operand add_operands(CircuitBuilder& cb, const Operand& a, const Operand& b,
                     int width, AdderKind kind) {
  const AdderCircuit adder = build_adder(cb, width, kind);
  const int arrival = std::max(a.offset, b.offset) + 1;
  wire_operand(cb.net(), a, adder.a, arrival);
  wire_operand(cb.net(), b, adder.b, arrival);
  Operand out;
  out.bits = adder.sum;
  out.offset = arrival + adder.depth;
  return out;
}

}  // namespace

ConstMultiplier build_const_multiplier(CircuitBuilder& cb, int in_bits,
                                       std::uint64_t constant,
                                       AdderKind adder) {
  SGA_REQUIRE(in_bits >= 1 && in_bits <= 32, "const multiplier: bad width");
  SGA_REQUIRE(constant >= 1, "const multiplier: constant must be >= 1");
  ConstMultiplier m;
  m.in_bits = in_bits;
  m.out_bits = in_bits + bits_for(constant);
  SGA_REQUIRE(m.out_bits <= 62, "const multiplier: product too wide");
  m.enable = cb.make_input();
  m.x = cb.make_input_bus(in_bits);

  // Shift-and-add over the set bits of the constant.
  Operand acc;
  bool have_acc = false;
  for (int s = 0; s < 64; ++s) {
    if (!((constant >> s) & 1ULL)) continue;
    // x << s as a virtual operand at offset 0.
    Operand shifted;
    shifted.bits.assign(static_cast<std::size_t>(m.out_bits), kNoNeuron);
    for (int b = 0; b < in_bits; ++b) {
      shifted.bits[static_cast<std::size_t>(b + s)] =
          m.x[static_cast<std::size_t>(b)];
    }
    shifted.offset = 0;
    if (!have_acc) {
      acc = std::move(shifted);
      have_acc = true;
    } else {
      acc = add_operands(cb, acc, shifted, m.out_bits, adder);
    }
  }
  SGA_CHECK(have_acc, "constant had no set bits");

  if (acc.offset == 0) {
    // Power-of-two constant: materialize the wiring through a relay layer
    // so the output contract (real neurons at a positive depth) holds.
    std::vector<NeuronId> relayed;
    for (std::size_t b = 0; b < acc.bits.size(); ++b) {
      if (acc.bits[b] == kNoNeuron) {
        // Constant-zero bit: a relay that never fires.
        relayed.push_back(cb.make_gate(1, 1));
      } else {
        relayed.push_back(cb.buffer(acc.bits[b], 1));
      }
    }
    acc.bits = std::move(relayed);
    acc.offset = 1;
  } else {
    // Replace virtual zero bits (none remain after an adder) — adders
    // always produce a full-width bus.
    SGA_CHECK(acc.bits.size() == static_cast<std::size_t>(m.out_bits),
              "accumulator width drifted");
  }
  m.product = acc.bits;
  m.depth = acc.offset;
  m.stats = cb.stats();
  return m;
}

AdderTree build_adder_tree(CircuitBuilder& cb, int d, int in_bits,
                           AdderKind adder) {
  SGA_REQUIRE(d >= 1, "adder tree: need at least one operand");
  SGA_REQUIRE(in_bits >= 1 && in_bits <= 32, "adder tree: bad width");
  AdderTree t;
  t.in_bits = in_bits;
  t.out_bits = in_bits + ceil_log2(static_cast<std::uint64_t>(d)) +
               (d == 1 ? 0 : 0);
  if (d > 1) t.out_bits = in_bits + bits_for(static_cast<std::uint64_t>(d) - 1);
  SGA_REQUIRE(t.out_bits <= 62, "adder tree: sum too wide");
  t.enable = cb.make_input();

  std::vector<Operand> operands;
  for (int i = 0; i < d; ++i) {
    t.inputs.push_back(cb.make_input_bus(in_bits));
    Operand op;
    op.bits = t.inputs.back();
    op.offset = 0;
    operands.push_back(std::move(op));
  }

  // Balanced reduction: pair operands round by round.
  while (operands.size() > 1) {
    std::vector<Operand> next;
    for (std::size_t i = 0; i + 1 < operands.size(); i += 2) {
      next.push_back(
          add_operands(cb, operands[i], operands[i + 1], t.out_bits, adder));
    }
    if (operands.size() % 2 == 1) next.push_back(operands.back());
    operands = std::move(next);
  }

  Operand& result = operands.front();
  if (result.offset == 0) {
    // d == 1: buffer through one relay layer.
    std::vector<NeuronId> relayed;
    relayed.reserve(static_cast<std::size_t>(t.out_bits));
    for (int b = 0; b < t.out_bits; ++b) {
      if (b < in_bits) {
        relayed.push_back(cb.buffer(result.bits[static_cast<std::size_t>(b)], 1));
      } else {
        relayed.push_back(cb.make_gate(1, 1));  // never fires
      }
    }
    result.bits = std::move(relayed);
    result.offset = 1;
  }
  t.sum = result.bits;
  t.depth = result.offset;
  t.stats = cb.stats();
  return t;
}

}  // namespace sga::circuits
