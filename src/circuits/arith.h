// Derived arithmetic circuits used by the neuromorphic graph algorithms:
// add-a-hardwired-constant (edge circuits of Section 4.2), subtract-one
// (the TTL decrement of Section 4.1, implemented as the paper suggests by
// adding the two's complement of 1), and bus gating (AND every bit of a bus
// with a control line, used to mask invalid messages).
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct AddConstCircuit {
  std::vector<NeuronId> a;  ///< λ-bit input (LSB first)
  NeuronId enable = kNoNeuron;  ///< supplies the constant's 1-bits
  std::vector<NeuronId> sum;    ///< λ bits at level `depth` (mod 2^λ)
  int depth = 0;
  CircuitStats stats;
};

/// Ripple circuit computing (a + constant) mod 2^λ. The constant's set bits
/// are realised as weights from the enable line, which must fire at every
/// presentation. O(λ) neurons, O(λ) depth.
AddConstCircuit build_add_constant(CircuitBuilder& cb, int lambda,
                                   std::uint64_t constant);

/// (a - 1) mod 2^λ: add_constant with 2^λ - 1, i.e. the two's complement of
/// 1 ("⌈log k⌉ ones"), exactly as Section 4.1 describes.
AddConstCircuit build_decrement(CircuitBuilder& cb, int lambda);

/// AND every bit of `bus` with `control`; result bits live at `level`
/// (must exceed the levels of bus bits and control).
std::vector<NeuronId> gate_bus(CircuitBuilder& cb,
                               const std::vector<NeuronId>& bus,
                               NeuronId control, int level);

}  // namespace sga::circuits
