// Constant multiplication and multi-operand addition — the circuits that
// turn the Section-2.2 matrix-vector NGA ("each edge ij computes
// m_{ij,r} = A_ij · m_{i,r}, each node j computes Σ_i m_{ij,r}") into an
// actual spiking network.
//
// * build_const_multiplier: y = C·x for a hard-wired constant C, as a
//   shift-and-add chain over the set bits of C (shifts are free: bit b of x
//   feeds position b+s of the next adder). O(popcount(C)) adder stages.
// * build_adder_tree: Σ of d operands as a balanced binary tree of
//   two-operand adders, ⌈log₂ d⌉ levels deep.
// Both are levelled feed-forward circuits: fully pipelined, outputs aligned
// at `depth`.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/adders.h"
#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct ConstMultiplier {
  std::vector<NeuronId> x;  ///< input operand (LSB first)
  NeuronId enable = kNoNeuron;
  std::vector<NeuronId> product;  ///< out_bits wide, at level `depth`
  int in_bits = 0;
  int out_bits = 0;
  int depth = 0;
  CircuitStats stats;
};

/// y = constant · x. `in_bits` is x's width; the product bus is
/// in_bits + bits_for(constant) wide so it never overflows. constant ≥ 1.
ConstMultiplier build_const_multiplier(CircuitBuilder& cb, int in_bits,
                                       std::uint64_t constant,
                                       AdderKind adder = AdderKind::kRipple);

struct AdderTree {
  std::vector<std::vector<NeuronId>> inputs;  ///< d operands, in_bits each
  NeuronId enable = kNoNeuron;
  std::vector<NeuronId> sum;  ///< in_bits + ⌈log₂ d⌉ wide, at level `depth`
  int in_bits = 0;
  int out_bits = 0;
  int depth = 0;
  CircuitStats stats;
};

/// Σ of d ≥ 1 operands of in_bits each. Output width grows by ⌈log₂ d⌉
/// so the sum is exact.
AdderTree build_adder_tree(CircuitBuilder& cb, int d, int in_bits,
                           AdderKind adder = AdderKind::kRipple);

}  // namespace sga::circuits
