// Small composite circuits: the stand-alone pairwise comparator of
// Figure 5A (≥ / > / = outputs) and a parity (XOR) gate — building blocks
// reused by tests and by downstream users of the library.
#pragma once

#include <vector>

#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct ComparatorCircuit {
  std::vector<NeuronId> a, b;  ///< λ-bit operands (LSB first)
  NeuronId enable = kNoNeuron;
  NeuronId ge = kNoNeuron;  ///< fires iff a ≥ b (level 1)
  NeuronId gt = kNoNeuron;  ///< fires iff a > b (level 2)
  NeuronId eq = kNoNeuron;  ///< fires iff a = b (level 3)
  int depth = 0;
  CircuitStats stats;
};

/// Figure 5A: one neuron with weights ±2^j computes a ≥ b; a NOT of the
/// reversed comparison gives strictness; eq = ge ∧ ¬gt.
ComparatorCircuit build_comparator(CircuitBuilder& cb, int lambda);

/// XOR of two single bits via the ge1/ge2 trick: fires iff exactly one of
/// x, y fired. Output at `level` (needs 2 internal levels: level ≥
/// max(level(x), level(y)) + 2).
NeuronId xor_gate(CircuitBuilder& cb, NeuronId x, NeuronId y, int level);

}  // namespace sga::circuits
