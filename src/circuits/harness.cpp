#include "circuits/harness.h"

#include "core/error.h"
#include "obs/metrics.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {

namespace {

void present_values(snn::Simulator& sim, const MaxCircuit& c,
                    const std::vector<std::uint64_t>& values, Time t) {
  SGA_REQUIRE(values.size() == c.inputs.size(),
              "max circuit expects " << c.inputs.size() << " values, got "
                                     << values.size());
  sim.inject_spike(c.enable, t);
  for (std::size_t i = 0; i < values.size(); ++i) {
    snn::inject_binary(sim, c.inputs[i], values[i], t);
  }
}

}  // namespace

std::uint64_t eval_max_circuit(const snn::CompiledNetwork& net,
                               const MaxCircuit& c,
                               const std::vector<std::uint64_t>& values) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  present_values(sim, c, values, 0);
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  return snn::decode_binary_at(sim, c.outputs, c.depth);
}

std::vector<std::uint64_t> eval_max_circuit_pipelined(
    const snn::CompiledNetwork& net, const MaxCircuit& c,
    const std::vector<std::vector<std::uint64_t>>& presentations) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  for (std::size_t r = 0; r < presentations.size(); ++r) {
    present_values(sim, c, presentations[r], static_cast<Time>(r));
  }
  snn::SimConfig cfg;
  cfg.max_time = c.depth + static_cast<Time>(presentations.size());
  cfg.record_spike_log = true;
  sim.run(cfg);

  // With back-to-back presentations an output bit can fire several times;
  // recover each presentation's bit pattern from the spike log.
  std::vector<std::uint64_t> results(presentations.size(), 0);
  for (const auto& [t, id] : sim.spike_log()) {
    for (std::size_t j = 0; j < c.outputs.size(); ++j) {
      if (id != c.outputs[j]) continue;
      const Time r = t - c.depth;
      if (r >= 0 && static_cast<std::size_t>(r) < results.size()) {
        results[static_cast<std::size_t>(r)] |= 1ULL << j;
      }
    }
  }
  return results;
}

std::uint64_t eval_adder_circuit(const snn::CompiledNetwork& net,
                                 const AdderCircuit& c, std::uint64_t a,
                                 std::uint64_t b, bool* carry) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  sim.inject_spike(c.enable, 0);
  snn::inject_binary(sim, c.a, a, 0);
  snn::inject_binary(sim, c.b, b, 0);
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  if (carry != nullptr) *carry = sim.fired_at(c.carry_out, c.depth);
  return snn::decode_binary_at(sim, c.sum, c.depth);
}

std::vector<std::uint64_t> eval_adder_circuit_pipelined(
    const snn::CompiledNetwork& net, const AdderCircuit& c,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& presentations) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  for (std::size_t r = 0; r < presentations.size(); ++r) {
    const auto t = static_cast<Time>(r);
    sim.inject_spike(c.enable, t);
    snn::inject_binary(sim, c.a, presentations[r].first, t);
    snn::inject_binary(sim, c.b, presentations[r].second, t);
  }
  snn::SimConfig cfg;
  cfg.max_time = c.depth + static_cast<Time>(presentations.size());
  cfg.record_spike_log = true;
  sim.run(cfg);

  std::vector<std::uint64_t> results(presentations.size(), 0);
  for (const auto& [t, id] : sim.spike_log()) {
    for (std::size_t j = 0; j < c.sum.size(); ++j) {
      if (id != c.sum[j]) continue;
      const Time r = t - c.depth;
      if (r >= 0 && static_cast<std::size_t>(r) < results.size()) {
        results[static_cast<std::size_t>(r)] |= 1ULL << j;
      }
    }
  }
  return results;
}

std::uint64_t eval_add_const_circuit(const snn::CompiledNetwork& net,
                                     const AddConstCircuit& c,
                                     std::uint64_t a) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  sim.inject_spike(c.enable, 0);
  snn::inject_binary(sim, c.a, a, 0);
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  return snn::decode_binary_at(sim, c.sum, c.depth);
}

CmpOutputs eval_comparator(const snn::CompiledNetwork& net,
                           const ComparatorCircuit& c, std::uint64_t a,
                           std::uint64_t b) {
  const obs::ScopedTimer eval_timer(obs::thread_metrics(), "circuits.eval_ns");
  if (obs::MetricsRegistry* m = obs::thread_metrics()) m->add("circuits.evals");
  snn::Simulator sim(net);
  sim.inject_spike(c.enable, 0);
  snn::inject_binary(sim, c.a, a, 0);
  snn::inject_binary(sim, c.b, b, 0);
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  CmpOutputs out;
  out.ge = sim.fired_at(c.ge, 1);
  out.gt = sim.fired_at(c.gt, 2);
  out.eq = sim.fired_at(c.eq, 3);
  return out;
}

// ---- Convenience overloads: freeze on the spot ------------------------

std::uint64_t eval_max_circuit(const snn::Network& net, const MaxCircuit& c,
                               const std::vector<std::uint64_t>& values) {
  return eval_max_circuit(net.compile(), c, values);
}

std::vector<std::uint64_t> eval_max_circuit_pipelined(
    const snn::Network& net, const MaxCircuit& c,
    const std::vector<std::vector<std::uint64_t>>& presentations) {
  return eval_max_circuit_pipelined(net.compile(), c, presentations);
}

std::uint64_t eval_adder_circuit(const snn::Network& net,
                                 const AdderCircuit& c, std::uint64_t a,
                                 std::uint64_t b, bool* carry) {
  return eval_adder_circuit(net.compile(), c, a, b, carry);
}

std::vector<std::uint64_t> eval_adder_circuit_pipelined(
    const snn::Network& net, const AdderCircuit& c,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& presentations) {
  return eval_adder_circuit_pipelined(net.compile(), c, presentations);
}

std::uint64_t eval_add_const_circuit(const snn::Network& net,
                                     const AddConstCircuit& c,
                                     std::uint64_t a) {
  return eval_add_const_circuit(net.compile(), c, a);
}

CmpOutputs eval_comparator(const snn::Network& net, const ComparatorCircuit& c,
                           std::uint64_t a, std::uint64_t b) {
  return eval_comparator(net.compile(), c, a, b);
}

}  // namespace sga::circuits
