// Evaluation harness: present integer inputs to a built circuit, run the
// event-driven simulator, and decode the outputs at the circuit's depth.
// The pipelined variants present one input vector per consecutive time step,
// exercising the property the NGA compilations rely on: levelled τ=1
// circuits process back-to-back presentations independently.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/adders.h"
#include "circuits/arith.h"
#include "circuits/gates.h"
#include "circuits/max_circuits.h"
#include "snn/compiled_network.h"
#include "snn/network.h"

namespace sga::circuits {

// The primary overloads take a frozen CompiledNetwork so repeated
// evaluations of one circuit (parameter sweeps, pipelined benchmarks) pay
// the freeze/validation cost once. Each has a `const Network&` convenience
// overload that compiles on the spot — fine for one-shot use in tests.

/// Single presentation at t = 0; returns the λ-bit output.
std::uint64_t eval_max_circuit(const snn::CompiledNetwork& net,
                               const MaxCircuit& c,
                               const std::vector<std::uint64_t>& values);
std::uint64_t eval_max_circuit(const snn::Network& net, const MaxCircuit& c,
                               const std::vector<std::uint64_t>& values);

/// One presentation per time step t = 0, 1, ...; returns one output per
/// presentation (decoded at t + depth).
std::vector<std::uint64_t> eval_max_circuit_pipelined(
    const snn::CompiledNetwork& net, const MaxCircuit& c,
    const std::vector<std::vector<std::uint64_t>>& presentations);
std::vector<std::uint64_t> eval_max_circuit_pipelined(
    const snn::Network& net, const MaxCircuit& c,
    const std::vector<std::vector<std::uint64_t>>& presentations);

/// a + b; if carry is non-null it receives the carry-out bit.
std::uint64_t eval_adder_circuit(const snn::CompiledNetwork& net,
                                 const AdderCircuit& c, std::uint64_t a,
                                 std::uint64_t b, bool* carry = nullptr);
std::uint64_t eval_adder_circuit(const snn::Network& net,
                                 const AdderCircuit& c, std::uint64_t a,
                                 std::uint64_t b, bool* carry = nullptr);

std::vector<std::uint64_t> eval_adder_circuit_pipelined(
    const snn::CompiledNetwork& net, const AdderCircuit& c,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& presentations);
std::vector<std::uint64_t> eval_adder_circuit_pipelined(
    const snn::Network& net, const AdderCircuit& c,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& presentations);

/// (a + constant) mod 2^λ for an AddConstCircuit.
std::uint64_t eval_add_const_circuit(const snn::CompiledNetwork& net,
                                     const AddConstCircuit& c,
                                     std::uint64_t a);
std::uint64_t eval_add_const_circuit(const snn::Network& net,
                                     const AddConstCircuit& c,
                                     std::uint64_t a);

struct CmpOutputs {
  bool ge = false, gt = false, eq = false;
};
CmpOutputs eval_comparator(const snn::CompiledNetwork& net,
                           const ComparatorCircuit& c, std::uint64_t a,
                           std::uint64_t b);
CmpOutputs eval_comparator(const snn::Network& net, const ComparatorCircuit& c,
                           std::uint64_t a, std::uint64_t b);

}  // namespace sga::circuits
