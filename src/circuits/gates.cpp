#include "circuits/gates.h"

#include "core/error.h"

namespace sga::circuits {

ComparatorCircuit build_comparator(CircuitBuilder& cb, int lambda) {
  SGA_REQUIRE(lambda >= 1 && lambda <= 50, "comparator: bad lambda " << lambda);
  ComparatorCircuit c;
  c.enable = cb.make_input();
  c.a = cb.make_input_bus(lambda);
  c.b = cb.make_input_bus(lambda);

  // ge: a - b + 1 ≥ 1  ⇔  a ≥ b.
  c.ge = cb.make_gate(1, 1);
  // le (internal): b - a + 1 ≥ 1  ⇔  b ≥ a (the reversed comparison).
  const NeuronId le = cb.make_gate(1, 1);
  for (int j = 0; j < lambda; ++j) {
    const double w = static_cast<double>(1ULL << j);
    cb.connect(c.a[static_cast<std::size_t>(j)], c.ge, w);
    cb.connect(c.b[static_cast<std::size_t>(j)], c.ge, -w);
    cb.connect(c.a[static_cast<std::size_t>(j)], le, -w);
    cb.connect(c.b[static_cast<std::size_t>(j)], le, w);
  }
  cb.connect(c.enable, c.ge, 1);
  cb.connect(c.enable, le, 1);

  // gt = ¬le (Figure 5A's NOT of the reversed comparison): a > b.
  c.gt = cb.not_gate(le, c.enable, 2);
  // eq = ge ∧ ¬gt; buffer ge to level 2 via the delay on the synapse.
  c.eq = cb.make_gate(1, 3);
  cb.connect(c.ge, c.eq, 1);
  cb.connect(c.gt, c.eq, -1);

  c.depth = 3;
  c.stats = cb.stats();
  return c;
}

NeuronId xor_gate(CircuitBuilder& cb, NeuronId x, NeuronId y, int level) {
  const int inner = level - 1;
  SGA_REQUIRE(inner > cb.level_of(x) && inner > cb.level_of(y),
              "xor_gate: level too shallow");
  const NeuronId ge1 = cb.make_gate(1, inner);
  const NeuronId ge2 = cb.make_gate(2, inner);
  cb.connect(x, ge1, 1);
  cb.connect(y, ge1, 1);
  cb.connect(x, ge2, 1);
  cb.connect(y, ge2, 1);
  const NeuronId out = cb.make_gate(1, level);
  cb.connect(ge1, out, 1);
  cb.connect(ge2, out, -1);
  return out;
}

}  // namespace sga::circuits
