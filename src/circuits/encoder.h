// One-hot → binary encoder: turns the winner indicators of the Section-5
// max circuits (Figure 3's a_{i,1} / Figure 5's M_x) into a ⌈log₂ d⌉-bit
// index — the circuit behind Section 3's "binary encoding of its ID".
// Pure wiring through OR gates: index bit b fires iff some winner whose
// index has bit b set fires. With multiple simultaneous winners the output
// is the OR of their indices (the documented tie behaviour of the ID
// broadcast scheme); the brute-force max's unique winner gives an exact
// index.
#pragma once

#include <vector>

#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct EncoderCircuit {
  std::vector<NeuronId> inputs;  ///< d one-hot lines
  std::vector<NeuronId> index;   ///< ⌈log₂ d⌉ bits (LSB first), level depth
  NeuronId any = kNoNeuron;      ///< fires iff any input fired
  int depth = 0;
  CircuitStats stats;
};

/// Encoder over d ≥ 1 lines; inputs are fresh level-0 relays (wire the
/// winner neurons into them, or register_external + connect upstream).
EncoderCircuit build_encoder(CircuitBuilder& cb, int d);

}  // namespace sga::circuits
