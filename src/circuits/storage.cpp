#include "circuits/storage.h"

#include "circuits/primitives.h"
#include "core/error.h"

namespace sga::circuits {

StrobedStore build_strobed_store(snn::Network& net, int bits) {
  SGA_REQUIRE(bits >= 1 && bits <= 63, "strobed store: bad width " << bits);
  StrobedStore s;
  const std::size_t before = net.num_neurons();
  for (int b = 0; b < bits; ++b) {
    s.bus.push_back(net.add_neuron(snn::NeuronParams{0, 1, 1.0}));
  }
  s.strobe = net.add_neuron(snn::NeuronParams{0, 1, 1.0});
  for (int b = 0; b < bits; ++b) {
    // Capture: memoryless AND of bus bit and strobe.
    const NeuronId cap = net.add_neuron(snn::NeuronParams{0, 2, 1.0});
    net.add_synapse(s.bus[static_cast<std::size_t>(b)], cap, 1, 1);
    net.add_synapse(s.strobe, cap, 1, 1);
    s.capture.push_back(cap);
    // Latch: integrator with self-loop (Figure 1(B)).
    const NeuronId latch = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
    net.add_synapse(cap, latch, 1, 1);
    net.add_synapse(latch, latch, 1, 1);
    s.latches.push_back(latch);
  }
  s.neurons = net.num_neurons() - before;
  return s;
}

RoundStore build_round_store(snn::Network& net, int bits, Delay period,
                             int rounds) {
  SGA_REQUIRE(bits >= 1 && bits <= 63, "round store: bad width " << bits);
  SGA_REQUIRE(rounds >= 1, "round store: need at least one round");
  SGA_REQUIRE(period >= 1, "round store: bad period " << period);
  RoundStore s;
  const std::size_t before = net.num_neurons();
  for (int b = 0; b < bits; ++b) {
    s.bus.push_back(net.add_neuron(snn::NeuronParams{0, 1, 1.0}));
  }
  s.ticks = build_clock_chain(net, period, rounds);
  s.clock_start = s.ticks.front();
  s.latches.resize(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (int b = 0; b < bits; ++b) {
      const NeuronId cap = net.add_neuron(snn::NeuronParams{0, 2, 1.0});
      net.add_synapse(s.bus[static_cast<std::size_t>(b)], cap, 1, 1);
      net.add_synapse(s.ticks[static_cast<std::size_t>(r)], cap, 1, 1);
      const NeuronId latch = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
      net.add_synapse(cap, latch, 1, 1);
      net.add_synapse(latch, latch, 1, 1);
      s.latches[static_cast<std::size_t>(r)].push_back(latch);
    }
  }
  s.neurons = net.num_neurons() - before;
  return s;
}

std::uint64_t read_latched(const snn::Simulator& sim,
                           const std::vector<NeuronId>& latches) {
  SGA_REQUIRE(latches.size() <= 63, "read_latched: too many bits");
  std::uint64_t value = 0;
  for (std::size_t b = 0; b < latches.size(); ++b) {
    if (sim.first_spike(latches[b]) != kNever) value |= 1ULL << b;
  }
  return value;
}

}  // namespace sga::circuits
