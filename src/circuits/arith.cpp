#include "circuits/arith.h"

#include "core/bitops.h"
#include "core/error.h"

namespace sga::circuits {

AddConstCircuit build_add_constant(CircuitBuilder& cb, int lambda,
                                   std::uint64_t constant) {
  SGA_REQUIRE(lambda >= 1 && lambda <= 62, "add_constant: bad lambda " << lambda);
  SGA_REQUIRE(lambda == 62 || constant < (1ULL << lambda),
              "add_constant: constant " << constant << " does not fit in "
                                        << lambda << " bits");
  AddConstCircuit c;
  c.enable = cb.make_input();
  c.a = cb.make_input_bus(lambda);

  // Same ripple scheme as build_ripple_adder, with operand b replaced by
  // weights from the enable line where the constant has a 1.
  NeuronId carry = kNoNeuron;
  std::vector<NeuronId> sums;
  for (int j = 0; j < lambda; ++j) {
    const int gate_level = 2 * j + 1;
    const int cbit = bit_of(constant, j);
    const NeuronId ge1 = cb.make_gate(1, gate_level);
    const NeuronId ge2 = cb.make_gate(2, gate_level);
    const NeuronId ge3 = cb.make_gate(3, gate_level);
    for (const NeuronId g : {ge1, ge2, ge3}) {
      cb.connect(c.a[static_cast<std::size_t>(j)], g, 1);
      if (cbit) cb.connect(c.enable, g, 1);
      if (carry != kNoNeuron) cb.connect(carry, g, 1);
    }
    const NeuronId s = cb.make_gate(1, gate_level + 1);
    cb.connect(ge1, s, 1);
    cb.connect(ge2, s, -1);
    cb.connect(ge3, s, 1);
    sums.push_back(s);
    carry = ge2;
  }
  c.depth = 2 * lambda + 2;
  for (int j = 0; j < lambda; ++j) {
    c.sum.push_back(cb.buffer(sums[static_cast<std::size_t>(j)], c.depth));
  }
  c.stats = cb.stats();
  return c;
}

AddConstCircuit build_decrement(CircuitBuilder& cb, int lambda) {
  SGA_REQUIRE(lambda >= 1 && lambda <= 62, "decrement: bad lambda " << lambda);
  return build_add_constant(cb, lambda, mask_bits(lambda));
}

std::vector<NeuronId> gate_bus(CircuitBuilder& cb,
                               const std::vector<NeuronId>& bus,
                               NeuronId control, int level) {
  std::vector<NeuronId> out;
  out.reserve(bus.size());
  for (const NeuronId b : bus) {
    const NeuronId g = cb.make_gate(2, level);
    cb.connect(b, g, 1);
    cb.connect(control, g, 1);
    out.push_back(g);
  }
  return out;
}

}  // namespace sga::circuits
