#include "circuits/primitives.h"

#include "core/error.h"

namespace sga::circuits {

DelaySimCircuit build_delay_simulation(snn::Network& net, Delay d) {
  SGA_REQUIRE(d >= 2, "delay simulation needs d >= 2 (d = 1 is a plain synapse)");
  DelaySimCircuit c;
  // Input relay (fires when driven at time t).
  c.input = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  // Generator: fires every step once triggered, via its +1 self-loop.
  c.generator = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  // Counter/output: integrates one +1 per generator spike; threshold d - 1
  // makes it fire exactly when it has received d - 1 pulses.
  c.output = net.add_neuron(snn::NeuronParams{0, static_cast<Voltage>(d - 1), 0.0});

  net.add_synapse(c.input, c.generator, 1, 1);
  net.add_synapse(c.generator, c.generator, 1, 1);  // feedback loop
  net.add_synapse(c.generator, c.output, 1, 1);
  // Output stops the generator: -2 cancels the in-flight self-loop spike and
  // leaves the potential at -1, below threshold for good.
  net.add_synapse(c.output, c.generator, -2, 1);
  // The generator's final pulse (in flight when the output fires) must not
  // re-trigger the output: the self-inhibition outweighs it.
  net.add_synapse(c.output, c.output, static_cast<SynWeight>(-d), 1);
  // Input fires at t → generator fires t+1 .. t+d-1 → output accumulates
  // d-1 pulses at t+2 .. t+d and fires at t+d.  (For d = 2 the single pulse
  // meets threshold 1 immediately.)
  c.neurons = 3;
  return c;
}

LatchCircuit build_latch(snn::Network& net) {
  LatchCircuit c;
  c.set = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  c.recall = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  c.reset = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  c.memory = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  // Output is a memoryless AND (τ = 1, threshold 2) of memory and recall, so
  // repeated memory pulses and unanswered recalls leave no residue.
  c.output = net.add_neuron(snn::NeuronParams{0, 2, 1.0});

  net.add_synapse(c.set, c.memory, 1, 1);
  net.add_synapse(c.memory, c.memory, 1, 1);  // the Figure-1(B) self-loop
  net.add_synapse(c.memory, c.output, 1, 1);
  net.add_synapse(c.recall, c.output, 1, 1);
  // Inhibitory reset ("Neuron M can be reset by an inhibitory link from C to
  // M"): -1 cancels the in-flight self-loop spike, leaving M at 0, ready to
  // be set again.
  net.add_synapse(c.reset, c.memory, -1, 1);
  c.neurons = 5;
  return c;
}

std::vector<NeuronId> build_clock_chain(snn::Network& net, Delay period,
                                        int count) {
  SGA_REQUIRE(period >= 1, "clock chain: period must be >= 1");
  SGA_REQUIRE(count >= 1, "clock chain: need at least one tick");
  std::vector<NeuronId> ticks;
  ticks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const NeuronId id = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
    if (i > 0) net.add_synapse(ticks.back(), id, 1, period);
    ticks.push_back(id);
  }
  return ticks;
}

}  // namespace sga::circuits
