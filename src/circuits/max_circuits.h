// Circuits computing the max (or min) of d λ-bit numbers — Section 5.
//
// Two constructions, with the trade-offs of Table 2:
//   * wired-OR (Theorem 5.1, Figure 3):  O(dλ) neurons, O(λ) depth;
//   * brute force (Theorem 5.2, Figure 5): O(d²+dλ) neurons, O(1) depth,
//     but synapse weights up to 2^{λ-1}.
// Both variants also expose per-input "winner" indicator neurons (the a_{i,1}
// of Figure 3 / M_x of Figure 5), and both have min counterparts.
//
// Semantics under partial input: an input number whose bits are all zero is
// neutral (it can only win if every input is zero, in which case the output
// is zero). The polynomial-time k-hop algorithm exploits this by encoding
// distances bitwise-complemented so that MIN becomes MAX with absent
// messages neutral (DESIGN.md §1).
#pragma once

#include <vector>

#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct MaxCircuit {
  /// d input buses of λ bits each (LSB first).
  std::vector<std::vector<NeuronId>> inputs;
  /// Must fire at every presentation time (constant-1 line).
  NeuronId enable = kNoNeuron;
  /// λ output bits (LSB first), all firing exactly `depth` steps after the
  /// inputs.
  std::vector<NeuronId> outputs;
  /// winner[i] fires (at winner_level) iff input i attains the max/min.
  /// For the brute-force circuit ties are broken to the smallest index, so
  /// exactly one winner fires; the wired-OR circuit marks all tied inputs.
  std::vector<NeuronId> winners;
  int winner_level = 0;
  int depth = 0;
  CircuitStats stats;
};

/// Bit-serial "wired-OR" max (Figure 3). d ≥ 1 numbers, λ ≥ 1 bits.
MaxCircuit build_max_wired_or(CircuitBuilder& cb, int d, int lambda);

/// Wired-OR min: internally complements the bits for the elimination layers,
/// then outputs the original (minimal) value.
MaxCircuit build_min_wired_or(CircuitBuilder& cb, int d, int lambda);

/// Brute-force pairwise-comparison max (Figure 5).
MaxCircuit build_max_brute_force(CircuitBuilder& cb, int d, int lambda);

/// Brute-force min (comparison senses reversed).
MaxCircuit build_min_brute_force(CircuitBuilder& cb, int d, int lambda);

/// Which max/min construction an algorithm should instantiate (ablation
/// knob; see DESIGN.md §4).
enum class MaxKind { kWiredOr, kBruteForce };

MaxCircuit build_max(CircuitBuilder& cb, int d, int lambda, MaxKind kind);
MaxCircuit build_min(CircuitBuilder& cb, int d, int lambda, MaxKind kind);

}  // namespace sga::circuits
