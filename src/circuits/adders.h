// Threshold-gate adders for two λ-bit numbers — Section 5 "Sum Circuits"
// and Figure 4.
//
// Three constructions:
//   * ripple:    O(λ) neurons, O(λ) depth, weights O(1) — the "chained
//                constant-depth parity circuits ... for the carry bit"
//                adder of Section 4.1;
//   * Ramos–Bohórquez (Fig. 4): O(λ) neurons, depth 2, weights up to 2^λ
//                (carry_j fires iff the low-order j bits of a+b reach 2^j);
//   * lookahead: O(λ²) neurons, depth 4, weights ≤ λ — our variant of the
//                Siu–Roychowdhury–Kailath polynomial-weight construction
//                (they achieve depth 3 with a more intricate circuit; the
//                size/weight profile is the same).
#pragma once

#include <vector>

#include "circuits/builder.h"
#include "core/types.h"

namespace sga::circuits {

struct AdderCircuit {
  std::vector<NeuronId> a, b;  ///< λ-bit operands (LSB first)
  NeuronId enable = kNoNeuron;
  std::vector<NeuronId> sum;   ///< λ bits, all at level `depth`
  NeuronId carry_out = kNoNeuron;  ///< also at level `depth`
  int depth = 0;
  CircuitStats stats;
};

enum class AdderKind { kRipple, kRamosBohorquez, kLookahead };

AdderCircuit build_ripple_adder(CircuitBuilder& cb, int lambda);
AdderCircuit build_ramos_adder(CircuitBuilder& cb, int lambda);
AdderCircuit build_lookahead_adder(CircuitBuilder& cb, int lambda);

AdderCircuit build_adder(CircuitBuilder& cb, int lambda, AdderKind kind);

}  // namespace sga::circuits
