// Feed-forward threshold-circuit builder on top of snn::Network.
//
// Every gate neuron is assigned a *level*: its firing-time offset relative to
// the circuit's input neurons. A synapse from level a to level b (> a) gets
// delay b - a, so if the inputs fire at time t, a level-q gate makes its
// firing decision at exactly t + q. Consequences:
//   * every input→output path takes exactly `depth` steps, so all output
//     bits of one input presentation land on the same time step;
//   * circuits are fully pipelined: presentations injected at t, t+1, ...
//     are processed independently (gates use decay τ = 1 — the memoryless
//     "threshold gate" setting of Definition 2 — so no state leaks between
//     consecutive presentations, implementing the paper's "neurons that
//     require all inputs to arrive simultaneously and reset afterward");
//   * inhibitory edges are guaranteed to arrive on the same step as the
//     excitation they mask, which is what the Section 5 circuits assume.
//
// Gates that need a constant-1 input (NOT, the Eq/S inputs of Figure 5, the
// hardwired a_{i,λ+1} = 1 of Figure 3) take an `enable` neuron that must
// fire at each presentation time; in algorithm compositions the message
// valid line plays this role.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "snn/compiled_network.h"
#include "snn/network.h"

namespace sga::circuits {

/// Resource accounting for one circuit (the quantities of Table 2).
struct CircuitStats {
  std::size_t neurons = 0;
  std::size_t synapses = 0;
  int depth = 0;                ///< time steps from input firing to output
  double max_abs_weight = 0;    ///< largest |synaptic weight| used

  CircuitStats& operator+=(const CircuitStats& o);
};

class CircuitBuilder {
 public:
  explicit CircuitBuilder(snn::Network& net) : net_(net) {}

  snn::Network& net() { return net_; }

  /// Freeze the underlying network for simulation: run the compile-time
  /// validation pass and pack the CSR form the Simulator consumes. Further
  /// building through this builder is still allowed — it affects only
  /// networks frozen later, never this snapshot.
  snn::CompiledNetwork freeze() const { return net_.compile(); }

  /// Level-0 input relay (threshold 1, τ = 1). Fires when injected or when
  /// any upstream synapse delivers weight ≥ 1.
  NeuronId make_input();
  std::vector<NeuronId> make_input_bus(int bits);

  /// Threshold gate (τ = 1, reset 0) at the given level ≥ 1.
  NeuronId make_gate(Voltage threshold, int level);

  /// Synapse with delay derived from levels: level_of(to) - level_of(from).
  void connect(NeuronId from, NeuronId to, SynWeight weight);

  /// OR of `ins` at `level` (must exceed every input's level).
  NeuronId or_gate(const std::vector<NeuronId>& ins, int level);
  /// AND of `ins` at `level` (threshold = |ins|).
  NeuronId and_gate(const std::vector<NeuronId>& ins, int level);
  /// Fires iff enable ∧ ¬in.
  NeuronId not_gate(NeuronId in, NeuronId enable, int level);
  /// Identity relay of `in` at `level`.
  NeuronId buffer(NeuronId in, int level);
  /// Buffer a whole bus to a common level.
  std::vector<NeuronId> buffer_bus(const std::vector<NeuronId>& ins, int level);

  /// Adopt a neuron created outside this builder (e.g. an algorithm-level
  /// neuron) so it can be wired with level bookkeeping.
  void register_external(NeuronId id, int level);

  int level_of(NeuronId id) const;

  /// Stats over everything created through this builder. `depth` is the
  /// highest level assigned so far.
  const CircuitStats& stats() const { return stats_; }

 private:
  snn::Network& net_;
  std::unordered_map<NeuronId, int> level_;
  CircuitStats stats_;
};

}  // namespace sga::circuits
