#include "circuits/builder.h"

#include <algorithm>

#include "core/error.h"

namespace sga::circuits {

CircuitStats& CircuitStats::operator+=(const CircuitStats& o) {
  neurons += o.neurons;
  synapses += o.synapses;
  depth = std::max(depth, o.depth);
  max_abs_weight = std::max(max_abs_weight, o.max_abs_weight);
  return *this;
}

NeuronId CircuitBuilder::make_input() {
  const NeuronId id = net_.add_neuron(snn::NeuronParams{0, 1, 1.0});
  level_[id] = 0;
  ++stats_.neurons;
  return id;
}

std::vector<NeuronId> CircuitBuilder::make_input_bus(int bits) {
  SGA_REQUIRE(bits >= 1, "make_input_bus: need at least one bit");
  std::vector<NeuronId> bus;
  bus.reserve(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) bus.push_back(make_input());
  return bus;
}

NeuronId CircuitBuilder::make_gate(Voltage threshold, int level) {
  SGA_REQUIRE(level >= 1, "make_gate: gates live at level >= 1, got " << level);
  const NeuronId id = net_.add_neuron(snn::NeuronParams{0, threshold, 1.0});
  level_[id] = level;
  ++stats_.neurons;
  stats_.depth = std::max(stats_.depth, level);
  return id;
}

void CircuitBuilder::connect(NeuronId from, NeuronId to, SynWeight weight) {
  const int lf = level_of(from);
  const int lt = level_of(to);
  SGA_REQUIRE(lt > lf, "connect: target level " << lt
                                                << " must exceed source level "
                                                << lf << " (delays are >= 1)");
  net_.add_synapse(from, to, weight, lt - lf);
  ++stats_.synapses;
  stats_.max_abs_weight = std::max(stats_.max_abs_weight, std::abs(weight));
}

NeuronId CircuitBuilder::or_gate(const std::vector<NeuronId>& ins, int level) {
  SGA_REQUIRE(!ins.empty(), "or_gate: no inputs");
  const NeuronId id = make_gate(1, level);
  for (const NeuronId in : ins) connect(in, id, 1);
  return id;
}

NeuronId CircuitBuilder::and_gate(const std::vector<NeuronId>& ins, int level) {
  SGA_REQUIRE(!ins.empty(), "and_gate: no inputs");
  const NeuronId id = make_gate(static_cast<Voltage>(ins.size()), level);
  for (const NeuronId in : ins) connect(in, id, 1);
  return id;
}

NeuronId CircuitBuilder::not_gate(NeuronId in, NeuronId enable, int level) {
  const NeuronId id = make_gate(1, level);
  connect(enable, id, 1);
  connect(in, id, -1);
  return id;
}

NeuronId CircuitBuilder::buffer(NeuronId in, int level) {
  const NeuronId id = make_gate(1, level);
  connect(in, id, 1);
  return id;
}

std::vector<NeuronId> CircuitBuilder::buffer_bus(
    const std::vector<NeuronId>& ins, int level) {
  std::vector<NeuronId> out;
  out.reserve(ins.size());
  for (const NeuronId in : ins) out.push_back(buffer(in, level));
  return out;
}

void CircuitBuilder::register_external(NeuronId id, int level) {
  SGA_REQUIRE(id < net_.num_neurons(), "register_external: bad neuron " << id);
  level_[id] = level;
  stats_.depth = std::max(stats_.depth, level);
}

int CircuitBuilder::level_of(NeuronId id) const {
  const auto it = level_.find(id);
  SGA_REQUIRE(it != level_.end(),
              "level_of: neuron " << id << " unknown to this builder");
  return it->second;
}

}  // namespace sga::circuits
