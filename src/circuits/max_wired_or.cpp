// Wired-OR max/min (Theorem 5.1, Figure 3).
//
// Processing most-significant bit to least, keep a per-number "active" flag:
//   V_{i,j} = a_{i,j+1} ∧ b_{i,j}   (number i active and has a 1 at bit j)
//   OR_j    = ∨_i V_{i,j}           (someone active has a 1 here)
//   I_{i,j} = OR_j ∧ ¬V_{i,j}       (number i is eliminated at bit j)
//   a_{i,j} = a_{i,j+1} ∧ ¬I_{i,j}
// The constant a_{i,λ+1} = 1 of Figure 3A is realised by the enable line.
// After bit 1, actives all hold the (same) max value; a filter layer
// (Fig. 3C) copies the value bits of one winner and a merge layer (Fig. 3D)
// ORs them onto the output bus. Each bit stage spans 4 levels, so
// depth = 4λ + 2 = O(λ); neuron count is O(dλ) — the Table 2 row.
#include "circuits/max_circuits.h"

#include "core/error.h"

namespace sga::circuits {

namespace {

/// Shared elimination-network construction. If `complement` is true the
/// active-flag logic runs on the complemented bits (computing argmin), while
/// the filter/merge layers always output the original bits of the winner.
MaxCircuit build_wired_or_impl(CircuitBuilder& cb, int d, int lambda,
                               bool complement) {
  SGA_REQUIRE(d >= 1, "wired-or max: need d >= 1 inputs");
  SGA_REQUIRE(lambda >= 1 && lambda <= 62, "wired-or max: bad lambda " << lambda);

  MaxCircuit c;
  c.enable = cb.make_input();
  c.inputs.reserve(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) c.inputs.push_back(cb.make_input_bus(lambda));

  // Value bits used by the elimination logic. For min, complement them
  // (u_{i,j} = enable ∧ ¬b_{i,j}) at level 1 and shift all stages one level.
  const int base = complement ? 1 : 0;
  std::vector<std::vector<NeuronId>> elim_bits;
  if (complement) {
    elim_bits.resize(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < lambda; ++j) {
        elim_bits[i].push_back(
            cb.not_gate(c.inputs[i][static_cast<std::size_t>(j)], c.enable, 1));
      }
    }
  } else {
    elim_bits = c.inputs;
  }

  // actives[i] = a_{i, j+1}: the enable line plays a_{i, λ+1} = 1.
  std::vector<NeuronId> actives(static_cast<std::size_t>(d), c.enable);
  // Bit stages, most significant (λ-1 in 0-based LSB-first indexing) first.
  // Stage for bit j occupies levels L+1 .. L+4 where L is the actives' level.
  int level = base;
  for (int j = lambda - 1; j >= 0; --j) {
    std::vector<NeuronId> v_gates(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      // V_{i,j}: active AND bit set. actives[i] may sit at a lower level
      // (the enable at level 0 for the first stage); connect() inserts the
      // right delay.
      const NeuronId v = cb.make_gate(2, level + 1);
      cb.connect(actives[static_cast<std::size_t>(i)], v, 1);
      cb.connect(elim_bits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                 v, 1);
      v_gates[static_cast<std::size_t>(i)] = v;
    }
    const NeuronId or_j = cb.or_gate(v_gates, level + 2);
    std::vector<NeuronId> next_actives(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      // I_{i,j} = OR_j ∧ ¬V_{i,j}: the inhibitory edge from V arrives the
      // same step as the excitation from OR_j (Figure 3B's -1 edge).
      const NeuronId inhibit = cb.make_gate(1, level + 3);
      cb.connect(or_j, inhibit, 1);
      cb.connect(v_gates[static_cast<std::size_t>(i)], inhibit, -1);
      // a_{i,j} = a_{i,j+1} ∧ ¬I_{i,j}.
      const NeuronId a = cb.make_gate(1, level + 4);
      cb.connect(actives[static_cast<std::size_t>(i)], a, 1);
      cb.connect(inhibit, a, -1);
      next_actives[static_cast<std::size_t>(i)] = a;
    }
    actives = std::move(next_actives);
    level += 4;
  }

  c.winners = actives;  // a_{i,1}
  c.winner_level = level;

  // Filter (Fig. 3C): c_{i,j} = a_{i,1} ∧ b_{i,j}; tied winners carry equal
  // values, so the merge OR (Fig. 3D) is well defined.
  std::vector<std::vector<NeuronId>> filtered(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < lambda; ++j) {
      const NeuronId f = cb.make_gate(2, level + 1);
      cb.connect(actives[static_cast<std::size_t>(i)], f, 1);
      cb.connect(c.inputs[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                 f, 1);
      filtered[static_cast<std::size_t>(i)].push_back(f);
    }
  }
  for (int j = 0; j < lambda; ++j) {
    std::vector<NeuronId> column;
    column.reserve(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
      column.push_back(filtered[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    c.outputs.push_back(cb.or_gate(column, level + 2));
  }
  c.depth = level + 2;
  c.stats = cb.stats();
  return c;
}

}  // namespace

MaxCircuit build_max_wired_or(CircuitBuilder& cb, int d, int lambda) {
  return build_wired_or_impl(cb, d, lambda, /*complement=*/false);
}

MaxCircuit build_min_wired_or(CircuitBuilder& cb, int d, int lambda) {
  return build_wired_or_impl(cb, d, lambda, /*complement=*/true);
}

MaxCircuit build_max(CircuitBuilder& cb, int d, int lambda, MaxKind kind) {
  return kind == MaxKind::kWiredOr ? build_max_wired_or(cb, d, lambda)
                                   : build_max_brute_force(cb, d, lambda);
}

MaxCircuit build_min(CircuitBuilder& cb, int d, int lambda, MaxKind kind) {
  return kind == MaxKind::kWiredOr ? build_min_wired_or(cb, d, lambda)
                                   : build_min_brute_force(cb, d, lambda);
}

}  // namespace sga::circuits
