// Figure-1 primitives: simulating long synaptic delays with two neurons
// (for architectures without native programmable delays) and using neurons
// as memory (a latch), plus a clock chain for round-synchronised designs.
//
// Unlike the feed-forward circuits, these are *recurrent*: they use
// integrator neurons (τ = 0) and self-loops, so they are built directly on
// snn::Network rather than through the levelled CircuitBuilder.
#pragma once

#include <vector>

#include "core/types.h"
#include "snn/network.h"

namespace sga::circuits {

/// Figure 1(A): a two-neuron circuit emulating a synapse of delay d ≥ 2
/// using only unit delays. When `input` fires at time t, `output` fires at
/// time t + d and nothing else happens afterwards. One-shot: the circuit
/// must be re-armed (it self-disables) before reuse, so we expose it as a
/// single-use primitive, which is how Section 2.2 employs it.
struct DelaySimCircuit {
  NeuronId input = kNoNeuron;   ///< drive with one spike
  NeuronId output = kNoNeuron;  ///< fires d steps after input
  NeuronId generator = kNoNeuron;  ///< the self-firing pulse neuron
  std::size_t neurons = 0;
};

DelaySimCircuit build_delay_simulation(snn::Network& net, Delay d);

/// Figure 1(B): neuron M latches (fires indefinitely via its self-loop) once
/// `set` fires; `recall` AND M propagate to `output`; `reset` stops M.
/// Contract: reset must only be asserted while M is latched (the inhibitory
/// pulse cancels the in-flight self-loop spike).
struct LatchCircuit {
  NeuronId set = kNoNeuron;
  NeuronId recall = kNoNeuron;
  NeuronId reset = kNoNeuron;
  NeuronId memory = kNoNeuron;  ///< M: fires every step while latched
  NeuronId output = kNoNeuron;  ///< fires one step after recall if latched
  std::size_t neurons = 0;
};

LatchCircuit build_latch(snn::Network& net);

/// A chain of `count` relay neurons with inter-neuron delay `period`;
/// injecting a spike into the first at time t makes neuron r fire at
/// t + r·period. Used to strobe per-round storage banks (Section 4.3).
std::vector<NeuronId> build_clock_chain(snn::Network& net, Delay period,
                                        int count);

}  // namespace sga::circuits
