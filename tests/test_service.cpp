// Tests for the persistent query service (src/svc): the compile-once cache,
// worker-pool serve path, admission control, and the reuse-lifecycle
// contracts (per-request metrics scoping, per-request probe clearing,
// borrow safety across cache eviction).
//
// The differential tests are the load-bearing ones: service-path answers
// must be EVENT-FOR-EVENT identical to fresh one-shot/batch runs for all
// three workloads — a pooled, epoch-reset simulator serving request N must
// be indistinguishable from a freshly built one.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/error.h"
#include "core/random.h"
#include "graph/generators.h"
#include "nga/khop_ttl.h"
#include "nga/maxflow.h"
#include "nga/sssp_batch.h"
#include "nga/sssp_event.h"
#include "obs/metrics.h"
#include "svc/congestion.h"
#include "svc/hash.h"
#include "svc/service.h"
#include "svc/worker_pool.h"

namespace sga::svc {
namespace {

Graph test_graph(std::uint64_t seed, std::size_t n, std::size_t m,
                 Weight max_len = 9) {
  Rng rng(seed);
  return make_random_graph(n, m, {1, max_len}, rng);
}

// ---- Differential: service == batch/one-shot, event for event ----------

TEST(QueryService, SsspMatchesBatchEventForEvent) {
  const Graph g = test_graph(0x51, 40, 160);
  std::vector<VertexId> sources;
  for (VertexId s = 0; s < 10; ++s) sources.push_back(s);

  nga::SsspBatchOptions bopt;
  bopt.record_parents = true;
  bopt.num_threads = 2;
  const nga::SsspBatchResult batch = nga::spiking_sssp_batch(g, sources, bopt);

  QueryService service;
  const std::uint64_t handle = service.add_graph(g);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSssp;
    req.graph = handle;
    req.source = sources[i];
    req.record_parents = true;
    const QueryResult res = service.query(std::move(req));
    ASSERT_TRUE(res.ok()) << res.error;
    const nga::SsspSourceRun& ref = batch.runs[i];
    EXPECT_EQ(res.dist, ref.dist) << "source " << sources[i];
    EXPECT_EQ(res.parent, ref.parent) << "source " << sources[i];
    EXPECT_EQ(res.execution_time, ref.execution_time);
    // Event-for-event: same spikes, same deliveries, same touched steps.
    EXPECT_EQ(res.sim.spikes, ref.sim.spikes) << "source " << sources[i];
    EXPECT_EQ(res.sim.deliveries, ref.sim.deliveries);
    EXPECT_EQ(res.sim.event_times, ref.sim.event_times);
  }

  // Compile-once: ten requests against one graph froze exactly one fabric.
  const QueryService::Stats s = service.stats();
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.cache.hits, sources.size() - 1);
  EXPECT_EQ(s.served, sources.size());
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(QueryService, KHopMatchesOneShotAndSharesFabricAcrossK) {
  const Graph g = test_graph(0x52, 16, 48, 4);
  QueryService service;
  const std::uint64_t handle = service.add_graph(g);

  // k = 5 and k = 8 share λ = bits_for(k-1) = 3, so they must share one
  // compiled fabric — the second k is a cache hit, not a re-freeze.
  for (const std::uint32_t k : {5u, 8u, 5u}) {
    for (const VertexId source : {VertexId{0}, VertexId{3}}) {
      nga::KHopTtlOptions ref_opt;
      ref_opt.source = source;
      ref_opt.k = k;
      const nga::KHopTtlResult ref = nga::khop_sssp_ttl(g, ref_opt);

      QueryRequest req;
      req.kind = QueryKind::kKHop;
      req.graph = handle;
      req.source = source;
      req.k = k;
      const QueryResult res = service.query(std::move(req));
      ASSERT_TRUE(res.ok()) << res.error;
      EXPECT_EQ(res.dist, ref.dist) << "k=" << k << " source=" << source;
      EXPECT_EQ(res.hops, ref.hops) << "k=" << k << " source=" << source;
      EXPECT_EQ(res.execution_time, ref.execution_time);
      EXPECT_EQ(res.sim.spikes, ref.sim.spikes);
      EXPECT_EQ(res.sim.deliveries, ref.sim.deliveries);
    }
  }
  EXPECT_EQ(service.stats().cache.misses, 1u);
  EXPECT_EQ(service.stats().cache.hits, 5u);
}

TEST(QueryService, MaxFlowMatchesDirectAndReference) {
  const Graph g = test_graph(0x53, 12, 40, 6);
  const VertexId source = 0, sink = 11;
  nga::MaxFlowOptions mopt;
  mopt.source = source;
  mopt.sink = sink;
  const nga::MaxFlowResult direct = nga::spiking_max_flow(g, mopt);

  QueryService service;
  const std::uint64_t handle = service.add_graph(g);
  QueryRequest req;
  req.kind = QueryKind::kMaxFlow;
  req.graph = handle;
  req.source = source;
  req.target = sink;
  const QueryResult res = service.query(std::move(req));
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.flow_value, direct.value);
  EXPECT_EQ(res.flow_value, nga::reference_max_flow(g, source, sink));
  EXPECT_EQ(res.phases, direct.phases);
  EXPECT_EQ(res.total_spikes, direct.total_spikes);
  EXPECT_EQ(res.execution_time, direct.total_snn_steps);
  EXPECT_EQ(res.flow, direct.flow);
}

TEST(QueryService, ServeManyOnOneWorkerStaysIdenticalToFresh) {
  // The pooled-worker core claim: request N on a reused, epoch-reset
  // simulator equals a fresh one-shot run — repeated for a serve-many
  // stream against a single worker so every request after the first rides
  // the reset() path.
  const Graph g = test_graph(0x54, 30, 120);
  ServiceOptions opt;
  opt.num_workers = 1;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);
  for (int round = 0; round < 3; ++round) {
    for (VertexId s = 0; s < 6; ++s) {
      nga::SpikingSsspOptions ref_opt;
      ref_opt.source = s;
      const nga::SpikingSsspResult ref = nga::spiking_sssp(g, ref_opt);
      QueryRequest req;
      req.kind = QueryKind::kSssp;
      req.graph = handle;
      req.source = s;
      const QueryResult res = service.query(std::move(req));
      ASSERT_TRUE(res.ok()) << res.error;
      EXPECT_EQ(res.dist, ref.dist) << "round " << round << " source " << s;
      EXPECT_EQ(res.parent, ref.parent);
      EXPECT_EQ(res.sim.spikes, ref.sim.spikes);
      EXPECT_EQ(res.sim.deliveries, ref.sim.deliveries);
    }
  }
  EXPECT_EQ(service.stats().cache.misses, 1u);
}

// ---- Reuse-lifecycle regressions ---------------------------------------

TEST(QueryService, PerRequestMetricsAreStrictlyScoped) {
  // Two back-to-back requests on ONE worker: each result's registry must
  // hold exactly its own request's counters (the RAII install/restore
  // regression — before the fix, a leaked thread registry let request B's
  // sim.* counters accumulate into request A's sink).
  const Graph g = test_graph(0x55, 30, 120);
  ServiceOptions opt;
  opt.num_workers = 1;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  QueryRequest a;
  a.kind = QueryKind::kSssp;
  a.graph = handle;
  a.source = 0;
  QueryRequest b = a;
  b.source = 7;
  // Submit both BEFORE either completes: they interleave on the worker as
  // consecutive serves with no idle gap.
  std::future<QueryResult> fa = service.submit(std::move(a));
  std::future<QueryResult> fb = service.submit(std::move(b));
  const QueryResult ra = fa.get();
  const QueryResult rb = fb.get();
  ASSERT_TRUE(ra.ok() && rb.ok());

  EXPECT_EQ(ra.metrics.counter("sim.runs"), 1u);
  EXPECT_EQ(rb.metrics.counter("sim.runs"), 1u);
  EXPECT_EQ(ra.metrics.counter("sim.spikes"), ra.sim.spikes);
  EXPECT_EQ(rb.metrics.counter("sim.spikes"), rb.sim.spikes);
  EXPECT_EQ(ra.metrics.counter("svc.requests"), 1u);
  // The worker thread's registry install is scoped to the serve: nothing
  // leaks into this (the caller's) thread either.
  EXPECT_EQ(obs::thread_metrics(), nullptr);

  // Service-level registry holds the merged totals of both requests.
  const obs::MetricsRegistry total = service.metrics();
  EXPECT_EQ(total.counter("svc.requests"), 2u);
  EXPECT_EQ(total.counter("sim.spikes"), ra.sim.spikes + rb.sim.spikes);
}

TEST(QueryService, PooledProbeIsClearedBetweenRequests) {
  // obs::Probe accumulates across Simulator::reset() BY DESIGN; the service
  // must clear the pooled probe per request. Before the fix, back-to-back
  // probed requests on one worker returned doubled fire counts and a
  // concatenated two-request spike trace.
  const Graph g = test_graph(0x56, 30, 120);
  ServiceOptions opt;
  opt.num_workers = 1;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  QueryRequest req;
  req.kind = QueryKind::kSssp;
  req.graph = handle;
  req.source = 2;
  req.want_probe = true;
  req.probe.count_fires = true;
  req.probe.count_deliveries = true;
  req.probe.trace_spikes = true;

  const QueryResult first = service.query(QueryRequest{req});
  const QueryResult second = service.query(QueryRequest{req});
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(first.probe_data.has_value());
  ASSERT_TRUE(second.probe_data.has_value());

  // Identical request ⇒ identical recordings — NOT accumulated ones.
  EXPECT_EQ(first.probe_data->total_fires(), first.sim.spikes);
  EXPECT_EQ(second.probe_data->total_fires(), second.sim.spikes);
  EXPECT_EQ(second.probe_data->total_fires(), first.probe_data->total_fires());
  EXPECT_EQ(second.probe_data->total_deliveries(),
            first.probe_data->total_deliveries());
  EXPECT_EQ(second.probe_data->spike_trace(), first.probe_data->spike_trace());

  // An UNprobed request in between must not be recorded by the pooled
  // probe either (the slot detaches it on acquire).
  QueryRequest plain;
  plain.kind = QueryKind::kSssp;
  plain.graph = handle;
  plain.source = 2;
  ASSERT_TRUE(service.query(std::move(plain)).ok());
  const QueryResult third = service.query(QueryRequest{req});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.probe_data->total_fires(), first.probe_data->total_fires());
}

TEST(QueryService, ArtifactSurvivesCacheEvictionWhileWorkerHoldsIt) {
  // Borrow safety: with a capacity-1 cache, alternating workloads evict
  // each other's artifacts while worker slots still hold them. Every
  // request must keep answering correctly (shared_ptr keeps the frozen
  // network alive past eviction).
  const Graph g = test_graph(0x57, 20, 80, 4);
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_capacity = 1;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  nga::SpikingSsspOptions ref_opt;
  ref_opt.source = 1;
  const nga::SpikingSsspResult sssp_ref = nga::spiking_sssp(g, ref_opt);
  nga::KHopTtlOptions kref_opt;
  kref_opt.source = 1;
  kref_opt.k = 4;
  const nga::KHopTtlResult khop_ref = nga::khop_sssp_ttl(g, kref_opt);

  for (int round = 0; round < 3; ++round) {
    QueryRequest sreq;
    sreq.kind = QueryKind::kSssp;
    sreq.graph = handle;
    sreq.source = 1;
    const QueryResult sres = service.query(std::move(sreq));
    ASSERT_TRUE(sres.ok()) << sres.error;
    EXPECT_EQ(sres.dist, sssp_ref.dist) << "round " << round;

    QueryRequest kreq;
    kreq.kind = QueryKind::kKHop;
    kreq.graph = handle;
    kreq.source = 1;
    kreq.k = 4;
    const QueryResult kres = service.query(std::move(kreq));
    ASSERT_TRUE(kres.ok()) << kres.error;
    EXPECT_EQ(kres.dist, khop_ref.dist) << "round " << round;
  }
  // The capacity-1 cache really did thrash...
  EXPECT_GE(service.stats().cache.evictions, 4u);
  // ...but the worker's slots kept both artifacts alive and reused their
  // simulators: freezes happened only on (re-)misses, never mid-serve.
  EXPECT_EQ(service.stats().failed, 0u);
}

// ---- Admission control --------------------------------------------------

TEST(QueryService, DutyCycleShedderRejectsDeterministically) {
  const Graph g = test_graph(0x58, 20, 80);
  DutyCycleCongestor congestor(2, 1);  // admit 2, shed 1, repeat
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.shedder = &congestor;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 9; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSssp;
    req.graph = handle;
    req.source = static_cast<VertexId>(i % 5);
    futs.push_back(service.submit(std::move(req)));
  }
  int rejected = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const QueryResult res = futs[i].get();
    const bool should_shed = (i % 3) == 2;  // every third submission
    EXPECT_EQ(res.status == QueryStatus::kRejected, should_shed)
        << "submission " << i;
    if (res.status == QueryStatus::kRejected) {
      ++rejected;
      EXPECT_FALSE(res.error.empty());
    }
  }
  EXPECT_EQ(rejected, 3);
  const QueryService::Stats s = service.stats();
  EXPECT_EQ(s.submitted, 9u);
  EXPECT_EQ(s.rejected, 3u);
  EXPECT_EQ(s.served, 6u);
  EXPECT_EQ(congestor.admitted(), 6u);
  EXPECT_EQ(congestor.rejected(), 3u);
}

TEST(QueueDepthShedder, RejectsAtThreshold) {
  QueueDepthShedder shedder(2);
  EXPECT_FALSE(shedder.shed(0));
  EXPECT_FALSE(shedder.shed(1));
  EXPECT_TRUE(shedder.shed(2));
  EXPECT_TRUE(shedder.shed(100));
}

// ---- Worker slots -------------------------------------------------------

TEST(WorkerSlots, ReusesSimulatorsAndBoundsResidency) {
  const Graph g = test_graph(0x59, 10, 30);
  NetworkCache cache(4);
  auto artifact_for = [&](std::uint64_t fake_hash) {
    const ArtifactKey key{fake_hash, QueryKind::kSssp, 0, 0};
    return cache.get_or_build(key, [&] {
      auto a = std::make_shared<CompiledArtifact>();
      a->key = key;
      a->network = nga::build_sssp_network(g).compile();
      return a;
    });
  };

  WorkerSlots slots(2);
  const auto a1 = artifact_for(1);
  slots.acquire(a1);
  EXPECT_FALSE(slots.last_acquire_reused());
  slots.acquire(a1);
  EXPECT_TRUE(slots.last_acquire_reused());
  EXPECT_EQ(slots.resident(), 1u);

  const auto a2 = artifact_for(2);
  const auto a3 = artifact_for(3);
  slots.acquire(a2);
  slots.acquire(a3);  // evicts a1 (LRU)
  EXPECT_EQ(slots.resident(), 2u);
  slots.acquire(a2);
  EXPECT_TRUE(slots.last_acquire_reused());
  slots.acquire(a1);  // back: must rebuild, not reuse
  EXPECT_FALSE(slots.last_acquire_reused());
}

// ---- Cache + service plumbing ------------------------------------------

TEST(QueryService, GraphRegistrationIsContentAddressed) {
  const Graph g = test_graph(0x5A, 15, 40);
  QueryService service;
  const std::uint64_t h1 = service.add_graph(g);
  const std::uint64_t h2 = service.add_graph(g);  // identical content
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, graph_content_hash(g));
  ASSERT_NE(service.graph(h1), nullptr);

  Graph g2 = g;
  g2.add_edge(0, 1, 3);
  EXPECT_NE(service.add_graph(g2), h1);
}

TEST(QueryService, UnknownGraphAndBadRequestsFailCleanly) {
  const Graph g = test_graph(0x5B, 10, 30);
  QueryService service;
  const std::uint64_t handle = service.add_graph(g);

  QueryRequest req;
  req.kind = QueryKind::kSssp;
  req.graph = 0xDEAD;  // never registered
  QueryResult res = service.query(std::move(req));
  EXPECT_EQ(res.status, QueryStatus::kFailed);
  EXPECT_FALSE(res.error.empty());

  QueryRequest bad_source;
  bad_source.kind = QueryKind::kSssp;
  bad_source.graph = handle;
  bad_source.source = 999;
  res = service.query(std::move(bad_source));
  EXPECT_EQ(res.status, QueryStatus::kFailed);

  QueryRequest no_sink;
  no_sink.kind = QueryKind::kMaxFlow;
  no_sink.graph = handle;
  no_sink.source = 0;  // target (sink) missing
  res = service.query(std::move(no_sink));
  EXPECT_EQ(res.status, QueryStatus::kFailed);

  // Failures are contained: the service keeps serving afterwards.
  QueryRequest ok;
  ok.kind = QueryKind::kSssp;
  ok.graph = handle;
  ok.source = 0;
  EXPECT_TRUE(service.query(std::move(ok)).ok());
  const QueryService::Stats s = service.stats();
  EXPECT_EQ(s.failed, 3u);
  EXPECT_EQ(s.served, 1u);
}

TEST(QueryService, ConcurrentMixedWorkloadDrainsClean) {
  const Graph g = test_graph(0x5C, 25, 100, 4);
  ServiceOptions opt;
  opt.num_workers = 3;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 30; ++i) {
    QueryRequest req;
    req.graph = handle;
    req.source = static_cast<VertexId>(i % 10);
    switch (i % 3) {
      case 0:
        req.kind = QueryKind::kSssp;
        break;
      case 1:
        req.kind = QueryKind::kKHop;
        req.k = 4;
        break;
      default:
        req.kind = QueryKind::kMaxFlow;
        req.target = static_cast<VertexId>((i % 10 + 12) % 25);
        break;
    }
    futs.push_back(service.submit(std::move(req)));
  }
  service.drain();
  for (auto& f : futs) {
    const QueryResult res = f.get();
    EXPECT_TRUE(res.ok()) << res.error;
  }
  const QueryService::Stats s = service.stats();
  EXPECT_EQ(s.submitted, 30u);
  EXPECT_EQ(s.served, 30u);
  EXPECT_EQ(s.failed, 0u);
  // Two fabrics total (SSSP + one shared k-hop λ); max-flow compiles
  // internally and never touches the cache.
  EXPECT_EQ(s.cache.misses, 2u);
}

}  // namespace
}  // namespace sga::svc
