// Tests for the two gate-level k-hop SSSP compilations (Sections 4.1, 4.2):
// against the Bellman–Ford reference for every (generator, k, max-circuit)
// combination, per-round agreement with the (min,+) NGA reference, scaling
// invariants, and the Theorem 4.2/4.3 resource accounting.
#include <gtest/gtest.h>

#include "core/bitops.h"
#include "core/random.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/matvec.h"

namespace sga::nga {
namespace {

struct KhopParam {
  int family;  // 0 random, 1 grid, 2 path, 3 layered, 4 complete
  std::uint32_t k;
  circuits::MaxKind kind;
};

std::string khop_name(const ::testing::TestParamInfo<KhopParam>& info) {
  const char* fam[] = {"Random", "Grid", "Path", "Layered", "Complete"};
  return std::string(fam[info.param.family]) + "_k" +
         std::to_string(info.param.k) +
         (info.param.kind == circuits::MaxKind::kWiredOr ? "_WiredOr"
                                                         : "_BruteForce");
}

Graph make_family(int family, Rng& rng) {
  switch (family) {
    case 0: return make_random_graph(14, 40, {1, 6}, rng);
    case 1: return make_grid_graph(3, 4, {1, 5}, rng);
    case 2: return make_path_graph(9, {1, 4}, rng);
    case 3: return make_layered_dag(3, 3, 2, {1, 5}, rng);
    default: return make_complete_graph(7, {1, 6}, rng);
  }
}

class KhopTtlSweep : public ::testing::TestWithParam<KhopParam> {};

TEST_P(KhopTtlSweep, MatchesBellmanFord) {
  const auto& p = GetParam();
  Rng rng(0x7711 + static_cast<std::uint64_t>(p.family) * 31 + p.k);
  const Graph g = make_family(p.family, rng);
  const auto ref = bellman_ford_khop(g, 0, p.k);

  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = p.k;
  opt.max_kind = p.kind;
  const auto got = khop_sssp_ttl(g, opt);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.dist[v], ref.dist[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KhopTtlSweep,
    ::testing::Values(
        KhopParam{0, 1, circuits::MaxKind::kWiredOr},
        KhopParam{0, 2, circuits::MaxKind::kWiredOr},
        KhopParam{0, 3, circuits::MaxKind::kWiredOr},
        KhopParam{0, 5, circuits::MaxKind::kWiredOr},
        KhopParam{0, 3, circuits::MaxKind::kBruteForce},
        KhopParam{1, 2, circuits::MaxKind::kWiredOr},
        KhopParam{1, 4, circuits::MaxKind::kWiredOr},
        KhopParam{1, 4, circuits::MaxKind::kBruteForce},
        KhopParam{2, 3, circuits::MaxKind::kWiredOr},
        KhopParam{2, 8, circuits::MaxKind::kWiredOr},
        KhopParam{3, 2, circuits::MaxKind::kWiredOr},
        KhopParam{3, 4, circuits::MaxKind::kBruteForce},
        KhopParam{4, 1, circuits::MaxKind::kWiredOr},
        KhopParam{4, 3, circuits::MaxKind::kWiredOr},
        KhopParam{4, 6, circuits::MaxKind::kBruteForce}),
    khop_name);

class KhopPolySweep : public ::testing::TestWithParam<KhopParam> {};

TEST_P(KhopPolySweep, MatchesBellmanFord) {
  const auto& p = GetParam();
  Rng rng(0x9922 + static_cast<std::uint64_t>(p.family) * 37 + p.k);
  const Graph g = make_family(p.family, rng);
  const auto ref = bellman_ford_khop(g, 0, p.k);

  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = p.k;
  opt.max_kind = p.kind;
  const auto got = khop_sssp_poly(g, opt);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.dist[v], ref.dist[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KhopPolySweep,
    ::testing::Values(
        KhopParam{0, 1, circuits::MaxKind::kWiredOr},
        KhopParam{0, 2, circuits::MaxKind::kWiredOr},
        KhopParam{0, 4, circuits::MaxKind::kWiredOr},
        KhopParam{0, 3, circuits::MaxKind::kBruteForce},
        KhopParam{1, 3, circuits::MaxKind::kWiredOr},
        KhopParam{1, 5, circuits::MaxKind::kBruteForce},
        KhopParam{2, 4, circuits::MaxKind::kWiredOr},
        KhopParam{2, 8, circuits::MaxKind::kWiredOr},
        KhopParam{3, 3, circuits::MaxKind::kWiredOr},
        KhopParam{4, 2, circuits::MaxKind::kWiredOr},
        KhopParam{4, 5, circuits::MaxKind::kBruteForce}),
    khop_name);

TEST(KhopPoly, PerRoundTableMatchesMinplusReference) {
  Rng rng(0xAB);
  const Graph g = make_random_graph(10, 30, {1, 5}, rng);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 5;
  const auto got = khop_sssp_poly(g, opt);
  const auto ref = minplus_rounds(g, 0, 5);
  ASSERT_EQ(got.per_round.size(), ref.size());
  for (std::size_t r = 0; r < ref.size(); ++r) {
    EXPECT_EQ(got.per_round[r], ref[r]) << "round " << r;
  }
}

TEST(KhopPoly, RoundPeriodIsLogarithmicInMessageWidth) {
  // Theorem 4.3's x = Θ(log(nU)) with our constants: the round period must
  // grow with λ, not with n or m.
  Rng rng(0xAC);
  const Graph small_u = make_random_graph(12, 40, {1, 2}, rng);
  const Graph big_u = make_random_graph(12, 40, {1, 200}, rng);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 3;
  const auto a = khop_sssp_poly(small_u, opt);
  const auto b = khop_sssp_poly(big_u, opt);
  EXPECT_GT(b.lambda, a.lambda);
  EXPECT_GT(b.round_period, a.round_period);
  EXPECT_EQ(a.execution_time, 3 * a.round_period);
}

TEST(KhopPoly, NeuronCountScalesWithEdgesTimesLambda) {
  // Theorem 4.3: O(m log(nU)) neurons.
  Rng rng(0xAD);
  const Graph g1 = make_random_graph(12, 30, {1, 6}, rng);
  const Graph g2 = make_random_graph(12, 60, {1, 6}, rng);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 2;
  const auto r1 = khop_sssp_poly(g1, opt);
  const auto r2 = khop_sssp_poly(g2, opt);
  const double ratio =
      static_cast<double>(r2.neurons) / static_cast<double>(r1.neurons);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);  // roughly doubles with m
}

TEST(KhopPoly, TargetModeStopsEarly) {
  Rng rng(0xAE);
  const Graph g = make_path_graph(8, {3, 3}, rng);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 7;
  opt.target = 2;  // reached in round 2
  const auto got = khop_sssp_poly(g, opt);
  EXPECT_TRUE(got.sim.hit_terminal);
  EXPECT_EQ(got.execution_time, 2 * got.round_period);
  EXPECT_EQ(got.dist[2], 6);
}

TEST(KhopTtl, ScaleCoversNodeDepth) {
  Rng rng(0xAF);
  const Graph g = make_random_graph(10, 25, {1, 4}, rng);
  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 4;
  const auto got = khop_sssp_ttl(g, opt);
  // The scaled minimum edge must strictly exceed the node circuit depth
  // (Section 4.1's "scale all graph edges so the minimum edge length is at
  // least ⌈log k⌉" with our exact circuit constants).
  EXPECT_GE(got.scale * g.min_edge_length(),
            static_cast<Weight>(got.node_depth) + 1);
  EXPECT_EQ(got.lambda, bits_for(opt.k - 1));
}

TEST(KhopTtl, KOneReachesOnlyDirectNeighbours) {
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 3, 7);
  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 1;
  const auto got = khop_sssp_ttl(g, opt);
  EXPECT_EQ(got.dist[1], 2);
  EXPECT_EQ(got.dist[3], 7);
  EXPECT_FALSE(got.reachable(2));
}

TEST(KhopTtl, LaterLargerTtlPropagatesFurther) {
  // The Section-4.1 subtlety: the FIRST (shortest) arrival at vertex 1 has
  // a small TTL; a LATER arrival with a larger TTL must still propagate.
  // 0 →(9, direct)→ 1 uses 1 hop (TTL budget high), while 0→2→3→1 is
  // shorter (3·1 = 3) but burns 3 hops. With k = 4, vertex 4 (two hops past
  // 1) is reachable only through the direct-edge arrival when the cheap
  // arrival's TTL is exhausted.
  Graph g(6);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 1, 1);  // cheap 3-hop route to 1 (length 3)
  g.add_edge(0, 1, 9);  // expensive 1-hop route to 1
  g.add_edge(1, 4, 1);
  g.add_edge(4, 5, 1);
  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 4;
  const auto got = khop_sssp_ttl(g, opt);
  const auto ref = bellman_ford_khop(g, 0, 4);
  EXPECT_EQ(got.dist[1], 3);   // first arrival (3 hops)
  EXPECT_EQ(got.dist[4], ref.dist[4]);  // 4 hops via the cheap route: 3+1
  EXPECT_EQ(got.dist[5], ref.dist[5]);  // needs the later large-TTL arrival
  EXPECT_EQ(ref.dist[5], 11);  // 9 + 1 + 1 via the direct edge
}

TEST(KhopTtl, HopCountsAreMinimalForTheDistance) {
  // hops[v] must be the SMALLEST hop budget that already achieves dist_k(v)
  // (first arrival carries the max TTL among shortest paths).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(0xB10 + seed);
    const Graph g = make_random_graph(12, 40, {1, 6}, rng);
    const std::uint32_t k = 5;
    KHopTtlOptions opt;
    opt.source = 0;
    opt.k = k;
    const auto got = khop_sssp_ttl(g, opt);
    const auto rounds = bellman_ford_khop_rounds(g, 0, k);
    for (VertexId v = 1; v < 12; ++v) {
      if (!got.reachable(v)) continue;
      std::uint32_t min_hops = 0;
      while (rounds[min_hops][v] != got.dist[v]) ++min_hops;
      EXPECT_EQ(got.hops[v], min_hops) << "seed " << seed << " v " << v;
      EXPECT_LE(got.hops[v], k);
      EXPECT_GE(got.hops[v], 1u);
    }
  }
}

TEST(KhopTtl, HopCountsOnHandBuiltGraph) {
  // 0→3 direct (1 hop, length 10) vs 0→1→2→3 (3 hops, length 3): the
  // shortest uses 3 hops; with k = 1 only the direct edge exists.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 10);
  {
    KHopTtlOptions opt;
    opt.source = 0;
    opt.k = 4;
    const auto r = khop_sssp_ttl(g, opt);
    EXPECT_EQ(r.dist[3], 3);
    EXPECT_EQ(r.hops[3], 3u);
  }
  {
    KHopTtlOptions opt;
    opt.source = 0;
    opt.k = 1;
    const auto r = khop_sssp_ttl(g, opt);
    EXPECT_EQ(r.dist[3], 10);
    EXPECT_EQ(r.hops[3], 1u);
  }
}

TEST(KhopTtl, TargetModeTerminates) {
  Rng rng(0xB0);
  const Graph g = make_path_graph(7, {2, 2}, rng);
  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 6;
  opt.target = 3;
  const auto got = khop_sssp_ttl(g, opt);
  EXPECT_TRUE(got.sim.hit_terminal);
  EXPECT_EQ(got.dist[3], 6);
}

TEST(KhopTtl, SelfLoopIsHarmless) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 1, 1);  // self-loop
  g.add_edge(1, 2, 2);
  KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 3;
  const auto got = khop_sssp_ttl(g, opt);
  EXPECT_EQ(got.dist[1], 2);
  EXPECT_EQ(got.dist[2], 4);
}

TEST(SsspPolyAdaptive, MatchesDijkstraWithSmallBudget) {
  // Theorem 4.4 without knowing α: doubling budgets + the BF early-exit
  // criterion find full SSSP in k_used ≤ 2·(max shortest-path hops).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(0xADA0 + seed);
    const Graph g = make_random_graph(16, 80, {1, 9}, rng);
    const auto ref = dijkstra(g, 0);
    const auto got = sssp_poly_adaptive(g, 0);
    for (VertexId v = 0; v < 16; ++v) {
      EXPECT_EQ(got.dist[v], ref.dist[v]) << "seed " << seed << " v " << v;
    }
    std::uint32_t alpha = 0;
    for (VertexId v = 0; v < 16; ++v) {
      if (ref.reachable(v)) alpha = std::max(alpha, ref.hops[v]);
    }
    EXPECT_LE(got.k_used, std::max<std::uint32_t>(2, 2 * alpha))
        << "seed " << seed;
    EXPECT_LE(got.k_used, 15u);
  }
}

TEST(SsspPolyAdaptive, LongPathForcesFullBudget) {
  Rng rng(0xADA9);
  const Graph g = make_path_graph(9, {2, 2}, rng);
  const auto got = sssp_poly_adaptive(g, 0);
  EXPECT_EQ(got.dist[8], 16);
  EXPECT_EQ(got.k_used, 8u);  // α = n−1; the doubling caps at n−1
}

TEST(SsspPolyAdaptive, StarGraphConvergesImmediately) {
  Graph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_edge(0, v, 3);
  const auto got = sssp_poly_adaptive(g, 0);
  EXPECT_EQ(got.k_used, 2u);  // k=1 still improves; k=2's last round doesn't
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(got.dist[v], 3);
}

TEST(KhopAgreement, TtlAndPolyAgreeOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(0xCC00 + seed);
    const Graph g = make_random_graph(12, 36, {1, 5}, rng);
    KHopTtlOptions topt;
    topt.source = 0;
    topt.k = 4;
    KHopPolyOptions popt;
    popt.source = 0;
    popt.k = 4;
    const auto a = khop_sssp_ttl(g, topt);
    const auto b = khop_sssp_poly(g, popt);
    EXPECT_EQ(a.dist, b.dist) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sga::nga
