// Tests for the circuit builder, elementary gates, the comparator of
// Figure 5A, and the Figure-1 primitives (delay simulation, latch, clock).
#include <gtest/gtest.h>

#include "circuits/builder.h"
#include "circuits/gates.h"
#include "circuits/primitives.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {
namespace {

using snn::Network;
using snn::SimConfig;
using snn::Simulator;

TEST(Builder, LevelsBecomeDelays) {
  Network net;
  CircuitBuilder cb(net);
  const NeuronId in = cb.make_input();
  const NeuronId g = cb.make_gate(1, 4);
  cb.connect(in, g, 1);
  ASSERT_EQ(net.out_synapses(in).size(), 1u);
  EXPECT_EQ(net.out_synapses(in)[0].delay, 4);

  Simulator sim(net);
  sim.inject_spike(in, 0);
  sim.run();
  EXPECT_EQ(sim.first_spike(g), 4);
}

TEST(Builder, RejectsNonIncreasingLevels) {
  Network net;
  CircuitBuilder cb(net);
  const NeuronId a = cb.make_gate(1, 2);
  const NeuronId b = cb.make_gate(1, 2);
  EXPECT_THROW(cb.connect(a, b, 1), InvalidArgument);
  EXPECT_THROW(cb.make_gate(1, 0), InvalidArgument);
}

TEST(Builder, TracksStats) {
  Network net;
  CircuitBuilder cb(net);
  const NeuronId in = cb.make_input();
  const NeuronId g = cb.make_gate(1, 2);
  cb.connect(in, g, -7);
  EXPECT_EQ(cb.stats().neurons, 2u);
  EXPECT_EQ(cb.stats().synapses, 1u);
  EXPECT_EQ(cb.stats().depth, 2);
  EXPECT_DOUBLE_EQ(cb.stats().max_abs_weight, 7.0);
}

struct GateTruthCase {
  bool x, y;
};

class GateTruthTable : public ::testing::TestWithParam<GateTruthCase> {};

TEST_P(GateTruthTable, OrAndNotXor) {
  const auto [x, y] = GetParam();
  Network net;
  CircuitBuilder cb(net);
  const NeuronId enable = cb.make_input();
  const NeuronId in_x = cb.make_input();
  const NeuronId in_y = cb.make_input();
  const NeuronId or_out = cb.or_gate({in_x, in_y}, 1);
  const NeuronId and_out = cb.and_gate({in_x, in_y}, 1);
  const NeuronId not_out = cb.not_gate(in_x, enable, 1);
  const NeuronId xor_out = xor_gate(cb, in_x, in_y, 2);

  Simulator sim(net);
  sim.inject_spike(enable, 0);
  if (x) sim.inject_spike(in_x, 0);
  if (y) sim.inject_spike(in_y, 0);
  sim.run();
  EXPECT_EQ(sim.fired_at(or_out, 1), x || y);
  EXPECT_EQ(sim.fired_at(and_out, 1), x && y);
  EXPECT_EQ(sim.fired_at(not_out, 1), !x);
  EXPECT_EQ(sim.fired_at(xor_out, 2), x != y);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, GateTruthTable,
                         ::testing::Values(GateTruthCase{false, false},
                                           GateTruthCase{false, true},
                                           GateTruthCase{true, false},
                                           GateTruthCase{true, true}));

TEST(Comparator, ExhaustiveSmallWidth) {
  Network net;
  CircuitBuilder cb(net);
  const ComparatorCircuit c = build_comparator(cb, 4);
  // One fresh network per evaluation: rebuild for each pair.
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Network n2;
      CircuitBuilder cb2(n2);
      const ComparatorCircuit c2 = build_comparator(cb2, 4);
      Simulator sim(n2);
      sim.inject_spike(c2.enable, 0);
      snn::inject_binary(sim, c2.a, a, 0);
      snn::inject_binary(sim, c2.b, b, 0);
      sim.run();
      EXPECT_EQ(sim.fired_at(c2.ge, 1), a >= b) << a << " vs " << b;
      EXPECT_EQ(sim.fired_at(c2.gt, 2), a > b) << a << " vs " << b;
      EXPECT_EQ(sim.fired_at(c2.eq, 3), a == b) << a << " vs " << b;
    }
  }
  EXPECT_EQ(c.depth, 3);
}

TEST(Comparator, PipelinedComparisonsAreIndependent) {
  // One physical comparator, a new (a, b) pair every time step: τ=1 gates
  // must keep presentations from leaking into each other.
  Network net;
  CircuitBuilder cb(net);
  const ComparatorCircuit c = build_comparator(cb, 5);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> jobs{
      {3, 17}, {17, 3}, {9, 9}, {0, 31}, {31, 31}, {1, 0}};
  Simulator sim(net);
  for (std::size_t r = 0; r < jobs.size(); ++r) {
    const auto t = static_cast<Time>(r);
    sim.inject_spike(c.enable, t);
    snn::inject_binary(sim, c.a, jobs[r].first, t);
    snn::inject_binary(sim, c.b, jobs[r].second, t);
  }
  SimConfig cfg;
  cfg.max_time = static_cast<Time>(jobs.size()) + 3;
  cfg.record_spike_log = true;
  sim.run(cfg);
  // Recover each presentation's outputs from the log.
  std::vector<bool> ge(jobs.size()), gt(jobs.size()), eq(jobs.size());
  for (const auto& [t, id] : sim.spike_log()) {
    if (id == c.ge && t >= 1 && static_cast<std::size_t>(t - 1) < jobs.size()) {
      ge[static_cast<std::size_t>(t - 1)] = true;
    }
    if (id == c.gt && t >= 2 && static_cast<std::size_t>(t - 2) < jobs.size()) {
      gt[static_cast<std::size_t>(t - 2)] = true;
    }
    if (id == c.eq && t >= 3 && static_cast<std::size_t>(t - 3) < jobs.size()) {
      eq[static_cast<std::size_t>(t - 3)] = true;
    }
  }
  for (std::size_t r = 0; r < jobs.size(); ++r) {
    EXPECT_EQ(ge[r], jobs[r].first >= jobs[r].second) << "job " << r;
    EXPECT_EQ(gt[r], jobs[r].first > jobs[r].second) << "job " << r;
    EXPECT_EQ(eq[r], jobs[r].first == jobs[r].second) << "job " << r;
  }
}

class DelaySimSweep : public ::testing::TestWithParam<Delay> {};

TEST_P(DelaySimSweep, EmulatesExactDelay) {
  const Delay d = GetParam();
  Network net;
  const DelaySimCircuit c = build_delay_simulation(net, d);
  Simulator sim(net);
  sim.inject_spike(c.input, 3);
  SimConfig cfg;
  cfg.max_time = 3 + d + 10;
  sim.run(cfg);
  EXPECT_EQ(sim.first_spike(c.output), 3 + d);
  // One-shot: the output fires exactly once and the generator stops.
  EXPECT_EQ(sim.spike_count(c.output), 1u);
  EXPECT_LE(sim.last_spike(c.generator), 3 + d);
}

INSTANTIATE_TEST_SUITE_P(Delays, DelaySimSweep,
                         ::testing::Values(2, 3, 4, 7, 16, 33, 64));

TEST(DelaySim, RejectsTrivialDelay) {
  Network net;
  EXPECT_THROW(build_delay_simulation(net, 1), InvalidArgument);
}

TEST(Latch, SetRecallResetCycle) {
  Network net;
  const LatchCircuit latch = build_latch(net);
  Simulator sim(net);
  sim.inject_spike(latch.recall, 2);   // recall before set: no output
  sim.inject_spike(latch.set, 5);      // latch
  sim.inject_spike(latch.recall, 10);  // recall while latched: output
  sim.inject_spike(latch.reset, 15);   // clear
  sim.inject_spike(latch.recall, 20);  // recall after reset: no output
  sim.inject_spike(latch.set, 25);     // latch again
  sim.inject_spike(latch.recall, 30);  // output again
  SimConfig cfg;
  cfg.max_time = 40;
  cfg.record_spike_log = true;
  sim.run(cfg);

  EXPECT_EQ(sim.first_spike(latch.output), 11);
  std::vector<Time> output_times;
  for (const auto& [t, id] : sim.spike_log()) {
    if (id == latch.output) output_times.push_back(t);
  }
  EXPECT_EQ(output_times, (std::vector<Time>{11, 31}));
  // Memory holds between set and reset, then again after the second set.
  EXPECT_GT(sim.spike_count(latch.memory), 10u);
}

TEST(ClockChain, TicksAtMultiplesOfPeriod) {
  Network net;
  const auto ticks = build_clock_chain(net, 7, 5);
  Simulator sim(net);
  sim.inject_spike(ticks[0], 2);
  sim.run();
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(sim.first_spike(ticks[static_cast<std::size_t>(r)]), 2 + 7 * r);
  }
}

}  // namespace
}  // namespace sga::circuits
