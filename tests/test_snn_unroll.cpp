// Tests for the SNN → threshold-circuit unrolling (the Section-1 "SNNs may
// be simulated with polynomial overhead in TC" remark) and the spike-trace
// utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "circuits/builder.h"
#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "core/random.h"
#include "snn/probe.h"
#include "snn/simulator.h"
#include "snn/trace.h"
#include "snn/unroll.h"

namespace sga::snn {
namespace {

/// Reference: run the recurrent network and collect the sorted spike set.
std::vector<std::pair<Time, NeuronId>> recurrent_spikes(
    const Network& net, const std::vector<std::pair<NeuronId, Time>>& inj,
    Time horizon) {
  Simulator sim(net);
  for (const auto& [id, t] : inj) sim.inject_spike(id, t);
  SimConfig cfg;
  cfg.max_time = horizon;
  cfg.record_spike_log = true;
  sim.run(cfg);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  return log;
}

TEST(Unroll, SimpleChainMatches) {
  Network net;
  const NeuronId a = net.add_neuron(NeuronParams{0, 1, 1.0});
  const NeuronId b = net.add_neuron(NeuronParams{0, 1, 1.0});
  const NeuronId c = net.add_neuron(NeuronParams{0, 2, 1.0});
  net.add_synapse(a, b, 1, 2);
  net.add_synapse(a, c, 1, 3);
  net.add_synapse(b, c, 1, 1);
  const auto uc = unroll_to_threshold_circuit(net.compile(), 6);
  const std::vector<std::pair<NeuronId, Time>> inj{{a, 0}};
  EXPECT_EQ(run_unrolled(uc, inj), recurrent_spikes(net, inj, 6));
  // Polynomial overhead: n·(T+1) gates.
  EXPECT_EQ(uc.circuit.num_neurons(), 3u * 7u);
}

TEST(Unroll, RecurrentCycleIsUnrolledCorrectly) {
  // A self-excitation loop — recurrence is exactly what the unrolling must
  // linearize into layers.
  Network net;
  const NeuronId a = net.add_neuron(NeuronParams{0, 1, 1.0});
  const NeuronId b = net.add_neuron(NeuronParams{0, 1, 1.0});
  net.add_synapse(a, b, 1, 1);
  net.add_synapse(b, a, 1, 2);  // cycle: a fires every 3 steps
  const auto uc = unroll_to_threshold_circuit(net.compile(), 12);
  const std::vector<std::pair<NeuronId, Time>> inj{{a, 0}};
  const auto got = run_unrolled(uc, inj);
  EXPECT_EQ(got, recurrent_spikes(net, inj, 12));
  // a fires at 0, 3, 6, 9, 12.
  int a_fires = 0;
  for (const auto& [t, id] : got) a_fires += (id == a);
  EXPECT_EQ(a_fires, 5);
}

class UnrollFuzz : public ::testing::TestWithParam<int> {};

TEST_P(UnrollFuzz, RandomGateNetworksMatch) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0x0721 + seed);
  Network net;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) {
    net.add_neuron(NeuronParams{0, static_cast<Voltage>(rng.uniform_int(1, 2)),
                                1.0});
  }
  for (int s = 0; s < 40; ++s) {
    net.add_synapse(
        static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<SynWeight>(rng.uniform_int(-1, 2)), rng.uniform_int(1, 4));
  }
  std::vector<std::pair<NeuronId, Time>> inj;
  for (int i = 0; i < 4; ++i) {
    inj.emplace_back(
        static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        rng.uniform_int(0, 3));
  }
  const Time horizon = 15;
  const auto uc = unroll_to_threshold_circuit(net.compile(), horizon);
  EXPECT_EQ(run_unrolled(uc, inj), recurrent_spikes(net, inj, horizon))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollFuzz, ::testing::Range(0, 10));

TEST(Unroll, WiredOrMaxCircuitSurvivesUnrolling) {
  // A full Section-5 circuit is itself a τ=1 network: unroll it and check
  // the unrolled copy computes the same max.
  Network net;
  circuits::CircuitBuilder cb(net);
  const auto mc = circuits::build_max_wired_or(cb, 3, 4);
  const auto uc = unroll_to_threshold_circuit(net.compile(), mc.depth);

  std::vector<std::pair<NeuronId, Time>> inj{{mc.enable, 0}};
  const std::vector<std::uint64_t> vals{5, 12, 9};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    for (int bit = 0; bit < 4; ++bit) {
      if ((vals[i] >> bit) & 1ULL) {
        inj.emplace_back(mc.inputs[i][static_cast<std::size_t>(bit)], 0);
      }
    }
  }
  const auto spikes = run_unrolled(uc, inj);
  std::uint64_t decoded = 0;
  for (const auto& [t, id] : spikes) {
    if (t != mc.depth) continue;
    for (int bit = 0; bit < 4; ++bit) {
      if (id == mc.outputs[static_cast<std::size_t>(bit)]) {
        decoded |= 1ULL << bit;
      }
    }
  }
  EXPECT_EQ(decoded, 12u);
}

TEST(Unroll, RejectsIntegratorNeurons) {
  Network net;
  net.add_neuron(NeuronParams{0, 1, 0.0});  // τ = 0: stateful
  EXPECT_THROW(unroll_to_threshold_circuit(net.compile(), 5), InvalidArgument);
}

TEST(Trace, RasterShowsSpikes) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 3);
  Simulator sim(net);
  sim.inject_spike(a, 1);
  SimConfig cfg;
  cfg.max_time = 6;
  cfg.record_spike_log = true;
  sim.run(cfg);
  std::ostringstream os;
  write_spike_raster(os, sim, {a, b}, 0, 6, {"src", "dst"});
  const std::string raster = os.str();
  EXPECT_NE(raster.find("src .|....."), std::string::npos);
  EXPECT_NE(raster.find("dst ....|.."), std::string::npos);
}

TEST(Trace, CsvListsAllSpikes) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  Simulator sim(net);
  sim.inject_spike(a, 2);
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.max_time = 5;
  sim.run(cfg);
  std::ostringstream os;
  write_spike_csv(os, sim);
  EXPECT_EQ(os.str(), "time,neuron\n2,0\n");
}

}  // namespace
}  // namespace sga::snn
