// Tests for the NGA framework (Definition 4) and the Section-2.2 example:
// message passing computes A^r m_0 in both the ordinary and the (min, +)
// semiring, and the cost model composes as R·(T_edge + T_node).
#include <gtest/gtest.h>

#include "core/random.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/matvec.h"
#include "nga/model.h"

namespace sga::nga {
namespace {

TEST(NgaModel, RunsRequestedRounds) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  std::vector<Message> init(2);
  init[0] = Message{1, true};
  const auto trace = run_nga(
      g, init, 3, [](const Edge&, const Message& m) { return m; },
      [](VertexId, const std::vector<Message>& in) {
        return in.empty() ? Message{} : in.front();
      });
  EXPECT_EQ(trace.per_round.size(), 4u);
  EXPECT_TRUE(trace.per_round[1][1].valid);
  EXPECT_FALSE(trace.per_round[2][1].valid);  // 0 went silent after round 1
}

TEST(NgaModel, SilentNodesBroadcastNothing) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  std::vector<Message> init(3);
  init[0] = Message{7, true};
  std::uint64_t edge_calls = 0;
  const auto trace = run_nga(
      g, init, 2,
      [&](const Edge&, const Message& m) {
        ++edge_calls;
        return m;
      },
      [](VertexId, const std::vector<Message>& in) {
        for (const auto& m : in) {
          if (m.valid) return m;
        }
        return Message{};
      });
  // Round 1: only edge 0->1 carries a message; round 2: only 1->2.
  EXPECT_EQ(edge_calls, 2u);
  EXPECT_EQ(trace.messages_sent, 2u);
  EXPECT_EQ(trace.per_round[2][2].value, 7u);
}

TEST(NgaModel, RejectsSizeMismatch) {
  Graph g(2);
  EXPECT_THROW(run_nga(g, {}, 1, nullptr, nullptr), InvalidArgument);
}

TEST(NgaCostModel, TotalTimeComposition) {
  NgaCost cost;
  cost.rounds = 7;
  cost.t_edge = 3;
  cost.t_node = 5;
  EXPECT_EQ(cost.total_time(), 7 * (3 + 5));
}

TEST(MatvecPower, MatchesDenseReference) {
  Rng rng(21);
  const Graph g = make_random_graph(8, 30, {1, 3}, rng);
  std::vector<std::uint64_t> x{1, 2, 0, 1, 3, 0, 1, 2};

  // Dense reference: y_j = Σ_i A_ij x_i, iterated r times.
  auto reference = [&](std::vector<std::uint64_t> v, int r) {
    for (int round = 0; round < r; ++round) {
      std::vector<std::uint64_t> next(8, 0);
      for (const auto& e : g.edges()) {
        next[e.to] += static_cast<std::uint64_t>(e.length) * v[e.from];
      }
      v = next;
    }
    return v;
  };
  for (const int r : {1, 2, 3}) {
    EXPECT_EQ(matvec_power(g, x, static_cast<std::uint64_t>(r)),
              reference(x, r))
        << "r=" << r;
  }
}

TEST(MinplusPower, RoundsMatchBellmanFordExactHopTable) {
  Rng rng(22);
  const Graph g = make_random_graph(15, 50, {1, 6}, rng);
  const auto mp = minplus_rounds(g, 0, 6);
  ASSERT_EQ(mp.size(), 7u);

  // dist_k(v) = min over rounds r <= k of the exact-r-edge walk length.
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const auto bf = bellman_ford_khop(g, 0, k);
    for (VertexId v = 0; v < 15; ++v) {
      Weight best = kInfiniteDistance;
      for (std::uint32_t r = 0; r <= k; ++r) {
        best = std::min(best, mp[r][v]);
      }
      EXPECT_EQ(best, bf.dist[v]) << "k=" << k << " v=" << v;
    }
  }
}

TEST(MinplusPower, ExactHopSemantics) {
  // Path 0 -> 1 -> 2: round 1 reaches only vertex 1, round 2 only vertex 2.
  Rng rng(23);
  const Graph g = make_path_graph(3, {4, 4}, rng);
  EXPECT_EQ(minplus_power(g, 0, 1),
            (std::vector<Weight>{kInfiniteDistance, 4, kInfiniteDistance}));
  EXPECT_EQ(minplus_power(g, 0, 2),
            (std::vector<Weight>{kInfiniteDistance, kInfiniteDistance, 8}));
}

}  // namespace
}  // namespace sga::nga
