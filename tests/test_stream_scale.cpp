// Million-neuron streamed end-to-end test (ARCHITECTURE.md §1.8, §1.11;
// `ctest -L scale`): a relay chain with n = 10^6 vertices and m ≥ 8·10^6
// edges is frozen straight from its generator into the narrow CSR, solves
// SSSP to completion, and the narrow freeze is verifiably ≥ 30% smaller
// than the wide oracle layout while running event-for-event identically to
// it. A second test freezes the same stream under kAuto — which at this
// scale selects the delta-packed encoding — and holds it to the ISSUE 10
// floor: ≥ 25% smaller than NARROW, event-for-event identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "snn/simulator.h"
#include "snn/storage.h"

namespace sga {
namespace {

constexpr std::size_t kN = 1000000;
constexpr std::size_t kExtraPerVertex = 8;
constexpr std::size_t kMaxSkip = 1000;
constexpr std::uint64_t kSeed = 0x5CA1E;
constexpr WeightRange kWeights{1, 16};

void relay_edges(const EdgeStream& emit) {
  stream_relay_chain(kN, kExtraPerVertex, kMaxSkip, kWeights, kSeed, emit);
}

TEST(ScaleStreamed, MillionNeuronRelayChainEndToEnd) {
  // Freeze the narrow CSR directly from the stream. kAuto now selects the
  // packed encoding at this scale, so the flat-narrow lane asks for it
  // explicitly (it stays the compression oracle the packed test measures
  // against).
  snn::StreamBuildStats bs;
  const snn::CompiledNetwork narrow = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kNarrow, &bs);
  ASSERT_EQ(bs.num_neurons, kN);
  ASSERT_GE(bs.num_synapses, 8000000u + kN);  // m edges + n fire-once guards
  ASSERT_EQ(bs.csr_bytes, narrow.csr_storage_bytes());
  ASSERT_GE(bs.peak_resident_bytes, bs.csr_bytes);

  // The widths the instance's ranges imply: u32 targets (n > 2^16), u8
  // delays (max length 16), f32 weights (integers 1 and -(indeg+1)).
  const snn::StorageWidths& w = narrow.storage_widths();
  ASSERT_TRUE(w.narrow);
  ASSERT_FALSE(w.packed);
  EXPECT_EQ(w.target_bytes, 4u);
  EXPECT_EQ(w.delay_bytes, 1u);
  EXPECT_EQ(w.weight_bytes, 4u);

  // ≥ 30% smaller than the wide oracle freeze of the same stream.
  const snn::CompiledNetwork wide = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kWide);
  ASSERT_FALSE(wide.storage_widths().narrow);
  EXPECT_LE(static_cast<double>(narrow.csr_storage_bytes()),
            0.7 * static_cast<double>(wide.csr_storage_bytes()))
      << "narrow " << narrow.csr_storage_bytes() << " wide "
      << wide.csr_storage_bytes();

  // SSSP to completion on the narrow freeze: every relay fires exactly
  // once (the backbone reaches all n vertices; the guard keeps it at one).
  auto solve = [](const snn::CompiledNetwork& net) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    const snn::SimStats stats = sim.run();
    return std::pair(stats, sim.first_spikes());
  };
  const auto [nstats, nfirst] = solve(narrow);
  EXPECT_EQ(nstats.spikes, kN);
  EXPECT_EQ(nstats.csr_bytes, narrow.csr_storage_bytes());
  EXPECT_EQ(nfirst[0], 0);

  // Distance anchors: d(0) = 0, every vertex reached, and each distance is
  // bounded by the backbone prefix sum (skip edges can only shorten).
  std::vector<Time> backbone_prefix(kN, 0);
  relay_edges([&](VertexId u, VertexId v, Weight len) {
    if (v == u + 1) backbone_prefix[v] = backbone_prefix[u] + len;
  });
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_NE(nfirst[v], kNever) << "vertex " << v << " unreached";
    ASSERT_LE(nfirst[v], backbone_prefix[v]) << "vertex " << v;
    if (v > 0) ASSERT_GT(nfirst[v], 0) << "vertex " << v;
  }

  // Narrow and wide agree event-for-event at this scale too.
  const auto [wstats, wfirst] = solve(wide);
  EXPECT_EQ(nfirst, wfirst);
  EXPECT_EQ(nstats.spikes, wstats.spikes);
  EXPECT_EQ(nstats.deliveries, wstats.deliveries);
  EXPECT_EQ(nstats.event_times, wstats.event_times);
  EXPECT_EQ(nstats.end_time, wstats.end_time);
  EXPECT_LT(narrow.bytes_per_synapse(), wide.bytes_per_synapse());
}

TEST(ScaleStreamed, MillionNeuronPackedEncodingEndToEnd) {
  // kAuto at m ≈ 10^7 must select the delta-packed encoding, straight from
  // the stream (the pass-1 range scan chooses it; no wide intermediate is
  // kept resident — only the per-freeze transient counted in
  // peak_resident_bytes).
  snn::StreamBuildStats bs;
  const snn::CompiledNetwork packed = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kAuto, &bs);
  const snn::StorageWidths& w = packed.storage_widths();
  ASSERT_TRUE(w.packed);
  ASSERT_TRUE(w.narrow);
  EXPECT_EQ(snn::encoding_code(w), 2u);
  EXPECT_EQ(w.target_bytes, 4u);  // decode width, not stored width
  EXPECT_EQ(w.delay_bytes, 1u);
  EXPECT_EQ(w.weight_bytes, 4u);
  ASSERT_EQ(bs.csr_bytes, packed.csr_storage_bytes());
  ASSERT_GE(bs.peak_resident_bytes, bs.csr_bytes);

  // ISSUE 10 compression floor: >= 25% smaller than the flat-narrow freeze
  // of the identical stream.
  const snn::CompiledNetwork narrow = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kNarrow);
  EXPECT_LE(static_cast<double>(packed.csr_storage_bytes()),
            0.75 * static_cast<double>(narrow.csr_storage_bytes()))
      << "packed " << packed.csr_storage_bytes() << " narrow "
      << narrow.csr_storage_bytes();

  // Event-for-event identical to the flat-narrow oracle, and the stats
  // surface reports what ran: encoding tag and a nonzero decoded-block
  // count on the packed lane only.
  auto solve = [](const snn::CompiledNetwork& net) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    const snn::SimStats stats = sim.run();
    return std::pair(stats, sim.first_spikes());
  };
  const auto [pstats, pfirst] = solve(packed);
  const auto [nstats, nfirst] = solve(narrow);
  EXPECT_EQ(pstats.spikes, kN);
  EXPECT_EQ(pfirst, nfirst);
  EXPECT_EQ(pstats.spikes, nstats.spikes);
  EXPECT_EQ(pstats.deliveries, nstats.deliveries);
  EXPECT_EQ(pstats.event_times, nstats.event_times);
  EXPECT_EQ(pstats.end_time, nstats.end_time);
  EXPECT_EQ(pstats.csr_bytes, packed.csr_storage_bytes());
  EXPECT_EQ(pstats.storage_encoding, 2u);
  EXPECT_EQ(nstats.storage_encoding, 1u);
  EXPECT_GT(pstats.decode_blocks, 0u);
  EXPECT_EQ(nstats.decode_blocks, 0u);
}

}  // namespace
}  // namespace sga
