// Million-neuron streamed end-to-end test (ARCHITECTURE.md §1.8; `ctest -L
// scale`): a relay chain with n = 10^6 vertices and m ≥ 8·10^6 edges is
// frozen straight from its generator into the narrow CSR, solves SSSP to
// completion, and the narrow freeze is verifiably ≥ 30% smaller than the
// wide oracle layout while running event-for-event identically to it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "snn/simulator.h"
#include "snn/storage.h"

namespace sga {
namespace {

constexpr std::size_t kN = 1000000;
constexpr std::size_t kExtraPerVertex = 8;
constexpr std::size_t kMaxSkip = 1000;
constexpr std::uint64_t kSeed = 0x5CA1E;
constexpr WeightRange kWeights{1, 16};

void relay_edges(const EdgeStream& emit) {
  stream_relay_chain(kN, kExtraPerVertex, kMaxSkip, kWeights, kSeed, emit);
}

TEST(ScaleStreamed, MillionNeuronRelayChainEndToEnd) {
  // Freeze the narrow CSR directly from the stream.
  snn::StreamBuildStats bs;
  const snn::CompiledNetwork narrow = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kAuto, &bs);
  ASSERT_EQ(bs.num_neurons, kN);
  ASSERT_GE(bs.num_synapses, 8000000u + kN);  // m edges + n fire-once guards
  ASSERT_EQ(bs.csr_bytes, narrow.csr_storage_bytes());
  ASSERT_GE(bs.peak_resident_bytes, bs.csr_bytes);

  // The widths the instance's ranges imply: u32 targets (n > 2^16), u8
  // delays (max length 16), f32 weights (integers 1 and -(indeg+1)).
  const snn::StorageWidths& w = narrow.storage_widths();
  ASSERT_TRUE(w.narrow);
  EXPECT_EQ(w.target_bytes, 4u);
  EXPECT_EQ(w.delay_bytes, 1u);
  EXPECT_EQ(w.weight_bytes, 4u);

  // ≥ 30% smaller than the wide oracle freeze of the same stream.
  const snn::CompiledNetwork wide = nga::compile_sssp_streamed(
      kN, relay_edges, snn::StoragePolicy::kWide);
  ASSERT_FALSE(wide.storage_widths().narrow);
  EXPECT_LE(static_cast<double>(narrow.csr_storage_bytes()),
            0.7 * static_cast<double>(wide.csr_storage_bytes()))
      << "narrow " << narrow.csr_storage_bytes() << " wide "
      << wide.csr_storage_bytes();

  // SSSP to completion on the narrow freeze: every relay fires exactly
  // once (the backbone reaches all n vertices; the guard keeps it at one).
  auto solve = [](const snn::CompiledNetwork& net) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    const snn::SimStats stats = sim.run();
    return std::pair(stats, sim.first_spikes());
  };
  const auto [nstats, nfirst] = solve(narrow);
  EXPECT_EQ(nstats.spikes, kN);
  EXPECT_EQ(nstats.csr_bytes, narrow.csr_storage_bytes());
  EXPECT_EQ(nfirst[0], 0);

  // Distance anchors: d(0) = 0, every vertex reached, and each distance is
  // bounded by the backbone prefix sum (skip edges can only shorten).
  std::vector<Time> backbone_prefix(kN, 0);
  relay_edges([&](VertexId u, VertexId v, Weight len) {
    if (v == u + 1) backbone_prefix[v] = backbone_prefix[u] + len;
  });
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_NE(nfirst[v], kNever) << "vertex " << v << " unreached";
    ASSERT_LE(nfirst[v], backbone_prefix[v]) << "vertex " << v;
    if (v > 0) ASSERT_GT(nfirst[v], 0) << "vertex " << v;
  }

  // Narrow and wide agree event-for-event at this scale too.
  const auto [wstats, wfirst] = solve(wide);
  EXPECT_EQ(nfirst, wfirst);
  EXPECT_EQ(nstats.spikes, wstats.spikes);
  EXPECT_EQ(nstats.deliveries, wstats.deliveries);
  EXPECT_EQ(nstats.event_times, wstats.event_times);
  EXPECT_EQ(nstats.end_time, wstats.end_time);
  EXPECT_LT(narrow.bytes_per_synapse(), wide.bytes_per_synapse());
}

}  // namespace
}  // namespace sga
